module fekf

go 1.22
