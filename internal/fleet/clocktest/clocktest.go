// Package clocktest provides a deterministic fake clock satisfying
// fleet.Clock, so control-loop tests (autoscaler decisions, cooldown
// windows, snapshot ages) advance time explicitly instead of sleeping.
// Waiters registered through After fire synchronously inside Advance the
// moment the fake time passes their deadline — no wall time is involved
// anywhere.
package clocktest

import (
	"sync"
	"time"
)

// waiter is one pending After registration.
type waiter struct {
	at time.Time
	ch chan time.Time
}

// Clock is a fake fleet.Clock.  Now returns the controlled time; After
// channels fire when Advance (or Set) moves the time past their deadline.
// All methods are safe for concurrent use.
type Clock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

// New returns a fake clock parked at start.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the fake time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires once the fake time has advanced by d.
// A non-positive d fires on the next Advance (or immediately, matching the
// semantics tests care about: no real waiting ever happens).
func (c *Clock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, waiter{at: at, ch: ch})
	return ch
}

// Advance moves the fake time forward by d, firing every waiter whose
// deadline has passed (in deadline order, so chained timeouts observe a
// consistent history).
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.fireLocked()
	c.mu.Unlock()
}

// Set jumps the fake time to t (which must not move backwards) and fires
// the waiters that became due.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.fireLocked()
	c.mu.Unlock()
}

// fireLocked delivers to every due waiter.  Caller holds mu.
func (c *Clock) fireLocked() {
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// Waiters returns the number of pending After registrations — useful for
// asserting that a control loop parked itself on the clock.
func (c *Clock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
