package clocktest_test

import (
	"testing"
	"time"

	"fekf/internal/fleet"
	"fekf/internal/fleet/clocktest"
)

// The fake clock must satisfy the fleet's Clock seam.
var _ fleet.Clock = (*clocktest.Clock)(nil)

func TestNowAdvancesOnlyExplicitly(t *testing.T) {
	start := time.Unix(1000, 0)
	c := clocktest.New(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(3 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now after Advance = %v", got)
	}
	// Set never moves backwards.
	c.Set(start)
	if got := c.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Set moved time backwards to %v", got)
	}
}

func TestAfterFiresOnAdvance(t *testing.T) {
	c := clocktest.New(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before any Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	if c.Waiters() != 1 {
		t.Fatalf("Waiters = %d, want 1", c.Waiters())
	}
	c.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(time.Unix(10, 0)) {
			t.Fatalf("fired at %v, want t+10s", at)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
	if c.Waiters() != 0 {
		t.Fatalf("Waiters = %d after firing, want 0", c.Waiters())
	}
}

func TestAfterNonPositiveFiresImmediately(t *testing.T) {
	c := clocktest.New(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}
