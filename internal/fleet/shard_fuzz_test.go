package fleet

import (
	"testing"

	"fekf/internal/dataset"
)

// FuzzShardRouting drives the ingest sharder over mutating live-replica
// sets: whatever the policy, membership and frame contents, a frame must
// land on a live replica (or -1 exactly when none is live), hash routing
// must be stable while the live set is unchanged, and one round-robin
// rotation must cover every live replica.
func FuzzShardRouting(fz *testing.F) {
	fz.Add(uint8(3), uint8(0b101), uint8(1), int64(42), true)
	fz.Add(uint8(1), uint8(0), uint8(0), int64(7), false)
	fz.Add(uint8(8), uint8(0xff), uint8(3), int64(-9), true)
	fz.Add(uint8(5), uint8(0b10010), uint8(4), int64(0), false)
	fz.Fuzz(func(t *testing.T, nReps, aliveMask, flip uint8, seed int64, hash bool) {
		n := int(nReps%8) + 1
		pol := RoundRobin
		if hash {
			pol = HashShard
		}
		// A bare fleet shell is all shardOf touches: policy, replicas,
		// their alive flags and the round-robin cursor.
		f := &Fleet{cfg: Config{ShardPolicy: pol}}
		for i := 0; i < n; i++ {
			r := &replica{id: i}
			r.alive.Store(aliveMask&(1<<uint(i)) != 0)
			f.reps = append(f.reps, r)
		}
		// Deterministic frame coordinates from the fuzzed seed (LCG): the
		// hash policy's routing key.
		frame := dataset.Snapshot{Pos: make([]float64, 12)}
		rnd := seed
		for i := range frame.Pos {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			frame.Pos[i] = float64(rnd%1024) / 1024
		}
		check := func() {
			live := f.liveIDs()
			for trial := 0; trial < 2*n; trial++ {
				id := f.shardOf(&frame)
				if len(live) == 0 {
					if id != -1 {
						t.Fatalf("no live replica but frame sharded to %d", id)
					}
					continue
				}
				if id < 0 || id >= n || !f.reps[id].alive.Load() {
					t.Fatalf("frame routed to dead or out-of-range replica %d (live %v)", id, live)
				}
			}
			if len(live) == 0 {
				return
			}
			if pol == HashShard {
				want := f.shardOf(&frame)
				for i := 0; i < 8; i++ {
					if got := f.shardOf(&frame); got != want {
						t.Fatalf("hash routing unstable over an unchanged live set: %d then %d", want, got)
					}
				}
			} else {
				seen := make(map[int]bool)
				for i := 0; i < len(live); i++ {
					seen[f.shardOf(&frame)] = true
				}
				if len(seen) != len(live) {
					t.Fatalf("one round-robin rotation covered %d of %d live replicas", len(seen), len(live))
				}
			}
		}
		check()
		// Mutate the membership — kill a live replica or revive a dead one,
		// as the autoscaler does — and routing must follow immediately.
		victim := int(flip) % n
		f.reps[victim].alive.Store(!f.reps[victim].alive.Load())
		check()
		f.reps[victim].alive.Store(!f.reps[victim].alive.Load())
		check()
	})
}
