package fleet

import (
	"sync/atomic"

	"fekf/internal/online"
)

// Router is the predict tier in front of the fleet: it load-balances
// snapshot reads across the replicas' copy-on-write model snapshots,
// health-checking each candidate (alive and published).  Because snapshots
// are immutable clones, a replica killed after a snapshot was handed out
// never fails the prediction in flight — the router merely stops handing
// that replica out for new requests.
type Router struct {
	f    *Fleet
	next atomic.Uint64
}

// Snapshot returns the next healthy replica's snapshot in rotation.  When
// no replica passes the health check (all dead, or none published yet) it
// falls back to the freshest snapshot ever published — availability over
// freshness — and returns nil only before the fleet ever published.
func (rt *Router) Snapshot() *online.ModelSnapshot {
	reps := rt.f.reps
	n := len(reps)
	if n == 0 {
		return nil
	}
	// The modulo must happen in uint64: converting the counter to int
	// first goes negative once it wraps past MaxInt64 and indexes
	// reps[-k].
	start := int((rt.next.Add(1) - 1) % uint64(n))
	for k := 0; k < n; k++ {
		r := reps[(start+k)%n]
		if !r.alive.Load() {
			continue
		}
		if s := r.snap.Load(); s != nil {
			r.routed.Add(1)
			return s
		}
	}
	return rt.freshest()
}

// freshest returns the most recently published snapshot across all
// replicas, dead or alive, or nil when nothing was ever published.
func (rt *Router) freshest() *online.ModelSnapshot {
	var best *online.ModelSnapshot
	for _, r := range rt.f.reps {
		if s := r.snap.Load(); s != nil {
			if best == nil || s.Published.After(best.Published) {
				best = s
			}
		}
	}
	return best
}
