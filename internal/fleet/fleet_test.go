package fleet

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/online"
	"fekf/internal/optimize"
)

// fleetSetup builds a small labelled stream, an initialized tiny model and
// a paper-default FEKF for fleet tests.
func fleetSetup(t testing.TB) (*dataset.Dataset, *deepmd.Model, *optimize.FEKF) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 24, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptAll
	m.Dev = device.New("fleet-test", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	opt := optimize.NewFEKF()
	opt.KCfg = opt.KCfg.WithOpt3()
	return ds, m, opt
}

func newTestFleet(t testing.TB, replicas int, cfg Config) (*dataset.Dataset, *Fleet) {
	t.Helper()
	ds, m, opt := fleetSetup(t)
	cfg.Replicas = replicas
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 2
	}
	if cfg.MinFrames == 0 {
		cfg.MinFrames = 2
	}
	f, err := New(m, opt, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, f
}

// assertBitwiseConsistent checks the fleet invariant the hard way: every
// live replica's weights and full P must equal the first live replica's,
// element for element, and the mirrored drift gauges must read exactly 0.
func assertBitwiseConsistent(t *testing.T, f *Fleet) {
	t.Helper()
	live := f.liveIDs()
	if len(live) < 2 {
		return
	}
	ref := f.reps[live[0]]
	refW := ref.model.Params.FlattenValues()
	for _, id := range live[1:] {
		w := f.reps[id].model.Params.FlattenValues()
		for i := range refW {
			if w[i] != refW[i] {
				t.Fatalf("replica %d weight %d differs from replica %d", id, i, live[0])
			}
		}
		if d := ref.opt.State().PDrift(f.reps[id].opt.State()); d != 0 {
			t.Fatalf("replica %d P drifts from replica %d by %g", id, live[0], d)
		}
		if f.reps[id].opt.Lambda() != ref.opt.Lambda() {
			t.Fatalf("replica %d λ differs from replica %d", id, live[0])
		}
	}
	if f.WeightDrift() != 0 {
		t.Fatalf("weight-drift gauge reads %g, want exactly 0", f.WeightDrift())
	}
	if f.PDrift() != 0 {
		t.Fatalf("P-drift gauge reads %g, want exactly 0", f.PDrift())
	}
}

// The tentpole invariant: after every lockstep step over a sharded stream,
// all replicas hold bitwise-identical weights and P.
func TestFleetLockstepBitwise(t *testing.T) {
	ds, f := newTestFleet(t, 3, Config{Seed: 11, Gate: online.GateConfig{Enabled: false}})
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	// drive the conductor manually: drain shards, then step the fleet
	if got := f.drainAll(); got != 12 {
		t.Fatalf("drained %d frames, want 12", got)
	}
	for i := 0; i < 4; i++ {
		f.step()
		assertBitwiseConsistent(t, f)
	}
	if f.Steps() != 4 {
		t.Fatalf("took %d steps, want 4 (last error %q)", f.Steps(), f.Stats().LastError)
	}
	st := f.FleetStats()
	if st.WeightDrift != 0 || st.PDrift != 0 {
		t.Fatalf("stats report drift %g / %g, want exactly 0", st.WeightDrift, st.PDrift)
	}
	if st.RingWireBytes == 0 || st.RingOps == 0 {
		t.Fatal("lockstep steps moved no bytes over the ring")
	}
}

// Round-robin sharding must spread a stream evenly across live replicas;
// hash sharding must route a repeated configuration to the same replica.
func TestShardPolicies(t *testing.T) {
	ds, f := newTestFleet(t, 3, Config{Seed: 1, Gate: online.GateConfig{Enabled: false}})
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	for _, r := range f.reps {
		if d := r.queue.Depth(); d != 4 {
			t.Fatalf("round-robin left %d frames on replica %d, want 4", d, r.id)
		}
	}

	_, fh := newTestFleet(t, 3, Config{ShardPolicy: HashShard, Seed: 1, Gate: online.GateConfig{Enabled: false}})
	want := fh.shardOf(&ds.Snapshots[0])
	for i := 0; i < 5; i++ {
		if got := fh.shardOf(&ds.Snapshots[0]); got != want {
			t.Fatalf("hash policy moved a stable frame: %d then %d", want, got)
		}
	}
	// dead replicas are skipped, not piled onto
	fh.reps[want].alive.Store(false)
	if got := fh.shardOf(&ds.Snapshots[0]); got == want {
		t.Fatal("hash policy routed to a dead replica")
	}
	fh.reps[0].alive.Store(false)
	fh.reps[1].alive.Store(false)
	fh.reps[2].alive.Store(false)
	if got := fh.shardOf(&ds.Snapshots[0]); got != -1 {
		t.Fatalf("sharder picked replica %d with none live", got)
	}
	if _, err := fh.Ingest(ds.Snapshots[0]); err != ErrNoReplica {
		t.Fatalf("ingest with no live replica: %v, want ErrNoReplica", err)
	}
}

func TestParseShardPolicy(t *testing.T) {
	for _, in := range []string{"round-robin", "rr", "roundrobin", ""} {
		if p, err := ParseShardPolicy(in); err != nil || p != RoundRobin {
			t.Fatalf("ParseShardPolicy(%q) = %v, %v", in, p, err)
		}
	}
	if p, err := ParseShardPolicy("hash"); err != nil || p != HashShard {
		t.Fatalf("ParseShardPolicy(hash) = %v, %v", p, err)
	}
	if _, err := ParseShardPolicy("banana"); err == nil {
		t.Fatal("ParseShardPolicy accepted banana")
	}
	if RoundRobin.String() != "round-robin" || HashShard.String() != "hash" {
		t.Fatal("policy names do not round-trip")
	}
}

// The router must rotate across healthy replicas and the aggregated stats
// must reconcile with the per-replica rows.
func TestRouterAndStats(t *testing.T) {
	ds, f := newTestFleet(t, 3, Config{Seed: 3, Gate: online.GateConfig{Enabled: false}})
	f.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := f.Stop(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	for i := 0; i < 9; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	for i := 0; i < 6; i++ {
		if f.Snapshot() == nil {
			t.Fatal("router returned nil with live replicas")
		}
	}
	st := f.FleetStats()
	if st.Replicas != 3 || st.Live != 3 {
		t.Fatalf("stats report %d/%d replicas, want 3/3", st.Live, st.Replicas)
	}
	if st.ShardPolicy != "round-robin" {
		t.Fatalf("stats report policy %q", st.ShardPolicy)
	}
	var routed int64
	for _, rs := range st.Replica {
		routed += rs.PredictsRouted
	}
	if routed != 6 {
		t.Fatalf("router accounted %d predicts, want 6", routed)
	}
	for _, rs := range st.Replica[1:] {
		if rs.PredictsRouted != st.Replica[0].PredictsRouted {
			t.Fatalf("router skew: %+v", st.Replica)
		}
	}
	agg := f.Stats()
	if agg.System != "Cu" {
		t.Fatalf("aggregated system %q", agg.System)
	}
	if agg.ReplayCapacity == 0 || agg.QueueCapacity == 0 {
		t.Fatal("aggregated capacities are zero")
	}
	if agg.FramesQueued != 9 {
		t.Fatalf("aggregated %d queued frames, want 9", agg.FramesQueued)
	}
}

// Checkpoint → Resume must restore every replica bitwise (shared weights,
// λ, P) and the per-replica replay RNG positions, so the resumed fleet's
// next step equals the uninterrupted fleet's next step exactly.
func TestFleetCheckpointResumeBitwise(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	// BatchSize is explicit: Resume must see the same sampling width the
	// original fleet used, or the replay RNG streams fan apart.
	cfg := Config{BatchSize: 2, MinFrames: 2, Seed: 9, CheckpointPath: path, Gate: online.GateConfig{Enabled: false}}
	ds, f := newTestFleet(t, 3, cfg)
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	for i := 0; i < 3; i++ {
		f.step()
	}
	if err := f.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Resume(ck, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Steps() != 3 || f2.Replicas() != 3 {
		t.Fatalf("resumed at step %d with %d replicas", f2.Steps(), f2.Replicas())
	}
	for i := range f.reps {
		w1 := f.reps[i].model.Params.FlattenValues()
		w2 := f2.reps[i].model.Params.FlattenValues()
		for j := range w1 {
			if w1[j] != w2[j] {
				t.Fatalf("replica %d weight %d differs after resume", i, j)
			}
		}
		if d := f.reps[i].opt.State().PDrift(f2.reps[i].opt.State()); d != 0 {
			t.Fatalf("replica %d P differs after resume by %g", i, d)
		}
		if f.reps[i].replay.Seen() != f2.reps[i].replay.Seen() {
			t.Fatalf("replica %d replay did not resume", i)
		}
	}
	// the decisive check: one more step on each fleet — same replay RNG
	// positions, same shared state — must stay bitwise equal.
	f.step()
	f2.step()
	assertBitwiseConsistent(t, f)
	assertBitwiseConsistent(t, f2)
	for i := range f.reps {
		w1 := f.reps[i].model.Params.FlattenValues()
		w2 := f2.reps[i].model.Params.FlattenValues()
		for j := range w1 {
			if w1[j] != w2[j] {
				t.Fatalf("replica %d weight %d diverged on the first post-resume step", i, j)
			}
		}
	}
	if f.reps[0].opt.Lambda() != f2.reps[0].opt.Lambda() {
		t.Fatal("λ diverged on the first post-resume step")
	}
}

// Race soak: concurrent sharded ingest, routed prediction and stats polling
// while the fleet conductor steps — run under -race (make race-fleet).
func TestFleetConcurrentSoak(t *testing.T) {
	ds, f := newTestFleet(t, 3, Config{
		SnapshotEvery: 1, TrainIdle: true, QueueSize: 8, QueuePolicy: online.DropNewest,
		Seed: 5, Gate: online.GateConfig{Enabled: true, Threshold: 0.5, Decay: 0.9, Warmup: 4},
	})
	f.Start()

	deadline := time.Now().Add(700 * time.Millisecond)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				if _, err := f.Ingest(ds.Snapshots[(p+i)%ds.Len()]); err != nil {
					return // queues closed during shutdown
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(p)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				snap := f.Snapshot()
				env, err := deepmd.BuildBatchEnv(snap.Model.Cfg, ds, []int{0})
				if err != nil {
					t.Error(err)
					return
				}
				out := snap.Model.Forward(env, true)
				if out.Energies.Value.Data[0] != out.Energies.Value.Data[0] {
					t.Error("snapshot forward produced NaN")
				}
				out.Graph.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			_ = f.Stats()
			_ = f.FleetStats()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Steps == 0 {
		t.Fatal("soak finished without a single fleet step")
	}
	if st.LastError != "" {
		t.Fatalf("fleet recorded error: %s", st.LastError)
	}
	assertBitwiseConsistent(t, f)
}
