package fleet

import (
	"errors"
	"math"
	"strings"
	"testing"

	"fekf/internal/cluster"
	"fekf/internal/cluster/tcptransport"
	"fekf/internal/online"
)

// Satellite 1 regression: the router rotation index must survive uint64
// counter wraparound.  Before the fix the modulo ran after an int
// conversion, so a wrapped counter produced a negative start index and
// Snapshot panicked on reps[-k].
func TestRouterSnapshotSurvivesWraparound(t *testing.T) {
	_, f := newTestFleet(t, 3, Config{Seed: 5, Gate: online.GateConfig{Enabled: false}})
	step := f.steps.Load()
	for _, r := range f.reps {
		r.publish(step)
	}
	// Park the counter just below wraparound and rotate across it.
	f.router.next.Store(math.MaxUint64 - 2)
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		s := f.router.Snapshot()
		if s == nil {
			t.Fatalf("Snapshot %d returned nil with all replicas published", i)
		}
		seen[int(s.Step)] = true
	}
	if f.router.next.Load() >= math.MaxUint64-2 {
		t.Fatal("counter never wrapped — test is not exercising the regression")
	}
	// And the n == 0 guard: a router over no replicas must not divide by
	// zero.
	empty := &Router{f: &Fleet{}}
	if s := empty.Snapshot(); s != nil {
		t.Fatalf("empty fleet returned snapshot %v, want nil", s)
	}
	_ = seen
}

// fleetWeights returns the first live replica's flattened weights.
func fleetWeights(f *Fleet) []float64 {
	return f.reps[f.liveIDs()[0]].model.Params.FlattenValues()
}

// The acceptance bar: a 3-replica fleet over TCP loopback must produce
// bitwise-identical weights and λ to the in-process transport for the same
// frame stream — including across an injected mid-step failure.
func TestFleetBitwiseChanVsTCP(t *testing.T) {
	run := func(transport string) ([]float64, float64) {
		ds, f := newTestFleet(t, 3, Config{
			Seed: 11, Gate: online.GateConfig{Enabled: false}, Transport: transport,
		})
		for i := 0; i < 12; i++ {
			if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
				t.Fatalf("ingest %d: %v %v", i, ok, err)
			}
		}
		f.drainAll()
		f.step()
		f.step()
		// Cooperative mid-step failure on replica 1: zero partials, full
		// collectives — deterministic on every transport.
		f.failStep = func(id int, step int64) error {
			if id == 1 {
				return errors.New("injected mid-step failure")
			}
			return nil
		}
		f.step()
		f.failStep = nil
		f.step()
		assertBitwiseConsistent(t, f)
		if f.WeightDrift() != 0 || f.PDrift() != 0 {
			t.Fatalf("%s: drift gauges %g/%g, want exactly 0", transport, f.WeightDrift(), f.PDrift())
		}
		st := f.FleetStats()
		if st.Transport.BytesSent == 0 {
			t.Fatalf("%s: no measured transport bytes: %+v", transport, st.Transport)
		}
		f.retireRing()
		return fleetWeights(f), f.reps[0].opt.Lambda()
	}
	chanW, chanL := run("chan")
	tcpW, tcpL := run("tcp")
	if chanL != tcpL {
		t.Fatalf("λ differs across transports: chan %x tcp %x", chanL, tcpL)
	}
	for i := range chanW {
		if chanW[i] != tcpW[i] {
			t.Fatalf("weight %d: chan %x != tcp %x — transports not bitwise equivalent",
				i, chanW[i], tcpW[i])
		}
	}
}

// A transient connection cut mid-step is absorbed by the TCP reconnect
// machinery: the step completes bitwise clean and the fleet reports
// nonzero reconnect counters.
func TestFleetTCPReconnectMidStep(t *testing.T) {
	rings := 0
	cfg := Config{Seed: 11, Gate: online.GateConfig{Enabled: false}}
	cfg.RingFactory = func(size int) (*cluster.Ring, error) {
		rings++
		g, err := tcptransport.NewLoopbackGroup(size, tcptransport.Options{RingID: "cut-test"})
		if err != nil {
			return nil, err
		}
		var tr cluster.Transport = g
		if rings == 1 {
			tr = cluster.NewFaultyTransport(g,
				cluster.FaultRule{Rank: 1, Msg: 3, Kind: cluster.FaultCut})
		}
		return cluster.NewRingOver(tr, cluster.RoCE25()), nil
	}
	ds, f := newTestFleet(t, 3, cfg)
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step()
	f.step()
	if f.Steps() != 2 {
		t.Fatalf("took %d steps, want 2 (last error %q)", f.Steps(), f.Stats().LastError)
	}
	assertBitwiseConsistent(t, f)
	st := f.FleetStats()
	if st.Transport.Reconnects < 1 {
		t.Fatalf("Reconnects = %d after a connection cut, want >= 1 (%+v)",
			st.Transport.Reconnects, st.Transport)
	}
	if st.Live != 3 {
		t.Fatalf("a transient cut killed a replica: %d live", st.Live)
	}
	f.retireRing()
}

// A hard peer failure (severed rank) must map onto the replica-death path:
// the dead replica leaves the fleet, the survivors are reconciled to
// exactly zero drift, stepping continues, and the stats report the peer
// failure.
func TestFleetTCPSeverMapsToReplicaDeath(t *testing.T) {
	rings := 0
	cfg := Config{Seed: 21, Gate: online.GateConfig{Enabled: false}}
	cfg.RingFactory = func(size int) (*cluster.Ring, error) {
		rings++
		g, err := tcptransport.NewLoopbackGroup(size, tcptransport.Options{RingID: "sever-test"})
		if err != nil {
			return nil, err
		}
		var tr cluster.Transport = g
		if rings == 2 {
			// Sever rank 1 mid-collective on the second ring's first step.
			tr = cluster.NewFaultyTransport(g,
				cluster.FaultRule{Rank: 1, Msg: 2, Kind: cluster.FaultSever})
		}
		return cluster.NewRingOver(tr, cluster.RoCE25()), nil
	}
	ds, f := newTestFleet(t, 3, cfg)
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step() // ring 1: healthy
	assertBitwiseConsistent(t, f)

	// Force a ring re-formation so the faulty ring (rings == 2) is built:
	// kill and revive replica 2 cooperatively.
	f.reps[2].alive.Store(false)
	f.step() // ring 2 (size 2): severed mid-step → rank 1 = replica 1 dies
	if !strings.Contains(f.Stats().LastError, "ring broken") {
		t.Fatalf("sever not surfaced: %q", f.Stats().LastError)
	}
	if f.reps[1].alive.Load() {
		t.Fatal("severed rank's replica still marked alive")
	}
	live := f.liveIDs()
	if len(live) != 1 || live[0] != 0 {
		t.Fatalf("live = %v, want [0]", live)
	}
	if f.WeightDrift() != 0 || f.PDrift() != 0 {
		t.Fatalf("drift gauges %g/%g after recovery, want exactly 0", f.WeightDrift(), f.PDrift())
	}

	// The fleet keeps training on the survivor, and a revived replica
	// catches up bitwise.
	f.step()
	f.reps[2].alive.Store(true)
	src := f.reps[0]
	modelBytes, err := encodeModel(src.model)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.reps[2].restoreShared(modelBytes, src.opt.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	f.step()
	assertBitwiseConsistent(t, f)

	st := f.FleetStats()
	if st.Transport.PeerFailures < 1 {
		t.Fatalf("PeerFailures = %d after a sever, want >= 1 (%+v)",
			st.Transport.PeerFailures, st.Transport)
	}
	if st.Transport.BytesSent == 0 {
		t.Fatal("no measured transport bytes accumulated")
	}
	f.retireRing()
}
