package fleet

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/fleet/clocktest"
	"fekf/internal/online"
	"fekf/internal/pshard"
	"fekf/internal/tensor"
)

// newPShardPair builds a sharded fleet and its replicated twin from the
// same stream, model and configuration, so every conductor decision
// (replay sampling, batch widths, ring size) lines up step for step and
// only the covariance layout differs.
func newPShardPair(t *testing.T, replicas int, cfg Config) (*dataset.Dataset, *Fleet, *Fleet) {
	t.Helper()
	pcfg := cfg
	pcfg.PShard = true
	ds, fp := newTestFleet(t, replicas, pcfg)
	_, fr := newTestFleet(t, replicas, cfg)
	return ds, fp, fr
}

// assemblePShardP reconstructs the full per-block covariance from the
// fleet's live shard states.
func assemblePShardP(t *testing.T, f *Fleet) []*tensor.Dense {
	t.Helper()
	var states []*pshard.State
	for _, id := range f.pliveIDs {
		if st := f.pstates[id]; st != nil {
			states = append(states, st)
		}
	}
	ck, err := pshard.BuildCheckpoint(states)
	if err != nil {
		t.Fatal(err)
	}
	var ps []*tensor.Dense
	for _, n := range ck.Sizes {
		ps = append(ps, tensor.New(n, n))
	}
	for _, s := range ck.Shards {
		n := ck.Sizes[s.Block]
		copy(ps[s.Block].Data[s.RowLo*n:s.RowHi*n], s.Rows)
	}
	return ps
}

// assertPShardMatchesReplicated is the fleet-level tentpole contract: the
// sharded fleet's weights, λ and reassembled P must equal the replicated
// twin's bitwise after the same step schedule.
func assertPShardMatchesReplicated(t *testing.T, fp, fr *Fleet) {
	t.Helper()
	lp, lr := fp.liveIDs(), fr.liveIDs()
	if len(lp) != len(lr) {
		t.Fatalf("live sets diverged: sharded %v, replicated %v", lp, lr)
	}
	for i := range lp {
		wp := fp.reps[lp[i]].model.Params.FlattenValues()
		wr := fr.reps[lr[i]].model.Params.FlattenValues()
		for j := range wp {
			if math.Float64bits(wp[j]) != math.Float64bits(wr[j]) {
				t.Fatalf("replica %d weight %d: sharded fleet diverges from replicated", lp[i], j)
			}
		}
	}
	refKS := fr.reps[lr[0]].opt.State()
	for _, id := range lp {
		st := fp.pstates[id]
		if st == nil {
			t.Fatalf("live replica %d holds no shard state", id)
		}
		if math.Float64bits(st.Lambda) != math.Float64bits(refKS.Lambda) {
			t.Fatalf("replica %d sharded λ %v, replicated %v", id, st.Lambda, refKS.Lambda)
		}
	}
	for bi, p := range assemblePShardP(t, fp) {
		for j := range p.Data {
			if math.Float64bits(p.Data[j]) != math.Float64bits(refKS.P[bi].Data[j]) {
				t.Fatalf("block %d element %d: reassembled sharded P diverges from replicated", bi, j)
			}
		}
	}
	if fp.PDrift() != 0 {
		t.Fatalf("sharded P-drift gauge reads %g, want exactly 0", fp.PDrift())
	}
	if fp.WeightDrift() != 0 {
		t.Fatalf("sharded weight-drift gauge reads %g, want exactly 0", fp.WeightDrift())
	}
}

// The tentpole, fleet edition: a sharded fleet must stay bitwise identical
// to the replicated fleet over the same stream — weights, λ and the
// reassembled covariance — while each replica holds only ~1/R of P.
func TestPShardFleetLockstepBitwise(t *testing.T) {
	ds, fp, fr := newPShardPair(t, 3, Config{Seed: 11, Gate: online.GateConfig{Enabled: false}})
	for i := 0; i < 12; i++ {
		if ok, err := fp.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("sharded ingest %d: %v %v", i, ok, err)
		}
		if ok, err := fr.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("replicated ingest %d: %v %v", i, ok, err)
		}
	}
	fp.drainAll()
	fr.drainAll()
	for i := 0; i < 4; i++ {
		fp.step()
		fr.step()
		assertPShardMatchesReplicated(t, fp, fr)
	}
	if fp.Steps() != 4 {
		t.Fatalf("sharded fleet took %d steps, want 4 (last error %q)", fp.Steps(), fp.Stats().LastError)
	}

	// Memory: every rank holds a strict fraction of the covariance and the
	// fractions tile it exactly.
	ps := fp.FleetStats().PShard
	if ps == nil {
		t.Fatal("sharded fleet stats have no pshard row")
	}
	if ps.Ranks != 3 || len(ps.ResidentBytesPerRank) != 3 {
		t.Fatalf("pshard row %+v, want 3 ranks", ps)
	}
	var sum int64
	for r, b := range ps.ResidentBytesPerRank {
		if b <= 0 || b >= ps.TotalBytes {
			t.Fatalf("rank %d resident %d bytes of total %d: not a strict share", r, b, ps.TotalBytes)
		}
		sum += b
	}
	if sum != ps.TotalBytes {
		t.Fatalf("resident bytes sum %d != total %d", sum, ps.TotalBytes)
	}
	if ps.ExchangeBytesPerStep <= 0 {
		t.Fatal("pshard row models no exchange traffic")
	}
	// The replicated twin reports the full P on every replica; the sharded
	// fleet's summed residency equals one replicated copy.
	if got := fp.Stats().PResidentBytes; got != ps.TotalBytes {
		t.Fatalf("sharded fleet resident P %d, want %d", got, ps.TotalBytes)
	}
	if got, want := fr.Stats().PResidentBytes, 3*ps.TotalBytes; got != want {
		t.Fatalf("replicated fleet resident P %d, want %d (full copy per replica)", got, want)
	}
	byID := map[int]int64{}
	for rank, id := range ps.RankReplicaIDs {
		byID[id] = ps.ResidentBytesPerRank[rank]
	}
	for _, rs := range fp.FleetStats().Replica {
		if rs.Alive && rs.PResidentBytes != byID[rs.ID] {
			t.Fatalf("replica %d stats report %d resident bytes, assignment says %d",
				rs.ID, rs.PResidentBytes, byID[rs.ID])
		}
	}
}

// The exchange collective must be bitwise transport-transparent at the
// fleet level too: a sharded fleet running its ring over TCP loopback
// stays in lockstep with one running over in-process channels.
func TestPShardFleetTCPBitwise(t *testing.T) {
	tcpCfg := Config{Seed: 19, Gate: online.GateConfig{Enabled: false}, Transport: "tcp"}
	chanCfg := Config{Seed: 19, Gate: online.GateConfig{Enabled: false}}
	tcpCfg.PShard, chanCfg.PShard = true, true
	ds, ft := newTestFleet(t, 2, tcpCfg)
	_, fc := newTestFleet(t, 2, chanCfg)
	for i := 0; i < 8; i++ {
		ft.Ingest(ds.Snapshots[i])
		fc.Ingest(ds.Snapshots[i])
	}
	ft.drainAll()
	fc.drainAll()
	for i := 0; i < 2; i++ {
		ft.step()
		fc.step()
	}
	if ft.Steps() != 2 || fc.Steps() != 2 {
		t.Fatalf("steps %d/%d, want 2/2 (errors %q / %q)",
			ft.Steps(), fc.Steps(), ft.Stats().LastError, fc.Stats().LastError)
	}
	for i := range ft.reps {
		wt := ft.reps[i].model.Params.FlattenValues()
		wc := fc.reps[i].model.Params.FlattenValues()
		for j := range wt {
			if math.Float64bits(wt[j]) != math.Float64bits(wc[j]) {
				t.Fatalf("replica %d weight %d: TCP ring diverges from chan ring", i, j)
			}
		}
	}
	pt, pc := assemblePShardP(t, ft), assemblePShardP(t, fc)
	for bi := range pt {
		for j := range pt[bi].Data {
			if math.Float64bits(pt[bi].Data[j]) != math.Float64bits(pc[bi].Data[j]) {
				t.Fatalf("block %d element %d: sharded P differs across transports", bi, j)
			}
		}
	}
}

// Kill and revive under sharding: the victim's slabs migrate to the
// survivors through the in-memory sharded checkpoint and back again at
// revive — every P row bitwise preserved, proven by lockstep equality with
// a replicated twin driven through the identical membership schedule.
func TestPShardKillReviveBitwise(t *testing.T) {
	ds, fp, fr := newPShardPair(t, 3, Config{Seed: 13, Gate: online.GateConfig{Enabled: false}})
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		fp.Ingest(ds.Snapshots[i])
		fr.Ingest(ds.Snapshots[i])
	}
	fp.drainAll()
	fr.drainAll()
	fp.step()
	fr.step()
	assertPShardMatchesReplicated(t, fp, fr)

	if err := fp.Kill(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := fr.Kill(ctx, 1); err != nil {
		t.Fatal(err)
	}
	fp.step() // repartitions 3 → 2 before stepping
	fr.step()
	assertPShardMatchesReplicated(t, fp, fr)
	if ps := fp.FleetStats().PShard; ps.Ranks != 2 {
		t.Fatalf("after kill the pshard row reports %d ranks, want 2", ps.Ranks)
	}
	if got := fp.reps[1].pBytes.Load(); got != 0 {
		t.Fatalf("dead replica still reports %d resident P bytes", got)
	}

	if err := fp.Revive(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := fr.Revive(ctx, 1); err != nil {
		t.Fatal(err)
	}
	fp.step() // repartitions 2 → 3
	fr.step()
	assertPShardMatchesReplicated(t, fp, fr)
	if ps := fp.FleetStats().PShard; ps.Ranks != 3 {
		t.Fatalf("after revive the pshard row reports %d ranks, want 3", ps.Ranks)
	}
}

// Checkpoint → Resume for a sharded fleet: the covariance is stored once
// (each slab by its owner, never per replica), the replicas carry no full
// Kalman state, and the resumed fleet's next step stays bitwise equal to
// the uninterrupted one.
func TestPShardCheckpointResumeBitwise(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pshard-fleet.ckpt")
	cfg := Config{PShard: true, BatchSize: 2, MinFrames: 2, Seed: 9,
		CheckpointPath: path, Gate: online.GateConfig{Enabled: false}}
	ds, f := newTestFleet(t, 3, cfg)
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	for i := 0; i < 3; i++ {
		f.step()
	}
	if err := f.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.PShard || ck.PCk == nil {
		t.Fatal("checkpoint did not record the sharded covariance")
	}
	if ck.Opt.Kalman != nil {
		t.Fatal("sharded checkpoint also stored a full Kalman state")
	}
	f2, err := Resume(ck, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Steps() != 3 || !f2.cfg.PShard {
		t.Fatalf("resumed at step %d (pshard=%v)", f2.Steps(), f2.cfg.PShard)
	}
	p1, p2 := assemblePShardP(t, f), assemblePShardP(t, f2)
	for bi := range p1 {
		for j := range p1[bi].Data {
			if math.Float64bits(p1[bi].Data[j]) != math.Float64bits(p2[bi].Data[j]) {
				t.Fatalf("block %d element %d: resumed P differs", bi, j)
			}
		}
	}
	f.step()
	f2.step()
	for i := range f.reps {
		w1 := f.reps[i].model.Params.FlattenValues()
		w2 := f2.reps[i].model.Params.FlattenValues()
		for j := range w1 {
			if w1[j] != w2[j] {
				t.Fatalf("replica %d weight %d diverged on the first post-resume step", i, j)
			}
		}
	}
	if f.pstates[0].Lambda != f2.pstates[0].Lambda {
		t.Fatal("λ diverged on the first post-resume step")
	}
}

// Hard-failure recovery: a dead rank's slabs are lost and a survivor with
// diverged scalar state is untrustworthy — recoverShards must keep the
// reference survivor's rows bitwise, reset every unrecoverable row to the
// identity prior, and leave the fleet stepping with consistent shards.
func TestPShardRecoverShards(t *testing.T) {
	cfg := Config{PShard: true, Seed: 17, Gate: online.GateConfig{Enabled: false}}
	ds, f := newTestFleet(t, 3, cfg)
	for i := 0; i < 12; i++ {
		f.Ingest(ds.Snapshots[i])
	}
	f.drainAll()
	f.step()
	f.step()

	// Snapshot rank 0's slabs before the failure.
	ck0, err := pshard.BuildCheckpoint([]*pshard.State{f.pstates[0]})
	if err != nil {
		t.Fatal(err)
	}
	before := f.pstates[0]

	// Replica 2 dies hard; replica 1's scalar state diverges (it applied a
	// measurement the others aborted).
	f.reps[2].alive.Store(false)
	f.pstates[1].Lambda = math.Nextafter(f.pstates[1].Lambda, 1)
	f.recoverShards(f.liveIDs())

	if ps := f.pstats.Load(); ps.Ranks != 2 {
		t.Fatalf("recovered assignment has %d ranks, want 2", ps.Ranks)
	}
	rows := assemblePShardP(t, f)
	// Rows rank 0 owned before the failure must survive bitwise; every
	// other row restarts at the identity prior.
	for _, s := range ck0.Shards {
		n := len(s.Rows) / s.RowCount()
		for r := 0; r < s.RowCount(); r++ {
			for j := 0; j < n; j++ {
				got := rows[s.Block].At(s.RowLo+r, j)
				if math.Float64bits(got) != math.Float64bits(s.Rows[r*n+j]) {
					t.Fatalf("block %d row %d col %d not preserved through recovery", s.Block, s.RowLo+r, j)
				}
			}
		}
	}
	owned := make(map[[2]int]bool)
	for _, s := range ck0.Shards {
		for r := s.RowLo; r < s.RowHi; r++ {
			owned[[2]int{s.Block, r}] = true
		}
	}
	for bi, p := range rows {
		n := p.Rows
		for r := 0; r < n; r++ {
			if owned[[2]int{bi, r}] {
				continue
			}
			for j := 0; j < n; j++ {
				want := 0.0
				if j == r {
					want = 1
				}
				if p.At(r, j) != want {
					t.Fatalf("lost block %d row %d did not reset to the identity prior", bi, r)
				}
			}
		}
	}
	// The λ epoch follows the reference survivor, not the diverged rank.
	if f.pstates[0].Lambda != before.Lambda {
		t.Fatal("recovery moved the reference scalar state")
	}
	// And the fleet keeps stepping with zero drift.
	f.step()
	if d := f.shardDrift(f.liveIDs()); d != 0 {
		t.Fatalf("post-recovery shard drift %g, want 0", d)
	}
}

// The autoscaler must charge a transition's shard-migration cost against
// its cooldown: an expensive repartition defers the scale event until the
// modeled transfer time has also elapsed.
func TestAutoscaleReassignCostExtendsCooldown(t *testing.T) {
	clk := clocktest.New(time.Unix(0, 0))
	cfg := AutoscaleConfig{Enabled: true, Min: 1, Max: 4,
		UpCooldown: 2 * time.Second, ReassignBytesPerSec: 1 << 20} // 1 MiB/s
	a, err := NewAutoscaler(cfg, 2, clk)
	if err != nil {
		t.Fatal(err)
	}
	hot := Sample{Live: 2, QueueOccupancy: 0.9, GateAcceptRate: 1, ReassignBytesUp: 3 << 20} // 3s of transfer
	if v := a.Evaluate(hot); v.Decision != ScaleUp {
		t.Fatalf("first verdict %+v, want immediate up", v)
	} else if !strings.Contains(v.Reason, "shard bytes") {
		t.Fatalf("reason %q does not mention the repartition cost", v.Reason)
	}
	// Past the base cooldown but inside cooldown+transfer: still held.
	clk.Advance(4 * time.Second)
	if v := a.Evaluate(hot); v.Decision != Hold || !strings.Contains(v.Reason, "cooldown") {
		t.Fatalf("verdict %+v, want hold on extended cooldown", v)
	}
	// A cheap transition with the same pressure is already allowed.
	cheap := hot
	cheap.ReassignBytesUp = 0
	if v := a.Evaluate(cheap); v.Decision != ScaleUp {
		t.Fatalf("verdict %+v, want up for the zero-cost transition", v)
	}
	// And past cooldown+transfer the expensive one commits too.
	clk.Advance(6 * time.Second)
	if v := a.Evaluate(hot); v.Decision != ScaleUp {
		t.Fatalf("verdict %+v, want up after the transfer window", v)
	}
}
