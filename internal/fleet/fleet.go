package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fekf/internal/cluster"
	"fekf/internal/cluster/tcptransport"
	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/guard"
	"fekf/internal/md"
	"fekf/internal/obs"
	"fekf/internal/online"
	"fekf/internal/optimize"
	"fekf/internal/pshard"
)

// ErrNoReplica is returned by Ingest when every replica is dead.
var ErrNoReplica = errors.New("fleet: no live replica")

// Config controls the fleet.
type Config struct {
	// Replicas is the number of model replicas (minimum 1).
	Replicas int
	// ShardPolicy selects how ingest frames are partitioned.
	ShardPolicy ShardPolicy
	// PShard shards the Kalman covariance P across the replicas instead of
	// replicating it: each replica holds only its assigned row slabs (see
	// internal/pshard), the per-step P·g fragments are exchanged over the
	// ring, and the weights stay bitwise identical to the replicated fleet.
	// Use it when P does not fit one host; the per-replica resident P drops
	// to ~1/R of the replicated footprint at the cost of one extra
	// allgather per measurement update.
	PShard bool
	// pshardResume carries a sharded covariance checkpoint from Resume
	// into New, so the initial shard states restore instead of starting
	// from the identity prior.
	pshardResume *pshard.Checkpoint
	// BatchSize is the per-replica minibatch drawn from each replica's
	// replay buffer per lockstep step; the global batch is the union.
	BatchSize int
	// QueueSize and QueuePolicy bound each per-shard ingest queue.
	QueueSize   int
	QueuePolicy online.Policy
	// WindowSize and ReservoirSize size each replica's replay buffer.
	WindowSize, ReservoirSize int
	// MinFrames is the fleet-total replay population required before
	// stepping starts (defaults to BatchSize).
	MinFrames int
	// SnapshotEvery publishes fresh per-replica snapshots every that many
	// steps (default 8; initial snapshots are published at Start).
	SnapshotEvery int
	// CheckpointPath, with CheckpointEvery > 0, receives a crash-safe
	// fleet checkpoint every CheckpointEvery steps and a final one at Stop.
	CheckpointPath  string
	CheckpointEvery int
	// CheckpointKeep > 0 turns CheckpointPath into a checksummed retention
	// ring: each write lands as a CRC32-C framed generation
	// (ckpt.000017.gob style) and the last CheckpointKeep generations are
	// retained, giving the divergence guard healthy states to roll the
	// whole fleet back to.  0 keeps the legacy single-file behaviour.
	CheckpointKeep int
	// Guard, when Enabled, runs the numerical health sentinel on the
	// conductor after every lockstep step (λ bounds, sampled weight /
	// P-diagonal finiteness and blow-up thresholds); a divergence rolls
	// every replica — and the covariance shards under PShard — back to the
	// newest valid checkpoint generation bitwise.
	Guard guard.SentinelConfig
	// StepTimeout, when > 0, arms a watchdog on every collective step: if
	// the step has not completed within the deadline (measured on Clock),
	// the conductor aborts the stuck rank's transport, which maps the hang
	// onto the existing ring-broken → replica-death → reconcile path.
	StepTimeout time.Duration
	// Chaos deterministically injects faults (weight poison at step k, a
	// rank hung at step k) to drive the guard's recovery paths under test.
	// A configured hang requires StepTimeout > 0.
	Chaos guard.ChaosConfig
	// Gate configures per-replica uncertainty gating.
	Gate online.GateConfig
	// TrainIdle keeps stepping on the replay buffers while no new frames
	// arrive.
	TrainIdle bool
	// PollInterval is the conductor's idle wait (default 10ms).
	PollInterval time.Duration
	// Seed drives replay sampling; replica i uses Seed+i.
	Seed int64
	// OnStep, if non-nil, runs on the conductor after every fleet step.
	OnStep func(step int64, info optimize.StepInfo)
	// Transport selects the ring wire: "" or "chan" for the in-process
	// channel transport, "tcp" for TCP loopback sockets (same schedule,
	// bitwise-identical reductions, real deadlines/reconnects/failure
	// detection).
	Transport string
	// RingFactory, when non-nil, overrides Transport and builds each ring
	// outright — the fault-injection tests use it to wrap transports with
	// deterministic drop/delay/sever rules.
	RingFactory func(size int) (*cluster.Ring, error)
	// Clock supplies time to the conductor: snapshot provenance, the idle
	// wait, step-latency measurement and autoscaler cooldowns.  Nil means
	// the system clock; tests inject clocktest.Clock for determinism.
	Clock Clock
	// Autoscale, when Enabled, lets the conductor grow and shrink the
	// live replica count between Autoscale.Min and Autoscale.Max from
	// measured queue pressure.  The fleet then allocates
	// max(Autoscale.Max, Replicas) slots up front and starts with
	// Replicas (clamped into the band) of them live.
	Autoscale AutoscaleConfig
	// Metrics, when non-nil, receives step/checkpoint latency and
	// membership/autoscale event counts (see NewMetrics).
	Metrics *Metrics
	// Trace, when non-nil, records per-step phase timelines — conductor
	// phases plus every rank's backward/allreduce/gain/drain spans — into
	// the ring served at /v1/trace.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = 8
	}
	if c.QueueSize < 1 {
		c.QueueSize = 256
	}
	if c.WindowSize < 1 {
		c.WindowSize = 256
	}
	if c.ReservoirSize < 1 {
		c.ReservoirSize = 256
	}
	if c.MinFrames < 1 {
		c.MinFrames = c.BatchSize
	}
	if c.SnapshotEvery < 1 {
		c.SnapshotEvery = 8
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = SystemClock
	}
	return c
}

// Fleet couples N online-trainer replicas through a ring: sharded ingest,
// funnel-aggregated lockstep steps keeping every replica's weights and P
// bitwise identical, a snapshot router for predictions, and kill / rejoin
// with checkpoint catch-up.  One conductor goroutine owns all training
// state; ingest, routing and stats are safe from any goroutine.
type Fleet struct {
	cfg     Config
	system  string
	species []md.Species
	naPer   atomic.Int64

	reps   []*replica
	router *Router
	clock  Clock

	// rec accumulates the phase spans of the upcoming lockstep step
	// (ingest/gate activity between steps is attributed to the step it
	// feeds).  Owned by the conductor; nil when tracing is off.
	rec *obs.StepRecorder

	// autoscaler state: the controller itself (nil when disabled), the
	// conductor-owned evaluation bookkeeping, and the mirrored
	// step-latency EMA the sampler and stats read.
	scaler      *Autoscaler
	lastEval    time.Time // conductor-owned
	peakOcc     float64   // conductor-owned: peak occupancy since lastEval
	stepLatBits atomic.Uint64

	// ring over the live replicas, re-formed when membership changes;
	// retired rings' accounting accumulates into the retired counters.
	ring        atomic.Pointer[cluster.Ring]
	ringIDs     []int // conductor-owned: replica id per ring rank
	ringEpoch   int64 // conductor-owned: rings formed so far (ring ids)
	retiredWire atomic.Int64
	retiredOps  atomic.Int64
	retiredMu   sync.Mutex
	retiredTr   cluster.TransportStats

	// sharded-covariance state (PShard mode; all conductor-owned except
	// the pstats mirror): the fixed block structure, the per-slot shard
	// states (nil for slots holding no shards), the installed assignment
	// and the live set it was built for.
	pblocks  []optimize.Block
	pstates  []*pshard.State
	passign  pshard.Assignment
	pliveIDs []int
	pstats   atomic.Pointer[PShardStats]

	rr atomic.Uint64 // round-robin shard cursor

	// self-healing state: the checksummed checkpoint ring (nil without
	// CheckpointKeep), the numerical sentinel (nil unless Guard.Enabled),
	// the always-present health ledger, and the conductor-owned one-shot
	// flags for the chaos injectors.
	ckRing    *guard.Ring
	sentinel  *guard.Sentinel
	health    *guard.Health
	poisoned  bool // conductor-owned: chaos weight poison fired
	hangFired bool // conductor-owned: chaos rank hang fired

	steps      atomic.Int64
	lambdaBits atomic.Uint64
	wDriftBits atomic.Uint64
	pDriftBits atomic.Uint64
	ckWrites   atomic.Int64
	lastErr    atomic.Pointer[string]

	// forceGroups is the optimizer's force-group count, cached at build
	// time: it is invariant for the fleet's lifetime, and reading it off a
	// live replica's optimizer would race with a guard rollback swapping
	// that optimizer out (Stats runs from any goroutine).
	forceGroups int

	// failStep, when non-nil, injects a per-replica failure into a step
	// (after the environment build); the failure-path tests use it to
	// prove a crashing replica cannot make the survivors diverge.
	failStep func(id int, step int64) error

	ctl      chan func()
	stop     chan struct{}
	loopDone chan struct{}
	started  atomic.Bool
	stopOnce sync.Once
}

// New builds a fleet of cfg.Replicas replicas cloned from an initialized
// model and a prototype FEKF optimizer (its hyper-parameters — and Kalman
// state, if any — are replicated bitwise).  proto supplies the system name
// and species table every streamed frame must match.
func New(m *deepmd.Model, opt *optimize.FEKF, proto *dataset.Dataset, cfg Config) (*Fleet, error) {
	if m == nil || opt == nil {
		return nil, fmt.Errorf("fleet: New needs a model and an optimizer")
	}
	if proto == nil || len(proto.Species) == 0 {
		return nil, fmt.Errorf("fleet: New needs a prototype dataset with a species table")
	}
	if len(proto.Species) != m.Cfg.NumSpecies {
		return nil, fmt.Errorf("fleet: prototype has %d species, model wants %d", len(proto.Species), m.Cfg.NumSpecies)
	}
	cfg = cfg.withDefaults()
	if cfg.Chaos.HangStep > 0 && cfg.StepTimeout <= 0 {
		return nil, fmt.Errorf("fleet: a chaos hang needs StepTimeout > 0 to be recoverable")
	}
	f := &Fleet{
		cfg:     cfg,
		system:  proto.System,
		species: proto.Species,
		clock:   cfg.Clock,

		ctl:      make(chan func()),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	// With autoscaling, every slot the controller may ever grow into is
	// allocated up front (replicas are cheap clones of one model); slots
	// beyond the initial live count start dead and are revived through
	// the checkpoint catch-up path when pressure demands them.
	slots, live := cfg.Replicas, cfg.Replicas
	if cfg.Autoscale.Enabled {
		scaler, err := NewAutoscaler(cfg.Autoscale, cfg.Replicas, cfg.Clock)
		if err != nil {
			return nil, err
		}
		f.scaler = scaler
		ac := scaler.Config()
		if ac.Max > slots {
			slots = ac.Max
		}
		if live < ac.Min {
			live = ac.Min
		}
		if live > ac.Max {
			live = ac.Max
		}
	}
	for i := 0; i < slots; i++ {
		r, err := newReplica(i, m, opt, cfg)
		if err != nil {
			return nil, err
		}
		r.alive.Store(i < live)
		f.reps = append(f.reps, r)
	}
	if cfg.CheckpointPath != "" && cfg.CheckpointKeep > 0 {
		f.ckRing = guard.NewRing(cfg.CheckpointPath, cfg.CheckpointKeep)
	}
	if cfg.Guard.Enabled {
		f.sentinel = guard.NewSentinel(cfg.Guard)
	}
	f.health = guard.NewHealth(0)
	f.router = &Router{f: f}
	if proto.Len() > 0 {
		f.naPer.Store(int64(proto.Snapshots[0].NumAtoms()))
	}
	f.lambdaBits.Store(math.Float64bits(f.reps[0].opt.Lambda()))
	f.forceGroups = f.reps[0].opt.ForceGroups
	if cfg.PShard {
		if err := f.initShards(m, opt, f.liveIDs()); err != nil {
			return nil, err
		}
		f.storeLambda(f.liveIDs())
	}
	return f, nil
}

// Species returns the species table frames and predictions must use.
func (f *Fleet) Species() []md.Species { return f.species }

// System returns the physical system name.
func (f *Fleet) System() string { return f.system }

// NumAtoms returns the per-frame atom count the fleet is locked to, or 0
// before the first frame fixes it.
func (f *Fleet) NumAtoms() int { return int(f.naPer.Load()) }

// Replicas returns the configured replica count.
func (f *Fleet) Replicas() int { return len(f.reps) }

// Router returns the predict-tier snapshot router.
func (f *Fleet) Router() *Router { return f.router }

// Steps returns the number of completed lockstep steps.
func (f *Fleet) Steps() int64 { return f.steps.Load() }

// liveIDs returns the ids of the live replicas, in id order.
func (f *Fleet) liveIDs() []int {
	ids := make([]int, 0, len(f.reps))
	for _, r := range f.reps {
		if r.alive.Load() {
			ids = append(ids, r.id)
		}
	}
	return ids
}

// Ingest validates one labelled frame, shards it to a live replica's queue
// and reports whether it was accepted (false without error means dropped
// by queue policy).  Safe from any goroutine.
func (f *Fleet) Ingest(s dataset.Snapshot) (bool, error) {
	if err := online.ValidateFrame(&s, f.species, int(f.naPer.Load())); err != nil {
		return false, err
	}
	f.naPer.CompareAndSwap(0, int64(s.NumAtoms()))
	id := f.shardOf(&s)
	if id < 0 {
		return false, ErrNoReplica
	}
	return f.reps[id].queue.Push(s)
}

// Snapshot returns a model snapshot through the predict router: the next
// healthy replica in rotation, falling back to the freshest published
// snapshot when no replica is healthy.  Never nil after Start.
func (f *Fleet) Snapshot() *online.ModelSnapshot { return f.router.Snapshot() }

// Start publishes the initial snapshots and launches the conductor.
func (f *Fleet) Start() {
	if !f.started.CompareAndSwap(false, true) {
		return
	}
	step := f.steps.Load()
	for _, r := range f.reps {
		if r.alive.Load() {
			r.publish(step)
		}
	}
	go f.loop()
}

// Stop shuts the fleet down gracefully: the shard queues close (rejecting
// new frames), the conductor finishes its in-flight step and drains the
// live replicas' backlogs through their gates, final snapshots are
// published and — when CheckpointPath is set — a final fleet checkpoint
// written.  ctx bounds the wait.
func (f *Fleet) Stop(ctx context.Context) error {
	if !f.started.Load() {
		return fmt.Errorf("fleet: Stop before Start")
	}
	f.stopOnce.Do(func() {
		for _, r := range f.reps {
			r.queue.Close()
		}
		close(f.stop)
	})
	select {
	case <-f.loopDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	// The conductor has exited: this goroutine now owns the state.
	f.retireRing() // release transport sockets/goroutines; stats accumulate
	step := f.steps.Load()
	for _, r := range f.reps {
		if r.alive.Load() {
			r.publish(step)
		}
	}
	if f.cfg.CheckpointPath != "" {
		return f.WriteCheckpoint(f.cfg.CheckpointPath)
	}
	return nil
}

// do runs fn with exclusive ownership of the training state: on the
// conductor between steps while the loop runs, inline otherwise.
func (f *Fleet) do(ctx context.Context, fn func() error) error {
	if !f.started.Load() {
		return fn()
	}
	reply := make(chan error, 1)
	select {
	case f.ctl <- func() { reply <- fn() }:
	case <-f.loopDone:
		return fn()
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-reply:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill marks a replica dead: the sharder and the predict router stop
// routing to it, and the next step re-forms the ring over the survivors.
// Frames already queued on its shard stay buffered for catch-up at rejoin.
// In-flight predictions served from its snapshot complete normally
// (snapshots are immutable).
func (f *Fleet) Kill(ctx context.Context, id int) error {
	return f.do(ctx, func() error { return f.killLocked(id) })
}

// killLocked is Kill's body: it requires exclusive ownership of the
// training state (conductor, or pre-Start/post-Stop).
func (f *Fleet) killLocked(id int) error {
	if id < 0 || id >= len(f.reps) {
		return fmt.Errorf("fleet: no replica %d", id)
	}
	if !f.reps[id].alive.Load() {
		return fmt.Errorf("fleet: replica %d is already dead", id)
	}
	f.reps[id].alive.Store(false)
	if m := f.cfg.Metrics; m != nil {
		m.Kills.Inc()
	}
	return nil
}

// Revive rejoins a dead replica through checkpoint catch-up: the shared
// state (model weights + full Kalman filter) is checkpointed from a live
// survivor and restored into the replica, which therefore rejoins bitwise
// identical — drift is exactly zero again — and then drains its backlog
// queue on the next conductor pass.
func (f *Fleet) Revive(ctx context.Context, id int) error {
	return f.do(ctx, func() error { return f.reviveLocked(id) })
}

// reviveLocked is Revive's body: it requires exclusive ownership of the
// training state (conductor, or pre-Start/post-Stop).
func (f *Fleet) reviveLocked(id int) error {
	if id < 0 || id >= len(f.reps) {
		return fmt.Errorf("fleet: no replica %d", id)
	}
	r := f.reps[id]
	if r.alive.Load() {
		return fmt.Errorf("fleet: replica %d is already live", id)
	}
	live := f.liveIDs()
	if len(live) == 0 {
		return fmt.Errorf("fleet: no live replica to catch up from")
	}
	src := f.reps[live[0]]
	modelBytes, err := encodeModel(src.model)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint survivor %d: %w", src.id, err)
	}
	if err := r.restoreShared(modelBytes, src.opt.Checkpoint()); err != nil {
		return err
	}
	r.alive.Store(true)
	r.publish(f.steps.Load())
	if m := f.cfg.Metrics; m != nil {
		m.Revives.Inc()
	}
	return nil
}

// CheckpointNow asks the conductor to write a fleet checkpoint to
// CheckpointPath between steps and waits for the result.
func (f *Fleet) CheckpointNow(ctx context.Context) error {
	if f.cfg.CheckpointPath == "" {
		return fmt.Errorf("fleet: no CheckpointPath configured")
	}
	return f.do(ctx, func() error { return f.writeCheckpointCounted(f.cfg.CheckpointPath) })
}

// loop is the conductor: observe pressure → drain shards → gate → replay
// → autoscale → lockstep step → publish, with control requests (kill /
// revive / checkpoint) executed between steps.
func (f *Fleet) loop() {
	defer close(f.loopDone)
	for {
		select {
		case <-f.stop:
			f.drainFinal()
			return
		case fn := <-f.ctl:
			fn()
			continue
		default:
		}
		f.notePressure() // before the drain empties the queues
		got := f.drainAll()
		f.maybeAutoscale()
		ready := f.replayTotal() >= f.cfg.MinFrames
		if got == 0 && !(f.cfg.TrainIdle && ready) {
			select {
			case <-f.stop:
				f.drainFinal()
				return
			case fn := <-f.ctl:
				fn()
			case <-f.clock.After(f.cfg.PollInterval):
			}
			continue
		}
		if ready && (got > 0 || f.cfg.TrainIdle) {
			f.step()
		}
	}
}

// notePressure records the peak per-replica queue occupancy since the
// last autoscaler evaluation.  It runs at the top of every conductor
// iteration — before drainAll empties the queues — so a burst absorbed
// between two evaluations still registers as pressure.  Conductor only.
func (f *Fleet) notePressure() {
	if f.scaler == nil {
		return
	}
	for _, r := range f.reps {
		if !r.alive.Load() {
			continue
		}
		if occ := r.queue.Occupancy(); occ > f.peakOcc {
			f.peakOcc = occ
		}
	}
}

// maybeAutoscale runs one autoscaler evaluation when the control interval
// has elapsed, and applies the decision through the same membership paths
// Kill and Revive use — the next step re-forms the ring over the new live
// set and the drift invariants are refreshed as usual.  Conductor only.
func (f *Fleet) maybeAutoscale() {
	if f.scaler == nil {
		return
	}
	now := f.clock.Now()
	if !f.lastEval.IsZero() && now.Sub(f.lastEval) < f.scaler.Config().Interval {
		return
	}
	f.lastEval = now
	live := f.liveIDs()
	backlog := 0
	var accepted, gated int64
	for _, r := range f.reps {
		backlog += r.queue.Depth()
		accepted += r.accepted.Load()
		gated += r.gatedOut.Load()
	}
	acceptRate := 1.0 // unscored stream: no evidence of redundancy
	if scored := accepted + gated; scored > 0 {
		acceptRate = float64(accepted) / float64(scored)
	}
	s := Sample{
		Live:           len(live),
		QueueOccupancy: f.peakOcc,
		GateAcceptRate: acceptRate,
		StepLatency:    f.stepLatency(),
		Backlog:        backlog,
	}
	if f.cfg.PShard && f.passign.Ranks > 0 {
		// Shard-reassignment cost of the candidate transitions: growing or
		// shrinking the fleet repartitions P, and the controller charges
		// the modeled transfer time against its cooldowns.
		if len(live) < len(f.reps) && len(live) > 0 {
			s.ReassignBytesUp = pshard.ReassignBytes(f.passign, pshard.Partition(f.pblocks, len(live)+1))
		}
		if len(live) > 1 {
			s.ReassignBytesDown = pshard.ReassignBytes(f.passign, pshard.Partition(f.pblocks, len(live)-1))
		}
	}
	f.peakOcc = 0
	v := f.scaler.Evaluate(s)
	if m := f.cfg.Metrics; m != nil {
		m.AutoscaleEvals.Inc()
	}
	switch v.Decision {
	case ScaleUp:
		if m := f.cfg.Metrics; m != nil {
			m.ScaleUps.Inc()
		}
		f.scaleUp(live)
	case ScaleDown:
		if m := f.cfg.Metrics; m != nil {
			m.ScaleDowns.Inc()
		}
		f.scaleDown(live)
	}
}

// scaleUp revives the lowest dead slot through the checkpoint catch-up
// path, so the new replica joins bitwise identical to the survivors.
// Conductor only.
func (f *Fleet) scaleUp(live []int) {
	for _, r := range f.reps {
		if r.alive.Load() {
			continue
		}
		if err := f.reviveLocked(r.id); err != nil {
			f.setErr(fmt.Errorf("fleet: autoscale up replica %d: %w", r.id, err))
		}
		return
	}
	f.setErr(fmt.Errorf("fleet: autoscale up: no dead slot among %d", len(f.reps)))
}

// scaleDown kills the highest live slot and gracefully drains it: frames
// still queued on its shard are re-admitted through the surviving
// replicas' gates, so an accepted burst is never lost to a resize.
// Conductor only.
func (f *Fleet) scaleDown(live []int) {
	if len(live) == 0 {
		return
	}
	id := live[len(live)-1]
	if err := f.killLocked(id); err != nil {
		f.setErr(fmt.Errorf("fleet: autoscale down replica %d: %w", id, err))
		return
	}
	victim := f.reps[id]
	for {
		s, ok := victim.queue.Pop(0)
		if !ok {
			break
		}
		if tid := f.shardOf(&s); tid >= 0 {
			f.admit(f.reps[tid], s)
		}
	}
}

// stepLatency returns the EMA of recent lockstep wall times.
func (f *Fleet) stepLatency() time.Duration {
	return time.Duration(math.Float64frombits(f.stepLatBits.Load()))
}

// drainAll moves every queued frame of every live replica through its gate
// into its replay buffer, returning the number of frames drained.  Dead
// replicas' queues are redistributed to the live shards: a frame can race
// into a replica's queue around its death (shardOf reads liveness before
// Push), and without redistribution it would strand there — blocking its
// producer on a full queue — until Revive.
func (f *Fleet) drainAll() int {
	got := 0
	for _, r := range f.reps {
		if !r.alive.Load() {
			for {
				s, ok := r.queue.Pop(0)
				if !ok {
					break
				}
				if tid := f.shardOf(&s); tid >= 0 {
					f.admit(f.reps[tid], s)
					got++
				}
			}
			continue
		}
		for {
			s, ok := r.queue.Pop(0)
			if !ok {
				break
			}
			f.admit(r, s)
			got++
		}
	}
	return got
}

// drainFinal is the graceful-stop drain: everything still queued on live
// shards flows into the replay buffers so the final checkpoint sees it.
func (f *Fleet) drainFinal() { f.drainAll() }

// replayTotal sums the live replicas' replay populations.
func (f *Fleet) replayTotal() int {
	total := 0
	for _, r := range f.reps {
		if r.alive.Load() {
			total += r.replay.Len()
		}
	}
	return total
}

// ensureRing returns the collective ring over the given live set,
// re-forming it (and retiring the old ring's accounting) when membership
// changed since the last step.
func (f *Fleet) ensureRing(live []int) (*cluster.Ring, error) {
	ring := f.ring.Load()
	if ring != nil && equalIDs(f.ringIDs, live) {
		return ring, nil
	}
	f.retireRing()
	ring, err := f.newRing(len(live))
	if err != nil {
		return nil, err
	}
	f.ringIDs = append(f.ringIDs[:0], live...)
	f.ring.Store(ring)
	return ring, nil
}

// newRing builds a ring for size ranks over the configured transport.
func (f *Fleet) newRing(size int) (*cluster.Ring, error) {
	f.ringEpoch++
	if f.cfg.RingFactory != nil {
		return f.cfg.RingFactory(size)
	}
	switch f.cfg.Transport {
	case "", "chan":
		return cluster.NewRing(size, cluster.RoCE25()), nil
	case "tcp":
		g, err := tcptransport.NewLoopbackGroup(size, tcptransport.Options{
			RingID: fmt.Sprintf("fleet-%s-epoch%d", f.system, f.ringEpoch),
		})
		if err != nil {
			return nil, err
		}
		return cluster.NewRingOver(g, cluster.RoCE25()), nil
	default:
		return nil, fmt.Errorf("fleet: unknown transport %q", f.cfg.Transport)
	}
}

// retireRing folds the current ring's modeled and measured accounting into
// the retired counters and releases its transport.  Conductor only.
func (f *Fleet) retireRing() {
	ring := f.ring.Swap(nil)
	if ring == nil {
		return
	}
	f.retiredWire.Add(ring.WireBytes())
	f.retiredOps.Add(ring.Ops())
	st := ring.TransportStats()
	f.retiredMu.Lock()
	f.retiredTr.Add(st)
	f.retiredMu.Unlock()
	ring.Close()
	f.ringIDs = f.ringIDs[:0]
}

// recoverRing handles a hard mid-step transport failure: the transport's
// dead ranks map through ringIDs onto replica deaths, the broken ring is
// retired, and every surviving replica is reconciled bitwise from the
// first survivor's model + Kalman checkpoint — the same catch-up path
// Revive uses — so the drift gauges read exactly zero again.  It returns
// the surviving live set.  Conductor only.
func (f *Fleet) recoverRing(ring *cluster.Ring, cause error) []int {
	for _, rank := range ring.Transport().Dead() {
		if rank >= 0 && rank < len(f.ringIDs) {
			if f.reps[f.ringIDs[rank]].alive.Swap(false) {
				if m := f.cfg.Metrics; m != nil {
					m.Kills.Inc()
				}
			}
		}
	}
	f.retireRing()
	survivors := f.liveIDs()
	if len(survivors) == 0 {
		f.setErr(fmt.Errorf("fleet: ring broken with no survivors: %w", cause))
		return survivors
	}
	src := f.reps[survivors[0]]
	modelBytes, err := encodeModel(src.model)
	if err != nil {
		f.setErr(fmt.Errorf("fleet: checkpoint survivor %d: %w", src.id, err))
		return survivors
	}
	ck := src.opt.Checkpoint()
	for _, id := range survivors[1:] {
		if err := f.reps[id].restoreShared(modelBytes, ck); err != nil {
			f.setErr(fmt.Errorf("fleet: reconcile replica %d: %w", id, err))
		}
	}
	step := f.steps.Load()
	for _, id := range survivors {
		f.reps[id].publish(step)
	}
	return survivors
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// step runs one lockstep fleet iteration: every live replica samples a
// private minibatch from its own replay buffer, all ranks funnel-aggregate
// gradients and ABE over the ring, and every rank applies the identical
// reduced Kalman update — so weights and P stay bitwise identical across
// the fleet (asserted by the drift invariants it refreshes afterwards).
// Conductor goroutine only.
func (f *Fleet) step() {
	live := f.liveIDs()
	if len(live) == 0 {
		return
	}
	if f.cfg.Trace != nil && f.rec == nil {
		f.rec = f.cfg.Trace.Begin()
	}
	rec := f.rec
	type share struct {
		ds  *dataset.Dataset
		idx []int
	}
	shares := make([]share, len(live))
	total := 0
	na := int(f.naPer.Load())
	s0 := time.Now()
	for k, id := range live {
		batch := f.reps[id].replay.Sample(f.cfg.BatchSize)
		if len(batch) == 0 {
			continue // empty replica: zero-partial contribution
		}
		idx := make([]int, len(batch))
		for i := range idx {
			idx[i] = i
		}
		shares[k] = share{
			ds:  &dataset.Dataset{System: f.system, Species: f.species, Snapshots: batch},
			idx: idx,
		}
		total += len(batch)
		if na == 0 {
			na = batch[0].NumAtoms()
		}
	}
	rec.Span(-1, "sample", s0, time.Since(s0))
	if total == 0 {
		return
	}
	ring, err := f.ensureRing(live)
	if err != nil {
		f.setErr(fmt.Errorf("fleet: form ring: %w", err))
		return
	}
	if f.cfg.PShard {
		// Repartition lazily, exactly when the ring re-forms over a new
		// live set: a killed victim's slabs migrate to the survivors, a
		// revived replica receives its share — all bitwise through the
		// in-memory sharded checkpoint.
		if err := f.ensureShards(live); err != nil {
			f.setErr(err)
			return
		}
	}
	ref := f.reps[live[0]].opt
	params := cluster.StepParams{
		Scale:       ref.Factor.Apply(total),
		EnergyDiv:   ref.EnergyDiv.Value(na),
		ForceDiv:    ref.ForceDiv.Value(na),
		ForceGroups: ref.ForceGroups,
		Pipeline:    ref.Pipeline,
	}
	if rec != nil {
		params.Spans = rec
	}
	stepNo := f.steps.Load()
	t0 := f.clock.Now()

	// Chaos hang: at the configured step, one rank parks before entering
	// the collective until the watchdog fires and releases it.  One-shot,
	// so the re-run after recovery proceeds clean.
	var hangCh chan struct{}
	hangID := -1
	if c := f.cfg.Chaos; c.HangStep > 0 && !f.hangFired && stepNo+1 == c.HangStep {
		f.hangFired = true
		hangID = c.HangReplica
		hangCh = make(chan struct{})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(live))
	infos := make([]optimize.StepInfo, len(live))
	// progress per rank: 0 = pre-collective, 1 = in the collective,
	// 2 = done.  The watchdog attributes the stall to the least-advanced
	// rank: one wedged before the collective is the cause, the ranks
	// blocked inside it are its victims.
	progress := make([]atomic.Int32, len(live))
	for k, id := range live {
		wg.Add(1)
		go func(rank, id int) {
			defer wg.Done()
			r := f.reps[id]
			inject := f.buildInject(id, stepNo, hangID, hangCh, &progress[rank])
			if f.cfg.PShard {
				infos[rank], errs[rank] = pshard.RankStep(ring, rank, r.model, f.pstates[id], params,
					shares[rank].ds, shares[rank].idx, inject)
			} else {
				infos[rank], errs[rank] = cluster.RankStep(ring, rank, r.model, r.opt.State(), params,
					shares[rank].ds, shares[rank].idx, inject)
			}
			progress[rank].Store(2)
		}(k, id)
	}
	f.awaitStep(&wg, ring, live, stepNo, progress, hangCh)

	n := f.steps.Add(1)
	f.storeLambda(live)
	if err := errors.Join(errs...); err != nil {
		f.setErr(fmt.Errorf("step %d: %w", n, err))
		if errors.Is(err, cluster.ErrRingBroken) {
			// Hard transport failure: some ranks may have finished the
			// step while others aborted mid-collective, so the replicas
			// are not merely stale but divergent — reconcile the
			// survivors bitwise and retire the broken ring.
			live = f.recoverRing(ring, err)
			if f.cfg.PShard {
				f.recoverShards(live)
			}
			if len(live) == 0 {
				return
			}
			f.storeLambda(live)
		}
	}
	f.maybePoison(n, live)
	f.updateInvariants(live)
	lat := f.clock.Now().Sub(t0)
	f.noteStepLatency(lat)
	if m := f.cfg.Metrics; m != nil {
		m.StepSeconds.Observe(lat.Seconds())
	}
	if ev := f.checkHealth(n, live, infos); ev != nil {
		// Divergence: roll the whole fleet back to the newest valid
		// checkpoint generation before anything downstream (snapshot
		// publish, checkpoint write, OnStep) can observe or persist the
		// poisoned state.
		f.handleDivergence(ev, rec)
		rec.End(n)
		f.rec = nil
		return
	}
	if f.cfg.OnStep != nil {
		f.cfg.OnStep(n, infos[0])
	}
	if n%int64(f.cfg.SnapshotEvery) == 0 {
		p0 := time.Now()
		for _, id := range live {
			f.reps[id].publish(n)
		}
		rec.Span(-1, "snapshot_publish", p0, time.Since(p0))
	}
	if f.cfg.CheckpointEvery > 0 && f.cfg.CheckpointPath != "" && n%int64(f.cfg.CheckpointEvery) == 0 {
		c0 := time.Now()
		if err := f.writeCheckpointCounted(f.cfg.CheckpointPath); err != nil {
			f.setErr(fmt.Errorf("checkpoint: %w", err))
		}
		rec.Span(-1, "checkpoint", c0, time.Since(c0))
	}
	rec.End(n)
	f.rec = nil
}

// updateInvariants refreshes the fleet's consistency gauges: the maximum
// absolute weight difference and P difference between the first live
// replica and every other live replica.  Both must be exactly zero under
// the funnel-aggregated schedule.  In pshard mode the P gauge reports the
// replicated scalar filter state's drift instead (the slabs are disjoint,
// see shardDrift), and the per-replica resident-P mirrors are refreshed.
func (f *Fleet) updateInvariants(live []int) {
	ref := f.reps[live[0]]
	refW := ref.model.Params.FlattenValues()
	wd, pd := 0.0, 0.0
	for _, id := range live[1:] {
		w := f.reps[id].model.Params.FlattenValues()
		for i := range w {
			if d := math.Abs(w[i] - refW[i]); d > wd {
				wd = d
			}
		}
		if !f.cfg.PShard {
			if d := ref.opt.State().PDrift(f.reps[id].opt.State()); d > pd {
				pd = d
			}
		}
	}
	if f.cfg.PShard {
		pd = f.shardDrift(live)
	}
	for _, id := range live {
		r := f.reps[id]
		if f.cfg.PShard {
			if st := f.pstates[id]; st != nil {
				r.pBytes.Store(st.PBytes())
			}
		} else {
			r.pBytes.Store(r.opt.PBytes())
		}
	}
	f.wDriftBits.Store(math.Float64bits(wd))
	f.pDriftBits.Store(math.Float64bits(pd))
}

// noteStepLatency folds one lockstep wall time into the mirrored EMA the
// autoscaler samples (α = 0.2; the first measurement seeds the EMA).
func (f *Fleet) noteStepLatency(lat time.Duration) {
	prev := math.Float64frombits(f.stepLatBits.Load())
	ema := float64(lat)
	if prev > 0 {
		ema = 0.8*prev + 0.2*float64(lat)
	}
	f.stepLatBits.Store(math.Float64bits(ema))
}

// WeightDrift returns the last step's maximum absolute weight difference
// between live replicas (exactly 0 under the fleet invariant).
func (f *Fleet) WeightDrift() float64 { return math.Float64frombits(f.wDriftBits.Load()) }

// PDrift returns the last step's maximum absolute covariance difference
// between live replicas (exactly 0 under the fleet invariant).
func (f *Fleet) PDrift() float64 { return math.Float64frombits(f.pDriftBits.Load()) }

func (f *Fleet) setErr(err error) {
	s := err.Error()
	f.lastErr.Store(&s)
}

// ReplicaStats is one replica's row in the fleet stats.
type ReplicaStats struct {
	ID             int     `json:"id"`
	Alive          bool    `json:"alive"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCapacity  int     `json:"queue_capacity"`
	FramesQueued   int64   `json:"frames_queued"`
	FramesDropped  int64   `json:"frames_dropped"`
	FramesAccepted int64   `json:"frames_accepted"`
	FramesGatedOut int64   `json:"frames_gated_out"`
	ReplaySize     int64   `json:"replay_size"`
	GateEMA        float64 `json:"gate_ema"`
	SnapshotStep   int64   `json:"snapshot_step"`
	SnapshotAgeMs  int64   `json:"snapshot_age_ms"`
	PredictsRouted int64   `json:"predicts_routed"`
	// PResidentBytes is the replica's resident covariance footprint: the
	// full P under replication, only the owned row slabs under pshard —
	// the same value the fekf_p_resident_bytes gauge exports.
	PResidentBytes int64 `json:"p_resident_bytes"`
}

// Stats is the fleet-level observable state served at /v1/stats.
type Stats struct {
	Replicas      int     `json:"replicas"`
	Live          int     `json:"live"`
	ShardPolicy   string  `json:"shard_policy"`
	Steps         int64   `json:"steps"`
	Lambda        float64 `json:"lambda"`
	WeightDrift   float64 `json:"weight_drift"`
	PDrift        float64 `json:"p_drift"`
	RingWireBytes int64   `json:"ring_wire_bytes"`
	RingOps       int64   `json:"ring_ops"`
	// Transport is the measured wire traffic (payload + framing, retries,
	// reconnects, detected peer failures) summed over the live ring and
	// every retired ring; RingWireBytes stays the modeled RoCE payload.
	Transport cluster.TransportStats `json:"transport"`
	// Autoscale is the queue-pressure controller row (nil when
	// autoscaling is disabled): current/target live counts, the last
	// decision with its reason, and the scale-event counters.
	Autoscale *AutoscaleStats `json:"autoscale,omitempty"`
	// PShard is the sharded-covariance row (nil for replicated fleets):
	// partition geometry, per-rank resident P bytes and the modeled
	// exchange traffic per step.
	PShard  *PShardStats   `json:"pshard,omitempty"`
	Replica []ReplicaStats `json:"replica"`
}

// FleetStats returns the per-replica view; safe from any goroutine.
func (f *Fleet) FleetStats() Stats {
	st := Stats{
		Replicas:    len(f.reps),
		ShardPolicy: f.cfg.ShardPolicy.String(),
		Steps:       f.steps.Load(),
		Lambda:      math.Float64frombits(f.lambdaBits.Load()),
		WeightDrift: f.WeightDrift(),
		PDrift:      f.PDrift(),
	}
	st.RingWireBytes = f.retiredWire.Load()
	st.RingOps = f.retiredOps.Load()
	f.retiredMu.Lock()
	st.Transport = f.retiredTr
	f.retiredMu.Unlock()
	if ring := f.ring.Load(); ring != nil {
		st.RingWireBytes += ring.WireBytes()
		st.RingOps += ring.Ops()
		st.Transport.Add(ring.TransportStats())
	}
	for _, r := range f.reps {
		rs := ReplicaStats{
			ID:             r.id,
			Alive:          r.alive.Load(),
			QueueDepth:     r.queue.Depth(),
			QueueCapacity:  r.queue.Cap(),
			FramesQueued:   r.queue.Pushed(),
			FramesDropped:  r.queue.Dropped(),
			FramesAccepted: r.accepted.Load(),
			FramesGatedOut: r.gatedOut.Load(),
			ReplaySize:     r.replayLen.Load(),
			GateEMA:        math.Float64frombits(r.gateEMA.Load()),
			PredictsRouted: r.routed.Load(),
			PResidentBytes: r.pBytes.Load(),
		}
		if s := r.snap.Load(); s != nil {
			rs.SnapshotStep = s.Step
			rs.SnapshotAgeMs = f.clock.Now().Sub(s.Published).Milliseconds()
		}
		if rs.Alive {
			st.Live++
		}
		st.Replica = append(st.Replica, rs)
	}
	if f.scaler != nil {
		st.Autoscale = f.scaler.statsRow(st.Live, f.stepLatency())
	}
	if f.cfg.PShard {
		st.PShard = f.pstats.Load()
	}
	return st
}

// Stats aggregates the fleet into the flat trainer-stats shape shared with
// the single-trainer backend; safe from any goroutine.
func (f *Fleet) Stats() online.Stats {
	st := online.Stats{
		System:        f.system,
		Steps:         f.steps.Load(),
		Lambda:        math.Float64frombits(f.lambdaBits.Load()),
		KalmanUpdates: f.steps.Load() * int64(1+f.forceGroups),
		Checkpoints:   f.ckWrites.Load(),
	}
	var emaSum float64
	var emaN int64
	for _, r := range f.reps {
		st.PResidentBytes += r.pBytes.Load()
		st.QueueDepth += r.queue.Depth()
		st.QueueCapacity += r.queue.Cap()
		st.FramesQueued += r.queue.Pushed()
		st.FramesDropped += r.queue.Dropped()
		st.FramesAccepted += r.accepted.Load()
		st.FramesGatedOut += r.gatedOut.Load()
		st.FramesSeen += r.seen.Load()
		st.ReplaySize += r.replayLen.Load()
		st.ReplayWindowLen += r.replayWin.Load()
		st.ReplayReservoirLen += r.replayRes.Load()
		st.ReplayCapacity += int64(f.cfg.WindowSize + f.cfg.ReservoirSize)
		if r.alive.Load() {
			emaSum += math.Float64frombits(r.gateEMA.Load())
			emaN++
		}
	}
	if emaN > 0 {
		st.GateEMA = emaSum / float64(emaN)
	}
	if st.ReplayCapacity > 0 {
		st.ReplayOccupancy = float64(st.ReplaySize) / float64(st.ReplayCapacity)
	}
	if st.QueueCapacity > 0 {
		st.QueueOccupancy = float64(st.QueueDepth) / float64(st.QueueCapacity)
	}
	if scored := st.FramesAccepted + st.FramesGatedOut; scored > 0 {
		st.GateAcceptRate = float64(st.FramesAccepted) / float64(scored)
	}
	if s := f.router.freshest(); s != nil {
		st.SnapshotStep = s.Step
		st.SnapshotAgeMs = f.clock.Now().Sub(s.Published).Milliseconds()
	}
	if e := f.lastErr.Load(); e != nil {
		st.LastError = *e
	}
	if f.ckRing != nil || f.sentinel != nil || f.cfg.StepTimeout > 0 {
		st.Guard = f.health.Status(f.clock.Now())
	}
	return st
}
