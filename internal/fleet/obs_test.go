package fleet

import (
	"context"
	"strings"
	"testing"
	"time"

	"fekf/internal/obs"
	"fekf/internal/online"
)

// TestFleetObservability drives a 3-replica fleet with metrics and tracing
// wired and checks the acceptance surface: step/kill/revive instruments
// fire, the exposition renders, and every step trace carries non-zero
// backward / allreduce / gain / drain spans from the collective ranks.
func TestFleetObservability(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	ds, f := newTestFleet(t, 3, Config{
		Seed:          23,
		SnapshotEvery: 1, // every step publishes, so every trace has the span
		Gate:          online.GateConfig{Enabled: false},
		Metrics:       NewMetrics(reg),
		Trace:         tracer,
	})
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	if got := f.drainAll(); got != 12 {
		t.Fatalf("drained %d frames, want 12", got)
	}
	const steps = 3
	for i := 0; i < steps; i++ {
		f.step()
	}
	if f.Steps() != steps {
		t.Fatalf("took %d steps, want %d (last error %q)", f.Steps(), steps, f.Stats().LastError)
	}

	m := f.cfg.Metrics
	if got := m.StepSeconds.Count(); got != steps {
		t.Errorf("step histogram count = %d, want %d", got, steps)
	}
	if m.StepSeconds.Sum() <= 0 {
		t.Error("step histogram sum is zero")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Kill(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Revive(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if m.Kills.Value() != 1 || m.Revives.Value() != 1 {
		t.Errorf("kills/revives = %d/%d, want 1/1", m.Kills.Value(), m.Revives.Value())
	}

	// Each step trace must time every collective phase on every rank.
	traces := tracer.Last(0)
	if len(traces) != steps {
		t.Fatalf("recorded %d traces, want %d", len(traces), steps)
	}
	for _, st := range traces {
		if st.DurNs <= 0 {
			t.Errorf("step %d trace has zero duration", st.Step)
		}
		phases := map[string]int{}
		for _, sp := range st.Spans {
			if sp.DurNs <= 0 {
				t.Errorf("step %d span %s (rank %d) has zero duration", st.Step, sp.Name, sp.Rank)
			}
			phases[sp.Name]++
		}
		for _, want := range []string{"backward", "allreduce", "gain", "drain", "sample", "snapshot_publish"} {
			if phases[want] == 0 {
				t.Errorf("step %d trace has no %q span (got %v)", st.Step, want, phases)
			}
		}
		// Collective phases must come from all 3 ranks.
		ranks := map[int]bool{}
		for _, sp := range st.Spans {
			if sp.Name == "allreduce" {
				ranks[sp.Rank] = true
			}
		}
		if len(ranks) != 3 {
			t.Errorf("step %d allreduce spans cover ranks %v, want all 3", st.Step, ranks)
		}
	}

	// The registry renders the fleet families with the recorded values.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fekf_fleet_step_seconds_count 3\n",
		"fekf_fleet_kills_total 1\n",
		"fekf_fleet_revives_total 1\n",
		`fekf_fleet_step_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
