package fleet

import "fekf/internal/obs"

// Metrics is the fleet's push-side instrument set: latency distributions
// and membership/autoscale event counters observed where they happen.
// Scrape-time state (live replicas, drift, transport ledgers, autoscale
// pressure) is exported by the serving layer as func metrics reading
// FleetStats, so it costs the conductor nothing here.
type Metrics struct {
	// StepSeconds observes the wall time of each lockstep fleet step.
	StepSeconds *obs.Histogram
	// CheckpointSeconds observes the wall time of each fleet checkpoint.
	CheckpointSeconds *obs.Histogram
	// Kills and Revives count membership changes, from whatever cause —
	// explicit Kill/Revive, autoscale resizes, ring-failure recovery.
	Kills   *obs.Counter
	Revives *obs.Counter
	// AutoscaleEvals counts controller evaluations; ScaleUps and
	// ScaleDowns count applied resize decisions.
	AutoscaleEvals *obs.Counter
	ScaleUps       *obs.Counter
	ScaleDowns     *obs.Counter
}

// NewMetrics registers the fleet's metric families on reg.  Register at
// most once per registry: duplicate registration panics by design.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		StepSeconds: reg.Histogram("fekf_fleet_step_seconds",
			"Wall time of one lockstep fleet step across all live replicas.",
			obs.DefSecondsBuckets).With(),
		CheckpointSeconds: reg.Histogram("fekf_fleet_checkpoint_seconds",
			"Wall time of one fleet checkpoint write.",
			obs.DefSecondsBuckets).With(),
		Kills: reg.Counter("fekf_fleet_kills_total",
			"Replicas marked dead (explicit kills, autoscale shrinks, ring-failure recovery).").With(),
		Revives: reg.Counter("fekf_fleet_revives_total",
			"Replicas rejoined through checkpoint catch-up.").With(),
		AutoscaleEvals: reg.Counter("fekf_fleet_autoscale_evals_total",
			"Queue-pressure autoscaler evaluations.").With(),
		ScaleUps: reg.Counter("fekf_fleet_scale_ups_total",
			"Applied autoscale grow decisions.").With(),
		ScaleDowns: reg.Counter("fekf_fleet_scale_downs_total",
			"Applied autoscale shrink decisions.").With(),
	}
}
