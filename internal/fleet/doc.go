// Package fleet runs N replicated online FEKF trainers coupled through the
// internal/cluster ring — the paper's §6 endgame of distributed online
// learning.
//
// Topology: an ingest sharder partitions the labelled-frame stream across
// per-replica bounded queues (hash or round-robin, reusing the
// internal/online queue policies); each replica drains its shard through
// its own ALKPU-style uncertainty gate into its own replay buffer.  Every
// training step is a lockstep collective: each live replica samples a
// private minibatch from its replay buffer, the per-replica gradients and
// absolute-error sums are funnel-aggregated over the ring *before* the
// Kalman update (cluster.RankStep), and every replica then applies the
// identical reduced update to its local weights and P.  Because the
// reduced buffers are bit-identical on every rank after the allgather,
// all replicas hold bitwise-identical weights and error covariance with
// zero P communication — the fleet invariant WeightDrift == PDrift == 0,
// asserted after every step.
//
// Serving: a snapshot router load-balances predictions across the
// replicas' copy-on-write model snapshots with health checks.  A killed
// replica is drained from the rotation without failing in-flight
// predictions (snapshots are immutable clones); survivors keep training
// through a re-formed ring, and the dead replica rejoins via a
// checkpoint of the shared state taken from any survivor — after which
// drift is again exactly zero.
package fleet
