package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"fekf/internal/dataset"
)

// ShardPolicy selects how the ingest sharder assigns a frame to a replica.
type ShardPolicy int

const (
	// RoundRobin rotates frames across the live replicas — uniform load,
	// no affinity.
	RoundRobin ShardPolicy = iota
	// HashShard routes by a content hash of the frame's coordinates, so a
	// configuration revisited by the producer lands on the same replica
	// (stable affinity while membership is stable).
	HashShard
)

// String names the policy as accepted by ParseShardPolicy.
func (p ShardPolicy) String() string {
	if p == HashShard {
		return "hash"
	}
	return "round-robin"
}

// ParseShardPolicy parses a shard policy name: round-robin | hash.
func ParseShardPolicy(s string) (ShardPolicy, error) {
	switch strings.ToLower(s) {
	case "round-robin", "roundrobin", "rr", "":
		return RoundRobin, nil
	case "hash":
		return HashShard, nil
	}
	return RoundRobin, fmt.Errorf("fleet: unknown shard policy %q", s)
}

// frameHash is a content hash over the frame's coordinates (FNV-1a on the
// raw float bits), the HashShard routing key.
func frameHash(s *dataset.Snapshot) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, x := range s.Pos {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		h.Write(b[:])
	}
	return h.Sum64()
}

// shardOf picks the target replica for a frame among the currently live
// replicas, or -1 when none is live.  Dead replicas are skipped so a
// killed replica's shard is redistributed instead of piling up behind it.
func (f *Fleet) shardOf(s *dataset.Snapshot) int {
	live := f.liveIDs()
	if len(live) == 0 {
		return -1
	}
	switch f.cfg.ShardPolicy {
	case HashShard:
		return live[frameHash(s)%uint64(len(live))]
	default:
		return live[(f.rr.Add(1)-1)%uint64(len(live))]
	}
}
