package fleet

import (
	"fmt"
	"math"

	"fekf/internal/deepmd"
	"fekf/internal/optimize"
	"fekf/internal/pshard"
)

// PShardStats is the sharded-covariance row of the fleet stats (served at
// /v1/stats as "pshard"): the current partition geometry and its modeled
// memory and wire footprint.  Updated by the conductor whenever the
// assignment changes; read from any goroutine through an atomic pointer.
type PShardStats struct {
	Ranks  int `json:"ranks"`
	Blocks int `json:"blocks"`
	// RankReplicaIDs maps each rank of the current assignment to the
	// replica occupying it — the key for joining the per-rank arrays below
	// onto the "replica" stats rows after kills shrink the live set.
	RankReplicaIDs []int `json:"rank_replica_ids"`
	ShardsPerRank  []int `json:"shards_per_rank"`
	// ResidentBytesPerRank is each rank's owned P slab bytes — the same
	// numbers the fekf_p_resident_bytes gauge exports per rank.  Summed
	// over ranks it equals TotalBytes, the unsharded single-host footprint.
	ResidentBytesPerRank []int64 `json:"resident_bytes_per_rank"`
	TotalBytes           int64   `json:"total_bytes"`
	ImbalanceRatio       float64 `json:"imbalance_ratio"`
	// ExchangeBytesPerStep is the modeled wire payload of the P·g exchange
	// collectives of one lockstep step: (1 energy + ForceGroups force
	// updates) × one full parameter vector each.
	ExchangeBytesPerStep int64 `json:"exchange_bytes_per_step"`
}

// initShards builds the initial sharded filter during New: a fresh
// identity-P partition over the initial live set, or — when Resume carried
// a sharded checkpoint — the checkpointed slabs retiled onto it.
func (f *Fleet) initShards(m *deepmd.Model, opt *optimize.FEKF, live []int) error {
	if opt.State() != nil {
		return fmt.Errorf("fleet: pshard mode cannot replicate an existing full Kalman state; start fresh or Resume a sharded fleet checkpoint")
	}
	f.pblocks = optimize.SplitBlocks(m.Params.LayerSizes(), opt.KCfg.BlockSize)
	f.pstates = make([]*pshard.State, len(f.reps))
	if ck := f.cfg.pshardResume; ck != nil {
		return f.restoreShards(ck, live)
	}
	assign := pshard.Partition(f.pblocks, len(live))
	for k, id := range live {
		f.pstates[id] = pshard.NewState(opt.KCfg, assign, k, f.reps[id].dev)
	}
	f.installAssign(assign, live)
	return nil
}

// installAssign records a newly applied partition: the rank↔replica map,
// the stats mirror, and each replica's resident-bytes gauge.  Conductor
// only (or during construction).
func (f *Fleet) installAssign(assign pshard.Assignment, live []int) {
	f.passign = assign
	f.pliveIDs = append(f.pliveIDs[:0], live...)
	ps := &PShardStats{
		Ranks:                assign.Ranks,
		Blocks:               len(assign.Blocks),
		RankReplicaIDs:       append([]int(nil), live...),
		TotalBytes:           assign.TotalBytes(),
		ImbalanceRatio:       assign.ImbalanceRatio(),
		ExchangeBytesPerStep: int64(1+f.reps[0].opt.ForceGroups) * assign.ExchangeBytesPerCollective(),
	}
	for r := 0; r < assign.Ranks; r++ {
		ps.ShardsPerRank = append(ps.ShardsPerRank, len(assign.Owners[r]))
		ps.ResidentBytesPerRank = append(ps.ResidentBytesPerRank, assign.RankBytes(r))
	}
	f.pstats.Store(ps)
	for _, r := range f.reps {
		if st := f.pstates[r.id]; st != nil {
			r.pBytes.Store(st.PBytes())
		} else {
			r.pBytes.Store(0)
		}
	}
}

// ensureShards repartitions the covariance when the live set changed since
// the current assignment was installed: the old owners' slabs — including
// a gracefully killed victim's, which the conductor still holds — are
// gathered into an in-memory sharded checkpoint and retiled onto the new
// rank count, so kill, revive and autoscale transitions preserve every P
// row bitwise.  Conductor only.
func (f *Fleet) ensureShards(live []int) error {
	if equalIDs(f.pliveIDs, live) {
		return nil
	}
	var old []*pshard.State
	for _, id := range f.pliveIDs {
		if st := f.pstates[id]; st != nil {
			old = append(old, st)
		}
	}
	if len(old) == 0 {
		// No shard state survived at all (only reachable after a total
		// recovery failure): restart the filter from the identity prior.
		assign := pshard.Partition(f.pblocks, len(live))
		for k, id := range live {
			f.pstates[id] = pshard.NewState(f.reps[live[0]].opt.KCfg, assign, k, f.reps[id].dev)
		}
		f.installAssign(assign, live)
		return nil
	}
	ck, err := pshard.BuildCheckpoint(old)
	if err != nil {
		return fmt.Errorf("fleet: gather shard checkpoint: %w", err)
	}
	return f.restoreShards(ck, live)
}

// restoreShards retiles a sharded checkpoint onto the given live set: new
// states are built first (so a failure leaves the old partition intact),
// then the old slabs are freed and the new assignment installed.
func (f *Fleet) restoreShards(ck *pshard.Checkpoint, live []int) error {
	assign := pshard.Partition(f.pblocks, len(live))
	fresh := make([]*pshard.State, len(live))
	for k, id := range live {
		st, err := pshard.NewStateFrom(ck, assign, k, f.reps[id].dev)
		if err != nil {
			for _, s := range fresh {
				if s != nil {
					s.Free()
				}
			}
			return fmt.Errorf("fleet: restore shards: %w", err)
		}
		fresh[k] = st
	}
	for id, st := range f.pstates {
		if st != nil {
			st.Free()
			f.pstates[id] = nil
		}
	}
	for k, id := range live {
		f.pstates[id] = fresh[k]
	}
	f.installAssign(assign, live)
	return nil
}

// recoverShards rebuilds the shard states after a hard mid-step transport
// failure.  Unlike a graceful kill, the dead ranks' slabs are treated as
// lost, and the survivors may have diverged scalar state (some ranks
// applied the final measurement before the ring broke, others aborted).
// The first survivor's (λ, updates) is taken as the reference epoch; slabs
// of survivors at that epoch are kept, and every row without a surviving
// owner is reset to the identity prior — the filter restarts its
// covariance for those rows while the reconciled weights carry on.
// Conductor only.
func (f *Fleet) recoverShards(survivors []int) {
	if len(survivors) == 0 {
		for id, st := range f.pstates {
			if st != nil {
				st.Free()
				f.pstates[id] = nil
			}
		}
		f.pliveIDs = f.pliveIDs[:0]
		return
	}
	var ref *pshard.State
	for _, id := range survivors {
		if st := f.pstates[id]; st != nil {
			ref = st
			break
		}
	}
	if ref == nil {
		// Every surviving replica lost its shard state: restart the filter.
		assign := pshard.Partition(f.pblocks, len(survivors))
		for k, id := range survivors {
			f.pstates[id] = pshard.NewState(f.reps[survivors[0]].opt.KCfg, assign, k, f.reps[id].dev)
		}
		f.installAssign(assign, survivors)
		return
	}
	var keep []*pshard.State
	for _, id := range survivors {
		st := f.pstates[id]
		if st == nil {
			continue
		}
		if math.Float64bits(st.Lambda) == math.Float64bits(ref.Lambda) && st.Updates == ref.Updates {
			keep = append(keep, st)
		}
	}
	ck, err := pshard.BuildCheckpoint(keep)
	if err != nil {
		f.setErr(fmt.Errorf("fleet: recover shard checkpoint: %w", err))
		ck = &pshard.Checkpoint{Cfg: ref.Cfg, Lambda: ref.Lambda, Updates: ref.Updates,
			Sizes: optimize.BlockSizes(f.pblocks)}
	}
	fillMissingRows(ck, f.pblocks)
	if err := f.restoreShards(ck, survivors); err != nil {
		f.setErr(fmt.Errorf("fleet: recover shards: %w", err))
	}
}

// fillMissingRows appends identity rows for every block row the checkpoint
// does not cover, so NewStateFrom can retile the full covariance after
// shard loss.
func fillMissingRows(ck *pshard.Checkpoint, blocks []optimize.Block) {
	covered := make([][]bool, len(blocks))
	for i, b := range blocks {
		covered[i] = make([]bool, b.Size())
	}
	for _, s := range ck.Shards {
		for i := s.RowLo; i < s.RowHi; i++ {
			covered[s.Block][i] = true
		}
	}
	for bi, rows := range covered {
		n := blocks[bi].Size()
		for lo := 0; lo < n; {
			if rows[lo] {
				lo++
				continue
			}
			hi := lo
			for hi < n && !rows[hi] {
				hi++
			}
			data := make([]float64, (hi-lo)*n)
			for r := lo; r < hi; r++ {
				data[(r-lo)*n+r] = 1
			}
			ck.Shards = append(ck.Shards, pshard.ShardCheckpoint{Block: bi, RowLo: lo, RowHi: hi, Rows: data})
			lo = hi
		}
	}
}

// shardDrift is the sharded analogue of the P-drift invariant gauge: the
// slabs are disjoint, so P cannot be compared rank-to-rank, but the scalar
// filter state (λ, update count) is replicated on every rank and must stay
// bit-identical under the lockstep schedule.  An update-count mismatch or a
// missing state reports +Inf.
func (f *Fleet) shardDrift(live []int) float64 {
	var ref *pshard.State
	d := 0.0
	for _, id := range live {
		st := f.pstates[id]
		if st == nil {
			return math.Inf(1)
		}
		if ref == nil {
			ref = st
			continue
		}
		if st.Updates != ref.Updates {
			return math.Inf(1)
		}
		if dd := math.Abs(st.Lambda - ref.Lambda); dd > d {
			d = dd
		}
	}
	return d
}

// storeLambda mirrors the reference rank's λ for the stats readers: from
// the sharded scalar state in pshard mode, from the replicated filter
// otherwise.
func (f *Fleet) storeLambda(live []int) {
	if len(live) == 0 {
		return
	}
	if f.cfg.PShard {
		if st := f.pstates[live[0]]; st != nil {
			f.lambdaBits.Store(math.Float64bits(st.Lambda))
		}
		return
	}
	f.lambdaBits.Store(math.Float64bits(f.reps[live[0]].opt.Lambda()))
}
