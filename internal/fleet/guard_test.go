package fleet

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fekf/internal/fleet/clocktest"
	"fekf/internal/guard"
	"fekf/internal/obs"
)

// assertFleetConsistent is the pshard-aware intra-fleet invariant check:
// replicated fleets get the full element-wise helper; sharded fleets (whose
// replicas hold no full Kalman state) are checked on weights and the
// mirrored drift gauges.
func assertFleetConsistent(t *testing.T, f *Fleet) {
	t.Helper()
	if !f.cfg.PShard {
		assertBitwiseConsistent(t, f)
		return
	}
	live := f.liveIDs()
	ref := f.reps[live[0]].model.Params.FlattenValues()
	for _, id := range live[1:] {
		w := f.reps[id].model.Params.FlattenValues()
		for i := range ref {
			if w[i] != ref[i] {
				t.Fatalf("replica %d weight %d differs from replica %d", id, i, live[0])
			}
		}
	}
	if f.WeightDrift() != 0 || f.PDrift() != 0 {
		t.Fatalf("drift gauges %g/%g, want exactly 0", f.WeightDrift(), f.PDrift())
	}
}

// assertFleetsBitwise fails unless the two fleets hold bitwise-identical
// shared state: weights, λ, and the covariance (full P replicated, owned
// slab diagonals under pshard).
func assertFleetsBitwise(t *testing.T, a, b *Fleet, when string) {
	t.Helper()
	la, lb := a.liveIDs(), b.liveIDs()
	if len(la) != len(lb) {
		t.Fatalf("%s: live sets differ: %v vs %v", when, la, lb)
	}
	if a.Steps() != b.Steps() {
		t.Fatalf("%s: steps differ: %d vs %d", when, a.Steps(), b.Steps())
	}
	ra, rb := a.reps[la[0]], b.reps[lb[0]]
	wa, wb := ra.model.Params.FlattenValues(), rb.model.Params.FlattenValues()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("%s: weight %d differs: %v vs %v", when, i, wa[i], wb[i])
		}
	}
	if math.Float64frombits(a.lambdaBits.Load()) != math.Float64frombits(b.lambdaBits.Load()) {
		t.Fatalf("%s: λ differs", when)
	}
	if a.cfg.PShard {
		for k, id := range la {
			sa, sb := a.pstates[id], b.pstates[lb[k]]
			if sa == nil || sb == nil {
				t.Fatalf("%s: missing shard state on rank %d", when, k)
			}
			if math.Float64bits(sa.Lambda) != math.Float64bits(sb.Lambda) || sa.Updates != sb.Updates {
				t.Fatalf("%s: shard scalar state differs on rank %d", when, k)
			}
			da, db := sa.PDiagonalOwned(), sb.PDiagonalOwned()
			if len(da) != len(db) {
				t.Fatalf("%s: owned diagonal sizes differ on rank %d", when, k)
			}
			for i := range da {
				if da[i] != db[i] {
					t.Fatalf("%s: P diagonal %d differs on rank %d", when, i, k)
				}
			}
		}
	} else if d := ra.opt.State().PDrift(rb.opt.State()); d != 0 {
		t.Fatalf("%s: P drift %g between fleets, want exactly 0", when, d)
	}
}

// The tentpole acceptance path over the full transport/covariance matrix: a
// NaN poisoned into every replica at step 5 must trip the sentinel and roll
// the whole fleet back — bitwise — to the newest ring generation, after
// which it advances in lockstep with an uninjected twin resumed from that
// same generation.
func TestFleetGuardRollbackBitwiseTwin(t *testing.T) {
	for _, mode := range []struct {
		name   string
		pshard bool
	}{{"replicated", false}, {"pshard", true}} {
		for _, transport := range []string{"chan", "tcp"} {
			t.Run(mode.name+"/"+transport, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "ckpt.gob")
				trace := obs.NewTracer(16)
				cfg := Config{
					Transport: transport, PShard: mode.pshard, Seed: 11,
					BatchSize: 2, MinFrames: 2,
					CheckpointPath: path, CheckpointEvery: 2, CheckpointKeep: 3,
					Guard: guard.SentinelConfig{Enabled: true, SampleStride: 1},
					Chaos: guard.ChaosConfig{PoisonStep: 5},
					Trace: trace,
				}
				ds, f := newTestFleet(t, 3, cfg)
				for i := 0; i < 12; i++ {
					if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
						t.Fatalf("ingest %d: %v %v", i, ok, err)
					}
				}
				f.drainAll()
				for i := 0; i < 4; i++ {
					f.step()
				}
				ck, seq, quarantined, err := LoadNewestCheckpoint(path, 3)
				if err != nil || len(quarantined) != 0 {
					t.Fatalf("load newest: seq=%d q=%v err=%v", seq, quarantined, err)
				}
				if seq != 2 || ck.Steps != 4 {
					t.Fatalf("newest generation seq=%d steps=%d, want 2/4", seq, ck.Steps)
				}
				twinCfg := cfg
				twinCfg.CheckpointPath, twinCfg.CheckpointEvery, twinCfg.CheckpointKeep = "", 0, 0
				twinCfg.Chaos = guard.ChaosConfig{}
				twinCfg.Guard = guard.SentinelConfig{}
				twinCfg.Trace = nil
				twin, err := Resume(ck, twinCfg)
				if err != nil {
					t.Fatal(err)
				}

				// Step 5 poisons every replica identically; the sentinel
				// must catch it and roll the fleet back to generation 2.
				f.step()
				if got := f.Steps(); got != 4 {
					t.Fatalf("after rollback at step %d, want 4", got)
				}
				st := f.Stats()
				if st.Guard == nil || st.Guard.Divergences != 1 || st.Guard.Rollbacks != 1 || !st.Guard.Degraded {
					t.Fatalf("guard status after divergence: %+v", st.Guard)
				}
				if st.Guard.LastReason != guard.ReasonWeightNonFinite || st.Guard.LastStep != 5 {
					t.Fatalf("divergence attribution: %+v", st.Guard)
				}
				if st.Guard.RollbackGeneration != 2 || st.Guard.RollbackStep != 4 {
					t.Fatalf("rollback target: %+v", st.Guard)
				}
				var sawRollbackSpan bool
				for _, str := range trace.Last(16) {
					for _, sp := range str.Spans {
						if sp.Name == "rollback" {
							sawRollbackSpan = true
						}
					}
				}
				if !sawRollbackSpan {
					t.Fatal("no rollback span in the step trace")
				}
				// Prediction availability: the routed snapshot is the clean
				// rolled-back state, never the poisoned one.
				snap := f.Snapshot()
				if snap == nil || snap.Step != 4 {
					t.Fatalf("post-rollback snapshot: %+v", snap)
				}
				for _, v := range snap.Model.Params.FlattenValues() {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatal("post-rollback snapshot carries non-finite weights")
					}
				}
				assertFleetConsistent(t, f)
				assertFleetsBitwise(t, f, twin, "after rollback")

				// The chaos injection is one-shot: the re-run of step 5 is
				// clean, and both fleets advance in bitwise lockstep.
				for i := 0; i < 2; i++ {
					f.step()
					twin.step()
				}
				if f.Steps() != 6 {
					t.Fatalf("post-recovery steps: %d, want 6", f.Steps())
				}
				if got := f.Stats().Guard.Divergences; got != 1 {
					t.Fatalf("re-run of the poisoned step diverged again: %d events", got)
				}
				assertFleetConsistent(t, f)
				assertFleetsBitwise(t, f, twin, "two steps past rollback")
			})
		}
	}
}

// A bit-flipped newest generation must be quarantined during rollback, with
// recovery landing bitwise on the next older valid generation.
func TestFleetRollbackSkipsCorruptGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	cfg := Config{
		Seed: 3, BatchSize: 2, MinFrames: 2,
		CheckpointPath: path, CheckpointEvery: 2, CheckpointKeep: 3,
		Guard: guard.SentinelConfig{Enabled: true, SampleStride: 1},
		Chaos: guard.ChaosConfig{PoisonStep: 5, PoisonInf: true},
	}
	ds, f := newTestFleet(t, 2, cfg)
	for i := 0; i < 8; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	for i := 0; i < 4; i++ {
		f.step()
	}
	// Corrupt the newest generation (step 4); the rollback must fall back
	// to generation 1 (step 2).
	if err := guard.FlipByte(guard.NewRing(path, 3).GenPath(2), -3); err != nil {
		t.Fatal(err)
	}
	f.step()
	st := f.Stats()
	if f.Steps() != 2 || st.Guard.RollbackGeneration != 1 || st.Guard.RollbackStep != 2 {
		t.Fatalf("fallback rollback: steps=%d guard=%+v", f.Steps(), st.Guard)
	}
	if st.Guard.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Guard.Quarantined)
	}
	ck, seq, _, err := LoadNewestCheckpoint(path, 3)
	if err != nil || seq != 1 {
		t.Fatalf("newest after quarantine: seq=%d err=%v", seq, err)
	}
	twinCfg := cfg
	twinCfg.CheckpointPath, twinCfg.CheckpointEvery, twinCfg.CheckpointKeep = "", 0, 0
	twinCfg.Chaos = guard.ChaosConfig{}
	twinCfg.Guard = guard.SentinelConfig{}
	twin, err := Resume(ck, twinCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertFleetsBitwise(t, f, twin, "after corrupt-generation fallback")
	for i := 0; i < 2; i++ {
		f.step()
		twin.step()
	}
	assertBitwiseConsistent(t, f)
	assertFleetsBitwise(t, f, twin, "two steps past fallback")
}

// The step watchdog under a deterministic clock: a rank hung before the
// collective must be attributed, aborted and killed through the existing
// reconcile path, leaving the survivors bitwise consistent — and the dead
// replica rejoins through Revive as usual.
func TestFleetWatchdogKillsHungRank(t *testing.T) {
	clk := clocktest.New(time.Unix(0, 0))
	cfg := Config{
		Seed: 7, Clock: clk,
		StepTimeout: time.Second,
		Chaos:       guard.ChaosConfig{HangStep: 2, HangReplica: 1},
	}
	ds, f := newTestFleet(t, 3, cfg)
	for i := 0; i < 9; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step() // step 1: healthy

	// Step 2 parks replica 1 before the collective; the other ranks block
	// inside it.  Advance the fake clock past the deadline once the
	// watchdog has armed itself — step 1's already-expired registration is
	// still parked on the fake clock, so wait for the second one — AND the
	// healthy ranks have provably reached their inject point (the failStep
	// seam runs after the progress marker): firing the fake clock while a
	// healthy rank's goroutine is still unscheduled at progress 0 would tie
	// it with the hung rank and mis-attribute the stall.
	var reached [3]atomic.Bool
	f.failStep = func(id int, _ int64) error {
		reached[id].Store(true)
		return nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.step()
	}()
	for clk.Waiters() < 2 || !reached[0].Load() || !reached[2].Load() {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog did not unwedge the hung step")
	}

	if f.reps[1].alive.Load() {
		t.Fatal("hung replica still alive after the watchdog fired")
	}
	st := f.Stats()
	if st.Guard == nil || st.Guard.WatchdogFires != 1 || !st.Guard.Degraded {
		t.Fatalf("guard status after watchdog: %+v", st.Guard)
	}
	if st.Guard.LastReason != "step_watchdog" {
		t.Fatalf("watchdog reason: %+v", st.Guard)
	}
	// The hung rank's inject error is swallowed by design (a failing rank
	// contributes zero partials but still runs the collectives); the hang
	// surfaces through the watchdog's abort cause, which names the stuck
	// rank and replica.
	if !strings.Contains(st.LastError, "watchdog") || !strings.Contains(st.LastError, "replica 1") {
		t.Fatalf("last error %q does not carry the watchdog attribution", st.LastError)
	}
	if live := f.liveIDs(); len(live) != 2 {
		t.Fatalf("live = %v, want 2 survivors", live)
	}
	assertBitwiseConsistent(t, f)

	// The chaos hang is one-shot: the dead rank rejoins through the normal
	// catch-up path and the fleet steps on, drift still exactly zero.
	if err := f.Revive(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	f.drainAll()
	f.step()
	if f.Steps() != 3 || len(f.liveIDs()) != 3 {
		t.Fatalf("post-revive: steps=%d live=%v", f.Steps(), f.liveIDs())
	}
	assertBitwiseConsistent(t, f)
}

// Chaos soak (run under -race via make race-guard): a NaN poison, a hung
// rank and a checkpoint byte-flip against a running fleet.  The fleet must
// keep /v1/predict availability throughout (the router never returns nil or
// a non-finite snapshot), recover to drift exactly 0, and record the
// divergence, rollback and watchdog events.
func TestFleetGuardChaosSoak(t *testing.T) {
	for _, tc := range []struct {
		name      string
		pshard    bool
		transport string
	}{
		{"replicated/chan", false, "chan"},
		{"replicated/tcp", false, "tcp"},
		{"pshard/chan", true, "chan"},
		{"pshard/tcp", true, "tcp"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ckpt.gob")
			cfg := Config{
				Transport: tc.transport, PShard: tc.pshard, Seed: 5,
				SnapshotEvery: 1, TrainIdle: true, QueueSize: 64,
				CheckpointPath: path, CheckpointEvery: 2, CheckpointKeep: 4,
				Guard: guard.SentinelConfig{Enabled: true},
				// Comfortably above the real per-step latency (which grows
				// under -race): a spurious watchdog fire would kill a
				// healthy rank.
				StepTimeout: 5 * time.Second,
				Chaos:       guard.ChaosConfig{PoisonStep: 6, HangStep: 9, HangReplica: 2},
			}
			ds, f := newTestFleet(t, 3, cfg)
			f.Start()

			stop := make(chan struct{})
			errC := make(chan error, 2)
			// Producer: stream labelled frames for the whole soak.
			go func() {
				for i := 0; ; i++ {
					select {
					case <-stop:
						errC <- nil
						return
					default:
					}
					f.Ingest(ds.Snapshots[i%ds.Len()])
					time.Sleep(2 * time.Millisecond)
				}
			}()
			// Reader: prediction availability must never drop to zero.
			go func() {
				for {
					select {
					case <-stop:
						errC <- nil
						return
					default:
					}
					snap := f.Snapshot()
					if snap == nil {
						errC <- context.Canceled
						return
					}
					for _, v := range snap.Model.Params.FlattenValues() {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							errC <- context.DeadlineExceeded
							return
						}
					}
					time.Sleep(time.Millisecond)
				}
			}()

			// Byte-flip a ring generation once two exist, then ride out the
			// poison, the hang, and a few recovery steps.
			flipped := false
			deadline := time.Now().Add(90 * time.Second)
			for time.Now().Before(deadline) {
				if !flipped {
					if gens, err := guard.NewRing(path, 4).Generations(); err == nil && len(gens) >= 2 {
						if err := guard.FlipByte(gens[len(gens)-1].Path, -1); err == nil {
							flipped = true
						}
					}
				}
				st := f.Stats()
				if st.Guard != nil && st.Guard.Rollbacks >= 1 && st.Guard.WatchdogFires >= 1 && f.Steps() >= 12 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			close(stop)
			if err := <-errC; err != nil {
				t.Fatal("prediction availability dropped during the soak")
			}
			if err := <-errC; err != nil {
				t.Fatal("prediction availability dropped during the soak")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := f.Stop(ctx); err != nil {
				t.Fatal(err)
			}

			st := f.Stats()
			if st.Guard == nil || st.Guard.Divergences < 1 || st.Guard.Rollbacks < 1 {
				t.Fatalf("soak recorded no recovery: %+v", st.Guard)
			}
			if st.Guard.WatchdogFires < 1 {
				t.Fatalf("soak never fired the watchdog: %+v", st.Guard)
			}
			if f.Steps() < 10 {
				t.Fatalf("soak converged only %d steps", f.Steps())
			}
			if f.WeightDrift() != 0 || f.PDrift() != 0 {
				t.Fatalf("drift gauges %g/%g after soak, want exactly 0", f.WeightDrift(), f.PDrift())
			}
			assertFleetConsistent(t, f)
		})
	}
}
