package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fekf/internal/cluster"
	"fekf/internal/guard"
	"fekf/internal/obs"
	"fekf/internal/online"
	"fekf/internal/optimize"
)

// This file is the fleet half of the self-healing layer: the step watchdog,
// the chaos injectors, the post-step sentinel check, and the fleet-wide
// rollback that restores every replica (and the covariance shards under
// PShard) bitwise from the newest valid checkpoint generation.  Everything
// here runs on the conductor goroutine except buildInject's returned
// closure, which runs on a rank goroutine and touches only its own
// arguments.

// buildInject composes the per-rank step injection: the failStep test seam,
// the chaos hang, and — whenever the watchdog is armed — a progress marker
// so a stall can be attributed to the rank that never reached the
// collective.  Returns nil when there is nothing to inject (the fast path).
func (f *Fleet) buildInject(id int, stepNo int64, hangID int, hangCh chan struct{}, prog *atomic.Int32) func() error {
	fail := f.failStep
	hung := hangCh != nil && id == hangID
	if fail == nil && !hung && f.cfg.StepTimeout <= 0 {
		return nil
	}
	return func() error {
		if hung {
			// Park until the watchdog aborts the step and releases us.  The
			// inject error only deactivates this rank (it still runs the
			// collectives on the now-broken ring), so the hang surfaces in
			// the step error through the watchdog's abort cause, not this
			// return value.
			<-hangCh
			return fmt.Errorf("replica %d: %w", id, guard.ErrHungRank)
		}
		prog.Store(1)
		if fail != nil {
			return fail(id, stepNo)
		}
		return nil
	}
}

// awaitStep waits for every rank goroutine of one collective step, with the
// watchdog deadline armed when StepTimeout is configured: on expiry the
// least-advanced rank's transport is aborted — releasing every rank blocked
// in the collective with ErrRingBroken and marking the stuck rank dead, so
// the caller's existing recovery path kills it and reconciles the
// survivors — and a parked chaos hang is released.  Conductor only.
func (f *Fleet) awaitStep(wg *sync.WaitGroup, ring *cluster.Ring, live []int, stepNo int64, progress []atomic.Int32, hangCh chan struct{}) {
	if f.cfg.StepTimeout <= 0 {
		wg.Wait()
		return
	}
	stepDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(stepDone)
	}()
	select {
	case <-stepDone:
	case <-f.clock.After(f.cfg.StepTimeout):
		stuck := -1
		for k := range progress {
			if p := progress[k].Load(); p < 2 && (stuck < 0 || p < progress[stuck].Load()) {
				stuck = k
			}
		}
		if stuck < 0 {
			// The step completed in the race window between the wait and
			// the timer; nothing is stuck.
			<-stepDone
			return
		}
		cause := fmt.Errorf("fleet: step %d watchdog: rank %d (replica %d) stuck after %v",
			stepNo+1, stuck, live[stuck], f.cfg.StepTimeout)
		ring.Transport().Abort(stuck, cause)
		if hangCh != nil {
			close(hangCh)
		}
		f.health.NoteWatchdog(stepNo + 1)
		f.rec.Span(-1, "watchdog_abort", f.clock.Now(), 0)
		<-stepDone
	}
}

// maybePoison applies the configured chaos weight poison after step n: the
// same non-finite delta lands on every live replica — modeling a poisoned
// reduced gradient, which under the funnel schedule reaches all ranks
// identically, so the bitwise drift invariant still holds over the broken
// state.  One-shot: the re-run after rollback proceeds clean.
func (f *Fleet) maybePoison(n int64, live []int) {
	c := f.cfg.Chaos
	if f.poisoned || c.PoisonStep == 0 || n != c.PoisonStep {
		return
	}
	f.poisoned = true
	for _, id := range live {
		r := f.reps[id]
		delta := make([]float64, r.model.NumParams())
		idx := c.PoisonIndex
		if idx < 0 || idx >= len(delta) {
			idx = 0
		}
		delta[idx] = c.PoisonValue()
		r.model.Params.AddFlat(delta)
	}
}

// checkHealth runs the sentinel over the post-step fleet state (the first
// live replica stands in for all — the drift invariant makes them
// identical), returning the divergence event if an invariant broke.
func (f *Fleet) checkHealth(n int64, live []int, infos []optimize.StepInfo) *guard.DivergenceEvent {
	if f.sentinel == nil {
		return nil
	}
	ref := f.reps[live[0]]
	smp := guard.Sample{
		Lambda:  math.Float64frombits(f.lambdaBits.Load()),
		Weights: ref.model.Params.FlattenValues(),
		Aux:     []float64{infos[0].EnergyABE, infos[0].ForceABE},
	}
	if f.cfg.PShard {
		if st := f.pstates[live[0]]; st != nil {
			smp.PDiag = st.PDiagonalOwned()
		}
	} else {
		smp.PDiag = ref.opt.PDiagonal()
	}
	if ev := f.sentinel.Check(n, smp); ev != nil {
		return ev
	}
	f.health.NoteHealthy()
	return nil
}

// handleDivergence records a sentinel event and rolls the fleet back to the
// newest valid checkpoint generation.  A failed rollback (no ring, no valid
// generation) leaves the event in last_error and the fleet degraded;
// training continues from the diverged state rather than crashing the
// conductor, so operators can still drain and inspect it.
func (f *Fleet) handleDivergence(ev *guard.DivergenceEvent, rec *obs.StepRecorder) {
	f.health.NoteDivergence(ev)
	f.setErr(ev)
	r0 := time.Now()
	err := f.rollbackLocked()
	rec.Span(-1, "rollback", r0, time.Since(r0))
	if err != nil {
		f.setErr(fmt.Errorf("guard: rollback after %v: %w", ev, err))
	}
}

// rollbackLocked restores the newest valid ring generation across the whole
// fleet: the in-flight ring is retired (aborting anything still on the
// wire), every replica gets the checkpointed shared model + filter bitwise,
// private replay buffers and gates rewind to their checkpointed positions,
// and under PShard the covariance slabs are retiled from the checkpoint.
// Quarantined generations are counted in the health ledger.  Conductor
// only.
func (f *Fleet) rollbackLocked() error {
	if f.ckRing == nil {
		return fmt.Errorf("fleet: no checkpoint ring to roll back to (set CheckpointKeep)")
	}
	f.retireRing()
	seq, payload, quarantined, err := f.ckRing.LoadNewest()
	f.health.NoteQuarantine(len(quarantined))
	if err != nil {
		return err
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return fmt.Errorf("fleet: decode checkpoint generation %d: %w", seq, err)
	}
	if err := f.applyCheckpoint(&ck); err != nil {
		return err
	}
	if f.sentinel != nil {
		f.sentinel.Reset()
	}
	f.health.NoteRollback(seq, ck.Steps)
	f.health.NoteCheckpoint(seq, f.clock.Now())
	return nil
}

// applyCheckpoint restores a fleet checkpoint in place — the same
// restoration Resume performs on a fresh fleet, against the live structure.
// Conductor only.
func (f *Fleet) applyCheckpoint(ck *Checkpoint) error {
	if len(ck.Replicas) != len(f.reps) {
		return fmt.Errorf("fleet: checkpoint has %d replicas, fleet has %d", len(ck.Replicas), len(f.reps))
	}
	if ck.Opt == nil {
		return fmt.Errorf("fleet: checkpoint has no optimizer state")
	}
	if ck.PShard != f.cfg.PShard {
		return fmt.Errorf("fleet: checkpoint pshard=%v, fleet pshard=%v", ck.PShard, f.cfg.PShard)
	}
	for i, rck := range ck.Replicas {
		r := f.reps[i]
		if rck.ID != r.id {
			return fmt.Errorf("fleet: checkpoint replica %d has id %d", i, rck.ID)
		}
		if err := r.restoreShared(ck.Model, ck.Opt); err != nil {
			return err
		}
		r.alive.Store(rck.Alive)
		r.accepted.Store(rck.FramesAccepted)
		r.gatedOut.Store(rck.FramesGatedOut)
		if rck.Replay != nil {
			r.replay = online.RestoreReplay(rck.Replay)
			r.replayLen.Store(int64(r.replay.Len()))
			r.replayWin.Store(int64(r.replay.WindowLen()))
			r.replayRes.Store(int64(r.replay.ReservoirLen()))
			r.seen.Store(r.replay.Seen())
		}
		if rck.Gate != nil {
			r.gate = online.RestoreGate(rck.Gate, f.cfg.Gate)
			r.gateEMA.Store(math.Float64bits(r.gate.EMA()))
		}
	}
	f.naPer.Store(ck.NumAtoms)
	f.steps.Store(ck.Steps)
	f.rr.Store(ck.RR)
	live := f.liveIDs()
	if len(live) == 0 {
		return fmt.Errorf("fleet: checkpoint has no live replica")
	}
	if f.cfg.PShard {
		if ck.PCk == nil {
			return fmt.Errorf("fleet: sharded checkpoint has no covariance slabs")
		}
		if err := f.restoreShards(ck.PCk, live); err != nil {
			return err
		}
		f.lambdaBits.Store(math.Float64bits(ck.PCk.Lambda))
	} else {
		f.lambdaBits.Store(math.Float64bits(f.reps[live[0]].opt.Lambda()))
	}
	// Republish clean snapshots at the restored step so the predict tier
	// never serves the diverged weights.
	step := f.steps.Load()
	for _, id := range live {
		f.reps[id].publish(step)
	}
	f.updateInvariants(live)
	return nil
}
