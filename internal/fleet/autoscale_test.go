package fleet

import (
	"strings"
	"testing"
	"time"

	"fekf/internal/fleet/clocktest"
	"fekf/internal/online"
)

// testScaler builds an autoscaler on a fake clock parked at t=0.
func testScaler(t *testing.T, cfg AutoscaleConfig) (*Autoscaler, *clocktest.Clock) {
	t.Helper()
	clk := clocktest.New(time.Unix(0, 0))
	cfg.Enabled = true
	a, err := NewAutoscaler(cfg, 2, clk)
	if err != nil {
		t.Fatal(err)
	}
	return a, clk
}

// High pressure above the band must scale up by exactly one replica.
func TestAutoscaleScaleUp(t *testing.T) {
	a, _ := testScaler(t, AutoscaleConfig{Min: 1, Max: 4})
	v := a.Evaluate(Sample{Live: 2, QueueOccupancy: 0.9, GateAcceptRate: 1})
	if v.Decision != ScaleUp || v.Target != 3 {
		t.Fatalf("verdict %+v, want up to 3", v)
	}
	if v.Pressure != 0.9 {
		t.Fatalf("pressure %g, want 0.9 (occ alone with accept=1, lat=0)", v.Pressure)
	}
	if a.ScaleUps() != 1 || a.ScaleDowns() != 0 {
		t.Fatalf("counters %d/%d, want 1/0", a.ScaleUps(), a.ScaleDowns())
	}
}

// Low pressure below the band must scale down by exactly one replica.
func TestAutoscaleScaleDown(t *testing.T) {
	a, _ := testScaler(t, AutoscaleConfig{Min: 1, Max: 4})
	v := a.Evaluate(Sample{Live: 3, QueueOccupancy: 0.05, GateAcceptRate: 1})
	if v.Decision != ScaleDown || v.Target != 2 {
		t.Fatalf("verdict %+v, want down to 2", v)
	}
	if a.ScaleDowns() != 1 {
		t.Fatalf("downs %d, want 1", a.ScaleDowns())
	}
}

// Pressure inside the hysteresis band holds — no flapping between the
// thresholds.
func TestAutoscaleDeadBand(t *testing.T) {
	a, _ := testScaler(t, AutoscaleConfig{Min: 1, Max: 4})
	for _, occ := range []float64{0.21, 0.5, 0.74} {
		v := a.Evaluate(Sample{Live: 2, QueueOccupancy: occ, GateAcceptRate: 1})
		if v.Decision != Hold || v.Target != 2 {
			t.Fatalf("occ %g: verdict %+v, want hold at 2", occ, v)
		}
		if !strings.Contains(v.Reason, "dead-band") {
			t.Fatalf("occ %g: reason %q does not name the dead-band", occ, v.Reason)
		}
	}
	if a.ScaleUps() != 0 || a.ScaleDowns() != 0 {
		t.Fatal("dead-band evaluations committed scale events")
	}
}

// Cooldowns gate both directions from the last scale event: an up right
// after an up is suppressed until UpCooldown elapses, and a down right
// after an up is suppressed until DownCooldown elapses.
func TestAutoscaleCooldownSuppression(t *testing.T) {
	a, clk := testScaler(t, AutoscaleConfig{
		Min: 1, Max: 4, UpCooldown: 10 * time.Second, DownCooldown: 20 * time.Second,
	})
	hi := Sample{Live: 2, QueueOccupancy: 1, GateAcceptRate: 1}
	lo := Sample{Live: 3, QueueOccupancy: 0, GateAcceptRate: 1}

	if v := a.Evaluate(hi); v.Decision != ScaleUp {
		t.Fatalf("first up: %+v", v)
	}
	// 5s later: both directions still cooling down.
	clk.Advance(5 * time.Second)
	if v := a.Evaluate(hi); v.Decision != Hold || !strings.Contains(v.Reason, "cooldown") {
		t.Fatalf("up during up-cooldown: %+v", v)
	}
	if v := a.Evaluate(lo); v.Decision != Hold || !strings.Contains(v.Reason, "cooldown") {
		t.Fatalf("down during down-cooldown: %+v", v)
	}
	// 12s after the up: up unblocked, down still cooling.
	clk.Advance(7 * time.Second)
	if v := a.Evaluate(lo); v.Decision != Hold {
		t.Fatalf("down at 12s of 20s cooldown: %+v", v)
	}
	if v := a.Evaluate(hi); v.Decision != ScaleUp {
		t.Fatalf("up after up-cooldown: %+v", v)
	}
	// The second up resets the reference: 20s after it, down flows.
	clk.Advance(20 * time.Second)
	if v := a.Evaluate(lo); v.Decision != ScaleDown {
		t.Fatalf("down after full cooldown: %+v", v)
	}
	if a.ScaleUps() != 2 || a.ScaleDowns() != 1 {
		t.Fatalf("counters %d/%d, want 2/1", a.ScaleUps(), a.ScaleDowns())
	}
}

// The band never pushes the fleet outside [Min, Max], and a fleet found
// outside the band (replica deaths, resumed checkpoints) is healed back
// one replica per decision regardless of pressure.
func TestAutoscaleMinMaxClamp(t *testing.T) {
	a, clk := testScaler(t, AutoscaleConfig{Min: 2, Max: 4})
	if v := a.Evaluate(Sample{Live: 4, QueueOccupancy: 1, GateAcceptRate: 1}); v.Decision != Hold ||
		!strings.Contains(v.Reason, "at max") {
		t.Fatalf("at max: %+v", v)
	}
	if v := a.Evaluate(Sample{Live: 2, QueueOccupancy: 0, GateAcceptRate: 1}); v.Decision != Hold ||
		!strings.Contains(v.Reason, "at min") {
		t.Fatalf("at min: %+v", v)
	}
	// Below min: heal up even at zero pressure.
	if v := a.Evaluate(Sample{Live: 1, QueueOccupancy: 0, GateAcceptRate: 1}); v.Decision != ScaleUp ||
		!strings.Contains(v.Reason, "below min") {
		t.Fatalf("below min: %+v", v)
	}
	// Above max: drain down even at mid-band pressure (cooldown applies).
	clk.Advance(time.Minute)
	if v := a.Evaluate(Sample{Live: 6, QueueOccupancy: 0.5, GateAcceptRate: 1}); v.Decision != ScaleDown ||
		!strings.Contains(v.Reason, "above max") {
		t.Fatalf("above max: %+v", v)
	}
}

// The composite pressure weighs gate acceptance (rejected frames carry
// half weight) and step latency (a saturated conductor doubles pressure).
func TestAutoscalePressureSignals(t *testing.T) {
	a, _ := testScaler(t, AutoscaleConfig{Min: 1, Max: 4, Interval: 100 * time.Millisecond})
	if p := a.Pressure(Sample{QueueOccupancy: 1, GateAcceptRate: 0}); p != 0.5 {
		t.Fatalf("fully-rejected stream pressure %g, want 0.5", p)
	}
	if p := a.Pressure(Sample{QueueOccupancy: 0.4, GateAcceptRate: 1, StepLatency: 100 * time.Millisecond}); p != 0.8 {
		t.Fatalf("saturated-step pressure %g, want 0.8", p)
	}
	if p := a.Pressure(Sample{QueueOccupancy: 0.4, GateAcceptRate: 1, StepLatency: time.Hour}); p != 0.8 {
		t.Fatalf("latency factor uncapped: %g, want 0.8", p)
	}
}

// An inverted hysteresis band must be rejected at construction, both
// directly and through fleet.New.
func TestAutoscaleConfigValidation(t *testing.T) {
	bad := AutoscaleConfig{Enabled: true, Min: 1, Max: 3, ScaleUpAt: 0.3, ScaleDownAt: 0.6}
	if _, err := NewAutoscaler(bad, 2, nil); err == nil {
		t.Fatal("NewAutoscaler accepted an inverted band")
	}
	ds, m, opt := fleetSetup(t)
	if _, err := New(m, opt, ds, Config{Replicas: 1, Autoscale: bad}); err == nil {
		t.Fatal("fleet.New accepted an inverted band")
	}
}

// The tentpole integration, fully deterministic under the fake clock and
// with zero sleeps: a burst scales the fleet up through checkpoint
// catch-up, the cooldown suppresses the next move, quiescence scales it
// back down — and after every membership change the live replicas are
// bitwise identical (drift exactly 0), including across lockstep steps
// taken at every fleet width.
func TestAutoscaleFleetTransitionsBitwise(t *testing.T) {
	clk := clocktest.New(time.Unix(0, 0))
	cfg := Config{
		Seed: 23, Gate: online.GateConfig{Enabled: false},
		QueueSize: 8, Clock: clk,
		Autoscale: AutoscaleConfig{
			Enabled: true, Min: 1, Max: 3,
			Interval:   100 * time.Millisecond,
			UpCooldown: 500 * time.Millisecond, DownCooldown: 500 * time.Millisecond,
		},
	}
	ds, f := newTestFleet(t, 1, cfg)
	if f.Replicas() != 3 {
		t.Fatalf("allocated %d slots, want Max=3", f.Replicas())
	}
	if live := f.liveIDs(); len(live) != 1 || live[0] != 0 {
		t.Fatalf("initial live = %v, want [0]", live)
	}

	// Train the lone replica so later catch-ups copy real, advanced state.
	for i := 0; i < 6; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step()
	f.step()

	// Burst: fill the shard queue to 100% and run one control pass.
	for i := 6; i < 14; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i%ds.Len()]); !ok || err != nil {
			t.Fatalf("burst ingest %d: %v %v", i, ok, err)
		}
	}
	f.notePressure()
	f.maybeAutoscale()
	if live := f.liveIDs(); len(live) != 2 {
		t.Fatalf("burst did not scale up: live %v", live)
	}
	if f.scaler.ScaleUps() != 1 {
		t.Fatalf("scale-ups %d, want 1", f.scaler.ScaleUps())
	}
	assertBitwiseConsistent(t, f) // the revived slot caught up bitwise

	// Still under pressure, but inside the up-cooldown: suppressed.
	f.notePressure()
	clk.Advance(100 * time.Millisecond)
	f.maybeAutoscale()
	if live := f.liveIDs(); len(live) != 2 {
		t.Fatalf("cooldown failed to suppress a scale-up: live %v", live)
	}

	// Past the cooldown: the sustained burst grows the fleet to Max.
	f.notePressure()
	clk.Advance(500 * time.Millisecond)
	f.maybeAutoscale()
	if live := f.liveIDs(); len(live) != 3 {
		t.Fatalf("second scale-up missing: live %v", live)
	}
	assertBitwiseConsistent(t, f)

	// At Max: pressure no longer grows the fleet.
	f.notePressure()
	clk.Advance(600 * time.Millisecond)
	f.maybeAutoscale()
	if live := f.liveIDs(); len(live) != 3 {
		t.Fatalf("scaled past Max: live %v", live)
	}

	// The widened fleet trains in lockstep, bitwise identical.
	f.drainAll()
	f.step()
	assertBitwiseConsistent(t, f)

	// Quiescence: empty queues read as zero pressure; each decision
	// (spaced past the cooldown) shrinks the fleet by one, bitwise clean,
	// down to Min and no further.
	for want := 2; want >= 1; want-- {
		clk.Advance(600 * time.Millisecond)
		f.maybeAutoscale()
		if live := f.liveIDs(); len(live) != want {
			t.Fatalf("scale-down to %d missing: live %v (reason %q)", want, live, f.FleetStats().Autoscale.LastReason)
		}
		assertBitwiseConsistent(t, f)
		f.step()
		assertBitwiseConsistent(t, f)
	}
	clk.Advance(600 * time.Millisecond)
	f.maybeAutoscale()
	if live := f.liveIDs(); len(live) != 1 {
		t.Fatalf("scaled below Min: live %v", live)
	}
	if ups, downs := f.scaler.ScaleUps(), f.scaler.ScaleDowns(); ups != 2 || downs != 2 {
		t.Fatalf("scale events %d up / %d down, want 2/2", ups, downs)
	}

	st := f.FleetStats()
	if st.Autoscale == nil || !st.Autoscale.Enabled {
		t.Fatal("fleet stats carry no autoscale row")
	}
	if st.Autoscale.Min != 1 || st.Autoscale.Max != 3 || st.Autoscale.Live != 1 || st.Autoscale.Target != 1 {
		t.Fatalf("autoscale row %+v", st.Autoscale)
	}
	if st.Autoscale.ScaleUps != 2 || st.Autoscale.ScaleDowns != 2 || st.Autoscale.Evals == 0 {
		t.Fatalf("autoscale row counters %+v", st.Autoscale)
	}
	if st.Autoscale.LastDecision == "" || st.Autoscale.LastReason == "" {
		t.Fatalf("autoscale row has no decision provenance: %+v", st.Autoscale)
	}
	if lastErr := f.Stats().LastError; lastErr != "" {
		t.Fatalf("autoscale cycle recorded an error: %s", lastErr)
	}
}

// Scale-down is a graceful drain: frames still queued on the victim's
// shard are re-admitted through the survivors, not dropped.
func TestAutoscaleDownReShardsBacklog(t *testing.T) {
	clk := clocktest.New(time.Unix(0, 0))
	cfg := Config{
		Seed: 29, Gate: online.GateConfig{Enabled: false}, QueueSize: 16, Clock: clk,
		Autoscale: AutoscaleConfig{Enabled: true, Min: 1, Max: 2},
	}
	ds, f := newTestFleet(t, 2, cfg)
	// Park 4 frames on each live shard (round-robin over 2 replicas).
	for i := 0; i < 8; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	if d := f.reps[1].queue.Depth(); d != 4 {
		t.Fatalf("replica 1 queued %d, want 4", d)
	}
	before := f.reps[0].accepted.Load()
	f.scaleDown(f.liveIDs())
	if f.reps[1].alive.Load() {
		t.Fatal("scale-down left the victim alive")
	}
	if d := f.reps[1].queue.Depth(); d != 0 {
		t.Fatalf("victim still holds %d queued frames after the drain", d)
	}
	// The victim's 4 frames flowed through the survivor's gate/replay.
	if got := f.reps[0].accepted.Load() - before; got != 4 {
		t.Fatalf("survivor admitted %d re-sharded frames, want 4", got)
	}
	if lastErr := f.Stats().LastError; lastErr != "" {
		t.Fatalf("graceful drain recorded an error: %s", lastErr)
	}
}
