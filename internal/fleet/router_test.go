package fleet

import (
	"testing"
	"time"

	"fekf/internal/online"
)

// routerFleet builds a bare fleet shell whose replica health and snapshot
// provenance the table controls directly: published[i] == 0 means replica
// i never published; otherwise it is both the snapshot's step and its
// publication-time offset in seconds.
func routerFleet(alive []bool, published []int64) *Fleet {
	f := &Fleet{}
	base := time.Unix(1000, 0)
	for i := range alive {
		r := &replica{id: i}
		r.alive.Store(alive[i])
		if published[i] > 0 {
			r.snap.Store(&online.ModelSnapshot{
				Step:      published[i],
				Published: base.Add(time.Duration(published[i]) * time.Second),
			})
		}
		f.reps = append(f.reps, r)
	}
	f.router = &Router{f: f}
	return f
}

// The router's health/fallback ladder under mixed replica health: healthy
// rotation first, freshest-ever-published when no replica is healthy, nil
// (the serve tier's 503) only when nothing was ever published.
func TestRouterFreshestFallback(t *testing.T) {
	cases := []struct {
		name      string
		alive     []bool
		published []int64
		// want is the sequence of snapshot steps successive Snapshot()
		// calls must return (the rotation counter starts at 0, so it is
		// deterministic); a 0 entry means nil.
		want []int64
	}{
		{
			name:  "all healthy rotates",
			alive: []bool{true, true, true}, published: []int64{1, 2, 3},
			want: []int64{1, 2, 3, 1, 2, 3},
		},
		{
			name:  "dead replica skipped in rotation",
			alive: []bool{true, false, true}, published: []int64{1, 2, 3},
			// starts 0,1,2,0: index 1 is dead, so its slot falls through
			// to index 2
			want: []int64{1, 3, 3, 1},
		},
		{
			name:  "healthy preferred over fresher dead",
			alive: []bool{true, false}, published: []int64{1, 9},
			want: []int64{1, 1, 1},
		},
		{
			name:  "live but unpublished falls back to freshest dead",
			alive: []bool{true, false}, published: []int64{0, 5},
			want: []int64{5, 5},
		},
		{
			name:  "all dead serves freshest ever published",
			alive: []bool{false, false, false}, published: []int64{3, 9, 6},
			want: []int64{9, 9, 9},
		},
		{
			name:  "mid-scale mix: one catching up, one dead, one serving",
			alive: []bool{true, true, false}, published: []int64{4, 0, 7},
			// rotation: idx0 healthy; idx1 alive but unpublished → falls
			// through to idx2 (dead, skipped) → wraps to idx0
			want: []int64{4, 4, 4, 4},
		},
		{
			name:  "nothing ever published",
			alive: []bool{true, true}, published: []int64{0, 0},
			want: []int64{0, 0},
		},
		{
			name: "zero replicas", alive: nil, published: nil,
			want: []int64{0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := routerFleet(tc.alive, tc.published)
			for i, want := range tc.want {
				s := f.Snapshot()
				if want == 0 {
					if s != nil {
						t.Fatalf("call %d: got snapshot step %d, want nil", i, s.Step)
					}
					continue
				}
				if s == nil {
					t.Fatalf("call %d: got nil, want step %d", i, want)
				}
				if s.Step != want {
					t.Fatalf("call %d: got step %d, want %d", i, s.Step, want)
				}
			}
			// dead replicas never accrue routing credit
			for i, r := range f.reps {
				if !tc.alive[i] && r.routed.Load() != 0 {
					t.Fatalf("dead replica %d was routed %d predicts", i, r.routed.Load())
				}
			}
		})
	}
}
