package fleet

import (
	"fmt"
	"testing"
	"time"

	"fekf/internal/online"
)

// BenchmarkFleetScaling sweeps the replica count and measures one lockstep
// fleet step (per-replica minibatch sampling, ring funnel-aggregation and
// the shared Kalman update on every replica).  The simulation shares one
// host, so wall time grows with N; the interesting outputs are the modeled
// wire bytes (reported by -v stats) and the invariant holding at scale.
func BenchmarkFleetScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			ds, f := newTestFleet(b, n, Config{Seed: 42, Gate: online.GateConfig{Enabled: false}})
			for i := 0; i < 4*n; i++ {
				if ok, err := f.Ingest(ds.Snapshots[i%ds.Len()]); !ok || err != nil {
					b.Fatalf("ingest %d: %v %v", i, ok, err)
				}
			}
			f.drainAll()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.step()
			}
			b.StopTimer()
			if f.WeightDrift() != 0 || f.PDrift() != 0 {
				b.Fatalf("drift at %d replicas: %g / %g", n, f.WeightDrift(), f.PDrift())
			}
		})
	}
}

// BenchmarkAutoscaleDecision measures one controller evaluation — the
// pure-decision cost the conductor pays every sampling interval, scale
// event or not.  The sample mix walks through up, down and dead-band
// verdicts so cooldown bookkeeping is exercised too.
func BenchmarkAutoscaleDecision(b *testing.B) {
	a, err := NewAutoscaler(AutoscaleConfig{
		Enabled: true, Min: 1, Max: 8,
		UpCooldown: time.Microsecond, DownCooldown: time.Microsecond,
	}, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	samples := []Sample{
		{Live: 4, QueueOccupancy: 0.95, GateAcceptRate: 1, StepLatency: 40 * time.Millisecond},
		{Live: 4, QueueOccupancy: 0.5, GateAcceptRate: 0.8},
		{Live: 4, QueueOccupancy: 0.02, GateAcceptRate: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Evaluate(samples[i%len(samples)])
	}
}

// BenchmarkFleetScaleTransition measures one full scale-up/scale-down
// round trip through the membership paths the autoscaler drives: revive
// with checkpoint catch-up from a survivor (model encode + Kalman restore)
// followed by a kill.  This is the latency a scale event adds between two
// lockstep steps.
func BenchmarkFleetScaleTransition(b *testing.B) {
	ds, f := newTestFleet(b, 1, Config{
		Seed: 42, Gate: online.GateConfig{Enabled: false},
		Autoscale: AutoscaleConfig{Enabled: true, Min: 1, Max: 2},
	})
	for i := 0; i < 4; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			b.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step() // advance past init so catch-up copies real trained state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.reviveLocked(1); err != nil {
			b.Fatal(err)
		}
		if err := f.killLocked(1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if f.WeightDrift() != 0 || f.PDrift() != 0 {
		b.Fatalf("drift after scale transitions: %g / %g", f.WeightDrift(), f.PDrift())
	}
}
