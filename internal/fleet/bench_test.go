package fleet

import (
	"fmt"
	"testing"

	"fekf/internal/online"
)

// BenchmarkFleetScaling sweeps the replica count and measures one lockstep
// fleet step (per-replica minibatch sampling, ring funnel-aggregation and
// the shared Kalman update on every replica).  The simulation shares one
// host, so wall time grows with N; the interesting outputs are the modeled
// wire bytes (reported by -v stats) and the invariant holding at scale.
func BenchmarkFleetScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			ds, f := newTestFleet(b, n, Config{Seed: 42, Gate: online.GateConfig{Enabled: false}})
			for i := 0; i < 4*n; i++ {
				if ok, err := f.Ingest(ds.Snapshots[i%ds.Len()]); !ok || err != nil {
					b.Fatalf("ingest %d: %v %v", i, ok, err)
				}
			}
			f.drainAll()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.step()
			}
			b.StopTimer()
			if f.WeightDrift() != 0 || f.PDrift() != 0 {
				b.Fatalf("drift at %d replicas: %g / %g", n, f.WeightDrift(), f.PDrift())
			}
		})
	}
}
