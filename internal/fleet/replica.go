package fleet

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/online"
	"fekf/internal/optimize"
)

// replica is one member of the fleet: a full model + Kalman filter pair
// (bitwise identical to every other live replica's), plus the private
// per-shard ingest state — queue, gate, replay buffer — and the published
// copy-on-write snapshot the predict router reads.
//
// The model, optimizer, gate and replay buffer are owned by the fleet's
// conductor goroutine; the queue, the snapshot pointer and the mirrored
// atomic counters are the concurrent surface.
type replica struct {
	id    int
	dev   *device.Device
	clock Clock
	model *deepmd.Model
	opt   *optimize.FEKF
	// pshard marks the sharded-covariance fleet mode: the replica's own
	// FEKF never materializes a full Kalman state (that is the point of
	// sharding) — the conductor holds the rank's P slabs in Fleet.pstates.
	pshard bool

	queue  *online.Queue
	replay *online.ReplayBuffer
	gate   *online.Gate

	snap  atomic.Pointer[online.ModelSnapshot]
	alive atomic.Bool
	// pBytes mirrors the replica's resident covariance bytes (full P
	// replicated, or the owned slabs under pshard) for the stats readers;
	// the conductor refreshes it after steps and membership changes.
	pBytes atomic.Int64

	// mirrored observability (written by the conductor / router, read by
	// Stats from any goroutine)
	accepted  atomic.Int64
	gatedOut  atomic.Int64
	seen      atomic.Int64
	replayLen atomic.Int64
	replayWin atomic.Int64
	replayRes atomic.Int64
	gateEMA   atomic.Uint64
	routed    atomic.Int64
}

// newReplica clones the prototype model and optimizer onto a fresh
// simulated device and builds the replica's private shard state.
func newReplica(id int, m *deepmd.Model, opt *optimize.FEKF, cfg Config) (*replica, error) {
	dev := device.New(fmt.Sprintf("fleet%d", id), device.A100())
	model := m.CloneFor(dev)
	ropt, err := optimize.RestoreFEKF(opt.Checkpoint(), model)
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %d optimizer: %w", id, err)
	}
	// Eager state: NewKalmanState is deterministic (P = I), so replicas
	// built this way start bit-identical even before the first step, and
	// the gate has a P diagonal to score against immediately.  In pshard
	// mode the full state is never built — the conductor allocates only
	// this replica's row slabs.
	if !cfg.PShard {
		ropt.InitState(model)
	}
	r := &replica{
		id:     id,
		dev:    dev,
		clock:  cfg.Clock,
		model:  model,
		opt:    ropt,
		pshard: cfg.PShard,
		queue:  online.NewQueue(cfg.QueueSize, cfg.QueuePolicy),
		replay: online.NewReplay(cfg.WindowSize, cfg.ReservoirSize, cfg.Seed+int64(id)),
		gate:   online.NewGate(cfg.Gate),
	}
	r.alive.Store(true)
	r.pBytes.Store(ropt.PBytes())
	return r, nil
}

// admit runs one frame through the replica's gate into its replay buffer.
// Conductor goroutine only.
func (f *Fleet) admit(r *replica, s dataset.Snapshot) {
	if f.cfg.Trace != nil && f.rec == nil {
		f.rec = f.cfg.Trace.Begin()
	}
	a0 := time.Now()
	defer func() { f.rec.Span(r.id, "ingest_admit", a0, time.Since(a0)) }()
	scratch := &dataset.Dataset{System: f.system, Species: f.species, Snapshots: []dataset.Snapshot{s}}
	// Under pshard each replica gates on the diagonal of its own owned P
	// rows (zeros elsewhere) — a documented approximation: scores touching
	// unowned rows read 0, so the partial gate is more permissive than the
	// full diagonal, never stricter.
	pd := r.opt.PDiagonal()
	if f.cfg.PShard {
		pd = nil
		if st := f.pstates[r.id]; st != nil {
			pd = st.PDiagonalOwned()
		}
	}
	g0 := time.Now()
	ok, _, err := r.gate.Admit(r.model, pd, scratch, 0)
	f.rec.Span(r.id, "gate", g0, time.Since(g0))
	if err != nil {
		f.setErr(fmt.Errorf("replica %d gate: %w", r.id, err))
		return
	}
	r.gateEMA.Store(math.Float64bits(r.gate.EMA()))
	if !ok {
		r.gatedOut.Add(1)
		return
	}
	r.replay.Add(s)
	r.accepted.Add(1)
	r.replayLen.Store(int64(r.replay.Len()))
	r.replayWin.Store(int64(r.replay.WindowLen()))
	r.replayRes.Store(int64(r.replay.ReservoirLen()))
	r.seen.Store(r.replay.Seen())
}

// publish swaps in a fresh copy-on-write snapshot of the replica's model,
// stamped from the fleet clock so snapshot ages are deterministic under a
// fake clock.  Conductor goroutine only (the clone must see quiescent
// weights).
func (r *replica) publish(step int64) {
	now := time.Now()
	if r.clock != nil {
		now = r.clock.Now()
	}
	r.snap.Store(&online.ModelSnapshot{
		Model:     r.model.Clone(),
		Step:      step,
		Lambda:    r.opt.Lambda(),
		Published: now,
	})
}

// restoreShared replaces the replica's model and filter with the shared
// state carried by a fleet checkpoint — the rejoin/catch-up path.
// Conductor goroutine only.
func (r *replica) restoreShared(modelBytes []byte, opt *optimize.FEKFCheckpoint) error {
	m, err := decodeModelOn(modelBytes, r.dev)
	if err != nil {
		return fmt.Errorf("fleet: replica %d model: %w", r.id, err)
	}
	ropt, err := optimize.RestoreFEKF(opt, m)
	if err != nil {
		return fmt.Errorf("fleet: replica %d optimizer: %w", r.id, err)
	}
	// In pshard mode the checkpoint carries no Kalman state (P lives in
	// the conductor's shard states) and none is materialized here.
	if !r.pshard {
		ropt.InitState(m)
	}
	r.model, r.opt = m, ropt
	return nil
}
