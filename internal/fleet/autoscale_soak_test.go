package fleet

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"fekf/internal/deepmd"
	"fekf/internal/online"
)

// Race soak for the autoscaler (run under -race via make race-autoscale):
// bursty producers slam tiny DropNewest queues while predict and stats
// traffic runs concurrently, forcing the conductor through full scale-up
// and scale-down cycles.  At every stats sample — and bitwise at the end —
// the replica drift must read exactly 0: membership changes driven by the
// controller must be as invisible to the training invariant as manual
// Kill/Revive.
func TestAutoscaleRaceSoak(t *testing.T) {
	ds, f := newTestFleet(t, 1, Config{
		SnapshotEvery: 1, QueueSize: 4, QueuePolicy: online.DropNewest,
		PollInterval: time.Millisecond, Seed: 37,
		Gate: online.GateConfig{Enabled: false},
		Autoscale: AutoscaleConfig{
			Enabled: true, Min: 1, Max: 3,
			Interval:   2 * time.Millisecond,
			UpCooldown: 5 * time.Millisecond, DownCooldown: 10 * time.Millisecond,
		},
	})
	f.Start()

	stopBurst := make(chan struct{})
	stopPredict := make(chan struct{})
	var burstWG, predictWG sync.WaitGroup
	// Burst-phase producers: overfill the tiny queues continuously so
	// pressure holds past the scale-up edge until the controller reacts.
	for p := 0; p < 2; p++ {
		burstWG.Add(1)
		go func(p int) {
			defer burstWG.Done()
			for i := 0; ; i++ {
				for k := 0; k < 12; k++ {
					if _, err := f.Ingest(ds.Snapshots[(7*p+i+k)%ds.Len()]); err != nil {
						return // queues closed during shutdown
					}
				}
				select {
				case <-stopBurst:
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
		}(p)
	}
	// Concurrent predict traffic through the router, across every
	// membership change.
	predictWG.Add(1)
	go func() {
		defer predictWG.Done()
		for {
			select {
			case <-stopPredict:
				return
			default:
			}
			snap := f.Snapshot()
			if snap == nil {
				t.Error("router returned nil mid-soak")
				return
			}
			env, err := deepmd.BuildBatchEnv(snap.Model.Cfg, ds, []int{0})
			if err != nil {
				t.Error(err)
				return
			}
			out := snap.Model.Forward(env, true)
			if math.IsNaN(out.Energies.Value.Data[0]) {
				t.Error("snapshot forward produced NaN mid-soak")
			}
			out.Graph.Release()
		}
	}()

	// waitFor polls the fleet stats until cond holds, asserting exactly
	// zero replica drift at every sample along the way.
	waitFor := func(what string, cond func(Stats) bool) {
		deadline := time.After(90 * time.Second)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			st := f.FleetStats()
			if st.WeightDrift != 0 || st.PDrift != 0 {
				t.Fatalf("drift %g / %g mid-soak, want exactly 0", st.WeightDrift, st.PDrift)
			}
			if st.Autoscale == nil {
				t.Fatal("autoscale row missing from fleet stats")
			}
			if cond(st) {
				return
			}
			select {
			case <-deadline:
				t.Fatalf("%s did not happen before the deadline: %+v", what, st.Autoscale)
			case <-tick.C:
			}
		}
	}

	// Phase 1: the burst must grow the fleet, with real lockstep training
	// on the widened membership.
	waitFor("scale-up under burst", func(st Stats) bool {
		return st.Autoscale.ScaleUps >= 1 && st.Live >= 2 && st.Steps >= 2
	})

	// Phase 2: quiesce the producers; the drained queues must shrink the
	// fleet back to Min while predict traffic keeps flowing.
	close(stopBurst)
	burstWG.Wait()
	waitFor("scale-down after quiesce", func(st Stats) bool {
		return st.Autoscale.ScaleDowns >= 1 && st.Live == 1
	})

	close(stopPredict)
	predictWG.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.LastError != "" {
		t.Fatalf("fleet recorded error during the soak: %s", st.LastError)
	}
	assertBitwiseConsistent(t, f)
}
