package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"fekf/internal/online"
)

// benchFleet builds a warm fleet in the given covariance mode, ready to
// step: frames ingested and queues drained.
func benchFleet(tb testing.TB, replicas int, pshard bool) (*Fleet, func()) {
	tb.Helper()
	cfg := Config{Seed: 42, Gate: online.GateConfig{Enabled: false}, PShard: pshard}
	ds, f := newTestFleet(tb, replicas, cfg)
	for i := 0; i < 4*replicas; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i%ds.Len()]); !ok || err != nil {
			tb.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	return f, func() {
		if f.WeightDrift() != 0 || f.PDrift() != 0 {
			tb.Fatalf("drift after benchmark steps: %g / %g", f.WeightDrift(), f.PDrift())
		}
	}
}

// maxResidentPBytes returns the largest per-replica resident covariance
// footprint — full P for every rank under replication, the biggest slab
// share under sharding.
func maxResidentPBytes(f *Fleet) int64 {
	var m int64
	for _, r := range f.reps {
		if v := r.pBytes.Load(); v > m {
			m = v
		}
	}
	return m
}

// BenchmarkPShardStep pits one sharded lockstep step against its
// replicated twin at 1/2/4 ranks.  Wall time captures the cost of the
// extra P·g exchange collective; the reported P-bytes/rank metric is the
// memory headline — under sharding it shrinks toward 1/R of the full
// covariance while the replicated fleet holds a full copy per rank.
func BenchmarkPShardStep(b *testing.B) {
	for _, mode := range []struct {
		name   string
		pshard bool
	}{{"replicated", false}, {"pshard", true}} {
		for _, n := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/replicas=%d", mode.name, n), func(b *testing.B) {
				f, check := benchFleet(b, n, mode.pshard)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.step()
				}
				b.StopTimer()
				check()
				b.ReportMetric(float64(maxResidentPBytes(f)), "P-bytes/rank")
			})
		}
	}
}

// pshardBenchRow is one mode × rank-count measurement of the BENCH JSON
// table.
type pshardBenchRow struct {
	Mode                 string  `json:"mode"`
	Replicas             int     `json:"replicas"`
	Steps                int     `json:"steps"`
	StepSecondsMean      float64 `json:"step_seconds_mean"`
	MaxResidentPBytes    int64   `json:"max_resident_p_bytes"`
	SumResidentPBytes    int64   `json:"sum_resident_p_bytes"`
	ResidentFractionMax  float64 `json:"resident_fraction_max"`
	ExchangeBytesPerStep int64   `json:"exchange_bytes_per_step"`
}

// TestPShardBenchJSON dumps the replicated-vs-sharded comparison as a JSON
// table (step wall time, per-rank resident P bytes, exchange traffic) for
// offline tracking.  Gated on FEKF_BENCH_JSON naming the output path so
// plain `go test` stays fast; run it via `make bench-json`.
func TestPShardBenchJSON(t *testing.T) {
	path := os.Getenv("FEKF_BENCH_JSON")
	if path == "" {
		t.Skip("set FEKF_BENCH_JSON=<path> to write the pshard benchmark table")
	}
	const steps = 3
	var rows []pshardBenchRow
	for _, mode := range []struct {
		name   string
		pshard bool
	}{{"replicated", false}, {"pshard", true}} {
		for _, n := range []int{1, 2, 4} {
			f, check := benchFleet(t, n, mode.pshard)
			t0 := time.Now()
			for i := 0; i < steps; i++ {
				f.step()
			}
			elapsed := time.Since(t0)
			check()
			if f.Steps() != steps {
				t.Fatalf("%s/replicas=%d: %d steps, want %d (last error %q)",
					mode.name, n, f.Steps(), steps, f.Stats().LastError)
			}
			row := pshardBenchRow{
				Mode:            mode.name,
				Replicas:        n,
				Steps:           steps,
				StepSecondsMean: elapsed.Seconds() / steps,
			}
			var full int64
			for _, r := range f.reps {
				v := r.pBytes.Load()
				row.SumResidentPBytes += v
				if v > row.MaxResidentPBytes {
					row.MaxResidentPBytes = v
				}
			}
			if ps := f.pstats.Load(); ps != nil {
				full = ps.TotalBytes
				row.ExchangeBytesPerStep = ps.ExchangeBytesPerStep
			} else {
				full = f.reps[0].opt.PBytes()
			}
			if full > 0 {
				row.ResidentFractionMax = float64(row.MaxResidentPBytes) / float64(full)
			}
			rows = append(rows, row)
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d rows to %s", len(rows), path)
}
