package fleet

import "time"

// Clock is the fleet's time source: snapshot provenance, step-latency
// measurement, the conductor's idle wait and every autoscaler decision go
// through it, so a fake clock makes the whole control loop deterministic
// in tests (see internal/fleet/clocktest).  The zero Config uses the
// system clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the production Clock: the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock is the real wall clock, the default when Config.Clock is nil.
var SystemClock Clock = systemClock{}
