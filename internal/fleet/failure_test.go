package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fekf/internal/deepmd"
	"fekf/internal/online"
)

// A replica crashing mid-step (after its environment build) must leave the
// survivors bitwise consistent: the crashed rank contributes zero partials
// but applies the same reduced update, so weights and P cannot diverge.
func TestReplicaCrashMidStepKeepsConsistency(t *testing.T) {
	ds, f := newTestFleet(t, 3, Config{Seed: 21, Gate: online.GateConfig{Enabled: false}})
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step() // one healthy step first
	assertBitwiseConsistent(t, f)

	boom := errors.New("simulated mid-step crash")
	f.failStep = func(id int, step int64) error {
		if id == 1 {
			return boom
		}
		return nil
	}
	f.step()
	f.failStep = nil

	if f.Steps() != 2 {
		t.Fatalf("took %d steps, want 2", f.Steps())
	}
	st := f.Stats()
	if !strings.Contains(st.LastError, "simulated mid-step crash") {
		t.Fatalf("crash not surfaced in stats: %q", st.LastError)
	}
	// the decisive invariant: the crash did not break bitwise consistency,
	// and training continues cleanly afterwards
	assertBitwiseConsistent(t, f)
	f.step()
	assertBitwiseConsistent(t, f)
	if f.Steps() != 3 {
		t.Fatalf("fleet stopped stepping after a replica crash: %d", f.Steps())
	}
}

// Killing a replica must drain it from the predict rotation without
// failing in-flight predictions, keep the survivors training with zero
// drift, and keep /v1/predict availability throughout.  The conductor is
// driven manually (the fleet is never started), so the whole sequence is
// deterministic — no polling loops, no sleeps.
func TestKillKeepsPredictAvailability(t *testing.T) {
	ds, f := newTestFleet(t, 3, Config{
		SnapshotEvery: 1, Seed: 13, Gate: online.GateConfig{Enabled: false},
	})
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step() // SnapshotEvery 1: every step publishes routable snapshots
	f.step()
	assertBitwiseConsistent(t, f)

	// an in-flight prediction holds a snapshot across the kill
	held := f.Snapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Kill(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(ctx, 1); err == nil {
		t.Fatal("double kill succeeded")
	}

	// the held snapshot still serves (immutable clone)
	env, err := deepmd.BuildBatchEnv(held.Model.Cfg, ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	out := held.Model.Forward(env, true)
	if out.Energies.Value.Data[0] != out.Energies.Value.Data[0] {
		t.Fatal("in-flight prediction NaN after kill")
	}
	out.Graph.Release()

	// the router stops handing out the dead replica but stays available
	before := f.reps[1].routed.Load()
	for i := 0; i < 12; i++ {
		if f.Snapshot() == nil {
			t.Fatal("predict availability lost after a kill")
		}
	}
	if got := f.reps[1].routed.Load(); got != before {
		t.Fatalf("router sent %d predicts to the dead replica", got-before)
	}

	// survivors keep training, bitwise consistent
	f.step()
	f.step()
	assertBitwiseConsistent(t, f)
	st := f.FleetStats()
	if st.Live != 2 {
		t.Fatalf("stats report %d live replicas, want 2", st.Live)
	}
	if st.WeightDrift != 0 || st.PDrift != 0 {
		t.Fatalf("survivors drifted: %g / %g", st.WeightDrift, st.PDrift)
	}

	// ingest keeps flowing, sharded over the survivors only
	pushed1 := f.reps[1].queue.Pushed()
	for i := 0; i < 6; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("post-kill ingest %d: %v %v", i, ok, err)
		}
	}
	if got := f.reps[1].queue.Pushed(); got != pushed1 {
		t.Fatalf("sharder sent %d frames to the dead replica", got-pushed1)
	}
}

// Rejoin: a revived replica catches up from a survivor's checkpoint of the
// shared state and is bitwise identical again — drift returns to exactly 0
// and the router resumes sending it predictions.
func TestReviveCatchesUpBitwise(t *testing.T) {
	ds, f := newTestFleet(t, 3, Config{Seed: 17, Gate: online.GateConfig{Enabled: false}})
	for i := 0; i < 12; i++ {
		if ok, err := f.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	f.drainAll()
	f.step()
	assertBitwiseConsistent(t, f)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Kill(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// survivors advance; the dead replica's state goes stale
	f.step()
	f.step()
	assertBitwiseConsistent(t, f) // live-only invariant
	stale := f.reps[2].model.Params.FlattenValues()
	fresh := f.reps[0].model.Params.FlattenValues()
	moved := false
	for i := range stale {
		if stale[i] != fresh[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("survivors did not advance past the dead replica")
	}

	if err := f.Revive(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Revive(ctx, 2); err == nil {
		t.Fatal("double revive succeeded")
	}
	// the revived replica is bitwise identical again, including P and λ
	assertBitwiseConsistent(t, f)
	if s := f.reps[2].snap.Load(); s == nil {
		t.Fatal("revived replica published no snapshot")
	}

	// and it participates in the next lockstep step without breaking the
	// invariant (the ring re-forms over all three replicas)
	f.step()
	assertBitwiseConsistent(t, f)
	if st := f.FleetStats(); st.Live != 3 {
		t.Fatalf("stats report %d live replicas after revive, want 3", st.Live)
	}
}

// Revive with no survivor must fail cleanly rather than fabricate state.
func TestReviveNeedsSurvivor(t *testing.T) {
	_, f := newTestFleet(t, 2, Config{Seed: 19, Gate: online.GateConfig{Enabled: false}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Kill(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Revive(ctx, 0); err == nil {
		t.Fatal("revive succeeded with no live replica to catch up from")
	}
}
