package fleet

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// AutoscaleConfig controls the queue-pressure autoscaler.  When Enabled,
// the fleet allocates Max replica slots up front and the conductor grows
// and shrinks the *live* count between Min and Max: scale-up revives a
// dead slot through the checkpoint catch-up path (so it rejoins at drift
// exactly 0), scale-down kills the highest live slot and re-shards its
// queued backlog across the survivors.  Every membership change re-forms
// the collective ring, exactly as a manual Kill/Revive would.
type AutoscaleConfig struct {
	Enabled bool
	// Min and Max bound the live replica count (defaults 1 and the
	// configured Replicas).  The controller also heals toward the band:
	// a fleet pushed outside it (replica deaths, a resumed checkpoint
	// with a different width) is scaled back one replica per decision.
	Min, Max int
	// ScaleUpAt and ScaleDownAt are the hysteresis band edges on the
	// pressure score: pressure >= ScaleUpAt grows the fleet, pressure <=
	// ScaleDownAt shrinks it, anything between holds (the dead-band).
	// Defaults 0.75 and 0.20.
	ScaleUpAt, ScaleDownAt float64
	// UpCooldown (default 2s) is the minimum time after any scale event
	// before the next scale-up; DownCooldown (default 5s) likewise for
	// scale-downs.  Measuring both from the last event in either
	// direction prevents up→down flapping when a burst ends right after
	// a scale-up.
	UpCooldown, DownCooldown time.Duration
	// Interval is the sampling period of the control loop (default
	// 250ms); between evaluations the conductor records the peak
	// per-replica queue occupancy so short bursts are not missed.
	Interval time.Duration
	// ReassignBytesPerSec models the bandwidth available for migrating
	// covariance shards when a pshard fleet resizes (default 1 GiB/s).
	// The modeled transfer time of a candidate transition (its
	// Sample.ReassignBytes, divided by this rate) extends the matching
	// cooldown, so expensive repartitions happen less often than cheap
	// ones.  Replicated fleets move no shards and are unaffected.
	ReassignBytesPerSec float64
}

func (c AutoscaleConfig) withDefaults(replicas int) AutoscaleConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		if replicas > c.Min {
			c.Max = replicas
		} else {
			c.Max = c.Min
		}
	}
	if c.ScaleUpAt <= 0 {
		c.ScaleUpAt = 0.75
	}
	if c.ScaleDownAt <= 0 {
		c.ScaleDownAt = 0.20
	}
	if c.UpCooldown <= 0 {
		c.UpCooldown = 2 * time.Second
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 5 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.ReassignBytesPerSec <= 0 {
		c.ReassignBytesPerSec = 1 << 30 // 1 GiB/s
	}
	return c
}

func (c AutoscaleConfig) validate() error {
	if c.ScaleDownAt >= c.ScaleUpAt {
		return fmt.Errorf("fleet: autoscale band inverted: down %.3f >= up %.3f", c.ScaleDownAt, c.ScaleUpAt)
	}
	return nil
}

// Sample is one autoscaler observation, gathered by the conductor between
// steps.
type Sample struct {
	// Live is the current live replica count.
	Live int
	// QueueOccupancy is the peak per-replica ingest-queue fill fraction
	// (0..1) observed since the previous evaluation — a peak, not an
	// instant, so a burst drained between samples still registers.
	QueueOccupancy float64
	// GateAcceptRate is the fraction of gate-scored frames admitted so
	// far (1 before any frame was scored: no evidence of redundancy).
	GateAcceptRate float64
	// StepLatency is the EMA of recent lockstep wall times.
	StepLatency time.Duration
	// Backlog is the total number of frames currently queued.
	Backlog int
	// ReassignBytesUp and ReassignBytesDown are the covariance bytes a
	// scale-up or scale-down would migrate between ranks (0 for a
	// replicated fleet, whose transitions move no P state).  The
	// controller charges the modeled transfer time against the matching
	// cooldown.
	ReassignBytesUp, ReassignBytesDown int64
}

// Decision is the outcome of one autoscaler evaluation.
type Decision int

const (
	// Hold leaves the live count unchanged.
	Hold Decision = iota
	// ScaleUp revives one dead replica slot.
	ScaleUp
	// ScaleDown kills one live replica and re-shards its backlog.
	ScaleDown
)

// String names the decision for stats and logs.
func (d Decision) String() string {
	switch d {
	case ScaleUp:
		return "up"
	case ScaleDown:
		return "down"
	default:
		return "hold"
	}
}

// Verdict is one evaluated decision with its evidence.
type Verdict struct {
	Decision Decision
	// Target is the desired live count after applying the decision.
	Target int
	// Pressure is the composite load score the decision was made on.
	Pressure float64
	// Reason explains the decision (or the hold) in one sentence.
	Reason string
}

// Autoscaler is the queue-pressure controller.  Evaluate is called by one
// goroutine (the fleet conductor, or a test); the stats mirrors are safe
// to read from any goroutine.
type Autoscaler struct {
	cfg   AutoscaleConfig
	clock Clock

	// lastScale is the time of the last scale event in either direction,
	// the reference point for both cooldowns.  Owner: the evaluating
	// goroutine.
	lastScale time.Time

	// observability mirrors
	evals        atomic.Int64
	ups          atomic.Int64
	downs        atomic.Int64
	target       atomic.Int64
	pressureBits atomic.Uint64
	lastMu       sync.Mutex
	lastDecision string
	lastReason   string
}

// NewAutoscaler builds a controller over cfg (defaults applied against
// replicas as the fallback Max) and a clock (nil means the system clock).
func NewAutoscaler(cfg AutoscaleConfig, replicas int, clock Clock) (*Autoscaler, error) {
	cfg = cfg.withDefaults(replicas)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		clock = SystemClock
	}
	return &Autoscaler{cfg: cfg, clock: clock}, nil
}

// Config returns the controller's effective (defaulted) configuration.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// clamp01 squeezes x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Pressure folds the three load signals into one score in [0, 2]:
//
//	occupancy  — the direct queue-pressure term (0..1)
//	acceptance — frames the gate rejects never reach the replay buffers,
//	             so a mostly-redundant stream carries half weight:
//	             factor 0.5 + 0.5·acceptRate
//	latency    — lockstep steps slower than the control interval mean the
//	             fleet drains slower than the controller samples; the
//	             factor 1 + min(1, latency/interval) amplifies pressure
//	             up to 2× for a saturated conductor
//
// With a responsive fleet and a useful stream the score reduces to the
// queue occupancy itself, which is what the hysteresis band defaults are
// tuned against.
func (a *Autoscaler) Pressure(s Sample) float64 {
	gate := 0.5 + 0.5*clamp01(s.GateAcceptRate)
	lat := 1.0
	if s.StepLatency > 0 {
		lat += math.Min(1, float64(s.StepLatency)/float64(a.cfg.Interval))
	}
	return clamp01(s.QueueOccupancy) * gate * lat
}

// Evaluate makes one scaling decision from a sample.  Band-outside live
// counts are healed first (one replica per decision), then the hysteresis
// band applies; cooldowns gate both directions from the last scale event.
// A returned ScaleUp/ScaleDown is assumed applied by the caller — the
// cooldown reference advances with the decision.
func (a *Autoscaler) Evaluate(s Sample) Verdict {
	now := a.clock.Now()
	a.evals.Add(1)
	p := a.Pressure(s)
	v := Verdict{Decision: Hold, Target: s.Live, Pressure: p}
	switch {
	case s.Live < a.cfg.Min:
		a.tryUp(&v, s, now, fmt.Sprintf("live %d below min %d", s.Live, a.cfg.Min))
	case s.Live > a.cfg.Max:
		a.tryDown(&v, s, now, fmt.Sprintf("live %d above max %d", s.Live, a.cfg.Max))
	case p >= a.cfg.ScaleUpAt:
		if s.Live == a.cfg.Max {
			v.Reason = fmt.Sprintf("pressure %.3f >= %.2f but already at max %d", p, a.cfg.ScaleUpAt, a.cfg.Max)
		} else {
			a.tryUp(&v, s, now, fmt.Sprintf("pressure %.3f >= %.2f", p, a.cfg.ScaleUpAt))
		}
	case p <= a.cfg.ScaleDownAt:
		if s.Live == a.cfg.Min {
			v.Reason = fmt.Sprintf("pressure %.3f <= %.2f but already at min %d", p, a.cfg.ScaleDownAt, a.cfg.Min)
		} else {
			a.tryDown(&v, s, now, fmt.Sprintf("pressure %.3f <= %.2f", p, a.cfg.ScaleDownAt))
		}
	default:
		v.Reason = fmt.Sprintf("pressure %.3f in dead-band (%.2f, %.2f)", p, a.cfg.ScaleDownAt, a.cfg.ScaleUpAt)
	}
	a.record(v)
	return v
}

// tryUp commits a scale-up unless the up cooldown — extended by the
// modeled shard-transfer time of the transition — still runs.
func (a *Autoscaler) tryUp(v *Verdict, s Sample, now time.Time, why string) {
	cost := a.transferCost(s.ReassignBytesUp)
	if wait := a.cooldownLeft(now, a.cfg.UpCooldown+cost); wait > 0 {
		v.Reason = fmt.Sprintf("%s, but up cooldown has %s left", why, wait)
		return
	}
	v.Decision = ScaleUp
	v.Target = s.Live + 1
	v.Reason = fmt.Sprintf("%s: scaling %d -> %d", why, s.Live, v.Target)
	if s.ReassignBytesUp > 0 {
		v.Reason += fmt.Sprintf(" (repartition moves %d shard bytes, ~%s)", s.ReassignBytesUp, cost)
	}
	a.lastScale = now
	a.ups.Add(1)
}

// tryDown commits a scale-down unless the down cooldown — extended by the
// modeled shard-transfer time of the transition — still runs.
func (a *Autoscaler) tryDown(v *Verdict, s Sample, now time.Time, why string) {
	cost := a.transferCost(s.ReassignBytesDown)
	if wait := a.cooldownLeft(now, a.cfg.DownCooldown+cost); wait > 0 {
		v.Reason = fmt.Sprintf("%s, but down cooldown has %s left", why, wait)
		return
	}
	v.Decision = ScaleDown
	v.Target = s.Live - 1
	v.Reason = fmt.Sprintf("%s: scaling %d -> %d", why, s.Live, v.Target)
	if s.ReassignBytesDown > 0 {
		v.Reason += fmt.Sprintf(" (repartition moves %d shard bytes, ~%s)", s.ReassignBytesDown, cost)
	}
	a.lastScale = now
	a.downs.Add(1)
}

// transferCost converts a shard-migration volume into the modeled wall
// time at the configured reassignment bandwidth.
func (a *Autoscaler) transferCost(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / a.cfg.ReassignBytesPerSec * float64(time.Second))
}

// cooldownLeft returns how much of cd is still pending since the last
// scale event (0 when none happened yet).
func (a *Autoscaler) cooldownLeft(now time.Time, cd time.Duration) time.Duration {
	if a.lastScale.IsZero() {
		return 0
	}
	if left := cd - now.Sub(a.lastScale); left > 0 {
		return left
	}
	return 0
}

// record mirrors the verdict for concurrent stats readers.
func (a *Autoscaler) record(v Verdict) {
	a.target.Store(int64(v.Target))
	a.pressureBits.Store(math.Float64bits(v.Pressure))
	a.lastMu.Lock()
	a.lastDecision = v.Decision.String()
	a.lastReason = v.Reason
	a.lastMu.Unlock()
}

// ScaleUps returns the number of committed scale-up decisions.
func (a *Autoscaler) ScaleUps() int64 { return a.ups.Load() }

// ScaleDowns returns the number of committed scale-down decisions.
func (a *Autoscaler) ScaleDowns() int64 { return a.downs.Load() }

// AutoscaleStats is the autoscaler row in the fleet stats (and /v1/stats).
type AutoscaleStats struct {
	Enabled       bool    `json:"enabled"`
	Min           int     `json:"min"`
	Max           int     `json:"max"`
	Live          int     `json:"live"`
	Target        int     `json:"target"`
	Pressure      float64 `json:"pressure"`
	StepLatencyMs float64 `json:"step_latency_ms"`
	Evals         int64   `json:"evals"`
	ScaleUps      int64   `json:"scale_ups"`
	ScaleDowns    int64   `json:"scale_downs"`
	LastDecision  string  `json:"last_decision,omitempty"`
	LastReason    string  `json:"last_reason,omitempty"`
}

// statsRow assembles the observable controller state; safe from any
// goroutine.
func (a *Autoscaler) statsRow(live int, stepLatency time.Duration) *AutoscaleStats {
	st := &AutoscaleStats{
		Enabled:       true,
		Min:           a.cfg.Min,
		Max:           a.cfg.Max,
		Live:          live,
		Target:        int(a.target.Load()),
		Pressure:      math.Float64frombits(a.pressureBits.Load()),
		StepLatencyMs: float64(stepLatency) / float64(time.Millisecond),
		Evals:         a.evals.Load(),
		ScaleUps:      a.ups.Load(),
		ScaleDowns:    a.downs.Load(),
	}
	if st.Target == 0 {
		st.Target = live // before the first evaluation
	}
	a.lastMu.Lock()
	st.LastDecision = a.lastDecision
	st.LastReason = a.lastReason
	a.lastMu.Unlock()
	return st
}
