package fleet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/guard"
	"fekf/internal/md"
	"fekf/internal/online"
	"fekf/internal/optimize"
	"fekf/internal/pshard"
)

// ReplicaCheckpoint is one replica's private shard state: its replay
// buffer (with RNG position), gate and stream counters.  The model and
// Kalman filter are deliberately absent — under the fleet invariant they
// are bitwise identical across replicas, so the checkpoint stores the
// shared state exactly once.
type ReplicaCheckpoint struct {
	ID             int
	Alive          bool
	FramesAccepted int64
	FramesGatedOut int64
	Replay         *online.ReplayCheckpoint
	Gate           *online.GateCheckpoint
}

// Checkpoint is the combined on-disk state of a fleet: the shared model
// stream and optimizer state (stored once — the consistency invariant
// makes per-replica copies redundant), plus each replica's private replay
// buffer, gate and counters.
type Checkpoint struct {
	System      string
	Species     []md.Species
	NumAtoms    int64
	Steps       int64
	ShardPolicy ShardPolicy
	RR          uint64 // round-robin shard cursor

	Model    []byte // shared deepmd model stream (Model.EncodeTo)
	Opt      *optimize.FEKFCheckpoint
	Replicas []*ReplicaCheckpoint

	// PShard records that the fleet ran with a sharded covariance; PCk
	// then carries every P row slab exactly once — saved by its owner
	// rank — plus the replicated scalar filter state.  Opt.Kalman is nil
	// in this mode (no replica ever materializes the full P).
	PShard bool
	PCk    *pshard.Checkpoint
}

// encodeModel serializes a model into the shared checkpoint stream.
func encodeModel(m *deepmd.Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.EncodeTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeModelOn rebuilds a model from its checkpoint stream onto dev.
func decodeModelOn(b []byte, dev *device.Device) (*deepmd.Model, error) {
	m, err := deepmd.DecodeModel(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	if dev != nil {
		m.Dev = dev
	}
	return m, nil
}

// buildCheckpoint captures the fleet state, taking the shared model and
// filter from the first live replica (any would do — they are bitwise
// identical).  Conductor goroutine only (or after the loop has exited).
func (f *Fleet) buildCheckpoint() (*Checkpoint, error) {
	live := f.liveIDs()
	if len(live) == 0 {
		return nil, fmt.Errorf("fleet: no live replica to checkpoint the shared state from")
	}
	src := f.reps[live[0]]
	modelBytes, err := encodeModel(src.model)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		System:      f.system,
		Species:     f.species,
		NumAtoms:    f.naPer.Load(),
		Steps:       f.steps.Load(),
		ShardPolicy: f.cfg.ShardPolicy,
		RR:          f.rr.Load(),
		Model:       modelBytes,
		Opt:         src.opt.Checkpoint(),
	}
	for _, r := range f.reps {
		ck.Replicas = append(ck.Replicas, &ReplicaCheckpoint{
			ID:             r.id,
			Alive:          r.alive.Load(),
			FramesAccepted: r.accepted.Load(),
			FramesGatedOut: r.gatedOut.Load(),
			Replay:         r.replay.Checkpoint(),
			Gate:           r.gate.Checkpoint(),
		})
	}
	if f.cfg.PShard {
		var states []*pshard.State
		for _, id := range f.pliveIDs {
			if st := f.pstates[id]; st != nil {
				states = append(states, st)
			}
		}
		pck, err := pshard.BuildCheckpoint(states)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard checkpoint: %w", err)
		}
		ck.PShard = true
		ck.PCk = pck
	}
	return ck, nil
}

// WriteCheckpoint persists the fleet state crash-safely (temp file, fsync,
// atomic rename): into the checksummed retention ring when one is
// configured for path (see Config.CheckpointKeep), as a legacy plain gob
// file otherwise.  Conductor goroutine only; external callers use
// CheckpointNow or Stop.
func (f *Fleet) WriteCheckpoint(path string) error {
	ck, err := f.buildCheckpoint()
	if err != nil {
		return err
	}
	if f.ckRing != nil && path == f.cfg.CheckpointPath {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			return fmt.Errorf("fleet: encode checkpoint %s: %w", path, err)
		}
		seq, err := f.ckRing.Write(buf.Bytes())
		if err != nil {
			return err
		}
		f.health.NoteCheckpoint(seq, f.clock.Now())
		return nil
	}
	return online.WriteGobAtomic(path, ck)
}

func (f *Fleet) writeCheckpointCounted(path string) error {
	c0 := time.Now()
	err := f.WriteCheckpoint(path)
	if m := f.cfg.Metrics; m != nil {
		m.CheckpointSeconds.Observe(time.Since(c0).Seconds())
	}
	if err == nil {
		f.ckWrites.Add(1)
	}
	return err
}

// LoadCheckpoint reads a checkpoint written by WriteCheckpoint — either a
// legacy plain gob file or a checksummed ring generation (see
// guard.EncodeFrame).  A framed file that is torn or bit-flipped fails
// with an error wrapping guard.ErrCorrupt rather than an opaque gob decode
// error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload := b
	if _, p, err := guard.DecodeFrame(bytes.NewReader(b)); err == nil {
		payload = p
	} else if !errors.Is(err, guard.ErrNotFramed) {
		return nil, fmt.Errorf("fleet: checkpoint %s: %w", path, err)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("fleet: decode checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// LoadNewestCheckpoint resolves the newest valid generation of the fleet
// checkpoint ring around path (see Config.CheckpointKeep): corrupt or torn
// generation files are quarantined (their pre-quarantine paths are
// returned) and the next older generation is tried; with no generation
// files at all it falls back to a legacy single-file checkpoint at path
// itself.  The returned sequence number is 0 for the legacy fallback.
func LoadNewestCheckpoint(path string, keep int) (*Checkpoint, uint64, []string, error) {
	ring := guard.NewRing(path, keep)
	seq, payload, quarantined, err := ring.LoadNewest()
	if err != nil {
		if errors.Is(err, guard.ErrNoCheckpoint) {
			if _, statErr := os.Stat(path); statErr == nil {
				ck, lerr := LoadCheckpoint(path)
				return ck, 0, quarantined, lerr
			}
		}
		return nil, 0, quarantined, err
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, 0, quarantined, fmt.Errorf("fleet: decode checkpoint generation %d: %w", seq, err)
	}
	return &ck, seq, quarantined, nil
}

// Resume reconstructs a fleet from a checkpoint: every replica gets the
// shared model weights and full Kalman filter (λ, update counter, every P
// block — bitwise), plus its own replay buffer with the sampling RNG at
// the checkpointed position, gate and counters.  The replica count and
// shard policy come from the checkpoint; cfg supplies the runtime knobs.
func Resume(ck *Checkpoint, cfg Config) (*Fleet, error) {
	if len(ck.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: checkpoint has no replicas")
	}
	if ck.Opt == nil {
		return nil, fmt.Errorf("fleet: checkpoint has no optimizer state")
	}
	m, err := decodeModelOn(ck.Model, nil)
	if err != nil {
		return nil, err
	}
	opt, err := optimize.RestoreFEKF(ck.Opt, m)
	if err != nil {
		return nil, err
	}
	cfg.Replicas = len(ck.Replicas)
	cfg.ShardPolicy = ck.ShardPolicy
	cfg.PShard = ck.PShard
	cfg.pshardResume = ck.PCk
	if ck.PShard && ck.PCk == nil {
		return nil, fmt.Errorf("fleet: sharded checkpoint has no covariance slabs")
	}
	proto := &dataset.Dataset{System: ck.System, Species: ck.Species}
	f, err := New(m, opt, proto, cfg)
	if err != nil {
		return nil, err
	}
	f.naPer.Store(ck.NumAtoms)
	f.steps.Store(ck.Steps)
	f.rr.Store(ck.RR)
	if ck.PShard {
		f.lambdaBits.Store(math.Float64bits(ck.PCk.Lambda))
	} else {
		f.lambdaBits.Store(math.Float64bits(opt.Lambda()))
	}
	for i, rck := range ck.Replicas {
		r := f.reps[i]
		r.alive.Store(rck.Alive)
		r.accepted.Store(rck.FramesAccepted)
		r.gatedOut.Store(rck.FramesGatedOut)
		if rck.Replay != nil {
			r.replay = online.RestoreReplay(rck.Replay)
			r.replayLen.Store(int64(r.replay.Len()))
			r.replayWin.Store(int64(r.replay.WindowLen()))
			r.replayRes.Store(int64(r.replay.ReservoirLen()))
			r.seen.Store(r.replay.Seen())
		}
		if rck.Gate != nil {
			r.gate = online.RestoreGate(rck.Gate, cfg.Gate)
			r.gateEMA.Store(math.Float64bits(r.gate.EMA()))
		}
	}
	return f, nil
}
