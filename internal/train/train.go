// Package train drives training runs to convergence: epoch loops over
// shuffled minibatches, periodic evaluation, and epochs-to-target
// measurement — the protocol behind the paper's Tables 1, 4 and 5 and
// Figure 7(a).
package train

import (
	"fmt"
	"sort"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/optimize"

	"math/rand"
)

// Stepper advances the model by one minibatch; both the single-device
// optimizers and the data-parallel cluster trainer satisfy it (the latter
// via its own adapter since it owns its model replicas).
type Stepper interface {
	Name() string
	Step(ds *dataset.Dataset, idx []int) (optimize.StepInfo, error)
}

// OptStepper adapts an optimize.Optimizer plus its model to the Stepper
// interface.
type OptStepper struct {
	M   *deepmd.Model
	Opt optimize.Optimizer
}

// Name implements Stepper.
func (s OptStepper) Name() string { return s.Opt.Name() }

// Step implements Stepper.
func (s OptStepper) Step(ds *dataset.Dataset, idx []int) (optimize.StepInfo, error) {
	return s.Opt.Step(s.M, ds, idx)
}

// Config controls a training run.
type Config struct {
	// BatchSize is the minibatch size (1 for Adam/RLEKF baselines).
	BatchSize int
	// MaxEpochs bounds the run.
	MaxEpochs int
	// TargetEnergyRMSE stops the run once the per-atom train energy RMSE
	// reaches it; 0 disables the criterion (run all epochs).
	TargetEnergyRMSE float64
	// EvalSubset is the number of training images used for the per-epoch
	// RMSE evaluation (0 = 32).
	EvalSubset int
	// Seed drives batch shuffling.
	Seed int64
	// OnEpoch, if non-nil, is invoked after each epoch's evaluation.
	OnEpoch func(epoch int, met deepmd.Metrics)
}

// EpochRecord is one epoch's evaluation.
type EpochRecord struct {
	Epoch   int
	Metrics deepmd.Metrics
}

// Result summarizes a run.
type Result struct {
	Optimizer  string
	Epochs     int // epochs executed
	Iterations int // optimizer steps executed
	Converged  bool
	Wall       time.Duration
	Final      deepmd.Metrics
	Best       deepmd.Metrics
	History    []EpochRecord
}

// Run trains with the given stepper until the target RMSE or MaxEpochs.
// evalModel is the model evaluated for the convergence criterion (the
// stepper's own model for single-device training, rank 0's replica for
// distributed training).
func Run(evalModel *deepmd.Model, st Stepper, ds *dataset.Dataset, cfg Config) (Result, error) {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.MaxEpochs < 1 {
		cfg.MaxEpochs = 1
	}
	evalN := cfg.EvalSubset
	if evalN <= 0 {
		evalN = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Optimizer: st.Name()}
	res.Best.EnergyPerAtomRMSE = -1
	start := time.Now()

	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		for _, batch := range ds.Batches(cfg.BatchSize, rng) {
			if _, err := st.Step(ds, batch); err != nil {
				return res, fmt.Errorf("train: %s epoch %d: %w", st.Name(), epoch, err)
			}
			res.Iterations++
		}
		res.Epochs = epoch

		met, err := evalModel.Evaluate(ds.Subset(evalN), 8)
		if err != nil {
			return res, err
		}
		res.Final = met
		if res.Best.EnergyPerAtomRMSE < 0 || met.EnergyPerAtomRMSE < res.Best.EnergyPerAtomRMSE {
			res.Best = met
		}
		res.History = append(res.History, EpochRecord{Epoch: epoch, Metrics: met})
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, met)
		}
		if cfg.TargetEnergyRMSE > 0 && met.EnergyPerAtomRMSE <= cfg.TargetEnergyRMSE {
			res.Converged = true
			break
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// PlateauTarget runs the stepper for maxEpochs and returns its plateau
// per-atom energy RMSE relaxed by the given factor — the "converged Adam
// baseline" protocol of Table 1, against which later runs are timed.  The
// plateau is the median of the final five epoch evaluations, which is
// robust against the transient dips a stochastic optimizer passes through.
func PlateauTarget(evalModel *deepmd.Model, st Stepper, ds *dataset.Dataset, cfg Config, relax float64) (float64, Result, error) {
	cfg.TargetEnergyRMSE = 0
	res, err := Run(evalModel, st, ds, cfg)
	if err != nil {
		return 0, res, err
	}
	k := 5
	if k > len(res.History) {
		k = len(res.History)
	}
	tail := make([]float64, 0, k)
	for _, h := range res.History[len(res.History)-k:] {
		tail = append(tail, h.Metrics.EnergyPerAtomRMSE)
	}
	sort.Float64s(tail)
	plateau := tail[len(tail)/2]
	return plateau * relax, res, nil
}
