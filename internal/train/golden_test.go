package train

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite results/golden/fekf_trace.json from the current implementation")

const goldenPath = "../../results/golden/fekf_trace.json"

// goldenTrace is the serialized regression fixture: the per-step Kalman
// measurement errors and per-epoch energy RMSE of a fixed FEKF training
// run.  Any change to the numerics of the forward pass, the gradients or
// the filter shows up here; the replay runs with the pipeline both on and
// off, so it also pins the pipeline's bitwise-equivalence claim to a value
// on disk.
type goldenTrace struct {
	System         string    `json:"system"`
	Seed           int64     `json:"seed"`
	BatchSize      int       `json:"batch_size"`
	Epochs         int       `json:"epochs"`
	EnergyABE      []float64 `json:"energy_abe"`
	ForceABE       []float64 `json:"force_abe"`
	EpochEnergyRMS []float64 `json:"epoch_energy_rmse"`
}

// recordingStepper captures every StepInfo that crosses the Stepper
// boundary during a run.
type recordingStepper struct {
	OptStepper
	infos []optimize.StepInfo
}

func (r *recordingStepper) Step(ds *dataset.Dataset, idx []int) (optimize.StepInfo, error) {
	info, err := r.OptStepper.Step(ds, idx)
	if err == nil {
		r.infos = append(r.infos, info)
	}
	return info, err
}

// goldenRun executes the fixed training recipe and returns its trace.
func goldenRun(t *testing.T, pipeline bool) goldenTrace {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 8, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	cfg := deepmd.TinyConfig(sys)
	cfg.Seed = 7
	m, err := deepmd.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("golden", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}

	f := optimize.NewFEKF()
	f.KCfg = f.KCfg.WithOpt3()
	f.Pipeline = pipeline
	st := &recordingStepper{OptStepper: OptStepper{M: m, Opt: f}}
	res, err := Run(m, st, ds, Config{BatchSize: 4, MaxEpochs: 2, Seed: 11, EvalSubset: 8})
	if err != nil {
		t.Fatal(err)
	}

	tr := goldenTrace{System: "Cu", Seed: 7, BatchSize: 4, Epochs: 2}
	for _, info := range st.infos {
		tr.EnergyABE = append(tr.EnergyABE, info.EnergyABE)
		tr.ForceABE = append(tr.ForceABE, info.ForceABE)
	}
	for _, h := range res.History {
		tr.EpochEnergyRMS = append(tr.EpochEnergyRMS, h.Metrics.EnergyPerAtomRMSE)
	}
	return tr
}

// relClose compares to the fixture with a relative tolerance that absorbs
// FMA/arch differences but nothing algorithmic.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

func compareTrace(t *testing.T, label string, got, want goldenTrace) {
	t.Helper()
	if len(got.EnergyABE) != len(want.EnergyABE) || len(got.ForceABE) != len(want.ForceABE) ||
		len(got.EpochEnergyRMS) != len(want.EpochEnergyRMS) {
		t.Fatalf("%s: trace shape changed: %d/%d/%d steps vs golden %d/%d/%d",
			label, len(got.EnergyABE), len(got.ForceABE), len(got.EpochEnergyRMS),
			len(want.EnergyABE), len(want.ForceABE), len(want.EpochEnergyRMS))
	}
	for i := range want.EnergyABE {
		if !relClose(got.EnergyABE[i], want.EnergyABE[i]) {
			t.Fatalf("%s: energy ABE step %d = %.17g, golden %.17g", label, i, got.EnergyABE[i], want.EnergyABE[i])
		}
	}
	for i := range want.ForceABE {
		if !relClose(got.ForceABE[i], want.ForceABE[i]) {
			t.Fatalf("%s: force ABE step %d = %.17g, golden %.17g", label, i, got.ForceABE[i], want.ForceABE[i])
		}
	}
	for i := range want.EpochEnergyRMS {
		if !relClose(got.EpochEnergyRMS[i], want.EpochEnergyRMS[i]) {
			t.Fatalf("%s: epoch %d energy RMSE = %.17g, golden %.17g",
				label, i+1, got.EpochEnergyRMS[i], want.EpochEnergyRMS[i])
		}
	}
}

// TestGoldenTraceReplay replays the pinned FEKF training recipe against
// the checked-in fixture, with the force-group pipeline both off and on.
// Regenerate the fixture with:
//
//	go test ./internal/train -run TestGoldenTraceReplay -update-golden
func TestGoldenTraceReplay(t *testing.T) {
	if *updateGolden {
		tr := goldenRun(t, false)
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(tr, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace rewritten: %d steps", len(tr.EnergyABE))
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate with -update-golden): %v", err)
	}
	var want goldenTrace
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.EnergyABE) == 0 {
		t.Fatal("golden fixture holds no steps")
	}
	for _, pipeline := range []bool{false, true} {
		label := "serial"
		if pipeline {
			label = "pipelined"
		}
		compareTrace(t, label, goldenRun(t, pipeline), want)
	}
}
