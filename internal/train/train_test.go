package train

import (
	"testing"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

func setup(t *testing.T, n int) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: n, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("t", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

func TestRunExecutesEpochsAndHistory(t *testing.T) {
	ds, m := setup(t, 8)
	st := OptStepper{M: m, Opt: optimize.NewFEKF()}
	calls := 0
	res, err := Run(m, st, ds, Config{
		BatchSize: 4, MaxEpochs: 3, Seed: 1, EvalSubset: 8,
		OnEpoch: func(int, deepmd.Metrics) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 3 || len(res.History) != 3 || calls != 3 {
		t.Fatalf("epochs=%d history=%d calls=%d", res.Epochs, len(res.History), calls)
	}
	if res.Iterations != 3*2 { // 8 samples / bs 4 = 2 iterations per epoch
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.Converged {
		t.Fatal("no target set, must not report convergence")
	}
	if res.Optimizer != "FEKF" {
		t.Fatalf("optimizer name %q", res.Optimizer)
	}
}

func TestRunStopsAtTarget(t *testing.T) {
	ds, m := setup(t, 8)
	st := OptStepper{M: m, Opt: optimize.NewFEKF()}
	// generous target: the bias init already puts per-atom error < 10
	res, err := Run(m, st, ds, Config{
		BatchSize: 4, MaxEpochs: 50, TargetEnergyRMSE: 10, Seed: 1, EvalSubset: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Epochs != 1 {
		t.Fatalf("expected immediate convergence, got epochs=%d converged=%v", res.Epochs, res.Converged)
	}
}

func TestRunBestTracksMinimum(t *testing.T) {
	ds, m := setup(t, 8)
	st := OptStepper{M: m, Opt: optimize.NewAdam()}
	res, err := Run(m, st, ds, Config{BatchSize: 2, MaxEpochs: 4, Seed: 2, EvalSubset: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History {
		if res.Best.EnergyPerAtomRMSE > h.Metrics.EnergyPerAtomRMSE+1e-15 {
			t.Fatal("Best is not the minimum of History")
		}
	}
}

func TestPlateauTarget(t *testing.T) {
	ds, m := setup(t, 8)
	st := OptStepper{M: m, Opt: optimize.NewAdam()}
	target, res, err := PlateauTarget(m, st, ds, Config{BatchSize: 1, MaxEpochs: 2, Seed: 3, EvalSubset: 8}, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if target <= 0 {
		t.Fatalf("target = %v", target)
	}
	if target < res.Best.EnergyPerAtomRMSE {
		t.Fatal("relaxed target below the best achieved error")
	}
}
