package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRingBroken is wrapped by every transport operation that fails after
// the ring has been aborted — a peer died, a message was lost, or a fault
// was injected.  Collective callers detect it with errors.Is and hand the
// ring back to the membership layer (the fleet) for re-formation.
var ErrRingBroken = errors.New("cluster: ring broken")

// TransportStats is the measured (as opposed to modeled) traffic a
// transport carried: payload bytes in each direction, message counts, and
// the fault/recovery counters of the wire implementations.  The in-process
// channel transport only moves payloads, so its retry and reconnect
// counters stay zero; the TCP transport counts framing bytes, send
// retries, reconnects, heartbeats and detected peer failures.
type TransportStats struct {
	Kind         string `json:"kind"`
	BytesSent    int64  `json:"bytes_sent"`
	BytesRecv    int64  `json:"bytes_recv"`
	Msgs         int64  `json:"msgs"`
	Retries      int64  `json:"retries"`
	Reconnects   int64  `json:"reconnects"`
	Heartbeats   int64  `json:"heartbeats"`
	PeerFailures int64  `json:"peer_failures"`
}

// Add accumulates other into s (used when retiring rings).
func (s *TransportStats) Add(other TransportStats) {
	if s.Kind == "" {
		s.Kind = other.Kind
	}
	s.BytesSent += other.BytesSent
	s.BytesRecv += other.BytesRecv
	s.Msgs += other.Msgs
	s.Retries += other.Retries
	s.Reconnects += other.Reconnects
	s.Heartbeats += other.Heartbeats
	s.PeerFailures += other.PeerFailures
}

// Transport moves length-prefixed float64 chunks between the ranks of one
// ring and synchronizes them with a barrier.  The Ring owns the collective
// schedule (which chunk moves when) and the modeled RoCE accounting; the
// transport owns delivery, timeouts, retries and failure detection.
//
// Buffer contract: a chunk passed to Send may be reused by the caller only
// after the rank's next successful Barrier; the slice returned by Recv is
// valid only until the rank's next Recv.  The ring schedule (send, recv,
// consume, barrier) satisfies both.
type Transport interface {
	// Size returns the rank count of the ring.
	Size() int
	// Send delivers chunk to rank's ring successor.
	Send(rank int, chunk []float64) error
	// Recv returns the next data chunk sent by rank's ring predecessor.
	Recv(rank int) ([]float64, error)
	// Barrier blocks until every rank has arrived, or fails wrapping
	// ErrRingBroken once the ring is aborted.
	Barrier(rank int) error
	// Abort declares rank dead (rank < 0: unattributed) and breaks the
	// ring: every blocked and future operation fails with ErrRingBroken.
	Abort(rank int, cause error)
	// Dead returns the ranks declared dead so far, in detection order.
	Dead() []int
	// Stats returns the measured traffic counters.
	Stats() TransportStats
	// Close releases the transport's resources (sockets, goroutines).
	Close() error
}

// ConnCutter is the optional transient-fault surface of a connection-
// oriented transport: CutConn severs rank's outgoing connection without
// declaring anyone dead, so the next send exercises the reconnect path.
type ConnCutter interface {
	CutConn(rank int)
}

// brokenError wraps a ring-break cause so errors.Is(err, ErrRingBroken)
// holds while the original cause stays visible.
type brokenError struct{ cause error }

func (e *brokenError) Error() string { return ErrRingBroken.Error() + ": " + e.cause.Error() }
func (e *brokenError) Is(target error) bool {
	return target == ErrRingBroken || errors.Is(e.cause, target)
}
func (e *brokenError) Unwrap() error { return e.cause }

// ChanTransport is the in-process transport: rank links are buffered Go
// channels and the barrier is a shared condition variable — the exact
// mechanism the pre-transport Ring used, refactored behind the interface
// with zero behavior change on the healthy path.  Abort releases every
// blocked sender, receiver and barrier waiter with ErrRingBroken.
type ChanTransport struct {
	size int
	// links[i] carries chunks from rank i-1 to rank i.
	links []chan []float64
	// recvTimeout, when > 0, bounds each Recv; expiry declares the rank's
	// predecessor dead (it owed the message) and breaks the ring.  The
	// default 0 waits forever — the legacy lossless in-process behavior.
	recvTimeout time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	gen      int
	broken   bool
	cause    error
	dead     []int
	brokenCh chan struct{}

	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgs      atomic.Int64
}

// NewChanTransport builds the in-process channel transport for size ranks.
func NewChanTransport(size int) *ChanTransport {
	if size < 1 {
		panic("cluster: transport size must be >= 1")
	}
	t := &ChanTransport{
		size:     size,
		links:    make([]chan []float64, size),
		brokenCh: make(chan struct{}),
	}
	for i := range t.links {
		t.links[i] = make(chan []float64, 1)
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// SetRecvTimeout bounds every subsequent Recv (0 restores blocking
// forever).  Intended for fault-injection tests; call before use.
func (t *ChanTransport) SetRecvTimeout(d time.Duration) { t.recvTimeout = d }

// Size returns the rank count.
func (t *ChanTransport) Size() int { return t.size }

func (t *ChanTransport) err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cause := t.cause
	if cause == nil {
		cause = errors.New("aborted")
	}
	return &brokenError{cause: cause}
}

// Send delivers chunk to rank's successor, failing once the ring breaks.
func (t *ChanTransport) Send(rank int, chunk []float64) error {
	next := (rank + 1) % t.size
	select {
	case <-t.brokenCh:
		return t.err()
	case t.links[next] <- chunk:
		t.bytesSent.Add(int64(len(chunk)) * 8)
		t.msgs.Add(1)
		return nil
	}
}

// Recv returns the next chunk from rank's predecessor.
func (t *ChanTransport) Recv(rank int) ([]float64, error) {
	if t.recvTimeout <= 0 {
		select {
		case chunk := <-t.links[rank]:
			t.bytesRecv.Add(int64(len(chunk)) * 8)
			return chunk, nil
		case <-t.brokenCh:
			return nil, t.err()
		}
	}
	timer := time.NewTimer(t.recvTimeout)
	defer timer.Stop()
	select {
	case chunk := <-t.links[rank]:
		t.bytesRecv.Add(int64(len(chunk)) * 8)
		return chunk, nil
	case <-t.brokenCh:
		return nil, t.err()
	case <-timer.C:
		prev := mod(rank-1, t.size)
		t.Abort(prev, fmt.Errorf("rank %d timed out after %v waiting on rank %d", rank, t.recvTimeout, prev))
		return nil, t.err()
	}
}

// Barrier blocks until all ranks arrive or the ring breaks.
func (t *ChanTransport) Barrier(rank int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.broken {
		return &brokenError{cause: t.cause}
	}
	gen := t.gen
	t.arrived++
	if t.arrived == t.size {
		t.arrived = 0
		t.gen++
		t.cond.Broadcast()
		return nil
	}
	for gen == t.gen && !t.broken {
		t.cond.Wait()
	}
	if t.broken {
		return &brokenError{cause: t.cause}
	}
	return nil
}

// Abort declares rank dead and breaks the ring, releasing every waiter.
func (t *ChanTransport) Abort(rank int, cause error) {
	t.mu.Lock()
	if !t.broken {
		t.broken = true
		if cause == nil {
			cause = errors.New("aborted")
		}
		t.cause = cause
		close(t.brokenCh)
	}
	if rank >= 0 {
		seen := false
		for _, d := range t.dead {
			if d == rank {
				seen = true
				break
			}
		}
		if !seen {
			t.dead = append(t.dead, rank)
		}
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Dead returns the ranks declared dead so far.
func (t *ChanTransport) Dead() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]int(nil), t.dead...)
}

// Stats returns the measured payload traffic.
func (t *ChanTransport) Stats() TransportStats {
	return TransportStats{
		Kind:      "chan",
		BytesSent: t.bytesSent.Load(),
		BytesRecv: t.bytesRecv.Load(),
		Msgs:      t.msgs.Load(),
	}
}

// Close is a no-op for the channel transport (nothing to release).
func (t *ChanTransport) Close() error { return nil }

// FaultKind selects what a FaultyTransport rule does to a matched message.
type FaultKind int

const (
	// FaultDrop silently discards the matched send: the receiver never
	// gets the chunk, its recv deadline expires, and the sender's rank is
	// declared dead — the lost-message path.
	FaultDrop FaultKind = iota + 1
	// FaultDelay holds the matched send for Delay before delivering it;
	// the collective completes bitwise identical, just late.
	FaultDelay
	// FaultSever kills the sending rank at the matched message: the ring
	// is aborted with that rank dead — the mid-step crash path.
	FaultSever
	// FaultCut severs the sender's connection before the matched send on
	// a ConnCutter transport (TCP), so the send exercises the reconnect
	// machinery and the collective still completes.  On transports
	// without connections it is a no-op.
	FaultCut
)

// FaultRule matches the Msg-th Send (0-based, counted per rank) issued by
// Rank and applies Kind to it.
type FaultRule struct {
	Rank  int
	Msg   int64
	Kind  FaultKind
	Delay time.Duration
}

// FaultyTransport wraps a Transport with deterministic fault injection:
// each rule fires on an exact (rank, message index) coordinate, so the
// crash tests can drop, delay or sever precisely the k-th scatter-reduce
// or allgather message and exercise the real failure machinery instead of
// only cooperative kills.
type FaultyTransport struct {
	Transport
	rules []FaultRule
	sent  []atomic.Int64
	fired atomic.Int64
}

// NewFaultyTransport wraps inner with the given deterministic rules.
func NewFaultyTransport(inner Transport, rules ...FaultRule) *FaultyTransport {
	return &FaultyTransport{
		Transport: inner,
		rules:     rules,
		sent:      make([]atomic.Int64, inner.Size()),
	}
}

// Fired returns how many rules have triggered.
func (t *FaultyTransport) Fired() int64 { return t.fired.Load() }

// Send applies any matching rule to this rank's next message.
func (t *FaultyTransport) Send(rank int, chunk []float64) error {
	k := t.sent[rank].Add(1) - 1
	for _, rule := range t.rules {
		if rule.Rank != rank || rule.Msg != k {
			continue
		}
		t.fired.Add(1)
		switch rule.Kind {
		case FaultDrop:
			return nil // lost on the wire
		case FaultDelay:
			time.Sleep(rule.Delay)
		case FaultSever:
			cause := fmt.Errorf("fault: rank %d severed at message %d", rank, k)
			t.Transport.Abort(rank, cause)
			return &brokenError{cause: cause}
		case FaultCut:
			if c, ok := t.Transport.(ConnCutter); ok {
				c.CutConn(rank)
			}
		}
	}
	return t.Transport.Send(rank, chunk)
}
