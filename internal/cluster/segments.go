package cluster

import "fmt"

// Segment is one contiguous, exclusively-owned range [Lo,Hi) of a shared
// flat vector: rank Owner computes the values, every other rank receives
// them verbatim.  The covariance-sharded FEKF uses segments to describe
// which rows of the P·g intermediate each rank produced (see
// internal/pshard).
type Segment struct {
	Lo, Hi int
	Owner  int
}

// Len returns the element count of the segment.
func (s Segment) Len() int { return s.Hi - s.Lo }

// AllgatherSegments circulates owner-computed segments of data around the
// ring so that every rank ends with the identical complete vector.  Each
// rank enters with its own segments filled (those with Owner == rank) and
// leaves with every segment filled.  Unlike Allreduce this is a pure-copy
// collective — no arithmetic touches the payload, so the gathered values
// are bitwise identical to the owner's on every transport (the TCP framing
// round-trips float64 bits exactly).
//
// Every rank must pass the same segs table (same order, same owners) and
// an equal-length data slice; segments must be disjoint and owners in
// [0, size).  Ranks owning no segment participate as pure forwarders.  A
// non-nil error wraps ErrRingBroken: data is partially gathered and must
// not be used.
//
// Schedule: size-1 ring steps.  At step s each rank packs the segments
// owned by rank (rank-s mod size) — its own at s=0, afterwards the ones it
// just received — sends them to its successor and receives the segments
// owned by (rank-s-1 mod size) from its predecessor.  All owner chunks are
// in flight concurrently at every step, so the modeled cost per step is
// the largest owner chunk (charged once, by rank 0, like Allreduce).
func (r *Ring) AllgatherSegments(rank int, data []float64, segs []Segment) error {
	if rank == 0 {
		r.ops.Add(1)
	}
	if r.size == 1 {
		return nil
	}
	// Per-owner element totals; the largest sets the scratch and the
	// modeled per-step cost.
	ownerLen := make([]int, r.size)
	maxOwner := 0
	for _, sg := range segs {
		if sg.Owner < 0 || sg.Owner >= r.size {
			panic(fmt.Sprintf("cluster: segment owner %d outside ring of %d", sg.Owner, r.size))
		}
		if sg.Hi < sg.Lo || sg.Lo < 0 || sg.Hi > len(data) {
			panic(fmt.Sprintf("cluster: segment [%d,%d) outside data of %d", sg.Lo, sg.Hi, len(data)))
		}
		ownerLen[sg.Owner] += sg.Len()
		if ownerLen[sg.Owner] > maxOwner {
			maxOwner = ownerLen[sg.Owner]
		}
	}
	sc := &r.scratch[rank]
	if cap(sc.buf) < maxOwner {
		sc.buf = make([]float64, maxOwner)
	}
	maxOwnerBytes := int64(maxOwner) * 8

	for s := 0; s < r.size-1; s++ {
		sendOwner := mod(rank-s, r.size)
		recvOwner := mod(rank-s-1, r.size)
		// Pack the send owner's segments, in table order, into the reusable
		// buffer (the barrier below guarantees the previous step's buffer
		// has been consumed).
		if n := ownerLen[sendOwner]; n > 0 {
			buf := sc.buf[:0]
			for _, sg := range segs {
				if sg.Owner == sendOwner {
					buf = append(buf, data[sg.Lo:sg.Hi]...)
				}
			}
			if err := r.send(rank, buf); err != nil {
				return err
			}
		}
		if n := ownerLen[recvOwner]; n > 0 {
			in, err := r.tr.Recv(rank)
			if err != nil {
				return err
			}
			if len(in) != n {
				panic(fmt.Sprintf("cluster: segment chunk size mismatch %d vs %d", len(in), n))
			}
			off := 0
			for _, sg := range segs {
				if sg.Owner == recvOwner {
					copy(data[sg.Lo:sg.Hi], in[off:off+sg.Len()])
					off += sg.Len()
				}
			}
		}
		if rank == 0 && maxOwner > 0 {
			r.accountStep(maxOwnerBytes)
		}
		if err := r.tr.Barrier(rank); err != nil {
			return err
		}
	}
	return nil
}
