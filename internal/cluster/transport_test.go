package cluster

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fillRanks builds size deterministic input vectors and their element sum.
func fillRanks(seed int64, size, n int) (data [][]float64, want []float64) {
	rng := rand.New(rand.NewSource(seed))
	data = make([][]float64, size)
	want = make([]float64, n)
	for w := 0; w < size; w++ {
		data[w] = make([]float64, n)
		for i := range data[w] {
			data[w][i] = rng.NormFloat64()
			want[i] += data[w][i]
		}
	}
	return data, want
}

// runAllreduceErr drives the collective from size goroutines and returns
// each rank's error.
func runAllreduceErr(r *Ring, data [][]float64) []error {
	errs := make([]error, len(data))
	var wg sync.WaitGroup
	for rank := range data {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = r.Allreduce(rank, data[rank])
		}(rank)
	}
	wg.Wait()
	return errs
}

// Satellite 3 regression: a rank severed between send and barrier must not
// hang the survivors — Abort releases every barrier waiter with a
// ring-broken error.
func TestAbortReleasesBarrierWaiters(t *testing.T) {
	tr := NewChanTransport(3)
	done := make(chan error, 2)
	for rank := 1; rank < 3; rank++ {
		go func(rank int) { done <- tr.Barrier(rank) }(rank)
	}
	time.Sleep(10 * time.Millisecond) // let the survivors block
	tr.Abort(0, errors.New("rank 0 died before the barrier"))
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrRingBroken) {
				t.Fatalf("barrier waiter got %v, want ErrRingBroken", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("barrier waiter still blocked after Abort — survivor deadlock")
		}
	}
	if dead := tr.Dead(); len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("Dead() = %v, want [0]", dead)
	}
}

// A severed rank mid-collective must not hang the other ranks' Allreduce.
func TestSeveredRankCannotHangCollective(t *testing.T) {
	const size, n = 3, 32
	// Sever rank 1 at each message index of the schedule: 2(size-1) sends
	// per rank for one allreduce.
	for msg := int64(0); msg < int64(2*(size-1)); msg++ {
		tr := NewChanTransport(size)
		tr.SetRecvTimeout(200 * time.Millisecond)
		ft := NewFaultyTransport(tr, FaultRule{Rank: 1, Msg: msg, Kind: FaultSever})
		ring := NewRingOver(ft, RoCE25())
		data, _ := fillRanks(7, size, n)
		errCh := make(chan error, size)
		go func() {
			for _, err := range runAllreduceErr(ring, data) {
				errCh <- err
			}
		}()
		for i := 0; i < size; i++ {
			select {
			case <-errCh:
			case <-time.After(10 * time.Second):
				t.Fatalf("msg %d: collective hung after sever", msg)
			}
		}
		if ft.Fired() != 1 {
			t.Fatalf("msg %d: %d rules fired, want 1", msg, ft.Fired())
		}
		found := false
		for _, d := range ft.Dead() {
			if d == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("msg %d: severed rank 1 not in Dead() = %v", msg, ft.Dead())
		}
	}
}

// FaultDrop at every schedule position: the receiver's timeout declares the
// dropping sender's successor-relationship dead and the collective fails
// rather than hangs.
func TestDroppedMessageDetectedByTimeout(t *testing.T) {
	const size, n = 3, 16
	for msg := int64(0); msg < int64(2*(size-1)); msg++ {
		tr := NewChanTransport(size)
		tr.SetRecvTimeout(100 * time.Millisecond)
		ft := NewFaultyTransport(tr, FaultRule{Rank: 2, Msg: msg, Kind: FaultDrop})
		ring := NewRingOver(ft, RoCE25())
		data, _ := fillRanks(11, size, n)
		errs := runAllreduceErr(ring, data)
		broken := 0
		for _, err := range errs {
			if errors.Is(err, ErrRingBroken) {
				broken++
			}
		}
		if broken == 0 {
			t.Fatalf("msg %d: drop went undetected, errs = %v", msg, errs)
		}
		// The receiver blames its predecessor: rank 2's drop starves rank 0.
		foundDead := false
		for _, d := range ft.Dead() {
			if d == 2 {
				foundDead = true
			}
		}
		if !foundDead {
			t.Fatalf("msg %d: Dead() = %v, want rank 2 blamed", msg, ft.Dead())
		}
	}
}

// FaultDelay must leave the result bitwise identical to the clean run,
// at every schedule position.
func TestDelayedMessageIsBitwiseHarmless(t *testing.T) {
	const size, n = 3, 40
	clean, _ := fillRanks(13, size, n)
	ring := NewRing(size, RoCE25())
	for _, err := range runAllreduceErr(ring, clean) {
		if err != nil {
			t.Fatalf("clean run failed: %v", err)
		}
	}
	for msg := int64(0); msg < int64(2*(size-1)); msg++ {
		ft := NewFaultyTransport(NewChanTransport(size),
			FaultRule{Rank: 0, Msg: msg, Kind: FaultDelay, Delay: 20 * time.Millisecond})
		delayed, _ := fillRanks(13, size, n)
		for _, err := range runAllreduceErr(NewRingOver(ft, RoCE25()), delayed) {
			if err != nil {
				t.Fatalf("msg %d: delayed run failed: %v", msg, err)
			}
		}
		if ft.Fired() != 1 {
			t.Fatalf("msg %d: %d rules fired, want 1", msg, ft.Fired())
		}
		for w := 0; w < size; w++ {
			for i := 0; i < n; i++ {
				if delayed[w][i] != clean[w][i] {
					t.Fatalf("msg %d rank %d elem %d: delayed %v != clean %v",
						msg, w, i, delayed[w][i], clean[w][i])
				}
			}
		}
	}
}

// Satellite 2: the reusable scratch must not change results — re-running
// collectives of varying shape on one ring stays bitwise identical to
// fresh rings.
func TestScratchReuseIsBitwiseIdentical(t *testing.T) {
	const size = 4
	shared := NewRing(size, RoCE25())
	for round, n := range []int{100, 3, 57, 1, 16, 100} {
		seed := int64(100 + round)
		reused, _ := fillRanks(seed, size, n)
		fresh, _ := fillRanks(seed, size, n)
		runAllreduceErr(shared, reused)
		runAllreduceErr(NewRing(size, RoCE25()), fresh)
		for w := 0; w < size; w++ {
			for i := 0; i < n; i++ {
				if reused[w][i] != fresh[w][i] {
					t.Fatalf("round %d rank %d elem %d: reused %v != fresh %v",
						round, w, i, reused[w][i], fresh[w][i])
				}
			}
		}
	}
}

// Satellite 2: after warm-up the per-step scalar exchange allocates
// nothing — the bounds table and send buffer come from the per-rank
// scratch.
func TestAllreduceScalarsIsAllocationFree(t *testing.T) {
	const size = 3
	ring := NewRing(size, RoCE25())
	vals := make([][]float64, size)
	for w := range vals {
		vals[w] = []float64{float64(w), 1, 2}
	}
	// Persistent rank goroutines so the measurement sees only the
	// collective itself, not goroutine spawning.
	start := make([]chan struct{}, size)
	done := make(chan struct{}, size)
	for w := 0; w < size; w++ {
		start[w] = make(chan struct{})
		go func(rank int) {
			for range start[rank] {
				ring.AllreduceScalars(rank, vals[rank])
				done <- struct{}{}
			}
		}(w)
	}
	oneRound := func() {
		for w := 0; w < size; w++ {
			start[w] <- struct{}{}
		}
		for w := 0; w < size; w++ {
			<-done
		}
	}
	oneRound() // warm the scratch
	const rounds = 100
	avg := testing.AllocsPerRun(rounds, oneRound)
	for w := range start {
		close(start[w])
	}
	// Channel sends inside the transport may account a trivial constant;
	// the pre-fix behavior was ~2+2(size-1) allocations per collective
	// (bounds + a buf per step), so anything near zero proves reuse.
	if avg > 0.5 {
		t.Fatalf("AllreduceScalars allocates %.2f objects/op after warm-up, want ~0", avg)
	}
}

// The wrapper forwards Stats/Dead/Size from the inner transport and the
// ring accounts modeled traffic independently of measured traffic.
func TestTransportStatsMeasuredVsModeled(t *testing.T) {
	const size, n = 3, 30
	ring := NewRing(size, RoCE25())
	data, _ := fillRanks(17, size, n)
	for _, err := range runAllreduceErr(ring, data) {
		if err != nil {
			t.Fatalf("allreduce: %v", err)
		}
	}
	st := ring.TransportStats()
	if st.Kind != "chan" {
		t.Fatalf("Kind = %q, want chan", st.Kind)
	}
	if st.BytesSent == 0 || st.BytesSent != st.BytesRecv {
		t.Fatalf("measured bytes sent %d vs recv %d, want equal and nonzero", st.BytesSent, st.BytesRecv)
	}
	if ring.WireBytes() != st.BytesSent {
		t.Fatalf("chan transport payload bytes %d should equal modeled wire bytes %d",
			st.BytesSent, ring.WireBytes())
	}
	if st.Retries != 0 || st.Reconnects != 0 {
		t.Fatalf("chan transport should never retry/reconnect: %+v", st)
	}
}
