package cluster

import (
	"errors"
	"testing"

	"fekf/internal/tensor"
)

// runClusterSteps drives `steps` distributed FEKF iterations on a fresh
// 3-rank trainer cloned from the shared base model.
func runClusterSteps(t *testing.T, pipeline bool, groups, ranks, steps int) *DataParallelFEKF {
	t.Helper()
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(ranks, m)
	dp.Pipeline = pipeline
	dp.ForceGroups = groups
	idx := []int{0, 1, 2, 3, 4, 5}
	for s := 0; s < steps; s++ {
		if _, err := dp.Step(ds, idx); err != nil {
			t.Fatal(err)
		}
	}
	return dp
}

// TestPipelinedDistributedBitwiseMatchesSerial extends the equivalence
// sweep across ranks: on a 3-rank cluster, overlapping each group's ring
// allreduce with the previous group's replicated P drain must leave the
// weights, P replicas and λ bitwise identical to the serial schedule — at
// several worker counts and force-group counts — and the replicas
// themselves must not drift.
func TestPipelinedDistributedBitwiseMatchesSerial(t *testing.T) {
	for _, groups := range []int{1, 2, 4} {
		prev := tensor.SetWorkers(1)
		ser := runClusterSteps(t, false, groups, 3, 2)
		tensor.SetWorkers(prev)
		wS := ser.Model().Params.FlattenValues()
		for _, workers := range []int{1, 4} {
			prev := tensor.SetWorkers(workers)
			pip := runClusterSteps(t, true, groups, 3, 2)
			tensor.SetWorkers(prev)
			if drift := pip.ReplicaDrift(); drift != 0 {
				t.Fatalf("groups %d workers %d: pipelined replicas drifted by %v", groups, workers, drift)
			}
			wP := pip.Model().Params.FlattenValues()
			for i := range wS {
				if wP[i] != wS[i] {
					t.Fatalf("groups %d workers %d: weight[%d] = %v (pipelined) vs %v (serial)",
						groups, workers, i, wP[i], wS[i])
				}
			}
			for b := range ser.states[0].P {
				for i, v := range ser.states[0].P[b].Data {
					if pip.states[0].P[b].Data[i] != v {
						t.Fatalf("groups %d workers %d: P[%d] elem %d diverged", groups, workers, b, i)
					}
				}
			}
			if pip.states[0].Lambda != ser.states[0].Lambda {
				t.Fatalf("groups %d workers %d: λ %v vs %v",
					groups, workers, pip.states[0].Lambda, ser.states[0].Lambda)
			}
		}
	}
}

// TestPipelinedRankFailureBitwiseMatchesSerial: the zero-partial failure
// path must survive the overlap unchanged — a step with an injected rank
// failure leaves every replica bitwise identical between the pipelined and
// serial schedules, with zero drift, and training continues cleanly.
func TestPipelinedRankFailureBitwiseMatchesSerial(t *testing.T) {
	run := func(pipeline bool) *DataParallelFEKF {
		ds, m := clusterSetup(t)
		dp := NewDataParallelFEKF(3, m)
		dp.Pipeline = pipeline
		idx := []int{0, 1, 2, 3, 4, 5}
		if _, err := dp.Step(ds, idx); err != nil {
			t.Fatal(err)
		}
		dp.envFail = func(rank int) error {
			if rank == 1 {
				return errors.New("injected env failure")
			}
			return nil
		}
		if _, err := dp.Step(ds, idx); err == nil {
			t.Fatal("injected failure must surface as a step error")
		}
		dp.envFail = nil
		if _, err := dp.Step(ds, idx); err != nil {
			t.Fatal(err)
		}
		return dp
	}
	ser := run(false)
	pip := run(true)
	if drift := pip.ReplicaDrift(); drift != 0 {
		t.Fatalf("pipelined replicas drifted by %v across a rank failure", drift)
	}
	wS := ser.Model().Params.FlattenValues()
	wP := pip.Model().Params.FlattenValues()
	for i := range wS {
		if wP[i] != wS[i] {
			t.Fatalf("weight[%d] = %v (pipelined) vs %v (serial) after rank failure", i, wP[i], wS[i])
		}
	}
	if pip.states[0].Lambda != ser.states[0].Lambda {
		t.Fatal("λ diverged across the failure path")
	}
}

// TestPipelinedClusterAccountingMatchesSerial: overlapping collectives
// with the replicated P drain must not change what the simulation charges
// — identical wire bytes, modeled communication time, collective count and
// per-rank device counters with the pipeline on and off (no stage is
// double-charged, none is dropped).  Opt3 keeps the drain allocation-free
// so the per-rank allocator state must also agree exactly.
func TestPipelinedClusterAccountingMatchesSerial(t *testing.T) {
	run := func(pipeline bool) *DataParallelFEKF {
		ds, m := clusterSetup(t)
		dp := NewDataParallelFEKF(2, m)
		dp.KCfg = dp.KCfg.WithOpt3()
		dp.Pipeline = pipeline
		idx := []int{0, 1, 2, 3}
		for s := 0; s < 2; s++ {
			if _, err := dp.Step(ds, idx); err != nil {
				t.Fatal(err)
			}
		}
		return dp
	}
	ser := run(false)
	pip := run(true)
	if pip.Ring().WireBytes() != ser.Ring().WireBytes() {
		t.Fatalf("wire bytes %d (pipelined) vs %d (serial)", pip.Ring().WireBytes(), ser.Ring().WireBytes())
	}
	if pip.Ring().ModeledNs() != ser.Ring().ModeledNs() {
		t.Fatalf("modeled comm ns %v (pipelined) vs %v (serial)", pip.Ring().ModeledNs(), ser.Ring().ModeledNs())
	}
	// 2 steps × (1 energy + 4 force + 1 diagnostic) collectives
	if want := int64(2 * 6); pip.Ring().Ops() != want || ser.Ring().Ops() != want {
		t.Fatalf("collective ops: pipelined %d serial %d want %d", pip.Ring().Ops(), ser.Ring().Ops(), want)
	}
	for r := range pip.devs {
		cp, cs := pip.devs[r].Counters(), ser.devs[r].Counters()
		if cp.Kernels != cs.Kernels || cp.Flops != cs.Flops || cp.Bytes != cs.Bytes ||
			cp.ModeledNs != cs.ModeledNs || cp.PhaseKerns != cs.PhaseKerns || cp.PhaseNs != cs.PhaseNs {
			t.Fatalf("rank %d device counters diverged:\n pipelined %+v\n serial    %+v", r, cp, cs)
		}
		if cp.LiveBytes != cs.LiveBytes || cp.PeakBytes != cs.PeakBytes {
			t.Fatalf("rank %d allocator diverged: live %d/%d peak %d/%d",
				r, cp.LiveBytes, cs.LiveBytes, cp.PeakBytes, cs.PeakBytes)
		}
	}
}
