package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

// SpanSink receives per-phase timings from a rank's step execution —
// backward, ring allreduce, Kalman gain, covariance drain.  Implemented by
// obs.StepRecorder; implementations must be safe for concurrent calls
// (ranks run concurrently and drains complete on background goroutines).
type SpanSink interface {
	Span(rank int, name string, start time.Time, dur time.Duration)
}

// DataParallelFEKF trains FEKF over r simulated GPU ranks: the minibatch
// is split into r chunks (Figure 5(a)), each rank computes its partial
// sign-reduced gradient and error sums on its own device, the partials are
// ring-allreduced, and every rank then performs the identical Kalman
// update against its local P replica — which therefore stays consistent
// with zero P communication (Section 3.3).
type DataParallelFEKF struct {
	KCfg        optimize.KalmanConfig
	Factor      optimize.QuasiLRFactor
	ForceGroups int
	EnergyDiv   optimize.TrustDiv
	ForceDiv    optimize.TrustDiv
	// Pipeline overlaps each rank's replicated P drain of force group k
	// with group k+1's backward and ring allreduce (and the energy drain
	// with the force forward pass); bitwise identical to the serial
	// schedule.  Defaults to optimize.PipelineDefault().
	Pipeline bool

	ring     *Ring
	replicas []*deepmd.Model
	states   []*optimize.KalmanState
	devs     []*device.Device

	// envFail, when non-nil, injects a per-rank environment-build failure
	// after BuildBatchEnv succeeds; the consistency tests use it to prove
	// that a failing rank cannot make the replicas diverge.
	envFail func(rank int) error
}

// NewDataParallelFEKF builds a trainer with `workers` ranks replicated
// from the given model, communicating over the in-process channel
// transport.
func NewDataParallelFEKF(workers int, m *deepmd.Model) *DataParallelFEKF {
	return NewDataParallelFEKFOver(NewRing(workers, RoCE25()), m)
}

// NewDataParallelFEKFOver builds a trainer whose ranks communicate over an
// existing ring — e.g. one constructed over the TCP-loopback transport or
// a fault-injecting wrapper.  The trainer has ring.Size() ranks.
func NewDataParallelFEKFOver(ring *Ring, m *deepmd.Model) *DataParallelFEKF {
	workers := ring.Size()
	dp := &DataParallelFEKF{
		KCfg:        optimize.DefaultKalmanConfig(),
		Factor:      optimize.FactorSqrtBS,
		ForceGroups: 4,
		EnergyDiv:   optimize.DivSqrtAtoms,
		ForceDiv:    optimize.DivAtoms,
		Pipeline:    optimize.PipelineDefault(),
		ring:        ring,
	}
	for w := 0; w < workers; w++ {
		dev := device.New(fmt.Sprintf("gpu%d", w), device.A100())
		dp.devs = append(dp.devs, dev)
		dp.replicas = append(dp.replicas, m.CloneFor(dev))
	}
	return dp
}

// SetEnvFail installs (or clears, with nil) the per-rank environment-build
// failure hook; the cross-transport consistency tests use it to prove a
// failing rank cannot make the replicas diverge on any transport.
func (dp *DataParallelFEKF) SetEnvFail(f func(rank int) error) { dp.envFail = f }

// Name implements the optimizer naming convention.
func (dp *DataParallelFEKF) Name() string {
	return fmt.Sprintf("FEKF[%d GPUs]", dp.ring.Size())
}

// Workers returns the rank count.
func (dp *DataParallelFEKF) Workers() int { return dp.ring.Size() }

// Model returns rank 0's replica (for evaluation; all replicas agree).
func (dp *DataParallelFEKF) Model() *deepmd.Model { return dp.replicas[0] }

// Ring exposes the communicator for wire-byte accounting.
func (dp *DataParallelFEKF) Ring() *Ring { return dp.ring }

// Devices returns the per-rank simulated devices.
func (dp *DataParallelFEKF) Devices() []*device.Device { return dp.devs }

// ReplicaDrift returns the maximum absolute weight difference between rank
// 0 and any other rank — zero up to floating-point reduction order if the
// no-P-communication invariant holds.
func (dp *DataParallelFEKF) ReplicaDrift() float64 {
	ref := dp.replicas[0].Params.FlattenValues()
	worst := 0.0
	for _, r := range dp.replicas[1:] {
		v := r.Params.FlattenValues()
		for i := range v {
			d := v[i] - ref[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// chunkOf splits idx into the rank's contiguous share.
func chunkOf(idx []int, rank, size int) []int {
	lo := rank * len(idx) / size
	hi := (rank + 1) * len(idx) / size
	return idx[lo:hi]
}

// StepParams are the per-step scalars every rank of a distributed FEKF
// step must agree on.  They are derived once from the *global* batch (the
// union of every rank's share) and handed to each rank, so ranks holding
// different local shares still apply identical Kalman updates.
type StepParams struct {
	// Scale is the quasi-learning-rate factor of the global batch.
	Scale float64
	// EnergyDiv and ForceDiv are the measurement-error divisors (already
	// evaluated for the system's atom count).
	EnergyDiv, ForceDiv float64
	// ForceGroups is the number of sequential force measurement updates.
	ForceGroups int
	// Pipeline overlaps each measurement's P drain with the next group's
	// backward and allreduce (bitwise identical to the serial schedule).
	Pipeline bool
	// Spans, when non-nil, receives the step's phase timings (backward,
	// allreduce, gain, drain).  Nil costs one pointer check per phase.
	Spans SpanSink
}

// RankStep executes one rank's role in a distributed FEKF step over ring:
// build the local environment, funnel-aggregate gradient and ABE partials
// with the other ranks, and apply the identical reduced Kalman update every
// rank applies.  ds/idx are this rank's private share of the global batch;
// a nil ds or empty idx means the rank contributes zero partials but still
// runs the full collective schedule and applies the reduced updates — the
// empty-shard / rank-failure path that keeps every replica's weights and P
// bit-identical across partial failures.  inject, when non-nil, injects a
// failure after the environment build succeeds (the consistency tests use
// it to prove a failing rank cannot make the replicas diverge).
//
// Every rank must call RankStep with the same StepParams; each Kalman
// update is gated on the reduced sample count, so a step in which no rank
// contributed aborts atomically on every rank.
func RankStep(ring *Ring, rank int, m *deepmd.Model, ks *optimize.KalmanState, p StepParams, ds *dataset.Dataset, idx []int, inject func() error) (optimize.StepInfo, error) {
	nParams := m.Params.NumParams()
	var env *deepmd.Env
	var lab *deepmd.Labels
	var err error
	if ds != nil && len(idx) > 0 {
		env, err = deepmd.BuildBatchEnv(m.Cfg, ds, idx)
		if err == nil && inject != nil {
			err = inject()
		}
		if err == nil {
			lab = deepmd.BatchLabels(ds, idx)
		}
	}
	active := err == nil && env != nil && lab != nil

	// Phase tracing: when p.Spans is set every backward / allreduce /
	// gain region is timed, and each deferred covariance drain is wrapped
	// so its background execution reports a "drain" span.  Disabled, the
	// instrumentation is a handful of nil checks.
	trace := p.Spans
	var t0 time.Time
	span := func(name string) {
		if trace != nil {
			trace.Span(rank, name, t0, time.Since(t0))
		}
	}
	mark := func() {
		if trace != nil {
			t0 = time.Now()
		}
	}

	// ---- energy update: every rank reduces and applies; a failed or idle
	// rank's partials stay zero.  With the pipeline on, the energy P drain
	// overlaps the force forward pass below.
	buf := make([]float64, nParams+2)
	var out *deepmd.Output
	mark()
	if active {
		out = m.Forward(env, false)
		seedE, absSum := optimize.EnergySeed(out, lab)
		copy(buf, m.EnergyGrad(out, seedE))
		buf[nParams] = absSum
		buf[nParams+1] = float64(len(idx))
	}
	span("backward")
	mark()
	if cerr := ring.Allreduce(rank, buf); cerr != nil {
		// The ring broke mid-collective: the reduced buffer is in an
		// unspecified partial state and must not be applied.  No Kalman
		// update has started yet, so the rank's state is untouched.
		if out != nil {
			out.Graph.Release()
		}
		return optimize.StepInfo{}, fmt.Errorf("energy allreduce: %w", cerr)
	}
	span("allreduce")
	abe := 0.0
	wait := func() {}
	// tracedDrain wraps a deferred covariance drain so the background
	// goroutine (or the inline call, pipeline off) reports its own span.
	tracedDrain := func(drain func()) func() {
		if trace == nil {
			return drain
		}
		return func() {
			d0 := time.Now()
			drain()
			trace.Span(rank, "drain", d0, time.Since(d0))
		}
	}
	if buf[nParams+1] > 0 {
		abe = buf[nParams] / (buf[nParams+1] * p.EnergyDiv)
		mark()
		delta, drain := ks.UpdateSplit(buf[:nParams], abe, p.Scale)
		m.Params.AddFlat(delta)
		span("gain")
		wait = optimize.StartDrain(tracedDrain(drain), p.Pipeline)
	}
	if out != nil {
		out.Graph.Release()
	}

	// ---- force updates: group k+1's backward and its gradient/ABE ring
	// allreduce overlap group k's replicated P drain.  The hand-off (wait
	// before UpdateSplit) keeps the sequential measurement semantics: each
	// group's gain stage reads the drained P, and its backward reads the
	// post-update weights of the previous group.  Every rank applies the
	// same reduced buffers, so the replicas stay bit-identical — including
	// across the rank-failure zero-partial path, whose count gates are
	// unchanged.
	var out2 *deepmd.Output
	fErr := make([]float64, 2) // Σ|ΔF| and component count, for StepInfo
	mark()
	if active {
		out2 = m.Forward(env, true)
		sum, count := optimize.ForceErrorSum(out2, lab)
		fErr[0], fErr[1] = sum, float64(count)
	}
	span("backward")
	for grp := 0; grp < p.ForceGroups; grp++ {
		fbuf := make([]float64, nParams+2)
		mark()
		if out2 != nil {
			seedF, fSum, count := optimize.ForceSeed(out2, lab, grp, p.ForceGroups)
			copy(fbuf, m.ForceGrad(out2, seedF))
			fbuf[nParams] = fSum
			fbuf[nParams+1] = float64(count)
		}
		span("backward")
		mark()
		if cerr := ring.Allreduce(rank, fbuf); cerr != nil {
			// Join the previous group's in-flight P drain before bailing:
			// the drain mutates the covariance in the background and must
			// not outlive the step.  The partially reduced buffer is
			// dropped, so the last completed group's state stands.
			wait()
			if out2 != nil {
				out2.Graph.Release()
			}
			return optimize.StepInfo{EnergyABE: abe}, fmt.Errorf("force group %d allreduce: %w", grp, cerr)
		}
		span("allreduce")
		if fbuf[nParams+1] > 0 {
			fabe := fbuf[nParams] / (fbuf[nParams+1] * p.ForceDiv)
			wait()
			mark()
			delta, drain := ks.UpdateSplit(fbuf[:nParams], fabe, p.Scale)
			m.Params.AddFlat(delta)
			span("gain")
			wait = optimize.StartDrain(tracedDrain(drain), p.Pipeline)
		}
	}

	// ---- reduce the force-error diagnostic so the distributed StepInfo
	// matches the single-device contract (batch-global mean absolute
	// force-component error).  It overlaps the last group's drain, which is
	// joined before the step returns.
	mark()
	if cerr := ring.AllreduceScalars(rank, fErr); cerr != nil {
		wait()
		if out2 != nil {
			out2.Graph.Release()
		}
		return optimize.StepInfo{EnergyABE: abe}, fmt.Errorf("force-error allreduce: %w", cerr)
	}
	span("allreduce")
	forceABE := 0.0
	if fErr[1] > 0 {
		forceABE = fErr[0] / fErr[1]
	}
	wait()
	if out2 != nil {
		out2.Graph.Release()
	}
	return optimize.StepInfo{EnergyABE: abe, ForceABE: forceABE}, err
}

// Step performs one distributed FEKF iteration over the minibatch idx,
// chunking it contiguously across the ranks and running each rank's
// RankStep concurrently.
//
// Failure semantics: a rank whose environment build fails still runs the
// full collective schedule, contributing zero gradient/error partials, and
// then applies the same reduced update every surviving rank applies — the
// reduced buffers are bit-identical on every rank after the allgather, so
// the replicas (weights and P) cannot diverge across a partial failure.
// Each Kalman update is gated on the reduced sample count, so a step in
// which no rank contributed (total failure) aborts atomically: every rank
// skips every state mutation.  The first error is still returned so the
// caller can see the failure; training may safely continue afterwards.
func (dp *DataParallelFEKF) Step(ds *dataset.Dataset, idx []int) (optimize.StepInfo, error) {
	r := dp.ring.Size()
	if dp.states == nil {
		for w := 0; w < r; w++ {
			dp.states = append(dp.states,
				optimize.NewKalmanState(dp.KCfg, dp.replicas[w].Params.LayerSizes(), dp.devs[w]))
		}
	}
	na := ds.Snapshots[idx[0]].NumAtoms()
	p := StepParams{
		Scale:       dp.Factor.Apply(len(idx)),
		EnergyDiv:   dp.EnergyDiv.Value(na),
		ForceDiv:    dp.ForceDiv.Value(na),
		ForceGroups: dp.ForceGroups,
		Pipeline:    dp.Pipeline,
	}

	var wg sync.WaitGroup
	errs := make([]error, r)
	infos := make([]optimize.StepInfo, r)
	for w := 0; w < r; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var inject func() error
			if dp.envFail != nil {
				inject = func() error { return dp.envFail(rank) }
			}
			infos[rank], errs[rank] = RankStep(dp.ring, rank, dp.replicas[rank], dp.states[rank], p,
				ds, chunkOf(idx, rank, r), inject)
		}(w)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return infos[0], err
	}
	return infos[0], nil
}

// ModeledIterationNs returns the modeled wall time of everything executed
// so far: the busiest rank's device time plus the communication time.
// With one host core the measured wall-clock of the simulation is not the
// experiment's metric; this is (see DESIGN.md).
func (dp *DataParallelFEKF) ModeledIterationNs() float64 {
	worst := 0.0
	for _, d := range dp.devs {
		if ns := d.Counters().ModeledNs; ns > worst {
			worst = ns
		}
	}
	return worst + dp.ring.ModeledNs()
}
