package cluster

import (
	"fmt"
	"sync"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

// DataParallelFEKF trains FEKF over r simulated GPU ranks: the minibatch
// is split into r chunks (Figure 5(a)), each rank computes its partial
// sign-reduced gradient and error sums on its own device, the partials are
// ring-allreduced, and every rank then performs the identical Kalman
// update against its local P replica — which therefore stays consistent
// with zero P communication (Section 3.3).
type DataParallelFEKF struct {
	KCfg        optimize.KalmanConfig
	Factor      optimize.QuasiLRFactor
	ForceGroups int
	EnergyDiv   optimize.TrustDiv
	ForceDiv    optimize.TrustDiv

	ring     *Ring
	replicas []*deepmd.Model
	states   []*optimize.KalmanState
	devs     []*device.Device
}

// NewDataParallelFEKF builds a trainer with `workers` ranks replicated
// from the given model.
func NewDataParallelFEKF(workers int, m *deepmd.Model) *DataParallelFEKF {
	dp := &DataParallelFEKF{
		KCfg:        optimize.DefaultKalmanConfig(),
		Factor:      optimize.FactorSqrtBS,
		ForceGroups: 4,
		EnergyDiv:   optimize.DivSqrtAtoms,
		ForceDiv:    optimize.DivAtoms,
		ring:        NewRing(workers, RoCE25()),
	}
	for w := 0; w < workers; w++ {
		dev := device.New(fmt.Sprintf("gpu%d", w), device.A100())
		dp.devs = append(dp.devs, dev)
		dp.replicas = append(dp.replicas, m.CloneFor(dev))
	}
	return dp
}

// Name implements the optimizer naming convention.
func (dp *DataParallelFEKF) Name() string {
	return fmt.Sprintf("FEKF[%d GPUs]", dp.ring.Size())
}

// Workers returns the rank count.
func (dp *DataParallelFEKF) Workers() int { return dp.ring.Size() }

// Model returns rank 0's replica (for evaluation; all replicas agree).
func (dp *DataParallelFEKF) Model() *deepmd.Model { return dp.replicas[0] }

// Ring exposes the communicator for wire-byte accounting.
func (dp *DataParallelFEKF) Ring() *Ring { return dp.ring }

// Devices returns the per-rank simulated devices.
func (dp *DataParallelFEKF) Devices() []*device.Device { return dp.devs }

// ReplicaDrift returns the maximum absolute weight difference between rank
// 0 and any other rank — zero up to floating-point reduction order if the
// no-P-communication invariant holds.
func (dp *DataParallelFEKF) ReplicaDrift() float64 {
	ref := dp.replicas[0].Params.FlattenValues()
	worst := 0.0
	for _, r := range dp.replicas[1:] {
		v := r.Params.FlattenValues()
		for i := range v {
			d := v[i] - ref[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// chunkOf splits idx into the rank's contiguous share.
func chunkOf(idx []int, rank, size int) []int {
	lo := rank * len(idx) / size
	hi := (rank + 1) * len(idx) / size
	return idx[lo:hi]
}

// Step performs one distributed FEKF iteration over the minibatch idx.
func (dp *DataParallelFEKF) Step(ds *dataset.Dataset, idx []int) (optimize.StepInfo, error) {
	r := dp.ring.Size()
	if dp.states == nil {
		for w := 0; w < r; w++ {
			dp.states = append(dp.states,
				optimize.NewKalmanState(dp.KCfg, dp.replicas[w].Params.LayerSizes(), dp.devs[w]))
		}
	}
	na := ds.Snapshots[idx[0]].NumAtoms()
	eDiv := dp.EnergyDiv.Value(na)
	fDiv := dp.ForceDiv.Value(na)
	scale := dp.Factor.Apply(len(idx))
	nParams := dp.replicas[0].Params.NumParams()

	var wg sync.WaitGroup
	errs := make([]error, r)
	infos := make([]optimize.StepInfo, r)
	for w := 0; w < r; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := dp.replicas[rank]
			ks := dp.states[rank]
			chunk := chunkOf(idx, rank, r)
			env, err := deepmd.BuildBatchEnv(m.Cfg, ds, chunk)
			if err != nil {
				errs[rank] = err
				// keep collectives aligned: participate with zeros
				dp.ring.Allreduce(rank, make([]float64, nParams+2))
				for grp := 0; grp < dp.ForceGroups; grp++ {
					dp.ring.Allreduce(rank, make([]float64, nParams+2))
				}
				return
			}
			lab := deepmd.BatchLabels(ds, chunk)

			// ---- energy update
			out := m.Forward(env, false)
			seedE, absSum := optimize.EnergySeed(out, lab)
			buf := make([]float64, nParams+2)
			copy(buf, m.EnergyGrad(out, seedE))
			buf[nParams] = absSum
			buf[nParams+1] = float64(len(chunk))
			dp.ring.Allreduce(rank, buf)
			abe := buf[nParams] / (buf[nParams+1] * eDiv)
			m.Params.AddFlat(ks.Update(buf[:nParams], abe, scale))
			out.Graph.Release()

			// ---- force updates
			out2 := m.Forward(env, true)
			for grp := 0; grp < dp.ForceGroups; grp++ {
				seedF, fSum, count := optimize.ForceSeed(out2, lab, grp, dp.ForceGroups)
				fbuf := make([]float64, nParams+2)
				copy(fbuf, m.ForceGrad(out2, seedF))
				fbuf[nParams] = fSum
				fbuf[nParams+1] = float64(count)
				dp.ring.Allreduce(rank, fbuf)
				fabe := 0.0
				if fbuf[nParams+1] > 0 {
					fabe = fbuf[nParams] / (fbuf[nParams+1] * fDiv)
				}
				m.Params.AddFlat(ks.Update(fbuf[:nParams], fabe, scale))
			}
			infos[rank] = optimize.StepInfo{
				EnergyABE: abe,
			}
			out2.Graph.Release()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return optimize.StepInfo{}, err
		}
	}
	return infos[0], nil
}

// ModeledIterationNs returns the modeled wall time of everything executed
// so far: the busiest rank's device time plus the communication time.
// With one host core the measured wall-clock of the simulation is not the
// experiment's metric; this is (see DESIGN.md).
func (dp *DataParallelFEKF) ModeledIterationNs() float64 {
	worst := 0.0
	for _, d := range dp.devs {
		if ns := d.Counters().ModeledNs; ns > worst {
			worst = ns
		}
	}
	return worst + dp.ring.ModeledNs()
}
