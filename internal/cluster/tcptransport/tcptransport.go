// Package tcptransport runs the cluster ring schedule over real TCP
// sockets: each rank owns a listener that accepts exactly its ring
// predecessor and a dialed connection to its ring successor.  Connections
// handshake (magic, version, ring id, sender rank, connection generation),
// every send carries a write deadline and survives transient link loss
// through bounded exponential-backoff reconnects, and a heartbeat-based
// failure detector declares a silent peer dead — mapping it onto the same
// rank-failure path the in-process transport reports through Abort/Dead,
// so the fleet can re-form the ring over the survivors.
//
// The wire format is deliberately small (see DESIGN.md, "Cross-host ring
// transport"): length-prefixed float64 chunks plus one-byte-typed barrier
// tokens and heartbeats.  Bitwise reproducibility needs nothing more —
// float64 bits cross the wire verbatim in little-endian order, so a
// TCP-loopback ring reduces to exactly the same bits as the in-process
// channel ring.
package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fekf/internal/cluster"
)

// Wire protocol constants.
const (
	magic   = 0x46454b46 // "FEKF"
	version = 1

	frameData      = 1
	frameBarrier   = 2
	frameHeartbeat = 3

	barrierGather  = 0
	barrierRelease = 1
)

// Options tunes one ring's TCP endpoints.  The zero value gets defaults
// suitable for loopback fleets; fault-injection tests shrink the timeouts.
type Options struct {
	// RingID names the ring; handshakes from another ring are rejected.
	RingID string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// SendTimeout is the per-frame write deadline (default 5s).
	SendTimeout time.Duration
	// PeerTimeout is the failure detector: no frame (data, token or
	// heartbeat) from the predecessor for this long, or a barrier token
	// overdue by it, declares the peer dead (default 10s).
	PeerTimeout time.Duration
	// HeartbeatEvery is the idle keep-alive period (default PeerTimeout/4).
	HeartbeatEvery time.Duration
	// RecvTimeout, when > 0, additionally bounds each data Recv.  The
	// default 0 relies on connection-level detection alone — TCP does not
	// lose frames on a live connection; only injected drops do, and those
	// tests set it.
	RecvTimeout time.Duration
	// RetryMax is the send attempt budget, reconnects included (default 4).
	RetryMax int
	// BackoffBase and BackoffMax bound the exponential reconnect backoff
	// (defaults 5ms and 250ms).
	BackoffBase, BackoffMax time.Duration
	// StartupGrace extends the first accept's deadline so a peer process
	// that boots slowly is not declared dead (default 30s).
	StartupGrace time.Duration
	// OnPeerDeath, when non-nil, runs once per rank declared dead.
	OnPeerDeath func(rank int, cause error)
}

func (o Options) withDefaults() Options {
	if o.RingID == "" {
		o.RingID = "fekf"
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.SendTimeout <= 0 {
		o.SendTimeout = 5 * time.Second
	}
	if o.PeerTimeout <= 0 {
		o.PeerTimeout = 10 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = o.PeerTimeout / 4
	}
	if o.RetryMax < 1 {
		o.RetryMax = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	if o.StartupGrace <= 0 {
		o.StartupGrace = 30 * time.Second
	}
	return o
}

type barToken struct {
	phase byte
	gen   uint64
}

// Endpoint is one rank's TCP transport endpoint.  In a cross-process ring
// each process owns exactly one Endpoint; it implements cluster.Transport
// for its own rank (operations naming another rank error out).  In-process
// rings use Group, which fans the interface out over n Endpoints.
type Endpoint struct {
	rank, size int
	opts       Options
	ln         net.Listener
	nextAddr   string

	// dialed connection to the ring successor, guarded by sendMu
	sendMu     sync.Mutex
	conn       net.Conn
	genOut     uint64
	everDialed bool
	wbuf       []byte

	// frames from the ring predecessor, demultiplexed by the reader
	dataCh chan []float64
	barCh  chan barToken
	// rotating decode buffers: the lockstep schedule has at most one data
	// frame outstanding per link, so two buffers never overwrite a chunk
	// the consumer still holds.
	rbuf    [2][]float64
	rbufIdx int

	// Barrier is called by the rank's single collective goroutine.
	barrierGen uint64

	mu       sync.Mutex
	broken   bool
	cause    error
	dead     []int
	brokenCh chan struct{}
	closed   bool
	// accepted is the live inbound connection, tracked so Close and
	// breakLocal can interrupt a blocked read instead of waiting out its
	// deadline.
	accepted net.Conn
	// onAbort cascades a detected failure (set by Group; nil standalone).
	onAbort func(rank int, cause error)

	wg sync.WaitGroup

	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	msgs       atomic.Int64
	retries    atomic.Int64
	reconnects atomic.Int64
	heartbeats atomic.Int64
	peerFails  atomic.Int64
}

// NewEndpoint builds rank's endpoint of a size-rank ring: ln accepts the
// ring predecessor's connection, nextAddr is the successor's listen
// address.  The endpoint starts its acceptor and heartbeat loops
// immediately; the first Send dials lazily.
func NewEndpoint(rank, size int, ln net.Listener, nextAddr string, opts Options) *Endpoint {
	if size < 1 || rank < 0 || rank >= size {
		panic(fmt.Sprintf("tcptransport: bad rank %d of %d", rank, size))
	}
	e := &Endpoint{
		rank:     rank,
		size:     size,
		opts:     opts.withDefaults(),
		ln:       ln,
		nextAddr: nextAddr,
		dataCh:   make(chan []float64, 4),
		barCh:    make(chan barToken, 4),
		brokenCh: make(chan struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	if size > 1 {
		e.wg.Add(1)
		go e.heartbeatLoop()
	}
	return e
}

// Listen binds a loopback listener for one rank (port 0 = random).
func Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}

func (e *Endpoint) next() int { return (e.rank + 1) % e.size }
func (e *Endpoint) prev() int { return (e.rank - 1 + e.size) % e.size }

// Addr returns the endpoint's listen address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// Size returns the ring's rank count.
func (e *Endpoint) Size() int { return e.size }

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

func (e *Endpoint) checkRank(rank int) error {
	if rank != e.rank {
		return fmt.Errorf("tcptransport: endpoint owns rank %d, not %d", e.rank, rank)
	}
	return nil
}

// Send implements cluster.Transport for the endpoint's own rank.
func (e *Endpoint) Send(rank int, chunk []float64) error {
	if err := e.checkRank(rank); err != nil {
		return err
	}
	return e.sendChunk(chunk)
}

// Recv implements cluster.Transport for the endpoint's own rank.
func (e *Endpoint) Recv(rank int) ([]float64, error) {
	if err := e.checkRank(rank); err != nil {
		return nil, err
	}
	return e.recvChunk()
}

// Barrier implements cluster.Transport for the endpoint's own rank.
func (e *Endpoint) Barrier(rank int) error {
	if err := e.checkRank(rank); err != nil {
		return err
	}
	return e.barrier()
}

// Abort declares rank dead and breaks the ring locally (and through the
// group, when the endpoint belongs to one).
func (e *Endpoint) Abort(rank int, cause error) { e.abort(rank, cause) }

// Dead returns the ranks this endpoint has declared dead.
func (e *Endpoint) Dead() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.dead...)
}

// Stats returns the endpoint's measured wire counters.
func (e *Endpoint) Stats() cluster.TransportStats {
	return cluster.TransportStats{
		Kind:         "tcp",
		BytesSent:    e.bytesSent.Load(),
		BytesRecv:    e.bytesRecv.Load(),
		Msgs:         e.msgs.Load(),
		Retries:      e.retries.Load(),
		Reconnects:   e.reconnects.Load(),
		Heartbeats:   e.heartbeats.Load(),
		PeerFailures: e.peerFails.Load(),
	}
}

// CutConn severs the dialed connection to the successor without declaring
// anyone dead — the next send reconnects.  Implements cluster.ConnCutter
// for deterministic transient-fault injection.
func (e *Endpoint) CutConn(rank int) {
	if rank != e.rank {
		return
	}
	e.sendMu.Lock()
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
	e.sendMu.Unlock()
}

// Close tears the endpoint down: the listener and connections close, the
// loops exit, and blocked operations fail.  Close on an already-broken or
// closed endpoint is a no-op.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	already := e.closed
	e.closed = true
	if !e.broken {
		e.broken = true
		e.cause = errors.New("transport closed")
		close(e.brokenCh)
	}
	e.mu.Unlock()
	if already {
		return nil
	}
	e.closeConns()
	e.wg.Wait()
	return nil
}

// closeConns tears down the listener and both directions' connections,
// interrupting any blocked read or write.
func (e *Endpoint) closeConns() {
	e.ln.Close()
	e.mu.Lock()
	if e.accepted != nil {
		e.accepted.Close()
	}
	e.mu.Unlock()
	e.sendMu.Lock()
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
	e.sendMu.Unlock()
}

// err returns the broken-ring error wrapping the recorded cause.
func (e *Endpoint) err() error {
	e.mu.Lock()
	cause := e.cause
	e.mu.Unlock()
	if cause == nil {
		cause = errors.New("aborted")
	}
	return fmt.Errorf("%w: %s", cluster.ErrRingBroken, cause)
}

// breakLocal breaks this endpoint without cascading (group internal).
func (e *Endpoint) breakLocal(rank int, cause error) {
	e.mu.Lock()
	if !e.broken {
		e.broken = true
		e.cause = cause
		close(e.brokenCh)
	}
	if rank >= 0 {
		seen := false
		for _, d := range e.dead {
			if d == rank {
				seen = true
				break
			}
		}
		if !seen {
			e.dead = append(e.dead, rank)
		}
	}
	e.mu.Unlock()
	e.closeConns()
}

// abort records a detected failure and cascades it.
func (e *Endpoint) abort(rank int, cause error) {
	e.mu.Lock()
	onAbort := e.onAbort
	e.mu.Unlock()
	if rank >= 0 {
		e.peerFails.Add(1)
	}
	if onAbort != nil {
		onAbort(rank, cause) // group: break every endpoint, notify once
		return
	}
	e.breakLocal(rank, cause)
	if e.opts.OnPeerDeath != nil && rank >= 0 {
		e.opts.OnPeerDeath(rank, cause)
	}
}

func (e *Endpoint) isBroken() bool {
	select {
	case <-e.brokenCh:
		return true
	default:
		return false
	}
}

// ---- sender side -----------------------------------------------------

// ensureConn dials the successor and handshakes, under sendMu.
func (e *Endpoint) ensureConn() error {
	if e.conn != nil {
		return nil
	}
	if e.nextAddr == "" {
		return errors.New("tcptransport: successor address unknown")
	}
	conn, err := net.DialTimeout("tcp", e.nextAddr, e.opts.DialTimeout)
	if err != nil {
		return err
	}
	if e.everDialed {
		e.reconnects.Add(1)
	}
	e.everDialed = true
	e.genOut++
	if err := e.handshake(conn); err != nil {
		conn.Close()
		return err
	}
	e.conn = conn
	return nil
}

// handshake identifies this rank and connection generation to the
// acceptor and waits for its verdict.
func (e *Endpoint) handshake(conn net.Conn) error {
	id := []byte(e.opts.RingID)
	hs := make([]byte, 0, 4+1+2+len(id)+4+8)
	hs = binary.LittleEndian.AppendUint32(hs, magic)
	hs = append(hs, version)
	hs = binary.LittleEndian.AppendUint16(hs, uint16(len(id)))
	hs = append(hs, id...)
	hs = binary.LittleEndian.AppendUint32(hs, uint32(e.rank))
	hs = binary.LittleEndian.AppendUint64(hs, e.genOut)
	conn.SetDeadline(time.Now().Add(e.opts.SendTimeout))
	if _, err := conn.Write(hs); err != nil {
		return fmt.Errorf("handshake write: %w", err)
	}
	e.bytesSent.Add(int64(len(hs)))
	var verdict [1]byte
	if _, err := io.ReadFull(conn, verdict[:]); err != nil {
		return fmt.Errorf("handshake verdict: %w", err)
	}
	e.bytesRecv.Add(1)
	conn.SetDeadline(time.Time{})
	if verdict[0] != 1 {
		return fmt.Errorf("handshake rejected by rank %d", e.next())
	}
	return nil
}

// writeFrame assembles and writes one frame under sendMu with the send
// deadline, without retries (sendChunk owns the retry loop).
func (e *Endpoint) writeFrame(kind byte, payload func([]byte) []byte) error {
	if err := e.ensureConn(); err != nil {
		return err
	}
	e.wbuf = append(e.wbuf[:0], kind)
	if payload != nil {
		e.wbuf = payload(e.wbuf)
	}
	e.conn.SetWriteDeadline(time.Now().Add(e.opts.SendTimeout))
	n, err := e.conn.Write(e.wbuf)
	e.bytesSent.Add(int64(n))
	if err != nil {
		e.conn.Close()
		e.conn = nil
		return err
	}
	return nil
}

// sendFrame writes one frame with bounded retries and exponential-backoff
// reconnects; exhausting the budget declares the successor dead.
func (e *Endpoint) sendFrame(kind byte, payload func([]byte) []byte) error {
	e.sendMu.Lock()
	var last error
	for attempt := 0; attempt < e.opts.RetryMax; attempt++ {
		if e.isBroken() {
			e.sendMu.Unlock()
			return e.err()
		}
		if attempt > 0 {
			e.retries.Add(1)
			backoff := e.opts.BackoffBase << (attempt - 1)
			if backoff > e.opts.BackoffMax {
				backoff = e.opts.BackoffMax
			}
			time.Sleep(backoff)
		}
		if last = e.writeFrame(kind, payload); last == nil {
			e.msgs.Add(1)
			e.sendMu.Unlock()
			return nil
		}
	}
	// abort tears connections down, which re-takes sendMu: release first.
	e.sendMu.Unlock()
	cause := fmt.Errorf("rank %d unreachable after %d attempts: %v", e.next(), e.opts.RetryMax, last)
	e.abort(e.next(), cause)
	return e.err()
}

func (e *Endpoint) sendChunk(chunk []float64) error {
	return e.sendFrame(frameData, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(chunk)))
		for _, v := range chunk {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	})
}

func (e *Endpoint) sendBarrier(phase byte, gen uint64) error {
	return e.sendFrame(frameBarrier, func(b []byte) []byte {
		b = append(b, phase)
		return binary.LittleEndian.AppendUint64(b, gen)
	})
}

// heartbeatLoop keeps the link to the successor warm and its failure
// detector fed while the ring idles between collectives.
func (e *Endpoint) heartbeatLoop() {
	defer e.wg.Done()
	tick := time.NewTicker(e.opts.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-e.brokenCh:
			return
		case <-tick.C:
		}
		// Best effort: never queue behind an in-flight send (the send is
		// the heartbeat then), never retry (the next tick is the retry).
		if !e.sendMu.TryLock() {
			continue
		}
		if !e.isBroken() {
			if err := e.writeFrame(frameHeartbeat, nil); err == nil {
				e.heartbeats.Add(1)
			}
		}
		e.sendMu.Unlock()
	}
}

// ---- receiver side ---------------------------------------------------

// acceptLoop owns the inbound side: accept the predecessor, validate its
// handshake, then demultiplex frames until the connection drops — and
// re-accept after a drop.  Silence past the deadline declares the
// predecessor dead.
func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	var lastGenIn uint64
	first := true
	for {
		deadline := e.opts.PeerTimeout
		if first {
			deadline += e.opts.StartupGrace
		}
		if d, ok := e.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Now().Add(deadline))
		}
		conn, err := e.ln.Accept()
		if err != nil {
			if e.isBroken() {
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				e.abort(e.prev(), fmt.Errorf("no connection from rank %d within %v", e.prev(), deadline))
				return
			}
			// listener failed for good
			e.abort(-1, fmt.Errorf("accept: %w", err))
			return
		}
		gen, err := e.acceptHandshake(conn, lastGenIn)
		if err != nil {
			conn.Close()
			continue // stale or foreign dialer; keep listening
		}
		lastGenIn = gen
		first = false
		e.mu.Lock()
		e.accepted = conn
		e.mu.Unlock()
		err = e.readLoop(conn)
		e.mu.Lock()
		e.accepted = nil
		e.mu.Unlock()
		if err != nil {
			return // peer declared dead or endpoint broken
		}
		// connection dropped cleanly — wait for the reconnect
	}
}

// acceptHandshake validates an inbound connection: right ring, right rank
// (the predecessor), fresh generation.
func (e *Endpoint) acceptHandshake(conn net.Conn, lastGen uint64) (uint64, error) {
	conn.SetReadDeadline(time.Now().Add(e.opts.PeerTimeout))
	var fixed [7]byte // magic + version + id length
	if _, err := io.ReadFull(conn, fixed[:]); err != nil {
		return 0, err
	}
	e.bytesRecv.Add(7)
	if binary.LittleEndian.Uint32(fixed[0:4]) != magic || fixed[4] != version {
		return 0, errors.New("bad magic/version")
	}
	idLen := int(binary.LittleEndian.Uint16(fixed[5:7]))
	rest := make([]byte, idLen+4+8)
	if _, err := io.ReadFull(conn, rest); err != nil {
		return 0, err
	}
	e.bytesRecv.Add(int64(len(rest)))
	reject := func(why string) (uint64, error) {
		conn.SetWriteDeadline(time.Now().Add(e.opts.SendTimeout))
		conn.Write([]byte{0})
		return 0, errors.New(why)
	}
	if string(rest[:idLen]) != e.opts.RingID {
		return reject("foreign ring id")
	}
	senderRank := int(binary.LittleEndian.Uint32(rest[idLen : idLen+4]))
	if senderRank != e.prev() {
		return reject(fmt.Sprintf("rank %d dialed, want predecessor %d", senderRank, e.prev()))
	}
	gen := binary.LittleEndian.Uint64(rest[idLen+4:])
	if gen <= lastGen {
		return reject("stale connection generation")
	}
	conn.SetWriteDeadline(time.Now().Add(e.opts.SendTimeout))
	if _, err := conn.Write([]byte{1}); err != nil {
		return 0, err
	}
	e.bytesSent.Add(1)
	return gen, nil
}

// readLoop demultiplexes frames from one accepted connection.  A non-nil
// return means the loop is done for good (peer dead or endpoint broken);
// nil means the connection dropped and the acceptor should re-accept.
func (e *Endpoint) readLoop(conn net.Conn) error {
	defer conn.Close()
	var hdr [5]byte
	for {
		conn.SetReadDeadline(time.Now().Add(e.opts.PeerTimeout))
		if _, err := io.ReadFull(conn, hdr[:1]); err != nil {
			if e.isBroken() {
				return e.err()
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				cause := fmt.Errorf("rank %d silent for %v", e.prev(), e.opts.PeerTimeout)
				e.abort(e.prev(), cause)
				return cause
			}
			return nil // EOF / reset: transient, re-accept
		}
		e.bytesRecv.Add(1)
		switch hdr[0] {
		case frameHeartbeat:
			// the read deadline refresh above is the whole point
		case frameData:
			if _, err := io.ReadFull(conn, hdr[1:5]); err != nil {
				return e.dropConn(err)
			}
			n := int(binary.LittleEndian.Uint32(hdr[1:5]))
			buf := e.rbuf[e.rbufIdx]
			if cap(buf) < n {
				buf = make([]float64, n)
			}
			buf = buf[:n]
			if err := e.readFloats(conn, buf); err != nil {
				return e.dropConn(err)
			}
			e.rbuf[e.rbufIdx] = buf
			e.rbufIdx = 1 - e.rbufIdx
			e.bytesRecv.Add(4 + int64(n)*8)
			select {
			case e.dataCh <- buf:
			case <-e.brokenCh:
				return e.err()
			}
		case frameBarrier:
			var pb [9]byte
			if _, err := io.ReadFull(conn, pb[:]); err != nil {
				return e.dropConn(err)
			}
			e.bytesRecv.Add(9)
			tok := barToken{phase: pb[0], gen: binary.LittleEndian.Uint64(pb[1:])}
			select {
			case e.barCh <- tok:
			case <-e.brokenCh:
				return e.err()
			}
		default:
			cause := fmt.Errorf("protocol error: frame type %d from rank %d", hdr[0], e.prev())
			e.abort(e.prev(), cause)
			return cause
		}
	}
}

// dropConn classifies a mid-frame read error: timeout means a dead peer, a
// broken endpoint returns its error, anything else re-accepts.
func (e *Endpoint) dropConn(err error) error {
	if e.isBroken() {
		return e.err()
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		cause := fmt.Errorf("rank %d stalled mid-frame: %v", e.prev(), err)
		e.abort(e.prev(), cause)
		return cause
	}
	return nil
}

// readFloats fills dst with little-endian float64 bits from conn.
func (e *Endpoint) readFloats(conn net.Conn, dst []float64) error {
	var scratch [512 * 8]byte
	for off := 0; off < len(dst); {
		chunk := len(dst) - off
		if chunk > 512 {
			chunk = 512
		}
		b := scratch[:chunk*8]
		if _, err := io.ReadFull(conn, b); err != nil {
			return err
		}
		for i := 0; i < chunk; i++ {
			dst[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		off += chunk
	}
	return nil
}

// recvChunk returns the next data chunk from the predecessor.
func (e *Endpoint) recvChunk() ([]float64, error) {
	if e.opts.RecvTimeout <= 0 {
		select {
		case buf := <-e.dataCh:
			return buf, nil
		case <-e.brokenCh:
			return nil, e.err()
		}
	}
	timer := time.NewTimer(e.opts.RecvTimeout)
	defer timer.Stop()
	select {
	case buf := <-e.dataCh:
		return buf, nil
	case <-e.brokenCh:
		return nil, e.err()
	case <-timer.C:
		cause := fmt.Errorf("rank %d owed a chunk for %v", e.prev(), e.opts.RecvTimeout)
		e.abort(e.prev(), cause)
		return nil, e.err()
	}
}

// barrier runs the two-phase ring token barrier: a gather token circulates
// from rank 0 proving every rank arrived, then a release token lets
// everyone go.  2n messages, same FIFO streams as the data.
func (e *Endpoint) barrier() error {
	if e.size == 1 {
		return nil
	}
	gen := e.barrierGen
	e.barrierGen++
	if e.rank == 0 {
		if err := e.sendBarrier(barrierGather, gen); err != nil {
			return err
		}
		if err := e.waitBarrier(barrierGather, gen); err != nil {
			return err
		}
		if err := e.sendBarrier(barrierRelease, gen); err != nil {
			return err
		}
		return e.waitBarrier(barrierRelease, gen)
	}
	if err := e.waitBarrier(barrierGather, gen); err != nil {
		return err
	}
	if err := e.sendBarrier(barrierGather, gen); err != nil {
		return err
	}
	if err := e.waitBarrier(barrierRelease, gen); err != nil {
		return err
	}
	return e.sendBarrier(barrierRelease, gen)
}

// waitBarrier expects the (phase, gen) token from the predecessor within
// the peer timeout.
func (e *Endpoint) waitBarrier(phase byte, gen uint64) error {
	timer := time.NewTimer(e.opts.PeerTimeout)
	defer timer.Stop()
	select {
	case tok := <-e.barCh:
		if tok.phase != phase || tok.gen != gen {
			cause := fmt.Errorf("barrier token (phase %d, gen %d) out of order, want (%d, %d)",
				tok.phase, tok.gen, phase, gen)
			e.abort(e.prev(), cause)
			return e.err()
		}
		return nil
	case <-e.brokenCh:
		return e.err()
	case <-timer.C:
		cause := fmt.Errorf("barrier token overdue from rank %d after %v", e.prev(), e.opts.PeerTimeout)
		e.abort(e.prev(), cause)
		return e.err()
	}
}

// ---- in-process group ------------------------------------------------

// Group runs every rank of a TCP ring inside one process over loopback
// sockets — the transport the fleet uses for `-transport tcp`, and the
// harness the bitwise-equivalence tests drive.  It implements
// cluster.Transport by fanning each per-rank call out to that rank's
// Endpoint; a failure detected by any endpoint breaks all of them and is
// reported once per dead rank.
type Group struct {
	eps []*Endpoint

	mu     sync.Mutex
	dead   []int
	closed bool
	opts   Options
	// peerFails counts ranks declared dead directly through the group
	// (e.g. an injected sever); endpoint-detected failures count on the
	// endpoint that noticed them.
	peerFails atomic.Int64
}

// NewLoopbackGroup builds an n-rank TCP ring over 127.0.0.1 listeners.
func NewLoopbackGroup(n int, opts Options) (*Group, error) {
	opts = opts.withDefaults()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := Listen("")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, fmt.Errorf("tcptransport: rank %d listener: %w", i, err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	g := &Group{opts: opts}
	for i := 0; i < n; i++ {
		ep := NewEndpoint(i, n, lns[i], addrs[(i+1)%n], opts)
		ep.mu.Lock()
		ep.onAbort = g.abort
		ep.mu.Unlock()
		g.eps = append(g.eps, ep)
	}
	return g, nil
}

// abort is the group-wide failure cascade: record the dead rank once, run
// the user callback, break every endpoint.
func (g *Group) abort(rank int, cause error) {
	g.mu.Lock()
	notify := false
	if rank >= 0 {
		seen := false
		for _, d := range g.dead {
			if d == rank {
				seen = true
				break
			}
		}
		if !seen {
			g.dead = append(g.dead, rank)
			notify = true
		}
	}
	g.mu.Unlock()
	for _, ep := range g.eps {
		ep.breakLocal(rank, cause)
	}
	if notify && g.opts.OnPeerDeath != nil {
		g.opts.OnPeerDeath(rank, cause)
	}
}

// Size returns the rank count.
func (g *Group) Size() int { return len(g.eps) }

// Endpoint returns rank's endpoint (fault injection, addresses).
func (g *Group) Endpoint(rank int) *Endpoint { return g.eps[rank] }

// Send implements cluster.Transport.
func (g *Group) Send(rank int, chunk []float64) error { return g.eps[rank].sendChunk(chunk) }

// Recv implements cluster.Transport.
func (g *Group) Recv(rank int) ([]float64, error) { return g.eps[rank].recvChunk() }

// Barrier implements cluster.Transport.
func (g *Group) Barrier(rank int) error { return g.eps[rank].barrier() }

// Abort implements cluster.Transport.
func (g *Group) Abort(rank int, cause error) {
	if rank >= 0 {
		g.peerFails.Add(1)
	}
	g.abort(rank, cause)
}

// CutConn implements cluster.ConnCutter: sever rank's outgoing connection
// so its next send exercises the reconnect path.
func (g *Group) CutConn(rank int) { g.eps[rank].CutConn(rank) }

// Dead returns the ranks declared dead, in detection order.
func (g *Group) Dead() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.dead...)
}

// Stats sums the endpoints' measured wire counters.
func (g *Group) Stats() cluster.TransportStats {
	total := cluster.TransportStats{Kind: "tcp", PeerFailures: g.peerFails.Load()}
	for _, ep := range g.eps {
		total.Add(ep.Stats())
	}
	return total
}

// Close tears every endpoint down.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	for _, ep := range g.eps {
		ep.Close()
	}
	return nil
}
