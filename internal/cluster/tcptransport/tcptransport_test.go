package tcptransport

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"fekf/internal/cluster"
)

func testOpts(t *testing.T) Options {
	return Options{RingID: t.Name()}
}

func newGroup(t *testing.T, n int, opts Options) *Group {
	t.Helper()
	g, err := NewLoopbackGroup(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// exchange runs one send/recv/barrier round on every rank concurrently.
func exchange(t *testing.T, tr cluster.Transport, payload func(rank int) []float64) [][]float64 {
	t.Helper()
	n := tr.Size()
	got := make([][]float64, n)
	errs := make([]error, 2*n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := tr.Send(rank, payload(rank)); err != nil {
				errs[2*rank] = err
				return
			}
			buf, err := tr.Recv(rank)
			if err != nil {
				errs[2*rank] = err
				return
			}
			got[rank] = append([]float64(nil), buf...)
			errs[2*rank+1] = tr.Barrier(rank)
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("exchange: %v", err)
		}
	}
	return got
}

func TestGroupDeliversAroundRing(t *testing.T) {
	g := newGroup(t, 3, testOpts(t))
	got := exchange(t, g, func(rank int) []float64 {
		return []float64{float64(rank), float64(rank) * 10}
	})
	for rank := 0; rank < 3; rank++ {
		prev := float64((rank + 2) % 3)
		if got[rank][0] != prev || got[rank][1] != prev*10 {
			t.Fatalf("rank %d received %v, want from predecessor %v", rank, got[rank], prev)
		}
	}
	st := g.Stats()
	if st.Kind != "tcp" || st.BytesSent == 0 || st.Msgs == 0 {
		t.Fatalf("stats not measuring: %+v", st)
	}
}

// CutConn mid-stream: the next send reconnects with a fresh generation and
// the payload still arrives intact.
func TestReconnectAfterCut(t *testing.T) {
	g := newGroup(t, 2, testOpts(t))
	exchange(t, g, func(rank int) []float64 { return []float64{1} })
	g.CutConn(0)
	got := exchange(t, g, func(rank int) []float64 { return []float64{float64(rank) + 7} })
	if got[1][0] != 7 {
		t.Fatalf("post-cut payload corrupted: %v", got[1])
	}
	if st := g.Stats(); st.Reconnects < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", st.Reconnects)
	}
	if dead := g.Dead(); len(dead) != 0 {
		t.Fatalf("a cut is transient, but Dead() = %v", dead)
	}
}

// A silent peer (heartbeats stopped, nothing sent) is declared dead within
// the peer timeout and blocked operations fail with ErrRingBroken.
func TestHeartbeatTimeoutDeclaresPeerDead(t *testing.T) {
	opts := testOpts(t)
	opts.PeerTimeout = 300 * time.Millisecond
	opts.StartupGrace = time.Second
	var deadRank int
	var once sync.Once
	deadCh := make(chan struct{})
	opts.OnPeerDeath = func(rank int, cause error) {
		once.Do(func() {
			deadRank = rank
			close(deadCh)
		})
	}
	g := newGroup(t, 3, opts)
	exchange(t, g, func(rank int) []float64 { return []float64{1} })
	// Simulate rank 1's process dying: kill its endpoint outright.  Its
	// heartbeats stop; rank 2 (its successor) must notice.
	g.Endpoint(1).Close()
	select {
	case <-deadCh:
	case <-time.After(10 * time.Second):
		t.Fatal("silent peer never declared dead")
	}
	if deadRank != 1 {
		t.Fatalf("rank %d declared dead, want 1", deadRank)
	}
	if err := g.Barrier(0); !errors.Is(err, cluster.ErrRingBroken) {
		t.Fatalf("post-death barrier returned %v, want ErrRingBroken", err)
	}
	found := false
	for _, d := range g.Dead() {
		if d == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Dead() = %v, want rank 1", g.Dead())
	}
}

// Handshake validation: wrong magic, wrong ring id, wrong rank and stale
// generations are all rejected without disturbing the ring.
func TestHandshakeRejectsImpostors(t *testing.T) {
	opts := testOpts(t)
	opts.StartupGrace = 5 * time.Second
	ln, err := Listen("")
	if err != nil {
		t.Fatal(err)
	}
	ep := NewEndpoint(1, 3, ln, "", opts)
	t.Cleanup(func() { ep.Close() })

	dial := func(t *testing.T, hs []byte) byte {
		t.Helper()
		conn, err := net.DialTimeout("tcp", ep.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(hs); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var verdict [1]byte
		if _, err := io.ReadFull(conn, verdict[:]); err != nil {
			return 0 // closed without a verdict counts as rejection
		}
		return verdict[0]
	}
	mkHS := func(ringID string, rank uint32, gen uint64, m uint32) []byte {
		id := []byte(ringID)
		hs := binary.LittleEndian.AppendUint32(nil, m)
		hs = append(hs, version)
		hs = binary.LittleEndian.AppendUint16(hs, uint16(len(id)))
		hs = append(hs, id...)
		hs = binary.LittleEndian.AppendUint32(hs, rank)
		return binary.LittleEndian.AppendUint64(hs, gen)
	}
	if v := dial(t, mkHS(opts.RingID, 99, 1, magic)); v != 0 {
		t.Fatal("handshake from a non-predecessor rank accepted")
	}
	if v := dial(t, mkHS("other-ring", 0, 1, magic)); v != 0 {
		t.Fatal("handshake from a foreign ring accepted")
	}
	if v := dial(t, mkHS(opts.RingID, 0, 1, 0xdeadbeef)); v != 0 {
		t.Fatal("handshake with bad magic accepted")
	}
	// The genuine predecessor (rank 0) with a fresh generation is accepted;
	// replaying the same generation is stale and rejected.
	if v := dial(t, mkHS(opts.RingID, 0, 5, magic)); v != 1 {
		t.Fatal("genuine predecessor rejected")
	}
	if v := dial(t, mkHS(opts.RingID, 0, 5, magic)); v != 0 {
		t.Fatal("stale generation accepted")
	}
}

// Two endpoints wired manually by address — the shape of the cross-process
// smoke — must interoperate as a 2-rank ring.
func TestStandaloneEndpointsInteroperate(t *testing.T) {
	opts := testOpts(t)
	ln0, err := Listen("")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := Listen("")
	if err != nil {
		t.Fatal(err)
	}
	ep0 := NewEndpoint(0, 2, ln0, ln1.Addr().String(), opts)
	ep1 := NewEndpoint(1, 2, ln1, ln0.Addr().String(), opts)
	t.Cleanup(func() { ep0.Close(); ep1.Close() })

	var wg sync.WaitGroup
	var got0, got1 []float64
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := ep0.Send(0, []float64{3.5}); err != nil {
			errs[0] = err
			return
		}
		buf, err := ep0.Recv(0)
		if err != nil {
			errs[0] = err
			return
		}
		got0 = append(got0, buf...)
		errs[0] = ep0.Barrier(0)
	}()
	go func() {
		defer wg.Done()
		if err := ep1.Send(1, []float64{4.5}); err != nil {
			errs[1] = err
			return
		}
		buf, err := ep1.Recv(1)
		if err != nil {
			errs[1] = err
			return
		}
		got1 = append(got1, buf...)
		errs[1] = ep1.Barrier(1)
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if got0[0] != 4.5 || got1[0] != 3.5 {
		t.Fatalf("payloads crossed wrong: ep0 got %v, ep1 got %v", got0, got1)
	}
	if err := ep0.Send(1, nil); err == nil {
		t.Fatal("endpoint accepted an operation for a rank it does not own")
	}
}

// Send retries must be bounded: with no listener to reach, the send fails
// after RetryMax attempts and the successor is declared dead.
func TestSendRetriesAreBounded(t *testing.T) {
	opts := testOpts(t)
	opts.RetryMax = 3
	opts.DialTimeout = 100 * time.Millisecond
	opts.BackoffBase = time.Millisecond
	ln, err := Listen("")
	if err != nil {
		t.Fatal(err)
	}
	// Successor address points at a dead port: grab one and close it.
	deadLn, err := Listen("")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()
	ep := NewEndpoint(0, 2, ln, deadAddr, opts)
	t.Cleanup(func() { ep.Close() })

	start := time.Now()
	err = ep.Send(0, []float64{1})
	if !errors.Is(err, cluster.ErrRingBroken) {
		t.Fatalf("send to dead successor returned %v, want ErrRingBroken", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("bounded retries took unreasonably long")
	}
	if st := ep.Stats(); st.Retries != int64(opts.RetryMax-1) {
		t.Fatalf("Retries = %d, want %d", st.Retries, opts.RetryMax-1)
	}
	found := false
	for _, d := range ep.Dead() {
		if d == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Dead() = %v, want successor rank 1", ep.Dead())
	}
}
