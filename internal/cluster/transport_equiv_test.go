// Cross-transport equivalence: the ring schedule must reduce to exactly
// the same bits whether the chunks move over in-process channels or real
// TCP loopback sockets.  External test package so it can import
// tcptransport without a cycle.
package cluster_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fekf/internal/cluster"
	"fekf/internal/cluster/tcptransport"
	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
)

func loopbackRing(t testing.TB, size int) *cluster.Ring {
	t.Helper()
	g, err := tcptransport.NewLoopbackGroup(size, tcptransport.Options{RingID: t.Name()})
	if err != nil {
		t.Fatal(err)
	}
	ring := cluster.NewRingOver(g, cluster.RoCE25())
	t.Cleanup(func() { ring.Close() })
	return ring
}

func ranksInput(seed int64, size, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, size)
	for w := range data {
		data[w] = make([]float64, n)
		for i := range data[w] {
			data[w][i] = rng.NormFloat64()
		}
	}
	return data
}

func drive(t *testing.T, ring *cluster.Ring, data [][]float64) {
	t.Helper()
	errs := make([]error, len(data))
	var wg sync.WaitGroup
	for rank := range data {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = ring.Allreduce(rank, data[rank])
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// Bitwise sweep: chan vs TCP-loopback across ring sizes and shapes.
func TestAllreduceBitwiseChanVsTCP(t *testing.T) {
	for _, size := range []int{2, 3, 4} {
		tcpRing := loopbackRing(t, size)
		for _, n := range []int{1, 3, 16, 100} {
			seed := int64(size*1000 + n)
			chanData := ranksInput(seed, size, n)
			tcpData := ranksInput(seed, size, n)
			drive(t, cluster.NewRing(size, cluster.RoCE25()), chanData)
			drive(t, tcpRing, tcpData)
			for w := 0; w < size; w++ {
				for i := 0; i < n; i++ {
					if chanData[w][i] != tcpData[w][i] {
						t.Fatalf("size %d n %d rank %d elem %d: chan %x != tcp %x",
							size, n, w, i, chanData[w][i], tcpData[w][i])
					}
				}
			}
		}
		if st := tcpRing.TransportStats(); st.BytesSent == 0 || st.Kind != "tcp" {
			t.Fatalf("tcp ring reported no measured traffic: %+v", st)
		}
	}
}

func equivSetup(t *testing.T) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 8, SampleEvery: 4, EquilSteps: 20, Tiny: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("base", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

// Full training steps must be bitwise identical across transports —
// weights after healthy steps AND after a cooperative rank failure (the
// empty-shard path still runs every collective).
func TestRankStepBitwiseChanVsTCP(t *testing.T) {
	ds, m := equivSetup(t)
	const workers = 3
	idx := []int{0, 1, 2, 3, 4, 5}

	run := func(ring *cluster.Ring) []float64 {
		dp := cluster.NewDataParallelFEKFOver(ring, m)
		if _, err := dp.Step(ds, idx); err != nil {
			t.Fatal(err)
		}
		// Cooperative mid-run rank failure: rank 1 contributes zero
		// partials but the collectives all run.
		dp.SetEnvFail(func(rank int) error {
			if rank == 1 {
				return errors.New("injected failure")
			}
			return nil
		})
		if _, err := dp.Step(ds, idx); err == nil {
			t.Fatal("injected failure must surface")
		}
		dp.SetEnvFail(nil)
		if _, err := dp.Step(ds, idx); err != nil {
			t.Fatal(err)
		}
		if drift := dp.ReplicaDrift(); drift != 0 {
			t.Fatalf("replicas drifted by %v", drift)
		}
		return dp.Model().Params.FlattenValues()
	}

	chanW := run(cluster.NewRing(workers, cluster.RoCE25()))
	tcpW := run(loopbackRing(t, workers))
	for i := range chanW {
		if chanW[i] != tcpW[i] {
			t.Fatalf("weight %d: chan %x != tcp %x — transports not bitwise equivalent",
				i, chanW[i], tcpW[i])
		}
	}
}

// A FaultCut mid-collective must be survived by the TCP reconnect path
// with a bitwise-identical result and nonzero reconnect counters.
func TestTCPReconnectKeepsCollectiveBitwise(t *testing.T) {
	const size, n = 3, 64
	clean := ranksInput(42, size, n)
	drive(t, cluster.NewRing(size, cluster.RoCE25()), clean)

	g, err := tcptransport.NewLoopbackGroup(size, tcptransport.Options{RingID: t.Name()})
	if err != nil {
		t.Fatal(err)
	}
	ft := cluster.NewFaultyTransport(g,
		cluster.FaultRule{Rank: 1, Msg: 1, Kind: cluster.FaultCut},
		cluster.FaultRule{Rank: 2, Msg: 2, Kind: cluster.FaultCut})
	ring := cluster.NewRingOver(ft, cluster.RoCE25())
	defer ring.Close()

	cut := ranksInput(42, size, n)
	drive(t, ring, cut)
	for w := 0; w < size; w++ {
		for i := 0; i < n; i++ {
			if cut[w][i] != clean[w][i] {
				t.Fatalf("rank %d elem %d: %x != %x after reconnect", w, i, cut[w][i], clean[w][i])
			}
		}
	}
	if ft.Fired() != 2 {
		t.Fatalf("%d cut rules fired, want 2", ft.Fired())
	}
	if st := ring.TransportStats(); st.Reconnects < 2 {
		t.Fatalf("Reconnects = %d, want >= 2 (stats %+v)", st.Reconnects, st)
	}
}

// A severed TCP rank must break the collective for the survivors (no
// hang) and report the dead rank.
func TestTCPSeverBreaksRingWithoutHanging(t *testing.T) {
	const size, n = 3, 32
	g, err := tcptransport.NewLoopbackGroup(size, tcptransport.Options{
		RingID:      t.Name(),
		PeerTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft := cluster.NewFaultyTransport(g, cluster.FaultRule{Rank: 1, Msg: 2, Kind: cluster.FaultSever})
	ring := cluster.NewRingOver(ft, cluster.RoCE25())
	defer ring.Close()

	data := ranksInput(5, size, n)
	errs := make([]error, size)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for rank := 0; rank < size; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				errs[rank] = ring.Allreduce(rank, data[rank])
			}(rank)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("severed TCP rank hung the collective")
	}
	broken := 0
	for _, err := range errs {
		if errors.Is(err, cluster.ErrRingBroken) {
			broken++
		}
	}
	if broken == 0 {
		t.Fatalf("no rank saw ErrRingBroken: %v", errs)
	}
	foundDead := false
	for _, d := range ft.Dead() {
		if d == 1 {
			foundDead = true
		}
	}
	if !foundDead {
		t.Fatalf("Dead() = %v, want rank 1", ft.Dead())
	}
}

// BenchmarkAllreduceTransport compares the in-process channel transport
// against TCP loopback for the gradient-sized collective.
func BenchmarkAllreduceTransport(b *testing.B) {
	const size, n = 3, 4096
	bench := func(b *testing.B, ring *cluster.Ring) {
		data := ranksInput(1, size, n)
		var wg sync.WaitGroup
		start := make([]chan struct{}, size)
		for rank := 0; rank < size; rank++ {
			start[rank] = make(chan struct{})
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for range start[rank] {
					ring.Allreduce(rank, data[rank])
				}
			}(rank)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for rank := 0; rank < size; rank++ {
				start[rank] <- struct{}{}
			}
		}
		b.StopTimer()
		for rank := range start {
			close(start[rank])
		}
		wg.Wait()
		b.SetBytes(int64(n) * 8)
	}
	b.Run("chan", func(b *testing.B) {
		bench(b, cluster.NewRing(size, cluster.RoCE25()))
	})
	b.Run("tcp-loopback", func(b *testing.B) {
		bench(b, loopbackRing(b, size))
	})
}
