package cluster

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

// runAllreduce drives the collective from size goroutines.
func runAllreduce(r *Ring, data [][]float64) {
	var wg sync.WaitGroup
	for rank := range data {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r.Allreduce(rank, data[rank])
		}(rank)
	}
	wg.Wait()
}

func TestRingAllreduceMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{1, 3, 16, 100} {
			ring := NewRing(size, RoCE25())
			data := make([][]float64, size)
			want := make([]float64, n)
			for w := 0; w < size; w++ {
				data[w] = make([]float64, n)
				for i := range data[w] {
					data[w][i] = rng.NormFloat64()
					want[i] += data[w][i]
				}
			}
			runAllreduce(ring, data)
			for w := 0; w < size; w++ {
				for i := 0; i < n; i++ {
					if math.Abs(data[w][i]-want[i]) > 1e-12 {
						t.Fatalf("size %d n %d rank %d elem %d: %v want %v",
							size, n, w, i, data[w][i], want[i])
					}
				}
			}
		}
	}
}

// Property: allreduce result is identical on every rank for random inputs.
func TestPropAllreduceRanksAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + rng.Intn(4)
		n := 1 + rng.Intn(40)
		ring := NewRing(size, RoCE25())
		data := make([][]float64, size)
		for w := range data {
			data[w] = make([]float64, n)
			for i := range data[w] {
				data[w][i] = rng.NormFloat64()
			}
		}
		runAllreduce(ring, data)
		for w := 1; w < size; w++ {
			for i := 0; i < n; i++ {
				if data[w][i] != data[0][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRingWireBytesAccounting(t *testing.T) {
	const size, n = 4, 64
	ring := NewRing(size, RoCE25())
	data := make([][]float64, size)
	for w := range data {
		data[w] = make([]float64, n)
	}
	runAllreduce(ring, data)
	// each rank sends 2(size-1) chunks of n/size elements
	want := int64(size) * 2 * int64(size-1) * int64(n/size) * 8
	if got := ring.WireBytes(); got != want {
		t.Fatalf("wire bytes = %d want %d", got, want)
	}
	if ring.ModeledNs() <= 0 {
		t.Fatal("modeled comm time not accounted")
	}
}

func TestRingSizeOneIsFree(t *testing.T) {
	ring := NewRing(1, RoCE25())
	data := []float64{1, 2, 3}
	ring.Allreduce(0, data)
	if ring.WireBytes() != 0 {
		t.Fatal("single-rank allreduce must not communicate")
	}
}

func clusterSetup(t *testing.T) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 8, SampleEvery: 4, EquilSteps: 20, Tiny: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("base", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

// TestDistributedMatchesSingleNode: 2-rank data-parallel FEKF must produce
// the same weights as single-node FEKF on the same batch, up to
// floating-point reduction order.
func TestDistributedMatchesSingleNode(t *testing.T) {
	ds, m := clusterSetup(t)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}

	single := optimize.NewFEKF()
	mS := m.CloneFor(device.New("s", device.A100()))
	for step := 0; step < 2; step++ {
		if _, err := single.Step(mS, ds, idx); err != nil {
			t.Fatal(err)
		}
	}

	dp := NewDataParallelFEKF(2, m)
	for step := 0; step < 2; step++ {
		if _, err := dp.Step(ds, idx); err != nil {
			t.Fatal(err)
		}
	}

	ws := mS.Params.FlattenValues()
	wd := dp.Model().Params.FlattenValues()
	for i := range ws {
		if math.Abs(ws[i]-wd[i]) > 1e-8*(1+math.Abs(ws[i])) {
			t.Fatalf("weight %d: single %v distributed %v", i, ws[i], wd[i])
		}
	}
}

// TestReplicasStayConsistent is the paper's no-P-communication claim: all
// ranks' weights (and hence P) remain identical without exchanging P.
func TestReplicasStayConsistent(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(4, m)
	for step := 0; step < 3; step++ {
		if _, err := dp.Step(ds, []int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
			t.Fatal(err)
		}
	}
	if drift := dp.ReplicaDrift(); drift > 1e-9 {
		t.Fatalf("replicas drifted by %v", drift)
	}
}

// TestCommunicationVolumeIsGradientsOnly checks the Section 3.3 analysis:
// per iteration the wire carries O(updates · 2·N) doubles (gradients +
// the two reduction scalars), nothing of the O(N·N_b) covariance.
func TestCommunicationVolumeIsGradientsOnly(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(2, m)
	if _, err := dp.Step(ds, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	n := int64(m.Params.NumParams())
	// 5 updates (1 energy + 4 force), each allreducing n+2 doubles over 2
	// ranks: each rank sends 2(r-1)=2 chunks covering (n+2) elements total.
	wantMax := 5 * 2 * 2 * (n + 2) * 8
	if got := dp.Ring().WireBytes(); got > wantMax {
		t.Fatalf("wire bytes %d exceed gradient-only budget %d", got, wantMax)
	}
	// P would add N_b² ≫ n doubles per block; verify we are far below one
	// block's worth.
	pBytes := dp.states[0].PBytes()
	if got := dp.Ring().WireBytes(); got >= pBytes {
		t.Fatalf("wire bytes %d not below a single P exchange %d", got, pBytes)
	}
}

func TestModeledIterationTime(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(2, m)
	if _, err := dp.Step(ds, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if dp.ModeledIterationNs() <= 0 {
		t.Fatal("modeled time not accounted")
	}
	if dp.Name() != "FEKF[2 GPUs]" {
		t.Fatalf("name = %q", dp.Name())
	}
	if dp.Workers() != 2 || len(dp.Devices()) != 2 {
		t.Fatal("worker bookkeeping wrong")
	}
}
