package cluster

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

// runAllreduce drives the collective from size goroutines.
func runAllreduce(r *Ring, data [][]float64) {
	var wg sync.WaitGroup
	for rank := range data {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r.Allreduce(rank, data[rank])
		}(rank)
	}
	wg.Wait()
}

func TestRingAllreduceMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{1, 3, 16, 100} {
			ring := NewRing(size, RoCE25())
			data := make([][]float64, size)
			want := make([]float64, n)
			for w := 0; w < size; w++ {
				data[w] = make([]float64, n)
				for i := range data[w] {
					data[w][i] = rng.NormFloat64()
					want[i] += data[w][i]
				}
			}
			runAllreduce(ring, data)
			for w := 0; w < size; w++ {
				for i := 0; i < n; i++ {
					if math.Abs(data[w][i]-want[i]) > 1e-12 {
						t.Fatalf("size %d n %d rank %d elem %d: %v want %v",
							size, n, w, i, data[w][i], want[i])
					}
				}
			}
		}
	}
}

// Property: allreduce result is identical on every rank for random inputs.
func TestPropAllreduceRanksAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 2 + rng.Intn(4)
		n := 1 + rng.Intn(40)
		ring := NewRing(size, RoCE25())
		data := make([][]float64, size)
		for w := range data {
			data[w] = make([]float64, n)
			for i := range data[w] {
				data[w][i] = rng.NormFloat64()
			}
		}
		runAllreduce(ring, data)
		for w := 1; w < size; w++ {
			for i := 0; i < n; i++ {
				if data[w][i] != data[0][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRingWireBytesAccounting(t *testing.T) {
	const size, n = 4, 64
	ring := NewRing(size, RoCE25())
	data := make([][]float64, size)
	for w := range data {
		data[w] = make([]float64, n)
	}
	runAllreduce(ring, data)
	// each rank sends 2(size-1) chunks of n/size elements
	want := int64(size) * 2 * int64(size-1) * int64(n/size) * 8
	if got := ring.WireBytes(); got != want {
		t.Fatalf("wire bytes = %d want %d", got, want)
	}
	if ring.ModeledNs() <= 0 {
		t.Fatal("modeled comm time not accounted")
	}
}

func TestRingSizeOneIsFree(t *testing.T) {
	ring := NewRing(1, RoCE25())
	data := []float64{1, 2, 3}
	ring.Allreduce(0, data)
	if ring.WireBytes() != 0 {
		t.Fatal("single-rank allreduce must not communicate")
	}
}

func clusterSetup(t *testing.T) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 8, SampleEvery: 4, EquilSteps: 20, Tiny: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("base", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

// TestDistributedMatchesSingleNode: 2-rank data-parallel FEKF must produce
// the same weights as single-node FEKF on the same batch, up to
// floating-point reduction order.
func TestDistributedMatchesSingleNode(t *testing.T) {
	ds, m := clusterSetup(t)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}

	single := optimize.NewFEKF()
	mS := m.CloneFor(device.New("s", device.A100()))
	for step := 0; step < 2; step++ {
		if _, err := single.Step(mS, ds, idx); err != nil {
			t.Fatal(err)
		}
	}

	dp := NewDataParallelFEKF(2, m)
	for step := 0; step < 2; step++ {
		if _, err := dp.Step(ds, idx); err != nil {
			t.Fatal(err)
		}
	}

	ws := mS.Params.FlattenValues()
	wd := dp.Model().Params.FlattenValues()
	for i := range ws {
		if math.Abs(ws[i]-wd[i]) > 1e-8*(1+math.Abs(ws[i])) {
			t.Fatalf("weight %d: single %v distributed %v", i, ws[i], wd[i])
		}
	}
}

// TestReplicasStayConsistent is the paper's no-P-communication claim: all
// ranks' weights (and hence P) remain identical without exchanging P.
func TestReplicasStayConsistent(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(4, m)
	for step := 0; step < 3; step++ {
		if _, err := dp.Step(ds, []int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
			t.Fatal(err)
		}
	}
	if drift := dp.ReplicaDrift(); drift > 1e-9 {
		t.Fatalf("replicas drifted by %v", drift)
	}
}

// TestCommunicationVolumeIsGradientsOnly checks the Section 3.3 analysis:
// per iteration the wire carries O(updates · 2·N) doubles (gradients +
// the two reduction scalars), nothing of the O(N·N_b) covariance.
func TestCommunicationVolumeIsGradientsOnly(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(2, m)
	if _, err := dp.Step(ds, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	n := int64(m.Params.NumParams())
	// 5 updates (1 energy + 4 force), each allreducing n+2 doubles over 2
	// ranks: each rank sends 2(r-1)=2 chunks covering (n+2) elements total.
	wantMax := 5 * 2 * 2 * (n + 2) * 8
	if got := dp.Ring().WireBytes(); got > wantMax {
		t.Fatalf("wire bytes %d exceed gradient-only budget %d", got, wantMax)
	}
	// P would add N_b² ≫ n doubles per block; verify we are far below one
	// block's worth.
	pBytes := dp.states[0].PBytes()
	if got := dp.Ring().WireBytes(); got >= pBytes {
		t.Fatalf("wire bytes %d not below a single P exchange %d", got, pBytes)
	}
}

func TestModeledIterationTime(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(2, m)
	if _, err := dp.Step(ds, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if dp.ModeledIterationNs() <= 0 {
		t.Fatal("modeled time not accounted")
	}
	if dp.Name() != "FEKF[2 GPUs]" {
		t.Fatalf("name = %q", dp.Name())
	}
	if dp.Workers() != 2 || len(dp.Devices()) != 2 {
		t.Fatal("worker bookkeeping wrong")
	}
}

// TestAllreduceModeledTimeChargesMaxChunk: with uneven chunks (size does
// not divide the element count) every ring step must be charged for the
// largest chunk in flight, since all chunks move concurrently and the
// busiest link bounds the step.
func TestAllreduceModeledTimeChargesMaxChunk(t *testing.T) {
	const size, n = 3, 10 // chunk sizes 3,3,4 → max 4
	ring := NewRing(size, RoCE25())
	data := make([][]float64, size)
	for w := range data {
		data[w] = make([]float64, n)
	}
	runAllreduce(ring, data)
	model := RoCE25()
	steps := 2 * (size - 1)
	want := float64(steps) * (model.StepLatencyNs + 4*8/model.BytesPerNs)
	if got := ring.ModeledNs(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("modeled ns = %v want %v (max-chunk charging)", got, want)
	}
}

// TestInjectedRankFailureKeepsReplicasConsistent: when one rank's
// environment build fails mid-step, every rank must still apply the
// identical reduced update, so the replicas stay bitwise consistent and
// training can continue.
func TestInjectedRankFailureKeepsReplicasConsistent(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(3, m)
	idx := []int{0, 1, 2, 3, 4, 5}
	if _, err := dp.Step(ds, idx); err != nil {
		t.Fatal(err)
	}
	failures := 0
	dp.envFail = func(rank int) error {
		if rank == 1 {
			failures++
			return errors.New("injected env failure")
		}
		return nil
	}
	if _, err := dp.Step(ds, idx); err == nil {
		t.Fatal("injected failure must surface as a step error")
	}
	if failures == 0 {
		t.Fatal("failure hook never fired")
	}
	if drift := dp.ReplicaDrift(); drift != 0 {
		t.Fatalf("replicas drifted by %v after a rank failure", drift)
	}
	// The survivors' data must still have advanced training: a healthy
	// follow-up step keeps the replicas exact.
	dp.envFail = nil
	if _, err := dp.Step(ds, idx); err != nil {
		t.Fatal(err)
	}
	if drift := dp.ReplicaDrift(); drift != 0 {
		t.Fatalf("replicas drifted by %v on the step after a failure", drift)
	}
}

// TestAllRanksFailingAbortsAtomically: if no rank contributes data, the
// step must abort before mutating any optimizer or weight state.
func TestAllRanksFailingAbortsAtomically(t *testing.T) {
	ds, m := clusterSetup(t)
	dp := NewDataParallelFEKF(2, m)
	idx := []int{0, 1, 2, 3}
	if _, err := dp.Step(ds, idx); err != nil {
		t.Fatal(err)
	}
	before := dp.Model().Params.FlattenValues()
	lambda := dp.states[0].Lambda
	dp.envFail = func(rank int) error { return errors.New("injected total failure") }
	if _, err := dp.Step(ds, idx); err == nil {
		t.Fatal("total failure must surface as a step error")
	}
	after := dp.Model().Params.FlattenValues()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("weight %d mutated by an all-failed step", i)
		}
	}
	if dp.states[0].Lambda != lambda {
		t.Fatal("lambda schedule advanced on an all-failed step")
	}
	if drift := dp.ReplicaDrift(); drift != 0 {
		t.Fatalf("replicas drifted by %v after total failure", drift)
	}
}

// TestDistributedStepReportsForceABE: the distributed StepInfo must honor
// the single-device contract and report the batch-global mean absolute
// force-component error.
func TestDistributedStepReportsForceABE(t *testing.T) {
	ds, m := clusterSetup(t)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}

	single := optimize.NewFEKF()
	mS := m.CloneFor(device.New("s", device.A100()))
	infoS, err := single.Step(mS, ds, idx)
	if err != nil {
		t.Fatal(err)
	}

	dp := NewDataParallelFEKF(2, m)
	infoD, err := dp.Step(ds, idx)
	if err != nil {
		t.Fatal(err)
	}
	if infoD.ForceABE == 0 {
		t.Fatal("distributed StepInfo dropped ForceABE")
	}
	if rel := math.Abs(infoD.ForceABE-infoS.ForceABE) / infoS.ForceABE; rel > 1e-8 {
		t.Fatalf("distributed ForceABE %v vs single-device %v (rel %v)",
			infoD.ForceABE, infoS.ForceABE, rel)
	}
	if infoD.EnergyABE == 0 {
		t.Fatal("distributed StepInfo dropped EnergyABE")
	}
}
