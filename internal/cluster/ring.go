// Package cluster simulates the paper's multi-GPU data-parallel training:
// worker goroutines stand in for GPU ranks, exchanging gradient chunks
// over channels with a real ring-allreduce (scatter-reduce + allgather, the
// Horovod algorithm), while a cost model accounts wire bytes and modeled
// transfer time on the paper's 25 GB/s RoCE interconnect.
//
// The central scalability property being reproduced (Section 3.3): FEKF
// allreduces only the reduced gradient g and the scalar ABE, never the
// error-covariance blocks P — averaging g and ABE keeps every rank's P
// replica bit-identical, so P communication is eliminated entirely,
// whereas the fusiform Naive-EKF would ship O((r−1)·N·N_b) covariance
// bytes per iteration.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Interconnect models the cluster fabric.
type Interconnect struct {
	// BytesPerNs is the link bandwidth (paper: 25 GB/s RoCE = 25 B/ns).
	BytesPerNs float64
	// StepLatencyNs is the per-message latency of one ring step.
	StepLatencyNs float64
}

// RoCE25 returns the paper's interconnect model.
func RoCE25() Interconnect { return Interconnect{BytesPerNs: 25, StepLatencyNs: 5000} }

// Ring is an allreduce communicator over r in-process ranks.
type Ring struct {
	size  int
	model Interconnect

	// links[i] carries messages from rank i-1 to rank i.
	links []chan []float64

	wireBytes atomic.Int64
	// modeled transfer picoseconds accumulated over all operations
	modeledPs atomic.Int64
	// ops counts completed collective operations (one per Allreduce,
	// regardless of rank count); the pipeline accounting tests assert it
	// is identical with overlap on and off (no double-charged stages).
	ops atomic.Int64
	// barrier support for lockstep phases
	mu      sync.Mutex
	arrived int
	gen     int
	cond    *sync.Cond
}

// NewRing creates a communicator for size ranks.
func NewRing(size int, model Interconnect) *Ring {
	if size < 1 {
		panic("cluster: ring size must be >= 1")
	}
	r := &Ring{size: size, model: model}
	r.links = make([]chan []float64, size)
	for i := range r.links {
		r.links[i] = make(chan []float64, 1)
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Size returns the number of ranks.
func (r *Ring) Size() int { return r.size }

// WireBytes returns the total bytes that crossed the (simulated) fabric.
func (r *Ring) WireBytes() int64 { return r.wireBytes.Load() }

// ModeledNs returns the modeled cumulative communication time of the
// busiest path (per-rank serialized steps).
func (r *Ring) ModeledNs() float64 { return float64(r.modeledPs.Load()) / 1000 }

// Ops returns the number of collective operations executed (each
// Allreduce counts once, even at ring size 1 where it is communication-
// free).  Overlapping collectives with compute must not change it.
func (r *Ring) Ops() int64 { return r.ops.Load() }

// Barrier blocks until every rank has arrived.
func (r *Ring) Barrier() {
	r.mu.Lock()
	defer r.mu.Unlock()
	gen := r.gen
	r.arrived++
	if r.arrived == r.size {
		r.arrived = 0
		r.gen++
		r.cond.Broadcast()
		return
	}
	for gen == r.gen {
		r.cond.Wait()
	}
}

// send transfers a chunk to the next rank and accounts it.
func (r *Ring) send(rank int, chunk []float64) {
	next := (rank + 1) % r.size
	n := int64(len(chunk)) * 8
	r.wireBytes.Add(n)
	r.links[next] <- chunk
}

// accountStep charges the modeled time of one ring step (all ranks move a
// chunk concurrently, so the step costs one chunk transfer plus latency).
func (r *Ring) accountStep(chunkBytes int64) {
	ns := r.model.StepLatencyNs
	if r.model.BytesPerNs > 0 {
		ns += float64(chunkBytes) / r.model.BytesPerNs
	}
	r.modeledPs.Add(int64(ns * 1000))
}

// Allreduce sums data element-wise across all ranks, in place, using the
// ring scatter-reduce + allgather schedule.  Every rank must call it with
// an equal-length slice; the call blocks until the collective completes.
func (r *Ring) Allreduce(rank int, data []float64) {
	if rank == 0 {
		r.ops.Add(1)
	}
	if r.size == 1 {
		return
	}
	n := len(data)
	bounds := make([][2]int, r.size)
	maxChunk := 0
	for c := 0; c < r.size; c++ {
		lo := c * n / r.size
		hi := (c + 1) * n / r.size
		bounds[c] = [2]int{lo, hi}
		if hi-lo > maxChunk {
			maxChunk = hi - lo
		}
	}
	// Every ring step moves all size chunks concurrently (one per rank), so
	// the step's modeled duration is governed by the largest chunk in
	// flight, not by whichever chunk rank 0 happens to move.
	maxChunkBytes := int64(maxChunk) * 8
	chunkOf := func(c int) []float64 {
		return data[bounds[c][0]:bounds[c][1]]
	}

	// scatter-reduce: after step s, rank i holds the running sum of chunk
	// (i-s-1 mod size) from s+2 ranks.
	for s := 0; s < r.size-1; s++ {
		sendIdx := mod(rank-s, r.size)
		out := chunkOf(sendIdx)
		buf := make([]float64, len(out))
		copy(buf, out)
		r.send(rank, buf)
		in := <-r.links[rank]
		recvIdx := mod(rank-s-1, r.size)
		dst := chunkOf(recvIdx)
		if len(in) != len(dst) {
			panic(fmt.Sprintf("cluster: chunk size mismatch %d vs %d", len(in), len(dst)))
		}
		for k, v := range in {
			dst[k] += v
		}
		if rank == 0 {
			r.accountStep(maxChunkBytes)
		}
		r.Barrier()
	}

	// allgather: circulate the fully reduced chunks.
	for s := 0; s < r.size-1; s++ {
		sendIdx := mod(rank+1-s, r.size)
		out := chunkOf(sendIdx)
		buf := make([]float64, len(out))
		copy(buf, out)
		r.send(rank, buf)
		in := <-r.links[rank]
		recvIdx := mod(rank-s, r.size)
		copy(chunkOf(recvIdx), in)
		if rank == 0 {
			r.accountStep(maxChunkBytes)
		}
		r.Barrier()
	}
}

// AllreduceScalars sums a small fixed set of scalars across ranks (the ABE
// and sample-count exchange, the O(#GPUs) term of the paper's
// communication analysis).
func (r *Ring) AllreduceScalars(rank int, vals []float64) {
	r.Allreduce(rank, vals)
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}
