// Package cluster simulates the paper's multi-GPU data-parallel training:
// worker goroutines stand in for GPU ranks, exchanging gradient chunks
// over a pluggable Transport with a real ring-allreduce (scatter-reduce +
// allgather, the Horovod algorithm), while a cost model accounts wire
// bytes and modeled transfer time on the paper's 25 GB/s RoCE
// interconnect.  The default transport moves chunks over in-process
// channels; internal/cluster/tcptransport runs the same schedule over real
// TCP sockets with deadlines, reconnects and a heartbeat failure detector.
//
// The central scalability property being reproduced (Section 3.3): FEKF
// allreduces only the reduced gradient g and the scalar ABE, never the
// error-covariance blocks P — averaging g and ABE keeps every rank's P
// replica bit-identical, so P communication is eliminated entirely,
// whereas the fusiform Naive-EKF would ship O((r−1)·N·N_b) covariance
// bytes per iteration.
package cluster

import (
	"fmt"
	"sync/atomic"
)

// Interconnect models the cluster fabric.
type Interconnect struct {
	// BytesPerNs is the link bandwidth (paper: 25 GB/s RoCE = 25 B/ns).
	BytesPerNs float64
	// StepLatencyNs is the per-message latency of one ring step.
	StepLatencyNs float64
}

// RoCE25 returns the paper's interconnect model.
func RoCE25() Interconnect { return Interconnect{BytesPerNs: 25, StepLatencyNs: 5000} }

// ringScratch is one rank's reusable collective workspace: the chunk
// bounds table and the outgoing copy buffer.  Reusing them across
// collectives keeps the per-step scalar exchange (ABE + counts) off the
// allocator entirely; the barrier after every ring step guarantees the
// receiver has consumed the previous buffer before it is overwritten, so
// the reduction stays bitwise identical to the allocate-per-call schedule.
type ringScratch struct {
	bounds [][2]int
	buf    []float64
}

// Ring is an allreduce communicator over r ranks.  It owns the collective
// schedule and the modeled RoCE accounting; message delivery, timeouts and
// failure detection belong to the Transport.
type Ring struct {
	size  int
	model Interconnect
	tr    Transport

	wireBytes atomic.Int64
	// modeled transfer picoseconds accumulated over all operations
	modeledPs atomic.Int64
	// ops counts completed collective operations (one per Allreduce,
	// regardless of rank count); the pipeline accounting tests assert it
	// is identical with overlap on and off (no double-charged stages).
	ops atomic.Int64

	scratch []ringScratch
}

// NewRing creates a communicator for size ranks over the in-process
// channel transport.
func NewRing(size int, model Interconnect) *Ring {
	return NewRingOver(NewChanTransport(size), model)
}

// NewRingOver creates a communicator running the ring schedule over an
// arbitrary transport (in-process channels, TCP loopback, a fault-
// injecting wrapper, ...).  The modeled accounting is transport-
// independent: it charges the paper's interconnect regardless of what the
// bytes actually crossed.
func NewRingOver(tr Transport, model Interconnect) *Ring {
	size := tr.Size()
	if size < 1 {
		panic("cluster: ring size must be >= 1")
	}
	return &Ring{
		size:    size,
		model:   model,
		tr:      tr,
		scratch: make([]ringScratch, size),
	}
}

// Size returns the number of ranks.
func (r *Ring) Size() int { return r.size }

// Transport exposes the underlying transport (stats, fault injection).
func (r *Ring) Transport() Transport { return r.tr }

// TransportStats returns the transport's measured traffic counters.
func (r *Ring) TransportStats() TransportStats { return r.tr.Stats() }

// Close releases the transport's resources (sockets, goroutines).
func (r *Ring) Close() error { return r.tr.Close() }

// WireBytes returns the total payload bytes that crossed the (modeled)
// fabric.  The transport's own Stats counts what was measured on the real
// wire, including framing.
func (r *Ring) WireBytes() int64 { return r.wireBytes.Load() }

// ModeledNs returns the modeled cumulative communication time of the
// busiest path (per-rank serialized steps).
func (r *Ring) ModeledNs() float64 { return float64(r.modeledPs.Load()) / 1000 }

// Ops returns the number of collective operations executed (each
// Allreduce counts once, even at ring size 1 where it is communication-
// free).  Overlapping collectives with compute must not change it.
func (r *Ring) Ops() int64 { return r.ops.Load() }

// Barrier blocks rank until every rank has arrived, or fails wrapping
// ErrRingBroken once the ring is aborted.
func (r *Ring) Barrier(rank int) error {
	if r.size == 1 {
		return nil
	}
	return r.tr.Barrier(rank)
}

// send transfers a chunk to the next rank and accounts it.
func (r *Ring) send(rank int, chunk []float64) error {
	r.wireBytes.Add(int64(len(chunk)) * 8)
	return r.tr.Send(rank, chunk)
}

// accountStep charges the modeled time of one ring step (all ranks move a
// chunk concurrently, so the step costs one chunk transfer plus latency).
func (r *Ring) accountStep(chunkBytes int64) {
	ns := r.model.StepLatencyNs
	if r.model.BytesPerNs > 0 {
		ns += float64(chunkBytes) / r.model.BytesPerNs
	}
	r.modeledPs.Add(int64(ns * 1000))
}

// Allreduce sums data element-wise across all ranks, in place, using the
// ring scatter-reduce + allgather schedule.  Every rank must call it with
// an equal-length slice; the call blocks until the collective completes.
// A non-nil error wraps ErrRingBroken: the ring died mid-collective, data
// is in an unspecified partial state, and the caller must not apply it.
func (r *Ring) Allreduce(rank int, data []float64) error {
	if rank == 0 {
		r.ops.Add(1)
	}
	if r.size == 1 {
		return nil
	}
	n := len(data)
	sc := &r.scratch[rank]
	if cap(sc.bounds) < r.size {
		sc.bounds = make([][2]int, r.size)
	}
	bounds := sc.bounds[:r.size]
	maxChunk := 0
	for c := 0; c < r.size; c++ {
		lo := c * n / r.size
		hi := (c + 1) * n / r.size
		bounds[c] = [2]int{lo, hi}
		if hi-lo > maxChunk {
			maxChunk = hi - lo
		}
	}
	if cap(sc.buf) < maxChunk {
		sc.buf = make([]float64, maxChunk)
	}
	// Every ring step moves all size chunks concurrently (one per rank), so
	// the step's modeled duration is governed by the largest chunk in
	// flight, not by whichever chunk rank 0 happens to move.
	maxChunkBytes := int64(maxChunk) * 8
	chunkOf := func(c int) []float64 {
		return data[bounds[c][0]:bounds[c][1]]
	}

	// scatter-reduce: after step s, rank i holds the running sum of chunk
	// (i-s-1 mod size) from s+2 ranks.
	for s := 0; s < r.size-1; s++ {
		sendIdx := mod(rank-s, r.size)
		out := chunkOf(sendIdx)
		buf := sc.buf[:len(out)]
		copy(buf, out)
		if err := r.send(rank, buf); err != nil {
			return err
		}
		in, err := r.tr.Recv(rank)
		if err != nil {
			return err
		}
		recvIdx := mod(rank-s-1, r.size)
		dst := chunkOf(recvIdx)
		if len(in) != len(dst) {
			panic(fmt.Sprintf("cluster: chunk size mismatch %d vs %d", len(in), len(dst)))
		}
		for k, v := range in {
			dst[k] += v
		}
		if rank == 0 {
			r.accountStep(maxChunkBytes)
		}
		if err := r.tr.Barrier(rank); err != nil {
			return err
		}
	}

	// allgather: circulate the fully reduced chunks.
	for s := 0; s < r.size-1; s++ {
		sendIdx := mod(rank+1-s, r.size)
		out := chunkOf(sendIdx)
		buf := sc.buf[:len(out)]
		copy(buf, out)
		if err := r.send(rank, buf); err != nil {
			return err
		}
		in, err := r.tr.Recv(rank)
		if err != nil {
			return err
		}
		recvIdx := mod(rank-s, r.size)
		copy(chunkOf(recvIdx), in)
		if rank == 0 {
			r.accountStep(maxChunkBytes)
		}
		if err := r.tr.Barrier(rank); err != nil {
			return err
		}
	}
	return nil
}

// AllreduceScalars sums a small fixed set of scalars across ranks (the ABE
// and sample-count exchange, the O(#GPUs) term of the paper's
// communication analysis).  It rides the reusable per-rank scratch, so the
// per-step scalar hot path is allocation-free after warm-up.
func (r *Ring) AllreduceScalars(rank int, vals []float64) error {
	return r.Allreduce(rank, vals)
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}
