package cluster_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"fekf/internal/cluster"
	"fekf/internal/cluster/tcptransport"
)

// segTable builds a deterministic segment layout over n elements for the
// given rank count: a few segments per owner, interleaved so owners are
// not contiguous, including a rank that owns nothing when size > 2.
func segTable(n, size int) []cluster.Segment {
	var segs []cluster.Segment
	owner := 0
	step := n/(3*size) + 1
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		o := owner % size
		if size > 2 && o == size-1 {
			o = 0 // leave the last rank ownerless: the pure-forwarder path
		}
		segs = append(segs, cluster.Segment{Lo: lo, Hi: hi, Owner: o})
		owner++
	}
	return segs
}

func runAllgather(t *testing.T, ring *cluster.Ring, size, n int) {
	t.Helper()
	segs := segTable(n, size)
	rng := rand.New(rand.NewSource(42))
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = rng.NormFloat64()
	}
	got := make([][]float64, size)
	for r := range got {
		got[r] = make([]float64, n)
		for i := range got[r] {
			got[r][i] = math.NaN() // poison: only owned/gathered values may survive
		}
		for _, sg := range segs {
			if sg.Owner == r {
				copy(got[r][sg.Lo:sg.Hi], expected[sg.Lo:sg.Hi])
			}
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = ring.AllgatherSegments(rank, got[rank], segs)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < size; r++ {
		for i := range expected {
			if math.Float64bits(got[r][i]) != math.Float64bits(expected[i]) {
				t.Fatalf("rank %d element %d: got %v want %v", r, i, got[r][i], expected[i])
			}
		}
	}
}

func TestAllgatherSegmentsChan(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, 7, 64, 257} {
			ring := cluster.NewRing(size, cluster.RoCE25())
			runAllgather(t, ring, size, n)
		}
	}
}

func TestAllgatherSegmentsTCP(t *testing.T) {
	for _, size := range []int{2, 3, 4} {
		g, err := tcptransport.NewLoopbackGroup(size, tcptransport.Options{RingID: t.Name()})
		if err != nil {
			t.Fatalf("loopback group: %v", err)
		}
		ring := cluster.NewRingOver(g, cluster.RoCE25())
		runAllgather(t, ring, size, 131)
		g.Close()
	}
}
