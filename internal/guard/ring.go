package guard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrNoCheckpoint is returned by LoadNewest when no generation file holds
// a valid frame (and no legacy fallback applies).
var ErrNoCheckpoint = errors.New("guard: no valid checkpoint generation")

// Ring is a retention ring of framed checkpoint generations around a base
// path: `dir/ckpt.gob` spawns `dir/ckpt.000001.gob`, `dir/ckpt.000002.gob`
// … with the sequence number embedded both in the name and the frame
// header.  Writes are crash-safe (temp file, fsync, rename, directory
// fsync) and prune generations beyond the retention count; loads walk the
// generations newest-first, quarantining any file whose frame fails
// validation by renaming it aside with a ".corrupt" suffix.
type Ring struct {
	path string // base checkpoint path; generations insert .NNNNNN before its extension
	keep int

	mu      sync.Mutex
	next    uint64 // next sequence to write (0 = not yet scanned)
	scanned bool
}

// NewRing builds a ring around a base checkpoint path, retaining the last
// keep generations (minimum 1).
func NewRing(path string, keep int) *Ring {
	if keep < 1 {
		keep = 1
	}
	return &Ring{path: path, keep: keep}
}

// Path returns the base checkpoint path the ring was built around.
func (r *Ring) Path() string { return r.path }

// Keep returns the retention count.
func (r *Ring) Keep() int { return r.keep }

// splitPath returns the base path split around the extension, so
// generation numbers land before ".gob" (ckpt.000017.gob, not
// ckpt.gob.000017).
func (r *Ring) splitPath() (stem, ext string) {
	ext = filepath.Ext(r.path)
	return strings.TrimSuffix(r.path, ext), ext
}

// GenPath returns the file path of generation seq.
func (r *Ring) GenPath(seq uint64) string {
	stem, ext := r.splitPath()
	return fmt.Sprintf("%s.%06d%s", stem, seq, ext)
}

// Gen locates one on-disk generation.
type Gen struct {
	Seq  uint64
	Path string
	Mod  time.Time
}

// Generations lists the on-disk generation files, oldest first.  Files
// that merely match the naming pattern are listed without validation.
func (r *Ring) Generations() ([]Gen, error) {
	stem, ext := r.splitPath()
	dir := filepath.Dir(r.path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	prefix := filepath.Base(stem) + "."
	var gens []Gen
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext)
		if len(mid) < 6 {
			continue
		}
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		gens = append(gens, Gen{Seq: seq, Path: filepath.Join(dir, name), Mod: info.ModTime()})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq < gens[j].Seq })
	return gens, nil
}

// Write persists one gob payload as the next generation: framed with its
// sequence number and CRC32-C, written crash-safely, parent directory
// fsynced, older generations beyond the retention count removed.  It
// returns the sequence number written.
func (r *Ring) Write(payload []byte) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.scanned {
		gens, err := r.Generations()
		if err != nil {
			return 0, err
		}
		if len(gens) > 0 {
			r.next = gens[len(gens)-1].Seq
		}
		r.scanned = true
	}
	seq := r.next + 1
	path := r.GenPath(seq)
	var buf bytes.Buffer
	buf.Grow(frameHeaderLen + len(payload))
	if err := EncodeFrame(&buf, seq, payload); err != nil {
		return 0, err
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return 0, err
	}
	r.next = seq
	// Retention: everything keep generations behind the one just written
	// goes; a prune failure is not a write failure (the ring just holds
	// one extra file until the next write retries).
	if gens, err := r.Generations(); err == nil {
		for _, g := range gens {
			if g.Seq+uint64(r.keep) <= seq {
				os.Remove(g.Path)
			}
		}
	}
	SyncDir(filepath.Dir(path))
	return seq, nil
}

// LoadNewest walks the generations newest-first and returns the first
// valid frame.  Invalid files (torn, bit-flipped, or not framed at all)
// are quarantined — renamed aside with a ".corrupt" suffix — and their
// original paths returned, so the caller can count and log them.  With no
// valid generation it returns ErrNoCheckpoint.
func (r *Ring) LoadNewest() (seq uint64, payload []byte, quarantined []string, err error) {
	gens, err := r.Generations()
	if err != nil {
		return 0, nil, nil, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		b, err := os.ReadFile(g.Path)
		if err != nil {
			quarantined = append(quarantined, g.Path)
			quarantine(g.Path)
			continue
		}
		seq, payload, err := DecodeFrame(bytes.NewReader(b))
		if err != nil || seq != g.Seq {
			quarantined = append(quarantined, g.Path)
			quarantine(g.Path)
			continue
		}
		return seq, payload, quarantined, nil
	}
	return 0, nil, quarantined, ErrNoCheckpoint
}

// quarantine moves a failed generation aside so the retention scan never
// considers it again but an operator can still inspect it.
func quarantine(path string) {
	os.Rename(path, path+".corrupt")
}

// writeFileAtomic writes b to path through a temp file, fsync and rename.
func writeFileAtomic(path string, b []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SyncDir fsyncs a directory so a rename into it survives power loss.
// Best-effort: filesystems that cannot fsync directories are ignored.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
