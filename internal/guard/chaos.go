package guard

import (
	"errors"
	"fmt"
	"math"
	"os"
)

// ErrHungRank is returned by a chaos-hung rank's injected step once the
// watchdog releases it; the conductor treats it like any other mid-step
// rank failure.
var ErrHungRank = errors.New("guard: chaos-hung rank released by watchdog")

// ChaosConfig is the deterministic state-level fault injector, the
// checkpoint/step counterpart of cluster.FaultyTransport's wire faults.
// Steps are 1-based completed-step numbers (the same counter stats
// report); the zero value injects nothing.
type ChaosConfig struct {
	// PoisonStep poisons the weight vector of every live replica with a
	// non-finite value immediately after that step completes — the
	// observable effect of a NaN/Inf gradient surviving the reduction —
	// so the sentinel must catch it and roll back.  0 disables.
	PoisonStep int64
	// PoisonInf injects +Inf instead of NaN.
	PoisonInf bool
	// PoisonIndex is the flat weight index poisoned (default 0).
	PoisonIndex int
	// HangStep blocks replica HangReplica inside its rank step at that
	// step, simulating a wedged collective participant.  Requires a step
	// watchdog (fleet StepTimeout > 0) to release it; the stuck rank is
	// aborted onto the replica-death path.  0 disables.
	HangStep    int64
	HangReplica int
}

// Enabled reports whether any injector is armed.
func (c ChaosConfig) Enabled() bool { return c.PoisonStep > 0 || c.HangStep > 0 }

// PoisonValue returns the non-finite value to inject.
func (c ChaosConfig) PoisonValue() float64 {
	if c.PoisonInf {
		return math.Inf(1)
	}
	return math.NaN()
}

// FlipByte XORs 0xFF into the byte at offset of the file at path
// (negative offsets count from the end), simulating on-disk corruption of
// a checkpoint generation.  Test harness use.
func FlipByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += info.Size()
	}
	if offset < 0 || offset >= info.Size() {
		return fmt.Errorf("guard: flip offset %d outside file of %d bytes", offset, info.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], offset); err != nil {
		return err
	}
	return f.Sync()
}

// Truncate chops the file at path down to n bytes (negative n removes |n|
// bytes from the end), simulating a torn write.  Test harness use.
func Truncate(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 {
		n += info.Size()
	}
	if n < 0 {
		n = 0
	}
	return os.Truncate(path, n)
}
