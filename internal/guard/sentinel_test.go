package guard

import (
	"math"
	"testing"
	"time"
)

func healthySample() Sample {
	return Sample{
		Lambda:  0.994,
		Weights: []float64{0.1, -0.2, 0.3},
		PDiag:   []float64{1, 0.5, 2},
		Aux:     []float64{0.01, 0.02},
	}
}

func TestSentinelHealthyPasses(t *testing.T) {
	s := NewSentinel(SentinelConfig{Enabled: true, SampleStride: 1})
	for step := int64(1); step <= 5; step++ {
		if ev := s.Check(step, healthySample()); ev != nil {
			t.Fatalf("step %d: unexpected divergence: %v", step, ev)
		}
	}
}

func TestSentinelCatchesEachInvariant(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Sample)
		reason string
	}{
		{"lambda NaN", func(s *Sample) { s.Lambda = math.NaN() }, ReasonLambdaNonFinite},
		{"lambda low", func(s *Sample) { s.Lambda = 1e-9 }, ReasonLambdaRange},
		{"lambda high", func(s *Sample) { s.Lambda = 1.5 }, ReasonLambdaRange},
		{"weight NaN", func(s *Sample) { s.Weights[1] = math.NaN() }, ReasonWeightNonFinite},
		{"weight Inf", func(s *Sample) { s.Weights[2] = math.Inf(-1) }, ReasonWeightNonFinite},
		{"weight blowup", func(s *Sample) { s.Weights[0] = 2e6 }, ReasonWeightBlowup},
		{"pdiag NaN", func(s *Sample) { s.PDiag[0] = math.NaN() }, ReasonPDiagNonFinite},
		{"pdiag blowup", func(s *Sample) { s.PDiag[2] = 1e9 }, ReasonPDiagBlowup},
		{"aux NaN", func(s *Sample) { s.Aux[0] = math.NaN() }, ReasonAuxNonFinite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSentinel(SentinelConfig{Enabled: true, SampleStride: 1})
			smp := healthySample()
			tc.mutate(&smp)
			ev := s.Check(7, smp)
			if ev == nil {
				t.Fatalf("expected divergence %s, got healthy", tc.reason)
			}
			if ev.Reason != tc.reason {
				t.Fatalf("reason = %s, want %s (event %v)", ev.Reason, tc.reason, ev)
			}
			if ev.Step != 7 {
				t.Fatalf("step = %d, want 7", ev.Step)
			}
		})
	}
}

func TestSentinelUpdateNormNeedsBaseline(t *testing.T) {
	s := NewSentinel(SentinelConfig{Enabled: true, SampleStride: 1, MaxAbsUpdate: 0.5})
	big := healthySample()
	big.Weights = []float64{100, 100, 100}
	// First check has no baseline: a large (but finite, in-bounds) weight
	// set passes.
	if ev := s.Check(1, big); ev != nil {
		t.Fatalf("first check should pass: %v", ev)
	}
	// A jump of 2.0 against the captured baseline must trip.
	big2 := big
	big2.Weights = []float64{100, 102, 100}
	ev := s.Check(2, big2)
	if ev == nil || ev.Reason != ReasonUpdateBlowup {
		t.Fatalf("expected update_blowup, got %v", ev)
	}
	// After Reset (rollback), the baseline is gone: the same sample passes
	// and re-seeds.
	s.Reset()
	if ev := s.Check(3, big2); ev != nil {
		t.Fatalf("post-reset check should pass: %v", ev)
	}
}

func TestSentinelStrideSkipsEntries(t *testing.T) {
	s := NewSentinel(SentinelConfig{Enabled: true, SampleStride: 2})
	smp := healthySample()
	smp.Weights = []float64{0, math.NaN(), 0, math.NaN()} // odd indices skipped
	if ev := s.Check(1, smp); ev != nil {
		t.Fatalf("strided check should skip odd entries: %v", ev)
	}
	smp.Weights[2] = math.NaN() // even index: caught
	if ev := s.Check(2, smp); ev == nil || ev.Reason != ReasonWeightNonFinite {
		t.Fatalf("expected weight_non_finite at sampled index, got %v", ev)
	}
}

func TestHealthDegradedLifecycle(t *testing.T) {
	h := NewHealth(3)
	now := time.Now()
	if st := h.Status(now); st.Degraded {
		t.Fatal("fresh health must not be degraded")
	}
	h.NoteDivergence(&DivergenceEvent{Step: 5, Reason: ReasonWeightNonFinite})
	h.NoteRollback(2, 4)
	st := h.Status(now)
	if !st.Degraded || st.Divergences != 1 || st.Rollbacks != 1 {
		t.Fatalf("after divergence: %+v", st)
	}
	if st.LastReason != ReasonWeightNonFinite || st.LastStep != 5 ||
		st.RollbackGeneration != 2 || st.RollbackStep != 4 {
		t.Fatalf("event detail: %+v", st)
	}
	for i := 0; i < 2; i++ {
		h.NoteHealthy()
	}
	if st := h.Status(now); !st.Degraded {
		t.Fatal("2 healthy checks of 3 required: still degraded")
	}
	h.NoteHealthy()
	if st := h.Status(now); st.Degraded {
		t.Fatal("3 healthy checks clear degraded")
	}
	h.NoteWatchdog(9)
	st = h.Status(now)
	if !st.Degraded || st.WatchdogFires != 1 || st.LastReason != "step_watchdog" {
		t.Fatalf("after watchdog: %+v", st)
	}
}

func TestHealthRingAge(t *testing.T) {
	h := NewHealth(0)
	if st := h.Status(time.Now()); st.RingAgeMs != -1 {
		t.Fatalf("no checkpoint yet: age = %d, want -1", st.RingAgeMs)
	}
	at := time.Now().Add(-2 * time.Second)
	h.NoteCheckpoint(17, at)
	st := h.Status(time.Now())
	if st.RingGeneration != 17 {
		t.Fatalf("generation = %d, want 17", st.RingGeneration)
	}
	if st.RingAgeMs < 1900 || st.RingAgeMs > 10000 {
		t.Fatalf("age = %dms, want ≈2000", st.RingAgeMs)
	}
	if (*Health)(nil).Status(time.Now()) != nil {
		t.Fatal("nil Health must yield nil Status")
	}
}
