package guard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, 42, payload); err != nil {
		t.Fatal(err)
	}
	seq, got, err := DecodeFrame(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: seq=%d payload=%q", seq, got)
	}
}

func TestFrameRejectsEveryByteFlip(t *testing.T) {
	payload := []byte("checkpoint payload bytes")
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, 7, payload); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0xFF
		_, _, err := DecodeFrame(bytes.NewReader(bad))
		if i < 8 {
			// magic flips read as a foreign (legacy) file
			if !errors.Is(err, ErrNotFramed) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at magic byte %d: err = %v", i, err)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	payload := []byte("some gob stream standing in")
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, 3, payload); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{len(raw) - 1, len(raw) - 5, frameHeaderLen, 20, 8, 3} {
		_, _, err := DecodeFrame(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	// Trailing garbage is also a corruption, not a longer payload.
	_, _, err := DecodeFrame(bytes.NewReader(append(append([]byte(nil), raw...), 0xAB)))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestRingWriteRetentionAndNaming(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ckpt.gob")
	r := NewRing(base, 3)
	for i := 1; i <= 5; i++ {
		seq, err := r.Write([]byte(fmt.Sprintf("gen-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("write %d: seq = %d", i, seq)
		}
	}
	if p := r.GenPath(17); filepath.Base(p) != "ckpt.000017.gob" {
		t.Fatalf("generation naming: %s", p)
	}
	gens, err := r.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 || gens[0].Seq != 3 || gens[2].Seq != 5 {
		t.Fatalf("retention: %+v", gens)
	}
	seq, payload, quarantined, err := r.LoadNewest()
	if err != nil || len(quarantined) != 0 {
		t.Fatalf("load: seq=%d q=%v err=%v", seq, quarantined, err)
	}
	if seq != 5 || string(payload) != "gen-5" {
		t.Fatalf("newest: seq=%d payload=%q", seq, payload)
	}
}

func TestRingResumesSequenceAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ckpt.gob")
	r1 := NewRing(base, 4)
	for i := 0; i < 3; i++ {
		if _, err := r1.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh ring over the same directory continues the sequence — the
	// monotone generation number survives process restarts.
	r2 := NewRing(base, 4)
	seq, err := r2.Write([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("resumed seq = %d, want 4", seq)
	}
}

func TestRingQuarantinesCorruptAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ckpt.gob")
	r := NewRing(base, 4)
	for i := 1; i <= 3; i++ {
		if _, err := r.Write([]byte(fmt.Sprintf("gen-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Bit-flip the newest generation's payload and truncate the second.
	if err := FlipByte(r.GenPath(3), -2); err != nil {
		t.Fatal(err)
	}
	if err := Truncate(r.GenPath(2), -4); err != nil {
		t.Fatal(err)
	}
	seq, payload, quarantined, err := r.LoadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || string(payload) != "gen-1" {
		t.Fatalf("fallback: seq=%d payload=%q", seq, payload)
	}
	if len(quarantined) != 2 {
		t.Fatalf("quarantined = %v, want the two corrupt generations", quarantined)
	}
	for _, q := range quarantined {
		if _, err := os.Stat(q); !os.IsNotExist(err) {
			t.Fatalf("%s still present after quarantine", q)
		}
		if _, err := os.Stat(q + ".corrupt"); err != nil {
			t.Fatalf("%s.corrupt missing: %v", q, err)
		}
	}
	// The quarantined files never come back into the scan.
	gens, err := r.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0].Seq != 1 {
		t.Fatalf("post-quarantine generations: %+v", gens)
	}
}

func TestRingLoadNewestEmpty(t *testing.T) {
	r := NewRing(filepath.Join(t.TempDir(), "ckpt.gob"), 3)
	_, _, _, err := r.LoadNewest()
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	// All generations corrupt → ErrNoCheckpoint with quarantines.
	if _, err := r.Write([]byte("only")); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(r.GenPath(1), frameHeaderLen); err != nil {
		t.Fatal(err)
	}
	_, _, quarantined, err := r.LoadNewest()
	if !errors.Is(err, ErrNoCheckpoint) || len(quarantined) != 1 {
		t.Fatalf("err=%v quarantined=%v", err, quarantined)
	}
}

func TestRingIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ckpt.gob")
	for _, name := range []string{"ckpt.gob", "ckpt.notanum.gob", "other.000001.gob", "ckpt.000001.gob.corrupt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r := NewRing(base, 3)
	gens, err := r.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 0 {
		t.Fatalf("foreign files matched: %+v", gens)
	}
}

func TestFlipByteAndTruncateBounds(t *testing.T) {
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, []byte("abcd"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipByte(p, 99); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range flip: %v", err)
	}
	if err := FlipByte(p, -1); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(p)
	if b[3] != 'd'^0xFF {
		t.Fatalf("flip from end: % x", b)
	}
	if err := Truncate(p, -2); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(p); len(b) != 2 {
		t.Fatalf("truncate from end: %d bytes", len(b))
	}
}
