// Package guard is the self-healing layer of the FEKF training stack: a
// numerical health sentinel that catches covariance blow-up and weight
// divergence the step after they happen, a checksummed checkpoint ring
// that keeps the last K known-good generations on disk (CRC32-C framed,
// torn or bit-flipped files quarantined at load), and deterministic chaos
// injectors that drive the recovery paths under test.
//
// The package is a leaf: it knows nothing about models, optimizers or
// fleets.  Callers feed the sentinel flat float64 views of their state
// (weights, λ, a P diagonal) and gob payloads into the ring; the fleet
// conductor and the online trainer own the rollback choreography.
package guard

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// DivergenceEvent is the typed verdict of a failed health check: which
// step diverged, which invariant broke, and the offending value.  It is
// an error so it can flow through the existing last-error plumbing.
type DivergenceEvent struct {
	Step   int64   // training step the check ran after
	Reason string  // one of the Reason* constants
	Detail string  // human-readable invariant description
	Value  float64 // the offending value (NaN/Inf for non-finite checks)
	Index  int     // flat index of the offending entry, -1 for scalars
}

// Divergence reasons, one per sentinel invariant.
const (
	ReasonLambdaNonFinite = "lambda_non_finite"
	ReasonLambdaRange     = "lambda_out_of_range"
	ReasonWeightNonFinite = "weight_non_finite"
	ReasonWeightBlowup    = "weight_blowup"
	ReasonUpdateBlowup    = "update_blowup"
	ReasonPDiagNonFinite  = "pdiag_non_finite"
	ReasonPDiagBlowup     = "pdiag_blowup"
	ReasonAuxNonFinite    = "aux_non_finite"
)

func (e *DivergenceEvent) Error() string {
	return fmt.Sprintf("guard: divergence at step %d: %s (%s, value %g, index %d)",
		e.Step, e.Reason, e.Detail, e.Value, e.Index)
}

// SentinelConfig bounds the invariants the sentinel checks after every
// step.  The zero value is disabled; NewSentinel fills the thresholds.
type SentinelConfig struct {
	// Enabled turns the per-step health check on.
	Enabled bool
	// MaxAbsWeight bounds |w_i| (default 1e6): trained interatomic
	// potentials live within a few orders of magnitude of unity, so a
	// million is far past any recoverable state.
	MaxAbsWeight float64
	// MaxAbsUpdate bounds the per-step change |w_i - w_i'| over the
	// sampled entries (default 1e3): a Kalman gain that moves a weight by
	// a thousand in one step has lost the plot even if the value is still
	// finite.
	MaxAbsUpdate float64
	// MaxPDiag bounds the covariance diagonal (default 1e8): P starts at
	// the identity prior and contracts; growth past this is the EKF
	// covariance blow-up failure mode.
	MaxPDiag float64
	// LambdaMin/LambdaMax bound the memory factor (defaults 1e-6 and 1.0):
	// the schedule drives λ monotonically toward 1 from below.
	LambdaMin, LambdaMax float64
	// SampleStride checks every SampleStride-th entry of the weight and
	// P-diagonal views (default 64), keeping the check O(n/stride) so it
	// can run after every step.  Stride 1 checks everything.
	SampleStride int
}

func (c SentinelConfig) withDefaults() SentinelConfig {
	if c.MaxAbsWeight <= 0 {
		c.MaxAbsWeight = 1e6
	}
	if c.MaxAbsUpdate <= 0 {
		c.MaxAbsUpdate = 1e3
	}
	if c.MaxPDiag <= 0 {
		c.MaxPDiag = 1e8
	}
	if c.LambdaMin <= 0 {
		c.LambdaMin = 1e-6
	}
	if c.LambdaMax <= 0 {
		c.LambdaMax = 1.0
	}
	if c.SampleStride < 1 {
		c.SampleStride = 64
	}
	return c
}

// Sample is one step's health view: the scalar filter state plus flat
// float64 windows onto the weights and the covariance diagonal.  The
// slices are read-only borrows; the sentinel copies what it keeps.
type Sample struct {
	Lambda  float64
	Weights []float64
	PDiag   []float64
	// Aux carries per-step scalar outputs (ABE errors and the like); any
	// non-finite entry is a divergence regardless of magnitude.
	Aux []float64
}

// Sentinel runs the cheap post-step health check.  Not safe for
// concurrent use: one sentinel belongs to one conductor or trainer loop.
type Sentinel struct {
	cfg  SentinelConfig
	prev []float64 // strided weight sample from the last healthy check
}

// NewSentinel builds a sentinel with defaulted thresholds.
func NewSentinel(cfg SentinelConfig) *Sentinel {
	return &Sentinel{cfg: cfg.withDefaults()}
}

// Config returns the defaulted thresholds in effect.
func (s *Sentinel) Config() SentinelConfig { return s.cfg }

// Check validates one step's sample against the configured invariants,
// returning nil when healthy.  On a healthy check the strided weight
// sample is retained as the baseline for the next update-norm check; on a
// divergence the baseline is left untouched (call Reset after rolling
// back).
func (s *Sentinel) Check(step int64, smp Sample) *DivergenceEvent {
	ev := func(reason, detail string, v float64, idx int) *DivergenceEvent {
		return &DivergenceEvent{Step: step, Reason: reason, Detail: detail, Value: v, Index: idx}
	}
	if math.IsNaN(smp.Lambda) || math.IsInf(smp.Lambda, 0) {
		return ev(ReasonLambdaNonFinite, "memory factor λ is non-finite", smp.Lambda, -1)
	}
	if smp.Lambda < s.cfg.LambdaMin || smp.Lambda > s.cfg.LambdaMax {
		return ev(ReasonLambdaRange,
			fmt.Sprintf("memory factor λ outside [%g, %g]", s.cfg.LambdaMin, s.cfg.LambdaMax),
			smp.Lambda, -1)
	}
	for i, v := range smp.Aux {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ev(ReasonAuxNonFinite, "per-step scalar output is non-finite", v, i)
		}
	}
	stride := s.cfg.SampleStride
	for i := 0; i < len(smp.PDiag); i += stride {
		v := smp.PDiag[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ev(ReasonPDiagNonFinite, "covariance diagonal entry is non-finite", v, i)
		}
		if v > s.cfg.MaxPDiag {
			return ev(ReasonPDiagBlowup,
				fmt.Sprintf("covariance diagonal entry exceeds %g", s.cfg.MaxPDiag), v, i)
		}
	}
	// One pass over the strided weights: finiteness, magnitude, and the
	// per-step delta against the baseline captured by the last healthy
	// check (skipped when the parameter count changed, e.g. across a
	// restore).
	n := (len(smp.Weights) + stride - 1) / stride
	havePrev := len(s.prev) == n
	if cap(s.prev) < n {
		s.prev = make([]float64, n)
	}
	next := s.prev[:n]
	for k, i := 0, 0; i < len(smp.Weights); k, i = k+1, i+stride {
		v := smp.Weights[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ev(ReasonWeightNonFinite, "weight is non-finite", v, i)
		}
		if math.Abs(v) > s.cfg.MaxAbsWeight {
			return ev(ReasonWeightBlowup,
				fmt.Sprintf("|weight| exceeds %g", s.cfg.MaxAbsWeight), v, i)
		}
		if havePrev {
			if d := math.Abs(v - next[k]); d > s.cfg.MaxAbsUpdate {
				return ev(ReasonUpdateBlowup,
					fmt.Sprintf("per-step weight update exceeds %g", s.cfg.MaxAbsUpdate), d, i)
			}
		}
	}
	for k, i := 0, 0; i < len(smp.Weights); k, i = k+1, i+stride {
		next[k] = smp.Weights[i]
	}
	s.prev = next
	return nil
}

// Reset drops the update-norm baseline; call it after a rollback so the
// first post-restore step is not compared against pre-divergence weights.
func (s *Sentinel) Reset() { s.prev = s.prev[:0] }

// Health is the shared divergence/rollback/watchdog ledger a trainer or
// fleet exposes through its stats: event counters, the last event, and
// the checkpoint-ring position.  All methods are safe from any goroutine.
type Health struct {
	divergences atomic.Int64
	rollbacks   atomic.Int64
	watchdogs   atomic.Int64
	quarantined atomic.Int64

	// healthyStreak counts consecutive healthy checks since the last
	// event; the instance reports degraded until it reaches degradedAfter.
	healthyStreak atomic.Int64
	degradedAfter int64

	lastReason  atomic.Pointer[string]
	lastStep    atomic.Int64
	lastUnixMs  atomic.Int64
	rbStep      atomic.Int64
	rbGen       atomic.Uint64
	ringGen     atomic.Uint64
	ringUnixNs  atomic.Int64
	haveRingGen atomic.Bool
}

// DefaultDegradedAfter is how many consecutive healthy checks clear the
// degraded flag after a divergence or watchdog event.
const DefaultDegradedAfter = 8

// NewHealth builds a ledger; degradedAfter <= 0 uses the default.
func NewHealth(degradedAfter int) *Health {
	if degradedAfter <= 0 {
		degradedAfter = DefaultDegradedAfter
	}
	return &Health{degradedAfter: int64(degradedAfter)}
}

// NoteDivergence records a sentinel event and marks the state degraded.
func (h *Health) NoteDivergence(ev *DivergenceEvent) {
	h.divergences.Add(1)
	h.healthyStreak.Store(0)
	r := ev.Reason
	h.lastReason.Store(&r)
	h.lastStep.Store(ev.Step)
	h.lastUnixMs.Store(time.Now().UnixMilli())
}

// NoteWatchdog records a step-watchdog fire and marks the state degraded.
func (h *Health) NoteWatchdog(step int64) {
	h.watchdogs.Add(1)
	h.healthyStreak.Store(0)
	r := "step_watchdog"
	h.lastReason.Store(&r)
	h.lastStep.Store(step)
	h.lastUnixMs.Store(time.Now().UnixMilli())
}

// NoteRollback records a completed rollback to ring generation gen taken
// at training step step.
func (h *Health) NoteRollback(gen uint64, step int64) {
	h.rollbacks.Add(1)
	h.rbGen.Store(gen)
	h.rbStep.Store(step)
}

// NoteQuarantine counts checkpoint files quarantined at load time.
func (h *Health) NoteQuarantine(n int) {
	if n > 0 {
		h.quarantined.Add(int64(n))
	}
}

// NoteHealthy records one passed health check.
func (h *Health) NoteHealthy() { h.healthyStreak.Add(1) }

// NoteCheckpoint records a checkpoint ring write (or a validated load).
func (h *Health) NoteCheckpoint(gen uint64, at time.Time) {
	h.ringGen.Store(gen)
	h.ringUnixNs.Store(at.UnixNano())
	h.haveRingGen.Store(true)
}

// Status is the JSON/metrics view of a Health ledger.
type Status struct {
	// Degraded is true from a divergence or watchdog event until enough
	// consecutive healthy steps have passed; /healthz can answer 503 on it.
	Degraded      bool   `json:"degraded"`
	Divergences   int64  `json:"divergences"`
	Rollbacks     int64  `json:"rollbacks"`
	WatchdogFires int64  `json:"watchdog_fires"`
	Quarantined   int64  `json:"quarantined_checkpoints"`
	LastReason    string `json:"last_reason,omitempty"`
	LastStep      int64  `json:"last_step,omitempty"`
	LastUnixMs    int64  `json:"last_unix_ms,omitempty"`
	// RollbackStep / RollbackGeneration locate the last rollback target.
	RollbackStep       int64  `json:"rollback_step,omitempty"`
	RollbackGeneration uint64 `json:"rollback_generation,omitempty"`
	// RingGeneration is the newest checkpoint generation written or
	// validated; RingAgeMs its age (-1 before any checkpoint exists).
	RingGeneration uint64 `json:"ring_generation"`
	RingAgeMs      int64  `json:"ring_age_ms"`
}

// Status snapshots the ledger; now stamps the ring age.  Nil-safe: a nil
// Health returns nil.
func (h *Health) Status(now time.Time) *Status {
	if h == nil {
		return nil
	}
	st := &Status{
		Divergences:        h.divergences.Load(),
		Rollbacks:          h.rollbacks.Load(),
		WatchdogFires:      h.watchdogs.Load(),
		Quarantined:        h.quarantined.Load(),
		LastStep:           h.lastStep.Load(),
		LastUnixMs:         h.lastUnixMs.Load(),
		RollbackStep:       h.rbStep.Load(),
		RollbackGeneration: h.rbGen.Load(),
		RingGeneration:     h.ringGen.Load(),
		RingAgeMs:          -1,
	}
	if r := h.lastReason.Load(); r != nil {
		st.LastReason = *r
	}
	if h.haveRingGen.Load() {
		st.RingAgeMs = now.Sub(time.Unix(0, h.ringUnixNs.Load())).Milliseconds()
	}
	st.Degraded = (st.Divergences > 0 || st.WatchdogFires > 0) &&
		h.healthyStreak.Load() < h.degradedAfter
	return st
}
