package guard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Checkpoint frames wrap a gob payload with enough metadata to tell a
// good generation from a torn or bit-flipped one without decoding it:
//
//	offset  size  field
//	     0     8  magic "FEKFCKR1"
//	     8     8  sequence number (little endian)
//	    16     8  payload length  (little endian)
//	    24     4  CRC32-C over bytes [8,24) ++ payload (Castagnoli)
//	    28     …  payload (gob stream)
//
// The CRC covers the sequence and length fields too, so a flipped length
// byte cannot masquerade as truncation of a valid frame.

var frameMagic = [8]byte{'F', 'E', 'K', 'F', 'C', 'K', 'R', '1'}

const frameHeaderLen = 28

// maxFramePayload bounds a decoded frame (1 GiB): a corrupted length
// field must not drive a giant allocation before the CRC can reject it.
const maxFramePayload = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a checkpoint frame that failed validation — torn
// (truncated) or bit-flipped (checksum mismatch).  Ring loads quarantine
// such files and fall back to the previous generation.
var ErrCorrupt = errors.New("guard: corrupt checkpoint frame")

// ErrNotFramed marks a file that does not start with the frame magic —
// typically a legacy plain-gob checkpoint, which callers may still decode
// directly.
var ErrNotFramed = errors.New("guard: not a framed checkpoint")

// EncodeFrame writes one framed payload to w.
func EncodeFrame(w io.Writer, seq uint64, payload []byte) error {
	var hdr [frameHeaderLen]byte
	copy(hdr[:8], frameMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))
	crc := crc32.Update(0, crcTable, hdr[8:24])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[24:28], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// DecodeFrame reads and validates one framed payload: ErrNotFramed when
// the magic is absent, ErrCorrupt (wrapped with detail) when the frame is
// truncated or fails its checksum.
func DecodeFrame(r io.Reader) (seq uint64, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:8]); err != nil {
		return 0, nil, fmt.Errorf("%w: short magic: %v", ErrCorrupt, err)
	}
	if hdr[:8][0] != frameMagic[0] || string(hdr[:8]) != string(frameMagic[:]) {
		return 0, nil, ErrNotFramed
	}
	if _, err := io.ReadFull(r, hdr[8:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	seq = binary.LittleEndian.Uint64(hdr[8:16])
	n := binary.LittleEndian.Uint64(hdr[16:24])
	want := binary.LittleEndian.Uint32(hdr[24:28])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload (%d of %d bytes): %v", ErrCorrupt, len(payload), n, err)
	}
	crc := crc32.Update(0, crcTable, hdr[8:24])
	crc = crc32.Update(crc, crcTable, payload)
	if crc != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, frame says %08x)", ErrCorrupt, crc, want)
	}
	// A frame must end where its length says: trailing garbage means the
	// file was appended to or spliced and cannot be trusted.
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err != io.EOF {
		return 0, nil, fmt.Errorf("%w: trailing bytes after payload", ErrCorrupt)
	}
	return seq, payload, nil
}
