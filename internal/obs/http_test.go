package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("evt_total", "events").With().Add(9)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "evt_total 9\n") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(4)
	for step := int64(1); step <= 6; step++ {
		r := tr.Begin()
		r.Span(-1, "step", r.StartTime(), time.Microsecond)
		r.End(step)
	}

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace?n=2", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var resp TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Capacity != 4 || resp.Recorded != 6 || resp.Dropped != 2 {
		t.Errorf("bookkeeping = %d/%d/%d, want 4/6/2", resp.Capacity, resp.Recorded, resp.Dropped)
	}
	if len(resp.Steps) != 2 || resp.Steps[0].Step != 5 || resp.Steps[1].Step != 6 {
		t.Errorf("steps = %+v, want 5,6", resp.Steps)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status = %d, want 400", rec.Code)
	}
}
