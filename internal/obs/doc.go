// Package obs is the dependency-free observability substrate of the
// training/serving stack: a typed metrics registry (atomic counters,
// gauges and fixed-bucket histograms with label support, allocation-free
// on steady-state hot paths), Prometheus text-format exposition, and a
// bounded ring-buffer step tracer recording per-training-step phase spans
// (ingest admit, gate, backward, Kalman gain, covariance drain, ring
// allreduce, snapshot publish).
//
// The registry validates metric names promlint-style at registration
// time (snake_case, base-unit suffixes, counters end in _total, no
// duplicate registration) so a bad name fails the first test that touches
// it instead of silently producing an unscrapable family.
//
// Two metric styles coexist:
//
//   - push metrics (Counter.Inc, Gauge.Set, Histogram.Observe) for events
//     observed where they happen — step latency, request latency, scale
//     decisions.  Updates are single atomic operations: no locks, no
//     allocations, safe from any goroutine.
//   - pull metrics (CounterFunc / GaugeFunc + AddCollector) evaluated
//     once per scrape, reading state another layer already maintains —
//     queue depths, drift gauges, transport ledgers — so /metrics and
//     /v1/stats are backed by the same source instead of parallel
//     bookkeeping.
//
// See DESIGN.md, "Observability subsystem".
package obs
