package obs

import "testing"

func TestLintNameAccepts(t *testing.T) {
	good := []struct {
		name string
		typ  MetricType
	}{
		{"fekf_train_steps_total", TypeCounter},
		{"fekf_lambda", TypeGauge},
		{"fekf_step_seconds", TypeHistogram},
		{"fekf_wire_bytes_total", TypeCounter},
		{"queue_depth", TypeGauge},
		{"a2b_ratio", TypeGauge},
	}
	for _, g := range good {
		if err := LintName(g.name, g.typ); err != nil {
			t.Errorf("LintName(%q, %s) = %v, want nil", g.name, g.typ, err)
		}
	}
}

func TestLintNameRejects(t *testing.T) {
	bad := []struct {
		name string
		typ  MetricType
		why  string
	}{
		{"", TypeGauge, "empty"},
		{"fekf_steps", TypeCounter, "counter without _total"},
		{"fekf_steps_total", TypeGauge, "gauge with _total"},
		{"fekf_latency_total", TypeHistogram, "histogram with _total"},
		{"fekf_queue_count", TypeGauge, "reserved _count suffix"},
		{"fekf_queue_sum", TypeGauge, "reserved _sum suffix"},
		{"fekf_queue_bucket", TypeGauge, "reserved _bucket suffix"},
		{"fekf_step_milliseconds", TypeHistogram, "non-base time unit"},
		{"fekf_payload_kilobytes_total", TypeCounter, "non-base size unit"},
		{"Fekf_steps_total", TypeCounter, "uppercase"},
		{"fekf-steps-total", TypeCounter, "dashes"},
		{"fekf__steps_total", TypeCounter, "double underscore"},
		{"1fekf_steps_total", TypeCounter, "leading digit"},
		{"fekf_steps_total_", TypeCounter, "trailing underscore"},
	}
	for _, b := range bad {
		if err := LintName(b.name, b.typ); err == nil {
			t.Errorf("LintName(%q, %s) = nil, want error (%s)", b.name, b.typ, b.why)
		}
	}
}

func TestLintLabel(t *testing.T) {
	for _, good := range []string{"route", "code", "status_code", "rank0"} {
		if err := LintLabel(good); err != nil {
			t.Errorf("LintLabel(%q) = %v, want nil", good, err)
		}
	}
	for _, bad := range []string{"", "le", "Route", "status-code", "a__b", "_x"} {
		if err := LintLabel(bad); err == nil {
			t.Errorf("LintLabel(%q) = nil, want error", bad)
		}
	}
}

func TestRegisterPanicsOnLintFailure(t *testing.T) {
	mustPanic(t, "counter without _total", func() {
		NewRegistry().Counter("fekf_steps", "h")
	})
	mustPanic(t, "bad label", func() {
		NewRegistry().Gauge("fekf_depth", "h", "le")
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", what)
		}
	}()
	fn()
}
