package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with deterministic values covering the
// exposition corners: family name sorting, label-value sorting, HELP and
// label escaping, cumulative histogram buckets and func-backed metrics.
func goldenRegistry() *Registry {
	reg := NewRegistry()

	rq := reg.Counter("demo_requests_total", "Requests by route and code.", "route", "code")
	rq.With("/b", "500").Inc()
	rq.With("/a", "200").Add(3)

	esc := reg.Counter("demo_esc_total", `Counts "quoted" paths.`, "path")
	esc.With(`a"b\c`).Inc()

	reg.Gauge("demo_escape", "line1\nback\\slash").With().Set(0)
	reg.Gauge("demo_queue_depth", "Queue depth.").With().Set(2.5)

	h := reg.Histogram("demo_lat_seconds", "Latency.", []float64{0.1, 1}).With()
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(3)

	reg.GaugeFunc("demo_up", "Func-backed gauge.", func() float64 { return 7 })
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch (run with -update to rewrite)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramInfMatchesCount pins the scrape-consistency contract: the
// +Inf bucket and _count come from the same set of loaded bucket counts,
// so they are always equal within one exposition.
func TestHistogramInfMatchesCount(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", "x", []float64{1}).With()
	for i := 0; i < 10; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var inf, count string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, `x_seconds_bucket{le="+Inf"}`) {
			inf = line[strings.LastIndexByte(line, ' ')+1:]
		}
		if strings.HasPrefix(line, "x_seconds_count") {
			count = line[strings.LastIndexByte(line, ' ')+1:]
		}
	}
	if inf == "" || count == "" || inf != count {
		t.Fatalf("+Inf bucket %q != _count %q", inf, count)
	}
}
