package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenSteps builds two deterministic step traces: a conductor-only step
// and a 2-rank collective step with a sub-microsecond gain span, covering
// the tid mapping (conductor → 0, rank r → r+1), relative timestamps and
// the lost-span annotation.
func goldenSteps() []StepTrace {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return []StepTrace{
		{
			Step:  7,
			Start: base,
			DurNs: 1_500_000, // 1.5 ms
			Spans: []Span{
				{Name: "drain", Rank: -1, StartNs: 0, DurNs: 400_000},
				{Name: "checkpoint", Rank: -1, StartNs: 450_000, DurNs: 1_000_000},
			},
		},
		{
			Step:      8,
			Start:     base.Add(2 * time.Millisecond),
			DurNs:     2_000_000,
			LostSpans: 3,
			Spans: []Span{
				{Name: "forward", Rank: 0, StartNs: 0, DurNs: 900_000},
				{Name: "forward", Rank: 1, StartNs: 100_000, DurNs: 800_000},
				{Name: "gain", Rank: 1, StartNs: 950_000, DurNs: 750}, // 0.75 µs
				{Name: "allgather", Rank: 0, StartNs: 1_000_000, DurNs: 500_000},
			},
		},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	got, err := ChromeTrace(goldenSteps()).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("chrome trace mismatch (run with -update to rewrite)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestChromeTraceShape(t *testing.T) {
	f := ChromeTrace(goldenSteps())
	// 2 step events + 6 spans + 3 thread-name rows (conductor, rank 0, 1).
	if len(f.TraceEvents) != 11 {
		t.Fatalf("got %d events, want 11", len(f.TraceEvents))
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("event %q has phase %q", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Pid != 1 || ev.Tid < 0 {
			t.Fatalf("event %+v has an invalid coordinate", ev)
		}
	}
	// The earliest step anchors the timeline at ts=0.
	if f.TraceEvents[0].Ts != 0 {
		t.Fatalf("first step ts = %v, want 0", f.TraceEvents[0].Ts)
	}
	// Rank 1's gain span: tid 2, sub-microsecond duration preserved.
	var found bool
	for _, ev := range f.TraceEvents {
		if ev.Name == "gain" {
			found = true
			if ev.Tid != 2 || ev.Dur != 0.75 {
				t.Fatalf("gain span %+v, want tid 2 dur 0.75µs", ev)
			}
		}
	}
	if !found {
		t.Fatal("gain span missing from export")
	}
	if ChromeTrace(nil).TraceEvents == nil {
		t.Fatal("empty export must still marshal as an array, not null")
	}
}

func TestTracerHandlerChromeFormat(t *testing.T) {
	tr := NewTracer(4)
	r := tr.Begin()
	r.Span(0, "forward", r.StartTime(), time.Millisecond)
	r.End(42)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace?format=chrome", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var f ChromeTraceFile
	if err := json.Unmarshal(rec.Body.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.DisplayTimeUnit != "ms" || len(f.TraceEvents) == 0 {
		t.Fatalf("chrome export %+v", f)
	}
	if !strings.Contains(rec.Header().Get("Content-Disposition"), "fekf_trace.json") {
		t.Errorf("missing download disposition, got %q", rec.Header().Get("Content-Disposition"))
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace?format=tsv", nil))
	if rec.Code != 400 {
		t.Errorf("unknown format: status = %d, want 400", rec.Code)
	}
}
