package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): collectors run first so func metrics and
// collector-fed gauges reflect one consistent snapshot, then families are
// emitted sorted by name with their children sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	collectors, fams := r.snapshot()
	for _, c := range collectors {
		c()
	}
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.typ))
	b.WriteByte('\n')

	if f.fn != nil {
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(f.fn()))
		b.WriteByte('\n')
		return
	}

	f.mu.RLock()
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].values, labelSep) < strings.Join(children[j].values, labelSep)
	})

	for _, c := range children {
		switch f.typ {
		case TypeCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, c.values, "", 0)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(c.ctr.Value(), 10))
			b.WriteByte('\n')
		case TypeGauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, c.values, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(c.gauge.Value()))
			b.WriteByte('\n')
		case TypeHistogram:
			writeHistogram(b, f, c)
		}
	}
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
// Bucket counts are loaded once into locals so the +Inf bucket and _count
// agree even while observations race the scrape.
func writeHistogram(b *strings.Builder, f *family, c *child) {
	h := c.hist
	var cum uint64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, c.values, "le", upper)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.upper)].Load()
	b.WriteString(f.name)
	b.WriteString("_bucket")
	writeLabelsInf(b, f.labels, c.values)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labels, c.values, "", 0)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labels, c.values, "", 0)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// writeLabels renders {a="x",b="y"} (nothing when there are no labels);
// le, when non-empty, is appended as the histogram bucket bound.
func writeLabels(b *strings.Builder, names, values []string, le string, bound float64) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatFloat(bound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// writeLabelsInf renders the +Inf bucket's label set.
func writeLabelsInf(b *strings.Builder, names, values []string) {
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if len(names) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integers without a decimal point.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
