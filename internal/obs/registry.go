package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.  Updates are single
// atomic adds: lock-free, allocation-free, safe from any goroutine.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d (CAS loop; still allocation-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at registration.
// Observe is a linear bucket scan plus two atomic updates — no locks, no
// allocations — so it is safe on per-step and per-request hot paths.
type Histogram struct {
	upper   []float64       // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits of the observation sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefSecondsBuckets spans 100µs to 10s — the default latency buckets for
// step, checkpoint and request histograms.
var DefSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// SizeBuckets is a power-of-two ladder for batch and queue sizes.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// family is one registered metric name: its metadata plus the labelled
// children holding the actual values (or a scrape-time func).
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64      // histograms only
	fn      func() float64 // func-backed families have no children

	mu       sync.RWMutex
	children map[string]*child
}

// child is one label combination of a family.
type child struct {
	values []string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

const labelSep = "\xff"

// get returns (creating on first use) the child for a label-value tuple.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	c = &child{values: append([]string(nil), values...)}
	switch f.typ {
	case TypeCounter:
		c.ctr = &Counter{}
	case TypeGauge:
		c.gauge = &Gauge{}
	case TypeHistogram:
		c.hist = &Histogram{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = c
	return c
}

// CounterVec is a counter family; With resolves one label combination.
// Resolve once at setup and hold the *Counter on hot paths.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (one per label
// declared at registration; none for an unlabelled family).
func (v *CounterVec) With(values ...string) *Counter { return v.fam.get(values).ctr }

// GaugeVec is a gauge family; With resolves one label combination.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.fam.get(values).gauge }

// HistogramVec is a histogram family; With resolves one label combination.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.fam.get(values).hist }

// Registry holds metric families and scrape-time collectors.  Registration
// is validated (LintName/LintLabel, duplicate detection) and panics on
// programmer error; updates on the returned metrics are atomic and
// allocation-free.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register validates and inserts a family, panicking on lint failures or
// duplicate names — registration is initialization-time programmer
// surface, not a runtime path.
func (r *Registry) register(name, help string, typ MetricType, labels []string, buckets []float64, fn func() float64) *family {
	if err := LintName(name, typ); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if err := LintLabel(l); err != nil {
			panic(fmt.Errorf("obs: metric %q: %w", name, err))
		}
	}
	if typ == TypeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Errorf("obs: histogram %q needs at least one bucket", name))
		}
		buckets = append([]float64(nil), buckets...)
		for i, b := range buckets {
			if math.IsNaN(b) || math.IsInf(b, 0) {
				panic(fmt.Errorf("obs: histogram %q bucket %d is %g", name, i, b))
			}
			if i > 0 && b <= buckets[i-1] {
				panic(fmt.Errorf("obs: histogram %q buckets not ascending at %d", name, i))
			}
		}
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		fn:       fn,
		children: map[string]*child{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Errorf("obs: duplicate registration of metric %q", name))
	}
	r.families[name] = f
	return f
}

// Counter registers a counter family (name must end in _total).
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, TypeCounter, labels, nil, nil)}
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, TypeGauge, labels, nil, nil)}
}

// Histogram registers a histogram family over fixed ascending buckets
// (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, TypeHistogram, labels, buckets, nil)}
}

// CounterFunc registers a scrape-time counter backed by fn — for
// monotonic values another layer already maintains (queue push totals,
// transport byte ledgers) so the exposition reads the existing source
// instead of duplicating bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, nil, nil, fn)
}

// GaugeFunc registers a scrape-time gauge backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, nil, fn)
}

// AddCollector registers fn to run once at the start of every scrape,
// before any func metric is evaluated — the hook where a layer takes ONE
// consistent snapshot of its stats and caches it for its func metrics.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// snapshot returns the collectors and name-sorted families under the lock.
func (r *Registry) snapshot() ([]func(), []*family) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	collectors := make([]func(), len(r.collectors))
	copy(collectors, r.collectors)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return collectors, fams
}
