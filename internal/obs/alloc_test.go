//go:build !race

package obs

import "testing"

// TestHotPathAllocationFree pins the steady-state contract: once a metric
// child is resolved, updates are pure atomic operations with zero heap
// allocations.  (Skipped under -race, whose instrumentation allocates.)
func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("evt_total", "events", "kind").With("a")
	g := reg.Gauge("depth", "depth").With()
	h := reg.Histogram("lat_seconds", "latency", DefSecondsBuckets).With()
	tr := NewTracer(4)
	rec := tr.Begin()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.003) }},
		{"nil StepRecorder.Span", func() {
			var nilRec *StepRecorder
			nilRec.Span(0, "x", rec.StartTime(), 0)
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, n)
		}
	}
}

// TestVecWithSteadyStateAllocationFree checks that re-resolving an
// existing child (the fallback for call sites that cannot cache the
// pointer) stays allocation-free after first use.
func TestVecWithSteadyStateAllocationFree(t *testing.T) {
	reg := NewRegistry()
	v := reg.Counter("req_total", "requests", "route")
	v.With("/a").Inc() // create the child outside the measured loop
	if n := testing.AllocsPerRun(1000, func() { v.With("/a").Inc() }); n != 0 {
		t.Errorf("CounterVec.With on existing child allocates %.1f per op, want 0", n)
	}
}
