package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("evt_total", "events", "kind").With("a")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := reg.Gauge("depth", "queue depth").With()
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %g, want 2.25", got)
	}

	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1}).With()
	for _, v := range []float64{0.05, 0.05, 0.5, 2, 7} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("hist count = %d, want 5", got)
	}
	if got := h.Sum(); got != 9.6 {
		t.Fatalf("hist sum = %g, want 9.6", got)
	}
}

func TestVecChildIdentity(t *testing.T) {
	reg := NewRegistry()
	v := reg.Counter("req_total", "requests", "route")
	a1 := v.With("/a")
	a2 := v.With("/a")
	b := v.With("/b")
	if a1 != a2 {
		t.Fatal("same label values resolved to different children")
	}
	if a1 == b {
		t.Fatal("different label values resolved to the same child")
	}
	a1.Inc()
	if b.Value() != 0 {
		t.Fatal("increment leaked across children")
	}
}

func TestWithPanicsOnLabelArity(t *testing.T) {
	reg := NewRegistry()
	v := reg.Counter("req_total", "requests", "route", "code")
	mustPanic(t, "too few label values", func() { v.With("/a") })
	mustPanic(t, "too many label values", func() { v.With("/a", "200", "x") })
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("evt_total", "events")
	mustPanic(t, "duplicate name", func() { reg.Counter("evt_total", "again") })
	mustPanic(t, "duplicate across types", func() { reg.Gauge("evt_total", "again") })
}

func TestHistogramBucketValidation(t *testing.T) {
	reg := NewRegistry()
	mustPanic(t, "empty buckets", func() {
		reg.Histogram("h_seconds", "h", nil)
	})
	mustPanic(t, "non-ascending buckets", func() {
		reg.Histogram("h2_seconds", "h", []float64{1, 1})
	})
}

func TestFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	reg.AddCollector(func() { calls++ })
	reg.CounterFunc("scrapes_seen_total", "scrape counter", func() float64 { return float64(calls) })
	reg.GaugeFunc("answer", "the answer", func() float64 { return 42 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("collector ran %d times, want 1", calls)
	}
	out := b.String()
	if !strings.Contains(out, "scrapes_seen_total 1\n") {
		t.Errorf("func counter missing or stale:\n%s", out)
	}
	if !strings.Contains(out, "answer 42\n") {
		t.Errorf("func gauge missing:\n%s", out)
	}
}

// TestConcurrentRegisterUpdateScrape exercises the registry under -race:
// goroutines registering new families, updating hot metrics and scraping,
// all at once.
func TestConcurrentRegisterUpdateScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hot_total", "hot counter", "worker")
	h := reg.Histogram("hot_seconds", "hot latency", DefSecondsBuckets)
	g := reg.Gauge("hot_depth", "hot gauge")

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctr := c.With(fmt.Sprintf("w%d", w))
			hist := h.With()
			gauge := g.With()
			for i := 0; i < iters; i++ {
				ctr.Inc()
				hist.Observe(float64(i) * 1e-4)
				gauge.Add(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			reg.Gauge(fmt.Sprintf("late_gauge_%d", i), "registered mid-flight").With().Set(float64(i))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	var total uint64
	for w := 0; w < workers; w++ {
		total += c.With(fmt.Sprintf("w%d", w)).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	if got := h.With().Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := g.With().Value(); got != workers*iters {
		t.Fatalf("gauge = %g, want %d", got, workers*iters)
	}
}
