package obs

import (
	"sync"
	"time"
)

// Span is one timed phase of a training step: rank -1 marks conductor /
// single-trainer phases, rank >= 0 a replica's role in a collective step.
// Offsets and durations are nanoseconds so even sub-microsecond phases
// (a tiny model's gain stage) stay non-zero.
type Span struct {
	Name    string `json:"name"`
	Rank    int    `json:"rank"`
	StartNs int64  `json:"start_ns"` // offset from the step's start
	DurNs   int64  `json:"dur_ns"`
}

// StepTrace is the recorded timeline of one training step.
type StepTrace struct {
	Step  int64     `json:"step"`
	Start time.Time `json:"start"`
	DurNs int64     `json:"dur_ns"`
	// LostSpans counts spans dropped because the step exceeded the
	// per-step span cap (a pathological step; the cap bounds memory).
	LostSpans int    `json:"lost_spans,omitempty"`
	Spans     []Span `json:"spans"`
}

// maxSpansPerStep bounds one step's recorded spans; a fleet step records
// roughly (2 + 3·forceGroups) spans per rank plus a handful of conductor
// phases, far below this.
const maxSpansPerStep = 4096

// Tracer keeps the last N step traces in a fixed ring buffer: recording
// overwrites the oldest trace once the ring is full (the overflow count is
// reported, never silently dropped).  Begin/End and Span are safe from any
// goroutine; a nil *Tracer is a valid no-op tracer.
type Tracer struct {
	mu      sync.Mutex
	buf     []StepTrace
	head    int // next write position
	n       int // valid entries
	total   int64
	dropped int64
}

// NewTracer returns a tracer holding the last capacity step traces
// (minimum 1; capacity <= 0 defaults to 64).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{buf: make([]StepTrace, capacity)}
}

// Begin opens a step recorder stamped now.  On a nil tracer it returns a
// nil recorder, whose methods are all no-ops — call sites need no guards.
func (t *Tracer) Begin() *StepRecorder {
	if t == nil {
		return nil
	}
	return &StepRecorder{t: t, start: time.Now()}
}

// push records one finished trace, overwriting the oldest when full.
func (t *Tracer) push(tr StepTrace) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.head] = tr
	t.head = (t.head + 1) % len(t.buf)
	t.total++
	t.mu.Unlock()
}

// Last returns up to n traces, oldest first, ending at the most recent
// (n <= 0 returns everything retained).
func (t *Tracer) Last(n int) []StepTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]StepTrace, 0, n)
	start := t.head - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Recorded returns how many step traces were ever recorded.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many traces the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StepRecorder collects the spans of one in-flight step.  Span may be
// called from any goroutine (collective ranks, background drain
// goroutines); End publishes the trace into the ring.  All methods are
// no-ops on a nil recorder.
type StepRecorder struct {
	t     *Tracer
	start time.Time

	mu    sync.Mutex
	spans []Span
	lost  int
}

// StartTime returns the recorder's step-start stamp (zero on nil).
func (r *StepRecorder) StartTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Span records one timed phase: start is the phase's wall-clock start,
// dur its duration; rank -1 marks non-collective phases.
func (r *StepRecorder) Span(rank int, name string, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.spans) >= maxSpansPerStep {
		r.lost++
		r.mu.Unlock()
		return
	}
	r.spans = append(r.spans, Span{
		Name:    name,
		Rank:    rank,
		StartNs: start.Sub(r.start).Nanoseconds(),
		DurNs:   dur.Nanoseconds(),
	})
	r.mu.Unlock()
}

// End stamps the step number and total duration and publishes the trace.
// The recorder must not be reused afterwards.
func (r *StepRecorder) End(step int64) {
	if r == nil {
		return
	}
	dur := time.Since(r.start)
	r.mu.Lock()
	spans := r.spans
	lost := r.lost
	r.spans = nil
	r.mu.Unlock()
	r.t.push(StepTrace{
		Step:      step,
		Start:     r.start,
		DurNs:     dur.Nanoseconds(),
		LostSpans: lost,
		Spans:     spans,
	})
}
