package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler serves the registry at GET /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write([]byte(b.String()))
	})
}

// TraceResponse is the GET /v1/trace body: ring bookkeeping plus the last
// N step traces, oldest first.
type TraceResponse struct {
	Capacity int         `json:"capacity"`
	Recorded int64       `json:"recorded"`
	Dropped  int64       `json:"dropped"`
	Steps    []StepTrace `json:"steps"`
}

// Handler serves the tracer at GET /v1/trace as JSON; ?n=K limits the
// response to the most recent K traces and ?format=chrome re-renders them
// as Trace Event Format for chrome://tracing / Perfetto.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, `{"error":"n must be a non-negative integer"}`, http.StatusBadRequest)
				return
			}
			n = v
		}
		switch format := req.URL.Query().Get("format"); format {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(TraceResponse{
				Capacity: t.Capacity(),
				Recorded: t.Recorded(),
				Dropped:  t.Dropped(),
				Steps:    t.Last(n),
			})
		case "chrome":
			b, err := ChromeTrace(t.Last(n)).MarshalIndent()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="fekf_trace.json"`)
			w.Write(b)
		default:
			http.Error(w, `{"error":"format must be json or chrome"}`, http.StatusBadRequest)
		}
	})
}

// MountPprof wires the net/http/pprof handlers onto mux under
// /debug/pprof/ without touching http.DefaultServeMux.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
