package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(3)
	if tr.Capacity() != 3 {
		t.Fatalf("capacity = %d, want 3", tr.Capacity())
	}
	for step := int64(1); step <= 5; step++ {
		rec := tr.Begin()
		rec.Span(-1, "step", rec.StartTime(), time.Microsecond)
		rec.End(step)
	}
	if got := tr.Recorded(); got != 5 {
		t.Fatalf("recorded = %d, want 5", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	steps := tr.Last(0)
	if len(steps) != 3 {
		t.Fatalf("retained %d traces, want 3", len(steps))
	}
	for i, want := range []int64{3, 4, 5} {
		if steps[i].Step != want {
			t.Errorf("trace %d is step %d, want %d (oldest first)", i, steps[i].Step, want)
		}
	}
	if last := tr.Last(2); len(last) != 2 || last[0].Step != 4 || last[1].Step != 5 {
		t.Errorf("Last(2) = %+v, want steps 4,5", last)
	}
}

func TestTracerSpanContents(t *testing.T) {
	tr := NewTracer(4)
	rec := tr.Begin()
	s0 := rec.StartTime()
	rec.Span(2, "backward", s0.Add(time.Millisecond), 3*time.Millisecond)
	rec.End(42)

	steps := tr.Last(0)
	if len(steps) != 1 {
		t.Fatalf("retained %d traces, want 1", len(steps))
	}
	st := steps[0]
	if st.Step != 42 {
		t.Errorf("step = %d, want 42", st.Step)
	}
	if len(st.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(st.Spans))
	}
	sp := st.Spans[0]
	if sp.Name != "backward" || sp.Rank != 2 {
		t.Errorf("span = %+v, want backward/rank 2", sp)
	}
	if sp.StartNs != time.Millisecond.Nanoseconds() {
		t.Errorf("span start offset = %dns, want 1ms", sp.StartNs)
	}
	if sp.DurNs != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("span dur = %dns, want 3ms", sp.DurNs)
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer(1)
	rec := tr.Begin()
	for i := 0; i < maxSpansPerStep+10; i++ {
		rec.Span(-1, "x", rec.StartTime(), time.Nanosecond)
	}
	rec.End(1)
	st := tr.Last(0)[0]
	if len(st.Spans) != maxSpansPerStep {
		t.Fatalf("spans = %d, want cap %d", len(st.Spans), maxSpansPerStep)
	}
	if st.LostSpans != 10 {
		t.Fatalf("lost = %d, want 10", st.LostSpans)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	rec := tr.Begin()
	if rec != nil {
		t.Fatal("nil tracer Begin() should return a nil recorder")
	}
	// All of these must be no-ops, not panics.
	rec.Span(0, "x", time.Now(), time.Second)
	rec.End(1)
	if !rec.StartTime().IsZero() {
		t.Error("nil recorder StartTime should be zero")
	}
	if tr.Capacity() != 0 || tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Last(5) != nil {
		t.Error("nil tracer accessors should return zero values")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(8)
	rec := tr.Begin()
	var wg sync.WaitGroup
	const ranks = 8
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Span(r, "backward", rec.StartTime(), time.Microsecond)
			}
		}(r)
	}
	wg.Wait()
	rec.End(7)
	st := tr.Last(0)[0]
	if len(st.Spans) != ranks*100 {
		t.Fatalf("spans = %d, want %d", len(st.Spans), ranks*100)
	}
}
