package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ChromeEvent is one entry of the Trace Event Format consumed by
// chrome://tracing and Perfetto.  Only the complete-event subset ("ph":
// "X") plus thread-name metadata ("ph": "M") is emitted; timestamps and
// durations are microseconds, fractional so sub-microsecond spans from a
// tiny model's gain stage stay visible.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTraceFile is the JSON-object form of the Trace Event Format.
type ChromeTraceFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// chromeTracePid is the single process id used in exported traces; the
// interesting concurrency axis is ranks, mapped onto threads.
const chromeTracePid = 1

// chromeTid maps a span rank onto a chrome://tracing thread id: the
// conductor (rank -1) renders as tid 0, rank r as tid r+1 so replica rows
// sort naturally under the conductor.
func chromeTid(rank int) int { return rank + 1 }

// ChromeTrace converts step traces (as returned by Tracer.Last, oldest
// first) into Trace Event Format.  Timestamps are relative to the earliest
// step's start so the viewer opens at t=0 regardless of wall-clock epoch.
// Each step contributes one enclosing "step N" event on the conductor row
// plus one event per recorded span on its rank's row.
func ChromeTrace(steps []StepTrace) *ChromeTraceFile {
	out := &ChromeTraceFile{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	if len(steps) == 0 {
		return out
	}
	base := steps[0].Start
	for _, tr := range steps {
		if tr.Start.Before(base) {
			base = tr.Start
		}
	}
	tids := map[int]bool{chromeTid(-1): true}
	for _, tr := range steps {
		stepTs := float64(tr.Start.Sub(base).Nanoseconds()) / 1e3
		args := map[string]any{"step": tr.Step}
		if tr.LostSpans > 0 {
			args["lost_spans"] = tr.LostSpans
		}
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name: fmt.Sprintf("step %d", tr.Step),
			Cat:  "step",
			Ph:   "X",
			Ts:   stepTs,
			Dur:  float64(tr.DurNs) / 1e3,
			Pid:  chromeTracePid,
			Tid:  chromeTid(-1),
			Args: args,
		})
		for _, s := range tr.Spans {
			tids[chromeTid(s.Rank)] = true
			out.TraceEvents = append(out.TraceEvents, ChromeEvent{
				Name: s.Name,
				Cat:  "phase",
				Ph:   "X",
				Ts:   stepTs + float64(s.StartNs)/1e3,
				Dur:  float64(s.DurNs) / 1e3,
				Pid:  chromeTracePid,
				Tid:  chromeTid(s.Rank),
				Args: map[string]any{"step": tr.Step, "rank": s.Rank},
			})
		}
	}
	// Thread-name metadata labels each row; sorted tids keep the output
	// deterministic for golden comparison.
	var order []int
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		name := "conductor"
		if tid > 0 {
			name = fmt.Sprintf("rank %d", tid-1)
		}
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  chromeTracePid,
			Tid:  tid,
			Args: map[string]any{"name": name},
		})
	}
	return out
}

// MarshalIndent renders the trace file as indented JSON ready to load into
// chrome://tracing or ui.perfetto.dev.
func (f *ChromeTraceFile) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(f, "", "  ")
}
