// Package device simulates a GPU-like accelerator for the purposes of the
// PPoPP'24 FEKF reproduction.
//
// The paper's systems evaluation counts CUDA kernel launches (Figure 7(b)),
// decomposes iteration time into forward / gradient / optimizer phases
// (Figure 7(c)) and tracks peak device memory of the P-matrix update
// (Section 5.3).  All three are properties of the operator graph executed on
// the device rather than of the silicon, so this package reproduces them by
// accounting: every tensor kernel reports its launch, floating point
// operation count and bytes moved, and the device converts those into a
// modeled execution time using an A100-like cost model.  An allocator
// tracks live and peak bytes so that the memory experiment can be replayed
// exactly.
//
// A Device is deliberately cheap: all counters are atomics so a device can
// be shared, although in the cluster simulation each worker goroutine owns
// its own Device (mirroring one GPU per rank).
package device

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Phase labels a stage of a training iteration.  The paper's Figure 7(c)
// splits iteration time into the network forward pass, the gradient
// (backward) pass and the Kalman-filter update flow.
type Phase int32

// Phases of a training iteration, in the order the paper reports them.
const (
	PhaseForward Phase = iota
	PhaseGradient
	PhaseOptimizer
	PhaseOther
	numPhases
)

// String returns the human-readable phase name used in experiment output.
func (p Phase) String() string {
	switch p {
	case PhaseForward:
		return "forward"
	case PhaseGradient:
		return "gradient"
	case PhaseOptimizer:
		return "optimizer"
	default:
		return "other"
	}
}

// CostModel converts kernel launch counts, flops and bytes into modeled
// execution nanoseconds.  The default constants approximate one NVIDIA A100
// (the paper's testbed): 9.7 TFLOP/s double precision, 900 GB/s HBM
// bandwidth (the figure quoted in the paper), and a few microseconds of
// launch latency, which is exactly the overhead the paper's kernel-fusion
// optimizations remove.
type CostModel struct {
	// LaunchNs is the fixed overhead per kernel launch in nanoseconds.
	LaunchNs float64
	// FlopsPerNs is the arithmetic throughput in flops per nanosecond.
	FlopsPerNs float64
	// BytesPerNs is the memory bandwidth in bytes per nanosecond.
	BytesPerNs float64
}

// A100 returns the cost model used throughout the reproduction; it mirrors
// the hardware described in the paper's experiment setup.
func A100() CostModel {
	return CostModel{
		LaunchNs:   4000, // ~4 us per launch, typical for small kernels
		FlopsPerNs: 9700, // 9.7 TFLOP/s FP64
		BytesPerNs: 900,  // 900 GB/s HBM
	}
}

// KernelNs returns the modeled duration of a single kernel.  A kernel costs
// its launch overhead plus the slower of its compute and memory phases
// (roofline model).
func (m CostModel) KernelNs(flops, bytes int64) float64 {
	var compute, memory float64
	if m.FlopsPerNs > 0 {
		compute = float64(flops) / m.FlopsPerNs
	}
	if m.BytesPerNs > 0 {
		memory = float64(bytes) / m.BytesPerNs
	}
	t := compute
	if memory > t {
		t = memory
	}
	return m.LaunchNs + t
}

// Counters is a snapshot of a device's accounting state.
type Counters struct {
	Kernels    int64   // kernel launches
	Flops      int64   // floating point operations executed
	Bytes      int64   // bytes moved through device memory
	ModeledNs  float64 // modeled execution time, nanoseconds
	LiveBytes  int64   // currently allocated bytes
	PeakBytes  int64   // high-water mark of allocated bytes
	PhaseNs    [4]float64
	PhaseKerns [4]int64
}

// Sub returns the counter deltas c-o; allocator fields keep c's values.
func (c Counters) Sub(o Counters) Counters {
	d := Counters{
		Kernels:   c.Kernels - o.Kernels,
		Flops:     c.Flops - o.Flops,
		Bytes:     c.Bytes - o.Bytes,
		ModeledNs: c.ModeledNs - o.ModeledNs,
		LiveBytes: c.LiveBytes,
		PeakBytes: c.PeakBytes,
	}
	for i := range d.PhaseNs {
		d.PhaseNs[i] = c.PhaseNs[i] - o.PhaseNs[i]
		d.PhaseKerns[i] = c.PhaseKerns[i] - o.PhaseKerns[i]
	}
	return d
}

// Device is one simulated accelerator.
type Device struct {
	name  string
	model CostModel

	phase atomic.Int32

	kernels atomic.Int64
	flops   atomic.Int64
	bytes   atomic.Int64
	// modeled time is accumulated in integer picoseconds to stay atomic.
	modeledPs atomic.Int64
	phasePs   [numPhases]atomic.Int64
	phaseKern [numPhases]atomic.Int64

	live atomic.Int64
	peak atomic.Int64

	// byName counts launches per kernel name for diagnostics.  It is a
	// sync.Map of *atomic.Int64 behind an atomic pointer (swapped on
	// Reset) so that Launch — now called concurrently from the host
	// worker pool and the cluster's rank goroutines — stays lock-free.
	byName atomic.Pointer[sync.Map]
	tracer atomic.Pointer[Tracer]
}

// New returns a device with the given name and cost model.
func New(name string, model CostModel) *Device {
	d := &Device{name: name, model: model}
	d.byName.Store(new(sync.Map))
	return d
}

// Default is a process-wide device used when code does not care about
// placement (unit tests, examples).  Training code creates explicit devices.
var Default = New("gpu0", A100())

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Model returns the device cost model.
func (d *Device) Model() CostModel { return d.model }

// SetPhase labels subsequent launches with the given iteration phase and
// returns the previous phase so callers can restore it.
func (d *Device) SetPhase(p Phase) Phase {
	old := d.phase.Swap(int32(p))
	return Phase(old)
}

// CurrentPhase returns the phase subsequent launches will be charged to.
func (d *Device) CurrentPhase() Phase { return Phase(d.phase.Load()) }

// Launch records the execution of one kernel with the given cost.  It is
// the single entry point all simulated kernels go through; the fused kernels
// of the paper's Opt2/Opt3 call it once where the unfused graph calls it
// several times.
//
// Launch is safe for concurrent use and lock-free on the hot path: every
// counter is an atomic, so the totals (and hence the modeled device time)
// are identical no matter how host goroutines interleave their launches —
// the property that lets the worker pool parallelize kernels without
// perturbing the simulated accounting.
func (d *Device) Launch(name string, flops, bytes int64) {
	if d == nil {
		return
	}
	d.launch(name, Phase(d.phase.Load()), flops, bytes)
}

// LaunchPhase records one kernel charged to an explicit phase, regardless
// of the device's current phase.  Stages that may execute concurrently
// with another phase on the same device — the pipelined Kalman drain runs
// its P refresh while the next measurement's forward/backward is in
// flight — use it so overlap can neither misattribute nor double-charge
// the per-phase totals.
func (d *Device) LaunchPhase(name string, phase Phase, flops, bytes int64) {
	if d == nil {
		return
	}
	d.launch(name, phase, flops, bytes)
}

func (d *Device) launch(name string, phase Phase, flops, bytes int64) {
	d.kernels.Add(1)
	d.flops.Add(flops)
	d.bytes.Add(bytes)
	ns := d.model.KernelNs(flops, bytes)
	ps := int64(ns * 1000)
	d.modeledPs.Add(ps)
	p := int32(phase)
	if p < 0 || p >= int32(numPhases) {
		p = int32(PhaseOther)
	}
	d.phasePs[p].Add(ps)
	d.phaseKern[p].Add(1)
	m := d.byName.Load()
	c, ok := m.Load(name)
	if !ok {
		c, _ = m.LoadOrStore(name, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
	if tr := d.tracer.Load(); tr != nil {
		tr.record(name, Phase(p), ns)
	}
}

// Alloc records an allocation of n bytes of device memory and updates the
// peak if needed.
func (d *Device) Alloc(n int64) {
	if d == nil || n == 0 {
		return
	}
	live := d.live.Add(n)
	for {
		p := d.peak.Load()
		if live <= p || d.peak.CompareAndSwap(p, live) {
			return
		}
	}
}

// Free records that n bytes of device memory were released.
func (d *Device) Free(n int64) {
	if d == nil || n == 0 {
		return
	}
	d.live.Add(-n)
}

// ResetPeak sets the peak allocation mark back to the current live bytes,
// so an experiment can measure the peak of one region of interest.
func (d *Device) ResetPeak() {
	if d == nil {
		return
	}
	d.peak.Store(d.live.Load())
}

// Counters returns a snapshot of the accounting state.
func (d *Device) Counters() Counters {
	if d == nil {
		return Counters{}
	}
	c := Counters{
		Kernels:   d.kernels.Load(),
		Flops:     d.flops.Load(),
		Bytes:     d.bytes.Load(),
		ModeledNs: float64(d.modeledPs.Load()) / 1000,
		LiveBytes: d.live.Load(),
		PeakBytes: d.peak.Load(),
	}
	for i := 0; i < int(numPhases); i++ {
		c.PhaseNs[i] = float64(d.phasePs[i].Load()) / 1000
		c.PhaseKerns[i] = d.phaseKern[i].Load()
	}
	return c
}

// Reset clears every counter, including the allocator state.
func (d *Device) Reset() {
	if d == nil {
		return
	}
	d.kernels.Store(0)
	d.flops.Store(0)
	d.bytes.Store(0)
	d.modeledPs.Store(0)
	for i := 0; i < int(numPhases); i++ {
		d.phasePs[i].Store(0)
		d.phaseKern[i].Store(0)
	}
	d.live.Store(0)
	d.peak.Store(0)
	d.byName.Store(new(sync.Map))
}

// KernelBreakdown returns "name: count" lines sorted by descending count,
// useful when debugging which ops dominate a phase.
func (d *Device) KernelBreakdown() []string {
	type kv struct {
		name string
		n    int64
	}
	var all []kv
	d.byName.Load().Range(func(k, v any) bool {
		all = append(all, kv{k.(string), v.(*atomic.Int64).Load()})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].name < all[j].name
	})
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = fmt.Sprintf("%s: %d", e.name, e.n)
	}
	return out
}
