package device

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestKernelNsRoofline(t *testing.T) {
	m := CostModel{LaunchNs: 10, FlopsPerNs: 100, BytesPerNs: 10}
	// compute bound: 1000 flops -> 10ns compute, 10 bytes -> 1ns memory
	if got := m.KernelNs(1000, 10); got != 20 {
		t.Fatalf("compute-bound kernel: got %v want 20", got)
	}
	// memory bound: 10 flops -> 0.1ns, 1000 bytes -> 100ns
	if got := m.KernelNs(10, 1000); got != 110 {
		t.Fatalf("memory-bound kernel: got %v want 110", got)
	}
}

func TestLaunchAccounting(t *testing.T) {
	d := New("t", CostModel{LaunchNs: 1, FlopsPerNs: 1, BytesPerNs: 1})
	d.Launch("gemm", 100, 50)
	d.Launch("tanh", 10, 10)
	c := d.Counters()
	if c.Kernels != 2 || c.Flops != 110 || c.Bytes != 60 {
		t.Fatalf("counters = %+v", c)
	}
	// gemm: 1 + max(100,50) = 101; tanh: 1 + 10 = 11
	if math.Abs(c.ModeledNs-112) > 1e-6 {
		t.Fatalf("modeled ns = %v want 112", c.ModeledNs)
	}
}

func TestPhaseAttribution(t *testing.T) {
	d := New("t", CostModel{LaunchNs: 1, FlopsPerNs: 1, BytesPerNs: 1})
	d.SetPhase(PhaseForward)
	d.Launch("a", 9, 0)
	d.SetPhase(PhaseGradient)
	d.Launch("b", 0, 19)
	d.SetPhase(PhaseOptimizer)
	d.Launch("c", 4, 4)
	c := d.Counters()
	if c.PhaseKerns[PhaseForward] != 1 || c.PhaseKerns[PhaseGradient] != 1 || c.PhaseKerns[PhaseOptimizer] != 1 {
		t.Fatalf("phase kernels = %+v", c.PhaseKerns)
	}
	if math.Abs(c.PhaseNs[PhaseForward]-10) > 1e-6 {
		t.Fatalf("forward ns = %v", c.PhaseNs[PhaseForward])
	}
	if math.Abs(c.PhaseNs[PhaseGradient]-20) > 1e-6 {
		t.Fatalf("gradient ns = %v", c.PhaseNs[PhaseGradient])
	}
	if math.Abs(c.PhaseNs[PhaseOptimizer]-5) > 1e-6 {
		t.Fatalf("optimizer ns = %v", c.PhaseNs[PhaseOptimizer])
	}
}

func TestAllocatorPeak(t *testing.T) {
	d := New("t", A100())
	d.Alloc(100)
	d.Alloc(200)
	d.Free(100)
	d.Alloc(50)
	c := d.Counters()
	if c.LiveBytes != 250 {
		t.Fatalf("live = %d want 250", c.LiveBytes)
	}
	if c.PeakBytes != 300 {
		t.Fatalf("peak = %d want 300", c.PeakBytes)
	}
	d.ResetPeak()
	if got := d.Counters().PeakBytes; got != 250 {
		t.Fatalf("peak after reset = %d want 250", got)
	}
}

func TestCountersSub(t *testing.T) {
	d := New("t", CostModel{LaunchNs: 1})
	d.Launch("a", 0, 0)
	before := d.Counters()
	d.Launch("b", 0, 0)
	d.Launch("c", 0, 0)
	delta := d.Counters().Sub(before)
	if delta.Kernels != 2 {
		t.Fatalf("delta kernels = %d want 2", delta.Kernels)
	}
}

func TestConcurrentLaunch(t *testing.T) {
	d := New("t", A100())
	var wg sync.WaitGroup
	const g, per = 8, 1000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				d.Launch("k", 1, 1)
				d.Alloc(8)
				d.Free(8)
			}
		}()
	}
	wg.Wait()
	c := d.Counters()
	if c.Kernels != g*per {
		t.Fatalf("kernels = %d want %d", c.Kernels, g*per)
	}
	if c.LiveBytes != 0 {
		t.Fatalf("live = %d want 0", c.LiveBytes)
	}
}

func TestNilDeviceSafe(t *testing.T) {
	var d *Device
	d.Launch("x", 1, 1) // must not panic
	d.Alloc(10)
	d.Free(10)
	d.Reset()
	d.ResetPeak()
	if c := d.Counters(); c.Kernels != 0 {
		t.Fatalf("nil device counters = %+v", c)
	}
}

func TestKernelBreakdown(t *testing.T) {
	d := New("t", A100())
	d.Launch("gemm", 0, 0)
	d.Launch("gemm", 0, 0)
	d.Launch("tanh", 0, 0)
	lines := d.KernelBreakdown()
	if len(lines) != 2 || lines[0] != "gemm: 2" {
		t.Fatalf("breakdown = %v", lines)
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{PhaseForward: "forward", PhaseGradient: "gradient", PhaseOptimizer: "optimizer", PhaseOther: "other"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("phase %d string = %q want %q", p, p.String(), want)
		}
	}
}

func TestTracerRecordsAndWrites(t *testing.T) {
	d := New("t", CostModel{LaunchNs: 10, FlopsPerNs: 1, BytesPerNs: 1})
	tr := d.StartTrace()
	d.SetPhase(PhaseForward)
	d.Launch("gemm", 100, 0)
	d.SetPhase(PhaseOptimizer)
	d.Launch("p_update", 50, 0)
	d.StopTrace()
	d.Launch("after", 1, 1) // must not be recorded
	if tr.NumEvents() != 2 {
		t.Fatalf("events = %d want 2", tr.NumEvents())
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != 2 || parsed.TraceEvents[0].Name != "gemm" {
		t.Fatalf("trace = %+v", parsed.TraceEvents)
	}
	if parsed.TraceEvents[1].Cat != "optimizer" || parsed.TraceEvents[1].Dur <= 0 {
		t.Fatalf("trace = %+v", parsed.TraceEvents)
	}
}

// TestConcurrentLaunchAccounting: the host worker pool launches kernels
// from many goroutines against one device; every counter (including the
// modeled time, which accumulates in integer picoseconds) must land on
// the exact serial totals regardless of interleaving.
func TestConcurrentLaunchAccounting(t *testing.T) {
	d := New("concurrent", A100())
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				d.Launch("conc_kernel", 10, 80)
				d.Alloc(64)
				d.Free(64)
			}
		}()
	}
	wg.Wait()
	c := d.Counters()
	const total = goroutines * perG
	if c.Kernels != total {
		t.Fatalf("kernels = %d want %d", c.Kernels, total)
	}
	if c.Flops != 10*total || c.Bytes != 80*total {
		t.Fatalf("flops/bytes = %d/%d want %d/%d", c.Flops, c.Bytes, 10*total, 80*total)
	}
	perLaunchPs := int64(d.Model().KernelNs(10, 80) * 1000)
	if want := float64(perLaunchPs*total) / 1000; c.ModeledNs != want {
		t.Fatalf("modeled ns = %v want %v", c.ModeledNs, want)
	}
	if c.LiveBytes != 0 {
		t.Fatalf("live bytes = %d want 0", c.LiveBytes)
	}
	found := false
	for _, line := range d.KernelBreakdown() {
		if line == "conc_kernel: 4000" {
			found = true
		}
	}
	if !found {
		t.Fatalf("breakdown missing exact per-name count: %v", d.KernelBreakdown())
	}
}

// TestConcurrentTraceAttachDetach: attaching and detaching a tracer while
// launches are in flight must be race-free (the tracer pointer is atomic).
func TestConcurrentTraceAttachDetach(t *testing.T) {
	d := New("trace-conc", A100())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			d.Launch("k", 5, 40)
		}
	}()
	for i := 0; i < 50; i++ {
		tr := d.StartTrace()
		d.StopTrace()
		_ = tr.NumEvents()
	}
	<-done
}
