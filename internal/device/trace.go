package device

import (
	"encoding/json"
	"os"
	"sync"
)

// Tracer records kernel launches as a chrome://tracing ("trace event
// format") timeline, the profiling view used to produce figures like the
// paper's kernel-count study.  Attach one to a device with StartTrace;
// events are placed on the modeled-time axis, one track per phase.
type Tracer struct {
	mu     sync.Mutex
	events []traceEvent
	// cursor per phase, microseconds on the modeled clock
	cursors [numPhases]float64
}

type traceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`  // microseconds
	Dur   float64 `json:"dur"` // microseconds
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// StartTrace attaches a tracer to the device; subsequent launches are
// recorded until StopTrace.
func (d *Device) StartTrace() *Tracer {
	t := &Tracer{}
	d.tracer.Store(t)
	return t
}

// StopTrace detaches the tracer.
func (d *Device) StopTrace() {
	d.tracer.Store(nil)
}

// record adds one kernel with the given modeled duration to the phase's
// track.
func (t *Tracer) record(name string, phase Phase, durNs float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := int(phase)
	if p < 0 || p >= int(numPhases) {
		p = int(PhaseOther)
	}
	us := durNs / 1000
	t.events = append(t.events, traceEvent{
		Name: name, Cat: Phase(p).String(), Phase: "X",
		TS: t.cursors[p], Dur: us, PID: 1, TID: p + 1,
	})
	t.cursors[p] += us
}

// NumEvents returns the number of recorded kernels.
func (t *Tracer) NumEvents() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the timeline in trace-event format; open the file in
// chrome://tracing or Perfetto.
func (t *Tracer) WriteJSON(path string) error {
	t.mu.Lock()
	evs := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewEncoder(f).Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{evs})
}
