package optimize

import (
	"fekf/internal/dataset"
	"fekf/internal/deepmd"
)

// NaiveEKF is the fusiform-shaped ("computing-then-aggregation")
// multi-sample EKF of Figure 3(a) / Table 2's third row: every sample runs
// its own full Kalman update against its own P matrix, and the per-sample
// weight increments are averaged, δ* = E(K·ABE).
//
// Its cost profile is the point of the comparison with FEKF: the memory
// footprint grows linearly with the batch size (one P replica per sample
// slot) and, distributed, the P replicas diverge and must be communicated.
type NaiveEKF struct {
	KCfg                KalmanConfig
	ForceGroups         int
	EnergyDiv, ForceDiv TrustDiv

	states []*KalmanState
}

// NewNaiveEKF returns the fusiform baseline with paper-default EKF
// settings.
func NewNaiveEKF() *NaiveEKF {
	return &NaiveEKF{
		KCfg: DefaultKalmanConfig(), ForceGroups: 4,
		EnergyDiv: DivSqrtAtoms, ForceDiv: DivAtoms,
	}
}

// Name implements Optimizer.
func (nv *NaiveEKF) Name() string { return "Naive-EKF" }

// PBytes returns the total device memory held by all per-sample P
// replicas (the Naive-EKF memory overhead the paper calls unbearable).
func (nv *NaiveEKF) PBytes() int64 {
	var total int64
	for _, s := range nv.states {
		total += s.PBytes()
	}
	return total
}

// Step implements Optimizer: process each sample independently with its
// own P, average the per-sample increments, apply once.
func (nv *NaiveEKF) Step(m *deepmd.Model, ds *dataset.Dataset, idx []int) (StepInfo, error) {
	bs := len(idx)
	for len(nv.states) < bs {
		nv.states = append(nv.states, NewKalmanState(nv.KCfg, m.Params.LayerSizes(), m.Dev))
	}

	n := m.Params.NumParams()
	sum := make([]float64, n)
	var info StepInfo
	for s, sample := range idx {
		env, err := deepmd.BuildBatchEnv(m.Cfg, ds, []int{sample})
		if err != nil {
			return StepInfo{}, err
		}
		lab := deepmd.BatchLabels(ds, []int{sample})
		ks := nv.states[s]
		eDiv := nv.EnergyDiv.Value(lab.NaPer)
		fDiv := nv.ForceDiv.Value(lab.NaPer)

		out := m.Forward(env, false)
		seedE, eABE := energyMeasurement(out, lab, eDiv)
		gE := m.EnergyGrad(out, seedE)
		accumulate(sum, ks.Update(gE, eABE, 1))
		out.Graph.Release()

		out2 := m.Forward(env, true)
		info.EnergyABE += eABE
		info.ForceABE += meanAbsForceError(out2, lab)
		for grp := 0; grp < nv.ForceGroups; grp++ {
			seedF, fABE := forceMeasurement(out2, lab, grp, nv.ForceGroups, fDiv)
			gF := m.ForceGrad(out2, seedF)
			accumulate(sum, ks.Update(gF, fABE, 1))
		}
		out2.Graph.Release()
	}

	inv := 1 / float64(bs)
	for i := range sum {
		sum[i] *= inv
	}
	m.Params.AddFlat(sum)
	info.EnergyABE *= inv
	info.ForceABE *= inv
	return info, nil
}

func accumulate(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}
