// Package optimize implements the training algorithms the paper compares:
// the Adam first-order baseline, the instance-by-instance RLEKF, the
// fusiform-shaped Naive-EKF ("computing-then-aggregation"), and the
// paper's contribution FEKF ("aggregation-then-computing", Algorithm 1),
// plus the optimizer-side system optimizations of Opt3 (the handwritten
// fused P-update kernel and Pg caching).
package optimize

// Block is a contiguous slice [Lo,Hi) of the flat parameter vector that
// shares one error-covariance matrix P.
type Block struct {
	Lo, Hi int
}

// Size returns the number of parameters in the block.
func (b Block) Size() int { return b.Hi - b.Lo }

// SplitBlocks implements the gather-and-split strategy of RLEKF that the
// paper reuses: walking the per-layer parameter counts in order, adjacent
// layers are gathered into one block while the total stays within
// blockSize; a single layer larger than blockSize is split into chunks of
// blockSize with the remainder forming the next gather seed.  For the
// paper's 26.5k-parameter DeePMD network with blockSize 10240 this yields
// the four-block structure of Section 5.3 (small embedding block, two
// chunks of the 20k fitting layer, gathered tail).
func SplitBlocks(layerSizes []int, blockSize int) []Block {
	if blockSize < 1 {
		blockSize = 1
	}
	var blocks []Block
	off := 0
	cur := Block{Lo: 0, Hi: 0}
	flush := func() {
		if cur.Size() > 0 {
			blocks = append(blocks, cur)
		}
		cur = Block{Lo: off, Hi: off}
	}
	for _, n := range layerSizes {
		if n <= 0 {
			continue
		}
		if cur.Size()+n <= blockSize {
			cur.Hi += n
			off += n
			continue
		}
		flush()
		// layer does not fit in an empty block: split it
		rem := n
		for rem > blockSize {
			blocks = append(blocks, Block{Lo: off, Hi: off + blockSize})
			off += blockSize
			rem -= blockSize
		}
		cur = Block{Lo: off, Hi: off + rem}
		off += rem
	}
	flush()
	return blocks
}

// BlockSizes returns the per-block parameter counts.
func BlockSizes(blocks []Block) []int {
	out := make([]int, len(blocks))
	for i, b := range blocks {
		out[i] = b.Size()
	}
	return out
}
