package optimize

import (
	"fmt"

	"fekf/internal/tensor"
)

// This file holds the shard-aware entry points of the Kalman update used
// by internal/pshard: per-row-slab versions of the gain-stage mat-vec and
// the deferred covariance drain.  A rank that owns rows [rowLo,rowHi) of
// one block's P can run these on just its slab and obtain values bitwise
// identical to the full-block kernels in kalman.go / tensor/kernels.go.
//
// The bitwise contract rests on two facts:
//
//  1. SymMatVecInto and PUpdateFused/PUpdateNaive compute each output row
//     from that row's data alone (plus the shared k/g vectors), so a slab
//     can reproduce its rows with the exact same expression trees.
//  2. P is exactly bitwise-symmetric at all times: it starts as the
//     identity, PUpdateFused writes the same value to both mirror
//     elements, and PUpdateNaive's symmetrization makes mirrors bit-equal
//     (k[i]*k[j] == k[j]*k[i] in IEEE 754).  The drain kernels read the
//     mirror element P[j][i] when updating P[i][j]; a slab owner
//     substitutes its own row value P[i][j], which is the same bits.
//
// Every expression below keeps the source-level shape of its full-block
// counterpart (operand order inside the multiply chains, the 0.5*(x+y)
// symmetrization form) so any fused-multiply-add contraction the compiler
// applies — per the Go spec, decided by source expression shape — applies
// identically, keeping the equivalence bitwise on every architecture.

// SlabMatVecInto computes dst = (P·g)[rowLo:rowLo+rows.Rows) from a row
// slab of one block's P: rows is the (hi−lo)×n slab, g the full block
// gradient (length n), dst the owned fragment (length hi−lo).  Each output
// element uses the same serial dot loop as tensor.SymMatVecInto, so the
// fragment is bitwise identical to the corresponding rows of the
// full-block product.
func SlabMatVecInto(dst []float64, rows *tensor.Dense, g []float64) {
	if len(dst) != rows.Rows || len(g) != rows.Cols {
		panic(fmt.Sprintf("optimize: SlabMatVecInto slab %dx%d dst %d g %d",
			rows.Rows, rows.Cols, len(dst), len(g)))
	}
	n := rows.Cols
	tensor.ParallelFor(rows.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := rows.Data[i*n : (i+1)*n]
			s := 0.0
			for k, v := range row {
				s += v * g[k]
			}
			dst[i] = s
		}
	})
}

// SlabDrainFused refreshes rows [rowLo,rowLo+rows.Rows) of one block's
// covariance in place: P ← (1/λ)(P − (1/a)KKᵀ) with symmetrization, the
// slab form of tensor.PUpdateFused.  k is the full block gain (length n =
// rows.Cols).  The fused kernel computes each element pair once with the
// smaller index's k first; the slab reproduces that orientation per
// element and substitutes its own row value for the (bit-equal) mirror
// read, so the resulting rows match the full-block kernel bitwise.
func SlabDrainFused(rows *tensor.Dense, rowLo int, k []float64, a, lambda float64) {
	n := rows.Cols
	if len(k) != n {
		panic(fmt.Sprintf("optimize: SlabDrainFused slab %dx%d k %d", rows.Rows, n, len(k)))
	}
	invA := 1 / a
	invL := 1 / lambda
	tensor.ParallelFor(rows.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			i := rowLo + r
			ki := k[i]
			row := rows.Data[r*n : (r+1)*n]
			for j := 0; j < i; j++ {
				// Mirror of the fused kernel's (j,i) pass: k[j] (the
				// smaller index) leads the product.
				row[j] = invL * (0.5*(row[j]+row[j]) - invA*k[j]*ki)
			}
			row[i] = invL * (row[i] - invA*ki*ki)
			for j := i + 1; j < n; j++ {
				row[j] = invL * (0.5*(row[j]+row[j]) - invA*ki*k[j])
			}
		}
	})
}

// SlabDrainNaive is the slab form of tensor.PUpdateNaive: the unfused
// outer-product update followed by the symmetrization pass.  The outer
// product stores k[row]*k[col] (row factor first, as tensor.Outer does)
// and the symmetrization averages the element with its pre-averaged
// mirror, which is bit-equal by symmetry and commutativity — hence
// 0.5*(u+u) here.
func SlabDrainNaive(rows *tensor.Dense, rowLo int, k []float64, a, lambda float64) {
	n := rows.Cols
	if len(k) != n {
		panic(fmt.Sprintf("optimize: SlabDrainNaive slab %dx%d k %d", rows.Rows, n, len(k)))
	}
	invA := 1 / a
	invL := 1 / lambda
	tensor.ParallelFor(rows.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ki := k[rowLo+r]
			row := rows.Data[r*n : (r+1)*n]
			for j := 0; j < n; j++ {
				t := ki * k[j]
				u := invL * (row[j] - invA*t)
				row[j] = 0.5 * (u + u)
			}
		}
	})
}
