package optimize

import (
	"math"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
)

// FEKF is the paper's Fast Extended Kalman Filter (Algorithm 1): a
// funnel-shaped ("aggregation-then-computing") multi-sample minibatch EKF.
// Gradients and absolute errors are reduced over the batch before the
// Kalman update, so every sample shares one P, and the weight increment
// carries the √bs quasi-learning-rate factor.
//
// RLEKF is recovered as the degenerate single-sample instance (batch size
// 1, factor 1): construct it with NewRLEKF and drive it with bs=1.
type FEKF struct {
	KCfg KalmanConfig
	// Factor is the quasi-learning-rate rule (√bs by default; Figure 4
	// ablates 1 and bs).
	Factor QuasiLRFactor
	// ForceGroups is the number of sequential force measurement updates
	// per iteration (paper: 4).
	ForceGroups int
	// EnergyDiv and ForceDiv divide the energy and force measurement
	// errors fed to the filter, the trust-region damping knob of the
	// reference implementation (which divides both by the atom count,
	// matched to its 10k-70k-sample datasets).  The repo defaults —
	// √Na for energy, 1 for force — reach the same optima in
	// proportionally fewer updates at this reproduction's dataset sizes.
	EnergyDiv, ForceDiv TrustDiv
	// Pipeline overlaps each measurement's covariance drain with the next
	// measurement's forward/backward (the two-stage force-group pipeline);
	// results are bitwise identical to the serial order.  Defaults to
	// PipelineDefault() (on unless FEKF_PIPELINE disables it).
	Pipeline bool

	name string
	ks   *KalmanState
}

// TrustDiv selects the measurement-error damping rule.
type TrustDiv int

// Damping rules for the Kalman measurement error.
const (
	// DivSqrtAtoms divides errors by √Na (repo default).
	DivSqrtAtoms TrustDiv = iota
	// DivAtoms divides errors by Na (the reference implementation's rule,
	// matched to its 10k-70k-sample datasets).
	DivAtoms
	// DivOne feeds raw mean errors (aggressive).
	DivOne
)

// Value returns the divisor for a system of na atoms.
func (d TrustDiv) Value(na int) float64 {
	switch d {
	case DivAtoms:
		return float64(na)
	case DivOne:
		return 1
	default:
		return math.Sqrt(float64(na))
	}
}

// NewFEKF returns the paper-default FEKF optimizer.
func NewFEKF() *FEKF {
	return &FEKF{
		KCfg:        DefaultKalmanConfig(),
		Factor:      FactorSqrtBS,
		ForceGroups: 4,
		EnergyDiv:   DivSqrtAtoms,
		ForceDiv:    DivAtoms,
		Pipeline:    PipelineDefault(),
		name:        "FEKF",
	}
}

// NewRLEKF returns the instance-by-instance RLEKF baseline: identical
// update rule at batch size 1 with unit factor.  Drive it with bs=1.
func NewRLEKF() *FEKF {
	return &FEKF{
		KCfg:        DefaultKalmanConfig(),
		Factor:      FactorOne,
		ForceGroups: 4,
		EnergyDiv:   DivSqrtAtoms,
		ForceDiv:    DivAtoms,
		Pipeline:    PipelineDefault(),
		name:        "RLEKF",
	}
}

// Name implements Optimizer.
func (f *FEKF) Name() string { return f.name }

// State exposes the Kalman state (nil before the first step); used by the
// experiment harness for memory and block-structure reporting.
func (f *FEKF) State() *KalmanState { return f.ks }

// PBytes returns the device bytes resident in the covariance blocks (0
// before the Kalman state exists).  Replicated and sharded fleets report
// the same gauge off this method, making their memory footprints directly
// comparable.
func (f *FEKF) PBytes() int64 {
	if f.ks == nil {
		return 0
	}
	return f.ks.PBytes()
}

// InitState creates the Kalman state ahead of the first Step and returns
// it (a no-op once initialized).  Fleet replicas initialize their filters
// eagerly so the distributed step and the shared-state checkpoint can
// address P before any local Step has run; NewKalmanState is
// deterministic, so eagerly-built replicas start bit-identical.
func (f *FEKF) InitState(m *deepmd.Model) *KalmanState {
	if f.ks == nil {
		f.ks = NewKalmanState(f.KCfg, m.Params.LayerSizes(), m.Dev)
	}
	return f.ks
}

// Step implements Optimizer: one energy measurement update followed by
// ForceGroups force measurement updates, all on batch-reduced gradients
// and errors (the funnel dataflow of Figure 3(b)).
//
// With Pipeline on, each measurement update is split into its gain stage
// (P·g, a, K, Δw — applied immediately, preserving the sequential
// measurement semantics) and its covariance drain, which runs on a
// background goroutine while the next group's backward — or, for the
// energy update, the force forward pass — executes.  The hand-off is
// explicit: the drain of group k must complete before group k+1's gain
// stage reads P, and group k+1's backward starts only after group k's
// weight increment has been applied, so the weight vector it
// differentiates against is the post-update weight of group k.  The drain
// touches only P and the gain scratch (disjoint from weights and graph),
// so the pipelined step is bitwise identical to the serial one.
func (f *FEKF) Step(m *deepmd.Model, ds *dataset.Dataset, idx []int) (StepInfo, error) {
	if f.ks == nil {
		f.ks = NewKalmanState(f.KCfg, m.Params.LayerSizes(), m.Dev)
	}
	env, err := deepmd.BuildBatchEnv(m.Cfg, ds, idx)
	if err != nil {
		return StepInfo{}, err
	}
	lab := deepmd.BatchLabels(ds, idx)
	scale := f.Factor.Apply(len(idx))
	eDiv := f.EnergyDiv.Value(lab.NaPer)
	fDiv := f.ForceDiv.Value(lab.NaPer)

	// Energy update: reduce signs/errors over the batch, one backward for
	// the reduced gradient (early reduction), one Kalman update.  Its P
	// drain overlaps the force forward pass below.
	out := m.Forward(env, false)
	seedE, eABE := energyMeasurement(out, lab, eDiv)
	gE := m.EnergyGrad(out, seedE)
	deltaE, drainE := f.ks.UpdateSplit(gE, eABE, scale)
	m.Params.AddFlat(deltaE)
	wait := StartDrain(drainE, f.Pipeline)
	out.Graph.Release()

	// Force updates: one forward with the post-energy-update weights,
	// then ForceGroups sequential measurement updates.  The group
	// gradients come from this single graph (weights as of the forward),
	// the standard approximation of the reference implementation.
	out2 := m.Forward(env, true)
	info := StepInfo{EnergyABE: eABE, ForceABE: meanAbsForceError(out2, lab)}
	for grp := 0; grp < f.ForceGroups; grp++ {
		seedF, fABE := forceMeasurement(out2, lab, grp, f.ForceGroups, fDiv)
		gF := m.ForceGrad(out2, seedF)
		wait()
		deltaF, drainF := f.ks.UpdateSplit(gF, fABE, scale)
		m.Params.AddFlat(deltaF)
		wait = StartDrain(drainF, f.Pipeline)
	}
	wait()
	out2.Graph.Release()
	return info, nil
}
