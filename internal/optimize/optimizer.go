package optimize

import (
	"math"
	"os"
	"strings"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/tensor"
)

// Optimizer advances the model by one training step on the given
// minibatch (snapshot indices into ds).  Implementations build the
// environments they need, which lets the fusiform Naive-EKF process
// samples individually while FEKF and Adam batch them.
type Optimizer interface {
	Name() string
	Step(m *deepmd.Model, ds *dataset.Dataset, idx []int) (StepInfo, error)
}

// PipelineDefault reports the default for the two-stage force-group
// pipeline (FEKF.Pipeline and the cluster trainer's Pipeline field):
// enabled unless the FEKF_PIPELINE environment variable is set to one of
// 0/false/off/no.  The pipeline is bitwise identical to the serial
// measurement order (see DESIGN.md), so the switch exists for ablation
// and debugging rather than correctness.
func PipelineDefault() bool {
	switch strings.ToLower(os.Getenv("FEKF_PIPELINE")) {
	case "0", "false", "off", "no":
		return false
	}
	return true
}

// StartDrain schedules the deferred covariance refresh returned by
// KalmanState.UpdateSplit.  With pipelined=false it drains inline,
// recovering the strictly serial measurement order of Algorithm 1; with
// pipelined=true the drain runs on a background goroutine so the caller
// can overlap the next measurement's forward/backward — or, across ranks,
// its ring allreduce — with the P refresh.  The returned wait blocks
// until the drain has completed and must be called before the next
// UpdateSplit on the same state (the hand-off that keeps the sequential
// measurement semantics: the next gain stage reads the refreshed P, and
// the weight vector it differentiates against is the post-update weight
// of the previous group).
func StartDrain(drain func(), pipelined bool) (wait func()) {
	if !pipelined {
		drain()
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		drain()
	}()
	return func() { <-done }
}

// StepInfo reports what a step saw before updating the weights.
type StepInfo struct {
	// EnergyABE is the mean absolute per-atom energy error.
	EnergyABE float64
	// ForceABE is the mean absolute force-component error.
	ForceABE float64
	// Loss is the scalar objective for gradient-descent optimizers
	// (zero for Kalman optimizers, which have no explicit loss).
	Loss float64
}

// energyMeasurement derives the Kalman energy-update inputs from a batch
// output, following Algorithm 1 lines 3-7: the gradient seed is the sign
// vector σ_b of the *summed* signed predictions (Ŷ.sum().backward() — the
// sum, not the mean, which is what makes the Kalman gain K = Pg/(λ+gᵀPg)
// self-normalizing), and ABE is the mean absolute per-atom energy error.
func energyMeasurement(out *deepmd.Output, lab *deepmd.Labels, div float64) (seed *tensor.Dense, abe float64) {
	seed, sum := EnergySeed(out, lab)
	return seed, sum / (float64(out.Energies.Rows()) * div)
}

// EnergySeed returns the per-image sign vector σ_b of the energy
// measurement and the raw Σ|ΔE| over the batch.  The distributed trainer
// allreduces these unscaled partials before forming the Kalman inputs.
func EnergySeed(out *deepmd.Output, lab *deepmd.Labels) (seed *tensor.Dense, absSum float64) {
	b := out.Energies.Rows()
	seed = tensor.New(b, 1)
	for i := 0; i < b; i++ {
		pred := out.Energies.Value.Data[i]
		label := lab.Energy.Data[i]
		sign := 1.0
		if pred >= label {
			sign = -1
		}
		seed.Data[i] = sign
		absSum += math.Abs(label - pred)
	}
	return seed, absSum
}

// forceMeasurement derives the Kalman force-update inputs for one of the
// nGroups interleaved force-component groups: the seed is the per-component
// sign vector of the summed signed predictions over the group, and ABE is
// the mean absolute force error of the group scaled by 1/Na, the reference
// implementation's convention.
func forceMeasurement(out *deepmd.Output, lab *deepmd.Labels, group, nGroups int, div float64) (seed *tensor.Dense, abe float64) {
	seed, sum, count := ForceSeed(out, lab, group, nGroups)
	if count == 0 {
		return seed, 0
	}
	return seed, sum / (float64(count) * div)
}

// ForceSeed returns the per-component sign vector of one force group, the
// raw Σ|ΔF| over the group, and the component count; the distributed
// trainer allreduces the unscaled partials.
func ForceSeed(out *deepmd.Output, lab *deepmd.Labels, group, nGroups int) (seed *tensor.Dense, absSum float64, count int) {
	n := out.Forces.Rows()
	seed = tensor.New(n, 1)
	for c := group; c < n; c += nGroups {
		pred := out.Forces.Value.Data[c]
		label := lab.Force.Data[c]
		sign := 1.0
		if pred >= label {
			sign = -1
		}
		seed.Data[c] = sign
		absSum += math.Abs(label - pred)
		count++
	}
	return seed, absSum, count
}

// ForceErrorSum returns the raw Σ|ΔF| over every force component together
// with the component count; the distributed trainer allreduces these
// partials so its StepInfo.ForceABE reports the batch-global mean the
// single-device Step contract promises.
func ForceErrorSum(out *deepmd.Output, lab *deepmd.Labels) (absSum float64, count int) {
	n := out.Forces.Rows()
	for i := 0; i < n; i++ {
		absSum += math.Abs(out.Forces.Value.Data[i] - lab.Force.Data[i])
	}
	return absSum, n
}

// meanAbsForceError is a diagnostic over all components.
func meanAbsForceError(out *deepmd.Output, lab *deepmd.Labels) float64 {
	s, n := ForceErrorSum(out, lab)
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
