package optimize

import (
	"fmt"
	"math"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
)

// Adam is the first-order baseline in the paper's configuration: base
// learning rate 1e-3 with exponential decay ×0.95 every 5000 steps, and
// the square-root batch-size scaling rule the paper identifies as the
// best-converging large-batch heuristic (Table 1's setup).
type Adam struct {
	LR0        float64 // base learning rate (before batch scaling)
	Beta1      float64
	Beta2      float64
	Eps        float64
	DecayEvery int     // steps between LR decays
	DecayRate  float64 // multiplicative decay
	ScaleBS    bool    // multiply LR by sqrt(batch size)
	Weights    deepmd.LossWeights

	step int
	m, v []float64
}

// NewAdam returns the paper-default Adam configuration.
func NewAdam() *Adam {
	return &Adam{
		LR0: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		DecayEvery: 5000, DecayRate: 0.95, ScaleBS: true,
		Weights: deepmd.DefaultLossWeights(),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "Adam" }

// LR returns the effective learning rate at the current step for batch
// size bs.
func (a *Adam) LR(bs int) float64 {
	lr := a.LR0
	if a.ScaleBS && bs > 1 {
		lr *= math.Sqrt(float64(bs))
	}
	if a.DecayEvery > 0 {
		lr *= math.Pow(a.DecayRate, float64(a.step/a.DecayEvery))
	}
	return lr
}

// Step implements Optimizer: one forward/backward pass over the batch and
// an Adam parameter update.
func (a *Adam) Step(m *deepmd.Model, ds *dataset.Dataset, idx []int) (StepInfo, error) {
	grad, info, err := lossGradient(m, ds, idx, a.Weights)
	if err != nil {
		return StepInfo{}, err
	}
	n := m.Params.NumParams()
	if a.m == nil {
		a.m = make([]float64, n)
		a.v = make([]float64, n)
	} else if len(a.m) != n {
		return StepInfo{}, fmt.Errorf("optimize: Adam state sized %d for %d params", len(a.m), n)
	}

	prev := m.Dev.SetPhase(device.PhaseOptimizer)
	a.step++
	lr := a.LR(len(idx))
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	delta := make([]float64, n)
	for i, g := range grad {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mhat := a.m[i] / b1c
		vhat := a.v[i] / b2c
		delta[i] = -lr * mhat / (math.Sqrt(vhat) + a.Eps)
	}
	m.Params.AddFlat(delta)
	m.Dev.Launch("adam_update", int64(8*n), int64(5*8*n))
	m.Dev.SetPhase(prev)
	return info, nil
}
