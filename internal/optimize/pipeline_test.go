package optimize

import (
	"math/rand"
	"testing"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/tensor"
)

// pipelineSweepShapes covers odd and even block splits at the test block
// size 128: a split layer plus gathered tails (odd sizes exercise the
// remainder paths of the striped kernels).
var pipelineSweepShapes = [][]int{
	{70, 300, 64, 41}, // odd, multi-block with split layer
	{33, 257, 65},     // odd, prime-ish sizes
	{64, 256, 128},    // even, power-of-two sizes
}

// TestUpdateSplitDrainBitwiseMatchesUpdate is the state-level half of the
// pipeline's bitwise-equivalence contract: the gain-stage/drain split —
// with the drain running on a background goroutine, as the pipelined FEKF
// schedules it — must produce exactly the weight increments, P blocks and
// λ schedule of the one-shot serial Update, at every worker count and for
// odd and even block shapes.
func TestUpdateSplitDrainBitwiseMatchesUpdate(t *testing.T) {
	for _, opt3 := range []bool{false, true} {
		for si, shape := range pipelineSweepShapes {
			cfg := DefaultKalmanConfig()
			cfg.BlockSize = 128
			if opt3 {
				cfg = cfg.WithOpt3()
			}
			ref := NewKalmanState(cfg, shape, device.New("ref", device.A100()))
			n := ref.Blocks[len(ref.Blocks)-1].Hi

			for _, workers := range []int{1, 2, 4, 8} {
				split := NewKalmanState(cfg, shape, device.New("split", device.A100()))
				rng := rand.New(rand.NewSource(int64(97 + si)))
				refRng := rand.New(rand.NewSource(int64(97 + si)))
				wait := func() {}
				for step := 0; step < 4; step++ {
					g := make([]float64, n)
					for i := range g {
						g[i] = rng.NormFloat64()
					}
					gRef := make([]float64, n)
					for i := range gRef {
						gRef[i] = refRng.NormFloat64()
					}

					prev := tensor.SetWorkers(1)
					dRef := ref.Update(gRef, 0.2, 1.5)
					tensor.SetWorkers(workers)
					wait()
					dSplit, drain := split.UpdateSplit(g, 0.2, 1.5)
					wait = StartDrain(drain, true)
					tensor.SetWorkers(prev)

					for i := range dRef {
						if dSplit[i] != dRef[i] {
							t.Fatalf("opt3=%v shape %d workers %d step %d: delta[%d] = %v (split) vs %v (serial)",
								opt3, si, workers, step, i, dSplit[i], dRef[i])
						}
					}
				}
				wait()
				for b := range ref.P {
					for i, v := range ref.P[b].Data {
						if split.P[b].Data[i] != v {
							t.Fatalf("opt3=%v shape %d workers %d: P[%d] elem %d diverged",
								opt3, si, workers, b, i)
						}
					}
				}
				if split.Lambda != ref.Lambda || split.Updates != ref.Updates {
					t.Fatalf("opt3=%v shape %d workers %d: schedule diverged: λ %v vs %v, updates %d vs %d",
						opt3, si, workers, split.Lambda, ref.Lambda, split.Updates, ref.Updates)
				}
				// reset the reference for the next worker count
				ref.Free()
				ref = NewKalmanState(cfg, shape, device.New("ref", device.A100()))
			}
		}
	}
}

// TestUpdateSplitGuardsAndIdempotence: a second UpdateSplit before the
// previous drain has completed must panic (the gain stage would read a
// stale P), and drain must be idempotent so a defensive second call is
// harmless.
func TestUpdateSplitGuardsAndIdempotence(t *testing.T) {
	cfg := DefaultKalmanConfig()
	cfg.BlockSize = 32
	ks := NewKalmanState(cfg, []int{16, 20}, device.New("g", device.A100()))
	g := make([]float64, 36)
	for i := range g {
		g[i] = float64(i%7) - 3
	}
	_, drain := ks.UpdateSplit(g, 0.1, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("UpdateSplit before drain must panic")
			}
		}()
		ks.UpdateSplit(g, 0.1, 1)
	}()
	drain()
	drain() // idempotent
	pAfter := ks.P[0].Data[0]
	drain()
	if ks.P[0].Data[0] != pAfter {
		t.Fatal("extra drain call mutated P")
	}
	if _, d2 := ks.UpdateSplit(g, 0.1, 1); d2 != nil {
		d2() // a fresh split after a completed drain must work
	}
}

// pipelineModelSetup builds one tiny dataset and a base model the sweep
// clones per configuration, so every run starts from identical weights.
func pipelineModelSetup(t *testing.T) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 6, SampleEvery: 4, EquilSteps: 30, Tiny: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("base", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

// runFEKFSteps drives `steps` FEKF iterations on a fresh clone and returns
// the optimizer and final StepInfo.
func runFEKFSteps(t *testing.T, base *deepmd.Model, ds *dataset.Dataset,
	pipeline bool, groups, steps int, idx []int) (*FEKF, *deepmd.Model, StepInfo) {
	t.Helper()
	m := base.CloneFor(device.New("run", device.A100()))
	f := NewFEKF()
	f.Pipeline = pipeline
	f.ForceGroups = groups
	var info StepInfo
	var err error
	for s := 0; s < steps; s++ {
		if info, err = f.Step(m, ds, idx); err != nil {
			t.Fatal(err)
		}
	}
	return f, m, info
}

// TestPipelinedFEKFBitwiseMatchesSerial is the full-model half of the
// equivalence contract: with the covariance drain overlapping the next
// measurement's forward/backward, the weights, every P block, λ and the
// reported StepInfo must stay bitwise identical to the strictly serial
// schedule — across worker counts and force-group counts.
func TestPipelinedFEKFBitwiseMatchesSerial(t *testing.T) {
	ds, base := pipelineModelSetup(t)
	idx := []int{0, 1, 2, 3}
	const steps = 2
	for _, groups := range []int{1, 2, 4} {
		prev := tensor.SetWorkers(1)
		fS, mS, infoS := runFEKFSteps(t, base, ds, false, groups, steps, idx)
		tensor.SetWorkers(prev)
		wS := mS.Params.FlattenValues()
		for _, workers := range []int{1, 2, 4, 8} {
			prev := tensor.SetWorkers(workers)
			fP, mP, infoP := runFEKFSteps(t, base, ds, true, groups, steps, idx)
			tensor.SetWorkers(prev)
			wP := mP.Params.FlattenValues()
			for i := range wS {
				if wP[i] != wS[i] {
					t.Fatalf("groups %d workers %d: weight[%d] = %v (pipelined) vs %v (serial)",
						groups, workers, i, wP[i], wS[i])
				}
			}
			for b := range fS.State().P {
				for i, v := range fS.State().P[b].Data {
					if fP.State().P[b].Data[i] != v {
						t.Fatalf("groups %d workers %d: P[%d] elem %d diverged", groups, workers, b, i)
					}
				}
			}
			if fP.State().Lambda != fS.State().Lambda {
				t.Fatalf("groups %d workers %d: λ %v vs %v", groups, workers, fP.State().Lambda, fS.State().Lambda)
			}
			if infoP != infoS {
				t.Fatalf("groups %d workers %d: StepInfo %+v vs %+v", groups, workers, infoP, infoS)
			}
		}
	}
}

// TestPipelineAccountingMatchesSerial: overlapping the drain with the next
// measurement must not change what the simulated device *charges* — same
// kernels, flops, bytes, modeled time, per-phase attribution and allocator
// state with the pipeline on and off.  Opt3's fused drain allocates no
// temporaries, so even PeakBytes must agree exactly.
func TestPipelineAccountingMatchesSerial(t *testing.T) {
	ds, base := pipelineModelSetup(t)
	idx := []int{0, 1, 2, 3}
	run := func(pipeline bool) device.Counters {
		dev := device.New("acct", device.A100())
		m := base.CloneFor(dev)
		f := NewFEKF()
		f.KCfg = f.KCfg.WithOpt3()
		f.KCfg.BlockSize = 128
		f.Pipeline = pipeline
		for s := 0; s < 2; s++ {
			if _, err := f.Step(m, ds, idx); err != nil {
				t.Fatal(err)
			}
		}
		return dev.Counters()
	}
	serial := run(false)
	pipelined := run(true)
	if pipelined.Kernels != serial.Kernels || pipelined.Flops != serial.Flops ||
		pipelined.Bytes != serial.Bytes || pipelined.ModeledNs != serial.ModeledNs {
		t.Fatalf("device totals diverged:\n pipelined %+v\n serial    %+v", pipelined, serial)
	}
	if pipelined.PhaseKerns != serial.PhaseKerns || pipelined.PhaseNs != serial.PhaseNs {
		t.Fatalf("phase attribution diverged:\n pipelined kerns %v ns %v\n serial    kerns %v ns %v",
			pipelined.PhaseKerns, pipelined.PhaseNs, serial.PhaseKerns, serial.PhaseNs)
	}
	if pipelined.LiveBytes != serial.LiveBytes || pipelined.PeakBytes != serial.PeakBytes {
		t.Fatalf("allocator state diverged:\n pipelined live %d peak %d\n serial    live %d peak %d",
			pipelined.LiveBytes, pipelined.PeakBytes, serial.LiveBytes, serial.PeakBytes)
	}
	if pipelined.PhaseKerns[device.PhaseOptimizer] == 0 {
		t.Fatal("no kernels charged to the optimizer phase")
	}
}
