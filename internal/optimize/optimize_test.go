package optimize

import (
	"math"
	"math/rand"
	"testing"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/tensor"
)

func TestSplitBlocksPaperStructure(t *testing.T) {
	// the paper's single-species DeePMD layer sizes with blocksize 10240
	layers := []int{50, 650, 650, 20050, 2550, 2550, 51}
	blocks := SplitBlocks(layers, 10240)
	sizes := BlockSizes(blocks)
	want := []int{1350, 10240, 9810, 5151}
	if len(sizes) != len(want) {
		t.Fatalf("block sizes %v, want %v", sizes, want)
	}
	total := 0
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("block sizes %v, want %v", sizes, want)
		}
		total += sizes[i]
	}
	if total != 26551 {
		t.Fatalf("blocks cover %d params", total)
	}
	// contiguity
	off := 0
	for _, b := range blocks {
		if b.Lo != off {
			t.Fatalf("non-contiguous blocks: %v", blocks)
		}
		off = b.Hi
	}
}

func TestSplitBlocksEdgeCases(t *testing.T) {
	if got := BlockSizes(SplitBlocks([]int{5, 5, 5}, 100)); len(got) != 1 || got[0] != 15 {
		t.Fatalf("small layers should gather into one block: %v", got)
	}
	if got := BlockSizes(SplitBlocks([]int{250}, 100)); len(got) != 3 || got[0] != 100 || got[2] != 50 {
		t.Fatalf("oversized layer should split: %v", got)
	}
	if got := SplitBlocks(nil, 100); len(got) != 0 {
		t.Fatalf("empty layers gave %v", got)
	}
	if got := BlockSizes(SplitBlocks([]int{3, 0, 4}, 100)); len(got) != 1 || got[0] != 7 {
		t.Fatalf("zero-size layers should be skipped: %v", got)
	}
}

// TestKalmanLinearRegression: the EKF core must identify the weights of a
// noiseless linear model y = w*ᵀx from scalar measurements.
func TestKalmanLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 12
	wTrue := make([]float64, n)
	for i := range wTrue {
		wTrue[i] = rng.NormFloat64()
	}
	w := make([]float64, n)
	dev := device.New("t", device.A100())
	ks := NewKalmanState(DefaultKalmanConfig(), []int{n}, dev)

	dotF := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	for iter := 0; iter < 200; iter++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		pred := dotF(w, x)
		label := dotF(wTrue, x)
		sign := 1.0
		if pred >= label {
			sign = -1
		}
		g := make([]float64, n)
		for i := range g {
			g[i] = sign * x[i] // d(σ·pred)/dw
		}
		abe := math.Abs(label - pred)
		delta := ks.Update(g, abe, 1)
		for i := range w {
			w[i] += delta[i]
		}
	}
	err := 0.0
	for i := range w {
		err += (w[i] - wTrue[i]) * (w[i] - wTrue[i])
	}
	err = math.Sqrt(err / n)
	if err > 0.05 {
		t.Fatalf("EKF failed to identify linear model: RMSE %v", err)
	}
}

func TestKalmanPSymmetricAndLambdaSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dev := device.New("t", device.A100())
	cfg := DefaultKalmanConfig()
	cfg.BlockSize = 8
	ks := NewKalmanState(cfg, []int{8, 8}, dev)
	l0 := ks.Lambda
	for iter := 0; iter < 20; iter++ {
		g := make([]float64, 16)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		ks.Update(g, 0.5, 1)
	}
	for i, p := range ks.P {
		if !tensor.IsSymmetric(p, 1e-10) {
			t.Fatalf("P[%d] lost symmetry", i)
		}
	}
	if ks.Lambda <= l0 || ks.Lambda >= 1 {
		t.Fatalf("lambda schedule broken: %v -> %v", l0, ks.Lambda)
	}
	// closed form: λ_t → 1 monotonically
	want := l0
	for i := 0; i < 20; i++ {
		want = want*cfg.Nu + 1 - cfg.Nu
	}
	if math.Abs(ks.Lambda-want) > 1e-12 {
		t.Fatalf("lambda = %v want %v", ks.Lambda, want)
	}
}

// TestKalmanFusedMatchesNaive: Opt3's optimizer kernels must not change
// the update values, only kernels/memory.
func TestKalmanFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	devA := device.New("a", device.A100())
	devB := device.New("b", device.A100())
	cfgA := DefaultKalmanConfig()
	cfgA.BlockSize = 16
	cfgB := cfgA.WithOpt3()
	ksA := NewKalmanState(cfgA, []int{16, 10}, devA)
	ksB := NewKalmanState(cfgB, []int{16, 10}, devB)
	for iter := 0; iter < 10; iter++ {
		g := make([]float64, 26)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		dA := ksA.Update(g, 0.3, 2)
		dB := ksB.Update(g, 0.3, 2)
		for i := range dA {
			if math.Abs(dA[i]-dB[i]) > 1e-9 {
				t.Fatalf("iter %d: fused delta differs at %d: %v vs %v", iter, i, dA[i], dB[i])
			}
		}
	}
	for i := range ksA.P {
		if !tensor.Equal(ksA.P[i], ksB.P[i], 1e-9) {
			t.Fatalf("P[%d] diverged between fused and naive", i)
		}
	}
	// the fused path must launch fewer kernels and show a lower peak
	if devB.Counters().Kernels >= devA.Counters().Kernels {
		t.Fatalf("opt3 kernels %d !< naive %d", devB.Counters().Kernels, devA.Counters().Kernels)
	}
	if devB.Counters().PeakBytes >= devA.Counters().PeakBytes {
		t.Fatalf("opt3 peak %d !< naive %d", devB.Counters().PeakBytes, devA.Counters().PeakBytes)
	}
}

func TestQuasiLRFactor(t *testing.T) {
	if FactorOne.Apply(32) != 1 {
		t.Fatal("FactorOne")
	}
	if math.Abs(FactorSqrtBS.Apply(32)-math.Sqrt(32)) > 1e-12 {
		t.Fatal("FactorSqrtBS")
	}
	if FactorLinearBS.Apply(32) != 32 {
		t.Fatal("FactorLinearBS")
	}
	if FactorSqrtBS.String() != "sqrt(bs)" || FactorOne.String() != "1" || FactorLinearBS.String() != "bs" {
		t.Fatal("factor names")
	}
}

// trainSetup builds a tiny Cu dataset + model for optimizer smoke tests.
func trainSetup(t *testing.T, n int) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: n, SampleEvery: 4, EquilSteps: 30, Scale: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	cfg := deepmd.TinyConfig(sys)
	m, err := deepmd.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("train", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

func stepLossTrend(t *testing.T, opt Optimizer, ds *dataset.Dataset, m *deepmd.Model, idx []int, steps int) (first, last float64) {
	t.Helper()
	for s := 0; s < steps; s++ {
		info, err := opt.Step(m, ds, idx)
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 {
			first = info.EnergyABE + info.ForceABE
		}
		last = info.EnergyABE + info.ForceABE
	}
	return first, last
}

func TestAdamReducesError(t *testing.T) {
	ds, m := trainSetup(t, 4)
	first, last := stepLossTrend(t, NewAdam(), ds, m, []int{0, 1, 2, 3}, 25)
	if !(last < first) {
		t.Fatalf("Adam did not reduce error: %v -> %v", first, last)
	}
}

func TestFEKFReducesErrorFast(t *testing.T) {
	ds, m := trainSetup(t, 4)
	first, last := stepLossTrend(t, NewFEKF(), ds, m, []int{0, 1, 2, 3}, 8)
	if !(last < first*0.8) {
		t.Fatalf("FEKF did not reduce error enough: %v -> %v", first, last)
	}
}

func TestRLEKFSingleSample(t *testing.T) {
	ds, m := trainSetup(t, 2)
	opt := NewRLEKF()
	if opt.Name() != "RLEKF" {
		t.Fatal("name")
	}
	first, last := stepLossTrend(t, opt, ds, m, []int{0}, 8)
	if !(last < first) {
		t.Fatalf("RLEKF did not reduce error: %v -> %v", first, last)
	}
}

func TestNaiveEKFMemoryScalesWithBatch(t *testing.T) {
	ds, m := trainSetup(t, 4)
	nv := NewNaiveEKF()
	if _, err := nv.Step(m, ds, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fk := NewFEKF()
	ds2, m2 := trainSetup(t, 4)
	if _, err := fk.Step(m2, ds2, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if nv.PBytes() != 4*fk.State().PBytes() {
		t.Fatalf("naive P bytes %d, FEKF %d: expected 4x", nv.PBytes(), fk.State().PBytes())
	}
}

func TestNaiveEKFConverges(t *testing.T) {
	ds, m := trainSetup(t, 2)
	first, last := stepLossTrend(t, NewNaiveEKF(), ds, m, []int{0, 1}, 5)
	if !(last < first) {
		t.Fatalf("Naive-EKF did not reduce error: %v -> %v", first, last)
	}
}

// TestFEKFQuasiLRConvergence reproduces the Figure 4 ordering on a tiny
// problem: sqrt(bs) converges at least as fast as factor 1.
func TestFEKFQuasiLRConvergence(t *testing.T) {
	run := func(f QuasiLRFactor) float64 {
		ds, m := trainSetup(t, 4)
		opt := NewFEKF()
		opt.Factor = f
		_, last := stepLossTrend(t, opt, ds, m, []int{0, 1, 2, 3}, 6)
		return last
	}
	one := run(FactorOne)
	sqrt := run(FactorSqrtBS)
	if sqrt > one*1.5 {
		t.Fatalf("sqrt(bs) factor much worse than 1: %v vs %v", sqrt, one)
	}
}

func TestAdamLRSchedule(t *testing.T) {
	a := NewAdam()
	if math.Abs(a.LR(1)-1e-3) > 1e-15 {
		t.Fatalf("initial lr = %v", a.LR(1))
	}
	if math.Abs(a.LR(32)-1e-3*math.Sqrt(32)) > 1e-12 {
		t.Fatalf("bs-scaled lr = %v", a.LR(32))
	}
	a.step = 5000
	if math.Abs(a.LR(1)-1e-3*0.95) > 1e-12 {
		t.Fatalf("decayed lr = %v", a.LR(1))
	}
	a.ScaleBS = false
	if a.LR(32) != a.LR(1) {
		t.Fatal("ScaleBS=false must ignore batch size")
	}
}

// TestTable2UpdateRules verifies the algebraic relationship of Table 2:
// the FEKF increment K(E(g))·E(ABE) with batch b equals the single-sample
// increment when the batch repeats one sample (the two formulations agree
// in the degenerate case).
func TestTable2UpdateRules(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 6
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	dev := device.New("t", device.A100())
	ksA := NewKalmanState(DefaultKalmanConfig(), []int{n}, dev)
	ksB := NewKalmanState(DefaultKalmanConfig(), []int{n}, dev)

	// batch of 4 identical samples: E(g)=g, E(ABE)=abe
	dA := ksA.Update(g, 0.7, 1)
	dB := ksB.Update(g, 0.7, 1)
	for i := range dA {
		if math.Abs(dA[i]-dB[i]) > 1e-12 {
			t.Fatal("identical inputs gave different updates")
		}
	}
}

func TestLARSReducesError(t *testing.T) {
	ds, m := trainSetup(t, 4)
	first, last := stepLossTrend(t, NewLARS(), ds, m, []int{0, 1, 2, 3}, 20)
	if !(last < first) {
		t.Fatalf("LARS did not reduce error: %v -> %v", first, last)
	}
}

func TestLAMBReducesError(t *testing.T) {
	ds, m := trainSetup(t, 4)
	first, last := stepLossTrend(t, NewLAMB(), ds, m, []int{0, 1, 2, 3}, 20)
	if !(last < first) {
		t.Fatalf("LAMB did not reduce error: %v -> %v", first, last)
	}
}

func TestLayerwiseOptimizersKeepWeightsFinite(t *testing.T) {
	ds, m := trainSetup(t, 2)
	for _, opt := range []Optimizer{NewLARS(), NewLAMB()} {
		for s := 0; s < 5; s++ {
			if _, err := opt.Step(m, ds, []int{0, 1}); err != nil {
				t.Fatal(err)
			}
		}
		for _, v := range m.Params.FlattenValues() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s produced non-finite weight", opt.Name())
			}
		}
	}
}

// TestPipelinedStepEKFInvariants checks the EKF state invariants that the
// pipeline must preserve after every step, across the optimization and
// scheduling switches: every P block stays symmetric and positive definite
// (its Cholesky factorization succeeds — the covariance update never
// overshoots the subtracted rank-1 term), λ follows the memory schedule
// λ·ν + (1−ν) exactly, and no weight ever goes NaN or Inf.
func TestPipelinedStepEKFInvariants(t *testing.T) {
	cases := []struct {
		name     string
		opt3     bool
		pipeline bool
		groups   int
	}{
		{"serial-naive-g4", false, false, 4},
		{"serial-opt3-g4", true, false, 4},
		{"pipelined-naive-g4", false, true, 4},
		{"pipelined-opt3-g4", true, true, 4},
		{"pipelined-opt3-g1", true, true, 1},
		{"pipelined-opt3-g2", true, true, 2},
	}
	ds, base := pipelineModelSetup(t)
	idx := []int{0, 1, 2, 3}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base.CloneFor(device.New("inv", device.A100()))
			f := NewFEKF()
			f.Pipeline = tc.pipeline
			f.ForceGroups = tc.groups
			f.KCfg.BlockSize = 128
			if tc.opt3 {
				f.KCfg = f.KCfg.WithOpt3()
			}
			for step := 0; step < 3; step++ {
				if _, err := f.Step(m, ds, idx); err != nil {
					t.Fatal(err)
				}
				ks := f.State()
				for b, p := range ks.P {
					if !tensor.IsSymmetric(p, 0) {
						t.Fatalf("step %d: P[%d] not bitwise symmetric", step, b)
					}
					if !tensor.CholeskyPD(p) {
						t.Fatalf("step %d: P[%d] lost positive definiteness", step, b)
					}
				}
				want := ks.Cfg.Lambda0
				for u := 0; u < ks.Updates; u++ {
					want = want*ks.Cfg.Nu + 1 - ks.Cfg.Nu
				}
				if ks.Lambda != want {
					t.Fatalf("step %d: λ = %v, closed form wants %v after %d updates",
						step, ks.Lambda, want, ks.Updates)
				}
				for i, v := range m.Params.FlattenValues() {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("step %d: weight %d is %v", step, i, v)
					}
				}
			}
		})
	}
}

func TestOptimizerNames(t *testing.T) {
	names := map[Optimizer]string{
		NewAdam():     "Adam",
		NewLARS():     "LARS",
		NewLAMB():     "LAMB",
		NewFEKF():     "FEKF",
		NewRLEKF():    "RLEKF",
		NewNaiveEKF(): "Naive-EKF",
	}
	for opt, want := range names {
		if opt.Name() != want {
			t.Fatalf("name = %q want %q", opt.Name(), want)
		}
	}
}
