package optimize

import (
	"math/rand"
	"testing"

	"fekf/internal/device"
	"fekf/internal/tensor"
)

// parallelLayerSizes yields a multi-block split (including a split layer
// and a gathered tail) at the small test block size.
var parallelLayerSizes = []int{70, 300, 64, 41}

// TestKalmanUpdateParallelBitwiseMatchesSerial drives the same update
// sequence through a serial and a parallel KalmanState and requires the
// weight increments and every P block to stay bitwise identical — the
// determinism contract of the per-block pool parallelism.
func TestKalmanUpdateParallelBitwiseMatchesSerial(t *testing.T) {
	for _, opt3 := range []bool{false, true} {
		cfg := DefaultKalmanConfig()
		cfg.BlockSize = 128
		if opt3 {
			cfg = cfg.WithOpt3()
		}
		serial := NewKalmanState(cfg, parallelLayerSizes, device.New("s", device.A100()))
		par := NewKalmanState(cfg, parallelLayerSizes, device.New("p", device.A100()))
		if len(serial.Blocks) < 3 {
			t.Fatalf("want a multi-block split, got %d blocks", len(serial.Blocks))
		}
		n := serial.Blocks[len(serial.Blocks)-1].Hi
		rng := rand.New(rand.NewSource(61))
		for step := 0; step < 3; step++ {
			g := make([]float64, n)
			for i := range g {
				g[i] = rng.NormFloat64()
			}
			var dS, dP []float64
			prev := tensor.SetWorkers(1)
			dS = serial.Update(g, 0.2, 1.5)
			tensor.SetWorkers(4)
			dP = par.Update(g, 0.2, 1.5)
			tensor.SetWorkers(prev)
			for i := range dS {
				if dS[i] != dP[i] {
					t.Fatalf("opt3=%v step %d: delta[%d] = %v (parallel) vs %v (serial)",
						opt3, step, i, dP[i], dS[i])
				}
			}
			for b := range serial.P {
				for i, v := range serial.P[b].Data {
					if par.P[b].Data[i] != v {
						t.Fatalf("opt3=%v step %d: P[%d] elem %d diverged", opt3, step, b, i)
					}
				}
			}
		}
		if serial.Lambda != par.Lambda || serial.Updates != par.Updates {
			t.Fatal("lambda schedule diverged between serial and parallel states")
		}
	}
}

// TestKalmanStateDeviceMemoryAccounting: the allocator must see both the
// P blocks and the P·g scratch vectors, and Free must return live bytes
// to exactly zero (the memcomm experiment's peak figures depend on this).
func TestKalmanStateDeviceMemoryAccounting(t *testing.T) {
	dev := device.New("mem", device.A100())
	ks := NewKalmanState(DefaultKalmanConfig(), []int{50, 30}, dev)
	want := ks.PBytes() + ks.ScratchBytes()
	if ks.ScratchBytes() == 0 {
		t.Fatal("scratch bytes not tracked")
	}
	if got := dev.Counters().LiveBytes; got != want {
		t.Fatalf("live bytes = %d want P+scratch = %d", got, want)
	}
	ks.Free()
	if got := dev.Counters().LiveBytes; got != 0 {
		t.Fatalf("live bytes after Free = %d want 0", got)
	}
}
