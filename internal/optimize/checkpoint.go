package optimize

import (
	"fmt"
	"math"

	"fekf/internal/deepmd"
	"fekf/internal/device"
)

// KalmanCheckpoint is the serializable snapshot of a KalmanState: the
// filter configuration, the position of the λ memory-factor schedule, the
// measurement-update counter and every error-covariance block, row-major.
// Restoring it resumes the filter bitwise — the next measurement update
// computes exactly the values the uninterrupted run would have.
type KalmanCheckpoint struct {
	Cfg     KalmanConfig
	Lambda  float64
	Updates int
	Sizes   []int       // per-block parameter counts, for structural validation
	P       [][]float64 // per-block covariance values, row-major
}

// Checkpoint deep-copies the filter state.  It must not be called while a
// covariance drain is in flight (between UpdateSplit and its drain); the
// optimizers' Step never returns in that window, so any caller that
// serializes with Step is safe.
func (ks *KalmanState) Checkpoint() *KalmanCheckpoint {
	if ks.draining {
		panic("optimize: Checkpoint during an in-flight covariance drain")
	}
	ck := &KalmanCheckpoint{Cfg: ks.Cfg, Lambda: ks.Lambda, Updates: ks.Updates}
	for i, b := range ks.Blocks {
		ck.Sizes = append(ck.Sizes, b.Size())
		ck.P = append(ck.P, append([]float64(nil), ks.P[i].Data...))
	}
	return ck
}

// RestoreKalmanState rebuilds a KalmanState on dev from a checkpoint,
// validating that the block structure derived from layerSizes matches the
// one the checkpoint was taken from.
func RestoreKalmanState(ck *KalmanCheckpoint, layerSizes []int, dev *device.Device) (*KalmanState, error) {
	if len(ck.P) != len(ck.Sizes) {
		return nil, fmt.Errorf("optimize: checkpoint has %d P blocks for %d sizes", len(ck.P), len(ck.Sizes))
	}
	ks := NewKalmanState(ck.Cfg, layerSizes, dev)
	if len(ks.Blocks) != len(ck.Sizes) {
		return nil, fmt.Errorf("optimize: checkpoint has %d blocks, model wants %d", len(ck.Sizes), len(ks.Blocks))
	}
	for i, b := range ks.Blocks {
		if b.Size() != ck.Sizes[i] {
			return nil, fmt.Errorf("optimize: checkpoint block %d has %d params, model wants %d", i, ck.Sizes[i], b.Size())
		}
		if len(ck.P[i]) != b.Size()*b.Size() {
			return nil, fmt.Errorf("optimize: checkpoint block %d holds %d values, want %d", i, len(ck.P[i]), b.Size()*b.Size())
		}
		copy(ks.P[i].Data, ck.P[i])
	}
	ks.Lambda = ck.Lambda
	ks.Updates = ck.Updates
	return ks, nil
}

// PDiagonal copies the diagonal of the block-diagonal P into a vector
// aligned with the flat parameter ordering.  The diagonal is the filter's
// per-parameter error variance — the uncertainty signal ALKPU-style frame
// gating scores streamed configurations against.
func (ks *KalmanState) PDiagonal() []float64 {
	if len(ks.Blocks) == 0 {
		return nil
	}
	out := make([]float64, ks.Blocks[len(ks.Blocks)-1].Hi)
	for i, b := range ks.Blocks {
		p := ks.P[i]
		for j := 0; j < b.Size(); j++ {
			out[b.Lo+j] = p.At(j, j)
		}
	}
	return out
}

// PDrift returns the maximum absolute element-wise difference between this
// filter's covariance blocks and other's — the replicated-fleet invariant
// checked after every distributed step (zero when the funnel-aggregated
// no-P-communication schedule holds).  A structural mismatch (different
// block count or shapes, or a nil other) reports +Inf.  Neither state may
// have a covariance drain in flight.
func (ks *KalmanState) PDrift(other *KalmanState) float64 {
	if other == nil || len(ks.P) != len(other.P) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range ks.P {
		a, b := ks.P[i].Data, other.P[i].Data
		if len(a) != len(b) {
			return math.Inf(1)
		}
		for j := range a {
			if d := math.Abs(a[j] - b[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// FEKFCheckpoint is the serializable state of a FEKF optimizer: the
// hyper-parameters that shape the update schedule plus the Kalman state
// (nil when no step has been taken yet).  Pipeline mode is deliberately
// absent — it is bitwise neutral, so the restored optimizer keeps the
// environment default.
type FEKFCheckpoint struct {
	Name        string
	Factor      QuasiLRFactor
	ForceGroups int
	EnergyDiv   TrustDiv
	ForceDiv    TrustDiv
	KCfg        KalmanConfig
	Kalman      *KalmanCheckpoint
}

// Checkpoint captures the optimizer for a later bitwise resume.  Safe
// whenever Step is not executing.
func (f *FEKF) Checkpoint() *FEKFCheckpoint {
	ck := &FEKFCheckpoint{
		Name:        f.name,
		Factor:      f.Factor,
		ForceGroups: f.ForceGroups,
		EnergyDiv:   f.EnergyDiv,
		ForceDiv:    f.ForceDiv,
		KCfg:        f.KCfg,
	}
	if f.ks != nil {
		ck.Kalman = f.ks.Checkpoint()
	}
	return ck
}

// RestoreFEKF reconstructs a FEKF from a checkpoint for model m: the λ
// schedule, update counter and every P block resume exactly where the
// checkpointed optimizer stopped.  The Kalman block structure is
// re-derived from m's layer sizes and validated against the checkpoint.
func RestoreFEKF(ck *FEKFCheckpoint, m *deepmd.Model) (*FEKF, error) {
	f := &FEKF{
		KCfg:        ck.KCfg,
		Factor:      ck.Factor,
		ForceGroups: ck.ForceGroups,
		EnergyDiv:   ck.EnergyDiv,
		ForceDiv:    ck.ForceDiv,
		Pipeline:    PipelineDefault(),
		name:        ck.Name,
	}
	if f.name == "" {
		f.name = "FEKF"
	}
	if f.ForceGroups < 1 {
		f.ForceGroups = 4
	}
	if ck.Kalman != nil {
		ks, err := RestoreKalmanState(ck.Kalman, m.Params.LayerSizes(), m.Dev)
		if err != nil {
			return nil, err
		}
		f.ks = ks
	}
	return f, nil
}

// PDiagonal returns the current P diagonal aligned with the flat parameter
// vector, or nil before the first step (no curvature information yet).
func (f *FEKF) PDiagonal() []float64 {
	if f.ks == nil {
		return nil
	}
	return f.ks.PDiagonal()
}

// Lambda returns the current memory factor λ: the schedule position after
// the updates taken so far, or the configured λ₀ before the first step.
func (f *FEKF) Lambda() float64 {
	if f.ks == nil {
		return f.KCfg.Lambda0
	}
	return f.ks.Lambda
}

// Updates returns the number of Kalman measurement updates applied (each
// Step performs 1 + ForceGroups of them); 0 before the first step.
func (f *FEKF) Updates() int {
	if f.ks == nil {
		return 0
	}
	return f.ks.Updates
}
