package optimize

import (
	"math"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
)

// This file implements the large-minibatch first-order methods the paper's
// related-work section discusses (LARS and LAMB): layer-wise adaptive
// learning rates that made large-batch training work for ResNet/BERT.
// They are included as extension baselines so the paper's motivating claim
// — that large-batch first-order training does not transfer to NNMD
// without per-system hand tuning — can be tested directly (see the
// largebatch ablation in bench_test.go and cmd/paper).

// LARS is layer-wise adaptive rate scaling over SGD with momentum
// (You, Gitman, Ginsburg 2017).
type LARS struct {
	LR       float64 // base learning rate
	Momentum float64
	Trust    float64 // trust coefficient η
	Weights  deepmd.LossWeights

	vel []float64
}

// NewLARS returns a LARS optimizer with conventional defaults.
func NewLARS() *LARS {
	return &LARS{LR: 0.01, Momentum: 0.9, Trust: 0.001, Weights: deepmd.DefaultLossWeights()}
}

// Name implements Optimizer.
func (l *LARS) Name() string { return "LARS" }

// Step implements Optimizer.
func (l *LARS) Step(m *deepmd.Model, ds *dataset.Dataset, idx []int) (StepInfo, error) {
	grad, info, err := lossGradient(m, ds, idx, l.Weights)
	if err != nil {
		return StepInfo{}, err
	}
	n := m.Params.NumParams()
	if l.vel == nil {
		l.vel = make([]float64, n)
	}
	w := m.Params.FlattenValues()

	prev := m.Dev.SetPhase(device.PhaseOptimizer)
	defer m.Dev.SetPhase(prev)
	delta := make([]float64, n)
	lo := 0
	for _, size := range m.Params.LayerSizes() {
		hi := lo + size
		wNorm := norm(w[lo:hi])
		gNorm := norm(grad[lo:hi])
		local := 1.0
		if wNorm > 0 && gNorm > 0 {
			local = l.Trust * wNorm / gNorm
		}
		for i := lo; i < hi; i++ {
			l.vel[i] = l.Momentum*l.vel[i] + l.LR*local*grad[i]
			delta[i] = -l.vel[i]
		}
		lo = hi
	}
	m.Params.AddFlat(delta)
	m.Dev.Launch("lars_update", int64(6*n), int64(4*8*n))
	return info, nil
}

// LAMB is the layer-wise adaptive variant of AdamW (You et al. 2019).
type LAMB struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Weights deepmd.LossWeights

	step int
	m, v []float64
}

// NewLAMB returns a LAMB optimizer with conventional defaults.
func NewLAMB() *LAMB {
	return &LAMB{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-6, Weights: deepmd.DefaultLossWeights()}
}

// Name implements Optimizer.
func (l *LAMB) Name() string { return "LAMB" }

// Step implements Optimizer.
func (l *LAMB) Step(m *deepmd.Model, ds *dataset.Dataset, idx []int) (StepInfo, error) {
	grad, info, err := lossGradient(m, ds, idx, l.Weights)
	if err != nil {
		return StepInfo{}, err
	}
	n := m.Params.NumParams()
	if l.m == nil {
		l.m = make([]float64, n)
		l.v = make([]float64, n)
	}
	w := m.Params.FlattenValues()

	prev := m.Dev.SetPhase(device.PhaseOptimizer)
	defer m.Dev.SetPhase(prev)
	l.step++
	b1c := 1 - math.Pow(l.Beta1, float64(l.step))
	b2c := 1 - math.Pow(l.Beta2, float64(l.step))
	update := make([]float64, n)
	for i, g := range grad {
		l.m[i] = l.Beta1*l.m[i] + (1-l.Beta1)*g
		l.v[i] = l.Beta2*l.v[i] + (1-l.Beta2)*g*g
		update[i] = (l.m[i] / b1c) / (math.Sqrt(l.v[i]/b2c) + l.Eps)
	}
	delta := make([]float64, n)
	lo := 0
	for _, size := range m.Params.LayerSizes() {
		hi := lo + size
		wNorm := norm(w[lo:hi])
		uNorm := norm(update[lo:hi])
		ratio := 1.0
		if wNorm > 0 && uNorm > 0 {
			ratio = wNorm / uNorm
		}
		for i := lo; i < hi; i++ {
			delta[i] = -l.LR * ratio * update[i]
		}
		lo = hi
	}
	m.Params.AddFlat(delta)
	m.Dev.Launch("lamb_update", int64(10*n), int64(5*8*n))
	return info, nil
}

// lossGradient evaluates the standard DeePMD loss gradient of a batch,
// shared by the first-order optimizers.
func lossGradient(m *deepmd.Model, ds *dataset.Dataset, idx []int, w deepmd.LossWeights) ([]float64, StepInfo, error) {
	env, err := deepmd.BuildBatchEnv(m.Cfg, ds, idx)
	if err != nil {
		return nil, StepInfo{}, err
	}
	lab := deepmd.BatchLabels(ds, idx)
	out := m.Forward(env, true)
	loss := deepmd.LossGraph(out, lab, w)
	grad := m.LossGrad(out, loss)
	_, eabe := energyMeasurement(out, lab, float64(lab.NaPer))
	info := StepInfo{
		EnergyABE: eabe,
		ForceABE:  meanAbsForceError(out, lab),
		Loss:      loss.Scalar(),
	}
	out.Graph.Release()
	return grad, info, nil
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
