package optimize

import (
	"math"
	"testing"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
)

func ckptSetup(t *testing.T) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 8, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptAll
	m.Dev = device.New("ckpt", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

// A restored FEKF must resume bitwise: identical λ, update counter and P,
// and an identical weight trajectory on identical minibatches.
func TestFEKFCheckpointResumesBitwise(t *testing.T) {
	ds, m := ckptSetup(t)
	opt := NewFEKF()
	opt.KCfg = opt.KCfg.WithOpt3()
	idx := []int{0, 1, 2, 3}
	for s := 0; s < 3; s++ {
		if _, err := opt.Step(m, ds, idx); err != nil {
			t.Fatal(err)
		}
	}

	ck := opt.Checkpoint()
	m2 := m.Clone()
	opt2, err := RestoreFEKF(ck, m2)
	if err != nil {
		t.Fatal(err)
	}
	if opt2.Lambda() != opt.Lambda() {
		t.Fatalf("restored λ %v, want %v", opt2.Lambda(), opt.Lambda())
	}
	if opt2.Updates() != opt.Updates() {
		t.Fatalf("restored updates %d, want %d", opt2.Updates(), opt.Updates())
	}
	for i := range opt.ks.P {
		for j, v := range opt.ks.P[i].Data {
			if opt2.ks.P[i].Data[j] != v {
				t.Fatalf("P block %d element %d differs after restore", i, j)
			}
		}
	}

	// same minibatch on both: trajectories must stay bitwise identical
	for s := 0; s < 2; s++ {
		if _, err := opt.Step(m, ds, idx); err != nil {
			t.Fatal(err)
		}
		if _, err := opt2.Step(m2, ds, idx); err != nil {
			t.Fatal(err)
		}
	}
	w1 := m.Params.FlattenValues()
	w2 := m2.Params.FlattenValues()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weight %d diverged after resume: %v vs %v", i, w1[i], w2[i])
		}
	}
	if opt.Lambda() != opt2.Lambda() {
		t.Fatalf("λ diverged after resume: %v vs %v", opt.Lambda(), opt2.Lambda())
	}
	for i := range opt.ks.P {
		for j, v := range opt.ks.P[i].Data {
			if opt2.ks.P[i].Data[j] != v {
				t.Fatalf("P diverged after resume at block %d element %d", i, j)
			}
		}
	}
}

func TestFEKFCheckpointBeforeFirstStep(t *testing.T) {
	_, m := ckptSetup(t)
	opt := NewFEKF()
	ck := opt.Checkpoint()
	if ck.Kalman != nil {
		t.Fatal("expected nil Kalman state before the first step")
	}
	opt2, err := RestoreFEKF(ck, m)
	if err != nil {
		t.Fatal(err)
	}
	if opt2.Lambda() != opt.KCfg.Lambda0 || opt2.Updates() != 0 || opt2.PDiagonal() != nil {
		t.Fatalf("fresh restore not pristine: λ=%v updates=%d", opt2.Lambda(), opt2.Updates())
	}
}

func TestRestoreKalmanStateValidates(t *testing.T) {
	ds, m := ckptSetup(t)
	opt := NewFEKF()
	if _, err := opt.Step(m, ds, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	ck := opt.ks.Checkpoint()
	// wrong layer structure must be rejected, not silently mis-mapped
	if _, err := RestoreKalmanState(ck, []int{3, 5}, m.Dev); err == nil {
		t.Fatal("expected error for mismatched layer sizes")
	}
	// corrupt block payload must be rejected
	ck2 := opt.ks.Checkpoint()
	ck2.P[0] = ck2.P[0][:len(ck2.P[0])-1]
	if _, err := RestoreKalmanState(ck2, m.Params.LayerSizes(), m.Dev); err == nil {
		t.Fatal("expected error for truncated P block")
	}
}

func TestPDiagonalAlignedAndFinite(t *testing.T) {
	ds, m := ckptSetup(t)
	opt := NewFEKF()
	if opt.PDiagonal() != nil {
		t.Fatal("PDiagonal before first step must be nil")
	}
	if _, err := opt.Step(m, ds, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	pd := opt.PDiagonal()
	if len(pd) != m.NumParams() {
		t.Fatalf("PDiagonal has %d entries for %d params", len(pd), m.NumParams())
	}
	for i, v := range pd {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("P diagonal %d is %v, want positive finite", i, v)
		}
	}
	// cross-check against the raw blocks
	for bi, b := range opt.ks.Blocks {
		for j := 0; j < b.Size(); j++ {
			if pd[b.Lo+j] != opt.ks.P[bi].At(j, j) {
				t.Fatalf("PDiagonal misaligned at block %d offset %d", bi, j)
			}
		}
	}
}
