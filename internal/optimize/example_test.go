package optimize_test

import (
	"fmt"

	"fekf/internal/device"
	"fekf/internal/optimize"
)

// ExampleKalmanState shows the raw Kalman update cycle of Algorithm 1 on a
// two-parameter toy model: the filter identifies w* = (1, -2) from signed
// scalar measurements.
func ExampleKalmanState() {
	dev := device.New("example", device.A100())
	ks := optimize.NewKalmanState(optimize.DefaultKalmanConfig(), []int{2}, dev)

	w := []float64{0, 0}
	wTrue := []float64{1, -2}
	inputs := [][]float64{{1, 0}, {0, 1}, {1, 1}, {1, -1}, {2, 1}, {1, 2}}
	for iter := 0; iter < 200; iter++ {
		x := inputs[iter%len(inputs)]
		pred := w[0]*x[0] + w[1]*x[1]
		label := wTrue[0]*x[0] + wTrue[1]*x[1]
		sign := 1.0
		if pred >= label {
			sign = -1
		}
		g := []float64{sign * x[0], sign * x[1]}
		abe := label - pred
		if abe < 0 {
			abe = -abe
		}
		delta := ks.Update(g, abe, 1)
		w[0] += delta[0]
		w[1] += delta[1]
	}
	fmt.Printf("w = (%.2f, %.2f)\n", w[0], w[1])
	// Output: w = (1.00, -2.00)
}

// ExampleSplitBlocks shows the gather-and-split strategy on the paper's
// layer sizes.
func ExampleSplitBlocks() {
	layers := []int{50, 650, 650, 20050, 2550, 2550, 51}
	blocks := optimize.SplitBlocks(layers, 10240)
	fmt.Println(optimize.BlockSizes(blocks))
	// Output: [1350 10240 9810 5151]
}
