package optimize

import (
	"math"
	"sync"

	"fekf/internal/device"
	"fekf/internal/tensor"
)

// KalmanConfig collects the Extended-Kalman-Filter hyper-parameters of
// Algorithm 1 and the optimizer-side system switches of Opt3.
type KalmanConfig struct {
	// BlockSize is the gather-and-split threshold N_b (paper: 10240).
	BlockSize int
	// Lambda0 and Nu drive the memory-factor schedule
	// λ_{t+1} = λ_t·ν + (1−ν) (paper defaults 0.98 and 0.9987).
	Lambda0, Nu float64
	// FusedPUpdate selects the handwritten single-pass P-update kernel
	// instead of the framework-style outer-product + symmetrization.
	FusedPUpdate bool
	// CachePg reuses the P·g intermediate between the a and K
	// computations instead of recomputing it.
	CachePg bool
}

// DefaultKalmanConfig returns the paper's default EKF settings.
func DefaultKalmanConfig() KalmanConfig {
	return KalmanConfig{BlockSize: 10240, Lambda0: 0.98, Nu: 0.9987}
}

// LargeBatchKalmanConfig returns the λ, ν the paper recommends once the
// batch size exceeds ~1024 (Section 3.2).
func LargeBatchKalmanConfig() KalmanConfig {
	return KalmanConfig{BlockSize: 10240, Lambda0: 0.90, Nu: 0.996}
}

// WithOpt3 returns a copy with the Opt3 optimizer kernels enabled.
func (c KalmanConfig) WithOpt3() KalmanConfig {
	c.FusedPUpdate = true
	c.CachePg = true
	return c
}

// KalmanState is the per-block error-covariance state shared by the EKF
// optimizers.  It owns the block-diagonal P = diag(P_1 … P_L).
type KalmanState struct {
	Cfg    KalmanConfig
	Blocks []Block
	P      []*tensor.Dense
	Lambda float64
	Dev    *device.Device

	Updates int
	pg      []*tensor.Dense // scratch P·g per block
	kv      []*tensor.Dense // scratch gain K per block, held across a deferred drain
	av      []float64       // per-block gain denominator a, held across a deferred drain
	// draining is set between UpdateSplit and the completion of its drain;
	// callers synchronize the two (the pipeline waits on the drain before
	// the next UpdateSplit), so plain reads/writes suffice.
	draining bool
}

// NewKalmanState builds the block structure from per-layer parameter
// counts and initializes every P block to the identity.
func NewKalmanState(cfg KalmanConfig, layerSizes []int, dev *device.Device) *KalmanState {
	ks := &KalmanState{
		Cfg:    cfg,
		Blocks: SplitBlocks(layerSizes, cfg.BlockSize),
		Lambda: cfg.Lambda0,
		Dev:    dev,
	}
	for _, b := range ks.Blocks {
		n := b.Size()
		ks.P = append(ks.P, tensor.Eye(n))
		ks.pg = append(ks.pg, tensor.New(n, 1))
		ks.kv = append(ks.kv, tensor.New(n, 1))
		ks.av = append(ks.av, 0)
		// The P block, its P·g scratch and its gain scratch all live in
		// device memory; accounting the scratch keeps the memcomm
		// experiment's peak figures honest about optimizer state.
		dev.Alloc(int64(n)*int64(n)*8 + 2*int64(n)*8)
	}
	return ks
}

// PBytes returns the device memory held by the P blocks.
func (ks *KalmanState) PBytes() int64 {
	var total int64
	for _, p := range ks.P {
		total += int64(p.Len()) * 8
	}
	return total
}

// ScratchBytes returns the device memory held by the per-block P·g and
// gain scratch vectors.
func (ks *KalmanState) ScratchBytes() int64 {
	var total int64
	for _, v := range ks.pg {
		total += int64(v.Len()) * 8
	}
	for _, v := range ks.kv {
		total += int64(v.Len()) * 8
	}
	return total
}

// Free releases everything NewKalmanState allocated on the device: the P
// blocks and the P·g / gain scratch vectors.
func (ks *KalmanState) Free() {
	ks.Dev.Free(ks.PBytes() + ks.ScratchBytes())
	ks.P = nil
	ks.pg = nil
	ks.kv = nil
}

// Update performs one Kalman measurement update (Algorithm 1 lines 8-13)
// over every block: given the reduced gradient g (flat, aligned with the
// parameter vector) and the reduced absolute error abe, it refreshes P and
// returns the weight increment Δw = scale·abe·K, where scale carries the
// quasi-learning-rate factor (√bs for FEKF).
// Blocks are independent — each touches only its own P[i], pg[i], kv[i]
// and delta[b.Lo:b.Hi] slices — so the per-block loops run across the
// shared tensor worker pool; the result is bitwise identical to serial
// execution at every worker count (device counters are atomic, so the
// simulated accounting is also unchanged).
func (ks *KalmanState) Update(g []float64, abe, scale float64) []float64 {
	delta, drain := ks.UpdateSplit(g, abe, scale)
	drain()
	return delta
}

// UpdateSplit is the two-stage form of Update that the force-group
// pipeline is built on.  It runs the gain stage immediately — per block:
// P·g, the denominator a = 1/(λ+gᵀPg), the gain K = a·P·g and the weight
// increment — advances the λ schedule, and returns the increment together
// with a drain function that performs the deferred covariance refresh
// P ← (1/λ)(P − (1/a)KKᵀ) using the a, K and λ captured at gain time.
//
// Between UpdateSplit and drain the state is "in flight": P still holds
// the pre-update covariance and the per-block scratch holds the gains.
// The caller may run anything that does not touch this state concurrently
// with drain() — applying the increment, the next measurement's
// forward/backward, or a ring collective — which is exactly the overlap
// the pipelined FEKF exploits.  Both stages split per block over the
// worker pool and compute the same per-block values in the same order as
// the one-shot Update, so the results are bitwise identical.  drain is
// idempotent; calling UpdateSplit again before the previous drain has
// completed panics, because the next gain stage must read the refreshed P.
func (ks *KalmanState) UpdateSplit(g []float64, abe, scale float64) (delta []float64, drain func()) {
	if ks.draining {
		panic("optimize: UpdateSplit before the previous drain completed")
	}
	lambda := ks.Lambda
	delta = make([]float64, len(g))
	tensor.ParallelFor(len(ks.Blocks), func(blo, bhi int) {
		ks.gainBlocks(delta, g, abe, scale, lambda, blo, bhi)
	})

	ks.Lambda = ks.Lambda*ks.Cfg.Nu + 1 - ks.Cfg.Nu
	ks.Updates++
	ks.draining = true
	var once sync.Once
	return delta, func() {
		once.Do(func() {
			tensor.ParallelFor(len(ks.Blocks), func(blo, bhi int) {
				ks.drainBlocks(lambda, blo, bhi)
			})
			ks.draining = false
		})
	}
}

// gainBlocks runs the gain stage on blocks [blo,bhi): P·g, a, K and the
// weight increment, leaving K and a in the per-block scratch for the
// drain.  lambda is the memory factor of this measurement, captured before
// the schedule advances.  Launches charge PhaseOptimizer explicitly so a
// drain overlapping another phase cannot misattribute them.
func (ks *KalmanState) gainBlocks(delta, g []float64, abe, scale, lambda float64, blo, bhi int) {
	for i := blo; i < bhi; i++ {
		b := ks.Blocks[i]
		n := b.Size()
		gi := tensor.Vector(g[b.Lo:b.Hi])
		p := ks.P[i]
		pg := ks.pg[i]
		k := ks.kv[i]

		// a = 1/(λ + gᵀPg); Opt3 caches Pg for reuse in K, the baseline
		// recomputes it the way the framework graph does.
		tensor.SymMatVecInto(pg, p, gi)
		ks.Dev.LaunchPhase("p_matvec", device.PhaseOptimizer, 2*int64(n)*int64(n), int64(n)*int64(n)*8)
		a := 1 / (lambda + tensor.Dot(gi, pg))
		ks.Dev.LaunchPhase("a_scalar", device.PhaseOptimizer, 2*int64(n), int64(2*n)*8)

		if ks.Cfg.CachePg {
			for j := range k.Data {
				k.Data[j] = a * pg.Data[j]
			}
			ks.Dev.LaunchPhase("k_scale", device.PhaseOptimizer, int64(n), int64(2*n)*8)
		} else {
			tensor.SymMatVecInto(k, p, gi)
			ks.Dev.LaunchPhase("p_matvec", device.PhaseOptimizer, 2*int64(n)*int64(n), int64(n)*int64(n)*8)
			for j := range k.Data {
				k.Data[j] *= a
			}
			ks.Dev.LaunchPhase("k_scale", device.PhaseOptimizer, int64(n), int64(2*n)*8)
		}
		ks.av[i] = a

		s := scale * abe
		dst := delta[b.Lo:b.Hi]
		for j, kj := range k.Data {
			dst[j] = s * kj
		}
		ks.Dev.LaunchPhase("w_increment", device.PhaseOptimizer, int64(n), int64(2*n)*8)
	}
}

// drainBlocks runs the deferred covariance refresh on blocks [blo,bhi):
// P ← (1/λ)(P − (1/a)·KKᵀ), then symmetrize, with the a, K, λ captured by
// the gain stage.
func (ks *KalmanState) drainBlocks(lambda float64, blo, bhi int) {
	for i := blo; i < bhi; i++ {
		n := ks.Blocks[i].Size()
		p, k, a := ks.P[i], ks.kv[i], ks.av[i]
		if ks.Cfg.FusedPUpdate {
			tensor.PUpdateFused(p, k, a, lambda)
			ks.Dev.LaunchPhase("p_update_fused", device.PhaseOptimizer, 3*int64(n)*int64(n), 2*int64(n)*int64(n)*8)
		} else {
			ks.Dev.Alloc(2 * int64(n) * int64(n) * 8) // KKᵀ and Pᵀ temporaries
			tensor.PUpdateNaive(p, k, a, lambda)
			ks.Dev.LaunchPhase("outer_kk", device.PhaseOptimizer, int64(n)*int64(n), int64(n)*int64(n)*8)
			ks.Dev.LaunchPhase("p_sub_scale", device.PhaseOptimizer, 2*int64(n)*int64(n), 3*int64(n)*int64(n)*8)
			ks.Dev.LaunchPhase("p_transpose", device.PhaseOptimizer, 0, 2*int64(n)*int64(n)*8)
			ks.Dev.LaunchPhase("p_symmetrize", device.PhaseOptimizer, int64(n)*int64(n), 3*int64(n)*int64(n)*8)
			ks.Dev.Free(2 * int64(n) * int64(n) * 8)
		}
	}
}

// QuasiLRFactor is the batch-size factor applied to the weight increment
// (Eq. 2 and the Figure 4 ablation).
type QuasiLRFactor int

// The three factors compared in Figure 4.
const (
	FactorOne QuasiLRFactor = iota
	FactorSqrtBS
	FactorLinearBS
)

// Apply returns the numeric factor for batch size bs.
func (f QuasiLRFactor) Apply(bs int) float64 {
	switch f {
	case FactorSqrtBS:
		return math.Sqrt(float64(bs))
	case FactorLinearBS:
		return float64(bs)
	default:
		return 1
	}
}

// String names the factor as in Figure 4's legend.
func (f QuasiLRFactor) String() string {
	switch f {
	case FactorSqrtBS:
		return "sqrt(bs)"
	case FactorLinearBS:
		return "bs"
	default:
		return "1"
	}
}
