package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v want %v", s.Std, want)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median = %v", odd.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Median != 7 || one.Min != 7 || one.Max != 7 {
		t.Fatalf("single summary = %+v", one)
	}
}

func TestPlusMinusFormat(t *testing.T) {
	s := Summary{Mean: 0.04273, Std: 0.00041}
	if got := s.PlusMinus(4); got != "0.0427 ±0.0004" {
		t.Fatalf("format = %q", got)
	}
}

// Property: the mean lies within [min, max].
func TestPropMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Add("a", 1)
	c.Add("b", 10)
	c.Add("a", 3)
	if names := c.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if got := c.Get("a"); got.N != 2 || got.Mean != 2 {
		t.Fatalf("a = %+v", got)
	}
	if got := c.Get("missing"); got.N != 0 {
		t.Fatal("missing metric should be empty")
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer()
	tm.Start("x")
	time.Sleep(5 * time.Millisecond)
	tm.Stop("x")
	if tm.Total("x") < 4*time.Millisecond {
		t.Fatalf("total = %v", tm.Total("x"))
	}
	tm.Stop("never-started") // must not panic
	if tm.Total("never-started") != 0 {
		t.Fatal("phantom phase accumulated time")
	}
	// accumulation across start/stop pairs
	before := tm.Total("x")
	tm.Start("x")
	tm.Stop("x")
	if tm.Total("x") < before {
		t.Fatal("total went backwards")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("edge cases")
	}
}
