// Package stats provides the aggregation utilities behind the paper's
// ±-error reporting: means, standard deviations and min/max over repeated
// runs with different seeds, plus simple timers for phase accounting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary aggregates a sample of float64 observations.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes a Summary of xs (Std is the sample standard
// deviation; zero for n < 2).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = 0.5 * (sorted[s.N/2-1] + sorted[s.N/2])
	}
	return s
}

// PlusMinus renders the paper's "mean ±std" format with the given number
// of decimals.
func (s Summary) PlusMinus(decimals int) string {
	return fmt.Sprintf("%.*f ±%.*f", decimals, s.Mean, decimals, s.Std)
}

// Collector accumulates named observations across repeated runs.
type Collector struct {
	order []string
	data  map[string][]float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{data: make(map[string][]float64)}
}

// Add records one observation under the given name.
func (c *Collector) Add(name string, v float64) {
	if _, ok := c.data[name]; !ok {
		c.order = append(c.order, name)
	}
	c.data[name] = append(c.data[name], v)
}

// Names returns the metric names in first-seen order.
func (c *Collector) Names() []string { return c.order }

// Get returns the Summary of one metric.
func (c *Collector) Get(name string) Summary { return Summarize(c.data[name]) }

// Timer measures wall durations of named phases.
type Timer struct {
	started map[string]time.Time
	total   map[string]time.Duration
}

// NewTimer returns an empty timer.
func NewTimer() *Timer {
	return &Timer{started: map[string]time.Time{}, total: map[string]time.Duration{}}
}

// Start begins (or restarts) a phase.
func (t *Timer) Start(name string) { t.started[name] = time.Now() }

// Stop ends a phase, accumulating its duration; calling Stop without a
// matching Start is a no-op.
func (t *Timer) Stop(name string) {
	if s, ok := t.started[name]; ok {
		t.total[name] += time.Since(s)
		delete(t.started, name)
	}
}

// Total returns the accumulated duration of a phase.
func (t *Timer) Total(name string) time.Duration { return t.total[name] }

// GeoMean returns the geometric mean of positive values (the conventional
// aggregate for speedup factors such as the paper's "average speedup of
// 32.2"); zero if any value is non-positive or the slice is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
