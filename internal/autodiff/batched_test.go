package autodiff

import (
	"math/rand"
	"testing"

	"fekf/internal/tensor"
)

func TestGradBatchedMatMulFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const batch, m, k, n = 3, 2, 4, 3
	a := randDense(rng, batch*m, k)
	b := randDense(rng, batch*k, n)
	checkGrad(t, "bmatmul_a", a, func(g *Graph, av *Var) *Var {
		return g.Sum(g.Square(g.BMatMul(av, g.Const(b), batch)))
	})
	checkGrad(t, "bmatmul_b", b, func(g *Graph, bv *Var) *Var {
		return g.Sum(g.Square(g.BMatMul(g.Const(a), bv, batch)))
	})
	at := randDense(rng, batch*k, m)
	checkGrad(t, "bmatmul_ta_a", at, func(g *Graph, av *Var) *Var {
		return g.Sum(g.Square(g.BMatMulTA(av, g.Const(b), batch)))
	})
	checkGrad(t, "bmatmul_ta_b", b, func(g *Graph, bv *Var) *Var {
		return g.Sum(g.Square(g.BMatMulTA(g.Const(at), bv, batch)))
	})
	bt := randDense(rng, batch*n, k)
	checkGrad(t, "bmatmul_tb_a", a, func(g *Graph, av *Var) *Var {
		return g.Sum(g.Square(g.BMatMulTB(av, g.Const(bt), batch)))
	})
	checkGrad(t, "bmatmul_tb_b", bt, func(g *Graph, bv *Var) *Var {
		return g.Sum(g.Square(g.BMatMulTB(g.Const(a), bv, batch)))
	})
}

// TestDoubleBackwardBatched mirrors the descriptor force path: differentiate
// a gradient that itself came through a batched matmul.
func TestDoubleBackwardBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const batch, k, m = 2, 3, 2
	r := randDense(rng, batch*k, 1) // acts like the environment input
	w := randDense(rng, 1, m)
	c := randDense(rng, batch*k, 1)

	scalarOfW := func(wVal *tensor.Dense) float64 {
		g := NewGraph(nil)
		rv := g.Leaf(r, true)
		gcol := g.Tanh(g.MatMul(rv, g.Leaf(wVal, true))) // (B·k)×m
		x := g.BMatMulTA(rv, gcol, batch)                // per-block rᵀG
		e := g.Sum(g.Square(x))
		dr := GradScalar(e, []*Var{rv})[0]
		return g.Dot(dr, g.Const(c)).Scalar()
	}

	g := NewGraph(nil)
	rv := g.Leaf(r, true)
	wv := g.Leaf(w, true)
	gcol := g.Tanh(g.MatMul(rv, wv))
	x := g.BMatMulTA(rv, gcol, batch)
	e := g.Sum(g.Square(x))
	dr := GradScalar(e, []*Var{rv})[0]
	h := g.Dot(dr, g.Const(c))
	got := GradScalar(h, []*Var{wv})[0].Value

	want := numGrad(scalarOfW, w)
	if !tensor.Equal(got, want, 1e-4) {
		t.Fatalf("batched double backward:\n got %v\nwant %v", got, want)
	}
}
