package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fekf/internal/device"
	"fekf/internal/tensor"
)

// numGrad computes the central finite-difference gradient of f at x.
func numGrad(f func(x *tensor.Dense) float64, x *tensor.Dense) *tensor.Dense {
	const h = 1e-6
	g := tensor.New(x.Rows, x.Cols)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := f(x)
		x.Data[i] = orig - h
		fm := f(x)
		x.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad compares the autodiff gradient of build (a scalar-valued graph
// function of one leaf) against finite differences.
func checkGrad(t *testing.T, name string, x *tensor.Dense, build func(g *Graph, x *Var) *Var) {
	t.Helper()
	g := NewGraph(nil)
	xv := g.Leaf(x, true)
	out := build(g, xv)
	got := GradScalar(out, []*Var{xv})[0].Value
	want := numGrad(func(xx *tensor.Dense) float64 {
		gg := NewGraph(nil)
		return build(gg, gg.Leaf(xx, true)).Scalar()
	}, x)
	if !tensor.Equal(got, want, 1e-4) {
		t.Fatalf("%s: autodiff grad %v != numeric %v", name, got, want)
	}
}

func randDense(rng *rand.Rand, r, c int) *tensor.Dense {
	return tensor.RandNormal(r, c, 0.5, rng)
}

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(rng, 3, 4)
	c := randDense(rng, 3, 4)
	checkGrad(t, "sum", x, func(g *Graph, xv *Var) *Var { return g.Sum(xv) })
	checkGrad(t, "mean", x, func(g *Graph, xv *Var) *Var { return g.Mean(xv) })
	checkGrad(t, "add", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Add(xv, g.Const(c))) })
	checkGrad(t, "sub", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Sub(g.Const(c), xv)) })
	checkGrad(t, "mul", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Mul(xv, g.Const(c))) })
	checkGrad(t, "scale", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Scale(-2.5, xv)) })
	checkGrad(t, "square", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Square(xv)) })
	checkGrad(t, "tanh", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Tanh(xv)) })
	checkGrad(t, "oneminsq", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.OneMinusSquare(xv)) })
	checkGrad(t, "sigmoid", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Sigmoid(xv)) })
	checkGrad(t, "softplus", x, func(g *Graph, xv *Var) *Var { return g.Sum(g.Softplus(xv)) })
	checkGrad(t, "dot", x, func(g *Graph, xv *Var) *Var { return g.Dot(xv, g.Const(c)) })
}

func TestGradMatMulFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randDense(rng, 4, 3)
	w := randDense(rng, 3, 5)
	wt := randDense(rng, 5, 3)
	a4 := randDense(rng, 4, 6)
	checkGrad(t, "matmul_lhs", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.MatMul(xv, g.Const(w)))
	})
	checkGrad(t, "matmul_rhs", w, func(g *Graph, wv *Var) *Var {
		return g.Sum(g.MatMul(g.Const(x), wv))
	})
	checkGrad(t, "matmul_ta", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.MatMulTA(xv, g.Const(a4)))
	})
	checkGrad(t, "matmul_tb", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.MatMulTB(xv, g.Const(wt)))
	})
	checkGrad(t, "transpose", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.MatMul(g.Transpose(xv), g.Const(a4)))
	})
}

func TestGradStructuralOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, 4, 6)
	b := randDense(rng, 1, 6)
	checkGrad(t, "add_bias_x", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.Tanh(g.AddRowVec(xv, g.Const(b))))
	})
	checkGrad(t, "add_bias_b", b, func(g *Graph, bv *Var) *Var {
		return g.Sum(g.Tanh(g.AddRowVec(g.Const(x), bv)))
	})
	checkGrad(t, "colsum", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.Square(g.ColSum(xv)))
	})
	checkGrad(t, "repeat_rows", b, func(g *Graph, bv *Var) *Var {
		return g.Sum(g.Square(g.RepeatRows(bv, 5)))
	})
	checkGrad(t, "slice_cols", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.Square(g.SliceCols(xv, 1, 4)))
	})
	checkGrad(t, "pad_cols", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.Square(g.PadCols(xv, 2, 10)))
	})
	checkGrad(t, "slice_rows", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.Square(g.SliceRows(xv, 1, 3)))
	})
	checkGrad(t, "pad_rows", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.Square(g.PadRows(xv, 1, 7)))
	})
	checkGrad(t, "concat_rows", x, func(g *Graph, xv *Var) *Var {
		other := g.Const(randDense(rand.New(rand.NewSource(9)), 2, 6))
		return g.Sum(g.Square(g.ConcatRows(xv, other)))
	})
	s := tensor.FromSlice(1, 1, []float64{0.7})
	checkGrad(t, "expand", s, func(g *Graph, sv *Var) *Var {
		return g.Sum(g.Square(g.Expand(sv, 3, 4)))
	})
	checkGrad(t, "mulscalar_s", s, func(g *Graph, sv *Var) *Var {
		return g.Sum(g.Square(g.MulScalar(g.Const(x), sv)))
	})
	checkGrad(t, "mulscalar_a", x, func(g *Graph, xv *Var) *Var {
		return g.Sum(g.Square(g.MulScalar(xv, g.Const(s))))
	})
}

func TestGradFusedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randDense(rng, 5, 3)
	w := randDense(rng, 3, 4)
	wsq := randDense(rng, 3, 3)
	b := randDense(rng, 1, 4)
	bsq := randDense(rng, 1, 3)
	for _, fused := range []bool{false, true} {
		g := NewGraph(nil)
		g.Fused = fused
		xv, wv, bv := g.Leaf(x, true), g.Leaf(w, true), g.Leaf(b, true)
		out := g.Sum(g.Square(g.AffineTanh(xv, wv, bv)))
		grads := GradScalar(out, []*Var{xv, wv, bv})
		for i, leafVal := range []*tensor.Dense{x, w, b} {
			idx := i
			want := numGrad(func(v *tensor.Dense) float64 {
				gg := NewGraph(nil)
				gg.Fused = fused
				leaves := []*tensor.Dense{x, w, b}
				leaves[idx] = v
				return gg.Sum(gg.Square(gg.AffineTanh(
					gg.Leaf(leaves[0], true), gg.Leaf(leaves[1], true), gg.Leaf(leaves[2], true)))).Scalar()
			}, leafVal)
			if !tensor.Equal(grads[i].Value, want, 1e-4) {
				t.Fatalf("fused=%v AffineTanh grad %d mismatch", fused, i)
			}
		}

		g2 := NewGraph(nil)
		g2.Fused = fused
		xv2, wv2, bv2 := g2.Leaf(x, true), g2.Leaf(wsq, true), g2.Leaf(bsq, true)
		out2 := g2.Sum(g2.Square(g2.ResidualAffineTanh(xv2, wv2, bv2)))
		grads2 := GradScalar(out2, []*Var{xv2, wv2, bv2})
		want2 := numGrad(func(v *tensor.Dense) float64 {
			gg := NewGraph(nil)
			gg.Fused = fused
			return gg.Sum(gg.Square(gg.ResidualAffineTanh(
				gg.Leaf(v, true), gg.Leaf(wsq, true), gg.Leaf(bsq, true)))).Scalar()
		}, x)
		if !tensor.Equal(grads2[0].Value, want2, 1e-4) {
			t.Fatalf("fused=%v ResidualAffineTanh x-grad mismatch", fused)
		}
		_ = grads2

		g3 := NewGraph(nil)
		g3.Fused = fused
		out3 := g3.Sum(g3.Square(g3.Affine(g3.Leaf(x, true), g3.Const(w), g3.Const(b))))
		want3 := numGrad(func(v *tensor.Dense) float64 {
			gg := NewGraph(nil)
			gg.Fused = fused
			return gg.Sum(gg.Square(gg.Affine(gg.Leaf(v, true), gg.Const(w), gg.Const(b)))).Scalar()
		}, x)
		got3 := GradScalar(out3, []*Var{g3.nodes[0]})[0].Value
		if !tensor.Equal(got3, want3, 1e-4) {
			t.Fatalf("fused=%v Affine grad mismatch", fused)
		}
	}
}

// TestFusedMatchesUnfusedForward checks the central Opt2 claim: fusion
// changes kernel counts, never values.
func TestFusedMatchesUnfusedForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randDense(rng, 7, 4)
	w := randDense(rng, 4, 4)
	b := randDense(rng, 1, 4)
	devU := device.New("u", device.A100())
	devF := device.New("f", device.A100())
	gu := NewGraph(devU)
	gf := NewGraph(devF)
	gf.Fused = true
	outU := gu.ResidualAffineTanh(gu.Leaf(x, true), gu.Const(w), gu.Const(b))
	outF := gf.ResidualAffineTanh(gf.Leaf(x, true), gf.Const(w), gf.Const(b))
	if !tensor.Equal(outU.Value, outF.Value, 1e-12) {
		t.Fatal("fused forward differs from unfused")
	}
	if devF.Counters().Kernels >= devU.Counters().Kernels {
		t.Fatalf("fused launches (%d) should be fewer than unfused (%d)",
			devF.Counters().Kernels, devU.Counters().Kernels)
	}
}

// TestDoubleBackward exercises grad-of-grad: h(W) = Σ c ⊙ d(Σ tanh(xW))/dx,
// differentiated with respect to W and checked against finite differences.
// This is the exact mechanism force-based Kalman updates rely on.
func TestDoubleBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randDense(rng, 4, 3)
	w := randDense(rng, 3, 3)
	c := randDense(rng, 4, 3)

	scalarOfW := func(wVal *tensor.Dense) float64 {
		g := NewGraph(nil)
		xv := g.Leaf(x, true)
		wv := g.Leaf(wVal, true)
		e := g.Sum(g.Tanh(g.MatMul(xv, wv)))
		dx := GradScalar(e, []*Var{xv})[0]
		return g.Dot(dx, g.Const(c)).Scalar()
	}

	g := NewGraph(nil)
	xv := g.Leaf(x, true)
	wv := g.Leaf(w, true)
	e := g.Sum(g.Tanh(g.MatMul(xv, wv)))
	dx := GradScalar(e, []*Var{xv})[0]
	h := g.Dot(dx, g.Const(c))
	dW := GradScalar(h, []*Var{wv})[0].Value

	want := numGrad(scalarOfW, w)
	if !tensor.Equal(dW, want, 1e-4) {
		t.Fatalf("double backward:\n got %v\nwant %v", dW, want)
	}
}

// TestDoubleBackwardFused repeats the double-backward check with fused
// kernels enabled, covering TanhBwd's own backward rule.
func TestDoubleBackwardFused(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randDense(rng, 4, 3)
	w := randDense(rng, 3, 3)
	b := randDense(rng, 1, 3)
	c := randDense(rng, 4, 3)

	scalarOfW := func(wVal *tensor.Dense) float64 {
		g := NewGraph(nil)
		g.Fused = true
		xv := g.Leaf(x, true)
		e := g.Sum(g.AffineTanh(xv, g.Leaf(wVal, true), g.Const(b)))
		dx := GradScalar(e, []*Var{xv})[0]
		return g.Dot(dx, g.Const(c)).Scalar()
	}

	g := NewGraph(nil)
	g.Fused = true
	xv := g.Leaf(x, true)
	wv := g.Leaf(w, true)
	e := g.Sum(g.AffineTanh(xv, wv, g.Const(b)))
	dx := GradScalar(e, []*Var{xv})[0]
	h := g.Dot(dx, g.Const(c))
	dW := GradScalar(h, []*Var{wv})[0].Value

	want := numGrad(scalarOfW, w)
	if !tensor.Equal(dW, want, 1e-4) {
		t.Fatalf("fused double backward:\n got %v\nwant %v", dW, want)
	}
}

// TestGradReusedNode checks adjoint accumulation when one node feeds two
// consumers: f = sum(x⊙x) + sum(tanh(x)) so df/dx = 2x + (1-tanh²x).
func TestGradReusedNode(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randDense(rng, 3, 3)
	g := NewGraph(nil)
	xv := g.Leaf(x, true)
	f := g.Add(g.Sum(g.Mul(xv, xv)), g.Sum(g.Tanh(xv)))
	got := GradScalar(f, []*Var{xv})[0].Value
	want := tensor.New(3, 3)
	for i, v := range x.Data {
		th := math.Tanh(v)
		want.Data[i] = 2*v + (1 - th*th)
	}
	if !tensor.Equal(got, want, 1e-10) {
		t.Fatalf("reused node grad:\n got %v\nwant %v", got, want)
	}
}

func TestGradUnreachableIsZero(t *testing.T) {
	g := NewGraph(nil)
	x := g.Leaf(tensor.Vector([]float64{1, 2}), true)
	y := g.Leaf(tensor.Vector([]float64{3, 4}), true)
	out := g.Sum(g.Square(x))
	grads := GradScalar(out, []*Var{x, y})
	if tensor.Norm2(grads[1].Value) != 0 {
		t.Fatal("unreachable wrt should get zero grad")
	}
	if grads[1].Rows() != 2 || grads[1].Cols() != 1 {
		t.Fatal("zero grad has wrong shape")
	}
}

func TestConstGetsNoGrad(t *testing.T) {
	g := NewGraph(nil)
	c := g.Const(tensor.Vector([]float64{1}))
	if c.RequiresGrad() {
		t.Fatal("const must not require grad")
	}
	p := g.Param(tensor.Vector([]float64{1}))
	if !p.RequiresGrad() {
		t.Fatal("param must require grad")
	}
}

// Property: gradient of a random composite is linear in the seed.
func TestPropGradLinearInSeed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randDense(r, 3, 3)
		w := randDense(r, 3, 3)
		build := func(s float64) *tensor.Dense {
			g := NewGraph(nil)
			xv := g.Leaf(x, true)
			out := g.Tanh(g.MatMul(xv, g.Const(w)))
			sd := tensor.New(3, 3)
			sd.Fill(s)
			return Grad([]*Var{out}, []*tensor.Dense{sd}, []*Var{xv})[0].Value
		}
		g1 := build(1)
		g3 := build(3)
		return tensor.Equal(tensor.Scale(3, g1), g3, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAccountingAndRelease(t *testing.T) {
	dev := device.New("t", device.A100())
	g := NewGraph(dev)
	x := g.Leaf(tensor.Vector([]float64{1, 2, 3}), true)
	out := g.Sum(g.Tanh(x))
	_ = GradScalar(out, []*Var{x})
	c := dev.Counters()
	if c.Kernels == 0 || c.LiveBytes == 0 {
		t.Fatalf("expected kernel launches and live bytes, got %+v", c)
	}
	g.Release()
	if got := dev.Counters().LiveBytes; got != 0 {
		t.Fatalf("live bytes after release = %d", got)
	}
	if g.NumNodes() != 0 {
		t.Fatal("nodes not cleared on release")
	}
}

func TestGradMultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randDense(rng, 2, 2)
	g := NewGraph(nil)
	xv := g.Leaf(x, true)
	a := g.Sum(g.Square(xv))   // d/dx = 2x
	b := g.Sum(g.Scale(3, xv)) // d/dx = 3
	seeds := []*tensor.Dense{nil, nil}
	got := Grad([]*Var{a, b}, seeds, []*Var{xv})[0].Value
	want := tensor.New(2, 2)
	for i, v := range x.Data {
		want.Data[i] = 2*v + 3
	}
	if !tensor.Equal(got, want, 1e-10) {
		t.Fatalf("multi-output grad = %v want %v", got, want)
	}
}
