package autodiff

import "fekf/internal/tensor"

// Fused layer ops: the paper's Opt2 replaces chains of framework kernels
// with fused ones (torch.compile).  When Graph.Fused is set, the layer
// helpers below execute composites like tanh(X·W+b) as a single simulated
// kernel, and their backward rules use the fused TanhBwd primitive; when it
// is clear, they build the same math out of unfused primitives, so kernel
// counts reproduce the framework baseline.

// AffineTanh returns tanh(x·w + 1⊗b): the E0/F0 layer of the DeePMD nets.
func (g *Graph) AffineTanh(x, w, b *Var) *Var {
	if !g.Fused {
		return g.Tanh(g.AddRowVec(g.MatMul(x, w), b))
	}
	out := tensor.AffineTanh(x.Value, w.Value, b.Value)
	flops := 2*int64(x.Rows())*int64(x.Cols())*int64(w.Cols()) + 5*int64(out.Len())
	var node *Var
	node = g.op("affine_tanh", out, flops, []*Var{x, w, b}, func(grad *Var) []*Var {
		dpre := g.TanhBwd(grad, node)
		return []*Var{g.MatMulTB(dpre, w), g.MatMulTA(x, dpre), g.ColSum(dpre)}
	})
	return node
}

// ResidualAffineTanh returns x + tanh(x·w + 1⊗b): the residual E1/E2 and
// F1/F2 layers.  w must be square.
func (g *Graph) ResidualAffineTanh(x, w, b *Var) *Var {
	if !g.Fused {
		return g.Add(x, g.Tanh(g.AddRowVec(g.MatMul(x, w), b)))
	}
	out := tensor.ResidualAffineTanh(x.Value, w.Value, b.Value)
	flops := 2*int64(x.Rows())*int64(x.Cols())*int64(w.Cols()) + 6*int64(out.Len())
	var node *Var
	node = g.op("res_affine_tanh", out, flops, []*Var{x, w, b}, func(grad *Var) []*Var {
		// y = x + t where t = tanh(x·w+b); the tanh output is t = y - x.
		t := g.Sub(node, x)
		dpre := g.TanhBwd(grad, t)
		dx := g.Add(grad, g.MatMulTB(dpre, w))
		return []*Var{dx, g.MatMulTA(x, dpre), g.ColSum(dpre)}
	})
	return node
}

// Affine returns x·w + 1⊗b without an activation: the final fitting layer
// F3.  In fused mode the GEMM and bias broadcast are one kernel.
func (g *Graph) Affine(x, w, b *Var) *Var {
	if !g.Fused {
		return g.AddRowVec(g.MatMul(x, w), b)
	}
	out := tensor.AddRowVec(tensor.MatMul(x.Value, w.Value), b.Value)
	flops := 2*int64(x.Rows())*int64(x.Cols())*int64(w.Cols()) + int64(out.Len())
	return g.op("affine", out, flops, []*Var{x, w, b}, func(grad *Var) []*Var {
		return []*Var{g.MatMulTB(grad, w), g.MatMulTA(x, grad), g.ColSum(grad)}
	})
}

// TanhBwd returns grad ⊙ (1−y²) in one fused kernel, where y is a tanh (or
// tanh-shaped) activation output.  Its own backward is expressed with
// primitives, keeping the engine closed under double differentiation.
func (g *Graph) TanhBwd(grad, y *Var) *Var {
	out := tensor.MulElem(grad.Value, tensor.TanhPrimeFromOutput(y.Value))
	return g.op("tanh_bwd", out, 3*int64(out.Len()), []*Var{grad, y}, func(h *Var) []*Var {
		dGrad := g.TanhBwd(h, y)
		dY := g.Scale(-2, g.Mul(g.Mul(h, grad), y))
		return []*Var{dGrad, dY}
	})
}
