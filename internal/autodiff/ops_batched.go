package autodiff

import "fekf/internal/tensor"

// Batched block-diagonal matmul primitives.  One batched op is one kernel
// launch (mirroring cuBLAS batched GEMM); the per-atom descriptor algebra
// of the DeePMD model is built from these.  The three variants close under
// differentiation:
//
//	BMatMul:   out_i = a_i·b_i    da = BMatMulTB(g,b), db = BMatMulTA(a,g)
//	BMatMulTA: out_i = a_iᵀ·b_i   da = BMatMulTB(b,g), db = BMatMul(a,g)
//	BMatMulTB: out_i = a_i·b_iᵀ   da = BMatMul(g,b),   db = BMatMulTA(g,a)

// BMatMul computes per-block a_i·b_i over `batch` stacked blocks.
func (g *Graph) BMatMul(a, b *Var, batch int) *Var {
	out := tensor.BatchedMatMul(a.Value, b.Value, batch)
	flops := 2 * int64(a.Rows()) * int64(a.Cols()) * int64(b.Cols())
	return g.op("bmatmul", out, flops, []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{g.BMatMulTB(grad, b, batch), g.BMatMulTA(a, grad, batch)}
	})
}

// BMatMulTA computes per-block a_iᵀ·b_i over `batch` stacked blocks.
func (g *Graph) BMatMulTA(a, b *Var, batch int) *Var {
	out := tensor.BatchedMatMulTA(a.Value, b.Value, batch)
	flops := 2 * int64(a.Rows()) * int64(a.Cols()) * int64(b.Cols())
	return g.op("bmatmul_ta", out, flops, []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{g.BMatMulTB(b, grad, batch), g.BMatMul(a, grad, batch)}
	})
}

// BMatMulTB computes per-block a_i·b_iᵀ over `batch` stacked blocks.
func (g *Graph) BMatMulTB(a, b *Var, batch int) *Var {
	out := tensor.BatchedMatMulTB(a.Value, b.Value, batch)
	flops := 2 * int64(a.Rows()) * int64(a.Cols()) * int64(b.Rows()/batch)
	return g.op("bmatmul_tb", out, flops, []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{g.BMatMul(grad, b, batch), g.BMatMulTA(grad, a, batch)}
	})
}
