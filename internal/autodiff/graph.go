// Package autodiff implements a reverse-mode automatic differentiation
// engine over the tensor package, playing the role PyTorch autograd plays
// in the paper.
//
// Ops execute eagerly on a Graph.  Every primitive reports one kernel
// launch (with flop and byte estimates) to the graph's simulated device, so
// the kernel-launch counts of Figure 7(b) and the phase timings of
// Figure 7(c) fall out of the op stream.  Crucially, backward passes are
// themselves built from primitives (the create_graph=True style), so
// gradients are Vars that can be differentiated again — this is what lets
// the reproduction train on forces, which are first derivatives of the
// network output, with a quasi-Newton optimizer that needs derivatives of
// those forces with respect to the weights.
package autodiff

import (
	"fmt"

	"fekf/internal/device"
	"fekf/internal/tensor"
)

// Graph owns a stream of eagerly-executed ops and their values.
type Graph struct {
	// Dev receives one Launch per primitive kernel; may be nil.
	Dev *device.Device
	// Fused selects the kernel-fused op implementations (the paper's
	// Opt2): compositions like tanh(X·W+b) execute as one kernel.
	Fused bool

	nodes     []*Var
	liveBytes int64
}

// NewGraph returns an empty graph executing on dev (which may be nil for
// pure-math use).
func NewGraph(dev *device.Device) *Graph { return &Graph{Dev: dev} }

// Var is one node of the graph: a value plus the recipe to push gradients
// to its inputs.
type Var struct {
	g        *Graph
	Value    *tensor.Dense
	requires bool
	inputs   []*Var
	// back maps the adjoint of this node to adjoint contributions for
	// each input (nil entries mean "no gradient flows there").  The
	// contributions are built from graph ops so they are differentiable.
	back func(grad *Var) []*Var
	name string
}

// Rows returns the row count of the node's value.
func (v *Var) Rows() int { return v.Value.Rows }

// Cols returns the column count of the node's value.
func (v *Var) Cols() int { return v.Value.Cols }

// RequiresGrad reports whether gradients flow through this node.
func (v *Var) RequiresGrad() bool { return v.requires }

// Scalar returns the single element of a 1×1 node.
func (v *Var) Scalar() float64 {
	if v.Value.Len() != 1 {
		panic(fmt.Sprintf("autodiff: Scalar on %dx%d node %q", v.Rows(), v.Cols(), v.name))
	}
	return v.Value.Data[0]
}

// Const registers v as a constant leaf (no gradient).
func (g *Graph) Const(val *tensor.Dense) *Var {
	return g.leaf(val, false, "const")
}

// Param registers v as a trainable leaf (gradient required).  The tensor is
// aliased, not copied, so optimizer updates through the original tensor are
// visible to subsequent graphs.
func (g *Graph) Param(val *tensor.Dense) *Var {
	return g.leaf(val, true, "param")
}

// Leaf registers an input leaf; requiresGrad=true is used for quantities
// like the environment matrix whose gradient yields atomic forces.
func (g *Graph) Leaf(val *tensor.Dense, requiresGrad bool) *Var {
	return g.leaf(val, requiresGrad, "leaf")
}

func (g *Graph) leaf(val *tensor.Dense, req bool, name string) *Var {
	v := &Var{g: g, Value: val, requires: req, name: name}
	g.nodes = append(g.nodes, v)
	return v
}

// op registers an eagerly computed primitive.  flops and bytes describe the
// kernel that produced out; inputs/back wire the reverse pass.
func (g *Graph) op(name string, out *tensor.Dense, flops int64, inputs []*Var, back func(grad *Var) []*Var) *Var {
	req := false
	for _, in := range inputs {
		if in.requires {
			req = true
			break
		}
	}
	if g.Dev != nil {
		bytes := int64(out.Len())
		for _, in := range inputs {
			bytes += int64(in.Value.Len())
		}
		g.Dev.Launch(name, flops, bytes*8)
		g.Dev.Alloc(int64(out.Len()) * 8)
	}
	g.liveBytes += int64(out.Len()) * 8
	v := &Var{g: g, Value: out, requires: req, inputs: inputs, name: name}
	if req {
		v.back = back
	}
	g.nodes = append(g.nodes, v)
	return v
}

// NumNodes returns the number of nodes registered so far.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Release frees all op outputs from the simulated device allocator; call it
// when an iteration's graph is no longer needed.  Leaf tensors (parameters,
// inputs) are owned by the caller and are not freed.
func (g *Graph) Release() {
	if g.Dev != nil {
		g.Dev.Free(g.liveBytes)
	}
	g.liveBytes = 0
	g.nodes = nil
}

// Custom registers an externally computed primitive op: out is its eagerly
// computed value, flops its kernel cost, and back its reverse rule (which
// must itself be built from graph ops if the op is to support double
// differentiation).  This is the extension point model code uses for
// domain kernels such as the environment-matrix force contraction.
func (g *Graph) Custom(name string, out *tensor.Dense, flops int64, inputs []*Var, back func(grad *Var) []*Var) *Var {
	return g.op(name, out, flops, inputs, back)
}

// Grad computes d(Σᵢ seedsᵢ·outputsᵢ)/d(wrtⱼ) for every j, via reverse-mode
// accumulation.  seeds[i] may be nil to mean all-ones.  The returned Vars
// are graph nodes built from primitives, so they can be differentiated
// again (double backprop).  Nodes unreachable from the outputs get a zero
// gradient of the appropriate shape.
func Grad(outputs []*Var, seeds []*tensor.Dense, wrt []*Var) []*Var {
	var seedVars []*Var
	if seeds != nil {
		if len(seeds) != len(outputs) {
			panic("autodiff: Grad seeds/outputs length mismatch")
		}
		g := outputs[0].g
		seedVars = make([]*Var, len(seeds))
		for i, s := range seeds {
			if s != nil {
				seedVars[i] = g.Const(s)
			}
		}
	}
	return GradSeeded(outputs, seedVars, wrt)
}

// GradSeeded is Grad with graph-node seeds: the adjoint of outputs[i] is
// initialized to seeds[i] (all-ones if nil).  Because a seed may itself be
// a differentiable node, this enables vector-Jacobian products that remain
// differentiable with respect to the seed — the mechanism behind the
// model's hand-written force path.
func GradSeeded(outputs []*Var, seeds []*Var, wrt []*Var) []*Var {
	return gradCore(outputs, seeds, wrt, false)
}

// GradTo is GradSeeded with the wrt nodes treated as boundaries: the
// reverse sweep stops at them, so no backward kernels are executed for
// their ancestors.  All wrt nodes must be mutually independent (none may
// be an ancestor of another), otherwise the boundary cut would drop
// gradient paths.  This is how the hand-written force path extracts
// dE/dD without re-deriving the whole embedding subgraph.
func GradTo(outputs []*Var, seeds []*Var, wrt []*Var) []*Var {
	return gradCore(outputs, seeds, wrt, true)
}

func gradCore(outputs []*Var, seeds []*Var, wrt []*Var, stopAtWrt bool) []*Var {
	if len(outputs) == 0 {
		panic("autodiff: Grad with no outputs")
	}
	if seeds != nil && len(seeds) != len(outputs) {
		panic("autodiff: Grad seeds/outputs length mismatch")
	}
	g := outputs[0].g

	var boundary map[*Var]bool
	if stopAtWrt {
		boundary = make(map[*Var]bool, len(wrt))
		for _, w := range wrt {
			boundary[w] = true
		}
	}

	// Topological order of the differentiable subgraph below the outputs.
	var order []*Var
	seen := make(map[*Var]bool)
	var visit func(v *Var)
	visit = func(v *Var) {
		if seen[v] || !v.requires {
			return
		}
		seen[v] = true
		if !boundary[v] {
			for _, in := range v.inputs {
				visit(in)
			}
		}
		order = append(order, v)
	}
	for _, o := range outputs {
		visit(o)
	}

	adj := make(map[*Var]*Var)
	accumulate := func(node *Var, contrib *Var) {
		if prev, ok := adj[node]; ok {
			adj[node] = g.Add(prev, contrib)
		} else {
			adj[node] = contrib
		}
	}
	for i, o := range outputs {
		if !o.requires {
			continue
		}
		var seed *Var
		if seeds == nil || seeds[i] == nil {
			ones := tensor.New(o.Rows(), o.Cols())
			ones.Fill(1)
			seed = g.Const(ones)
		} else {
			seed = seeds[i]
			if seed.Rows() != o.Rows() || seed.Cols() != o.Cols() {
				panic("autodiff: Grad seed shape mismatch")
			}
		}
		accumulate(o, seed)
	}

	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		a := adj[v]
		if a == nil || v.back == nil || boundary[v] {
			continue
		}
		contribs := v.back(a)
		if len(contribs) != len(v.inputs) {
			panic(fmt.Sprintf("autodiff: op %q backward returned %d grads for %d inputs",
				v.name, len(contribs), len(v.inputs)))
		}
		for j, c := range contribs {
			in := v.inputs[j]
			if c == nil || !in.requires {
				continue
			}
			accumulate(in, c)
		}
	}

	res := make([]*Var, len(wrt))
	for i, w := range wrt {
		if a, ok := adj[w]; ok {
			res[i] = a
		} else {
			res[i] = g.Const(tensor.New(w.Rows(), w.Cols()))
		}
	}
	return res
}

// GradScalar differentiates a 1×1 output with seed 1 with respect to wrt.
func GradScalar(out *Var, wrt []*Var) []*Var {
	if out.Value.Len() != 1 {
		panic("autodiff: GradScalar on non-scalar output")
	}
	return Grad([]*Var{out}, nil, wrt)
}
