package autodiff

import (
	"fmt"
	"math"

	"fekf/internal/tensor"
)

// This file defines the primitive ops.  Each op launches exactly one
// simulated kernel; its backward rule is expressed in terms of other
// primitives so the whole engine is closed under differentiation.

// Add returns a+b element-wise.
func (g *Graph) Add(a, b *Var) *Var {
	out := tensor.Add(a.Value, b.Value)
	return g.op("add", out, int64(out.Len()), []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{grad, grad}
	})
}

// Sub returns a-b element-wise.
func (g *Graph) Sub(a, b *Var) *Var {
	out := tensor.Sub(a.Value, b.Value)
	return g.op("sub", out, int64(out.Len()), []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{grad, g.Scale(-1, grad)}
	})
}

// Neg returns -a.
func (g *Graph) Neg(a *Var) *Var { return g.Scale(-1, a) }

// Mul returns the element-wise product a⊙b.
func (g *Graph) Mul(a, b *Var) *Var {
	out := tensor.MulElem(a.Value, b.Value)
	return g.op("mul", out, int64(out.Len()), []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{g.Mul(grad, b), g.Mul(grad, a)}
	})
}

// Scale returns s·a for a compile-time scalar s.
func (g *Graph) Scale(s float64, a *Var) *Var {
	out := tensor.Scale(s, a.Value)
	return g.op("scale", out, int64(out.Len()), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.Scale(s, grad)}
	})
}

// MulScalar returns s·a where s is a 1×1 graph node (gradient flows to s).
func (g *Graph) MulScalar(a, s *Var) *Var {
	if s.Value.Len() != 1 {
		panic("autodiff: MulScalar wants 1x1 scalar node")
	}
	out := tensor.Scale(s.Scalar(), a.Value)
	return g.op("mulscalar", out, int64(out.Len()), []*Var{a, s}, func(grad *Var) []*Var {
		return []*Var{g.MulScalar(grad, s), g.Sum(g.Mul(grad, a))}
	})
}

// MatMul returns a·b.
func (g *Graph) MatMul(a, b *Var) *Var {
	out := tensor.MatMul(a.Value, b.Value)
	flops := 2 * int64(a.Rows()) * int64(a.Cols()) * int64(b.Cols())
	return g.op("matmul", out, flops, []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{g.MatMulTB(grad, b), g.MatMulTA(a, grad)}
	})
}

// MatMulTA returns aᵀ·b without materializing the transpose.
func (g *Graph) MatMulTA(a, b *Var) *Var {
	out := tensor.MatMulTA(a.Value, b.Value)
	flops := 2 * int64(a.Cols()) * int64(a.Rows()) * int64(b.Cols())
	return g.op("matmul_ta", out, flops, []*Var{a, b}, func(grad *Var) []*Var {
		// out = aᵀb: da = b·gradᵀ, db = a·grad
		return []*Var{g.MatMulTB(b, grad), g.MatMul(a, grad)}
	})
}

// MatMulTB returns a·bᵀ without materializing the transpose.
func (g *Graph) MatMulTB(a, b *Var) *Var {
	out := tensor.MatMulTB(a.Value, b.Value)
	flops := 2 * int64(a.Rows()) * int64(a.Cols()) * int64(b.Rows())
	return g.op("matmul_tb", out, flops, []*Var{a, b}, func(grad *Var) []*Var {
		// out = a·bᵀ: da = grad·b, db = gradᵀ·a
		return []*Var{g.MatMul(grad, b), g.MatMulTA(grad, a)}
	})
}

// Transpose returns aᵀ.
func (g *Graph) Transpose(a *Var) *Var {
	out := tensor.Transpose(a.Value)
	return g.op("transpose", out, 0, []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.Transpose(grad)}
	})
}

// Tanh returns element-wise tanh(a).
func (g *Graph) Tanh(a *Var) *Var {
	out := tensor.Tanh(a.Value)
	var v *Var
	v = g.op("tanh", out, 4*int64(out.Len()), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.Mul(grad, g.OneMinusSquare(v))}
	})
	return v
}

// OneMinusSquare returns 1−a² element-wise (the tanh derivative expressed
// in the activation output).
func (g *Graph) OneMinusSquare(a *Var) *Var {
	out := tensor.TanhPrimeFromOutput(a.Value)
	return g.op("one_minus_sq", out, 2*int64(out.Len()), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.Scale(-2, g.Mul(grad, a))}
	})
}

// Sum reduces a to a 1×1 scalar node.
func (g *Graph) Sum(a *Var) *Var {
	out := tensor.FromSlice(1, 1, []float64{tensor.Sum(a.Value)})
	r, c := a.Rows(), a.Cols()
	return g.op("sum", out, int64(a.Value.Len()), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.Expand(grad, r, c)}
	})
}

// Mean reduces a to its arithmetic mean as a 1×1 node.
func (g *Graph) Mean(a *Var) *Var {
	n := a.Value.Len()
	if n == 0 {
		panic("autodiff: Mean of empty node")
	}
	return g.Scale(1/float64(n), g.Sum(a))
}

// Expand broadcasts a 1×1 scalar node to an r×c matrix.
func (g *Graph) Expand(s *Var, r, c int) *Var {
	if s.Value.Len() != 1 {
		panic("autodiff: Expand wants 1x1 node")
	}
	out := tensor.New(r, c)
	out.Fill(s.Scalar())
	return g.op("expand", out, int64(r*c), []*Var{s}, func(grad *Var) []*Var {
		return []*Var{g.Sum(grad)}
	})
}

// AddRowVec adds a 1×c bias row b to every row of a.
func (g *Graph) AddRowVec(a, b *Var) *Var {
	out := tensor.AddRowVec(a.Value, b.Value)
	return g.op("add_bias", out, int64(out.Len()), []*Var{a, b}, func(grad *Var) []*Var {
		return []*Var{grad, g.ColSum(grad)}
	})
}

// ColSum reduces a to a 1×c row of column sums.
func (g *Graph) ColSum(a *Var) *Var {
	out := tensor.ColSum(a.Value)
	rows := a.Rows()
	return g.op("colsum", out, int64(a.Value.Len()), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.RepeatRows(grad, rows)}
	})
}

// RepeatRows tiles a 1×c row vector into r identical rows.
func (g *Graph) RepeatRows(a *Var, r int) *Var {
	if a.Rows() != 1 {
		panic("autodiff: RepeatRows wants a 1xC row")
	}
	c := a.Cols()
	out := tensor.New(r, c)
	for i := 0; i < r; i++ {
		copy(out.Data[i*c:(i+1)*c], a.Value.Data)
	}
	return g.op("repeat_rows", out, int64(r*c), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.ColSum(grad)}
	})
}

// SliceCols extracts columns [lo,hi) of a.
func (g *Graph) SliceCols(a *Var, lo, hi int) *Var {
	out := tensor.SliceCols(a.Value, lo, hi)
	cols := a.Cols()
	return g.op("slice_cols", out, 0, []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.PadCols(grad, lo, cols)}
	})
}

// PadCols embeds a into columns [lo,lo+a.Cols) of a zero r×total matrix.
func (g *Graph) PadCols(a *Var, lo, total int) *Var {
	out := tensor.New(a.Rows(), total)
	tensor.AccumulateCols(out, lo, a.Value)
	cols := a.Cols()
	return g.op("pad_cols", out, 0, []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.SliceCols(grad, lo, lo+cols)}
	})
}

// SliceRows extracts rows [lo,hi) of a.
func (g *Graph) SliceRows(a *Var, lo, hi int) *Var {
	if lo < 0 || hi > a.Rows() || lo > hi {
		panic(fmt.Sprintf("autodiff: SliceRows [%d,%d) of %d rows", lo, hi, a.Rows()))
	}
	c := a.Cols()
	out := tensor.New(hi-lo, c)
	copy(out.Data, a.Value.Data[lo*c:hi*c])
	rows := a.Rows()
	return g.op("slice_rows", out, 0, []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.PadRows(grad, lo, rows)}
	})
}

// PadRows embeds a into rows [lo,lo+a.Rows) of a zero total×c matrix.
func (g *Graph) PadRows(a *Var, lo, total int) *Var {
	c := a.Cols()
	out := tensor.New(total, c)
	copy(out.Data[lo*c:], a.Value.Data)
	rows := a.Rows()
	return g.op("pad_rows", out, 0, []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.SliceRows(grad, lo, lo+rows)}
	})
}

// ConcatRows stacks nodes vertically; all must share a column count.
func (g *Graph) ConcatRows(parts ...*Var) *Var {
	if len(parts) == 0 {
		panic("autodiff: ConcatRows with no parts")
	}
	c := parts[0].Cols()
	rows := 0
	for _, p := range parts {
		if p.Cols() != c {
			panic("autodiff: ConcatRows column mismatch")
		}
		rows += p.Rows()
	}
	out := tensor.New(rows, c)
	off := 0
	bounds := make([][2]int, len(parts))
	for i, p := range parts {
		copy(out.Data[off*c:], p.Value.Data)
		bounds[i] = [2]int{off, off + p.Rows()}
		off += p.Rows()
	}
	return g.op("concat_rows", out, 0, parts, func(grad *Var) []*Var {
		outs := make([]*Var, len(parts))
		for i := range parts {
			outs[i] = g.SliceRows(grad, bounds[i][0], bounds[i][1])
		}
		return outs
	})
}

// Square returns a² element-wise.
func (g *Graph) Square(a *Var) *Var { return g.Mul(a, a) }

// Dot returns the inner product of two equally-shaped nodes as a 1×1 node.
func (g *Graph) Dot(a, b *Var) *Var { return g.Sum(g.Mul(a, b)) }

// Softplus returns log(1+exp(a)) element-wise; provided for completeness of
// activation coverage in extension experiments.
func (g *Graph) Softplus(a *Var) *Var {
	out := tensor.New(a.Rows(), a.Cols())
	for i, v := range a.Value.Data {
		// numerically stable softplus
		if v > 30 {
			out.Data[i] = v
		} else {
			out.Data[i] = math.Log1p(math.Exp(v))
		}
	}
	var node *Var
	node = g.op("softplus", out, 6*int64(out.Len()), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.Mul(grad, g.Sigmoid(a))}
	})
	return node
}

// Sigmoid returns 1/(1+exp(-a)) element-wise.
func (g *Graph) Sigmoid(a *Var) *Var {
	out := tensor.New(a.Rows(), a.Cols())
	for i, v := range a.Value.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	var node *Var
	node = g.op("sigmoid", out, 4*int64(out.Len()), []*Var{a}, func(grad *Var) []*Var {
		// σ' = σ(1-σ): reuse the output node.
		one := tensor.New(node.Rows(), node.Cols())
		one.Fill(1)
		return []*Var{g.Mul(grad, g.Mul(node, g.Sub(g.Const(one), node)))}
	})
	return node
}
