package autodiff

import (
	"math/rand"
	"testing"

	"fekf/internal/device"
	"fekf/internal/tensor"
)

// TestGradToMatchesGrad: for independent wrt nodes the bounded sweep must
// produce the same values as the full sweep.
func TestGradToMatchesGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randDense(rng, 3, 3)
	w := randDense(rng, 3, 3)
	build := func(g *Graph) (*Var, *Var) {
		xv := g.Leaf(x, true)
		h := g.Tanh(g.MatMul(xv, g.Param(w)))
		out := g.Sum(g.Square(h))
		return out, h
	}
	g1 := NewGraph(nil)
	out1, h1 := build(g1)
	full := GradSeeded([]*Var{out1}, nil, []*Var{h1})[0]

	g2 := NewGraph(nil)
	out2, h2 := build(g2)
	bounded := GradTo([]*Var{out2}, nil, []*Var{h2})[0]

	if !tensor.Equal(full.Value, bounded.Value, 1e-12) {
		t.Fatalf("GradTo != Grad:\n%v\nvs\n%v", bounded.Value, full.Value)
	}
}

// TestGradToSkipsAncestorKernels: the bounded sweep must not execute
// backward kernels below the boundary node.
func TestGradToSkipsAncestorKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := randDense(rng, 4, 4)
	w := randDense(rng, 4, 4)

	count := func(bounded bool) int64 {
		dev := device.New("g", device.A100())
		g := NewGraph(dev)
		xv := g.Leaf(x, true)
		// a deep chain below h
		h := xv
		for i := 0; i < 4; i++ {
			h = g.Tanh(g.MatMul(h, g.Const(w)))
		}
		out := g.Sum(g.Square(h))
		before := dev.Counters().Kernels
		if bounded {
			GradTo([]*Var{out}, nil, []*Var{h})
		} else {
			GradSeeded([]*Var{out}, nil, []*Var{h})
		}
		return dev.Counters().Kernels - before
	}
	full := count(false)
	bounded := count(true)
	if bounded >= full {
		t.Fatalf("GradTo launched %d kernels, full sweep %d", bounded, full)
	}
}

// TestGradSeededDifferentiableSeed: a gradient seeded with a Var remains
// differentiable with respect to that seed.
func TestGradSeededDifferentiableSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := randDense(rng, 2, 2)
	s := randDense(rng, 2, 2)

	// f(s) = Σ s ⊙ d(Σ tanh(x)²)/dx — linear in s with coefficient
	// d(Σ tanh²)/dx, so df/ds must equal that coefficient.
	g := NewGraph(nil)
	xv := g.Leaf(x, true)
	sv := g.Leaf(s, true)
	out := g.Sum(g.Square(g.Tanh(xv)))
	dx := GradSeeded([]*Var{out}, nil, []*Var{xv})[0]
	f := g.Dot(dx, sv)
	dfds := GradScalar(f, []*Var{sv})[0].Value
	if !tensor.Equal(dfds, dx.Value, 1e-12) {
		t.Fatalf("df/ds = %v, want %v", dfds, dx.Value)
	}
}
