package autodiff

import (
	"fmt"

	"fekf/internal/tensor"
)

// Structural ops: data movement primitives the model graph needs around
// the batched descriptor algebra.  Reshape is a zero-cost view (contiguous
// reshape launches no kernel on real devices, so it bypasses the launch
// counter); the others move memory and count as one kernel each.

// Reshape returns a view of a with shape r×c (element count preserved).
func (g *Graph) Reshape(a *Var, r, c int) *Var {
	out := a.Value.Reshape(r, c)
	ar, ac := a.Rows(), a.Cols()
	v := &Var{g: g, Value: out, requires: a.requires, inputs: []*Var{a}, name: "reshape"}
	if a.requires {
		v.back = func(grad *Var) []*Var {
			return []*Var{g.Reshape(grad, ar, ac)}
		}
	}
	g.nodes = append(g.nodes, v)
	return v
}

// GatherRows selects rows of a by index (duplicates allowed).
func (g *Graph) GatherRows(a *Var, idx []int) *Var {
	c := a.Cols()
	out := tensor.New(len(idx), c)
	for k, i := range idx {
		if i < 0 || i >= a.Rows() {
			panic(fmt.Sprintf("autodiff: GatherRows index %d of %d rows", i, a.Rows()))
		}
		copy(out.Data[k*c:(k+1)*c], a.Value.Data[i*c:(i+1)*c])
	}
	rows := a.Rows()
	return g.op("gather_rows", out, 0, []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.ScatterRows(grad, idx, rows)}
	})
}

// ScatterRows accumulates the rows of a into a zero total×c matrix at the
// given indices; it is the adjoint of GatherRows.
func (g *Graph) ScatterRows(a *Var, idx []int, total int) *Var {
	if len(idx) != a.Rows() {
		panic(fmt.Sprintf("autodiff: ScatterRows %d indices for %d rows", len(idx), a.Rows()))
	}
	c := a.Cols()
	out := tensor.New(total, c)
	for k, i := range idx {
		if i < 0 || i >= total {
			panic(fmt.Sprintf("autodiff: ScatterRows index %d of %d rows", i, total))
		}
		dst := out.Data[i*c : (i+1)*c]
		src := a.Value.Data[k*c : (k+1)*c]
		for j, v := range src {
			dst[j] += v
		}
	}
	return g.op("scatter_rows", out, 0, []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.GatherRows(grad, idx)}
	})
}

// BlockSum sums consecutive r-row blocks of a (B·r)×c input, returning
// B×c; it is the per-image energy reduction E_img = Σᵢ Eᵢ.
func (g *Graph) BlockSum(a *Var, r int) *Var {
	if r <= 0 || a.Rows()%r != 0 {
		panic(fmt.Sprintf("autodiff: BlockSum of %d rows by blocks of %d", a.Rows(), r))
	}
	b := a.Rows() / r
	c := a.Cols()
	out := tensor.New(b, c)
	for bi := 0; bi < b; bi++ {
		dst := out.Data[bi*c : (bi+1)*c]
		for j := 0; j < r; j++ {
			src := a.Value.Data[(bi*r+j)*c : (bi*r+j+1)*c]
			for k, v := range src {
				dst[k] += v
			}
		}
	}
	return g.op("block_sum", out, int64(a.Value.Len()), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.BlockRepeat(grad, r)}
	})
}

// BlockRepeat repeats each row of a B×c input r times, returning (B·r)×c;
// it is the adjoint of BlockSum.
func (g *Graph) BlockRepeat(a *Var, r int) *Var {
	if r <= 0 {
		panic("autodiff: BlockRepeat with non-positive factor")
	}
	b := a.Rows()
	c := a.Cols()
	out := tensor.New(b*r, c)
	for bi := 0; bi < b; bi++ {
		src := a.Value.Data[bi*c : (bi+1)*c]
		for j := 0; j < r; j++ {
			copy(out.Data[(bi*r+j)*c:(bi*r+j+1)*c], src)
		}
	}
	return g.op("block_repeat", out, int64(b*r*c), []*Var{a}, func(grad *Var) []*Var {
		return []*Var{g.BlockSum(grad, r)}
	})
}
