package online

// sampleRNG is the replay buffer's deterministic sampling stream: a
// SplitMix64 generator whose entire state is one uint64, so checkpoints
// serialize it and a restored buffer resumes the *exact* draw sequence the
// uninterrupted one would have produced.  Every ReplayBuffer owns its own
// instance — nothing is shared and nothing is package-global — so N
// replicated trainers sampling concurrently are reproducible and race-free
// by construction: replica i's stream is a pure function of its seed, not
// of scheduling.
type sampleRNG struct {
	state uint64
}

// newSampleRNG seeds a generator.  Adjacent seeds yield decorrelated
// streams (SplitMix64 is designed as a seed scrambler), which is exactly
// what per-replica seeds base+id need.
func newSampleRNG(seed int64) *sampleRNG {
	return &sampleRNG{state: uint64(seed)}
}

// restoreSampleRNG resumes a generator at a checkpointed state.
func restoreSampleRNG(state uint64) *sampleRNG {
	return &sampleRNG{state: state}
}

// State returns the serializable generator state.
func (r *sampleRNG) State() uint64 { return r.state }

// next advances the stream (Steele, Lea & Flood's SplitMix64).
func (r *sampleRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// uint64n returns a uniform value in [0, n) via rejection sampling, so the
// distribution is exactly uniform for every n (no modulo bias).
func (r *sampleRNG) uint64n(n uint64) uint64 {
	if n == 0 {
		panic("online: uint64n with n == 0")
	}
	limit := -n % n // (2^64 - n) mod n: values below it would bias the modulus
	for {
		if v := r.next(); v >= limit {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n); n must be positive.
func (r *sampleRNG) Intn(n int) int {
	if n <= 0 {
		panic("online: Intn with non-positive n")
	}
	return int(r.uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n); n must be positive.
func (r *sampleRNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("online: Int63n with non-positive n")
	}
	return int64(r.uint64n(uint64(n)))
}
