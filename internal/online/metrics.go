package online

import "fekf/internal/obs"

// Metrics is the trainer's push-side instrument set: the histograms that
// must be observed where the event happens (latency distributions cannot
// be reconstructed from counters at scrape time).  Everything else the
// trainer exposes — queue depth, gate accept rate, replay occupancy — is
// already maintained in Stats and exported as scrape-time func metrics by
// the serving layer, so it costs the hot path nothing extra here.
type Metrics struct {
	// StepSeconds observes the wall time of each optimizer step.
	StepSeconds *obs.Histogram
	// CheckpointSeconds observes the wall time of each checkpoint write.
	CheckpointSeconds *obs.Histogram
}

// NewMetrics registers the trainer's metric families on reg.  Register at
// most once per registry: duplicate registration panics by design.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		StepSeconds: reg.Histogram("fekf_train_step_seconds",
			"Wall time of one online FEKF optimizer step.",
			obs.DefSecondsBuckets).With(),
		CheckpointSeconds: reg.Histogram("fekf_train_checkpoint_seconds",
			"Wall time of one combined model+optimizer checkpoint write.",
			obs.DefSecondsBuckets).With(),
	}
}
