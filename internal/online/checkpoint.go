package online

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/guard"
	"fekf/internal/md"
	"fekf/internal/optimize"
)

// Checkpoint is the combined on-disk state of an online trainer: the model
// stream, the full optimizer state (λ schedule position, update counter,
// every P block), the replay buffer and gate, and the stream counters.
// Restoring it resumes training with an identical λ schedule and P — the
// next optimizer step computes exactly what the uninterrupted trainer's
// would for the same minibatch.
type Checkpoint struct {
	System   string
	Species  []md.Species
	NumAtoms int64

	Steps          int64
	FramesGatedOut int64
	FramesAccepted int64

	Model  []byte // deepmd model stream (Model.EncodeTo)
	Opt    *optimize.FEKFCheckpoint
	Replay *ReplayCheckpoint
	Gate   *GateCheckpoint
}

// buildCheckpoint captures the trainer state.  Must run on the trainer
// goroutine (or after the loop has exited).
func (t *Trainer) buildCheckpoint() (*Checkpoint, error) {
	var buf bytes.Buffer
	if err := t.model.EncodeTo(&buf); err != nil {
		return nil, err
	}
	return &Checkpoint{
		System:         t.system,
		Species:        t.species,
		NumAtoms:       t.naPer.Load(),
		Steps:          t.steps.Load(),
		FramesGatedOut: t.gatedOut.Load(),
		FramesAccepted: t.accepted.Load(),
		Model:          buf.Bytes(),
		Opt:            t.opt.Checkpoint(),
		Replay:         t.replay.Checkpoint(),
		Gate:           t.gate.Checkpoint(),
	}, nil
}

// WriteCheckpoint persists the trainer state crash-safely (temp file in
// the target directory, fsync, atomic rename).  Must run on the trainer
// goroutine or after the loop has exited; external callers use
// CheckpointNow or Stop.
func (t *Trainer) WriteCheckpoint(path string) error {
	ck, err := t.buildCheckpoint()
	if err != nil {
		return err
	}
	return WriteGobAtomic(path, ck)
}

// LoadCheckpoint reads a checkpoint written by WriteCheckpoint — either a
// legacy plain gob file or a checksummed ring generation (see
// guard.EncodeFrame).  A framed file that is torn or bit-flipped fails
// with an error wrapping guard.ErrCorrupt rather than an opaque gob
// decode error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload := b
	if _, p, err := guard.DecodeFrame(bytes.NewReader(b)); err == nil {
		payload = p
	} else if !errors.Is(err, guard.ErrNotFramed) {
		return nil, fmt.Errorf("online: checkpoint %s: %w", path, err)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("online: decode checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// LoadNewestCheckpoint resolves the newest valid generation of the
// checkpoint ring around path (see TrainerConfig.CheckpointKeep):
// corrupt or torn generation files are quarantined (their pre-quarantine
// paths are returned) and the next older generation is tried; with no
// generation files at all it falls back to a legacy single-file
// checkpoint at path itself.  The returned sequence number is 0 for the
// legacy fallback.
func LoadNewestCheckpoint(path string, keep int) (*Checkpoint, uint64, []string, error) {
	ring := guard.NewRing(path, keep)
	seq, payload, quarantined, err := ring.LoadNewest()
	if err != nil {
		if errors.Is(err, guard.ErrNoCheckpoint) {
			if _, statErr := os.Stat(path); statErr == nil {
				ck, lerr := LoadCheckpoint(path)
				return ck, 0, quarantined, lerr
			}
		}
		return nil, 0, quarantined, err
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, 0, quarantined, fmt.Errorf("online: decode checkpoint generation %d: %w", seq, err)
	}
	return &ck, seq, quarantined, nil
}

// ResumeTrainer reconstructs a trainer from a checkpoint: model weights,
// optimizer (λ, update counter, P blocks — bitwise), replay buffer and
// gate all resume where the checkpointed trainer stopped.  dev places the
// model (nil keeps the default device); cfg supplies the runtime knobs,
// with its replay/gate capacities overridden by the checkpointed ones so
// the restored buffer structure matches.
func ResumeTrainer(ck *Checkpoint, dev *device.Device, cfg TrainerConfig) (*Trainer, error) {
	m, err := deepmd.DecodeModel(bytes.NewReader(ck.Model))
	if err != nil {
		return nil, err
	}
	if dev != nil {
		m.Dev = dev
	}
	if ck.Opt == nil {
		return nil, fmt.Errorf("online: checkpoint has no optimizer state")
	}
	opt, err := optimize.RestoreFEKF(ck.Opt, m)
	if err != nil {
		return nil, err
	}
	proto := &dataset.Dataset{System: ck.System, Species: ck.Species}
	t, err := NewTrainer(m, opt, proto, cfg)
	if err != nil {
		return nil, err
	}
	t.naPer.Store(ck.NumAtoms)
	t.steps.Store(ck.Steps)
	t.gatedOut.Store(ck.FramesGatedOut)
	t.accepted.Store(ck.FramesAccepted)
	t.lambdaBits.Store(math.Float64bits(opt.Lambda()))
	if ck.Replay != nil {
		// the sampling stream resumes at the checkpointed RNG state, so
		// the resumed trainer draws exactly the minibatch sequence the
		// uninterrupted one would have
		t.replay = RestoreReplay(ck.Replay)
		t.replayLen.Store(int64(t.replay.Len()))
		t.replayWin.Store(int64(t.replay.WindowLen()))
		t.replayRes.Store(int64(t.replay.ReservoirLen()))
		t.replayCap.Store(int64(ck.Replay.WindowCap + ck.Replay.ResCap))
		t.seen.Store(t.replay.Seen())
	}
	if ck.Gate != nil {
		t.gate = RestoreGate(ck.Gate, t.cfg.Gate)
		t.gateEMA.Store(math.Float64bits(t.gate.EMA()))
	}
	return t, nil
}

// WriteGobAtomic writes v gob-encoded to path via a fsynced temp file and
// an atomic rename, so a crash mid-write never corrupts an existing
// checkpoint.  Shared by the trainer and fleet checkpoint writers.
func WriteGobAtomic(path string, v any) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("online: encode checkpoint %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename is durable only once the directory entry is: fsync the
	// parent so a power loss cannot forget the just-renamed checkpoint.
	return guard.SyncDir(filepath.Dir(path))
}
