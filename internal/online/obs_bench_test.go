package online

import (
	"testing"
	"time"

	"fekf/internal/obs"
)

// benchStep measures one trainer step over a warm replay buffer; the cfg
// difference between the two benchmarks below is exactly the observability
// wiring, so comparing them bounds the instrumentation overhead (the
// bench-obs Makefile target asserts < 2%).
func benchStep(b *testing.B, cfg TrainerConfig) {
	ds, m, opt := onlineSetup(b)
	cfg.BatchSize = 2
	cfg.MinFrames = 2
	cfg.SnapshotEvery = 8
	cfg.Seed = 9
	cfg.Gate = GateConfig{Enabled: false}
	tr, err := NewTrainer(m, opt, ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tr.admit(ds.Snapshots[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.step()
	}
	b.StopTimer()
	if le := tr.Stats().LastError; le != "" {
		b.Fatalf("trainer errored: %s", le)
	}
}

func BenchmarkTrainStepBare(b *testing.B) {
	benchStep(b, TrainerConfig{})
}

func BenchmarkTrainStepInstrumented(b *testing.B) {
	reg := obs.NewRegistry()
	benchStep(b, TrainerConfig{
		Metrics: NewMetrics(reg),
		Trace:   obs.NewTracer(128),
	})
}

// TestInstrumentationOverheadBudget bounds the observability overhead the
// paired way: time a full step's worth of instrumentation operations
// (recorder begin, spans, publish, histogram observes) against the measured
// step time of this machine, and require < 2%.  An A/B wall-clock diff of
// the two benchmarks above drowns a sub-0.1% true overhead in scheduler
// noise; this measures the added work itself, which cannot be noisy into a
// false pass.
func TestInstrumentationOverheadBudget(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(128)
	ds, m, opt := onlineSetup(t)
	cfg := TrainerConfig{
		BatchSize: 2, MinFrames: 2, SnapshotEvery: 8, Seed: 9,
		Gate:    GateConfig{Enabled: false},
		Metrics: NewMetrics(reg),
		Trace:   tracer,
	}
	tr, err := NewTrainer(m, opt, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tr.admit(ds.Snapshots[i])
	}
	const steps = 10
	for i := 0; i < steps; i++ {
		tr.step()
	}
	if le := tr.Stats().LastError; le != "" {
		t.Fatalf("trainer errored: %s", le)
	}
	h := cfg.Metrics.StepSeconds
	stepMean := h.Sum() / float64(h.Count())

	// One step records ~6 spans plus two histogram observations; measure
	// double that to stay conservative.
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		rec := tracer.Begin()
		t0 := rec.StartTime()
		for s := 0; s < 12; s++ {
			rec.Span(-1, "bench", t0, time.Microsecond)
		}
		rec.End(int64(i))
		h.Observe(0.001)
		h.Observe(0.001)
		h.Observe(0.001)
		h.Observe(0.001)
	}
	instrPerStep := time.Since(start).Seconds() / iters

	if instrPerStep > 0.02*stepMean {
		t.Errorf("instrumentation costs %.3gs per step, > 2%% of the %.3gs step time", instrPerStep, stepMean)
	}
	t.Logf("instrumentation %.3gs/step vs step %.3gs (%.4f%%)", instrPerStep, stepMean, 100*instrPerStep/stepMean)
}
