package online

import (
	"errors"
	"testing"
	"time"

	"fekf/internal/dataset"
)

func frame(tag float64) dataset.Snapshot {
	return dataset.Snapshot{
		Pos:    []float64{tag, 0, 0},
		Box:    [3]float64{10, 10, 10},
		Types:  []int{0},
		Energy: tag,
		Forces: []float64{0, 0, 0},
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": Block, "block": Block, "drop-new": DropNewest,
		"DROP-NEWEST": DropNewest, "drop-old": DropOldest, "dropold": DropOldest,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("banana"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestQueueDropNewest(t *testing.T) {
	q := NewQueue(2, DropNewest)
	for i := 0; i < 2; i++ {
		if ok, err := q.Push(frame(float64(i))); !ok || err != nil {
			t.Fatalf("push %d: %v %v", i, ok, err)
		}
	}
	if ok, err := q.Push(frame(99)); ok || err != nil {
		t.Fatalf("full queue accepted a frame under DropNewest: %v %v", ok, err)
	}
	if q.Dropped() != 1 || q.Pushed() != 2 {
		t.Fatalf("counters: pushed=%d dropped=%d", q.Pushed(), q.Dropped())
	}
	// the buffered frames are the two oldest
	s, ok := q.Pop(0)
	if !ok || s.Energy != 0 {
		t.Fatalf("pop got %v %v, want oldest frame", s.Energy, ok)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue(2, DropOldest)
	for i := 0; i < 4; i++ {
		if ok, err := q.Push(frame(float64(i))); !ok || err != nil {
			t.Fatalf("push %d: %v %v", i, ok, err)
		}
	}
	if q.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2 evictions", q.Dropped())
	}
	// survivors are the two newest, in order
	for _, want := range []float64{2, 3} {
		s, ok := q.Pop(0)
		if !ok || s.Energy != want {
			t.Fatalf("pop got %v %v, want %v", s.Energy, ok, want)
		}
	}
}

func TestQueueBlockBackpressure(t *testing.T) {
	q := NewQueue(1, Block)
	if ok, _ := q.Push(frame(1)); !ok {
		t.Fatal("first push must succeed")
	}
	done := make(chan error, 1)
	go func() {
		ok, err := q.Push(frame(2)) // blocks until the consumer pops
		if !ok && err == nil {
			err = errors.New("blocked push reported not accepted")
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("push did not block on a full queue: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := q.Pop(0); !ok {
		t.Fatal("pop failed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("push stayed blocked after space was freed")
	}
}

func TestQueueCloseUnblocksAndDrains(t *testing.T) {
	q := NewQueue(1, Block)
	q.Push(frame(1))
	done := make(chan error, 1)
	go func() {
		_, err := q.Push(frame(2))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked push got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock the waiting push")
	}
	if _, err := q.Push(frame(3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close got %v, want ErrClosed", err)
	}
	// the buffered frame is still poppable after close
	if s, ok := q.Pop(time.Second); !ok || s.Energy != 1 {
		t.Fatalf("drain after close got %v %v", s.Energy, ok)
	}
	// and a waiting pop on the drained closed queue returns promptly
	start := time.Now()
	if _, ok := q.Pop(5 * time.Second); ok {
		t.Fatal("pop on drained closed queue returned a frame")
	}
	if time.Since(start) > time.Second {
		t.Fatal("pop on closed queue waited for the full timeout")
	}
}
