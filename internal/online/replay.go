package online

import (
	"fekf/internal/dataset"
)

// ReplayBuffer is the training-set surrogate of the streaming trainer: a
// FIFO window holding the newest gated frames (recency) combined with a
// reservoir sample over the entire gated stream (coverage — every frame
// ever admitted has equal probability of residing in the reservoir,
// classic Algorithm R).  Minibatches are drawn uniformly over the union,
// so online training keeps revisiting old configurations while tracking
// new ones.
//
// The buffer is not goroutine-safe: it is owned by the trainer loop.  Its
// random stream is an injectable per-buffer sampleRNG (never a shared or
// package-global source), so replicated trainers each draw a private,
// seed-determined sequence and checkpoints capture the stream position —
// see ReplayCheckpoint.RNG.
type ReplayBuffer struct {
	window []dataset.Snapshot // ring buffer of the newest frames
	wHead  int                // index of the oldest window entry
	wLen   int

	reservoir []dataset.Snapshot
	resCap    int
	seen      int64 // frames ever offered to the reservoir

	rng *sampleRNG
}

// NewReplay returns a buffer with the given window and reservoir
// capacities (minimum 1 each) and a deterministic sampling stream.
func NewReplay(windowSize, reservoirSize int, seed int64) *ReplayBuffer {
	if windowSize < 1 {
		windowSize = 1
	}
	if reservoirSize < 1 {
		reservoirSize = 1
	}
	return &ReplayBuffer{
		window: make([]dataset.Snapshot, windowSize),
		resCap: reservoirSize,
		rng:    newSampleRNG(seed),
	}
}

// Add admits one frame: it always enters the window (evicting the oldest
// once full) and enters the reservoir with the inclusion probability that
// keeps the reservoir a uniform sample of the whole stream.
func (rb *ReplayBuffer) Add(s dataset.Snapshot) {
	if rb.wLen < len(rb.window) {
		rb.window[(rb.wHead+rb.wLen)%len(rb.window)] = s
		rb.wLen++
	} else {
		rb.window[rb.wHead] = s
		rb.wHead = (rb.wHead + 1) % len(rb.window)
	}

	rb.seen++
	if len(rb.reservoir) < rb.resCap {
		rb.reservoir = append(rb.reservoir, s)
	} else if j := rb.rng.Int63n(rb.seen); j < int64(rb.resCap) {
		rb.reservoir[j] = s
	}
}

// Len returns the size of the sampling pool (window + reservoir slots; a
// recent frame may occupy one of each, which mildly over-weights recency —
// intended for online tracking).
func (rb *ReplayBuffer) Len() int { return rb.wLen + len(rb.reservoir) }

// Seen returns the number of frames ever admitted.
func (rb *ReplayBuffer) Seen() int64 { return rb.seen }

// WindowLen returns the number of frames in the FIFO window.
func (rb *ReplayBuffer) WindowLen() int { return rb.wLen }

// ReservoirLen returns the number of frames in the reservoir.
func (rb *ReplayBuffer) ReservoirLen() int { return len(rb.reservoir) }

// Sample draws bs frames uniformly (with replacement) from the pool.
// It returns nil while the buffer is empty.
func (rb *ReplayBuffer) Sample(bs int) []dataset.Snapshot {
	n := rb.Len()
	if n == 0 || bs < 1 {
		return nil
	}
	out := make([]dataset.Snapshot, bs)
	for i := range out {
		j := rb.rng.Intn(n)
		if j < rb.wLen {
			out[i] = rb.window[(rb.wHead+j)%len(rb.window)]
		} else {
			out[i] = rb.reservoir[j-rb.wLen]
		}
	}
	return out
}

// ReplayCheckpoint is the serializable state of a ReplayBuffer.
type ReplayCheckpoint struct {
	Window    []dataset.Snapshot // oldest first
	WindowCap int
	Reservoir []dataset.Snapshot
	ResCap    int
	Seen      int64
	// RNG is the sampling stream's SplitMix64 state; restoring it makes
	// the resumed buffer draw exactly the sequence the uninterrupted one
	// would have.
	RNG uint64
}

// Checkpoint copies the buffer contents for persistence (snapshot slices
// are shared, not deep-copied; frames are never mutated after ingest).
func (rb *ReplayBuffer) Checkpoint() *ReplayCheckpoint {
	ck := &ReplayCheckpoint{
		WindowCap: len(rb.window),
		ResCap:    rb.resCap,
		Seen:      rb.seen,
		RNG:       rb.rng.State(),
		Reservoir: append([]dataset.Snapshot(nil), rb.reservoir...),
	}
	for i := 0; i < rb.wLen; i++ {
		ck.Window = append(ck.Window, rb.window[(rb.wHead+i)%len(rb.window)])
	}
	return ck
}

// RestoreReplay rebuilds a buffer from a checkpoint, resuming the sampling
// stream at the checkpointed SplitMix64 state: the restored buffer's next
// draw is bitwise the draw the uninterrupted buffer would have made.
func RestoreReplay(ck *ReplayCheckpoint) *ReplayBuffer {
	rb := NewReplay(ck.WindowCap, ck.ResCap, 0)
	rb.rng = restoreSampleRNG(ck.RNG)
	for _, s := range ck.Window {
		if rb.wLen < len(rb.window) {
			rb.window[rb.wLen] = s
			rb.wLen++
		}
	}
	rb.reservoir = append(rb.reservoir, ck.Reservoir...)
	if len(rb.reservoir) > rb.resCap {
		rb.reservoir = rb.reservoir[:rb.resCap]
	}
	rb.seen = ck.Seen
	return rb
}
