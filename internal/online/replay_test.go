package online

import (
	"testing"
)

func TestReplayWindowEvictsOldest(t *testing.T) {
	rb := NewReplay(3, 1, 1)
	for i := 0; i < 5; i++ {
		rb.Add(frame(float64(i)))
	}
	if rb.WindowLen() != 3 || rb.Seen() != 5 {
		t.Fatalf("window %d seen %d", rb.WindowLen(), rb.Seen())
	}
	// window holds the three newest frames: 2, 3, 4 (oldest first)
	for i := 0; i < 3; i++ {
		got := rb.window[(rb.wHead+i)%len(rb.window)].Energy
		if got != float64(i+2) {
			t.Fatalf("window slot %d holds %v, want %v", i, got, float64(i+2))
		}
	}
}

func TestReplayReservoirUniform(t *testing.T) {
	// With a 1-slot reservoir over a 200-frame stream, each frame should be
	// retained with probability 1/200; over many trials the mean retained
	// tag should approach the stream mean.
	const stream, trials = 200, 400
	var sum float64
	for tr := 0; tr < trials; tr++ {
		rb := NewReplay(1, 1, int64(tr))
		for i := 0; i < stream; i++ {
			rb.Add(frame(float64(i)))
		}
		if rb.ReservoirLen() != 1 {
			t.Fatal("reservoir not filled")
		}
		sum += rb.reservoir[0].Energy
	}
	mean := sum / trials
	if mean < 70 || mean > 130 { // stream mean is 99.5; generous tolerance
		t.Fatalf("reservoir mean tag %v — sampling is biased", mean)
	}
}

func TestReplaySample(t *testing.T) {
	rb := NewReplay(4, 4, 3)
	if rb.Sample(2) != nil {
		t.Fatal("sampling an empty buffer must return nil")
	}
	for i := 0; i < 6; i++ {
		rb.Add(frame(float64(i)))
	}
	batch := rb.Sample(32)
	if len(batch) != 32 {
		t.Fatalf("sample returned %d frames", len(batch))
	}
	hit := map[float64]bool{}
	for _, s := range batch {
		hit[s.Energy] = true
	}
	// evicted window frames may survive in the reservoir, but the newest
	// frames must be reachable
	if !hit[5] || !hit[4] {
		t.Fatalf("recent frames missing from 32 draws over 8 slots: %v", hit)
	}
}

func TestReplayCheckpointRoundTrip(t *testing.T) {
	rb := NewReplay(3, 2, 42)
	for i := 0; i < 7; i++ {
		rb.Add(frame(float64(i)))
	}
	ck := rb.Checkpoint()
	got := RestoreReplay(ck)
	if got.Seen() != rb.Seen() || got.WindowLen() != rb.WindowLen() || got.ReservoirLen() != rb.ReservoirLen() {
		t.Fatalf("restored shape differs: seen %d/%d window %d/%d reservoir %d/%d",
			got.Seen(), rb.Seen(), got.WindowLen(), rb.WindowLen(), got.ReservoirLen(), rb.ReservoirLen())
	}
	// restored window preserves order, oldest first at index 0 (wHead reset)
	for i := 0; i < got.wLen; i++ {
		want := rb.window[(rb.wHead+i)%len(rb.window)].Energy
		if got.window[i].Energy != want {
			t.Fatalf("restored window slot %d holds %v, want %v", i, got.window[i].Energy, want)
		}
	}
	for i := range rb.reservoir {
		if got.reservoir[i].Energy != rb.reservoir[i].Energy {
			t.Fatalf("restored reservoir slot %d differs", i)
		}
	}
	// restored buffer keeps functioning: adds and samples
	got.Add(frame(100))
	if got.Seen() != rb.Seen()+1 {
		t.Fatal("restored buffer does not count new frames")
	}
	if len(got.Sample(4)) != 4 {
		t.Fatal("restored buffer cannot sample")
	}
}

// The sampling stream must survive a checkpoint: the restored buffer's
// draws are bitwise the draws the uninterrupted buffer makes, so a resumed
// (or replicated) trainer is reproducible by construction.
func TestReplayRNGResumesDrawSequence(t *testing.T) {
	rb := NewReplay(4, 4, 77)
	for i := 0; i < 10; i++ {
		rb.Add(frame(float64(i)))
	}
	// burn a few draws so the checkpoint lands mid-stream
	rb.Sample(5)
	ck := rb.Checkpoint()
	got := RestoreReplay(ck)
	if got.rng.State() != rb.rng.State() {
		t.Fatalf("restored RNG state %#x, want %#x", got.rng.State(), rb.rng.State())
	}
	for draw := 0; draw < 4; draw++ {
		a, b := rb.Sample(8), got.Sample(8)
		for i := range a {
			if a[i].Energy != b[i].Energy {
				t.Fatalf("draw %d sample %d diverged after restore: %v vs %v",
					draw, i, a[i].Energy, b[i].Energy)
			}
		}
	}
	// and the streams stay coupled through interleaved Adds (reservoir
	// inclusion draws advance the same stream)
	rb.Add(frame(200))
	got.Add(frame(200))
	if rb.rng.State() != got.rng.State() {
		t.Fatal("RNG streams diverged across Add")
	}
}
