package online

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fekf/internal/dataset"
)

// Policy selects what a full ingest queue does with a newly pushed frame.
type Policy int

const (
	// Block makes Push wait until the trainer frees space — backpressure
	// all the way to the producer (an HTTP client sees a slow request).
	Block Policy = iota
	// DropNewest rejects the incoming frame when the queue is full.
	DropNewest
	// DropOldest evicts the oldest queued frame to admit the new one,
	// keeping the queue biased toward the most recent configurations.
	DropOldest
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case DropNewest:
		return "drop-new"
	case DropOldest:
		return "drop-old"
	default:
		return "block"
	}
}

// ParsePolicy parses a queue policy name: block | drop-new | drop-old.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "block", "":
		return Block, nil
	case "drop-new", "dropnew", "drop-newest":
		return DropNewest, nil
	case "drop-old", "dropold", "drop-oldest":
		return DropOldest, nil
	}
	return Block, fmt.Errorf("online: unknown queue policy %q", s)
}

// ErrClosed is returned by Push after the queue has been closed.
var ErrClosed = errors.New("online: queue closed")

// Queue is the bounded frame hand-off between ingest producers (HTTP
// handlers, the synthetic MD client) and the trainer goroutine.  Push is
// safe from any number of goroutines; Pop is intended for the single
// trainer loop.  Closing the queue wakes blocked pushers and lets the
// consumer drain what is left.
type Queue struct {
	ch     chan dataset.Snapshot
	policy Policy

	mu     sync.Mutex // serializes DropOldest's evict-then-retry sequence
	closed atomic.Bool
	done   chan struct{}
	once   sync.Once

	pushed  atomic.Int64
	dropped atomic.Int64
}

// NewQueue returns a queue holding at most capacity frames (minimum 1).
func NewQueue(capacity int, policy Policy) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{
		ch:     make(chan dataset.Snapshot, capacity),
		policy: policy,
		done:   make(chan struct{}),
	}
}

// Push offers a frame under the queue's policy.  It reports whether the
// frame was accepted; ErrClosed after Close.  With the Block policy it
// waits for space (or for Close).
func (q *Queue) Push(s dataset.Snapshot) (bool, error) {
	if q.closed.Load() {
		return false, ErrClosed
	}
	switch q.policy {
	case DropNewest:
		select {
		case q.ch <- s:
			q.pushed.Add(1)
			return true, nil
		default:
			q.dropped.Add(1)
			return false, nil
		}
	case DropOldest:
		q.mu.Lock()
		defer q.mu.Unlock()
		for {
			select {
			case q.ch <- s:
				q.pushed.Add(1)
				return true, nil
			default:
			}
			select {
			case <-q.ch:
				q.dropped.Add(1)
			default:
			}
		}
	default: // Block
		select {
		case q.ch <- s:
			q.pushed.Add(1)
			return true, nil
		case <-q.done:
			return false, ErrClosed
		}
	}
}

// Pop removes one frame, waiting up to wait for one to arrive (0 means a
// non-blocking attempt).  ok is false when nothing was available within
// the window or the queue is closed and drained.
func (q *Queue) Pop(wait time.Duration) (s dataset.Snapshot, ok bool) {
	select {
	case s = <-q.ch:
		return s, true
	default:
	}
	if wait <= 0 {
		return s, false
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case s = <-q.ch:
		return s, true
	case <-q.done:
		// closed: hand out whatever is still buffered
		select {
		case s = <-q.ch:
			return s, true
		default:
			return s, false
		}
	case <-timer.C:
		return s, false
	}
}

// Close rejects subsequent pushes and unblocks waiting ones; buffered
// frames remain poppable.
func (q *Queue) Close() {
	q.closed.Store(true)
	q.once.Do(func() { close(q.done) })
}

// Depth returns the number of frames currently buffered.
func (q *Queue) Depth() int { return len(q.ch) }

// Occupancy returns the filled fraction of the queue in [0, 1] — the raw
// pressure signal the fleet autoscaler samples per replica.
func (q *Queue) Occupancy() float64 { return float64(len(q.ch)) / float64(cap(q.ch)) }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return cap(q.ch) }

// Pushed returns the number of frames accepted so far.
func (q *Queue) Pushed() int64 { return q.pushed.Load() }

// Dropped returns the number of frames rejected or evicted by policy.
func (q *Queue) Dropped() int64 { return q.dropped.Load() }
