package online

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"fekf/internal/device"
	"fekf/internal/guard"
	"fekf/internal/obs"
)

// assertTrainersBitwise fails unless a and b hold bitwise-identical weights,
// λ schedule position, update counters and P blocks.
func assertTrainersBitwise(t *testing.T, a, b *Trainer, when string) {
	t.Helper()
	wa, wb := a.model.Params.FlattenValues(), b.model.Params.FlattenValues()
	if len(wa) != len(wb) {
		t.Fatalf("%s: weight counts differ: %d vs %d", when, len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("%s: weight %d differs: %v vs %v", when, i, wa[i], wb[i])
		}
	}
	if a.opt.Lambda() != b.opt.Lambda() {
		t.Fatalf("%s: λ differs: %v vs %v", when, a.opt.Lambda(), b.opt.Lambda())
	}
	if a.opt.Updates() != b.opt.Updates() {
		t.Fatalf("%s: update counters differ: %d vs %d", when, a.opt.Updates(), b.opt.Updates())
	}
	if d := a.opt.State().PDrift(b.opt.State()); d != 0 {
		t.Fatalf("%s: P drift %g, want exactly 0", when, d)
	}
}

// The tentpole recovery path: a NaN poisoned into the weights at step 5 must
// trip the sentinel and roll the trainer back — bitwise — to the newest ring
// generation, after which it advances in lockstep with an uninjected twin
// resumed from that same generation.
func TestGuardRollbackBitwiseTwin(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	trace := obs.NewTracer(16)
	cfg := TrainerConfig{
		BatchSize: 2, MinFrames: 2, Seed: 9,
		CheckpointPath: path, CheckpointEvery: 2, CheckpointKeep: 3,
		Guard: guard.SentinelConfig{Enabled: true, SampleStride: 1},
		Chaos: guard.ChaosConfig{PoisonStep: 5},
		Gate:  GateConfig{Enabled: false},
		Trace: trace,
	}
	tr, err := NewTrainer(m, opt, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tr.admit(ds.Snapshots[i])
	}
	for i := 0; i < 4; i++ {
		tr.step()
	}
	// CheckpointEvery 2 → ring generations 1 (step 2) and 2 (step 4).
	ck, seq, quarantined, err := LoadNewestCheckpoint(path, 3)
	if err != nil || len(quarantined) != 0 {
		t.Fatalf("load newest: seq=%d q=%v err=%v", seq, quarantined, err)
	}
	if seq != 2 || ck.Steps != 4 {
		t.Fatalf("newest generation seq=%d steps=%d, want 2/4", seq, ck.Steps)
	}
	twinCfg := cfg
	twinCfg.CheckpointPath, twinCfg.CheckpointEvery, twinCfg.CheckpointKeep = "", 0, 0
	twinCfg.Chaos = guard.ChaosConfig{}
	twinCfg.Trace = nil
	twin, err := ResumeTrainer(ck, device.New("twin", device.A100()), twinCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Step 5 poisons the weights; the sentinel must catch it and roll back.
	tr.step()
	if got := tr.steps.Load(); got != 4 {
		t.Fatalf("after rollback at step %d, want 4", got)
	}
	st := tr.Stats()
	if st.Guard == nil {
		t.Fatal("Stats().Guard missing with sentinel enabled")
	}
	if st.Guard.Divergences != 1 || st.Guard.Rollbacks != 1 || !st.Guard.Degraded {
		t.Fatalf("guard status after divergence: %+v", st.Guard)
	}
	if st.Guard.LastReason != guard.ReasonWeightNonFinite || st.Guard.LastStep != 5 {
		t.Fatalf("divergence attribution: %+v", st.Guard)
	}
	if st.Guard.RollbackGeneration != 2 || st.Guard.RollbackStep != 4 {
		t.Fatalf("rollback target: %+v", st.Guard)
	}
	if !strings.Contains(st.LastError, guard.ReasonWeightNonFinite) {
		t.Fatalf("last error %q does not carry the divergence reason", st.LastError)
	}
	var sawRollbackSpan bool
	for _, str := range trace.Last(16) {
		for _, sp := range str.Spans {
			if sp.Name == "rollback" {
				sawRollbackSpan = true
			}
		}
	}
	if !sawRollbackSpan {
		t.Fatal("no rollback span in the step trace")
	}
	// The published snapshot was refreshed at the rolled-back step and is
	// clean — prediction availability never sees the poisoned weights.
	if snap := tr.Snapshot(); snap.Step != 4 {
		t.Fatalf("post-rollback snapshot at step %d, want 4", snap.Step)
	}

	assertTrainersBitwise(t, tr, twin, "after rollback")

	// The replay RNG resumed at the checkpointed position on both sides,
	// so the recovered trainer and the twin draw the same minibatches and
	// stay in bitwise lockstep. The chaos injection is one-shot: the
	// re-run of step 5 is clean.
	for i := 0; i < 2; i++ {
		tr.step()
		twin.step()
	}
	if tr.steps.Load() != 6 || twin.steps.Load() != 6 {
		t.Fatalf("post-recovery steps: %d vs %d, want 6", tr.steps.Load(), twin.steps.Load())
	}
	if got := tr.Stats().Guard.Divergences; got != 1 {
		t.Fatalf("re-run of the poisoned step diverged again: %d events", got)
	}
	assertTrainersBitwise(t, tr, twin, "two steps past rollback")
}

// Satellite 3: loading must quarantine torn and bit-flipped generations with
// a typed error trail and fall back to the newest valid one, and a corrupt
// framed file must surface guard.ErrCorrupt, not an opaque gob error.
func TestLoadNewestCheckpointQuarantinesAndFallsBack(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.gob")
	cfg := TrainerConfig{
		BatchSize: 2, MinFrames: 2, Seed: 4,
		CheckpointPath: path, CheckpointEvery: 1, CheckpointKeep: 3,
		Gate: GateConfig{Enabled: false},
	}
	tr, err := NewTrainer(m, opt, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tr.admit(ds.Snapshots[i])
	}
	for i := 0; i < 3; i++ {
		tr.step()
	}
	ring := guard.NewRing(path, 3)
	// A valid framed generation loads through the plain single-file API too.
	if ck, err := LoadCheckpoint(ring.GenPath(1)); err != nil || ck.Steps != 1 {
		t.Fatalf("framed load: steps=%v err=%v", ck, err)
	}
	// Tear the newest write short and flip a payload byte in the second.
	if err := guard.Truncate(ring.GenPath(3), -7); err != nil {
		t.Fatal(err)
	}
	if err := guard.FlipByte(ring.GenPath(2), -3); err != nil {
		t.Fatal(err)
	}
	ck, seq, quarantined, err := LoadNewestCheckpoint(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || ck.Steps != 1 {
		t.Fatalf("fallback landed on seq=%d steps=%d, want 1/1", seq, ck.Steps)
	}
	if len(quarantined) != 2 {
		t.Fatalf("quarantined %v, want the two corrupt generations", quarantined)
	}
	tr2, err := ResumeTrainer(ck, device.New("q", device.A100()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.steps.Load() != 1 {
		t.Fatalf("resumed from survivor at step %d, want 1", tr2.steps.Load())
	}
	// The corrupt files fail with the typed sentinel error.
	for _, p := range quarantined {
		if _, err := LoadCheckpoint(p + ".corrupt"); !errors.Is(err, guard.ErrCorrupt) {
			t.Fatalf("corrupt checkpoint %s: err = %v, want guard.ErrCorrupt", p, err)
		}
	}

	// Legacy single-file checkpoints still resolve (sequence 0).
	legacy := filepath.Join(dir, "legacy.ckpt")
	if err := tr.WriteCheckpoint(legacy); err != nil {
		t.Fatal(err)
	}
	lck, lseq, _, err := LoadNewestCheckpoint(legacy, 3)
	if err != nil || lseq != 0 || lck.Steps != 3 {
		t.Fatalf("legacy fallback: seq=%d steps=%v err=%v", lseq, lck, err)
	}
}

// With the sentinel on but no ring configured, a divergence degrades the
// trainer and records the failed rollback instead of crashing the loop.
func TestGuardDivergenceWithoutRingDegrades(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	tr, err := NewTrainer(m, opt, ds, TrainerConfig{
		BatchSize: 2, MinFrames: 2, Seed: 6,
		Guard: guard.SentinelConfig{Enabled: true, SampleStride: 1},
		Chaos: guard.ChaosConfig{PoisonStep: 2, PoisonInf: true},
		Gate:  GateConfig{Enabled: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tr.admit(ds.Snapshots[i])
	}
	tr.step()
	tr.step() // poisoned; no ring → rollback must fail loudly but safely
	st := tr.Stats()
	if st.Guard == nil || st.Guard.Divergences != 1 || st.Guard.Rollbacks != 0 {
		t.Fatalf("guard status: %+v", st.Guard)
	}
	if !st.Guard.Degraded {
		t.Fatal("unrecovered divergence must leave the trainer degraded")
	}
	if !strings.Contains(st.LastError, "rollback") {
		t.Fatalf("last error %q does not mention the failed rollback", st.LastError)
	}
}
