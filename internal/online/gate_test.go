package online

import "testing"

func TestGateAdmitsWhenDisabledOrBlind(t *testing.T) {
	g := NewGate(GateConfig{Enabled: false})
	ok, score, err := g.Admit(nil, []float64{1}, nil, 0)
	if !ok || score != 0 || err != nil {
		t.Fatalf("disabled gate: %v %v %v", ok, score, err)
	}
	g = NewGate(GateConfig{Enabled: true, Threshold: 0.5})
	// before the first optimizer step the filter has no covariance (pd nil)
	ok, _, err = g.Admit(nil, nil, nil, 0)
	if !ok || err != nil {
		t.Fatalf("gate without covariance: %v %v", ok, err)
	}
	if g.Accepted() != 1 {
		t.Fatalf("accepted %d, want 1", g.Accepted())
	}
}

func TestGateScoresAgainstPDiagonal(t *testing.T) {
	ds, m, _ := onlineSetup(t)
	g := NewGate(GateConfig{Enabled: true, Threshold: 0.5, Decay: 0.9, Warmup: 1})
	n := m.NumParams()
	high := make([]float64, n) // filter claims high variance everywhere
	for i := range high {
		high[i] = 1
	}
	low := make([]float64, n) // filter claims it has learned everything

	// frame 1: warmup — always admitted, seeds the EMA near 1
	ok, score, err := g.Admit(m, high, ds, 0)
	if err != nil || !ok {
		t.Fatalf("warmup frame rejected: %v %v", ok, err)
	}
	if score < 0.999 || score > 1.001 { // Σg²·1/Σg² ≡ 1
		t.Fatalf("uniform P diagonal must score 1, got %v", score)
	}
	// frame 2: zero predicted variance → score 0 → far below the EMA → out
	ok, score, err = g.Admit(m, low, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok || score != 0 {
		t.Fatalf("zero-variance frame admitted (score %v)", score)
	}
	// frame 3: informative again → back above threshold·EMA → admitted
	ok, _, err = g.Admit(m, high, ds, 2)
	if err != nil || !ok {
		t.Fatalf("informative frame rejected: %v %v", ok, err)
	}
	if g.Accepted() != 2 || g.Rejected() != 1 {
		t.Fatalf("counters: accepted %d rejected %d", g.Accepted(), g.Rejected())
	}
	if !(g.EMA() > 0 && g.EMA() < 1) {
		t.Fatalf("EMA %v not between the observed scores", g.EMA())
	}
}

func TestGateCheckpointRoundTrip(t *testing.T) {
	g := NewGate(DefaultGateConfig())
	g.ema, g.n, g.accepted, g.rejected = 0.25, 10, 8, 2
	got := RestoreGate(g.Checkpoint(), DefaultGateConfig())
	if got.EMA() != 0.25 || got.n != 10 || got.Accepted() != 8 || got.Rejected() != 2 {
		t.Fatalf("restored gate state %v %d %d %d", got.EMA(), got.n, got.Accepted(), got.Rejected())
	}
}
