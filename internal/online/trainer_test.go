package online

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

// onlineSetup builds a small labelled stream, an initialized tiny model and
// a paper-default FEKF for trainer tests.
func onlineSetup(t testing.TB) (*dataset.Dataset, *deepmd.Model, *optimize.FEKF) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 16, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptAll
	m.Dev = device.New("online-test", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	opt := optimize.NewFEKF()
	opt.KCfg = opt.KCfg.WithOpt3()
	return ds, m, opt
}

func TestValidateFrame(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	tr, err := NewTrainer(m, opt, ds, TrainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	good := ds.Snapshots[0]
	if err := tr.ValidateFrame(&good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Pos = bad.Pos[:len(bad.Pos)-3]
	bad.Types = bad.Types[:len(bad.Types)-1]
	bad.Forces = bad.Forces[:len(bad.Forces)-3]
	if err := tr.ValidateFrame(&bad); err == nil {
		t.Fatal("frame with a different atom count passed validation")
	}
	bad = good
	bad.Types = append([]int(nil), good.Types...)
	bad.Types[0] = 7
	if err := tr.ValidateFrame(&bad); err == nil {
		t.Fatal("frame with an out-of-range species passed validation")
	}
	bad = good
	bad.Box = [3]float64{10, -1, 10}
	if err := tr.ValidateFrame(&bad); err == nil {
		t.Fatal("frame with a non-positive box passed validation")
	}
	bad = good
	bad.Forces = good.Forces[:0]
	if err := tr.ValidateFrame(&bad); err == nil {
		t.Fatal("unlabelled frame passed validation")
	}
}

// A published snapshot must be a fully isolated copy: training onward must
// never change it, and it must not alias the live training model.
func TestSnapshotIsolation(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	tr, err := NewTrainer(m, opt, ds, TrainerConfig{
		BatchSize: 2, MinFrames: 2, Seed: 5,
		Gate: GateConfig{Enabled: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	// drive the trainer manually (loop not started): admit → step → publish
	for i := 0; i < 4; i++ {
		tr.admit(ds.Snapshots[i])
	}
	tr.publish()
	snap := tr.Snapshot()
	if snap.Model == tr.model {
		t.Fatal("snapshot aliases the live training model")
	}
	frozen := append([]float64(nil), snap.Model.Params.FlattenValues()...)

	for i := 0; i < 3; i++ {
		tr.step()
	}
	if tr.steps.Load() != 3 {
		t.Fatalf("took %d steps, want 3 (last error %q)", tr.steps.Load(), tr.Stats().LastError)
	}
	after := snap.Model.Params.FlattenValues()
	for i := range frozen {
		if after[i] != frozen[i] {
			t.Fatalf("published snapshot weight %d changed during training", i)
		}
	}
	// the live model did move, and a new snapshot reflects that
	tr.publish()
	snap2 := tr.Snapshot()
	if snap2 == snap || snap2.Step != 3 {
		t.Fatalf("republish did not advance: step %d", snap2.Step)
	}
	moved := false
	for i, v := range snap2.Model.Params.FlattenValues() {
		if v != frozen[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("three optimizer steps left the weights bitwise unchanged")
	}
}

// Race soak for the acceptance criterion: concurrent ingest, prediction on
// published snapshots, and stats polling while the trainer loop steps.
// Run under -race (make race-online / make ci).
func TestConcurrentIngestPredictSoak(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	tr, err := NewTrainer(m, opt, ds, TrainerConfig{
		BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true,
		QueueSize: 8, QueuePolicy: DropNewest, Seed: 5,
		Gate: GateConfig{Enabled: true, Threshold: 0.5, Decay: 0.9, Warmup: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()

	deadline := time.Now().Add(700 * time.Millisecond)
	var wg sync.WaitGroup
	// two producers streaming labelled frames
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				if _, err := tr.Ingest(ds.Snapshots[(p+i)%ds.Len()]); err != nil {
					return // queue closed during shutdown
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(p)
	}
	// two readers running forwards on whatever snapshot is current
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				snap := tr.Snapshot()
				env, err := deepmd.BuildBatchEnv(snap.Model.Cfg, ds, []int{0})
				if err != nil {
					t.Error(err)
					return
				}
				out := snap.Model.Forward(env, true)
				if out.Energies.Value.Data[0] != out.Energies.Value.Data[0] {
					t.Error("snapshot forward produced NaN")
				}
				out.Graph.Release()
			}
		}()
	}
	// one stats poller
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			_ = tr.Stats()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tr.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Steps == 0 {
		t.Fatal("soak finished without a single optimizer step")
	}
	if st.LastError != "" {
		t.Fatalf("trainer recorded error: %s", st.LastError)
	}
	if tr.Snapshot().Step != st.Steps {
		t.Fatalf("final snapshot at step %d, trainer at %d", tr.Snapshot().Step, st.Steps)
	}
}

// Kill → restart from the checkpoint must resume the λ schedule and P
// bitwise, and the next identical step must produce identical weights.
func TestCheckpointResumeBitwise(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "online.ckpt")
	cfg := TrainerConfig{
		BatchSize: 2, MinFrames: 2, CheckpointPath: path, Seed: 9,
		Gate: GateConfig{Enabled: false},
	}
	tr, err := NewTrainer(m, opt, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tr.admit(ds.Snapshots[i])
	}
	for i := 0; i < 4; i++ {
		tr.step()
	}
	if err := tr.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir not clean: %v", entries)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := ResumeTrainer(ck, device.New("resume", device.A100()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.steps.Load() != 4 || tr2.Stats().Steps != 4 {
		t.Fatalf("resumed at step %d, want 4", tr2.steps.Load())
	}
	if tr2.opt.Lambda() != tr.opt.Lambda() {
		t.Fatalf("resumed λ %v, want %v", tr2.opt.Lambda(), tr.opt.Lambda())
	}
	if tr2.opt.Updates() != tr.opt.Updates() {
		t.Fatalf("resumed update count %d, want %d", tr2.opt.Updates(), tr.opt.Updates())
	}
	p1, p2 := tr.opt.PDiagonal(), tr2.opt.PDiagonal()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("P diagonal %d differs after resume", i)
		}
	}
	w1 := tr.model.Params.FlattenValues()
	w2 := tr2.model.Params.FlattenValues()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weight %d differs after resume", i)
		}
	}
	if tr2.replay.Seen() != tr.replay.Seen() || tr2.replay.Len() != tr.replay.Len() {
		t.Fatal("replay buffer did not resume")
	}

	// the decisive check: one more IDENTICAL minibatch through both
	// steppers must keep λ, P and every weight bitwise equal.
	idx := []int{0, 1}
	if _, err := tr.stepper.Step(ds, idx); err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.stepper.Step(ds, idx); err != nil {
		t.Fatal(err)
	}
	if tr.opt.Lambda() != tr2.opt.Lambda() {
		t.Fatalf("λ diverged on the first post-resume step: %v vs %v", tr.opt.Lambda(), tr2.opt.Lambda())
	}
	w1, w2 = tr.model.Params.FlattenValues(), tr2.model.Params.FlattenValues()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weight %d diverged on the first post-resume step", i)
		}
	}
	p1, p2 = tr.opt.PDiagonal(), tr2.opt.PDiagonal()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("P diverged on the first post-resume step at %d", i)
		}
	}
}

// Stop must drain queued frames into the replay buffer and write the final
// checkpoint.
func TestGracefulStopDrainsAndCheckpoints(t *testing.T) {
	ds, m, opt := onlineSetup(t)
	path := filepath.Join(t.TempDir(), "final.ckpt")
	tr, err := NewTrainer(m, opt, ds, TrainerConfig{
		BatchSize: 2, MinFrames: 2, CheckpointPath: path, Seed: 3,
		Gate: GateConfig{Enabled: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	for i := 0; i < 8; i++ {
		if ok, err := tr.Ingest(ds.Snapshots[i]); !ok || err != nil {
			t.Fatalf("ingest %d: %v %v", i, ok, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tr.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if got := tr.replay.Seen(); got != 8 {
		t.Fatalf("replay saw %d frames after drain, want 8", got)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	if ck.Replay.Seen != 8 {
		t.Fatalf("final checkpoint recorded %d frames, want 8", ck.Replay.Seen)
	}
	// Stop is idempotent
	if err := tr.Stop(ctx); err != nil {
		t.Fatal(err)
	}
}
