package online

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"fekf/internal/deepmd"
	"fekf/internal/guard"
	"fekf/internal/obs"
	"fekf/internal/optimize"
	"fekf/internal/train"
)

// This file is the trainer half of the self-healing layer: ring-aware
// checkpoint writes, the post-step sentinel check, and the in-place
// rollback that restores the newest valid generation after a divergence.
// Everything here runs on the trainer goroutine (or after the loop has
// exited) — the same ownership rule as step().

// writeCheckpoint persists the trainer state: into the checksummed
// retention ring when one is configured for path, as a legacy plain gob
// file otherwise.
func (t *Trainer) writeCheckpoint(path string) error {
	ck, err := t.buildCheckpoint()
	if err != nil {
		return err
	}
	if t.ring != nil && path == t.cfg.CheckpointPath {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			return fmt.Errorf("online: encode checkpoint %s: %w", path, err)
		}
		seq, err := t.ring.Write(buf.Bytes())
		if err != nil {
			return err
		}
		t.health.NoteCheckpoint(seq, time.Now())
		return nil
	}
	return WriteGobAtomic(path, ck)
}

// maybePoison applies the configured chaos injection after step n: a
// non-finite value lands in the weight vector, exactly what a NaN/Inf
// gradient surviving the Kalman gain would leave behind.
func (t *Trainer) maybePoison(n int64) {
	c := t.cfg.Chaos
	// One-shot: after the rollback rewinds the step counter, the re-run
	// of step n must see the clean gradient, not the fault again.
	if t.chaosFired || c.PoisonStep == 0 || n != c.PoisonStep {
		return
	}
	t.chaosFired = true
	delta := make([]float64, t.model.NumParams())
	idx := c.PoisonIndex
	if idx < 0 || idx >= len(delta) {
		idx = 0
	}
	delta[idx] = c.PoisonValue()
	t.model.Params.AddFlat(delta)
}

// checkHealth runs the sentinel over the post-step state, returning the
// divergence event if one of the invariants broke.
func (t *Trainer) checkHealth(n int64, info optimize.StepInfo) *guard.DivergenceEvent {
	if t.sentinel == nil {
		return nil
	}
	smp := guard.Sample{
		Lambda:  t.opt.Lambda(),
		Weights: t.model.Params.FlattenValues(),
		PDiag:   t.opt.PDiagonal(),
		Aux:     []float64{info.EnergyABE, info.ForceABE},
	}
	if ev := t.sentinel.Check(n, smp); ev != nil {
		return ev
	}
	t.health.NoteHealthy()
	return nil
}

// handleDivergence records a sentinel event and rolls the trainer back to
// the newest valid checkpoint generation.  A failed rollback (no ring, no
// valid generation) leaves the event in last_error and the trainer
// degraded; training continues from the diverged state rather than
// crashing the loop, so operators can still drain and inspect it.
func (t *Trainer) handleDivergence(n int64, ev *guard.DivergenceEvent, rec *obs.StepRecorder) {
	t.health.NoteDivergence(ev)
	t.setErr(ev)
	r0 := time.Now()
	err := t.rollback()
	rec.Span(-1, "rollback", r0, time.Since(r0))
	if err != nil {
		t.setErr(fmt.Errorf("guard: rollback after %v: %w", ev, err))
	}
}

// rollback restores the newest valid ring generation in place: model,
// optimizer (λ, update counter, every P block — bitwise), replay buffer
// with its RNG position, gate and counters, then republishes a healthy
// snapshot.  Quarantined generations are counted in the health ledger.
func (t *Trainer) rollback() error {
	if t.ring == nil {
		return fmt.Errorf("online: no checkpoint ring to roll back to (set CheckpointKeep)")
	}
	seq, payload, quarantined, err := t.ring.LoadNewest()
	t.health.NoteQuarantine(len(quarantined))
	if err != nil {
		return err
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return fmt.Errorf("online: decode checkpoint generation %d: %w", seq, err)
	}
	if err := t.restoreFrom(&ck); err != nil {
		return err
	}
	if t.sentinel != nil {
		t.sentinel.Reset()
	}
	t.health.NoteRollback(seq, ck.Steps)
	t.health.NoteCheckpoint(seq, time.Now())
	t.publish()
	return nil
}

// restoreFrom rebuilds the training state from a checkpoint in place, the
// same restoration ResumeTrainer performs on a fresh trainer.  Frames
// admitted to the replay buffer after the checkpoint was taken are
// dropped along with the diverged state — the stream replays forward from
// the restored RNG position exactly as the uninterrupted trainer would
// have.
func (t *Trainer) restoreFrom(ck *Checkpoint) error {
	m, err := deepmd.DecodeModel(bytes.NewReader(ck.Model))
	if err != nil {
		return err
	}
	m.Dev = t.model.Dev
	if ck.Opt == nil {
		return fmt.Errorf("online: checkpoint has no optimizer state")
	}
	opt, err := optimize.RestoreFEKF(ck.Opt, m)
	if err != nil {
		return err
	}
	t.model, t.opt = m, opt
	t.stepper = train.OptStepper{M: m, Opt: opt}
	t.naPer.Store(ck.NumAtoms)
	t.steps.Store(ck.Steps)
	t.gatedOut.Store(ck.FramesGatedOut)
	t.accepted.Store(ck.FramesAccepted)
	t.lambdaBits.Store(math.Float64bits(opt.Lambda()))
	t.pBytes.Store(opt.PBytes())
	if ck.Replay != nil {
		t.replay = RestoreReplay(ck.Replay)
		t.replayLen.Store(int64(t.replay.Len()))
		t.replayWin.Store(int64(t.replay.WindowLen()))
		t.replayRes.Store(int64(t.replay.ReservoirLen()))
		t.replayCap.Store(int64(ck.Replay.WindowCap + ck.Replay.ResCap))
		t.seen.Store(t.replay.Seen())
	}
	if ck.Gate != nil {
		t.gate = RestoreGate(ck.Gate, t.cfg.Gate)
		t.gateEMA.Store(math.Float64bits(t.gate.EMA()))
	}
	return nil
}
