package online

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/guard"
	"fekf/internal/md"
	"fekf/internal/obs"
	"fekf/internal/optimize"
	"fekf/internal/train"
)

// TrainerConfig controls the online trainer loop.
type TrainerConfig struct {
	// BatchSize is the minibatch drawn from the replay buffer per step.
	BatchSize int
	// QueueSize bounds the ingest queue (frames).
	QueueSize int
	// QueuePolicy selects the full-queue behaviour.
	QueuePolicy Policy
	// WindowSize and ReservoirSize size the replay buffer.
	WindowSize, ReservoirSize int
	// MinFrames is the number of buffered frames required before training
	// starts (defaults to BatchSize).
	MinFrames int
	// SnapshotEvery publishes a fresh model snapshot every that many steps
	// (default 8; the initial snapshot is always published at Start).
	SnapshotEvery int
	// CheckpointPath, when set with CheckpointEvery > 0, receives a
	// combined crash-safe checkpoint every CheckpointEvery steps and a
	// final one at Stop.
	CheckpointPath  string
	CheckpointEvery int
	// CheckpointKeep > 0 turns CheckpointPath into a checksummed
	// retention ring: each write lands as a CRC32-C framed generation
	// (ckpt.000017.gob style) and the last CheckpointKeep generations are
	// retained, giving the divergence guard healthy states to roll back
	// to.  0 keeps the legacy single-file behaviour.
	CheckpointKeep int
	// Guard, when Enabled, runs the numerical health sentinel after every
	// step (λ bounds, sampled weight/P-diagonal finiteness and blow-up
	// thresholds); a divergence triggers an automatic rollback to the
	// newest valid checkpoint generation.
	Guard guard.SentinelConfig
	// Chaos deterministically injects state faults (NaN/Inf weight poison
	// at a given step) to drive the guard's recovery path under test.
	Chaos guard.ChaosConfig
	// Gate configures uncertainty gating of the ingest stream.
	Gate GateConfig
	// TrainIdle keeps drawing replay minibatches while no new frames
	// arrive; off, the trainer only steps after fresh ingest.
	TrainIdle bool
	// PollInterval is how long the loop waits for a frame before
	// re-checking for work (default 10ms).
	PollInterval time.Duration
	// Seed drives replay sampling.
	Seed int64
	// OnStep, if non-nil, runs on the trainer goroutine after every
	// optimizer step.
	OnStep func(step int64, info optimize.StepInfo)
	// Metrics, when non-nil, receives step and checkpoint latency
	// observations (see NewMetrics).  Nil disables instrumentation at the
	// cost of one pointer check per step.
	Metrics *Metrics
	// Trace, when non-nil, records a per-step phase timeline (ingest
	// admit, gate, sample, step, snapshot publish, checkpoint) into the
	// ring served at /v1/trace.
	Trace *obs.Tracer
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if c.BatchSize < 1 {
		c.BatchSize = 8
	}
	if c.QueueSize < 1 {
		c.QueueSize = 256
	}
	if c.WindowSize < 1 {
		c.WindowSize = 256
	}
	if c.ReservoirSize < 1 {
		c.ReservoirSize = 256
	}
	if c.MinFrames < 1 {
		c.MinFrames = c.BatchSize
	}
	if c.SnapshotEvery < 1 {
		c.SnapshotEvery = 8
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	return c
}

// ModelSnapshot is one published copy-on-write view of the trainer: an
// immutable deep copy of the model plus the schedule position it was taken
// at.  Readers run forwards on Model concurrently; nothing here is ever
// mutated after publication.
type ModelSnapshot struct {
	Model     *deepmd.Model
	Step      int64
	Lambda    float64
	Published time.Time
}

// Trainer is the online-learning engine: one goroutine owns the model and
// optimizer and drains the ingest queue through the gate into the replay
// buffer, stepping FEKF on replay minibatches and publishing snapshots via
// an atomic pointer swap.
type Trainer struct {
	cfg     TrainerConfig
	model   *deepmd.Model
	opt     *optimize.FEKF
	stepper train.Stepper
	system  string
	species []md.Species
	naPer   atomic.Int64 // per-frame atom count, fixed by the first frame

	queue  *Queue
	replay *ReplayBuffer
	gate   *Gate

	// rec accumulates the phase spans of the upcoming step (ingest/gate
	// activity happens between steps and is attributed to the step it
	// feeds).  Owned by the loop goroutine; nil when tracing is off.
	rec *obs.StepRecorder

	// self-healing state: the checkpoint retention ring (nil in legacy
	// single-file mode), the post-step health sentinel (nil when
	// disabled) and the divergence/rollback ledger stats expose.
	ring     *guard.Ring
	sentinel *guard.Sentinel
	health   *guard.Health
	// chaosFired makes the configured poison injection one-shot, so the
	// re-run of the poisoned step after rollback proceeds clean.
	chaosFired bool

	// forceGroups caches the optimizer's force-group count at build time:
	// it is invariant for the trainer's lifetime, and reading it off t.opt
	// would race with a guard rollback swapping the optimizer out (Stats
	// runs from any goroutine).
	forceGroups int

	snap       atomic.Pointer[ModelSnapshot]
	steps      atomic.Int64
	lambdaBits atomic.Uint64
	pBytes     atomic.Int64
	gateEMA    atomic.Uint64
	accepted   atomic.Int64
	gatedOut   atomic.Int64
	replayLen  atomic.Int64
	replayWin  atomic.Int64
	replayRes  atomic.Int64
	replayCap  atomic.Int64
	seen       atomic.Int64
	ckWrites   atomic.Int64
	lastErr    atomic.Pointer[string]

	ckReq    chan chan error
	stop     chan struct{}
	loopDone chan struct{}
	started  atomic.Bool
	stopOnce sync.Once
}

// NewTrainer builds a trainer around an initialized model (normalization
// and energy bias set) and a FEKF optimizer.  proto supplies the system
// name and species table every streamed frame must match; if it carries
// snapshots, they fix the expected atom count (otherwise the first
// ingested frame does).
func NewTrainer(m *deepmd.Model, opt *optimize.FEKF, proto *dataset.Dataset, cfg TrainerConfig) (*Trainer, error) {
	if m == nil || opt == nil {
		return nil, fmt.Errorf("online: NewTrainer needs a model and an optimizer")
	}
	if proto == nil || len(proto.Species) == 0 {
		return nil, fmt.Errorf("online: NewTrainer needs a prototype dataset with a species table")
	}
	if len(proto.Species) != m.Cfg.NumSpecies {
		return nil, fmt.Errorf("online: prototype has %d species, model wants %d", len(proto.Species), m.Cfg.NumSpecies)
	}
	cfg = cfg.withDefaults()
	t := &Trainer{
		cfg:     cfg,
		model:   m,
		opt:     opt,
		stepper: train.OptStepper{M: m, Opt: opt},
		system:  proto.System,
		species: proto.Species,
		queue:   NewQueue(cfg.QueueSize, cfg.QueuePolicy),
		replay:  NewReplay(cfg.WindowSize, cfg.ReservoirSize, cfg.Seed),
		gate:    NewGate(cfg.Gate),

		ckReq:    make(chan chan error),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if cfg.CheckpointPath != "" && cfg.CheckpointKeep > 0 {
		t.ring = guard.NewRing(cfg.CheckpointPath, cfg.CheckpointKeep)
	}
	if cfg.Guard.Enabled {
		t.sentinel = guard.NewSentinel(cfg.Guard)
	}
	t.health = guard.NewHealth(0)
	if proto.Len() > 0 {
		t.naPer.Store(int64(proto.Snapshots[0].NumAtoms()))
	}
	t.replayCap.Store(int64(cfg.WindowSize + cfg.ReservoirSize))
	t.lambdaBits.Store(math.Float64bits(opt.Lambda()))
	t.pBytes.Store(opt.PBytes())
	t.forceGroups = opt.ForceGroups
	return t, nil
}

// Species returns the species table frames and predictions must use.
func (t *Trainer) Species() []md.Species { return t.species }

// System returns the physical system name.
func (t *Trainer) System() string { return t.system }

// NumAtoms returns the per-frame atom count the trainer is locked to, or
// 0 before the first frame fixes it.
func (t *Trainer) NumAtoms() int { return int(t.naPer.Load()) }

// Config returns the model configuration (for request validation).
func (t *Trainer) Config() deepmd.Config { return t.model.Cfg }

// ValidateFrame checks a frame's structure against the trainer's system:
// consistent atom count, coordinate/force lengths, species range and box.
func (t *Trainer) ValidateFrame(s *dataset.Snapshot) error {
	return ValidateFrame(s, t.species, int(t.naPer.Load()))
}

// ValidateFrame checks a streamed frame's structure against a species table
// and an expected per-frame atom count (0 accepts any count — the first
// frame then fixes it).  Shared by the single trainer and the fleet's
// sharded ingest.
func ValidateFrame(s *dataset.Snapshot, species []md.Species, wantAtoms int) error {
	na := s.NumAtoms()
	if na == 0 {
		return fmt.Errorf("online: frame has no atoms")
	}
	if wantAtoms != 0 && na != wantAtoms {
		return fmt.Errorf("online: frame has %d atoms, trainer wants %d", na, wantAtoms)
	}
	if len(s.Pos) != 3*na {
		return fmt.Errorf("online: frame has %d coordinates for %d atoms", len(s.Pos), na)
	}
	if len(s.Forces) != 3*na {
		return fmt.Errorf("online: frame has %d force components for %d atoms", len(s.Forces), na)
	}
	for i, ty := range s.Types {
		if ty < 0 || ty >= len(species) {
			return fmt.Errorf("online: atom %d has species %d, table holds %d", i, ty, len(species))
		}
	}
	for d, b := range s.Box {
		if !(b > 0) {
			return fmt.Errorf("online: box dimension %d is %g", d, b)
		}
	}
	return nil
}

// Ingest validates and offers one labelled frame to the queue, reporting
// whether it was accepted (false without error means dropped by policy).
func (t *Trainer) Ingest(s dataset.Snapshot) (bool, error) {
	if err := t.ValidateFrame(&s); err != nil {
		return false, err
	}
	t.naPer.CompareAndSwap(0, int64(s.NumAtoms()))
	return t.queue.Push(s)
}

// Snapshot returns the latest published model snapshot; never nil after
// Start.  Readers use Snapshot().Model freely and concurrently.
func (t *Trainer) Snapshot() *ModelSnapshot { return t.snap.Load() }

// Start publishes the initial snapshot and launches the trainer loop.
func (t *Trainer) Start() {
	if !t.started.CompareAndSwap(false, true) {
		return
	}
	t.publish()
	go t.loop()
}

// Stop shuts the trainer down gracefully: the queue closes (rejecting new
// frames), the loop finishes its in-flight step and drains already-queued
// frames through the gate into the replay buffer, a final snapshot is
// published and — when CheckpointPath is set — a final checkpoint written.
// ctx bounds the wait for the loop to finish.
func (t *Trainer) Stop(ctx context.Context) error {
	if !t.started.Load() {
		return fmt.Errorf("online: Stop before Start")
	}
	t.stopOnce.Do(func() {
		t.queue.Close()
		close(t.stop)
	})
	select {
	case <-t.loopDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	// The loop has exited: this goroutine now owns the training state.
	t.publish()
	if t.cfg.CheckpointPath != "" {
		return t.writeCheckpoint(t.cfg.CheckpointPath)
	}
	return nil
}

// CheckpointNow asks the running trainer loop to write a checkpoint to
// CheckpointPath between steps and waits for the result.
func (t *Trainer) CheckpointNow(ctx context.Context) error {
	if t.cfg.CheckpointPath == "" {
		return fmt.Errorf("online: no CheckpointPath configured")
	}
	reply := make(chan error, 1)
	select {
	case t.ckReq <- reply:
	case <-t.loopDone:
		return t.WriteCheckpoint(t.cfg.CheckpointPath)
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-reply:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// loop is the trainer goroutine: drain → gate → replay → step → publish.
func (t *Trainer) loop() {
	defer close(t.loopDone)
	for {
		select {
		case <-t.stop:
			// graceful drain: everything still queued flows through the
			// gate into the replay buffer so the final checkpoint sees it.
			for {
				s, ok := t.queue.Pop(0)
				if !ok {
					return
				}
				t.admit(s)
			}
		case reply := <-t.ckReq:
			reply <- t.writeCheckpointCounted(t.cfg.CheckpointPath)
			continue
		default:
		}

		// 1. drain whatever is queued right now
		got := 0
		for {
			s, ok := t.queue.Pop(0)
			if !ok {
				break
			}
			t.admit(s)
			got++
		}
		ready := t.replay.Len() >= t.cfg.MinFrames
		if got == 0 && !(t.cfg.TrainIdle && ready) {
			// nothing to do yet: wait briefly for a frame
			if s, ok := t.queue.Pop(t.cfg.PollInterval); ok {
				t.admit(s)
				got++
				ready = t.replay.Len() >= t.cfg.MinFrames
			}
		}

		// 2. one optimizer step when there is material to learn from
		if ready && (got > 0 || t.cfg.TrainIdle) {
			t.step()
		}
	}
}

// admit runs one frame through the gate into the replay buffer, updating
// the mirrored stats counters.
func (t *Trainer) admit(s dataset.Snapshot) {
	if t.cfg.Trace != nil && t.rec == nil {
		t.rec = t.cfg.Trace.Begin()
	}
	a0 := time.Now()
	defer func() { t.rec.Span(-1, "ingest_admit", a0, time.Since(a0)) }()
	scratch := &dataset.Dataset{System: t.system, Species: t.species, Snapshots: []dataset.Snapshot{s}}
	g0 := time.Now()
	ok, _, err := t.gate.Admit(t.model, t.opt.PDiagonal(), scratch, 0)
	t.rec.Span(-1, "gate", g0, time.Since(g0))
	if err != nil {
		t.setErr(fmt.Errorf("gate: %w", err))
		return
	}
	t.gateEMA.Store(math.Float64bits(t.gate.EMA()))
	if !ok {
		t.gatedOut.Add(1)
		return
	}
	t.replay.Add(s)
	t.accepted.Add(1)
	t.replayLen.Store(int64(t.replay.Len()))
	t.replayWin.Store(int64(t.replay.WindowLen()))
	t.replayRes.Store(int64(t.replay.ReservoirLen()))
	t.seen.Store(t.replay.Seen())
}

// step draws one replay minibatch and advances the optimizer, publishing
// snapshots and periodic checkpoints on schedule.
func (t *Trainer) step() {
	if t.cfg.Trace != nil && t.rec == nil {
		t.rec = t.cfg.Trace.Begin()
	}
	rec := t.rec
	s0 := time.Now()
	batch := t.replay.Sample(t.cfg.BatchSize)
	rec.Span(-1, "sample", s0, time.Since(s0))
	if len(batch) == 0 {
		return
	}
	ds := &dataset.Dataset{System: t.system, Species: t.species, Snapshots: batch}
	idx := make([]int, len(batch))
	for i := range idx {
		idx[i] = i
	}
	k0 := time.Now()
	info, err := t.stepper.Step(ds, idx)
	stepDur := time.Since(k0)
	rec.Span(-1, "step", k0, stepDur)
	if m := t.cfg.Metrics; m != nil {
		m.StepSeconds.Observe(stepDur.Seconds())
	}
	if err != nil {
		t.setErr(fmt.Errorf("step: %w", err))
		rec.End(t.steps.Load())
		t.rec = nil
		return
	}
	n := t.steps.Add(1)
	t.maybePoison(n)
	t.lambdaBits.Store(math.Float64bits(t.opt.Lambda()))
	t.pBytes.Store(t.opt.PBytes())
	if ev := t.checkHealth(n, info); ev != nil {
		// Divergence: record it and roll back to the newest valid
		// checkpoint generation before anything downstream (snapshot
		// publish, checkpoint write, OnStep) can observe or persist the
		// poisoned state.
		t.handleDivergence(n, ev, rec)
		rec.End(n)
		t.rec = nil
		return
	}
	if t.cfg.OnStep != nil {
		t.cfg.OnStep(n, info)
	}
	if n%int64(t.cfg.SnapshotEvery) == 0 {
		p0 := time.Now()
		t.publish()
		rec.Span(-1, "snapshot_publish", p0, time.Since(p0))
	}
	if t.cfg.CheckpointEvery > 0 && t.cfg.CheckpointPath != "" && n%int64(t.cfg.CheckpointEvery) == 0 {
		c0 := time.Now()
		if err := t.writeCheckpointCounted(t.cfg.CheckpointPath); err != nil {
			t.setErr(fmt.Errorf("checkpoint: %w", err))
		}
		rec.Span(-1, "checkpoint", c0, time.Since(c0))
	}
	rec.End(n)
	t.rec = nil
}

// publish swaps in a fresh copy-on-write snapshot.  Called from the loop
// goroutine (or from Start/Stop while the loop is not running), so the
// clone always sees a quiescent weight set.
func (t *Trainer) publish() {
	t.snap.Store(&ModelSnapshot{
		Model:     t.model.Clone(),
		Step:      t.steps.Load(),
		Lambda:    t.opt.Lambda(),
		Published: time.Now(),
	})
}

func (t *Trainer) writeCheckpointCounted(path string) error {
	c0 := time.Now()
	err := t.writeCheckpoint(path)
	if m := t.cfg.Metrics; m != nil {
		m.CheckpointSeconds.Observe(time.Since(c0).Seconds())
	}
	if err == nil {
		t.ckWrites.Add(1)
	}
	return err
}

func (t *Trainer) setErr(err error) {
	s := err.Error()
	t.lastErr.Store(&s)
}

// Stats is the observable state of the trainer, served at /v1/stats.
type Stats struct {
	System        string  `json:"system"`
	Steps         int64   `json:"steps"`
	Lambda        float64 `json:"lambda"`
	KalmanUpdates int64   `json:"kalman_updates"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	// QueueOccupancy is the filled fraction of the ingest queue capacity
	// (summed across replicas for a fleet) — the queue-pressure signal
	// the fleet autoscaler keys on.
	QueueOccupancy float64 `json:"queue_occupancy"`
	FramesQueued   int64   `json:"frames_queued"`
	FramesDropped  int64   `json:"frames_dropped"`
	FramesGatedOut int64   `json:"frames_gated_out"`
	FramesAccepted int64   `json:"frames_accepted"`
	FramesSeen     int64   `json:"frames_seen"`
	GateEMA        float64 `json:"gate_ema"`
	// GateAcceptRate is the fraction of gate-scored frames admitted so far
	// (accepted / (accepted + gated out); 0 before any frame arrives).
	GateAcceptRate float64 `json:"gate_accept_rate"`
	ReplaySize     int64   `json:"replay_size"`
	// Replay-buffer occupancy: window and reservoir fill, the combined
	// capacity, and the filled fraction of that capacity.
	ReplayWindowLen    int64   `json:"replay_window_len"`
	ReplayReservoirLen int64   `json:"replay_reservoir_len"`
	ReplayCapacity     int64   `json:"replay_capacity"`
	ReplayOccupancy    float64 `json:"replay_occupancy"`
	SnapshotStep       int64   `json:"snapshot_step"`
	SnapshotAgeMs      int64   `json:"snapshot_age_ms"`
	Checkpoints        int64   `json:"checkpoints_written"`
	// PResidentBytes is the resident Kalman covariance footprint (summed
	// across replicas for a fleet; each replica holds the full P when
	// replicated, only its owned row slabs under covariance sharding) —
	// the same quantity the fekf_p_resident_bytes gauge exports.
	PResidentBytes int64  `json:"p_resident_bytes"`
	LastError      string `json:"last_error,omitempty"`
	// Guard is the self-healing ledger (nil when neither the sentinel nor
	// the checkpoint ring is configured): divergence/rollback/watchdog
	// counts, the degraded flag /healthz keys on, and the checkpoint-ring
	// generation and age.
	Guard *guard.Status `json:"guard,omitempty"`
}

// Stats returns a consistent-enough view assembled from atomics; safe from
// any goroutine.
func (t *Trainer) Stats() Stats {
	st := Stats{
		System:         t.system,
		Steps:          t.steps.Load(),
		Lambda:         math.Float64frombits(t.lambdaBits.Load()),
		KalmanUpdates:  t.steps.Load() * int64(1+t.forceGroups),
		QueueDepth:     t.queue.Depth(),
		QueueCapacity:  t.queue.Cap(),
		FramesQueued:   t.queue.Pushed(),
		FramesDropped:  t.queue.Dropped(),
		FramesGatedOut: t.gatedOut.Load(),
		FramesAccepted: t.accepted.Load(),
		FramesSeen:     t.seen.Load(),
		GateEMA:        math.Float64frombits(t.gateEMA.Load()),
		ReplaySize:     t.replayLen.Load(),

		ReplayWindowLen:    t.replayWin.Load(),
		ReplayReservoirLen: t.replayRes.Load(),
		ReplayCapacity:     t.replayCap.Load(),
		Checkpoints:        t.ckWrites.Load(),
		PResidentBytes:     t.pBytes.Load(),
	}
	if st.ReplayCapacity > 0 {
		st.ReplayOccupancy = float64(st.ReplaySize) / float64(st.ReplayCapacity)
	}
	if st.QueueCapacity > 0 {
		st.QueueOccupancy = float64(st.QueueDepth) / float64(st.QueueCapacity)
	}
	if scored := st.FramesAccepted + st.FramesGatedOut; scored > 0 {
		st.GateAcceptRate = float64(st.FramesAccepted) / float64(scored)
	}
	if s := t.snap.Load(); s != nil {
		st.SnapshotStep = s.Step
		st.SnapshotAgeMs = time.Since(s.Published).Milliseconds()
	}
	if e := t.lastErr.Load(); e != nil {
		st.LastError = *e
	}
	if t.ring != nil || t.sentinel != nil {
		st.Guard = t.health.Status(time.Now())
	}
	return st
}
