// Package online is the streaming-training subsystem the paper's title
// points at: a long-running trainer that ingests labelled frames while an
// MD simulation (or any producer) generates them, trains the DeePMD model
// continuously with the FEKF optimizer, and publishes copy-on-write model
// snapshots that concurrent prediction readers consume without ever
// blocking — or being blocked by — training.
//
// The dataflow is
//
//	producer ──► Queue (bounded, backpressure/drop policies)
//	                │ trainer goroutine
//	                ▼
//	            Gate (ALKPU-style uncertainty score against diag(P))
//	                │ accepted frames
//	                ▼
//	            ReplayBuffer (FIFO window + reservoir over the stream)
//	                │ minibatches
//	                ▼
//	            FEKF.Step via the shared train.Stepper
//	                │ every SnapshotEvery steps
//	                ▼
//	            atomic snapshot pointer ──► readers (internal/serve)
//
// All mutable training state — the model weights, the Kalman P, the gate
// EMA and the replay buffer — is owned by the single trainer goroutine;
// everything crossing the boundary is either a channel hand-off (frames),
// an immutable published clone (snapshots) or an atomic counter (stats).
// Periodic checkpoints capture the model, the full Kalman state and the
// replay/gate state so a restarted trainer resumes the λ schedule and P
// bitwise.
package online
