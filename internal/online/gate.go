package online

import (
	"fekf/internal/dataset"
	"fekf/internal/deepmd"
)

// GateConfig controls ALKPU-style uncertainty gating of the ingest stream.
type GateConfig struct {
	// Enabled turns gating on; off, every queued frame reaches the replay
	// buffer.
	Enabled bool
	// Threshold is the fraction of the running mean score below which a
	// frame is considered low-information and discarded (0 accepts all).
	Threshold float64
	// Decay is the EMA decay of the running mean score.
	Decay float64
	// Warmup is the number of frames always accepted while the filter's
	// covariance and the score EMA spin up.
	Warmup int
}

// DefaultGateConfig returns the gating defaults: on, with frames admitted
// unless their uncertainty score falls below half the recent mean.
func DefaultGateConfig() GateConfig {
	return GateConfig{Enabled: true, Threshold: 0.5, Decay: 0.95, Warmup: 32}
}

// Gate scores streamed frames against the Kalman filter's error
// covariance, the ALKPU idea: the diagonal of P is the filter's
// per-parameter error variance, so the variance it predicts along a
// frame's energy-gradient direction,
//
//	score = Σ_j g_j² P_jj / Σ_j g_j²,  g = ∂E/∂w,
//
// measures how much the filter still expects to learn from configurations
// like this one.  Frames scoring well below the running mean are ones the
// filter has already absorbed — training on them buys little — and are
// dropped before they reach the replay buffer.
//
// The gate is owned by the trainer goroutine: scoring runs a forward and
// an energy backward on the live training model between optimizer steps.
type Gate struct {
	cfg GateConfig
	ema float64
	n   int64 // frames scored (EMA samples)

	accepted int64
	rejected int64
}

// NewGate returns a gate with the given configuration (zero Decay falls
// back to the default).
func NewGate(cfg GateConfig) *Gate {
	if cfg.Decay <= 0 || cfg.Decay >= 1 {
		cfg.Decay = DefaultGateConfig().Decay
	}
	return &Gate{cfg: cfg}
}

// Score computes the uncertainty score of one frame: the P-weighted mean
// square gradient over the plain mean square gradient.  pd is the filter's
// P diagonal aligned with the flat parameter vector.
func (g *Gate) Score(m *deepmd.Model, pd []float64, ds *dataset.Dataset, idx int) (float64, error) {
	env, err := deepmd.BuildBatchEnv(m.Cfg, ds, []int{idx})
	if err != nil {
		return 0, err
	}
	out := m.Forward(env, false)
	grad := m.EnergyGrad(out, nil)
	out.Graph.Release()
	var num, den float64
	for j, gj := range grad {
		num += gj * gj * pd[j]
		den += gj * gj
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// Admit decides whether a frame enters the replay buffer and returns the
// score it was judged on (0 when no scoring happened).  Frames are always
// admitted while the gate is disabled, the filter has no covariance yet
// (pd nil), or the warmup window is still open; scored frames update the
// EMA whether or not they pass.
func (g *Gate) Admit(m *deepmd.Model, pd []float64, ds *dataset.Dataset, idx int) (bool, float64, error) {
	if !g.cfg.Enabled || g.cfg.Threshold <= 0 || pd == nil {
		g.accepted++
		return true, 0, nil
	}
	score, err := g.Score(m, pd, ds, idx)
	if err != nil {
		return false, 0, err
	}
	prevEMA, prevN := g.ema, g.n
	if g.n == 0 {
		g.ema = score
	} else {
		g.ema = g.cfg.Decay*g.ema + (1-g.cfg.Decay)*score
	}
	g.n++
	if prevN < int64(g.cfg.Warmup) || score >= g.cfg.Threshold*prevEMA {
		g.accepted++
		return true, score, nil
	}
	g.rejected++
	return false, score, nil
}

// EMA returns the running mean score.
func (g *Gate) EMA() float64 { return g.ema }

// Accepted returns the number of admitted frames.
func (g *Gate) Accepted() int64 { return g.accepted }

// Rejected returns the number of gated-out frames.
func (g *Gate) Rejected() int64 { return g.rejected }

// GateCheckpoint is the serializable gate state.
type GateCheckpoint struct {
	EMA      float64
	N        int64
	Accepted int64
	Rejected int64
}

// Checkpoint copies the gate state.
func (g *Gate) Checkpoint() *GateCheckpoint {
	return &GateCheckpoint{EMA: g.ema, N: g.n, Accepted: g.accepted, Rejected: g.rejected}
}

// RestoreGate rebuilds a gate from a checkpoint under cfg.
func RestoreGate(ck *GateCheckpoint, cfg GateConfig) *Gate {
	g := NewGate(cfg)
	g.ema, g.n, g.accepted, g.rejected = ck.EMA, ck.N, ck.Accepted, ck.Rejected
	return g
}
