package md

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// perturb jitters all atom positions by up to amp Å.
func perturb(s *System, amp float64, rng *rand.Rand) {
	for i := range s.Pos {
		s.Pos[i] += amp * (2*rng.Float64() - 1)
	}
}

// checkForces verifies that the analytic forces of p equal -dE/dx by
// central finite differences on a handful of random coordinates.
func checkForces(t *testing.T, name string, p Potential, s *System, rng *rand.Rand, tol float64) {
	t.Helper()
	_, forces := ComputeAll(p, s)
	const h = 1e-5
	for trial := 0; trial < 12; trial++ {
		idx := rng.Intn(len(s.Pos))
		orig := s.Pos[idx]
		s.Pos[idx] = orig + h
		ep, _ := ComputeAll(p, s)
		s.Pos[idx] = orig - h
		em, _ := ComputeAll(p, s)
		s.Pos[idx] = orig
		want := -(ep - em) / (2 * h)
		if math.Abs(forces[idx]-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("%s: force[%d] = %v, -dE/dx = %v", name, idx, forces[idx], want)
		}
	}
}

func TestMorseForcesMatchEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, p := mustBuild(t, "Cu", 1)
	perturb(s, 0.15, rng)
	checkForces(t, "Morse/Cu", p, s, rng, 1e-5)
}

func TestSWForcesMatchEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, p := mustBuild(t, "Si", 1)
	perturb(s, 0.12, rng)
	checkForces(t, "SW/Si", p, s, rng, 1e-5)
}

func TestIonicForcesMatchEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"NaCl", "CuO", "HfO2"} {
		s, p := mustBuild(t, name, 1)
		perturb(s, 0.1, rng)
		checkForces(t, name, p, s, rng, 1e-4)
	}
}

func TestWaterForcesMatchEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, p := mustBuild(t, "H2O", 1)
	perturb(s, 0.05, rng)
	checkForces(t, "Water", p, s, rng, 1e-4)
}

func TestLJForcesMatchEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := FCC(3.615, 2, Species{Name: "X", Mass: 50})
	perturb(s, 0.1, rng)
	p := LennardJones{Eps: 0.1, Sigma: 2.3, Ron: 4.0, Rc: 5.0}
	checkForces(t, "LJ", p, s, rng, 1e-5)
}

func mustBuild(t *testing.T, name string, scale int) (*System, Potential) {
	t.Helper()
	spec, err := GetSystem(name)
	if err != nil {
		t.Fatal(err)
	}
	s, p := spec.Build(scale)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestForcesSumToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, name := range SystemNames() {
		s, p := mustBuild(t, name, 1)
		perturb(s, 0.1, rng)
		_, f := ComputeAll(p, s)
		var fx, fy, fz float64
		for i := 0; i < s.NumAtoms(); i++ {
			fx += f[3*i]
			fy += f[3*i+1]
			fz += f[3*i+2]
		}
		if math.Abs(fx)+math.Abs(fy)+math.Abs(fz) > 1e-8 {
			t.Fatalf("%s: net force (%g,%g,%g) nonzero", name, fx, fy, fz)
		}
	}
}

func TestEnergyTranslationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range SystemNames() {
		s, p := mustBuild(t, name, 1)
		perturb(s, 0.1, rng)
		e1, _ := ComputeAll(p, s)
		for i := 0; i < s.NumAtoms(); i++ {
			s.Pos[3*i] += 1.234
			s.Pos[3*i+1] -= 0.567
			s.Pos[3*i+2] += 7.1
		}
		e2, _ := ComputeAll(p, s)
		if math.Abs(e1-e2) > 1e-8*(1+math.Abs(e1)) {
			t.Fatalf("%s: E changed under translation: %v vs %v", name, e1, e2)
		}
	}
}

func TestNeighborCellMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := FCC(3.615, 5, Species{Name: "Cu", Mass: massCu}) // 18 Å box, cutoff < L/2
	perturb(s, 0.2, rng)
	cutoff := 5.0
	cell := BuildNeighbors(s, cutoff)
	brute := BuildNeighborsBrute(s, cutoff)
	for i := range cell.Lists {
		if len(cell.Lists[i]) != len(brute.Lists[i]) {
			t.Fatalf("atom %d: cell %d neighbors, brute %d", i, len(cell.Lists[i]), len(brute.Lists[i]))
		}
	}
	// spot-check distances agree atom by atom as multisets
	sumR := func(l []Neighbor) float64 {
		s := 0.0
		for _, nb := range l {
			s += nb.R
		}
		return s
	}
	for i := range cell.Lists {
		if math.Abs(sumR(cell.Lists[i])-sumR(brute.Lists[i])) > 1e-9 {
			t.Fatalf("atom %d neighbor distances differ", i)
		}
	}
}

func TestNeighborImagesSeesPeriodicCopies(t *testing.T) {
	// one atom in a small box: with cutoff > L it must see its own images
	s := &System{
		Box:     [3]float64{3, 3, 3},
		Pos:     []float64{1, 1, 1},
		Types:   []int{0},
		Species: []Species{{Name: "X", Mass: 1}},
	}
	nl := BuildNeighborsImages(s, 3.5)
	if len(nl.Lists[0]) != 6 {
		t.Fatalf("expected 6 first-shell images, got %d", len(nl.Lists[0]))
	}
	for _, nb := range nl.Lists[0] {
		if nb.J != 0 || math.Abs(nb.R-3) > 1e-12 {
			t.Fatalf("unexpected image entry %+v", nb)
		}
	}
}

// Property: each neighbor entry has a mirrored entry (full-list symmetry),
// which the half-weight pair formulation relies on.
func TestPropNeighborListSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := FCC(3.615, 2, Species{Name: "Cu", Mass: massCu})
		perturb(s, 0.2, rng)
		nl := BuildNeighbors(s, 5.2)
		count := map[[2]int]int{}
		for i, lst := range nl.Lists {
			for _, nb := range lst {
				count[[2]int{i, nb.J}]++
			}
		}
		for k, v := range count {
			if count[[2]int{k[1], k[0]}] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothCutoff(t *testing.T) {
	c := SmoothCutoff{Rcs: 2, Rc: 4}
	if s, _ := c.Eval(1.0); s != 1.0 {
		t.Fatalf("s(1) = %v want 1", s)
	}
	if s, ds := c.Eval(5.0); s != 0 || ds != 0 {
		t.Fatal("s beyond rc must vanish")
	}
	// continuity at rcs and rc
	sIn, _ := c.Eval(2 - 1e-9)
	sOut, _ := c.Eval(2 + 1e-9)
	if math.Abs(sIn-sOut) > 1e-6 {
		t.Fatalf("discontinuity at rcs: %v vs %v", sIn, sOut)
	}
	sEnd, _ := c.Eval(4 - 1e-9)
	if math.Abs(sEnd) > 1e-6 {
		t.Fatalf("s(rc⁻) = %v want ~0", sEnd)
	}
	// derivative by finite differences across the switching region
	for _, r := range []float64{1.3, 2.5, 3.1, 3.9} {
		const h = 1e-7
		sp, _ := c.Eval(r + h)
		sm, _ := c.Eval(r - h)
		_, ds := c.Eval(r)
		num := (sp - sm) / (2 * h)
		if math.Abs(ds-num) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("ds(%v) = %v, numeric %v", r, ds, num)
		}
	}
}

func TestLatticeCounts(t *testing.T) {
	if n := FCC(3.6, 3, Species{Name: "Cu", Mass: 1}).NumAtoms(); n != 108 {
		t.Fatalf("FCC 3³ = %d atoms, want 108", n)
	}
	if n := Diamond(5.4, 2, Species{Name: "Si", Mass: 1}).NumAtoms(); n != 64 {
		t.Fatalf("Diamond 2³ = %d atoms, want 64", n)
	}
	rs := RockSalt(5.6, 2, Species{Name: "Na", Mass: 1, Charge: 1}, Species{Name: "Cl", Mass: 1, Charge: -1})
	if rs.NumAtoms() != 64 {
		t.Fatalf("RockSalt 2³ = %d atoms, want 64", rs.NumAtoms())
	}
	// charge neutrality
	q := 0.0
	for _, ty := range rs.Types {
		q += rs.Species[ty].Charge
	}
	if q != 0 {
		t.Fatalf("RockSalt net charge %v", q)
	}
	fl := Fluorite(5.08, 2, Species{Name: "Hf", Mass: 1, Charge: 2.4}, Species{Name: "O", Mass: 1, Charge: -1.2})
	if fl.NumAtoms() != 96 {
		t.Fatalf("Fluorite 2³ = %d atoms, want 96", fl.NumAtoms())
	}
	q = 0
	for _, ty := range fl.Types {
		q += fl.Species[ty].Charge
	}
	if math.Abs(q) > 1e-9 {
		t.Fatalf("Fluorite net charge %v", q)
	}
	w := WaterBox(7.8, 16, Species{Name: "O", Mass: 16, Charge: -0.82}, Species{Name: "H", Mass: 1, Charge: 0.41})
	if w.NumAtoms() != 48 {
		t.Fatalf("WaterBox 16 molecules = %d atoms, want 48", w.NumAtoms())
	}
	if n := HCP(3.2, 5.2, [3]int{3, 1, 3}, Species{Name: "Mg", Mass: 1}).NumAtoms(); n != 36 {
		t.Fatalf("HCP 3x1x3 = %d atoms, want 36", n)
	}
}

func TestInitVelocitiesTemperatureAndDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := FCC(3.615, 3, Species{Name: "Cu", Mass: massCu})
	s.InitVelocities(600, rng)
	T := s.Temperature()
	if T < 400 || T > 800 {
		t.Fatalf("initialized T = %v, want ~600", T)
	}
	var px, py, pz float64
	for i := 0; i < s.NumAtoms(); i++ {
		m := s.Species[s.Types[i]].Mass
		px += m * s.Vel[3*i]
		py += m * s.Vel[3*i+1]
		pz += m * s.Vel[3*i+2]
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-9 {
		t.Fatalf("net momentum (%g,%g,%g)", px, py, pz)
	}
}

func TestLangevinEquilibratesTemperature(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s, p := mustBuild(t, "Cu", 1)
	s.InitVelocities(400, rng)
	lg := NewLangevin(p, 2.0, 400, rng)
	lg.Friction = 0.1
	sum, count := 0.0, 0
	lg.Run(s, 400, 10, func(step int) {
		if step > 100 {
			sum += s.Temperature()
			count++
		}
	})
	mean := sum / float64(count)
	if mean < 250 || mean > 550 {
		t.Fatalf("mean T = %v, want ~400", mean)
	}
	// system must stay bound (no explosion)
	e, _ := ComputeAll(p, s)
	if math.IsNaN(e) || math.IsInf(e, 0) {
		t.Fatalf("energy diverged: %v", e)
	}
}

func TestLangevinStableForAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("MD stability sweep is slow")
	}
	rng := rand.New(rand.NewSource(11))
	for _, name := range SystemNames() {
		spec, err := GetSystem(name)
		if err != nil {
			t.Fatal(err)
		}
		s, p := spec.Build(1)
		T := spec.Temperatures[0]
		s.InitVelocities(T, rng)
		lg := NewLangevin(p, spec.TimeStep, T, rng)
		lg.Run(s, 120, 0, nil)
		e, _ := ComputeAll(p, s)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("%s: diverged after 120 steps (E=%v)", name, e)
		}
		if tt := s.Temperature(); tt > 20*T+1000 {
			t.Fatalf("%s: runaway temperature %v at target %v", name, tt, T)
		}
	}
}

func TestGetSystemUnknown(t *testing.T) {
	if _, err := GetSystem("Unobtainium"); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

func TestWrapAndDisplacement(t *testing.T) {
	s := &System{
		Box:     [3]float64{10, 10, 10},
		Pos:     []float64{9.5, 0, 0, 0.5, 0, 0},
		Types:   []int{0, 0},
		Species: []Species{{Name: "X", Mass: 1}},
	}
	dx, _, _, r := s.Displacement(0, 1)
	if math.Abs(dx-1.0) > 1e-12 || math.Abs(r-1.0) > 1e-12 {
		t.Fatalf("minimum image: dx=%v r=%v want 1", dx, r)
	}
	s.Pos[0] = -0.2
	s.Wrap()
	if s.Pos[0] < 0 || s.Pos[0] >= 10 {
		t.Fatalf("wrap failed: %v", s.Pos[0])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := FCC(3.6, 2, Species{Name: "Cu", Mass: 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Types[0] = 99
	if err := s.Validate(); err == nil {
		t.Fatal("expected species-index error")
	}
	s.Types[0] = 0
	s.Pos = s.Pos[:len(s.Pos)-1]
	if err := s.Validate(); err == nil {
		t.Fatal("expected position-length error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := FCC(3.6, 2, Species{Name: "Cu", Mass: 1})
	c := s.Clone()
	c.Pos[0] = 99
	c.Types[0] = 0
	if s.Pos[0] == 99 {
		t.Fatal("clone shares position storage")
	}
}

func BenchmarkNeighborsCellList(b *testing.B) {
	s := FCC(3.615, 6, Species{Name: "Cu", Mass: massCu})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildNeighbors(s, 5.0)
	}
}

func BenchmarkComputeSW(b *testing.B) {
	s := Diamond(5.431, 2, Species{Name: "Si", Mass: massSi})
	p := SWSilicon()
	nl := BuildNeighbors(s, p.Cutoff())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Compute(s, nl)
	}
}

func TestTinyBuildsStableAndSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, name := range SystemNames() {
		spec, err := GetSystem(name)
		if err != nil {
			t.Fatal(err)
		}
		s, p := spec.TinyBuild()
		if err := s.Validate(); err != nil {
			t.Fatalf("%s tiny: %v", name, err)
		}
		if n := s.NumAtoms(); n < 4 || n > 40 {
			t.Fatalf("%s tiny cell has %d atoms", name, n)
		}
		T := spec.Temperatures[0]
		s.InitVelocities(T, rng)
		lg := NewLangevin(p, spec.TimeStep, T, rng)
		lg.Run(s, 60, 0, nil)
		e, _ := ComputeAll(p, s)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("%s tiny: diverged (E=%v)", name, e)
		}
	}
}

func TestRDFCrystalPeak(t *testing.T) {
	s := FCC(3.615, 3, Species{Name: "Cu", Mass: massCu})
	rdf := NewRDF(0, 0, 5.0, 100)
	rdf.Accumulate(s)
	pos, height := rdf.FirstPeak()
	// fcc nearest-neighbor distance a/√2 = 2.556 Å
	want := 3.615 / math.Sqrt2
	if math.Abs(pos-want) > 0.1 {
		t.Fatalf("first peak at %v Å, want ~%v", pos, want)
	}
	if height < 5 {
		t.Fatalf("crystal peak height %v implausibly low", height)
	}
	// no pairs below the nearest-neighbor shell
	rs, g := rdf.Curve()
	for i, r := range rs {
		if r < 2.0 && g[i] != 0 {
			t.Fatalf("g(%v) = %v, expected 0 below first shell", r, g[i])
		}
	}
}

func TestRDFCrossPair(t *testing.T) {
	s := RockSalt(5.64, 2, Species{Name: "Na", Mass: massNa, Charge: 1},
		Species{Name: "Cl", Mass: massCl, Charge: -1})
	rdf := NewRDF(0, 1, 5.0, 80)
	rdf.Accumulate(s)
	pos, _ := rdf.FirstPeak()
	// rock salt cation-anion distance a/2 = 2.82 Å
	if math.Abs(pos-2.82) > 0.1 {
		t.Fatalf("Na-Cl peak at %v, want ~2.82", pos)
	}
}

func TestRDFEmptyAndMissingSpecies(t *testing.T) {
	r := NewRDF(0, 0, 5, 10)
	rs, g := r.Curve()
	if len(rs) != 10 || len(g) != 10 {
		t.Fatal("curve shape")
	}
	s := FCC(3.6, 2, Species{Name: "Cu", Mass: 1})
	r2 := NewRDF(0, 1, 5, 10) // species 1 absent
	r2.Accumulate(s)
	if _, h := r2.FirstPeak(); h != 0 {
		t.Fatal("missing species should accumulate nothing")
	}
}

func TestMSDStaticIsZero(t *testing.T) {
	s := FCC(3.6, 2, Species{Name: "Cu", Mass: massCu})
	m := NewMSD(s)
	m.Accumulate(s)
	m.Accumulate(s)
	for _, v := range m.Series() {
		if v != 0 {
			t.Fatalf("static MSD = %v", v)
		}
	}
	if d := m.DiffusionCoefficient(1); d != 0 {
		t.Fatalf("static diffusion = %v", d)
	}
}

func TestMSDBallisticDrift(t *testing.T) {
	s := FCC(3.6, 2, Species{Name: "Cu", Mass: massCu})
	m := NewMSD(s)
	// move every atom by v=0.01 Å per step along x: MSD = (0.01·k)²
	for k := 1; k <= 8; k++ {
		for i := 0; i < s.NumAtoms(); i++ {
			s.Pos[3*i] += 0.01
		}
		m.Accumulate(s)
	}
	series := m.Series()
	for k, v := range series {
		want := math.Pow(0.01*float64(k+1), 2)
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("MSD[%d] = %v want %v", k, v, want)
		}
	}
	if m.DiffusionCoefficient(1) <= 0 {
		t.Fatal("drifting system must show positive slope")
	}
}
