package md

import "math"

// Water is a flexible SPC-like water model: harmonic intramolecular O-H
// bonds and H-O-H angle, tapered Lennard-Jones between oxygens, and
// DSF/Wolf Coulomb between atoms of different molecules.  Atoms must be
// laid out O,H,H per molecule (the WaterBox layout); species 0 is O,
// species 1 is H.
type Water struct {
	KBond  float64 // eV/Å², O-H harmonic constant
	RBond  float64 // Å, O-H equilibrium length
	KAngle float64 // eV/rad², H-O-H harmonic constant
	Theta0 float64 // rad, H-O-H equilibrium angle
	OO     LennardJones
	Alpha  float64 // Wolf damping
	Rc     float64 // Coulomb cutoff
}

// SPCFlexWater returns a flexible SPC-like parameterization.  Charges are
// taken from the species table (expected qO=-0.82, qH=+0.41).
func SPCFlexWater() Water {
	return Water{
		KBond:  48.0,
		RBond:  1.0,
		KAngle: 3.97,
		Theta0: 109.47 * math.Pi / 180,
		OO:     LennardJones{Eps: 0.006739, Sigma: 3.166, Ron: 5.0, Rc: 6.0},
		Alpha:  0.2,
		Rc:     6.0,
	}
}

// Cutoff returns the interaction range.
func (w Water) Cutoff() float64 {
	if w.OO.Rc > w.Rc {
		return w.OO.Rc
	}
	return w.Rc
}

// Compute evaluates the water energy and forces.
func (w Water) Compute(s *System, nl *NeighborList) (float64, []float64) {
	n := s.NumAtoms()
	if n%3 != 0 {
		panic("md: Water expects O,H,H molecule layout")
	}
	f := make([]float64, 3*n)
	e := 0.0

	// intramolecular terms, directly by molecule
	for m := 0; m < n/3; m++ {
		o, h1, h2 := 3*m, 3*m+1, 3*m+2
		e += w.bond(s, f, o, h1)
		e += w.bond(s, f, o, h2)
		e += w.angle(s, f, h1, o, h2)
	}

	// intermolecular: O-O LJ and all-pair DSF Coulomb, skipping same-molecule pairs
	a := w.Alpha
	erfcRc := math.Erfc(a * w.Rc)
	eShift := erfcRc / w.Rc
	fShift := erfcRc/(w.Rc*w.Rc) + 2*a/math.Sqrt(math.Pi)*math.Exp(-a*a*w.Rc*w.Rc)/w.Rc

	// full-list half-weight pair sum (see potential.go)
	for i := 0; i < n; i++ {
		qi := s.Species[s.Types[i]].Charge
		for _, nb := range nl.Lists[i] {
			if nb.J/3 == i/3 {
				continue // same molecule (incl. self-images) handled above
			}
			r := nb.R
			dV := 0.0
			if s.Types[i] == 0 && s.Types[nb.J] == 0 && r < w.OO.Rc {
				v, dv := w.OO.pairLJ(r)
				e += 0.5 * v
				dV += dv
			}
			if r < w.Rc {
				qq := CoulombK * qi * s.Species[s.Types[nb.J]].Charge
				erfcR := math.Erfc(a * r)
				e += 0.5 * qq * (erfcR/r - eShift + fShift*(r-w.Rc))
				coulF := qq * (erfcR/(r*r) + 2*a/math.Sqrt(math.Pi)*math.Exp(-a*a*r*r)/r - fShift)
				dV -= coulF
			}
			dV *= 0.5
			if dV != 0 {
				fx := -dV * nb.Dx / r
				fy := -dV * nb.Dy / r
				fz := -dV * nb.Dz / r
				f[3*nb.J] += fx
				f[3*nb.J+1] += fy
				f[3*nb.J+2] += fz
				f[3*i] -= fx
				f[3*i+1] -= fy
				f[3*i+2] -= fz
			}
		}
	}
	return e, f
}

// bond adds the harmonic O-H bond energy and forces for atoms (i,j).
func (w Water) bond(s *System, f []float64, i, j int) float64 {
	dx, dy, dz, r := s.Displacement(i, j)
	dr := r - w.RBond
	dV := 2 * w.KBond * dr // dE/dr
	fx := -dV * dx / r
	fy := -dV * dy / r
	fz := -dV * dz / r
	f[3*j] += fx
	f[3*j+1] += fy
	f[3*j+2] += fz
	f[3*i] -= fx
	f[3*i+1] -= fy
	f[3*i+2] -= fz
	return w.KBond * dr * dr
}

// angle adds the harmonic j-centered angle energy and forces for the
// triplet (i,j,k) = (H,O,H).
func (w Water) angle(s *System, f []float64, i, j, k int) float64 {
	// vectors from the apex j
	ax, ay, az, ra := s.Displacement(j, i)
	bx, by, bz, rb := s.Displacement(j, k)
	dot := ax*bx + ay*by + az*bz
	cosT := dot / (ra * rb)
	if cosT > 1 {
		cosT = 1
	} else if cosT < -1 {
		cosT = -1
	}
	theta := math.Acos(cosT)
	dTheta := theta - w.Theta0
	sinT := math.Sin(theta)
	if sinT < 1e-8 {
		sinT = 1e-8
	}
	// dE/dcosθ = 2k·dθ · dθ/dcosθ = -2k·dθ/sinθ
	dEdCos := -2 * w.KAngle * dTheta / sinT
	// ∂cosθ/∂a and ∂cosθ/∂b
	cax := bx/(ra*rb) - cosT*ax/(ra*ra)
	cay := by/(ra*rb) - cosT*ay/(ra*ra)
	caz := bz/(ra*rb) - cosT*az/(ra*ra)
	cbx := ax/(ra*rb) - cosT*bx/(rb*rb)
	cby := ay/(ra*rb) - cosT*by/(rb*rb)
	cbz := az/(ra*rb) - cosT*bz/(rb*rb)
	// a = x_i − x_j, b = x_k − x_j
	f[3*i] -= dEdCos * cax
	f[3*i+1] -= dEdCos * cay
	f[3*i+2] -= dEdCos * caz
	f[3*k] -= dEdCos * cbx
	f[3*k+1] -= dEdCos * cby
	f[3*k+2] -= dEdCos * cbz
	f[3*j] += dEdCos * (cax + cbx)
	f[3*j+1] += dEdCos * (cay + cby)
	f[3*j+2] += dEdCos * (caz + cbz)
	return w.KAngle * dTheta * dTheta
}
