// Package md is the molecular-dynamics substrate of the reproduction.  The
// paper trains DeePMD on *ab initio* (DFT) trajectories of eight bulk
// systems (Table 3); offline and in pure Go we generate the equivalent
// labelled data with classical many-body potentials integrated by Langevin
// dynamics at the paper's temperatures.  What the optimizer study needs
// from the data is (a) energies and forces that are smooth consistent
// functions of the atomic configuration and (b) configurational diversity
// across temperatures — both properties are preserved by this substitution
// (see DESIGN.md).
//
// Units follow the "metal" convention: Å, eV, fs, amu, Kelvin, electron
// charges.
package md

import (
	"fmt"
	"math"
	"math/rand"
)

// Physical constants in metal units.
const (
	// KB is the Boltzmann constant in eV/K.
	KB = 8.617333262e-5
	// ForceToAccel converts eV/Å/amu to Å/fs².
	ForceToAccel = 9.64853329e-3
	// CoulombK is e²/(4πε₀) in eV·Å.
	CoulombK = 14.399645
)

// Species describes one chemical element in a system.
type Species struct {
	Name   string
	Mass   float64 // amu
	Charge float64 // partial charge in e (used by ionic potentials)
}

// System is a periodic orthorhombic simulation cell.
type System struct {
	Box     [3]float64 // box edge lengths, Å
	Pos     []float64  // 3N positions
	Vel     []float64  // 3N velocities, Å/fs
	Types   []int      // species index per atom
	Species []Species
}

// NumAtoms returns the number of atoms in the system.
func (s *System) NumAtoms() int { return len(s.Types) }

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := &System{Box: s.Box}
	c.Pos = append([]float64(nil), s.Pos...)
	c.Vel = append([]float64(nil), s.Vel...)
	c.Types = append([]int(nil), s.Types...)
	c.Species = append([]Species(nil), s.Species...)
	return c
}

// Volume returns the cell volume in Å³.
func (s *System) Volume() float64 { return s.Box[0] * s.Box[1] * s.Box[2] }

// Wrap maps every atom back into the primary cell.
func (s *System) Wrap() {
	for i := 0; i < s.NumAtoms(); i++ {
		for d := 0; d < 3; d++ {
			l := s.Box[d]
			x := math.Mod(s.Pos[3*i+d], l)
			if x < 0 {
				x += l
			}
			s.Pos[3*i+d] = x
		}
	}
}

// Displacement returns the minimum-image vector from atom i to atom j and
// its length.
func (s *System) Displacement(i, j int) (dx, dy, dz, r float64) {
	dx = s.Pos[3*j] - s.Pos[3*i]
	dy = s.Pos[3*j+1] - s.Pos[3*i+1]
	dz = s.Pos[3*j+2] - s.Pos[3*i+2]
	dx = minimumImage(dx, s.Box[0])
	dy = minimumImage(dy, s.Box[1])
	dz = minimumImage(dz, s.Box[2])
	r = math.Sqrt(dx*dx + dy*dy + dz*dz)
	return
}

func minimumImage(d, l float64) float64 {
	if d > 0.5*l {
		d -= l
	} else if d < -0.5*l {
		d += l
	}
	return d
}

// InitVelocities draws Maxwell-Boltzmann velocities for temperature T and
// removes the center-of-mass drift.
func (s *System) InitVelocities(T float64, rng *rand.Rand) {
	if len(s.Vel) != 3*s.NumAtoms() {
		s.Vel = make([]float64, 3*s.NumAtoms())
	}
	var px, py, pz, mTot float64
	for i := 0; i < s.NumAtoms(); i++ {
		m := s.Species[s.Types[i]].Mass
		std := math.Sqrt(KB * T / m * ForceToAccel) // Å/fs
		s.Vel[3*i] = rng.NormFloat64() * std
		s.Vel[3*i+1] = rng.NormFloat64() * std
		s.Vel[3*i+2] = rng.NormFloat64() * std
		px += m * s.Vel[3*i]
		py += m * s.Vel[3*i+1]
		pz += m * s.Vel[3*i+2]
		mTot += m
	}
	for i := 0; i < s.NumAtoms(); i++ {
		s.Vel[3*i] -= px / mTot
		s.Vel[3*i+1] -= py / mTot
		s.Vel[3*i+2] -= pz / mTot
	}
}

// KineticEnergy returns the total kinetic energy in eV.
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for i := 0; i < s.NumAtoms(); i++ {
		m := s.Species[s.Types[i]].Mass
		v2 := s.Vel[3*i]*s.Vel[3*i] + s.Vel[3*i+1]*s.Vel[3*i+1] + s.Vel[3*i+2]*s.Vel[3*i+2]
		ke += 0.5 * m * v2 / ForceToAccel
	}
	return ke
}

// Temperature returns the instantaneous kinetic temperature in K.
func (s *System) Temperature() float64 {
	n := s.NumAtoms()
	if n == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(n) * KB)
}

// Validate checks the internal consistency of the system layout.
func (s *System) Validate() error {
	n := s.NumAtoms()
	if len(s.Pos) != 3*n {
		return fmt.Errorf("md: %d atoms but %d position scalars", n, len(s.Pos))
	}
	if len(s.Vel) != 0 && len(s.Vel) != 3*n {
		return fmt.Errorf("md: %d atoms but %d velocity scalars", n, len(s.Vel))
	}
	for i, t := range s.Types {
		if t < 0 || t >= len(s.Species) {
			return fmt.Errorf("md: atom %d has species index %d of %d", i, t, len(s.Species))
		}
	}
	for d := 0; d < 3; d++ {
		if s.Box[d] <= 0 {
			return fmt.Errorf("md: non-positive box edge %d: %v", d, s.Box[d])
		}
	}
	return nil
}
