package md

import "math"

// buildCrystal tiles a cubic (or tetragonal) unit cell nx×ny×nz times.
// basis holds fractional coordinates and a species index per basis atom.
func buildCrystal(a [3]float64, basis [][4]float64, n [3]int, species []Species) *System {
	s := &System{
		Box:     [3]float64{a[0] * float64(n[0]), a[1] * float64(n[1]), a[2] * float64(n[2])},
		Species: species,
	}
	for ix := 0; ix < n[0]; ix++ {
		for iy := 0; iy < n[1]; iy++ {
			for iz := 0; iz < n[2]; iz++ {
				for _, b := range basis {
					s.Pos = append(s.Pos,
						(float64(ix)+b[0])*a[0],
						(float64(iy)+b[1])*a[1],
						(float64(iz)+b[2])*a[2])
					s.Types = append(s.Types, int(b[3]))
				}
			}
		}
	}
	s.Vel = make([]float64, 3*s.NumAtoms())
	return s
}

// FCC builds an n³ face-centered-cubic supercell with lattice constant a
// (4 atoms per cell): the Cu and Al structures.
func FCC(a float64, n int, sp Species) *System {
	basis := [][4]float64{{0, 0, 0, 0}, {0.5, 0.5, 0, 0}, {0.5, 0, 0.5, 0}, {0, 0.5, 0.5, 0}}
	return buildCrystal([3]float64{a, a, a}, basis, [3]int{n, n, n}, []Species{sp})
}

// HCP builds a hexagonal-close-packed supercell approximated on an
// orthorhombic cell (4 atoms per cell, a×a√3×c): the Mg structure.
func HCP(a, c float64, n [3]int, sp Species) *System {
	b := a * math.Sqrt(3)
	basis := [][4]float64{
		{0, 0, 0, 0}, {0.5, 0.5, 0, 0},
		{0.5, 1.0 / 6, 0.5, 0}, {0, 2.0 / 3, 0.5, 0},
	}
	return buildCrystal([3]float64{a, b, c}, basis, n, []Species{sp})
}

// Diamond builds an n³ diamond-cubic supercell (8 atoms per cell): the Si
// structure.
func Diamond(a float64, n int, sp Species) *System {
	basis := [][4]float64{
		{0, 0, 0, 0}, {0.5, 0.5, 0, 0}, {0.5, 0, 0.5, 0}, {0, 0.5, 0.5, 0},
		{0.25, 0.25, 0.25, 0}, {0.75, 0.75, 0.25, 0}, {0.75, 0.25, 0.75, 0}, {0.25, 0.75, 0.75, 0},
	}
	return buildCrystal([3]float64{a, a, a}, basis, [3]int{n, n, n}, []Species{sp})
}

// RockSalt builds an n³ rock-salt supercell (4 formula units per cell):
// the NaCl and (approximate) CuO structures.  Species 0 is the cation,
// species 1 the anion.
func RockSalt(a float64, n int, cation, anion Species) *System {
	basis := [][4]float64{
		{0, 0, 0, 0}, {0.5, 0.5, 0, 0}, {0.5, 0, 0.5, 0}, {0, 0.5, 0.5, 0},
		{0.5, 0, 0, 1}, {0, 0.5, 0, 1}, {0, 0, 0.5, 1}, {0.5, 0.5, 0.5, 1},
	}
	return buildCrystal([3]float64{a, a, a}, basis, [3]int{n, n, n}, []Species{cation, anion})
}

// Fluorite builds an n³ fluorite (CaF₂-type) supercell, the cubic HfO₂
// structure: 4 cations + 8 anions per cell.  Species 0 is the cation,
// species 1 the anion.
func Fluorite(a float64, n int, cation, anion Species) *System {
	basis := [][4]float64{
		{0, 0, 0, 0}, {0.5, 0.5, 0, 0}, {0.5, 0, 0.5, 0}, {0, 0.5, 0.5, 0},
		{0.25, 0.25, 0.25, 1}, {0.75, 0.25, 0.25, 1}, {0.25, 0.75, 0.25, 1}, {0.25, 0.25, 0.75, 1},
		{0.75, 0.75, 0.25, 1}, {0.75, 0.25, 0.75, 1}, {0.25, 0.75, 0.75, 1}, {0.75, 0.75, 0.75, 1},
	}
	return buildCrystal([3]float64{a, a, a}, basis, [3]int{n, n, n}, []Species{cation, anion})
}

// WaterBox places nMol water molecules on a cubic grid inside a box of
// edge l, oriented along alternating axes.  Species 0 is O, species 1 is H.
// Molecules are listed O,H,H consecutively, the layout the water potential
// expects.
func WaterBox(l float64, nMol int, oxy, hyd Species) *System {
	s := &System{Box: [3]float64{l, l, l}, Species: []Species{oxy, hyd}}
	grid := int(math.Ceil(math.Cbrt(float64(nMol))))
	spacing := l / float64(grid)
	const rOH = 0.9572
	const halfAngle = 104.52 / 2 * math.Pi / 180
	placed := 0
	for ix := 0; ix < grid && placed < nMol; ix++ {
		for iy := 0; iy < grid && placed < nMol; iy++ {
			for iz := 0; iz < grid && placed < nMol; iz++ {
				ox := (float64(ix) + 0.5) * spacing
				oy := (float64(iy) + 0.5) * spacing
				oz := (float64(iz) + 0.5) * spacing
				// alternate the molecular plane among xy/yz/zx to avoid a
				// perfectly aligned (and thus atypical) starting lattice
				ax := placed % 3
				hx := rOH * math.Sin(halfAngle)
				hz := rOH * math.Cos(halfAngle)
				var h1, h2 [3]float64
				switch ax {
				case 0:
					h1 = [3]float64{ox + hx, oy, oz + hz}
					h2 = [3]float64{ox - hx, oy, oz + hz}
				case 1:
					h1 = [3]float64{ox, oy + hx, oz + hz}
					h2 = [3]float64{ox, oy - hx, oz + hz}
				default:
					h1 = [3]float64{ox + hz, oy + hx, oz}
					h2 = [3]float64{ox + hz, oy - hx, oz}
				}
				s.Pos = append(s.Pos, ox, oy, oz, h1[0], h1[1], h1[2], h2[0], h2[1], h2[2])
				s.Types = append(s.Types, 0, 1, 1)
				placed++
			}
		}
	}
	s.Vel = make([]float64, 3*s.NumAtoms())
	s.Wrap()
	return s
}
