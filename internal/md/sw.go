package md

import "math"

// StillingerWeber is the classic Si potential: a pairwise term plus a
// three-body angular term that stabilizes the tetrahedral network.  It is
// the label generator for the Si dataset.
type StillingerWeber struct {
	Eps    float64 // energy scale, eV
	Sigma  float64 // length scale, Å
	ACut   float64 // dimensionless cutoff (r_c = ACut·Sigma)
	BigA   float64
	BigB   float64
	P, Q   float64
	Lambda float64
	Gamma  float64
	CosT0  float64 // cos of the ideal angle, -1/3 for tetrahedral
}

// SWSilicon returns the original Stillinger-Weber parameterization of Si.
func SWSilicon() StillingerWeber {
	return StillingerWeber{
		Eps:    2.1683,
		Sigma:  2.0951,
		ACut:   1.80,
		BigA:   7.049556277,
		BigB:   0.6022245584,
		P:      4,
		Q:      0,
		Lambda: 21.0,
		Gamma:  1.20,
		CosT0:  -1.0 / 3.0,
	}
}

// Cutoff returns the interaction range r_c = ACut·Sigma.
func (sw StillingerWeber) Cutoff() float64 { return sw.ACut * sw.Sigma }

// twoBody returns v2(r) and dv2/dr for r < cutoff.
func (sw StillingerWeber) twoBody(r float64) (v, dv float64) {
	rc := sw.Cutoff()
	if r >= rc {
		return 0, 0
	}
	sr := sw.Sigma / r
	srp := math.Pow(sr, sw.P)
	srq := 1.0
	if sw.Q != 0 {
		srq = math.Pow(sr, sw.Q)
	}
	ex := math.Exp(sw.Sigma / (r - rc))
	poly := sw.BigB*srp - srq
	v = sw.BigA * sw.Eps * poly * ex
	dpoly := (-sw.P*sw.BigB*srp + sw.Q*srq) / r
	dex := -sw.Sigma / ((r - rc) * (r - rc)) * ex
	dv = sw.BigA * sw.Eps * (dpoly*ex + poly*dex)
	return v, dv
}

// hRadial returns g(r)=exp(γσ/(r−rc)) and its derivative for the
// three-body term.
func (sw StillingerWeber) hRadial(r float64) (g, dg float64) {
	rc := sw.Cutoff()
	if r >= rc {
		return 0, 0
	}
	g = math.Exp(sw.Gamma * sw.Sigma / (r - rc))
	dg = -sw.Gamma * sw.Sigma / ((r - rc) * (r - rc)) * g
	return g, dg
}

// Compute evaluates the SW energy and forces.
func (sw StillingerWeber) Compute(s *System, nl *NeighborList) (float64, []float64) {
	n := s.NumAtoms()
	f := make([]float64, 3*n)
	e := 0.0
	rc := sw.Cutoff()

	// two-body, full-list half-weight (see potential.go)
	for i := 0; i < n; i++ {
		for _, nb := range nl.Lists[i] {
			if nb.R >= rc {
				continue
			}
			v, dv := sw.twoBody(nb.R)
			e += 0.5 * v
			dv *= 0.5
			fx := -dv * nb.Dx / nb.R
			fy := -dv * nb.Dy / nb.R
			fz := -dv * nb.Dz / nb.R
			f[3*nb.J] += fx
			f[3*nb.J+1] += fy
			f[3*nb.J+2] += fz
			f[3*i] -= fx
			f[3*i+1] -= fy
			f[3*i+2] -= fz
		}
	}

	// three-body: for every central atom i and unordered neighbor pair (j,k)
	lam := sw.Lambda * sw.Eps
	for i := 0; i < n; i++ {
		lst := nl.Lists[i]
		for a := 0; a < len(lst); a++ {
			nj := lst[a]
			if nj.R >= rc {
				continue
			}
			gj, dgj := sw.hRadial(nj.R)
			for b := a + 1; b < len(lst); b++ {
				nk := lst[b]
				if nk.R >= rc {
					continue
				}
				gk, dgk := sw.hRadial(nk.R)
				dot := nj.Dx*nk.Dx + nj.Dy*nk.Dy + nj.Dz*nk.Dz
				cosT := dot / (nj.R * nk.R)
				dc := cosT - sw.CosT0
				e += lam * dc * dc * gj * gk

				// ∂cosθ/∂d_ij and ∂cosθ/∂d_ik
				pref := lam * 2 * dc * gj * gk
				cjx := nk.Dx/(nj.R*nk.R) - cosT*nj.Dx/(nj.R*nj.R)
				cjy := nk.Dy/(nj.R*nk.R) - cosT*nj.Dy/(nj.R*nj.R)
				cjz := nk.Dz/(nj.R*nk.R) - cosT*nj.Dz/(nj.R*nj.R)
				ckx := nj.Dx/(nj.R*nk.R) - cosT*nk.Dx/(nk.R*nk.R)
				cky := nj.Dy/(nj.R*nk.R) - cosT*nk.Dy/(nk.R*nk.R)
				ckz := nj.Dz/(nj.R*nk.R) - cosT*nk.Dz/(nk.R*nk.R)
				// radial parts
				rj := lam * dc * dc * dgj * gk / nj.R
				rk := lam * dc * dc * gj * dgk / nk.R

				djx := pref*cjx + rj*nj.Dx
				djy := pref*cjy + rj*nj.Dy
				djz := pref*cjz + rj*nj.Dz
				dkx := pref*ckx + rk*nk.Dx
				dky := pref*cky + rk*nk.Dy
				dkz := pref*ckz + rk*nk.Dz

				// d_ij = x_j − x_i so F_j −= dE/dd_ij, F_i += both
				f[3*nj.J] -= djx
				f[3*nj.J+1] -= djy
				f[3*nj.J+2] -= djz
				f[3*nk.J] -= dkx
				f[3*nk.J+1] -= dky
				f[3*nk.J+2] -= dkz
				f[3*i] += djx + dkx
				f[3*i+1] += djy + dky
				f[3*i+2] += djz + dkz
			}
		}
	}
	return e, f
}
