package md

import "math"

// Potential is a classical interatomic potential: given a system and a
// neighbor list built with at least the potential's cutoff, Compute returns
// the total potential energy and the per-atom forces (3N, eV/Å).
//
// These potentials stand in for the paper's ab initio (DFT) calculators:
// they define the ground-truth potential-energy surface that the DeePMD
// network is trained to reproduce.
type Potential interface {
	Compute(s *System, nl *NeighborList) (energy float64, forces []float64)
	Cutoff() float64
}

// ComputeAll builds the neighbor list and evaluates p on s.
func ComputeAll(p Potential, s *System) (float64, []float64) {
	return p.Compute(s, BuildNeighbors(s, p.Cutoff()))
}

// switchFn is a C² taper that is 1 below ron, 0 above rc, used to truncate
// pair potentials smoothly.  Returns the weight and its derivative.
func switchFn(r, ron, rc float64) (w, dw float64) {
	switch {
	case r <= ron:
		return 1, 0
	case r >= rc:
		return 0, 0
	default:
		u := (r - ron) / (rc - ron)
		w = u*u*u*(-6*u*u+15*u-10) + 1
		dw = (u * u * (-30*u*u + 60*u - 30)) / (rc - ron)
		return w, dw
	}
}

// Morse is a pairwise Morse potential with a smooth taper, used for the
// metallic systems (Cu, Al, Mg).  V(r) = D[(1-e^{-a(r-r0)})² - 1]·w(r).
type Morse struct {
	D, A, R0 float64 // well depth (eV), stiffness (1/Å), equilibrium (Å)
	Ron, Rc  float64 // taper window (Å)
}

// Cutoff returns the interaction range.
func (m Morse) Cutoff() float64 { return m.Rc }

// Compute evaluates the Morse energy and forces.
func (m Morse) Compute(s *System, nl *NeighborList) (float64, []float64) {
	n := s.NumAtoms()
	f := make([]float64, 3*n)
	e := 0.0
	// Full-list half-weight sum: every directed (i→j, image) entry carries
	// half the pair energy/force; the mirrored entry supplies the rest.
	for i := 0; i < n; i++ {
		for _, nb := range nl.Lists[i] {
			if nb.R >= m.Rc {
				continue
			}
			ex := math.Exp(-m.A * (nb.R - m.R0))
			phi := m.D * ((1-ex)*(1-ex) - 1)
			dphi := 2 * m.D * m.A * ex * (1 - ex)
			w, dw := switchFn(nb.R, m.Ron, m.Rc)
			e += 0.5 * phi * w
			// dV/dr, then project on the unit vector; force on j is -dV/dr·r̂
			dV := 0.5 * (dphi*w + phi*dw)
			fx := -dV * nb.Dx / nb.R
			fy := -dV * nb.Dy / nb.R
			fz := -dV * nb.Dz / nb.R
			f[3*nb.J] += fx
			f[3*nb.J+1] += fy
			f[3*nb.J+2] += fz
			f[3*i] -= fx
			f[3*i+1] -= fy
			f[3*i+2] -= fz
		}
	}
	return e, f
}

// LennardJones is a 12-6 pair potential with a smooth taper; it is used as
// a simple test potential and for the O-O dispersion term of water.
type LennardJones struct {
	Eps, Sigma float64
	Ron, Rc    float64
}

// Cutoff returns the interaction range.
func (lj LennardJones) Cutoff() float64 { return lj.Rc }

// pairLJ returns V(r) and dV/dr of the tapered LJ interaction.
func (lj LennardJones) pairLJ(r float64) (v, dv float64) {
	sr := lj.Sigma / r
	sr6 := sr * sr * sr * sr * sr * sr
	sr12 := sr6 * sr6
	phi := 4 * lj.Eps * (sr12 - sr6)
	dphi := 4 * lj.Eps * (-12*sr12 + 6*sr6) / r
	w, dw := switchFn(r, lj.Ron, lj.Rc)
	return phi * w, dphi*w + phi*dw
}

// Compute evaluates the LJ energy and forces.
func (lj LennardJones) Compute(s *System, nl *NeighborList) (float64, []float64) {
	n := s.NumAtoms()
	f := make([]float64, 3*n)
	e := 0.0
	for i := 0; i < n; i++ {
		for _, nb := range nl.Lists[i] {
			if nb.R >= lj.Rc {
				continue
			}
			v, dv := lj.pairLJ(nb.R)
			e += 0.5 * v
			dv *= 0.5
			fx := -dv * nb.Dx / nb.R
			fy := -dv * nb.Dy / nb.R
			fz := -dv * nb.Dz / nb.R
			f[3*nb.J] += fx
			f[3*nb.J+1] += fy
			f[3*nb.J+2] += fz
			f[3*i] -= fx
			f[3*i+1] -= fy
			f[3*i+2] -= fz
		}
	}
	return e, f
}
