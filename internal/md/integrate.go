package md

import (
	"math"
	"math/rand"
)

// Langevin integrates the system with velocity Verlet plus a Langevin
// thermostat, the sampler used to generate the labelled trajectories.
type Langevin struct {
	Pot      Potential
	Dt       float64 // timestep, fs
	Friction float64 // 1/fs (γ); 0.01-0.1 gives gentle coupling
	T        float64 // target temperature, K
	Rng      *rand.Rand

	// RebuildEvery controls how many steps a neighbor list is reused; the
	// list is built with a skin margin so this is safe for small values.
	RebuildEvery int
	Skin         float64

	forces []float64
	nl     *NeighborList
	step   int
	energy float64
}

// NewLangevin returns an integrator with sensible defaults.
func NewLangevin(pot Potential, dt, temperature float64, rng *rand.Rand) *Langevin {
	return &Langevin{
		Pot:          pot,
		Dt:           dt,
		Friction:     0.05,
		T:            temperature,
		Rng:          rng,
		RebuildEvery: 10,
		Skin:         1.0,
	}
}

// Energy returns the potential energy at the most recent step.
func (lg *Langevin) Energy() float64 { return lg.energy }

// Forces returns the forces at the most recent step (aliased, do not modify).
func (lg *Langevin) Forces() []float64 { return lg.forces }

func (lg *Langevin) refresh(s *System) {
	if lg.nl == nil || lg.step%lg.RebuildEvery == 0 {
		// Wrapping is only safe at rebuild time: stored image shifts are
		// relative to the positions the list was built from.
		s.Wrap()
		lg.nl = BuildNeighbors(s, lg.Pot.Cutoff()+lg.Skin)
	} else {
		lg.nl.Refresh(s)
	}
	lg.energy, lg.forces = lg.Pot.Compute(s, lg.nl)
}

// Step advances the system by one timestep.
func (lg *Langevin) Step(s *System) {
	if lg.forces == nil {
		lg.refresh(s)
	}
	dt := lg.Dt
	n := s.NumAtoms()

	// half kick + drift
	for i := 0; i < n; i++ {
		m := s.Species[s.Types[i]].Mass
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] += 0.5 * dt * lg.forces[3*i+d] / m * ForceToAccel
			s.Pos[3*i+d] += dt * s.Vel[3*i+d]
		}
	}

	lg.step++
	lg.refresh(s)

	// second half kick
	for i := 0; i < n; i++ {
		m := s.Species[s.Types[i]].Mass
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] += 0.5 * dt * lg.forces[3*i+d] / m * ForceToAccel
		}
	}

	// Ornstein-Uhlenbeck thermostat kick
	if lg.Friction > 0 {
		c1 := math.Exp(-lg.Friction * dt)
		for i := 0; i < n; i++ {
			m := s.Species[s.Types[i]].Mass
			c2 := math.Sqrt((1 - c1*c1) * KB * lg.T / m * ForceToAccel)
			for d := 0; d < 3; d++ {
				s.Vel[3*i+d] = c1*s.Vel[3*i+d] + c2*lg.Rng.NormFloat64()
			}
		}
	}
}

// Run advances nSteps steps and invokes sample (if non-nil) every
// sampleEvery steps with the step index.
func (lg *Langevin) Run(s *System, nSteps, sampleEvery int, sample func(step int)) {
	lg.refresh(s)
	for i := 1; i <= nSteps; i++ {
		lg.Step(s)
		if sample != nil && sampleEvery > 0 && i%sampleEvery == 0 {
			sample(i)
		}
	}
}
