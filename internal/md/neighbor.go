package md

import "math"

// Neighbor is one entry of an atom's neighbor list: the neighbor's index,
// the displacement vector from the central atom to it (including the
// periodic image shift), and the distance.  Sx,Sy,Sz record the constant
// image shift so the displacement can be refreshed cheaply as atoms move
// between full rebuilds.
type Neighbor struct {
	J          int
	Dx, Dy, Dz float64
	R          float64
	Sx, Sy, Sz float64
}

// NeighborList holds, for every atom, all atoms within the cutoff.
type NeighborList struct {
	Cutoff float64
	Lists  [][]Neighbor
}

// Refresh recomputes every entry's displacement and distance from current
// positions, keeping the stored image shifts.  It must be called after
// atoms move (every MD step); a full rebuild is only needed once an atom
// may have crossed the list's skin margin.
func (nl *NeighborList) Refresh(s *System) {
	for i := range nl.Lists {
		lst := nl.Lists[i]
		for k := range lst {
			nb := &lst[k]
			nb.Dx = s.Pos[3*nb.J] - s.Pos[3*i] + nb.Sx
			nb.Dy = s.Pos[3*nb.J+1] - s.Pos[3*i+1] + nb.Sy
			nb.Dz = s.Pos[3*nb.J+2] - s.Pos[3*i+2] + nb.Sz
			nb.R = math.Sqrt(nb.Dx*nb.Dx + nb.Dy*nb.Dy + nb.Dz*nb.Dz)
		}
	}
}

// MaxLen returns the longest per-atom neighbor count (the paper's N_m).
func (nl *NeighborList) MaxLen() int {
	m := 0
	for _, l := range nl.Lists {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// BuildNeighborsBrute builds the neighbor list with the O(N²) all-pairs
// scan.  It is the correctness reference for the cell-list version and is
// fine for the small cells used in tests.
func BuildNeighborsBrute(s *System, cutoff float64) *NeighborList {
	n := s.NumAtoms()
	nl := &NeighborList{Cutoff: cutoff, Lists: make([][]Neighbor, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx, dy, dz, r := s.Displacement(i, j)
			if r < cutoff {
				nl.Lists[i] = append(nl.Lists[i], Neighbor{
					J: j, Dx: dx, Dy: dy, Dz: dz, R: r,
					Sx: dx - (s.Pos[3*j] - s.Pos[3*i]),
					Sy: dy - (s.Pos[3*j+1] - s.Pos[3*i+1]),
					Sz: dz - (s.Pos[3*j+2] - s.Pos[3*i+2]),
				})
			}
		}
	}
	return nl
}

// BuildNeighborsImages builds the neighbor list scanning explicit periodic
// images, which is required when the cutoff exceeds half the box edge (the
// common case for the paper's 32-108 atom bulk cells).  Each directed pair
// (i→j, image) is a separate entry; an atom also sees its own periodic
// images.  Pair potentials therefore use the full-list half-weight
// formulation.
func BuildNeighborsImages(s *System, cutoff float64) *NeighborList {
	n := s.NumAtoms()
	nl := &NeighborList{Cutoff: cutoff, Lists: make([][]Neighbor, n)}
	var reps [3]int
	for d := 0; d < 3; d++ {
		reps[d] = int(math.Ceil(cutoff / s.Box[d]))
	}
	cut2 := cutoff * cutoff
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bx := s.Pos[3*j] - s.Pos[3*i]
			by := s.Pos[3*j+1] - s.Pos[3*i+1]
			bz := s.Pos[3*j+2] - s.Pos[3*i+2]
			for nx := -reps[0]; nx <= reps[0]; nx++ {
				for ny := -reps[1]; ny <= reps[1]; ny++ {
					for nz := -reps[2]; nz <= reps[2]; nz++ {
						if i == j && nx == 0 && ny == 0 && nz == 0 {
							continue
						}
						sx := float64(nx) * s.Box[0]
						sy := float64(ny) * s.Box[1]
						sz := float64(nz) * s.Box[2]
						dx := bx + sx
						dy := by + sy
						dz := bz + sz
						r2 := dx*dx + dy*dy + dz*dz
						if r2 < cut2 {
							nl.Lists[i] = append(nl.Lists[i], Neighbor{
								J: j, Dx: dx, Dy: dy, Dz: dz, R: math.Sqrt(r2),
								Sx: sx, Sy: sy, Sz: sz,
							})
						}
					}
				}
			}
		}
	}
	return nl
}

// BuildNeighbors builds the neighbor list with a linked-cell decomposition,
// O(N) for homogeneous density.  When the box is too small for the cell
// method (fewer than 3 cells per dimension, or cutoff beyond half the
// shortest edge) it falls back to the explicit-image scan, which is exact
// for any box size.
func BuildNeighbors(s *System, cutoff float64) *NeighborList {
	var nc [3]int
	for d := 0; d < 3; d++ {
		if cutoff >= 0.5*s.Box[d] {
			return BuildNeighborsImages(s, cutoff)
		}
		nc[d] = int(s.Box[d] / cutoff)
		if nc[d] < 3 {
			return BuildNeighborsImages(s, cutoff)
		}
	}
	n := s.NumAtoms()
	ncells := nc[0] * nc[1] * nc[2]
	heads := make([]int, ncells)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int, n)
	cellOf := func(i int) int {
		var c [3]int
		for d := 0; d < 3; d++ {
			x := math.Mod(s.Pos[3*i+d], s.Box[d])
			if x < 0 {
				x += s.Box[d]
			}
			c[d] = int(x / s.Box[d] * float64(nc[d]))
			if c[d] >= nc[d] {
				c[d] = nc[d] - 1
			}
		}
		return (c[0]*nc[1]+c[1])*nc[2] + c[2]
	}
	cells := make([]int, n)
	for i := 0; i < n; i++ {
		c := cellOf(i)
		cells[i] = c
		next[i] = heads[c]
		heads[c] = i
	}

	nl := &NeighborList{Cutoff: cutoff, Lists: make([][]Neighbor, n)}
	cut2 := cutoff * cutoff
	for i := 0; i < n; i++ {
		ci := cells[i]
		cx := ci / (nc[1] * nc[2])
		cy := (ci / nc[2]) % nc[1]
		cz := ci % nc[2]
		for ox := -1; ox <= 1; ox++ {
			for oy := -1; oy <= 1; oy++ {
				for oz := -1; oz <= 1; oz++ {
					jx := (cx + ox + nc[0]) % nc[0]
					jy := (cy + oy + nc[1]) % nc[1]
					jz := (cz + oz + nc[2]) % nc[2]
					for j := heads[(jx*nc[1]+jy)*nc[2]+jz]; j != -1; j = next[j] {
						if j == i {
							continue
						}
						dx, dy, dz, r := s.Displacement(i, j)
						if dx*dx+dy*dy+dz*dz < cut2 {
							nl.Lists[i] = append(nl.Lists[i], Neighbor{
								J: j, Dx: dx, Dy: dy, Dz: dz, R: r,
								Sx: dx - (s.Pos[3*j] - s.Pos[3*i]),
								Sy: dy - (s.Pos[3*j+1] - s.Pos[3*i+1]),
								Sz: dz - (s.Pos[3*j+2] - s.Pos[3*i+2]),
							})
						}
					}
				}
			}
		}
	}
	return nl
}

// SmoothCutoff implements the DeePMD switching function s(r): 1/r for
// r < rcs, a smooth interpolation to 0 on [rcs, rc], and 0 beyond.  It is
// shared by the descriptor (the s(|r_ij|) factor of the environment matrix)
// and by the classical potentials that need a differentiable truncation.
type SmoothCutoff struct {
	Rcs, Rc float64
}

// Eval returns s(r) and its derivative ds/dr.
func (c SmoothCutoff) Eval(r float64) (s, ds float64) {
	switch {
	case r <= 0:
		return 0, 0
	case r < c.Rcs:
		return 1 / r, -1 / (r * r)
	case r < c.Rc:
		// u goes 0→1 on [rcs, rc]; weight w(u) = u³(-6u²+15u-10)+1 is the
		// DeePMD-kit quintic switch: w(0)=1, w(1)=0, w'=w''=0 at both ends.
		u := (r - c.Rcs) / (c.Rc - c.Rcs)
		w := u*u*u*(-6*u*u+15*u-10) + 1
		dw := (u * u * (-30*u*u + 60*u - 30)) / (c.Rc - c.Rcs)
		return w / r, dw/r - w/(r*r)
	default:
		return 0, 0
	}
}
