package md

import "math"

// RDF accumulates a radial distribution function g(r) over trajectory
// frames — the standard structural observable for validating that a
// fitted NNMD potential reproduces the reference liquid/solid structure.
type RDF struct {
	RMax float64
	Bins int

	typeA, typeB int
	hist         []float64
	frames       int
	// per-frame normalization accumulator: nA·nB/V
	density float64
}

// NewRDF prepares a g(r) accumulator between species typeA and typeB
// (pass the same index twice for a like-pair RDF).
func NewRDF(typeA, typeB int, rMax float64, bins int) *RDF {
	if bins < 1 || rMax <= 0 {
		panic("md: RDF needs positive bins and rMax")
	}
	return &RDF{RMax: rMax, Bins: bins, typeA: typeA, typeB: typeB, hist: make([]float64, bins)}
}

// Accumulate adds one frame's pair distances.
func (r *RDF) Accumulate(s *System) {
	nl := BuildNeighbors(s, r.RMax)
	var nA, nB int
	for _, t := range s.Types {
		if t == r.typeA {
			nA++
		}
		if t == r.typeB {
			nB++
		}
	}
	if nA == 0 || nB == 0 {
		return
	}
	dr := r.RMax / float64(r.Bins)
	for i := 0; i < s.NumAtoms(); i++ {
		if s.Types[i] != r.typeA {
			continue
		}
		for _, nb := range nl.Lists[i] {
			if s.Types[nb.J] != r.typeB || nb.R >= r.RMax {
				continue
			}
			bin := int(nb.R / dr)
			if bin >= 0 && bin < r.Bins {
				r.hist[bin]++
			}
		}
	}
	r.frames++
	r.density += float64(nA) * float64(nB) / s.Volume()
}

// Curve returns the bin centers and the normalized g(r).  Normalization
// uses the ideal-gas pair count nA·nB/V·4πr²dr per frame, so a structure-
// less fluid gives g(r) → 1 at large r.
func (r *RDF) Curve() (rs, g []float64) {
	rs = make([]float64, r.Bins)
	g = make([]float64, r.Bins)
	if r.frames == 0 {
		return rs, g
	}
	dr := r.RMax / float64(r.Bins)
	meanDensity := r.density / float64(r.frames)
	for b := 0; b < r.Bins; b++ {
		rs[b] = (float64(b) + 0.5) * dr
		shell := 4 * math.Pi * rs[b] * rs[b] * dr
		ideal := meanDensity * shell * float64(r.frames)
		if ideal > 0 {
			g[b] = r.hist[b] / ideal
		}
	}
	return rs, g
}

// FirstPeak returns the position and height of the maximum of g(r) — the
// nearest-neighbor distance, the quantity typically compared between the
// reference and NNMD trajectories.
func (r *RDF) FirstPeak() (pos, height float64) {
	rs, g := r.Curve()
	for i, v := range g {
		if v > height {
			height = v
			pos = rs[i]
		}
	}
	return pos, height
}

// MSD accumulates the mean squared displacement of a trajectory, the
// observable behind diffusion studies (one of the paper's motivating
// DeePMD applications).  Positions must be *unwrapped*: feed it the raw
// integrator coordinates before any Wrap call, or sample with a rebuild
// interval long enough that no wrap occurs between samples.
type MSD struct {
	ref     []float64
	origins int
	samples []float64
}

// NewMSD captures the reference (t=0) positions.
func NewMSD(s *System) *MSD {
	return &MSD{ref: append([]float64(nil), s.Pos...), origins: s.NumAtoms()}
}

// Accumulate records the MSD of the current frame relative to t=0.
func (m *MSD) Accumulate(s *System) {
	if len(s.Pos) != len(m.ref) {
		panic("md: MSD atom count changed")
	}
	sum := 0.0
	for i := range s.Pos {
		d := s.Pos[i] - m.ref[i]
		sum += d * d
	}
	m.samples = append(m.samples, sum/float64(m.origins))
}

// Series returns the recorded MSD values (Å² per atom) in sample order.
func (m *MSD) Series() []float64 { return m.samples }

// DiffusionCoefficient estimates D from the slope of the last half of the
// MSD series via the Einstein relation MSD = 6·D·t, where dtPerSample is
// the time between samples in fs; returned in Å²/fs.
func (m *MSD) DiffusionCoefficient(dtPerSample float64) float64 {
	n := len(m.samples)
	if n < 4 || dtPerSample <= 0 {
		return 0
	}
	lo := n / 2
	// least-squares slope through the tail
	var st, ss, stt, sst float64
	cnt := 0.0
	for i := lo; i < n; i++ {
		t := float64(i+1) * dtPerSample
		st += t
		ss += m.samples[i]
		stt += t * t
		sst += t * m.samples[i]
		cnt++
	}
	denom := cnt*stt - st*st
	if denom == 0 {
		return 0
	}
	slope := (cnt*sst - st*ss) / denom
	return slope / 6
}
