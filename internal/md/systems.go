package md

import (
	"fmt"
	"math"
	"sort"
)

// SystemSpec describes one of the paper's Table 3 datasets: the physical
// system, the sampling temperatures, and the MD timestep used to generate
// snapshots.
type SystemSpec struct {
	Name         string
	Temperatures []float64 // K, mixed in the dataset as in Table 3
	TimeStep     float64   // fs
	// Build returns a fresh starting configuration and its label potential.
	// scale enlarges the supercell (1 = the paper-like small bulk cell).
	Build func(scale int) (*System, Potential)
	// TinyBuild returns a reduced cell (8-32 atoms) with the same species
	// and potential, used by the single-core convergence experiments;
	// periodic-image neighbor lists keep the physics well-defined.
	TinyBuild func() (*System, Potential)
	// PaperSnapshots is the snapshot count reported in Table 3 (for the
	// table-3 reproduction printout; generated datasets are smaller).
	PaperSnapshots int
	// PaperAtoms is the atoms-per-snapshot count reported in Table 3.
	PaperAtoms int
}

// element masses (amu) used by the builders.
const (
	massCu = 63.546
	massAl = 26.9815
	massSi = 28.0855
	massNa = 22.9898
	massCl = 35.453
	massMg = 24.305
	massO  = 15.999
	massH  = 1.008
	massHf = 178.49
)

// Systems returns the eight benchmark systems of Table 3, keyed by name.
// The atom counts match the paper's as closely as the ideal lattices allow
// (Si 64 vs 72, HfO₂ 96 vs 98; both within one unit cell).
func Systems() map[string]SystemSpec {
	return map[string]SystemSpec{
		"Cu": {
			Name: "Cu", Temperatures: []float64{400, 600, 800}, TimeStep: 2,
			PaperSnapshots: 72102, PaperAtoms: 108,
			Build: func(scale int) (*System, Potential) {
				s := FCC(3.615, 3*scale, Species{Name: "Cu", Mass: massCu})
				return s, Morse{D: 0.3429, A: 1.3588, R0: 2.866, Ron: 4.2, Rc: 5.2}
			},
			TinyBuild: func() (*System, Potential) {
				s := FCC(3.615, 2, Species{Name: "Cu", Mass: massCu})
				return s, Morse{D: 0.3429, A: 1.3588, R0: 2.866, Ron: 4.2, Rc: 5.2}
			},
		},
		"Al": {
			Name: "Al", Temperatures: []float64{300, 500, 800, 1000}, TimeStep: 2,
			PaperSnapshots: 24457, PaperAtoms: 32,
			Build: func(scale int) (*System, Potential) {
				s := FCC(4.05, 2*scale, Species{Name: "Al", Mass: massAl})
				return s, Morse{D: 0.2703, A: 1.1646, R0: 3.253, Ron: 4.6, Rc: 5.6}
			},
			TinyBuild: func() (*System, Potential) {
				s := FCC(4.05, 2, Species{Name: "Al", Mass: massAl})
				return s, Morse{D: 0.2703, A: 1.1646, R0: 3.253, Ron: 4.6, Rc: 5.6}
			},
		},
		"Si": {
			Name: "Si", Temperatures: []float64{300, 500, 800}, TimeStep: 3,
			PaperSnapshots: 40000, PaperAtoms: 64,
			Build: func(scale int) (*System, Potential) {
				s := Diamond(5.431, 2*scale, Species{Name: "Si", Mass: massSi})
				return s, SWSilicon()
			},
			TinyBuild: func() (*System, Potential) {
				s := Diamond(5.431, 1, Species{Name: "Si", Mass: massSi})
				return s, SWSilicon()
			},
		},
		"NaCl": {
			Name: "NaCl", Temperatures: []float64{300, 500, 800}, TimeStep: 2,
			PaperSnapshots: 40000, PaperAtoms: 64,
			Build: func(scale int) (*System, Potential) {
				s := RockSalt(5.6402, 2*scale,
					Species{Name: "Na", Mass: massNa, Charge: 1},
					Species{Name: "Cl", Mass: massCl, Charge: -1})
				return s, NaClPotential()
			},
			TinyBuild: func() (*System, Potential) {
				s := RockSalt(5.6402, 1,
					Species{Name: "Na", Mass: massNa, Charge: 1},
					Species{Name: "Cl", Mass: massCl, Charge: -1})
				return s, NaClPotential()
			},
		},
		"Mg": {
			Name: "Mg", Temperatures: []float64{300, 500, 800}, TimeStep: 3,
			PaperSnapshots: 12800, PaperAtoms: 36,
			Build: func(scale int) (*System, Potential) {
				s := HCP(3.209, 5.211, [3]int{3 * scale, 1 * scale, 3 * scale},
					Species{Name: "Mg", Mass: massMg})
				return s, Morse{D: 0.2175, A: 1.1267, R0: 3.282, Ron: 4.6, Rc: 5.6}
			},
			TinyBuild: func() (*System, Potential) {
				s := HCP(3.209, 5.211, [3]int{2, 1, 2},
					Species{Name: "Mg", Mass: massMg})
				return s, Morse{D: 0.2175, A: 1.1267, R0: 3.282, Ron: 4.6, Rc: 5.6}
			},
		},
		"H2O": {
			Name: "H2O", Temperatures: []float64{300, 500, 800, 1000}, TimeStep: 1,
			PaperSnapshots: 28032, PaperAtoms: 48,
			Build: func(scale int) (*System, Potential) {
				nMol := 16 * scale * scale * scale
				// density ~1 g/cm³: V = nMol·18.015·1.66054 Å³
				l := math.Cbrt(float64(nMol) * 18.015 * 1.66054)
				s := WaterBox(l, nMol,
					Species{Name: "O", Mass: massO, Charge: -0.82},
					Species{Name: "H", Mass: massH, Charge: 0.41})
				return s, SPCFlexWater()
			},
			TinyBuild: func() (*System, Potential) {
				const nMol = 8
				l := math.Cbrt(float64(nMol) * 18.015 * 1.66054)
				s := WaterBox(l, nMol,
					Species{Name: "O", Mass: massO, Charge: -0.82},
					Species{Name: "H", Mass: massH, Charge: 0.41})
				return s, SPCFlexWater()
			},
		},
		"CuO": {
			Name: "CuO", Temperatures: []float64{300, 500, 800}, TimeStep: 3,
			PaperSnapshots: 10281, PaperAtoms: 64,
			Build: func(scale int) (*System, Potential) {
				s := RockSalt(4.26, 2*scale,
					Species{Name: "Cu", Mass: massCu, Charge: 1},
					Species{Name: "O", Mass: massO, Charge: -1})
				return s, CuOPotential()
			},
			TinyBuild: func() (*System, Potential) {
				s := RockSalt(4.26, 1,
					Species{Name: "Cu", Mass: massCu, Charge: 1},
					Species{Name: "O", Mass: massO, Charge: -1})
				return s, CuOPotential()
			},
		},
		"HfO2": {
			Name: "HfO2", Temperatures: []float64{300, 800, 1600, 2400}, TimeStep: 1,
			PaperSnapshots: 28577, PaperAtoms: 96,
			Build: func(scale int) (*System, Potential) {
				s := Fluorite(5.08, 2*scale,
					Species{Name: "Hf", Mass: massHf, Charge: 2.4},
					Species{Name: "O", Mass: massO, Charge: -1.2})
				return s, HfO2Potential()
			},
			TinyBuild: func() (*System, Potential) {
				s := Fluorite(5.08, 1,
					Species{Name: "Hf", Mass: massHf, Charge: 2.4},
					Species{Name: "O", Mass: massO, Charge: -1.2})
				return s, HfO2Potential()
			},
		},
	}
}

// SystemNames returns the benchmark system names in the paper's Table 3
// order.
func SystemNames() []string {
	return []string{"Cu", "Al", "Si", "NaCl", "Mg", "H2O", "CuO", "HfO2"}
}

// GetSystem returns the spec for name or an error listing the valid names.
func GetSystem(name string) (SystemSpec, error) {
	specs := Systems()
	if sp, ok := specs[name]; ok {
		return sp, nil
	}
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return SystemSpec{}, fmt.Errorf("md: unknown system %q (have %v)", name, names)
}
