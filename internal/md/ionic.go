package md

import "math"

// BornMayerWolf models ionic crystals (NaCl, CuO, HfO₂): Born-Mayer
// short-range repulsion plus r⁻⁶ dispersion (both tapered), and a
// damped-shifted-force (DSF/Wolf) Coulomb term that is smooth in both
// energy and force at the cutoff — the standard O(N) substitute for Ewald
// summation in bulk simulations.  Species charges come from System.Species.
type BornMayerWolf struct {
	// A[i][j], Rho[i][j], C[i][j] are per-species-pair Born-Mayer
	// parameters: A·exp(-r/ρ) − C/r⁶.
	A, Rho, C [][]float64
	Alpha     float64 // Wolf damping, 1/Å
	Ron, Rc   float64 // taper window for the non-Coulomb part; Rc also cuts Coulomb
}

// Cutoff returns the interaction range.
func (p BornMayerWolf) Cutoff() float64 { return p.Rc }

// dsfConstants returns the energy and force shifts of the DSF Coulomb form.
func (p BornMayerWolf) dsfConstants() (eShift, fShift float64) {
	a, rc := p.Alpha, p.Rc
	erfcRc := math.Erfc(a * rc)
	eShift = erfcRc / rc
	fShift = erfcRc/(rc*rc) + 2*a/math.Sqrt(math.Pi)*math.Exp(-a*a*rc*rc)/rc
	return
}

// Compute evaluates the ionic energy and forces.
func (p BornMayerWolf) Compute(s *System, nl *NeighborList) (float64, []float64) {
	n := s.NumAtoms()
	f := make([]float64, 3*n)
	e := 0.0
	eShift, fShift := p.dsfConstants()
	a := p.Alpha

	// Wolf self-energy: constant for fixed composition but included so the
	// absolute energy is meaningful.
	selfC := eShift/2 + a/math.Sqrt(math.Pi)
	for i := 0; i < n; i++ {
		q := s.Species[s.Types[i]].Charge
		e -= CoulombK * q * q * selfC
	}

	// full-list half-weight pair sum (see potential.go)
	for i := 0; i < n; i++ {
		ti := s.Types[i]
		qi := s.Species[ti].Charge
		for _, nb := range nl.Lists[i] {
			if nb.R >= p.Rc {
				continue
			}
			tj := s.Types[nb.J]
			qj := s.Species[tj].Charge
			r := nb.R

			// short range
			phi := p.A[ti][tj]*math.Exp(-r/p.Rho[ti][tj]) - p.C[ti][tj]/math.Pow(r, 6)
			dphi := -p.A[ti][tj]/p.Rho[ti][tj]*math.Exp(-r/p.Rho[ti][tj]) + 6*p.C[ti][tj]/math.Pow(r, 7)
			w, dw := switchFn(r, p.Ron, p.Rc)
			e += 0.5 * phi * w
			dV := dphi*w + phi*dw

			// DSF Coulomb
			qq := CoulombK * qi * qj
			erfcR := math.Erfc(a * r)
			e += 0.5 * qq * (erfcR/r - eShift + fShift*(r-p.Rc))
			coulF := qq * (erfcR/(r*r) + 2*a/math.Sqrt(math.Pi)*math.Exp(-a*a*r*r)/r - fShift)
			dV -= coulF // dE/dr of the Coulomb part is -coulF
			dV *= 0.5

			fx := -dV * nb.Dx / r
			fy := -dV * nb.Dy / r
			fz := -dV * nb.Dz / r
			f[3*nb.J] += fx
			f[3*nb.J+1] += fy
			f[3*nb.J+2] += fz
			f[3*i] -= fx
			f[3*i+1] -= fy
			f[3*i+2] -= fz
		}
	}
	return e, f
}

// pairTable builds a symmetric 2×2 parameter table from the three unique
// entries (00, 01, 11).
func pairTable(v00, v01, v11 float64) [][]float64 {
	return [][]float64{{v00, v01}, {v01, v11}}
}

// NaClPotential returns a Fumi-Tosi-like parameterization of rock-salt NaCl
// (species order: Na⁺, Cl⁻).
func NaClPotential() BornMayerWolf {
	return BornMayerWolf{
		A:     pairTable(424.097, 1256.31, 3488.99),
		Rho:   pairTable(0.317, 0.317, 0.317),
		C:     pairTable(1.05, 6.99, 72.4),
		Alpha: 0.2,
		Ron:   5.0,
		Rc:    6.0,
	}
}

// CuOPotential returns a Born-Mayer model of CuO on a rock-salt lattice
// (species order: Cu, O) with partial charges ±1.
func CuOPotential() BornMayerWolf {
	return BornMayerWolf{
		A:     pairTable(1200.0, 1800.0, 22764.0),
		Rho:   pairTable(0.25, 0.28, 0.149),
		C:     pairTable(0, 0, 27.88),
		Alpha: 0.2,
		Ron:   4.8,
		Rc:    5.8,
	}
}

// HfO2Potential returns a Born-Mayer model of cubic (fluorite) HfO₂
// (species order: Hf, O) with partial charges +2.4/−1.2.
func HfO2Potential() BornMayerWolf {
	return BornMayerWolf{
		A:     pairTable(0, 1454.6, 22764.0),
		Rho:   pairTable(0.3, 0.35, 0.149),
		C:     pairTable(0, 0, 27.88),
		Alpha: 0.2,
		Ron:   4.8,
		Rc:    5.8,
	}
}
