// Package dataset produces and manages the labelled training data of the
// reproduction: snapshots of atomic configurations with total energy and
// per-atom force labels, the equivalent of the paper's ab initio (PWmat)
// trajectories of Table 3.  Snapshots are sampled from Langevin MD driven
// by the classical label potentials in internal/md, mixing the
// temperatures listed in the paper for each system.
package dataset

import (
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"os"

	"fekf/internal/md"
)

// Snapshot is one labelled configuration ("image" in the paper's terms).
type Snapshot struct {
	Pos         []float64  // 3N positions, Å
	Box         [3]float64 // orthorhombic box, Å
	Types       []int      // species index per atom
	Energy      float64    // total potential energy, eV
	Forces      []float64  // 3N forces, eV/Å
	Temperature float64    // sampling temperature, K
}

// NumAtoms returns the number of atoms in the snapshot.
func (s *Snapshot) NumAtoms() int { return len(s.Types) }

// Dataset is a labelled collection of snapshots of one physical system.
type Dataset struct {
	System    string
	Species   []md.Species
	Snapshots []Snapshot
}

// Len returns the number of snapshots.
func (d *Dataset) Len() int { return len(d.Snapshots) }

// GenOptions controls trajectory sampling.
type GenOptions struct {
	// Snapshots is the total number of labelled images to produce,
	// divided evenly among the system's temperatures.
	Snapshots int
	// SampleEvery is the number of MD steps between samples (decorrelation).
	SampleEvery int
	// EquilSteps is the number of thermalization steps before sampling
	// starts at each temperature.
	EquilSteps int
	// Scale enlarges the simulation cell (1 = paper-like bulk cell).
	Scale int
	// Tiny selects the reduced 8-32 atom cells, which the single-core
	// convergence experiments use; overrides Scale.
	Tiny bool
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultGenOptions returns the settings used by the experiment harness:
// small decorrelated datasets that keep the optimizer comparisons faithful
// while fitting a single-core time budget.
func DefaultGenOptions() GenOptions {
	return GenOptions{Snapshots: 512, SampleEvery: 10, EquilSteps: 200, Scale: 1, Seed: 1}
}

// Generate samples a labelled dataset for the named Table 3 system.
func Generate(systemName string, opt GenOptions) (*Dataset, error) {
	spec, err := md.GetSystem(systemName)
	if err != nil {
		return nil, err
	}
	if opt.Scale < 1 {
		opt.Scale = 1
	}
	if opt.SampleEvery < 1 {
		opt.SampleEvery = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	ds := &Dataset{System: spec.Name}
	perT := opt.Snapshots / len(spec.Temperatures)
	extra := opt.Snapshots - perT*len(spec.Temperatures)

	for ti, T := range spec.Temperatures {
		want := perT
		if ti < extra {
			want++
		}
		if want == 0 {
			continue
		}
		var sys *md.System
		var pot md.Potential
		if opt.Tiny {
			sys, pot = spec.TinyBuild()
		} else {
			sys, pot = spec.Build(opt.Scale)
		}
		if ds.Species == nil {
			ds.Species = sys.Species
		}
		sys.InitVelocities(T, rng)
		lg := md.NewLangevin(pot, spec.TimeStep, T, rng)
		lg.Run(sys, opt.EquilSteps, 0, nil)

		collected := 0
		lg.Run(sys, want*opt.SampleEvery, opt.SampleEvery, func(step int) {
			if collected >= want {
				return
			}
			// labels must be self-consistent: recompute E and F at the
			// exact sampled positions with a fresh full neighbor list.
			e, f := md.ComputeAll(pot, sys)
			ds.Snapshots = append(ds.Snapshots, Snapshot{
				Pos:         append([]float64(nil), sys.Pos...),
				Box:         sys.Box,
				Types:       append([]int(nil), sys.Types...),
				Energy:      e,
				Forces:      f,
				Temperature: T,
			})
			collected++
		})
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("dataset: generated no snapshots for %s", systemName)
	}
	return ds, nil
}

// Split partitions the dataset into train and test subsets with the given
// test fraction, shuffling deterministically with seed.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())
	nTest := int(float64(d.Len()) * testFrac)
	if nTest < 1 && d.Len() > 1 && testFrac > 0 {
		nTest = 1
	}
	train = &Dataset{System: d.System, Species: d.Species}
	test = &Dataset{System: d.System, Species: d.Species}
	for k, i := range idx {
		if k < nTest {
			test.Snapshots = append(test.Snapshots, d.Snapshots[i])
		} else {
			train.Snapshots = append(train.Snapshots, d.Snapshots[i])
		}
	}
	return train, test
}

// Batches returns the snapshot indices grouped into minibatches of size bs
// after a deterministic shuffle; the final short batch is kept (dropLast
// false semantics).
func (d *Dataset) Batches(bs int, rng *rand.Rand) [][]int {
	if bs < 1 {
		bs = 1
	}
	idx := rng.Perm(d.Len())
	var out [][]int
	for lo := 0; lo < len(idx); lo += bs {
		hi := lo + bs
		if hi > len(idx) {
			hi = len(idx)
		}
		out = append(out, idx[lo:hi])
	}
	return out
}

// SampleBatch returns bs snapshot indices drawn uniformly with
// replacement; used when the requested batch exceeds the dataset (the
// paper's 512-4096 batches at this reproduction's dataset sizes).
func (d *Dataset) SampleBatch(bs int, rng *rand.Rand) []int {
	idx := make([]int, bs)
	for i := range idx {
		idx[i] = rng.Intn(d.Len())
	}
	return idx
}

// Subset returns a dataset view with the first n snapshots (or all if
// n >= Len); snapshots are shared, not copied.
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	return &Dataset{System: d.System, Species: d.Species, Snapshots: d.Snapshots[:n]}
}

// EnergyStats returns the mean and standard deviation of per-atom energies,
// used for label normalization in training.
func (d *Dataset) EnergyStats() (mean, std float64) {
	if d.Len() == 0 {
		return 0, 1
	}
	for _, s := range d.Snapshots {
		mean += s.Energy / float64(s.NumAtoms())
	}
	mean /= float64(d.Len())
	for _, s := range d.Snapshots {
		dv := s.Energy/float64(s.NumAtoms()) - mean
		std += dv * dv
	}
	std /= float64(d.Len())
	if std > 0 {
		std = math.Sqrt(std)
	} else {
		std = 1
	}
	return mean, std
}

// Save writes the dataset to path with gob encoding.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(d); err != nil {
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	return nil
}

// Load reads a dataset written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d Dataset
	if err := gob.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	return &d, nil
}
