package dataset

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"fekf/internal/md"
)

func genSmall(t *testing.T, system string, n int) *Dataset {
	t.Helper()
	ds, err := Generate(system, GenOptions{
		Snapshots: n, SampleEvery: 3, EquilSteps: 20, Scale: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateProducesRequestedCount(t *testing.T) {
	ds := genSmall(t, "Cu", 10)
	if ds.Len() != 10 {
		t.Fatalf("got %d snapshots, want 10", ds.Len())
	}
	if ds.System != "Cu" {
		t.Fatalf("system = %q", ds.System)
	}
	if len(ds.Species) == 0 {
		t.Fatal("species table empty")
	}
}

func TestGenerateLabelsAreSelfConsistent(t *testing.T) {
	ds := genSmall(t, "Cu", 4)
	spec, _ := md.GetSystem("Cu")
	_, pot := spec.Build(1)
	for k, snap := range ds.Snapshots {
		sys := &md.System{Box: snap.Box, Pos: snap.Pos, Types: snap.Types, Species: ds.Species}
		e, f := md.ComputeAll(pot, sys)
		if math.Abs(e-snap.Energy) > 1e-9*(1+math.Abs(e)) {
			t.Fatalf("snapshot %d: stored E %v, recomputed %v", k, snap.Energy, e)
		}
		for i := range f {
			if math.Abs(f[i]-snap.Forces[i]) > 1e-9 {
				t.Fatalf("snapshot %d: force %d mismatch", k, i)
			}
		}
	}
}

func TestGenerateCoversAllTemperatures(t *testing.T) {
	ds := genSmall(t, "Al", 8) // Al has 4 temperatures
	seen := map[float64]int{}
	for _, s := range ds.Snapshots {
		seen[s.Temperature]++
	}
	if len(seen) != 4 {
		t.Fatalf("covered %d temperatures, want 4 (%v)", len(seen), seen)
	}
}

func TestGenerateDiverseConfigurations(t *testing.T) {
	ds := genSmall(t, "Cu", 6)
	// successive decorrelated snapshots must differ
	a, b := ds.Snapshots[0], ds.Snapshots[1]
	diff := 0.0
	for i := range a.Pos {
		diff += math.Abs(a.Pos[i] - b.Pos[i])
	}
	if diff < 1e-3 {
		t.Fatalf("snapshots nearly identical (total |Δx| = %g)", diff)
	}
	// energies must vary across the set
	emin, emax := math.Inf(1), math.Inf(-1)
	for _, s := range ds.Snapshots {
		emin = math.Min(emin, s.Energy)
		emax = math.Max(emax, s.Energy)
	}
	if emax-emin < 1e-6 {
		t.Fatal("all snapshot energies identical")
	}
}

func TestGenerateUnknownSystem(t *testing.T) {
	if _, err := Generate("NotASystem", DefaultGenOptions()); err == nil {
		t.Fatal("expected error")
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	ds := genSmall(t, "Cu", 10)
	train, test := ds.Split(0.3, 42)
	if train.Len()+test.Len() != ds.Len() {
		t.Fatalf("split sizes %d+%d != %d", train.Len(), test.Len(), ds.Len())
	}
	if test.Len() != 3 {
		t.Fatalf("test size = %d want 3", test.Len())
	}
	// determinism
	tr2, te2 := ds.Split(0.3, 42)
	if tr2.Len() != train.Len() || te2.Len() != test.Len() {
		t.Fatal("split not deterministic")
	}
	if tr2.Snapshots[0].Energy != train.Snapshots[0].Energy {
		t.Fatal("split order not deterministic")
	}
}

func TestSplitTinyDatasetStillYieldsTest(t *testing.T) {
	ds := genSmall(t, "Cu", 3)
	_, test := ds.Split(0.1, 1)
	if test.Len() != 1 {
		t.Fatalf("test len = %d want 1", test.Len())
	}
}

func TestBatchesCoverAllIndicesOnce(t *testing.T) {
	ds := genSmall(t, "Cu", 10)
	rng := rand.New(rand.NewSource(3))
	batches := ds.Batches(4, rng)
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3", len(batches))
	}
	if len(batches[2]) != 2 {
		t.Fatalf("last batch len = %d want 2", len(batches[2]))
	}
	seen := map[int]bool{}
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d indices, want 10", len(seen))
	}
}

func TestSubset(t *testing.T) {
	ds := genSmall(t, "Cu", 6)
	sub := ds.Subset(4)
	if sub.Len() != 4 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if big := ds.Subset(100); big.Len() != 6 {
		t.Fatalf("over-subset len %d", big.Len())
	}
}

func TestEnergyStats(t *testing.T) {
	ds := genSmall(t, "Cu", 8)
	mean, std := ds.EnergyStats()
	n := float64(ds.Snapshots[0].NumAtoms())
	if mean > 0 || mean < -10 {
		t.Fatalf("per-atom energy mean %v implausible for Morse Cu", mean)
	}
	if std <= 0 {
		t.Fatalf("std = %v", std)
	}
	_ = n
	empty := &Dataset{}
	m, s := empty.EnergyStats()
	if m != 0 || s != 1 {
		t.Fatalf("empty stats = %v,%v", m, s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := genSmall(t, "NaCl", 4)
	path := filepath.Join(t.TempDir(), "nacl.gob")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.System != ds.System {
		t.Fatalf("round trip lost data: %d/%s", got.Len(), got.System)
	}
	for i := range ds.Snapshots {
		if got.Snapshots[i].Energy != ds.Snapshots[i].Energy {
			t.Fatal("energies differ after round trip")
		}
	}
	if len(got.Species) != len(ds.Species) || got.Species[0].Name != ds.Species[0].Name {
		t.Fatal("species table lost")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestGenerateTinyCells(t *testing.T) {
	ds, err := Generate("Cu", GenOptions{Snapshots: 4, SampleEvery: 3, EquilSteps: 10, Tiny: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Snapshots[0].NumAtoms(); got != 32 {
		t.Fatalf("tiny Cu has %d atoms, want 32", got)
	}
}
