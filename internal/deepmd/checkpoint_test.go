package deepmd

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Save must be crash-safe: after a successful write the directory holds
// exactly the checkpoint (no stray temp files), and the stored weights are
// bitwise identical to the in-memory model.
func TestSaveAtomicAndBitwise(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptAll)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	for i := 0; i < 2; i++ { // second Save overwrites atomically
		if err := m.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.ckpt" {
		t.Fatalf("directory not clean after Save: %v", entries)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	w1 := m.Params.FlattenValues()
	w2 := got.Params.FlattenValues()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("weight %d not bitwise preserved: %v vs %v", i, w1[i], w2[i])
		}
	}
	for i := range m.SNorm {
		if got.SNorm[i] != m.SNorm[i] {
			t.Fatalf("SNorm %d not preserved", i)
		}
	}
}

// A truncated stream — the crash Save guards against, simulated directly —
// must fail to decode rather than yield a mangled model.
func TestDecodeTruncatedStream(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptAll)
	var buf bytes.Buffer
	if err := m.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, buf.Len() / 2, buf.Len() - 1} {
		if _, err := DecodeModel(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
}

// Structural validation: shape-list, tensor-count and SNorm-length
// mismatches in the stored stream must all be rejected with a clear error.
func TestDecodeValidatesStructure(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptAll)

	encode := func(mutate func(*checkpoint)) []byte {
		var buf bytes.Buffer
		if err := m.EncodeTo(&buf); err != nil {
			t.Fatal(err)
		}
		var ck checkpoint
		if err := gob.NewDecoder(&buf).Decode(&ck); err != nil {
			t.Fatal(err)
		}
		mutate(&ck)
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(&ck); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	cases := []struct {
		name   string
		mutate func(*checkpoint)
		want   string
	}{
		{"shape-count", func(ck *checkpoint) { ck.Shapes = ck.Shapes[:len(ck.Shapes)-1] }, "shapes"},
		{"tensor-count", func(ck *checkpoint) { ck.Shapes = ck.Shapes[:1]; ck.Values = ck.Values[:1] }, "tensors"},
		{"snorm-length", func(ck *checkpoint) { ck.SNorm = ck.SNorm[:len(ck.SNorm)-1] }, "normalization"},
		{"tensor-shape", func(ck *checkpoint) { ck.Shapes[0][0]++; ck.Values[0] = append(ck.Values[0], 0) }, "x"},
		{"value-count", func(ck *checkpoint) { ck.Values[0] = ck.Values[0][:len(ck.Values[0])-1] }, "values"},
	}
	for _, tc := range cases {
		_, err := DecodeModel(bytes.NewReader(encode(tc.mutate)))
		if err == nil {
			t.Fatalf("%s: corrupt checkpoint decoded without error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// Clone must produce an isolated copy: mutating the original afterwards
// must not change the clone (the copy-on-write snapshot contract).
func TestCloneIsolatesWeights(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptAll)
	c := m.Clone()
	if c == m || c.Params == m.Params {
		t.Fatal("Clone shares structure with the original")
	}
	before := c.Params.FlattenValues()
	for _, tt := range m.Params.Tensors() {
		for i := range tt.Data {
			tt.Data[i] += 1.0
		}
	}
	after := c.Params.FlattenValues()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("clone weight %d changed when original was mutated", i)
		}
	}
}
