package deepmd

import (
	"math"
	"math/rand"
	"testing"

	"fekf/internal/dataset"
	"fekf/internal/device"
	"fekf/internal/md"
	"fekf/internal/tensor"
)

// testData generates a tiny labelled Cu dataset once per test binary.
var testDataCache = map[string]*dataset.Dataset{}

func testData(t testing.TB, system string, n int) *dataset.Dataset {
	t.Helper()
	key := system
	if ds, ok := testDataCache[key]; ok && ds.Len() >= n {
		return ds.Subset(n)
	}
	ds, err := dataset.Generate(system, dataset.GenOptions{
		Snapshots: n, SampleEvery: 5, EquilSteps: 30, Scale: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	testDataCache[key] = ds
	return ds
}

func testModel(t testing.TB, ds *dataset.Dataset, level OptLevel) *Model {
	t.Helper()
	sys := SnapshotSystem(ds, &ds.Snapshots[0])
	cfg := TinyConfig(sys)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Level = level
	m.Dev = device.New("test", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := Config{Rcs: 3, Rc: 4.5, MaxNeighbors: []int{8}, M: 8, MSub: 4, FitHidden: 8, NumSpecies: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rcs: 5, Rc: 4.5, MaxNeighbors: []int{8}, M: 8, MSub: 4, FitHidden: 8, NumSpecies: 1},
		{Rcs: 3, Rc: 4.5, MaxNeighbors: []int{8, 8}, M: 8, MSub: 4, FitHidden: 8, NumSpecies: 1},
		{Rcs: 3, Rc: 4.5, MaxNeighbors: []int{8}, M: 4, MSub: 8, FitHidden: 8, NumSpecies: 1},
		{Rcs: 3, Rc: 4.5, MaxNeighbors: []int{0}, M: 8, MSub: 4, FitHidden: 8, NumSpecies: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestPaperConfigParamCount(t *testing.T) {
	spec, _ := md.GetSystem("Cu")
	sys, _ := spec.Build(1)
	cfg := PaperConfig(spec, sys)
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// paper architecture: embedding [25,25,25] = 1350, fitting
	// [400,50,50,50,1] = 25201, total 26551 for one species.
	if got := m.NumParams(); got != 26551 {
		t.Fatalf("paper config params = %d, want 26551", got)
	}
	ls := m.Params.LayerSizes()
	if ls[0] != 50 || ls[1] != 650 || ls[2] != 650 || ls[3] != 20050 {
		t.Fatalf("layer sizes = %v", ls)
	}
}

func TestEnvPaddingAndTruncation(t *testing.T) {
	ds := testData(t, "Cu", 2)
	sys := SnapshotSystem(ds, &ds.Snapshots[0])
	cfg := TinyConfig(sys)
	env, err := BuildEnv(cfg, []*md.System{sys})
	if err != nil {
		t.Fatal(err)
	}
	if env.B != 1 || env.NaPer != sys.NumAtoms() {
		t.Fatalf("env dims B=%d Na=%d", env.B, env.NaPer)
	}
	nm := cfg.MaxNeighbors[0]
	if env.R[0].Rows != sys.NumAtoms()*nm {
		t.Fatalf("R rows = %d", env.R[0].Rows)
	}
	// every filled slot has positive s, every entry indexes a valid row
	for _, e := range env.Entries[0] {
		if e.Row < 0 || e.Row >= env.R[0].Rows {
			t.Fatalf("entry row %d out of range", e.Row)
		}
		if env.R[0].At(e.Row, 0) <= 0 {
			t.Fatalf("filled slot with s = %v", env.R[0].At(e.Row, 0))
		}
	}
	// slots per atom never exceed the budget
	perAtom := map[int]int{}
	for _, e := range env.Entries[0] {
		perAtom[e.I]++
	}
	for i, c := range perAtom {
		if c > nm {
			t.Fatalf("atom %d has %d filled slots > %d", i, c, nm)
		}
	}
}

func TestEnvBatchMismatchedAtoms(t *testing.T) {
	spec, _ := md.GetSystem("Cu")
	s1, _ := spec.Build(1)
	s2, _ := spec.Build(2)
	cfg := TinyConfig(s1)
	if _, err := BuildEnv(cfg, []*md.System{s1, s2}); err == nil {
		t.Fatal("expected error for mismatched atom counts")
	}
}

func TestForwardEnergyFinite(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptBaseline)
	env, err := BuildBatchEnv(m.Cfg, ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Forward(env, true)
	if out.Energies.Rows() != 2 {
		t.Fatalf("energies rows = %d", out.Energies.Rows())
	}
	for _, e := range out.Energies.Value.Data {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("energy = %v", e)
		}
	}
	if out.Forces.Rows() != 3*env.NumAtoms() {
		t.Fatalf("forces rows = %d", out.Forces.Rows())
	}
	// bias initialization puts predictions near the label scale
	lab := BatchLabels(ds, []int{0, 1})
	na := float64(lab.NaPer)
	for i := 0; i < 2; i++ {
		if math.Abs(out.Energies.Value.Data[i]-lab.Energy.Data[i])/na > 2 {
			t.Fatalf("per-atom energy error too large at init: pred %v label %v",
				out.Energies.Value.Data[i], lab.Energy.Data[i])
		}
	}
}

// TestForcesMatchEnergyGradient is the central physics check: the model's
// force output must equal −dE/dx of the model's own energy, computed by
// finite differences with env rebuilt at each displacement.
func TestForcesMatchEnergyGradient(t *testing.T) {
	ds := testData(t, "Cu", 1)
	for _, level := range []OptLevel{OptBaseline, OptManualForce, OptFused} {
		m := testModel(t, ds, level)
		snap := &ds.Snapshots[0]
		sys := SnapshotSystem(ds, snap)

		energyAt := func() float64 {
			env, err := BuildEnv(m.Cfg, []*md.System{sys})
			if err != nil {
				t.Fatal(err)
			}
			out := m.Forward(env, false)
			return out.Energies.Value.Data[0]
		}

		env, err := BuildEnv(m.Cfg, []*md.System{sys})
		if err != nil {
			t.Fatal(err)
		}
		out := m.Forward(env, true)
		forces := out.Forces.Value

		rng := rand.New(rand.NewSource(3))
		const h = 1e-5
		for trial := 0; trial < 8; trial++ {
			k := rng.Intn(len(sys.Pos))
			orig := sys.Pos[k]
			sys.Pos[k] = orig + h
			ep := energyAt()
			sys.Pos[k] = orig - h
			em := energyAt()
			sys.Pos[k] = orig
			want := -(ep - em) / (2 * h)
			if math.Abs(forces.Data[k]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%v: force[%d] = %v, -dE/dx = %v", level, k, forces.Data[k], want)
			}
		}
	}
}

// TestManualMatchesAutogradForces checks Opt1's correctness claim: the
// hand-derived force path must equal the autograd path bitwise-closely.
func TestManualMatchesAutogradForces(t *testing.T) {
	ds := testData(t, "Cu", 2)
	mA := testModel(t, ds, OptBaseline)
	mM := testModel(t, ds, OptManualForce)
	env, err := BuildBatchEnv(mA.Cfg, ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	outA := mA.Forward(env, true)
	outM := mM.Forward(env, true)
	if !tensor.Equal(outA.Energies.Value, outM.Energies.Value, 1e-12) {
		t.Fatal("energies differ between paths")
	}
	if !tensor.Equal(outA.Forces.Value, outM.Forces.Value, 1e-10) {
		t.Fatal("forces differ between autograd and manual paths")
	}
}

// TestFusedMatchesUnfusedModel checks Opt2 preserves values while reducing
// kernel launches.
func TestFusedMatchesUnfusedModel(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m1 := testModel(t, ds, OptManualForce)
	m2 := testModel(t, ds, OptFused)
	env, err := BuildBatchEnv(m1.Cfg, ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	out1 := m1.Forward(env, true)
	out2 := m2.Forward(env, true)
	if !tensor.Equal(out1.Forces.Value, out2.Forces.Value, 1e-10) {
		t.Fatal("fusion changed force values")
	}
	k1 := m1.Dev.Counters().Kernels
	k2 := m2.Dev.Counters().Kernels
	if k2 >= k1 {
		t.Fatalf("fused kernels (%d) not fewer than unfused (%d)", k2, k1)
	}
}

// TestKernelCountsDecreaseAcrossOptLevels verifies the Figure 7(b) trend:
// baseline > opt1 > opt2 in launched kernels for a forward+force pass.
func TestKernelCountsDecreaseAcrossOptLevels(t *testing.T) {
	ds := testData(t, "Cu", 2)
	var counts []int64
	for _, level := range []OptLevel{OptBaseline, OptManualForce, OptFused} {
		m := testModel(t, ds, level)
		env, err := BuildBatchEnv(m.Cfg, ds, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		m.Dev.Reset()
		out := m.Forward(env, true)
		_ = m.EnergyGrad(out, nil)
		counts = append(counts, m.Dev.Counters().Kernels)
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Fatalf("kernel counts not decreasing: %v", counts)
	}
}

// TestEnergyTranslationInvariance: the descriptor must be exactly
// translation invariant.
func TestEnergyTranslationInvariance(t *testing.T) {
	ds := testData(t, "Cu", 1)
	m := testModel(t, ds, OptFused)
	snap := &ds.Snapshots[0]
	sys := SnapshotSystem(ds, snap)
	env1, _ := BuildEnv(m.Cfg, []*md.System{sys})
	e1 := m.Forward(env1, false).Energies.Value.Data[0]
	moved := sys.Clone()
	for i := 0; i < moved.NumAtoms(); i++ {
		moved.Pos[3*i] += 0.77
		moved.Pos[3*i+1] -= 1.21
		moved.Pos[3*i+2] += 2.05
	}
	env2, _ := BuildEnv(m.Cfg, []*md.System{moved})
	e2 := m.Forward(env2, false).Energies.Value.Data[0]
	if math.Abs(e1-e2) > 1e-9*(1+math.Abs(e1)) {
		t.Fatalf("translation changed energy: %v vs %v", e1, e2)
	}
}

// TestEnergyRotationInvariance: rotate all coordinates by 90° about z
// (which maps the cubic cell onto itself) and check the energy.
func TestEnergyRotationInvariance(t *testing.T) {
	ds := testData(t, "Cu", 1)
	m := testModel(t, ds, OptFused)
	sys := SnapshotSystem(ds, &ds.Snapshots[0])
	env1, _ := BuildEnv(m.Cfg, []*md.System{sys})
	e1 := m.Forward(env1, false).Energies.Value.Data[0]
	rot := sys.Clone()
	for i := 0; i < rot.NumAtoms(); i++ {
		x, y := rot.Pos[3*i], rot.Pos[3*i+1]
		rot.Pos[3*i], rot.Pos[3*i+1] = y, rot.Box[1]-x
	}
	env2, _ := BuildEnv(m.Cfg, []*md.System{rot})
	e2 := m.Forward(env2, false).Energies.Value.Data[0]
	if math.Abs(e1-e2) > 1e-8*(1+math.Abs(e1)) {
		t.Fatalf("rotation changed energy: %v vs %v", e1, e2)
	}
}

// TestEnergyPermutationInvariance: swapping two same-species atoms must
// not change the energy.
func TestEnergyPermutationInvariance(t *testing.T) {
	ds := testData(t, "Cu", 1)
	m := testModel(t, ds, OptFused)
	sys := SnapshotSystem(ds, &ds.Snapshots[0])
	env1, _ := BuildEnv(m.Cfg, []*md.System{sys})
	e1 := m.Forward(env1, false).Energies.Value.Data[0]
	sw := sys.Clone()
	for d := 0; d < 3; d++ {
		sw.Pos[3*2+d], sw.Pos[3*7+d] = sw.Pos[3*7+d], sw.Pos[3*2+d]
	}
	env2, _ := BuildEnv(m.Cfg, []*md.System{sw})
	e2 := m.Forward(env2, false).Energies.Value.Data[0]
	if math.Abs(e1-e2) > 1e-9*(1+math.Abs(e1)) {
		t.Fatalf("permutation changed energy: %v vs %v", e1, e2)
	}
}

// TestEnergyGradMatchesFiniteDifference checks dE/dw for the EKF energy
// update.
func TestEnergyGradMatchesFiniteDifference(t *testing.T) {
	ds := testData(t, "Cu", 1)
	m := testModel(t, ds, OptFused)
	env, _ := BuildBatchEnv(m.Cfg, ds, []int{0})
	out := m.Forward(env, false)
	grad := m.EnergyGrad(out, nil)

	w := m.Params.FlattenValues()
	rng := rand.New(rand.NewSource(4))
	const h = 1e-6
	for trial := 0; trial < 10; trial++ {
		k := rng.Intn(len(w))
		orig := w[k]
		w[k] = orig + h
		m.Params.SetFlat(w)
		ep := m.Forward(env, false).Energies.Value.Data[0]
		w[k] = orig - h
		m.Params.SetFlat(w)
		em := m.Forward(env, false).Energies.Value.Data[0]
		w[k] = orig
		m.Params.SetFlat(w)
		want := (ep - em) / (2 * h)
		if math.Abs(grad[k]-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("dE/dw[%d] = %v, numeric %v", k, grad[k], want)
		}
	}
}

// TestForceGradMatchesFiniteDifference checks the double-backprop force
// gradient d(Σ c·F)/dw the EKF force update relies on, for both force
// paths.
func TestForceGradMatchesFiniteDifference(t *testing.T) {
	ds := testData(t, "Cu", 1)
	for _, level := range []OptLevel{OptBaseline, OptFused} {
		m := testModel(t, ds, level)
		env, _ := BuildBatchEnv(m.Cfg, ds, []int{0})
		out := m.Forward(env, true)
		seed := tensor.RandNormal(out.Forces.Rows(), 1, 1, rand.New(rand.NewSource(5)))
		grad := m.ForceGrad(out, seed)

		project := func() float64 {
			o := m.Forward(env, true)
			return tensor.Dot(o.Forces.Value, seed)
		}
		w := m.Params.FlattenValues()
		rng := rand.New(rand.NewSource(6))
		const h = 1e-6
		for trial := 0; trial < 6; trial++ {
			k := rng.Intn(len(w))
			orig := w[k]
			w[k] = orig + h
			m.Params.SetFlat(w)
			fp := project()
			w[k] = orig - h
			m.Params.SetFlat(w)
			fm := m.Params.NumParams()
			_ = fm
			fmv := project()
			w[k] = orig
			m.Params.SetFlat(w)
			want := (fp - fmv) / (2 * h)
			if math.Abs(grad[k]-want) > 2e-3*(1+math.Abs(want)) {
				t.Fatalf("%v: d(c·F)/dw[%d] = %v, numeric %v", level, k, grad[k], want)
			}
		}
	}
}

func TestEvaluateRuns(t *testing.T) {
	ds := testData(t, "Cu", 4)
	m := testModel(t, ds, OptFused)
	met, err := m.Evaluate(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(met.EnergyRMSE) || math.IsNaN(met.ForceRMSE) {
		t.Fatalf("metrics NaN: %+v", met)
	}
	if met.Combined() <= 0 {
		t.Fatalf("combined metric %v", met.Combined())
	}
}

func TestLossGraphBackpropagates(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptFused)
	env, _ := BuildBatchEnv(m.Cfg, ds, []int{0, 1})
	out := m.Forward(env, true)
	lab := BatchLabels(ds, []int{0, 1})
	loss := LossGraph(out, lab, DefaultLossWeights())
	if loss.Scalar() <= 0 {
		t.Fatalf("loss = %v", loss.Scalar())
	}
	grads := m.LossGrad(out, loss)
	nonzero := 0
	for _, v := range grads {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("loss gradient identically zero")
	}
}

// TestMultiSpeciesSystem exercises the per-type embedding/fitting paths.
func TestMultiSpeciesSystem(t *testing.T) {
	ds := testData(t, "NaCl", 2)
	m := testModel(t, ds, OptFused)
	if m.Cfg.NumSpecies != 2 {
		t.Fatalf("NumSpecies = %d", m.Cfg.NumSpecies)
	}
	env, err := BuildBatchEnv(m.Cfg, ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Forward(env, true)
	for _, e := range out.Energies.Value.Data {
		if math.IsNaN(e) {
			t.Fatal("NaN energy on multi-species system")
		}
	}
	// force consistency on the two-species system too
	sys := SnapshotSystem(ds, &ds.Snapshots[0])
	envF, _ := BuildEnv(m.Cfg, []*md.System{sys})
	outF := m.Forward(envF, true)
	const h = 1e-5
	k := 5
	orig := sys.Pos[k]
	sys.Pos[k] = orig + h
	e1, _ := BuildEnv(m.Cfg, []*md.System{sys})
	ep := m.Forward(e1, false).Energies.Value.Data[0]
	sys.Pos[k] = orig - h
	e2, _ := BuildEnv(m.Cfg, []*md.System{sys})
	em := m.Forward(e2, false).Energies.Value.Data[0]
	sys.Pos[k] = orig
	want := -(ep - em) / (2 * h)
	if math.Abs(outF.Forces.Value.Data[k]-want) > 1e-4*(1+math.Abs(want)) {
		t.Fatalf("NaCl force[%d] = %v, -dE/dx = %v", k, outF.Forces.Value.Data[k], want)
	}
}

func TestOptLevelString(t *testing.T) {
	if OptBaseline.String() != "baseline" || OptManualForce.String() != "opt1" ||
		OptFused.String() != "opt2" || OptAll.String() != "opt3" {
		t.Fatal("OptLevel names wrong")
	}
}
