// Package deepmd implements the Deep Potential (DeePMD) model of the
// paper: the smooth environment matrix R̃, per-neighbor-type embedding
// nets, the symmetry-preserving descriptor D = XᵀX< with X = R̃ᵀG, the
// fitting net, total energy, and atomic forces F = −∇E.
//
// Two force paths coexist, mirroring Section 3.4 of the paper: the
// framework-autograd path (baseline) and the hand-derived Eq. 4 path
// (Opt1) implemented as fused custom kernels.  Kernel fusion of the layer
// ops (Opt2) is selected through the graph's Fused flag.  All paths give
// identical values; they differ in the number of simulated kernel
// launches, which is what Figure 7(b) measures.
package deepmd

import (
	"fmt"

	"fekf/internal/md"
)

// OptLevel selects the system-optimization stage of Section 3.4.
type OptLevel int

// Optimization stages in the order of Figure 7.
const (
	// OptBaseline: unfused layer kernels, forces via generic autograd.
	OptBaseline OptLevel = iota
	// OptManualForce (Opt1): hand-derived symmetry-operator derivative
	// (Eq. 4) as fused custom kernels.
	OptManualForce
	// OptFused (Opt2): additionally fuse layer kernels (tanh(XW+b) etc).
	OptFused
	// OptAll (Opt3): additionally use the optimizer-side custom kernels
	// (fused P update, Pg caching); the model graph equals OptFused.
	OptAll
)

// String names the optimization level as in Figure 7's x-axis.
func (l OptLevel) String() string {
	switch l {
	case OptBaseline:
		return "baseline"
	case OptManualForce:
		return "opt1"
	case OptFused:
		return "opt2"
	case OptAll:
		return "opt3"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(l))
	}
}

// Config describes a DeePMD network and its descriptor geometry.
type Config struct {
	// Rcs, Rc are the smooth-cutoff radii of s(r) (Å).
	Rcs, Rc float64
	// MaxNeighbors is the per-neighbor-species slot count; its sum is the
	// paper's N_m.  Neighbor lists longer than the slot count are
	// truncated to the nearest atoms; shorter ones are zero-padded.
	MaxNeighbors []int
	// M is the symmetry order (embedding output width); MSub is M< of the
	// paper ("the truncation value of the symmetry-preserving operation").
	M, MSub int
	// FitHidden is the fitting-net hidden width d.
	FitHidden int
	// NumSpecies is the number of chemical species (center types).
	NumSpecies int
	// Seed initializes the weights deterministically.
	Seed int64
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Rc <= c.Rcs || c.Rcs <= 0 {
		return fmt.Errorf("deepmd: need 0 < Rcs < Rc, got %v, %v", c.Rcs, c.Rc)
	}
	if len(c.MaxNeighbors) != c.NumSpecies {
		return fmt.Errorf("deepmd: MaxNeighbors has %d entries for %d species",
			len(c.MaxNeighbors), c.NumSpecies)
	}
	for _, n := range c.MaxNeighbors {
		if n < 1 {
			return fmt.Errorf("deepmd: non-positive neighbor slot count %d", n)
		}
	}
	if c.M < 1 || c.MSub < 1 || c.MSub > c.M {
		return fmt.Errorf("deepmd: need 1 <= MSub <= M, got M=%d MSub=%d", c.M, c.MSub)
	}
	if c.FitHidden < 1 {
		return fmt.Errorf("deepmd: FitHidden = %d", c.FitHidden)
	}
	if c.NumSpecies < 1 {
		return fmt.Errorf("deepmd: NumSpecies = %d", c.NumSpecies)
	}
	return nil
}

// TotalSlots returns N_m, the total per-atom neighbor slot count.
func (c Config) TotalSlots() int {
	n := 0
	for _, v := range c.MaxNeighbors {
		n += v
	}
	return n
}

// PaperConfig returns the network of the paper's experiments: embedding
// [25,25,25], fitting [400,50,50,50,1], M<=16.  For a single-species
// system this yields 26 651-parameter-scale networks (ours counts 25 201 +
// 1 350 = 26 551; the paper's 26 651 differs by a 100-parameter detail of
// their type embedding).
func PaperConfig(spec md.SystemSpec, sys *md.System) Config {
	ns := len(sys.Species)
	per := paperSlotBudget(sys, ns)
	return Config{
		Rcs: 3.5, Rc: 5.2,
		MaxNeighbors: per,
		M:            25, MSub: 16,
		FitHidden:  50,
		NumSpecies: ns,
		Seed:       1,
	}
}

// TinyConfig returns a scaled-down network used by the convergence
// experiments: the same architecture with M=8, M<=4, d=16.  On a single
// CPU core it trains orders of magnitude faster while preserving every
// algorithmic property the optimizer comparison depends on.
func TinyConfig(sys *md.System) Config {
	ns := len(sys.Species)
	return Config{
		Rcs: 3.0, Rc: 4.5,
		MaxNeighbors: tinySlotBudget(sys, ns),
		M:            8, MSub: 4,
		FitHidden:  16,
		NumSpecies: ns,
		Seed:       1,
	}
}

// paperSlotBudget estimates per-species neighbor slot counts from the
// species fractions, budgeting ~40 total slots.
func paperSlotBudget(sys *md.System, ns int) []int {
	return slotBudget(sys, ns, 40)
}

func tinySlotBudget(sys *md.System, ns int) []int {
	return slotBudget(sys, ns, 20)
}

func slotBudget(sys *md.System, ns, total int) []int {
	counts := make([]int, ns)
	for _, t := range sys.Types {
		counts[t]++
	}
	out := make([]int, ns)
	n := sys.NumAtoms()
	for i := range out {
		out[i] = total * counts[i] / n
		if out[i] < 2 {
			out[i] = 2
		}
	}
	return out
}
