package deepmd

import (
	"fmt"
	"sort"

	"fekf/internal/dataset"
	"fekf/internal/md"
	"fekf/internal/tensor"
)

// EnvEntry records one occupied neighbor slot and the derivative of its R̃
// row with respect to the displacement vector, the constant geometric data
// the force chain rule needs.
type EnvEntry struct {
	Row  int           // row index within R[t]
	I, J int           // center and neighbor atom indices (global over the batch)
	A    [4][3]float64 // ∂R̃[Row,c]/∂d_dim
}

// Env is the stacked environment-matrix input of a minibatch: B images of
// Na atoms each, with per-neighbor-type matrices R[t] of shape
// ((B·Na·Nm_t) × 4).  Entries[t] lists the occupied slots of R[t].
type Env struct {
	Cfg     Config
	B       int   // number of images
	NaPer   int   // atoms per image
	Types   []int // center species, length B·Na (image-major)
	R       []*tensor.Dense
	Entries [][]EnvEntry
	// TypeRows[c] lists the global atom rows having center species c, in
	// ascending order: the gather indices for the per-species fitting net.
	TypeRows [][]int
}

// NumAtoms returns the total atom count B·Na.
func (e *Env) NumAtoms() int { return e.B * e.NaPer }

// BuildEnv constructs the environment input for a batch of systems, which
// must share the species table and atom count (images of one dataset).
func BuildEnv(cfg Config, systems []*md.System) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(systems) == 0 {
		return nil, fmt.Errorf("deepmd: BuildEnv with no systems")
	}
	na := systems[0].NumAtoms()
	for k, s := range systems {
		if s.NumAtoms() != na {
			return nil, fmt.Errorf("deepmd: image %d has %d atoms, image 0 has %d", k, s.NumAtoms(), na)
		}
		if len(s.Species) != cfg.NumSpecies {
			return nil, fmt.Errorf("deepmd: image %d has %d species, config %d", k, len(s.Species), cfg.NumSpecies)
		}
	}
	b := len(systems)
	env := &Env{
		Cfg: cfg, B: b, NaPer: na,
		Types:    make([]int, 0, b*na),
		R:        make([]*tensor.Dense, cfg.NumSpecies),
		Entries:  make([][]EnvEntry, cfg.NumSpecies),
		TypeRows: make([][]int, cfg.NumSpecies),
	}
	for t := 0; t < cfg.NumSpecies; t++ {
		env.R[t] = tensor.New(b*na*cfg.MaxNeighbors[t], 4)
	}
	sc := md.SmoothCutoff{Rcs: cfg.Rcs, Rc: cfg.Rc}

	for ib, sys := range systems {
		nl := md.BuildNeighbors(sys, cfg.Rc)
		for i := 0; i < na; i++ {
			gi := ib*na + i // global atom row
			env.Types = append(env.Types, sys.Types[i])
			env.TypeRows[sys.Types[i]] = append(env.TypeRows[sys.Types[i]], gi)

			// bucket neighbors by species, nearest first
			byType := make([][]md.Neighbor, cfg.NumSpecies)
			for _, nb := range nl.Lists[i] {
				t := sys.Types[nb.J]
				byType[t] = append(byType[t], nb)
			}
			for t := range byType {
				sort.Slice(byType[t], func(a, b int) bool { return byType[t][a].R < byType[t][b].R })
				nm := cfg.MaxNeighbors[t]
				lst := byType[t]
				if len(lst) > nm {
					lst = lst[:nm]
				}
				base := gi * nm
				for slot, nb := range lst {
					s, ds := sc.Eval(nb.R)
					if s == 0 && ds == 0 {
						continue
					}
					row := base + slot
					r := nb.R
					ux, uy, uz := nb.Dx/r, nb.Dy/r, nb.Dz/r
					env.R[t].Set(row, 0, s)
					env.R[t].Set(row, 1, s*ux)
					env.R[t].Set(row, 2, s*uy)
					env.R[t].Set(row, 3, s*uz)

					var a [4][3]float64
					u := [3]float64{ux, uy, uz}
					d := [3]float64{nb.Dx, nb.Dy, nb.Dz}
					for dim := 0; dim < 3; dim++ {
						a[0][dim] = ds * u[dim]
					}
					for c := 0; c < 3; c++ {
						for dim := 0; dim < 3; dim++ {
							v := ds * u[dim] * u[c]
							if c == dim {
								v += s / r
							}
							v -= s * d[c] * d[dim] / (r * r * r)
							a[1+c][dim] = v
						}
					}
					env.Entries[t] = append(env.Entries[t], EnvEntry{
						Row: row, I: gi, J: ib*na + nb.J, A: a,
					})
				}
			}
		}
	}
	return env, nil
}

// SnapshotSystem wraps a dataset snapshot as an md.System for BuildEnv.
func SnapshotSystem(ds *dataset.Dataset, snap *dataset.Snapshot) *md.System {
	return &md.System{
		Box:     snap.Box,
		Pos:     snap.Pos,
		Types:   snap.Types,
		Species: ds.Species,
	}
}

// BuildBatchEnv builds the environment input for the dataset snapshots
// selected by idx.
func BuildBatchEnv(cfg Config, ds *dataset.Dataset, idx []int) (*Env, error) {
	systems := make([]*md.System, len(idx))
	for k, i := range idx {
		systems[k] = SnapshotSystem(ds, &ds.Snapshots[i])
	}
	return BuildEnv(cfg, systems)
}
