package deepmd

import (
	"fmt"
	"math"
	"math/rand"

	"fekf/internal/autodiff"
	"fekf/internal/dataset"
	"fekf/internal/device"
	"fekf/internal/nn"
	"fekf/internal/tensor"
)

// Model is a Deep Potential network: per-neighbor-species embedding nets
// (E0 + two residual layers), the symmetry-preserving descriptor, and a
// per-center-species fitting net (F0 + two residual layers + linear F3).
type Model struct {
	Cfg    Config
	Params *nn.ParamSet
	Level  OptLevel
	Dev    *device.Device

	// SNorm scales the environment matrix per neighbor species so the
	// descriptor is O(1); it plays the role of DeePMD-kit's dstd.
	SNorm []float64

	embed [][3]nn.Dense // per neighbor type
	fit   [][4]nn.Dense // per center type
}

// NewModel builds a model with Xavier-initialized weights.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:    cfg,
		Params: &nn.ParamSet{},
		Dev:    device.Default,
		SNorm:  make([]float64, cfg.NumSpecies),
	}
	for t := range m.SNorm {
		m.SNorm[t] = 1
	}
	for t := 0; t < cfg.NumSpecies; t++ {
		m.embed = append(m.embed, [3]nn.Dense{
			nn.NewDense(m.Params, fmt.Sprintf("embed%d/0", t), 1, cfg.M, rng),
			nn.NewDense(m.Params, fmt.Sprintf("embed%d/1", t), cfg.M, cfg.M, rng),
			nn.NewDense(m.Params, fmt.Sprintf("embed%d/2", t), cfg.M, cfg.M, rng),
		})
	}
	in := cfg.M * cfg.MSub
	for c := 0; c < cfg.NumSpecies; c++ {
		layers := [4]nn.Dense{
			nn.NewDense(m.Params, fmt.Sprintf("fit%d/0", c), in, cfg.FitHidden, rng),
			nn.NewDense(m.Params, fmt.Sprintf("fit%d/1", c), cfg.FitHidden, cfg.FitHidden, rng),
			nn.NewDense(m.Params, fmt.Sprintf("fit%d/2", c), cfg.FitHidden, cfg.FitHidden, rng),
			nn.NewDense(m.Params, fmt.Sprintf("fit%d/3", c), cfg.FitHidden, 1, rng),
		}
		// shrink the energy head so initial predictions sit near the bias
		for i := range layers[3].W.Data {
			layers[3].W.Data[i] *= 0.1
		}
		m.fit = append(m.fit, layers)
	}
	return m, nil
}

// NumParams returns the number of trainable parameters.
func (m *Model) NumParams() int { return m.Params.NumParams() }

// CloneFor returns a replica of the model (weights, normalization,
// optimization level) bound to another device — one rank of a
// data-parallel trainer.
func (m *Model) CloneFor(dev *device.Device) *Model {
	c, err := NewModel(m.Cfg)
	if err != nil {
		panic(err) // m.Cfg was already validated
	}
	c.Params.CopyFrom(m.Params)
	copy(c.SNorm, m.SNorm)
	c.Level = m.Level
	c.Dev = dev
	return c
}

// Clone returns a deep copy of the model on the same device — the
// copy-on-write snapshot the online trainer publishes so concurrent
// prediction readers never observe a mid-update weight set.
func (m *Model) Clone() *Model { return m.CloneFor(m.Dev) }

// InitFromDataset sets the environment normalization (the s(r) RMS per
// neighbor species) and the per-atom energy bias from training data, the
// equivalent of DeePMD-kit's data statistics pass.
func (m *Model) InitFromDataset(ds *dataset.Dataset) error {
	n := ds.Len()
	if n == 0 {
		return fmt.Errorf("deepmd: InitFromDataset with empty dataset")
	}
	if n > 8 {
		n = 8
	}
	sum := make([]float64, m.Cfg.NumSpecies)
	cnt := make([]float64, m.Cfg.NumSpecies)
	for k := 0; k < n; k++ {
		env, err := BuildBatchEnv(m.Cfg, ds, []int{k})
		if err != nil {
			return err
		}
		for t, r := range env.R {
			for _, e := range env.Entries[t] {
				s := r.At(e.Row, 0)
				sum[t] += s * s
				cnt[t]++
			}
		}
	}
	for t := range sum {
		if cnt[t] > 0 && sum[t] > 0 {
			m.SNorm[t] = math.Sqrt(sum[t] / cnt[t])
		}
	}
	// energy bias: mean per-atom label energy into every fitting net's
	// final bias, so training starts near the right absolute energy.
	mean, _ := ds.EnergyStats()
	for c := range m.fit {
		m.fit[c][3].B.Fill(mean)
	}
	return nil
}

// boundParams is the per-graph binding of the model parameters.
type boundParams struct {
	all   []*autodiff.Var // aligned with Params registration order
	embed [][3][2]*autodiff.Var
	fit   [][4][2]*autodiff.Var
}

func (m *Model) bind(g *autodiff.Graph) *boundParams {
	bp := &boundParams{}
	for t := range m.embed {
		var lv [3][2]*autodiff.Var
		for l := 0; l < 3; l++ {
			lv[l][0] = g.Param(m.embed[t][l].W)
			lv[l][1] = g.Param(m.embed[t][l].B)
			bp.all = append(bp.all, lv[l][0], lv[l][1])
		}
		bp.embed = append(bp.embed, lv)
	}
	for c := range m.fit {
		var lv [4][2]*autodiff.Var
		for l := 0; l < 4; l++ {
			lv[l][0] = g.Param(m.fit[c][l].W)
			lv[l][1] = g.Param(m.fit[c][l].B)
			bp.all = append(bp.all, lv[l][0], lv[l][1])
		}
		bp.fit = append(bp.fit, lv)
	}
	return bp
}

// Output is the result of one forward (and optionally force) pass.
type Output struct {
	Graph *autodiff.Graph
	// Energies is the per-image total energy, B×1.
	Energies *autodiff.Var
	// Forces is the stacked per-atom force prediction, (3·B·Na)×1,
	// image-major then atom-major then x,y,z; nil unless requested.
	Forces *autodiff.Var
	// ParamVars are the bound parameter nodes aligned with
	// Model.Params registration order (the Grad targets).
	ParamVars []*autodiff.Var

	env *Env
	bp  *boundParams
}

// Forward runs the model on a batch environment.  withForces selects
// whether the force prediction graph is built (via the autograd or manual
// path according to the model's optimization level).
func (m *Model) Forward(env *Env, withForces bool) *Output {
	g := autodiff.NewGraph(m.Dev)
	g.Fused = m.Level >= OptFused
	bp := m.bind(g)
	cfg := m.Cfg
	nAtoms := env.NumAtoms()

	prev := m.Dev.SetPhase(device.PhaseForward)
	defer m.Dev.SetPhase(prev)

	// embedding per neighbor species
	rVars := make([]*autodiff.Var, cfg.NumSpecies)
	gOut := make([]*autodiff.Var, cfg.NumSpecies)
	var x *autodiff.Var
	for t := 0; t < cfg.NumSpecies; t++ {
		rt := g.Leaf(scaleEnv(env.R[t], m.SNorm[t]), true)
		rVars[t] = rt
		s := g.SliceCols(rt, 0, 1)
		h := g.AffineTanh(s, bp.embed[t][0][0], bp.embed[t][0][1])
		h = g.ResidualAffineTanh(h, bp.embed[t][1][0], bp.embed[t][1][1])
		h = g.ResidualAffineTanh(h, bp.embed[t][2][0], bp.embed[t][2][1])
		gOut[t] = h
		// Per atom: R̃ᵀG, stacked to (B·Na·4)×M.  The baseline level
		// mirrors the framework's fragmented dispatch with one small
		// kernel per atom; the optimized levels use one batched kernel
		// (the cuBLAS-batched-GEMM of real implementations).
		var xt *autodiff.Var
		if m.Level == OptBaseline {
			xt = m.perImageMatMulTA(g, rt, h, env, cfg.MaxNeighbors[t])
		} else {
			xt = g.BMatMulTA(rt, h, nAtoms)
		}
		if x == nil {
			x = xt
		} else {
			x = g.Add(x, xt)
		}
	}
	x = g.Scale(1/float64(cfg.TotalSlots()), x)
	xs := g.SliceCols(x, 0, cfg.MSub)
	d := g.BMatMulTA(x, xs, nAtoms) // per atom: D = XᵀX<, (B·Na·M)×MSub
	dFlat := g.Reshape(d, nAtoms, cfg.M*cfg.MSub)

	// fitting per center species
	var eAtoms *autodiff.Var
	for c := 0; c < cfg.NumSpecies; c++ {
		rows := env.TypeRows[c]
		if len(rows) == 0 {
			continue
		}
		dc := g.GatherRows(dFlat, rows)
		h := g.AffineTanh(dc, bp.fit[c][0][0], bp.fit[c][0][1])
		h = g.ResidualAffineTanh(h, bp.fit[c][1][0], bp.fit[c][1][1])
		h = g.ResidualAffineTanh(h, bp.fit[c][2][0], bp.fit[c][2][1])
		ec := g.Affine(h, bp.fit[c][3][0], bp.fit[c][3][1])
		sc := g.ScatterRows(ec, rows, nAtoms)
		if eAtoms == nil {
			eAtoms = sc
		} else {
			eAtoms = g.Add(eAtoms, sc)
		}
	}
	energies := g.BlockSum(eAtoms, env.NaPer)

	out := &Output{
		Graph:     g,
		Energies:  energies,
		ParamVars: bp.all,
		env:       env,
		bp:        bp,
	}
	if withForces {
		prevP := m.Dev.SetPhase(device.PhaseForward)
		if m.Level >= OptManualForce {
			out.Forces = m.manualForces(g, env, energies, x, xs, d, dFlat, rVars, gOut)
		} else {
			out.Forces = m.autogradForces(g, env, energies, rVars)
		}
		m.Dev.SetPhase(prevP)
	}
	return out
}

// perImageMatMulTA computes the same per-atom block products as BMatMulTA
// but dispatches one slice + one batched GEMM per *image*, reproducing the
// framework baseline's kernel fragmentation (Section 3.4's motivation:
// "a lot of fragmented kernels being launched by using Autograd API" —
// frameworks batch within a frame but re-dispatch the descriptor chain per
// frame, and every extra forward op multiplies through the backward and
// double-backward force passes).
func (m *Model) perImageMatMulTA(g *autodiff.Graph, a, b *autodiff.Var, env *Env, slotsPer int) *autodiff.Var {
	rowsPer := env.NaPer * slotsPer
	parts := make([]*autodiff.Var, env.B)
	for i := 0; i < env.B; i++ {
		ra := g.SliceRows(a, i*rowsPer, (i+1)*rowsPer)
		rb := g.SliceRows(b, i*rowsPer, (i+1)*rowsPer)
		parts[i] = g.BMatMulTA(ra, rb, env.NaPer)
	}
	return g.ConcatRows(parts...)
}

// scaleEnv returns env matrix r divided by the normalization norm (copy;
// the raw env is preserved for reuse across models).
func scaleEnv(r *tensor.Dense, norm float64) *tensor.Dense {
	if norm == 1 {
		return r
	}
	return tensor.Scale(1/norm, r)
}

// EnergyGrad returns d(Σ_b seed_b·E_b)/dparams as a flat vector; seed nil
// means all ones.  Used by the optimizers' energy updates.
func (m *Model) EnergyGrad(out *Output, seed *tensor.Dense) []float64 {
	prev := m.Dev.SetPhase(device.PhaseGradient)
	defer m.Dev.SetPhase(prev)
	var seeds []*tensor.Dense
	if seed != nil {
		seeds = []*tensor.Dense{seed}
	}
	grads := autodiff.Grad([]*autodiff.Var{out.Energies}, seeds, out.ParamVars)
	return m.flatten(grads)
}

// ForceGrad returns d(Σ seedᵢ·Fᵢ)/dparams as a flat vector; out must have
// been built with forces.
func (m *Model) ForceGrad(out *Output, seed *tensor.Dense) []float64 {
	if out.Forces == nil {
		panic("deepmd: ForceGrad without force graph")
	}
	prev := m.Dev.SetPhase(device.PhaseGradient)
	defer m.Dev.SetPhase(prev)
	var seeds []*tensor.Dense
	if seed != nil {
		seeds = []*tensor.Dense{seed}
	}
	grads := autodiff.Grad([]*autodiff.Var{out.Forces}, seeds, out.ParamVars)
	return m.flatten(grads)
}

// LossGrad returns d(loss)/dparams as a flat vector, where loss is a
// scalar node of out's graph (e.g. from LossGraph).  Used by Adam.
func (m *Model) LossGrad(out *Output, loss *autodiff.Var) []float64 {
	prev := m.Dev.SetPhase(device.PhaseGradient)
	defer m.Dev.SetPhase(prev)
	grads := autodiff.GradScalar(loss, out.ParamVars)
	return m.flatten(grads)
}

func (m *Model) flatten(grads []*autodiff.Var) []float64 {
	ts := make([]*tensor.Dense, len(grads))
	for i, gv := range grads {
		ts[i] = gv.Value
	}
	return m.Params.FlattenAligned(ts)
}
