package deepmd

import (
	"fekf/internal/autodiff"
	"fekf/internal/tensor"
)

// This file holds the two force paths of Section 3.4.
//
// Atomic forces are F_k = −∇_{r_k} E_tot.  E depends on the coordinates
// only through the environment matrices R̃_t, so
//
//	F = −(∂E/∂R̃) · (∂R̃/∂r)
//
// The second factor is the constant geometric table stored in Env.Entries
// (the "prod_force" custom op of real DeePMD implementations, here
// geomContract).  The paths differ in how ∂E/∂R̃ is produced:
//
//   - autogradForces: one generic reverse sweep over the whole graph, the
//     framework-Autograd baseline with its many fragmented kernels.
//   - manualForces (Opt1): dE/dD via a bounded reverse sweep over the
//     fitting net only, then the hand-derived Eq. 4 of the paper as one
//     fused kernel (symOpBwd), then two batched GEMMs and a bounded sweep
//     through the embedding net.
//
// Both paths build ∂E/∂R̃ out of differentiable nodes, so the optimizers
// can take derivatives of the force predictions with respect to the
// weights (double backprop), which force-measurement Kalman updates need.

// autogradForces derives ∂E/∂R̃ by a full generic reverse sweep.
func (m *Model) autogradForces(g *autodiff.Graph, env *Env, energies *autodiff.Var, rVars []*autodiff.Var) *autodiff.Var {
	dER := autodiff.Grad([]*autodiff.Var{energies}, nil, rVars)
	return m.geomContract(g, env, dER)
}

// manualForces derives ∂E/∂R̃ with the hand-written kernels of Opt1.
func (m *Model) manualForces(g *autodiff.Graph, env *Env, energies *autodiff.Var,
	x, xs, d, dFlat *autodiff.Var, rVars, gOut []*autodiff.Var) *autodiff.Var {

	nAtoms := env.NumAtoms()
	cfg := m.Cfg

	// dE/dD through the fitting net only (bounded sweep).
	dEDFlat := autodiff.GradTo([]*autodiff.Var{energies}, nil, []*autodiff.Var{dFlat})[0]
	dED := g.Reshape(dEDFlat, nAtoms*cfg.M, cfg.MSub)

	// Eq. 4, fused: dE/dX = X<·(dE/dD)ᵀ + pad(X·(dE/dD)).
	dEX := m.symOpBwd(g, x, xs, dED, nAtoms)
	// chain through the 1/N_m scaling of X
	dEX = g.Scale(1/float64(cfg.TotalSlots()), dEX)

	dER := make([]*autodiff.Var, cfg.NumSpecies)
	for t := 0; t < cfg.NumSpecies; t++ {
		// direct route: dE/dR̃ = G·(dE/dX)ᵀ per atom block
		direct := g.BMatMulTB(gOut[t], dEX, nAtoms)
		// embedding route: seed dE/dG into a bounded sweep over the
		// embedding net, which lands on the s column of R̃.
		dEG := g.BMatMul(rVars[t], dEX, nAtoms)
		embed := autodiff.GradTo([]*autodiff.Var{gOut[t]}, []*autodiff.Var{dEG}, []*autodiff.Var{rVars[t]})[0]
		dER[t] = g.Add(direct, embed)
	}
	return m.geomContract(g, env, dER)
}

// symOpBwd is the fused hand-derived derivative of the symmetry-preserving
// operation D = XᵀX< (Eq. 4 of the paper), one kernel instead of the 3-4
// the generic backward launches.  Its own backward is expressed with
// batched primitives so it remains doubly differentiable.
func (m *Model) symOpBwd(g *autodiff.Graph, x, xs, dED *autodiff.Var, batch int) *autodiff.Var {
	msub := m.Cfg.MSub
	mm := m.Cfg.M
	// forward, computed in one pass
	term1 := tensor.BatchedMatMulTB(xs.Value, dED.Value, batch) // X<·Ĝᵀ: (B·4)×M
	term2 := tensor.BatchedMatMul(x.Value, dED.Value, batch)    // X·Ĝ:  (B·4)×MSub
	out := term1
	tensor.AccumulateCols(out, 0, term2)
	flops := 2 * int64(x.Rows()) * int64(mm) * int64(msub) * 2
	return g.Custom("sym_op_bwd", out, flops, []*autodiff.Var{x, xs, dED},
		func(h *autodiff.Var) []*autodiff.Var {
			hSub := g.SliceCols(h, 0, msub)
			dX := g.BMatMulTB(hSub, dED, batch)
			dXs := g.BMatMul(h, dED, batch)
			dG := g.Add(g.BMatMulTA(h, xs, batch), g.BMatMulTA(x, hSub, batch))
			return []*autodiff.Var{dX, dXs, dG}
		})
}

// contractFwdType applies the geometric chain rule for one neighbor
// species: given ∂E/∂R̃_t (rows×4), accumulate −∂E/∂r into out (3N×1).
func contractFwdType(env *Env, t int, in *tensor.Dense, norm float64, out *tensor.Dense) {
	inv := 1 / norm
	for _, e := range env.Entries[t] {
		row := in.Data[e.Row*4 : e.Row*4+4]
		for dim := 0; dim < 3; dim++ {
			dEdd := inv * (row[0]*e.A[0][dim] + row[1]*e.A[1][dim] +
				row[2]*e.A[2][dim] + row[3]*e.A[3][dim])
			out.Data[3*e.I+dim] += dEdd
			out.Data[3*e.J+dim] -= dEdd
		}
	}
}

// contractBwdType is the adjoint of contractFwdType: given a gradient h
// over the force vector, produce the gradient over ∂E/∂R̃_t.
func contractBwdType(env *Env, t int, h *tensor.Dense, norm float64, rows int) *tensor.Dense {
	out := tensor.New(rows, 4)
	inv := 1 / norm
	for _, e := range env.Entries[t] {
		dst := out.Data[e.Row*4 : e.Row*4+4]
		for dim := 0; dim < 3; dim++ {
			hv := inv * (h.Data[3*e.I+dim] - h.Data[3*e.J+dim])
			dst[0] += e.A[0][dim] * hv
			dst[1] += e.A[1][dim] * hv
			dst[2] += e.A[2][dim] * hv
			dst[3] += e.A[3][dim] * hv
		}
	}
	return out
}

// geomContract is the prod_force custom op: it maps the per-type ∂E/∂R̃
// nodes to the (3·B·Na)×1 force prediction.  The op is linear; forward and
// adjoint reference each other in their backward closures, so the pair is
// differentiable to any order.
func (m *Model) geomContract(g *autodiff.Graph, env *Env, dER []*autodiff.Var) *autodiff.Var {
	n := env.NumAtoms()
	out := tensor.New(3*n, 1)
	var flops int64
	for t, v := range dER {
		contractFwdType(env, t, v.Value, m.SNorm[t], out)
		flops += int64(len(env.Entries[t])) * 24
	}
	return g.Custom("prod_force", out, flops, dER, func(h *autodiff.Var) []*autodiff.Var {
		res := make([]*autodiff.Var, len(dER))
		for t := range dER {
			res[t] = m.geomContractT(g, env, t, dER[t].Rows(), h)
		}
		return res
	})
}

// geomContractT is the adjoint op of geomContract for one neighbor type.
func (m *Model) geomContractT(g *autodiff.Graph, env *Env, t, rows int, h *autodiff.Var) *autodiff.Var {
	out := contractBwdType(env, t, h.Value, m.SNorm[t], rows)
	flops := int64(len(env.Entries[t])) * 24
	return g.Custom("prod_force_grad", out, flops, []*autodiff.Var{h},
		func(k *autodiff.Var) []*autodiff.Var {
			n := env.NumAtoms()
			fw := tensor.New(3*n, 1)
			contractFwdType(env, t, k.Value, m.SNorm[t], fw)
			node := g.Custom("prod_force", fw, flops, []*autodiff.Var{k},
				func(h2 *autodiff.Var) []*autodiff.Var {
					return []*autodiff.Var{m.geomContractT(g, env, t, rows, h2)}
				})
			return []*autodiff.Var{node}
		})
}
