package deepmd

import (
	"encoding/gob"
	"fmt"
	"os"

	"fekf/internal/tensor"
)

// checkpoint is the on-disk form of a model: the configuration, the
// environment normalization, and every parameter tensor in registration
// order.
type checkpoint struct {
	Cfg    Config
	SNorm  []float64
	Level  OptLevel
	Shapes [][2]int
	Values [][]float64
}

// Save writes the model weights and configuration to path (gob encoding).
func (m *Model) Save(path string) error {
	ck := checkpoint{
		Cfg:   m.Cfg,
		SNorm: append([]float64(nil), m.SNorm...),
		Level: m.Level,
	}
	for _, t := range m.Params.Tensors() {
		ck.Shapes = append(ck.Shapes, [2]int{t.Rows, t.Cols})
		ck.Values = append(ck.Values, append([]float64(nil), t.Data...))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		return fmt.Errorf("deepmd: encode checkpoint %s: %w", path, err)
	}
	return nil
}

// Load reads a model checkpoint written by Save and reconstructs the
// model (on the default device; set Dev afterwards for placement).
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ck checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("deepmd: decode checkpoint %s: %w", path, err)
	}
	m, err := NewModel(ck.Cfg)
	if err != nil {
		return nil, err
	}
	ts := m.Params.Tensors()
	if len(ts) != len(ck.Values) {
		return nil, fmt.Errorf("deepmd: checkpoint has %d tensors, model %d", len(ck.Values), len(ts))
	}
	for i, t := range ts {
		if t.Rows != ck.Shapes[i][0] || t.Cols != ck.Shapes[i][1] {
			return nil, fmt.Errorf("deepmd: checkpoint tensor %d is %dx%d, model wants %dx%d",
				i, ck.Shapes[i][0], ck.Shapes[i][1], t.Rows, t.Cols)
		}
		t.CopyFrom(tensor.FromSlice(t.Rows, t.Cols, ck.Values[i]))
	}
	copy(m.SNorm, ck.SNorm)
	m.Level = ck.Level
	return m, nil
}
