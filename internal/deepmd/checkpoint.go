package deepmd

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fekf/internal/tensor"
)

// checkpoint is the on-disk form of a model: the configuration, the
// environment normalization, and every parameter tensor in registration
// order.
type checkpoint struct {
	Cfg    Config
	SNorm  []float64
	Level  OptLevel
	Shapes [][2]int
	Values [][]float64
}

// EncodeTo writes the model weights and configuration to w (gob encoding);
// the stream is what Save persists and what the online trainer embeds in
// its combined checkpoints.
func (m *Model) EncodeTo(w io.Writer) error {
	ck := checkpoint{
		Cfg:   m.Cfg,
		SNorm: append([]float64(nil), m.SNorm...),
		Level: m.Level,
	}
	for _, t := range m.Params.Tensors() {
		ck.Shapes = append(ck.Shapes, [2]int{t.Rows, t.Cols})
		ck.Values = append(ck.Values, append([]float64(nil), t.Data...))
	}
	if err := gob.NewEncoder(w).Encode(&ck); err != nil {
		return fmt.Errorf("deepmd: encode checkpoint: %w", err)
	}
	return nil
}

// DecodeModel reads a model checkpoint stream written by EncodeTo and
// reconstructs the model (on the default device; set Dev afterwards for
// placement).  The stream is validated structurally — tensor count, shape
// list length, per-tensor shapes and normalization length must all match
// the model the stored configuration builds — so a truncated or corrupted
// checkpoint fails loudly instead of yielding a silently mangled model.
func DecodeModel(r io.Reader) (*Model, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("deepmd: decode checkpoint: %w", err)
	}
	if len(ck.Shapes) != len(ck.Values) {
		return nil, fmt.Errorf("deepmd: checkpoint has %d shapes for %d value tensors", len(ck.Shapes), len(ck.Values))
	}
	m, err := NewModel(ck.Cfg)
	if err != nil {
		return nil, err
	}
	ts := m.Params.Tensors()
	if len(ts) != len(ck.Values) {
		return nil, fmt.Errorf("deepmd: checkpoint has %d tensors, model %d", len(ck.Values), len(ts))
	}
	if len(ck.SNorm) != len(m.SNorm) {
		return nil, fmt.Errorf("deepmd: checkpoint has %d normalization entries, model %d", len(ck.SNorm), len(m.SNorm))
	}
	for i, t := range ts {
		if t.Rows != ck.Shapes[i][0] || t.Cols != ck.Shapes[i][1] {
			return nil, fmt.Errorf("deepmd: checkpoint tensor %d is %dx%d, model wants %dx%d",
				i, ck.Shapes[i][0], ck.Shapes[i][1], t.Rows, t.Cols)
		}
		if len(ck.Values[i]) != t.Len() {
			return nil, fmt.Errorf("deepmd: checkpoint tensor %d holds %d values, want %d",
				i, len(ck.Values[i]), t.Len())
		}
		t.CopyFrom(tensor.FromSlice(t.Rows, t.Cols, ck.Values[i]))
	}
	copy(m.SNorm, ck.SNorm)
	m.Level = ck.Level
	return m, nil
}

// Save writes the model checkpoint to path crash-safely: the stream goes
// to a temporary file in the target directory, is fsynced, and is then
// atomically renamed over path, so a crash mid-write can never leave a
// truncated checkpoint under the final name.
func (m *Model) Save(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := m.EncodeTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("deepmd: write checkpoint %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("deepmd: sync checkpoint %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("deepmd: close checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads a model checkpoint written by Save.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := DecodeModel(f)
	if err != nil {
		return nil, fmt.Errorf("deepmd: %s: %w", path, err)
	}
	return m, nil
}
