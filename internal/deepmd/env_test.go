package deepmd

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"fekf/internal/md"
)

// TestEnvGeometricDerivatives checks the per-entry ∂R̃/∂d tables against
// finite differences of the actual R̃ rows under atom displacement — the
// constant data the prod_force chain rule consumes.
func TestEnvGeometricDerivatives(t *testing.T) {
	ds := testData(t, "Cu", 1)
	sys := SnapshotSystem(ds, &ds.Snapshots[0])
	cfg := TinyConfig(sys)
	env, err := BuildEnv(cfg, []*md.System{sys})
	if err != nil {
		t.Fatal(err)
	}

	// pick a handful of entries; displace the NEIGHBOR atom and compare
	// the row change against A·Δd.  Use entries where i != j to avoid
	// self-image cancellation.
	const h = 1e-6
	checked := 0
	for _, e := range env.Entries[0] {
		if e.I == e.J || checked >= 6 {
			continue
		}
		checked++
		for dim := 0; dim < 3; dim++ {
			// displace neighbor by +h along dim
			sys.Pos[3*e.J+dim] += h
			envP, err := BuildEnv(cfg, []*md.System{sys})
			if err != nil {
				t.Fatal(err)
			}
			sys.Pos[3*e.J+dim] -= 2 * h
			envM, err := BuildEnv(cfg, []*md.System{sys})
			if err != nil {
				t.Fatal(err)
			}
			sys.Pos[3*e.J+dim] += h

			for c := 0; c < 4; c++ {
				num := (envP.R[0].At(e.Row, c) - envM.R[0].At(e.Row, c)) / (2 * h)
				if math.Abs(num-e.A[c][dim]) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("entry row %d: dR[%d]/dd[%d] = %v, numeric %v",
						e.Row, c, dim, e.A[c][dim], num)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no entries checked")
	}
}

// TestEnvDeterministic: building the same system twice gives identical
// matrices (slot assignment must be stable).
func TestEnvDeterministic(t *testing.T) {
	ds := testData(t, "Cu", 1)
	sys := SnapshotSystem(ds, &ds.Snapshots[0])
	cfg := TinyConfig(sys)
	e1, err := BuildEnv(cfg, []*md.System{sys})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := BuildEnv(cfg, []*md.System{sys})
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1.R[0].Data {
		if e1.R[0].Data[i] != e2.R[0].Data[i] {
			t.Fatal("environment build not deterministic")
		}
	}
	if len(e1.Entries[0]) != len(e2.Entries[0]) {
		t.Fatal("entry lists differ")
	}
}

// TestEnvBatchIsPerImageBlockwise: a two-image batch must embed each
// image's single-image environment in its block.
func TestEnvBatchIsPerImageBlockwise(t *testing.T) {
	ds := testData(t, "Cu", 2)
	cfg := TinyConfig(SnapshotSystem(ds, &ds.Snapshots[0]))
	batch, err := BuildBatchEnv(cfg, ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		single, err := BuildBatchEnv(cfg, ds, []int{k})
		if err != nil {
			t.Fatal(err)
		}
		nm := cfg.MaxNeighbors[0]
		na := single.NaPer
		off := k * na * nm * 4
		for i, v := range single.R[0].Data {
			if batch.R[0].Data[off+i] != v {
				t.Fatalf("image %d: batch env differs from single env at %d", k, i)
			}
		}
	}
	if got := len(batch.TypeRows[0]); got != 2*batch.NaPer {
		t.Fatalf("type rows = %d", got)
	}
}

// TestPotentialAdapterMatchesForward: the NNMD adapter must agree with a
// direct model evaluation.
func TestPotentialAdapterMatchesForward(t *testing.T) {
	ds := testData(t, "Cu", 1)
	m := testModel(t, ds, OptAll)
	sys := SnapshotSystem(ds, &ds.Snapshots[0])

	ad := PotentialAdapter{M: m}
	e, f := ad.Compute(sys, nil)

	env, err := BuildEnv(m.Cfg, []*md.System{sys})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Forward(env, true)
	if math.Abs(e-out.Energies.Value.Data[0]) > 1e-12 {
		t.Fatalf("adapter E %v vs forward %v", e, out.Energies.Value.Data[0])
	}
	for i := range f {
		if math.Abs(f[i]-out.Forces.Value.Data[i]) > 1e-12 {
			t.Fatal("adapter forces differ")
		}
	}
	if ad.Cutoff() != m.Cfg.Rc {
		t.Fatal("adapter cutoff")
	}
}

// TestNNMDDrivesStableMD: a freshly initialized (untrained but bias-
// corrected) model must drive a short MD run without NaNs — the inference
// path the training pipeline serves.
func TestNNMDDrivesStableMD(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptAll)
	spec, err := md.GetSystem("Cu")
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := spec.TinyBuild()
	rng := newTestRng()
	sys.InitVelocities(300, rng)
	lg := md.NewLangevin(PotentialAdapter{M: m}, 1.0, 300, rng)
	lg.Run(sys, 10, 0, nil)
	for _, v := range sys.Pos {
		if math.IsNaN(v) {
			t.Fatal("NNMD produced NaN positions")
		}
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(99)) }

func TestCheckpointRoundTrip(t *testing.T) {
	ds := testData(t, "Cu", 2)
	m := testModel(t, ds, OptFused)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != m.NumParams() || got.Level != m.Level {
		t.Fatal("checkpoint lost structure")
	}
	if got.SNorm[0] != m.SNorm[0] {
		t.Fatal("checkpoint lost normalization")
	}
	// identical predictions
	env, err := BuildBatchEnv(m.Cfg, ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	got.Dev = m.Dev
	e1 := m.Forward(env, false).Energies.Value.Data[0]
	e2 := got.Forward(env, false).Energies.Value.Data[0]
	if e1 != e2 {
		t.Fatalf("checkpointed model predicts %v, original %v", e2, e1)
	}
}

func TestLoadMissingCheckpoint(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("expected error")
	}
}
