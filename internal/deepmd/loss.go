package deepmd

import (
	"math"

	"fekf/internal/autodiff"
	"fekf/internal/dataset"
	"fekf/internal/tensor"
)

// Labels packs the reference values of one minibatch.
type Labels struct {
	Energy *tensor.Dense // B×1 total energies
	Force  *tensor.Dense // (3·B·Na)×1 stacked forces
	NaPer  int
}

// BatchLabels extracts the labels of the selected snapshots.
func BatchLabels(ds *dataset.Dataset, idx []int) *Labels {
	b := len(idx)
	na := ds.Snapshots[idx[0]].NumAtoms()
	e := tensor.New(b, 1)
	f := tensor.New(3*b*na, 1)
	for k, i := range idx {
		snap := &ds.Snapshots[i]
		e.Data[k] = snap.Energy
		copy(f.Data[3*k*na:3*(k+1)*na], snap.Forces)
	}
	return &Labels{Energy: e, Force: f, NaPer: na}
}

// LossWeights are the energy/force loss prefactors of the DeePMD loss
//
//	L = pe·⟨(ΔE/Na)²⟩ + pf·⟨|ΔF|²⟩/3Na
type LossWeights struct {
	Energy float64
	Force  float64
}

// DefaultLossWeights balances the two terms near convergence: per-atom
// energy residuals are roughly an order of magnitude below force-component
// residuals for these systems, so the energy term carries the extra weight
// (DeePMD-kit reaches a similar balance through its pref_e/pref_f
// schedule).
func DefaultLossWeights() LossWeights { return LossWeights{Energy: 100, Force: 1} }

// LossGraph builds the scalar training loss node for an output with
// forces; it is the objective the Adam baseline minimizes.
func LossGraph(out *Output, lab *Labels, w LossWeights) *autodiff.Var {
	g := out.Graph
	b := float64(out.Energies.Rows())
	na := float64(lab.NaPer)

	de := g.Sub(out.Energies, g.Const(lab.Energy))
	lossE := g.Scale(w.Energy/(b*na*na), g.Sum(g.Square(de)))

	df := g.Sub(out.Forces, g.Const(lab.Force))
	lossF := g.Scale(w.Force/(b*3*na), g.Sum(g.Square(df)))
	return g.Add(lossE, lossF)
}

// Metrics summarizes prediction error on a batch.
type Metrics struct {
	EnergyRMSE        float64 // RMSE of total energy per image, eV
	EnergyPerAtomRMSE float64 // RMSE of E/Na, eV/atom
	ForceRMSE         float64 // RMSE of force components, eV/Å
}

// Combined returns the scalar the paper's convergence criteria use: the
// summation of energy and force RMSE.
func (m Metrics) Combined() float64 { return m.EnergyRMSE + m.ForceRMSE }

// EvalBatch computes prediction metrics for an output against labels.
func EvalBatch(out *Output, lab *Labels) Metrics {
	var me, mf float64
	b := out.Energies.Rows()
	for i := 0; i < b; i++ {
		d := out.Energies.Value.Data[i] - lab.Energy.Data[i]
		me += d * d
	}
	me /= float64(b)
	na := float64(lab.NaPer)
	nf := out.Forces.Value.Len()
	for i := 0; i < nf; i++ {
		d := out.Forces.Value.Data[i] - lab.Force.Data[i]
		mf += d * d
	}
	mf /= float64(nf)
	return Metrics{
		EnergyRMSE:        math.Sqrt(me),
		EnergyPerAtomRMSE: math.Sqrt(me) / na,
		ForceRMSE:         math.Sqrt(mf),
	}
}

// Evaluate runs the model over a whole dataset in chunks and returns
// aggregate metrics; used for train/test RMSE reporting (Table 4).
func (m *Model) Evaluate(ds *dataset.Dataset, chunk int) (Metrics, error) {
	if chunk < 1 {
		chunk = 8
	}
	var sumE, sumEA, sumF float64
	var nImg, nF int
	for lo := 0; lo < ds.Len(); lo += chunk {
		hi := lo + chunk
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		env, err := BuildBatchEnv(m.Cfg, ds, idx)
		if err != nil {
			return Metrics{}, err
		}
		out := m.Forward(env, true)
		lab := BatchLabels(ds, idx)
		for i := 0; i < len(idx); i++ {
			d := out.Energies.Value.Data[i] - lab.Energy.Data[i]
			sumE += d * d
			sumEA += d * d / (float64(lab.NaPer) * float64(lab.NaPer))
		}
		for i := 0; i < out.Forces.Value.Len(); i++ {
			d := out.Forces.Value.Data[i] - lab.Force.Data[i]
			sumF += d * d
		}
		nImg += len(idx)
		nF += out.Forces.Value.Len()
		out.Graph.Release()
	}
	return Metrics{
		EnergyRMSE:        math.Sqrt(sumE / float64(nImg)),
		EnergyPerAtomRMSE: math.Sqrt(sumEA / float64(nImg)),
		ForceRMSE:         math.Sqrt(sumF / float64(nF)),
	}, nil
}
