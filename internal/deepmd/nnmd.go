package deepmd

import "fekf/internal/md"

// PotentialAdapter drives molecular dynamics with a trained model: it
// implements md.Potential, so a fitted network can replace the reference
// potential in the Langevin integrator — the "neural network molecular
// dynamics" deployment the paper's training pipeline exists to serve.
type PotentialAdapter struct {
	M *Model
}

// Cutoff returns the descriptor cutoff radius.
func (p PotentialAdapter) Cutoff() float64 { return p.M.Cfg.Rc }

// Compute evaluates the model's energy and forces for the system.  The
// neighbor list argument is ignored: the descriptor builds its own
// type-blocked environment (with periodic images) internally.
func (p PotentialAdapter) Compute(s *md.System, _ *md.NeighborList) (float64, []float64) {
	env, err := BuildEnv(p.M.Cfg, []*md.System{s})
	if err != nil {
		panic(err) // system/config mismatch is a programming error here
	}
	out := p.M.Forward(env, true)
	e := out.Energies.Value.Data[0]
	f := append([]float64(nil), out.Forces.Value.Data...)
	out.Graph.Release()
	return e, f
}
