package pshard

import (
	"fmt"
	"time"

	"fekf/internal/cluster"
	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/optimize"
)

// RankStep executes one rank's role in a covariance-sharded FEKF step: the
// same funnel schedule as cluster.RankStep — local backward, ring
// allreduce of gradient/ABE partials — but the Kalman update runs against
// the rank's P slabs only.  Per measurement the rank computes its owned
// P·g rows, allgathers the rest from the other owners (an extra "exchange"
// collective absent from the replicated step), then finishes the update —
// a, K, Δw, λ — from the now-identical full P·g, so every rank applies the
// same weight increment and the weights stay bit-identical to the
// unsharded single-host FEKF.  The deferred drain refreshes only the
// owned slabs and overlaps the next group's backward and allreduce.
//
// Abort semantics mirror the replicated step: a broken allreduce or
// exchange leaves the measurement unapplied on every rank (GainOwned
// writes only scratch), in-flight drains are joined, and the error wraps
// cluster.ErrRingBroken.  Each update is gated on the reduced sample
// count, which is bit-identical on every rank, so the ranks always agree
// on whether the exchange collective runs.
func RankStep(ring *cluster.Ring, rank int, m *deepmd.Model, st *State, p cluster.StepParams, ds *dataset.Dataset, idx []int, inject func() error) (optimize.StepInfo, error) {
	nParams := m.Params.NumParams()
	if nParams != st.NumParams() {
		panic(fmt.Sprintf("pshard: model has %d params, state %d", nParams, st.NumParams()))
	}
	var env *deepmd.Env
	var lab *deepmd.Labels
	var err error
	if ds != nil && len(idx) > 0 {
		env, err = deepmd.BuildBatchEnv(m.Cfg, ds, idx)
		if err == nil && inject != nil {
			err = inject()
		}
		if err == nil {
			lab = deepmd.BatchLabels(ds, idx)
		}
	}
	active := err == nil && env != nil && lab != nil

	trace := p.Spans
	var t0 time.Time
	span := func(name string) {
		if trace != nil {
			trace.Span(rank, name, t0, time.Since(t0))
		}
	}
	mark := func() {
		if trace != nil {
			t0 = time.Now()
		}
	}
	tracedDrain := func(drain func()) func() {
		if trace == nil {
			return drain
		}
		return func() {
			d0 := time.Now()
			drain()
			trace.Span(rank, "drain", d0, time.Since(d0))
		}
	}

	// applyMeasurement runs one sharded Kalman update from the reduced
	// gradient: owned P·g, exchange, finish, apply.  The previous drain
	// has already been joined by the caller (GainOwned reads the slabs
	// the drain mutates).
	applyMeasurement := func(g []float64, abe float64) (func(), error) {
		mark()
		pg := st.GainOwned(g)
		span("gain")
		mark()
		if cerr := ring.AllgatherSegments(rank, pg, st.Segments()); cerr != nil {
			return nil, cerr
		}
		span("exchange")
		mark()
		delta, drain := st.FinishUpdate(g, abe, p.Scale)
		m.Params.AddFlat(delta)
		span("gain")
		return optimize.StartDrain(tracedDrain(drain), p.Pipeline), nil
	}

	// ---- energy update
	buf := make([]float64, nParams+2)
	var out *deepmd.Output
	mark()
	if active {
		out = m.Forward(env, false)
		seedE, absSum := optimize.EnergySeed(out, lab)
		copy(buf, m.EnergyGrad(out, seedE))
		buf[nParams] = absSum
		buf[nParams+1] = float64(len(idx))
	}
	span("backward")
	mark()
	if cerr := ring.Allreduce(rank, buf); cerr != nil {
		if out != nil {
			out.Graph.Release()
		}
		return optimize.StepInfo{}, fmt.Errorf("energy allreduce: %w", cerr)
	}
	span("allreduce")
	abe := 0.0
	wait := func() {}
	if buf[nParams+1] > 0 {
		abe = buf[nParams] / (buf[nParams+1] * p.EnergyDiv)
		w, cerr := applyMeasurement(buf[:nParams], abe)
		if cerr != nil {
			if out != nil {
				out.Graph.Release()
			}
			return optimize.StepInfo{}, fmt.Errorf("energy exchange: %w", cerr)
		}
		wait = w
	}
	if out != nil {
		out.Graph.Release()
	}

	// ---- force updates
	var out2 *deepmd.Output
	fErr := make([]float64, 2)
	mark()
	if active {
		out2 = m.Forward(env, true)
		sum, count := optimize.ForceErrorSum(out2, lab)
		fErr[0], fErr[1] = sum, float64(count)
	}
	span("backward")
	for grp := 0; grp < p.ForceGroups; grp++ {
		fbuf := make([]float64, nParams+2)
		mark()
		if out2 != nil {
			seedF, fSum, count := optimize.ForceSeed(out2, lab, grp, p.ForceGroups)
			copy(fbuf, m.ForceGrad(out2, seedF))
			fbuf[nParams] = fSum
			fbuf[nParams+1] = float64(count)
		}
		span("backward")
		mark()
		if cerr := ring.Allreduce(rank, fbuf); cerr != nil {
			wait()
			if out2 != nil {
				out2.Graph.Release()
			}
			return optimize.StepInfo{EnergyABE: abe}, fmt.Errorf("force group %d allreduce: %w", grp, cerr)
		}
		span("allreduce")
		if fbuf[nParams+1] > 0 {
			fabe := fbuf[nParams] / (fbuf[nParams+1] * p.ForceDiv)
			wait()
			w, cerr := applyMeasurement(fbuf[:nParams], fabe)
			if cerr != nil {
				if out2 != nil {
					out2.Graph.Release()
				}
				return optimize.StepInfo{EnergyABE: abe}, fmt.Errorf("force group %d exchange: %w", grp, cerr)
			}
			wait = w
		}
	}

	mark()
	if cerr := ring.AllreduceScalars(rank, fErr); cerr != nil {
		wait()
		if out2 != nil {
			out2.Graph.Release()
		}
		return optimize.StepInfo{EnergyABE: abe}, fmt.Errorf("force-error allreduce: %w", cerr)
	}
	span("allreduce")
	forceABE := 0.0
	if fErr[1] > 0 {
		forceABE = fErr[0] / fErr[1]
	}
	wait()
	if out2 != nil {
		out2.Graph.Release()
	}
	return optimize.StepInfo{EnergyABE: abe, ForceABE: forceABE}, err
}
