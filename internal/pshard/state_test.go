package pshard

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fekf/internal/device"
	"fekf/internal/optimize"
	"fekf/internal/tensor"
)

// symRandom returns an n×n matrix that is exactly bitwise symmetric (the
// invariant the live P maintains: both kernels write bit-equal mirrors).
func symRandom(n int, rng *rand.Rand) *tensor.Dense {
	p := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			p.Set(i, j, v)
			p.Set(j, i, v)
		}
	}
	return p
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSlabDrainMatchesKernels proves the row-slab drain kernels reproduce
// the full-block covariance update bitwise, at several slab boundaries,
// for both the fused and the naive kernel.
func TestSlabDrainMatchesKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 17, 33} {
		p0 := symRandom(n, rng)
		k := tensor.New(n, 1)
		for i := range k.Data {
			k.Data[i] = rng.NormFloat64()
		}
		a := 0.5 + rng.Float64()
		lambda := 0.9 + 0.09*rng.Float64()
		for _, cuts := range [][]int{{0, n}, {0, 1, n}, {0, n / 2, n}, {0, n / 3, 2 * n / 3, n}} {
			for _, fused := range []bool{true, false} {
				full := p0.Clone()
				if fused {
					tensor.PUpdateFused(full, k, a, lambda)
				} else {
					tensor.PUpdateNaive(full, k, a, lambda)
				}
				got := tensor.New(n, n)
				for c := 0; c+1 < len(cuts); c++ {
					lo, hi := cuts[c], cuts[c+1]
					if lo >= hi {
						continue
					}
					slab := tensor.FromSlice(hi-lo, n, append([]float64(nil), p0.Data[lo*n:hi*n]...))
					if fused {
						optimize.SlabDrainFused(slab, lo, k.Data, a, lambda)
					} else {
						optimize.SlabDrainNaive(slab, lo, k.Data, a, lambda)
					}
					copy(got.Data[lo*n:hi*n], slab.Data)
				}
				if !bitsEqual(got.Data, full.Data) {
					t.Fatalf("n=%d cuts=%v fused=%v: slab drain diverges from full kernel", n, cuts, fused)
				}
			}
		}
	}
}

// exchangeInProc copies the owned P·g fragments between the states'
// scratch vectors exactly as Ring.AllgatherSegments would over a real
// transport (both transports are bit-transparent; the collective itself
// is covered by the cluster tests and TestRankStep).
func exchangeInProc(states []*State, pgs [][]float64) {
	segs := states[0].Segments()
	for _, sg := range segs {
		src := pgs[sg.Owner][sg.Lo:sg.Hi]
		for r := range pgs {
			if r != sg.Owner {
				copy(pgs[r][sg.Lo:sg.Hi], src)
			}
		}
	}
}

// kalmanVariants returns the four kernel configurations of the unsharded
// filter; the sharded update must match every one bitwise.
func kalmanVariants(base optimize.KalmanConfig) []optimize.KalmanConfig {
	var out []optimize.KalmanConfig
	for _, fused := range []bool{true, false} {
		for _, cache := range []bool{true, false} {
			c := base
			c.FusedPUpdate = fused
			c.CachePg = cache
			out = append(out, c)
		}
	}
	return out
}

// runSharded applies `steps` synthetic measurements to R sharded states
// (manual in-process exchange) and returns the states plus the deltas.
func runSharded(cfg optimize.KalmanConfig, blocks []optimize.Block, ranks, steps int, seed int64) ([]*State, [][]float64) {
	assign := Partition(blocks, ranks)
	var states []*State
	for r := 0; r < ranks; r++ {
		states = append(states, NewState(cfg, assign, r, device.New(fmt.Sprintf("ps%d", r), device.A100())))
	}
	nParams := blocks[len(blocks)-1].Hi
	rng := rand.New(rand.NewSource(seed))
	var deltas [][]float64
	for s := 0; s < steps; s++ {
		g := make([]float64, nParams)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		abe := math.Abs(rng.NormFloat64())
		scale := 1 + rng.Float64()
		pgs := make([][]float64, ranks)
		for r, st := range states {
			pgs[r] = st.GainOwned(g)
		}
		exchangeInProc(states, pgs)
		var delta []float64
		for _, st := range states {
			d, drain := st.FinishUpdate(g, abe, scale)
			drain()
			if delta == nil {
				delta = d
			} else if !bitsEqual(delta, d) {
				panic("ranks disagree on delta")
			}
		}
		deltas = append(deltas, delta)
	}
	return states, deltas
}

// runKalman applies the identical synthetic measurement sequence to the
// unsharded filter.
func runKalman(cfg optimize.KalmanConfig, layerSizes []int, steps int, seed int64) (*optimize.KalmanState, [][]float64) {
	ks := optimize.NewKalmanState(cfg, layerSizes, device.New("ref", device.A100()))
	nParams := 0
	for _, b := range ks.Blocks {
		nParams = b.Hi
	}
	rng := rand.New(rand.NewSource(seed))
	var deltas [][]float64
	for s := 0; s < steps; s++ {
		g := make([]float64, nParams)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		abe := math.Abs(rng.NormFloat64())
		scale := 1 + rng.Float64()
		deltas = append(deltas, ks.Update(g, abe, scale))
	}
	return ks, deltas
}

// assembleP reconstructs the full per-block covariance from a sharded
// checkpoint.
func assembleP(ck *Checkpoint) []*tensor.Dense {
	var ps []*tensor.Dense
	for _, n := range ck.Sizes {
		ps = append(ps, tensor.New(n, n))
	}
	for _, s := range ck.Shards {
		n := ck.Sizes[s.Block]
		copy(ps[s.Block].Data[s.RowLo*n:s.RowHi*n], s.Rows)
	}
	return ps
}

func assertStatesMatchKalman(t *testing.T, states []*State, ks *optimize.KalmanState) {
	t.Helper()
	for _, st := range states {
		if math.Float64bits(st.Lambda) != math.Float64bits(ks.Lambda) {
			t.Fatalf("rank %d λ %v, unsharded %v", st.Rank, st.Lambda, ks.Lambda)
		}
		if st.Updates != ks.Updates {
			t.Fatalf("rank %d updates %d, unsharded %d", st.Rank, st.Updates, ks.Updates)
		}
	}
	ck, err := BuildCheckpoint(states)
	if err != nil {
		t.Fatal(err)
	}
	for bi, p := range assembleP(ck) {
		if !bitsEqual(p.Data, ks.P[bi].Data) {
			t.Fatalf("block %d reassembled P diverges from unsharded", bi)
		}
	}
}

// TestShardedUpdateMatchesKalman is the core bitwise contract: R ∈
// {1,2,3,4} sharded filters applying a synthetic measurement sequence
// produce bit-identical Δw, λ and (reassembled) P to the unsharded
// KalmanState, under every kernel configuration (fused × cached-Pg).
func TestShardedUpdateMatchesKalman(t *testing.T) {
	layerSizes := []int{9, 26, 7, 13}
	base := optimize.KalmanConfig{BlockSize: 16, Lambda0: 0.98, Nu: 0.9987}
	const steps = 4
	for _, cfg := range kalmanVariants(base) {
		ks, refDeltas := runKalman(cfg, layerSizes, steps, 11)
		blocks := ks.Blocks
		for ranks := 1; ranks <= 4; ranks++ {
			states, deltas := runSharded(cfg, blocks, ranks, steps, 11)
			for s := range deltas {
				if !bitsEqual(deltas[s], refDeltas[s]) {
					t.Fatalf("cfg %+v ranks %d step %d: Δw diverges", cfg, ranks, s)
				}
			}
			assertStatesMatchKalman(t, states, ks)
		}
	}
}

// TestCheckpointRepartitionBitwise checkpoints a 3-rank run mid-sequence,
// restores it under a 2-rank and a 4-rank assignment (different slab
// boundaries), finishes the sequence, and requires the result to stay
// bit-identical to the uninterrupted unsharded filter — the kill/revive,
// autoscale and resume paths all reduce to exactly this repartition.
func TestCheckpointRepartitionBitwise(t *testing.T) {
	layerSizes := []int{9, 26, 7, 13}
	cfg := optimize.KalmanConfig{BlockSize: 16, Lambda0: 0.98, Nu: 0.9987, FusedPUpdate: true, CachePg: true}
	const half, steps = 2, 5
	ks, _ := runKalman(cfg, layerSizes, steps, 23)
	blocks := ks.Blocks

	states3, _ := runSharded(cfg, blocks, 3, half, 23)
	ck, err := BuildCheckpoint(states3)
	if err != nil {
		t.Fatal(err)
	}
	for _, newRanks := range []int{2, 4} {
		assign := Partition(blocks, newRanks)
		var states []*State
		for r := 0; r < newRanks; r++ {
			st, err := NewStateFrom(ck, assign, r, device.New(fmt.Sprintf("re%d", r), device.A100()))
			if err != nil {
				t.Fatal(err)
			}
			states = append(states, st)
		}
		// Replay the same tail of the measurement sequence: regenerate the
		// full sequence's RNG stream and skip the first half.
		nParams := blocks[len(blocks)-1].Hi
		rng := rand.New(rand.NewSource(23))
		for s := 0; s < steps; s++ {
			g := make([]float64, nParams)
			for i := range g {
				g[i] = rng.NormFloat64()
			}
			abe := math.Abs(rng.NormFloat64())
			scale := 1 + rng.Float64()
			if s < half {
				continue
			}
			pgs := make([][]float64, newRanks)
			for r, st := range states {
				pgs[r] = st.GainOwned(g)
			}
			exchangeInProc(states, pgs)
			for _, st := range states {
				_, drain := st.FinishUpdate(g, abe, scale)
				drain()
			}
		}
		assertStatesMatchKalman(t, states, ks)
	}
}

// TestStatePBytesMatchesAssignment ties the runtime gauge to the
// partitioner arithmetic: the allocated slab bytes equal the assignment's
// computed per-rank load, and summed over ranks equal the unsharded total.
// Together with TestPartitionPaperBound (pure arithmetic on the paper
// split, no 1.8 GB allocation) this is the R=4 ≤ ~1/3 memory assertion.
func TestStatePBytesMatchesAssignment(t *testing.T) {
	blocks := blocksOf([]int{9, 26, 7, 13})
	cfg := optimize.KalmanConfig{BlockSize: 16, Lambda0: 0.98, Nu: 0.9987}
	assign := Partition(blocks, 4)
	var sum int64
	for r := 0; r < 4; r++ {
		st := NewState(cfg, assign, r, device.New(fmt.Sprintf("pb%d", r), device.A100()))
		if got, want := st.PBytes(), assign.RankBytes(r); got != want {
			t.Fatalf("rank %d PBytes %d, assignment says %d", r, got, want)
		}
		sum += st.PBytes()
	}
	if sum != assign.TotalBytes() {
		t.Fatalf("summed resident bytes %d != total %d", sum, assign.TotalBytes())
	}
}
