package pshard

import (
	"fmt"
	"sync"

	"fekf/internal/cluster"
	"fekf/internal/device"
	"fekf/internal/optimize"
	"fekf/internal/tensor"
)

// State is one rank's share of the sharded Kalman filter: the row slabs
// of P it owns plus the full-width scratch the funnel update needs.  The
// scalar filter state (λ, update count) is replicated on every rank —
// it advances identically everywhere because every rank applies the same
// reduced measurement.
//
// The per-step protocol (see RankStep):
//
//	pg := st.GainOwned(g)                    // owned rows of P·g
//	ring.AllgatherSegments(rank, pg, segs)   // everyone gets the full P·g
//	delta, drain := st.FinishUpdate(g, abe, scale)
//
// After the allgather every rank holds the bitwise-identical P·g, so a,
// K, Δw and the λ advance are computed redundantly-but-identically, and
// the drain refreshes only the owned slabs.  The exchange carries P·g
// rather than Δw because the gain denominator a = 1/(λ+gᵀPg) needs the
// full per-block P·g before any Δw exists.
type State struct {
	Cfg    optimize.KalmanConfig
	Blocks []optimize.Block
	Assign Assignment
	Rank   int
	Lambda float64
	Dev    *device.Device

	Updates int

	shards []Shard
	slabs  []*tensor.Dense // per owned shard: Rows()×n
	pg     []float64       // param-aligned P·g (owned rows filled locally, rest by allgather)
	kv     []float64       // param-aligned gain K, held across a deferred drain
	av     []float64       // per-block denominator a, held across a deferred drain
	segs   []cluster.Segment
	// draining mirrors KalmanState.draining: set between FinishUpdate and
	// drain completion; callers serialize the two.
	draining bool
}

// NewState allocates rank's share of a fresh filter (every P block the
// identity) under the given assignment.
func NewState(cfg optimize.KalmanConfig, assign Assignment, rank int, dev *device.Device) *State {
	st := newShell(cfg, assign, rank, dev)
	st.Lambda = cfg.Lambda0
	for si, sh := range st.shards {
		slab := st.slabs[si]
		for r := 0; r < sh.Rows(); r++ {
			slab.Set(r, sh.RowLo+r, 1)
		}
	}
	return st
}

// newShell builds the state skeleton with zeroed slabs and accounts the
// device memory: the owned slabs plus the two param-width scratch vectors.
func newShell(cfg optimize.KalmanConfig, assign Assignment, rank int, dev *device.Device) *State {
	if rank < 0 || rank >= assign.Ranks {
		panic(fmt.Sprintf("pshard: rank %d outside assignment of %d", rank, assign.Ranks))
	}
	nParams := 0
	if len(assign.Blocks) > 0 {
		nParams = assign.Blocks[len(assign.Blocks)-1].Hi
	}
	st := &State{
		Cfg:    cfg,
		Blocks: assign.Blocks,
		Assign: assign,
		Rank:   rank,
		Dev:    dev,
		pg:     make([]float64, nParams),
		kv:     make([]float64, nParams),
		av:     make([]float64, len(assign.Blocks)),
		segs:   assign.Segments(),
	}
	st.shards = append(st.shards, assign.Owners[rank]...)
	var bytes int64
	for _, sh := range st.shards {
		n := assign.Blocks[sh.Block].Size()
		st.slabs = append(st.slabs, tensor.New(sh.Rows(), n))
		bytes += int64(sh.Rows()) * int64(n) * 8
	}
	dev.Alloc(bytes + 2*int64(nParams)*8)
	return st
}

// NumParams returns the flat parameter count the filter covers.
func (st *State) NumParams() int { return len(st.pg) }

// Shards returns the owned shard list (sorted by block, row).
func (st *State) Shards() []Shard { return st.shards }

// Segments returns the allgather exchange table — identical on every rank
// of the same assignment.
func (st *State) Segments() []cluster.Segment { return st.segs }

// PBytes returns the resident bytes of the owned P slabs — the per-rank
// value of the fekf_p_resident_bytes gauge (the replicated fleet reports
// the full KalmanState.PBytes on the same gauge).
func (st *State) PBytes() int64 {
	var total int64
	for _, s := range st.slabs {
		total += int64(s.Len()) * 8
	}
	return total
}

// Free releases the device memory newShell accounted.
func (st *State) Free() {
	st.Dev.Free(st.PBytes() + 2*int64(len(st.pg))*8)
	st.slabs = nil
	st.pg = nil
	st.kv = nil
}

// GainOwned computes the owned rows of P·g into the param-aligned scratch
// and returns it; the caller then allgathers the unowned segments before
// FinishUpdate.  No filter state is mutated, so an exchange that fails
// afterwards aborts the measurement cleanly.
func (st *State) GainOwned(g []float64) []float64 {
	if st.draining {
		panic("pshard: GainOwned before the previous drain completed")
	}
	if len(g) != len(st.pg) {
		panic(fmt.Sprintf("pshard: gradient %d vs %d params", len(g), len(st.pg)))
	}
	for si, sh := range st.shards {
		b := st.Blocks[sh.Block]
		rows := int64(sh.Rows())
		n := int64(b.Size())
		optimize.SlabMatVecInto(st.pg[b.Lo+sh.RowLo:b.Lo+sh.RowHi], st.slabs[si], g[b.Lo:b.Hi])
		st.Dev.LaunchPhase("p_matvec", device.PhaseOptimizer, 2*rows*n, rows*n*8)
	}
	return st.pg
}

// FinishUpdate completes the measurement after the P·g exchange: per
// block the denominator a = 1/(λ+gᵀ·Pg), the gain K = a·Pg and the weight
// increment Δw = scale·abe·K — all from the allgathered P·g, so every
// rank computes bit-identical values — then advances λ and returns the
// increment with a drain that refreshes the owned slabs using the a, K,
// λ captured at gain time.  The a·Pg form matches both CachePg settings
// of the unsharded filter bitwise (the uncached path recomputes P·g —
// the same bits — and scales in place; IEEE multiplication commutes).
func (st *State) FinishUpdate(g []float64, abe, scale float64) (delta []float64, drain func()) {
	lambda := st.Lambda
	delta = make([]float64, len(g))
	tensor.ParallelFor(len(st.Blocks), func(blo, bhi int) {
		for i := blo; i < bhi; i++ {
			b := st.Blocks[i]
			n := int64(b.Size())
			gi := tensor.Vector(g[b.Lo:b.Hi])
			pgi := tensor.Vector(st.pg[b.Lo:b.Hi])
			a := 1 / (lambda + tensor.Dot(gi, pgi))
			st.Dev.LaunchPhase("a_scalar", device.PhaseOptimizer, 2*n, 2*n*8)
			kb := st.kv[b.Lo:b.Hi]
			for j := range kb {
				kb[j] = a * pgi.Data[j]
			}
			st.Dev.LaunchPhase("k_scale", device.PhaseOptimizer, n, 2*n*8)
			st.av[i] = a

			s := scale * abe
			dst := delta[b.Lo:b.Hi]
			for j, kj := range kb {
				dst[j] = s * kj
			}
			st.Dev.LaunchPhase("w_increment", device.PhaseOptimizer, n, 2*n*8)
		}
	})

	st.Lambda = st.Lambda*st.Cfg.Nu + 1 - st.Cfg.Nu
	st.Updates++
	st.draining = true
	var once sync.Once
	return delta, func() {
		once.Do(func() {
			st.drainShards(lambda)
			st.draining = false
		})
	}
}

// drainShards refreshes the owned slabs: P ← (1/λ)(P − (1/a)KKᵀ) with
// symmetrization, via the slab kernels that reproduce the full-block
// update bitwise (see optimize/slab.go).
func (st *State) drainShards(lambda float64) {
	tensor.ParallelFor(len(st.shards), func(lo, hi int) {
		for si := lo; si < hi; si++ {
			sh := st.shards[si]
			b := st.Blocks[sh.Block]
			rows := int64(sh.Rows())
			n := int64(b.Size())
			k := st.kv[b.Lo:b.Hi]
			a := st.av[sh.Block]
			if st.Cfg.FusedPUpdate {
				optimize.SlabDrainFused(st.slabs[si], sh.RowLo, k, a, lambda)
				st.Dev.LaunchPhase("p_update_fused", device.PhaseOptimizer, 3*rows*n, 2*rows*n*8)
			} else {
				optimize.SlabDrainNaive(st.slabs[si], sh.RowLo, k, a, lambda)
				st.Dev.LaunchPhase("p_sub_scale", device.PhaseOptimizer, 2*rows*n, 3*rows*n*8)
				st.Dev.LaunchPhase("p_symmetrize", device.PhaseOptimizer, rows*n, 2*rows*n*8)
			}
		}
	})
}

// PDiagonalOwned returns the param-aligned diagonal of P with the owned
// rows filled and zeros elsewhere.  The uncertainty gate scores frames
// against it; with sharding each rank gates on its own diagonal slice —
// a documented approximation (scores involving unowned rows read 0, so
// the partial gate is more permissive than the full diagonal).
func (st *State) PDiagonalOwned() []float64 {
	pd := make([]float64, len(st.pg))
	for si, sh := range st.shards {
		b := st.Blocks[sh.Block]
		for r := 0; r < sh.Rows(); r++ {
			i := sh.RowLo + r
			pd[b.Lo+i] = st.slabs[si].At(r, i)
		}
	}
	return pd
}
