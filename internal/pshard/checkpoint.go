package pshard

import (
	"fmt"
	"sort"

	"fekf/internal/device"
	"fekf/internal/optimize"
)

// ShardCheckpoint is one owner's slab: rows [RowLo,RowHi) of block Block,
// flattened row-major ((RowHi−RowLo)·n values).  Each slab appears exactly
// once in a checkpoint — saved by its owner — so the sharded P is stored
// once, never per rank.
type ShardCheckpoint struct {
	Block        int
	RowLo, RowHi int
	Rows         []float64
}

// Checkpoint is the serializable state of a sharded filter: the shared
// scalar state plus every rank's slabs.  Restoring under a different
// assignment (more ranks, fewer ranks, different owners) is supported —
// NewStateFrom reassembles each target slab row-by-row from whichever
// source slab holds it — which is also how kill/revive and autoscaling
// repartition in memory.
type Checkpoint struct {
	Cfg     optimize.KalmanConfig
	Lambda  float64
	Updates int
	Sizes   []int // per-block dimensions, for structural validation
	Shards  []ShardCheckpoint
}

// BuildCheckpoint gathers the live states (one per rank, any order) into
// one checkpoint, deep-copying the slabs.  The ranks' replicated scalar
// state must agree — a mismatch means the lockstep invariant was already
// broken and is reported as an error rather than silently picking one.
func BuildCheckpoint(states []*State) (*Checkpoint, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("pshard: checkpoint of zero states")
	}
	ref := states[0]
	if ref.draining {
		return nil, fmt.Errorf("pshard: checkpoint while a drain is in flight")
	}
	ck := &Checkpoint{
		Cfg:     ref.Cfg,
		Lambda:  ref.Lambda,
		Updates: ref.Updates,
		Sizes:   optimize.BlockSizes(ref.Blocks),
	}
	for _, st := range states {
		if st.draining {
			return nil, fmt.Errorf("pshard: checkpoint while a drain is in flight")
		}
		if st.Lambda != ref.Lambda || st.Updates != ref.Updates {
			return nil, fmt.Errorf("pshard: rank %d scalar state diverged (λ %v vs %v, updates %d vs %d)",
				st.Rank, st.Lambda, ref.Lambda, st.Updates, ref.Updates)
		}
		for si, sh := range st.shards {
			rows := append([]float64(nil), st.slabs[si].Data...)
			ck.Shards = append(ck.Shards, ShardCheckpoint{
				Block: sh.Block, RowLo: sh.RowLo, RowHi: sh.RowHi, Rows: rows,
			})
		}
	}
	sort.Slice(ck.Shards, func(i, j int) bool {
		if ck.Shards[i].Block != ck.Shards[j].Block {
			return ck.Shards[i].Block < ck.Shards[j].Block
		}
		return ck.Shards[i].RowLo < ck.Shards[j].RowLo
	})
	return ck, nil
}

// NewStateFrom restores rank's share of a checkpointed filter under
// assign, which need not match the assignment the checkpoint was written
// under: every target row is copied from the source slab that holds it.
// Shard boundaries may differ arbitrarily as long as the block structure
// matches.
func NewStateFrom(ck *Checkpoint, assign Assignment, rank int, dev *device.Device) (*State, error) {
	if len(assign.Blocks) != len(ck.Sizes) {
		return nil, fmt.Errorf("pshard: checkpoint has %d blocks, assignment %d",
			len(ck.Sizes), len(assign.Blocks))
	}
	for i, b := range assign.Blocks {
		if b.Size() != ck.Sizes[i] {
			return nil, fmt.Errorf("pshard: block %d is %d params, checkpoint has %d",
				i, b.Size(), ck.Sizes[i])
		}
	}
	// Index the source slabs per block, sorted by RowLo, for row lookup.
	byBlock := make([][]ShardCheckpoint, len(ck.Sizes))
	for _, s := range ck.Shards {
		if s.Block < 0 || s.Block >= len(ck.Sizes) {
			return nil, fmt.Errorf("pshard: checkpoint shard block %d out of range", s.Block)
		}
		n := ck.Sizes[s.Block]
		if s.RowLo < 0 || s.RowHi > n || s.RowLo >= s.RowHi || len(s.Rows) != s.RowCount()*n {
			return nil, fmt.Errorf("pshard: checkpoint shard block %d rows [%d,%d) len %d malformed",
				s.Block, s.RowLo, s.RowHi, len(s.Rows))
		}
		byBlock[s.Block] = append(byBlock[s.Block], s)
	}
	for b := range byBlock {
		sort.Slice(byBlock[b], func(i, j int) bool { return byBlock[b][i].RowLo < byBlock[b][j].RowLo })
	}

	st := newShell(ck.Cfg, assign, rank, dev)
	st.Lambda = ck.Lambda
	st.Updates = ck.Updates
	for si, sh := range st.shards {
		n := assign.Blocks[sh.Block].Size()
		slab := st.slabs[si]
		for r := 0; r < sh.Rows(); r++ {
			row := sh.RowLo + r
			src := sourceRow(byBlock[sh.Block], row)
			if src == nil {
				st.Free()
				return nil, fmt.Errorf("pshard: checkpoint missing block %d row %d", sh.Block, row)
			}
			off := (row - src.RowLo) * n
			copy(slab.Data[r*n:(r+1)*n], src.Rows[off:off+n])
		}
	}
	return st, nil
}

// RowCount returns the slab's row count (named to avoid colliding with
// the Rows data field).
func (s ShardCheckpoint) RowCount() int { return s.RowHi - s.RowLo }

// sourceRow finds the slab (sorted by RowLo) containing the given row.
func sourceRow(slabs []ShardCheckpoint, row int) *ShardCheckpoint {
	i := sort.Search(len(slabs), func(i int) bool { return slabs[i].RowHi > row })
	if i < len(slabs) && slabs[i].RowLo <= row {
		return &slabs[i]
	}
	return nil
}
