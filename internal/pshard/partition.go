// Package pshard shards the block-diagonal Kalman covariance P across
// cluster ranks so the fleet can train models whose covariance exceeds a
// single host's memory.  A deterministic partitioner assigns row slabs of
// the P blocks to ranks; each rank allocates only its slabs, computes the
// gain-stage P·g fragments and the deferred covariance drain for its rows,
// and the fragments are allgathered over the ring so every rank applies
// the identical Kalman update — bitwise equal to the unsharded single-host
// FEKF (see internal/optimize/slab.go for the kernel-level contract).
package pshard

import (
	"fmt"
	"sort"

	"fekf/internal/cluster"
	"fekf/internal/optimize"
)

// Shard is a contiguous row slab [RowLo,RowHi) of one P block: the owner
// rank holds those rows of the Block-th block's n×n covariance.
type Shard struct {
	Block        int
	RowLo, RowHi int
}

// Rows returns the slab's row count.
func (s Shard) Rows() int { return s.RowHi - s.RowLo }

// Assignment is a complete partition of the covariance across ranks.
// Owners[r] lists rank r's shards sorted by (Block, RowLo); together the
// shards cover every row of every block exactly once.
type Assignment struct {
	Ranks  int
	Blocks []optimize.Block
	Owners [][]Shard
}

// Partition deterministically assigns the P blocks of the given block
// structure to ranks by size, greedy bin-packing (LPT):
//
//  1. target = ⌈totalBytes/ranks⌉.  Any block larger than the target is
//     pre-split into ⌈blockBytes/target⌉ near-equal contiguous row slabs
//     (boundaries at p·n/parts), because a single paper-sized block (e.g.
//     10240² of the {1350,10240,9760,5301} split) can exceed a fair share
//     on its own.
//  2. Units are sorted by bytes descending (ties: block index, then RowLo
//     ascending) and each is placed on the currently least-loaded rank
//     (ties: lowest rank), the classic longest-processing-time heuristic.
//
// The result is a pure function of (blocks, ranks).  Load bound: every
// unit is at most target + 8n bytes for the widest split block (one row of
// slack from the ceiling), and LPT places each unit on a then-minimal
// rank, so maxLoad − minLoad ≤ the largest unit ≤ ⌈total/ranks⌉ + 8·maxN.
// The partition property tests and FuzzBlockPartition assert exactly this
// bound.
func Partition(blocks []optimize.Block, ranks int) Assignment {
	if ranks <= 0 {
		panic(fmt.Sprintf("pshard: Partition with %d ranks", ranks))
	}
	a := Assignment{Ranks: ranks, Blocks: append([]optimize.Block(nil), blocks...),
		Owners: make([][]Shard, ranks)}
	var total int64
	for _, b := range blocks {
		n := int64(b.Size())
		total += n * n * 8
	}
	if total == 0 {
		return a
	}
	target := (total + int64(ranks) - 1) / int64(ranks)

	var units []Shard
	for bi, b := range blocks {
		n := b.Size()
		bytes := int64(n) * int64(n) * 8
		parts := 1
		if bytes > target {
			parts = int((bytes + target - 1) / target)
		}
		for p := 0; p < parts; p++ {
			lo := p * n / parts
			hi := (p + 1) * n / parts
			if hi > lo {
				units = append(units, Shard{Block: bi, RowLo: lo, RowHi: hi})
			}
		}
	}
	sort.Slice(units, func(i, j int) bool {
		bi, bj := a.ShardBytes(units[i]), a.ShardBytes(units[j])
		if bi != bj {
			return bi > bj
		}
		if units[i].Block != units[j].Block {
			return units[i].Block < units[j].Block
		}
		return units[i].RowLo < units[j].RowLo
	})

	loads := make([]int64, ranks)
	for _, u := range units {
		best := 0
		for r := 1; r < ranks; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		a.Owners[best] = append(a.Owners[best], u)
		loads[best] += a.ShardBytes(u)
	}
	for r := range a.Owners {
		sort.Slice(a.Owners[r], func(i, j int) bool {
			si, sj := a.Owners[r][i], a.Owners[r][j]
			if si.Block != sj.Block {
				return si.Block < sj.Block
			}
			return si.RowLo < sj.RowLo
		})
	}
	return a
}

// ShardBytes returns the resident bytes of one shard's slab.
func (a Assignment) ShardBytes(s Shard) int64 {
	return int64(s.Rows()) * int64(a.Blocks[s.Block].Size()) * 8
}

// RankBytes returns rank r's total resident P bytes.
func (a Assignment) RankBytes(r int) int64 {
	var total int64
	for _, s := range a.Owners[r] {
		total += a.ShardBytes(s)
	}
	return total
}

// TotalBytes returns the full covariance size: Σ n²·8 over blocks.
func (a Assignment) TotalBytes() int64 {
	var total int64
	for _, b := range a.Blocks {
		n := int64(b.Size())
		total += n * n * 8
	}
	return total
}

// MaxShardBytes returns the largest single shard, the quantity the load
// bound is stated in.
func (a Assignment) MaxShardBytes() int64 {
	var max int64
	for _, shards := range a.Owners {
		for _, s := range shards {
			if b := a.ShardBytes(s); b > max {
				max = b
			}
		}
	}
	return max
}

// ImbalanceRatio returns maxRankBytes/minRankBytes over the ranks, the
// partition-quality gauge.  If any rank holds nothing (more ranks than
// units) the ratio is reported as 0 rather than +Inf so it stays
// JSON-encodable.
func (a Assignment) ImbalanceRatio() float64 {
	if a.Ranks == 0 {
		return 0
	}
	min, max := a.RankBytes(0), a.RankBytes(0)
	for r := 1; r < a.Ranks; r++ {
		b := a.RankBytes(r)
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}

// Segments returns the exchange table for the param-aligned P·g vector:
// one cluster.Segment per shard, offset into the flat parameter space
// (block.Lo + row range), sorted by Lo.  Every rank passes the identical
// table to Ring.AllgatherSegments.
func (a Assignment) Segments() []cluster.Segment {
	var segs []cluster.Segment
	for r, shards := range a.Owners {
		for _, s := range shards {
			lo := a.Blocks[s.Block].Lo
			segs = append(segs, cluster.Segment{Lo: lo + s.RowLo, Hi: lo + s.RowHi, Owner: r})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Lo < segs[j].Lo })
	return segs
}

// ExchangeBytesPerCollective returns the wire payload of one allgather of
// the P·g vector: every row crosses the ring once per gather step, so the
// per-collective payload is the full parameter vector (minus nothing — the
// owner's own rows are counted too, matching the modeled accounting which
// charges the largest owner chunk per ring step).
func (a Assignment) ExchangeBytesPerCollective() int64 {
	if len(a.Blocks) == 0 {
		return 0
	}
	return int64(a.Blocks[len(a.Blocks)-1].Hi) * 8
}

// Validate checks that the assignment tiles every block's rows exactly
// once with in-range owners; the partition tests and state restore both
// run it.
func (a Assignment) Validate() error {
	covered := make([][]bool, len(a.Blocks))
	for i, b := range a.Blocks {
		covered[i] = make([]bool, b.Size())
	}
	for r, shards := range a.Owners {
		if r >= a.Ranks {
			return fmt.Errorf("pshard: owner row %d beyond %d ranks", r, a.Ranks)
		}
		for _, s := range shards {
			if s.Block < 0 || s.Block >= len(a.Blocks) {
				return fmt.Errorf("pshard: shard block %d out of range", s.Block)
			}
			n := a.Blocks[s.Block].Size()
			if s.RowLo < 0 || s.RowHi > n || s.RowLo >= s.RowHi {
				return fmt.Errorf("pshard: shard rows [%d,%d) outside block %d (n=%d)",
					s.RowLo, s.RowHi, s.Block, n)
			}
			for i := s.RowLo; i < s.RowHi; i++ {
				if covered[s.Block][i] {
					return fmt.Errorf("pshard: block %d row %d covered twice", s.Block, i)
				}
				covered[s.Block][i] = true
			}
		}
	}
	for bi, rows := range covered {
		for i, c := range rows {
			if !c {
				return fmt.Errorf("pshard: block %d row %d uncovered", bi, i)
			}
		}
	}
	return nil
}

// ReassignBytes returns the P bytes that must move when the partition
// changes from one assignment to another: the rows whose owning rank index
// differs.  Rank indices, not replica identities, are compared — after a
// membership change rank k maps to the k-th surviving replica, so this is
// the transfer volume of the repartition as the autoscaler models it.
func ReassignBytes(from, to Assignment) int64 {
	if len(from.Blocks) != len(to.Blocks) {
		return from.TotalBytes() // structural change: everything moves
	}
	var moved int64
	for bi, b := range from.Blocks {
		n := b.Size()
		if to.Blocks[bi].Size() != n {
			moved += int64(n) * int64(n) * 8
			continue
		}
		fOwner := ownerByRow(from, bi, n)
		tOwner := ownerByRow(to, bi, n)
		for i := 0; i < n; i++ {
			if fOwner[i] != tOwner[i] {
				moved += int64(n) * 8
			}
		}
	}
	return moved
}

func ownerByRow(a Assignment, block, n int) []int {
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	for r, shards := range a.Owners {
		for _, s := range shards {
			if s.Block == block {
				for i := s.RowLo; i < s.RowHi; i++ {
					owner[i] = r
				}
			}
		}
	}
	return owner
}
