package pshard

import (
	"fmt"
	"sync"
	"testing"

	"fekf/internal/cluster"
	"fekf/internal/cluster/tcptransport"
	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
)

func stepSetup(t *testing.T) (*dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 8, SampleEvery: 4, EquilSteps: 20, Tiny: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptFused
	m.Dev = device.New("base", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	return ds, m
}

// shardedCfg uses a small block size so the tiny test model still splits
// into several P blocks worth sharding.
func shardedCfg() optimize.KalmanConfig {
	cfg := optimize.DefaultKalmanConfig().WithOpt3()
	cfg.BlockSize = 64
	return cfg
}

func chunk(idx []int, rank, size int) []int {
	lo := rank * len(idx) / size
	hi := (rank + 1) * len(idx) / size
	return idx[lo:hi]
}

// runShardedSteps drives `steps` full sharded FEKF steps at the given rank
// count over the given ring and returns the rank-0 weights plus the
// sharded states for P reassembly.
func runShardedSteps(t *testing.T, ring *cluster.Ring, ds *dataset.Dataset, base *deepmd.Model, ranks, steps int, idx []int) ([]float64, []*State) {
	t.Helper()
	cfg := shardedCfg()
	blocks := optimize.SplitBlocks(base.Params.LayerSizes(), cfg.BlockSize)
	assign := Partition(blocks, ranks)
	var models []*deepmd.Model
	var states []*State
	for r := 0; r < ranks; r++ {
		dev := device.New(fmt.Sprintf("psgpu%d", r), device.A100())
		models = append(models, base.CloneFor(dev))
		states = append(states, NewState(cfg, assign, r, dev))
	}
	na := ds.Snapshots[idx[0]].NumAtoms()
	f := optimize.NewFEKF()
	p := cluster.StepParams{
		Scale:       f.Factor.Apply(len(idx)),
		EnergyDiv:   f.EnergyDiv.Value(na),
		ForceDiv:    f.ForceDiv.Value(na),
		ForceGroups: f.ForceGroups,
		Pipeline:    true,
	}
	for s := 0; s < steps; s++ {
		var wg sync.WaitGroup
		errs := make([]error, ranks)
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				_, errs[rank] = RankStep(ring, rank, models[rank], states[rank], p,
					ds, chunk(idx, rank, ranks), nil)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("step %d rank %d: %v", s, r, err)
			}
		}
	}
	// Every rank must hold identical weights.
	ref := models[0].Params.FlattenValues()
	for r := 1; r < ranks; r++ {
		if !bitsEqual(models[r].Params.FlattenValues(), ref) {
			t.Fatalf("rank %d weights drifted from rank 0", r)
		}
	}
	return ref, states
}

// runSingleHost runs the identical schedule on the single-host FEKF (same
// kernel config, full batch, one device, no collectives at all).
func runSingleHost(t *testing.T, ds *dataset.Dataset, base *deepmd.Model, steps int, idx []int) ([]float64, *optimize.KalmanState) {
	t.Helper()
	dev := device.New("single", device.A100())
	m := base.CloneFor(dev)
	f := optimize.NewFEKF()
	f.KCfg = shardedCfg()
	f.Pipeline = true
	for s := 0; s < steps; s++ {
		if _, err := f.Step(m, ds, idx); err != nil {
			t.Fatalf("single-host step %d: %v", s, err)
		}
	}
	return m.Params.FlattenValues(), f.State()
}

// runReplicated runs the same schedule through the unsharded distributed
// pipeline — cluster.RankStep with every rank holding a full P replica —
// the reference the sharded step must match at rank counts > 1 (the ring
// allreduce fixes the gradient summation order, which differs bitwise
// from one full-batch backward; sharding must not change it further).
func runReplicated(t *testing.T, ds *dataset.Dataset, base *deepmd.Model, ranks, steps int, idx []int) ([]float64, *optimize.KalmanState) {
	t.Helper()
	cfg := shardedCfg()
	ring := cluster.NewRing(ranks, cluster.RoCE25())
	var models []*deepmd.Model
	var states []*optimize.KalmanState
	for r := 0; r < ranks; r++ {
		dev := device.New(fmt.Sprintf("repgpu%d", r), device.A100())
		m := base.CloneFor(dev)
		models = append(models, m)
		states = append(states, optimize.NewKalmanState(cfg, m.Params.LayerSizes(), dev))
	}
	na := ds.Snapshots[idx[0]].NumAtoms()
	f := optimize.NewFEKF()
	p := cluster.StepParams{
		Scale:       f.Factor.Apply(len(idx)),
		EnergyDiv:   f.EnergyDiv.Value(na),
		ForceDiv:    f.ForceDiv.Value(na),
		ForceGroups: f.ForceGroups,
		Pipeline:    true,
	}
	for s := 0; s < steps; s++ {
		var wg sync.WaitGroup
		errs := make([]error, ranks)
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				_, errs[rank] = cluster.RankStep(ring, rank, models[rank], states[rank], p,
					ds, chunk(idx, rank, ranks), nil)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("replicated step %d rank %d: %v", s, r, err)
			}
		}
	}
	return models[0].Params.FlattenValues(), states[0]
}

// TestRankStepMatchesUnsharded is the tentpole's end-to-end contract:
// sharded FEKF produces bit-identical weights, λ and reassembled P to the
// unsharded pipeline at every rank count — at R=1 against the single-host
// optimize.FEKF.Step itself (no collectives anywhere), at R ∈ {2,3,4}
// against the full-P-per-rank replicated pipeline over the same ring size
// (the funnel allreduce order is part of the reference there).
func TestRankStepMatchesUnsharded(t *testing.T) {
	ds, base := stepSetup(t)
	idx := []int{0, 1, 2, 3, 4, 5}
	const steps = 2
	for ranks := 1; ranks <= 4; ranks++ {
		var refW []float64
		var refKS *optimize.KalmanState
		if ranks == 1 {
			refW, refKS = runSingleHost(t, ds, base, steps, idx)
		} else {
			refW, refKS = runReplicated(t, ds, base, ranks, steps, idx)
		}
		w, states := runShardedSteps(t, cluster.NewRing(ranks, cluster.RoCE25()), ds, base, ranks, steps, idx)
		if !bitsEqual(w, refW) {
			t.Fatalf("R=%d: sharded weights diverge from unsharded", ranks)
		}
		assertStatesMatchKalman(t, states, refKS)
	}
}

// TestRankStepMatchesUnshardedTCP repeats the contract over real TCP
// loopback endpoints against the chan-transport unsharded reference: the
// exchange collective and the funnel allreduce must both be
// bit-transparent on the wire.
func TestRankStepMatchesUnshardedTCP(t *testing.T) {
	ds, base := stepSetup(t)
	idx := []int{0, 1, 2, 3}
	const steps = 1
	for _, ranks := range []int{2, 3} {
		refW, refKS := runReplicated(t, ds, base, ranks, steps, idx)
		g, err := tcptransport.NewLoopbackGroup(ranks, tcptransport.Options{RingID: fmt.Sprintf("%s-%d", t.Name(), ranks)})
		if err != nil {
			t.Fatalf("loopback group: %v", err)
		}
		ring := cluster.NewRingOver(g, cluster.RoCE25())
		w, states := runShardedSteps(t, ring, ds, base, ranks, steps, idx)
		g.Close()
		if !bitsEqual(w, refW) {
			t.Fatalf("R=%d over TCP: sharded weights diverge from unsharded", ranks)
		}
		assertStatesMatchKalman(t, states, refKS)
	}
}

// TestRankStepEmptyShare covers the idle-rank path: a rank with no local
// frames contributes zero partials but runs every collective (including
// the P·g exchange for the rows it owns) and ends bit-identical.
func TestRankStepEmptyShare(t *testing.T) {
	ds, base := stepSetup(t)
	idx := []int{0, 1, 2} // 4 ranks, 3 frames: one rank gets an empty chunk
	const ranks = 4
	refW, refKS := runReplicated(t, ds, base, ranks, 1, idx)
	w, states := runShardedSteps(t, cluster.NewRing(ranks, cluster.RoCE25()), ds, base, ranks, 1, idx)
	if !bitsEqual(w, refW) {
		t.Fatal("empty-share sharded weights diverge from unsharded")
	}
	assertStatesMatchKalman(t, states, refKS)
}
