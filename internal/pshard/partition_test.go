package pshard

import (
	"reflect"
	"testing"

	"fekf/internal/optimize"
)

// blocksOf builds a contiguous block structure from per-block sizes.
func blocksOf(sizes []int) []optimize.Block {
	var blocks []optimize.Block
	lo := 0
	for _, n := range sizes {
		blocks = append(blocks, optimize.Block{Lo: lo, Hi: lo + n})
		lo += n
	}
	return blocks
}

// paperSizes is the paper's gather-and-split block structure (Section
// 3.4): layer parameter counts gathered to the 10240 threshold.
var paperSizes = []int{1350, 10240, 9760, 5301}

// checkPartition asserts the documented partition properties for one
// (blocks, ranks) input: exact coverage, determinism, sorted owners, and
// the LPT load bound maxLoad − minLoad ≤ maxShard ≤ ⌈total/R⌉ + 8·maxN.
func checkPartition(t *testing.T, sizes []int, ranks int) {
	t.Helper()
	blocks := blocksOf(sizes)
	a := Partition(blocks, ranks)
	if err := a.Validate(); err != nil {
		t.Fatalf("sizes %v ranks %d: %v", sizes, ranks, err)
	}
	if b := Partition(blocks, ranks); !reflect.DeepEqual(a, b) {
		t.Fatalf("sizes %v ranks %d: partition not deterministic", sizes, ranks)
	}
	for r, shards := range a.Owners {
		for i := 1; i < len(shards); i++ {
			prev, cur := shards[i-1], shards[i]
			if cur.Block < prev.Block || (cur.Block == prev.Block && cur.RowLo < prev.RowLo) {
				t.Fatalf("rank %d shards not sorted: %+v", r, shards)
			}
		}
	}
	var min, max int64
	for r := 0; r < ranks; r++ {
		b := a.RankBytes(r)
		if r == 0 || b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	total := a.TotalBytes()
	if total == 0 {
		return
	}
	target := (total + int64(ranks) - 1) / int64(ranks)
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	bound := target + 8*int64(maxN)
	if ms := a.MaxShardBytes(); ms > bound {
		t.Fatalf("sizes %v ranks %d: max shard %d exceeds bound %d", sizes, ranks, ms, bound)
	}
	if spread := max - min; spread > a.MaxShardBytes() {
		t.Fatalf("sizes %v ranks %d: load spread %d exceeds max shard %d",
			sizes, ranks, spread, a.MaxShardBytes())
	}
}

func TestPartitionProperties(t *testing.T) {
	cases := [][]int{
		{1},
		{5},
		{3, 3, 3},
		{1, 100},
		{64, 64, 64, 64},
		{7, 19, 2, 31, 11},
		paperSizes,
	}
	for _, sizes := range cases {
		for ranks := 1; ranks <= 6; ranks++ {
			checkPartition(t, sizes, ranks)
		}
	}
}

// TestPartitionPaperBound asserts the issue's memory target: at R=4 on the
// paper's block split, no rank holds more than ~1/3 of the unsharded
// covariance (the largest block alone is 45.6% of the total, so this
// requires the row-slab pre-split — block-granular assignment could not
// meet it).
func TestPartitionPaperBound(t *testing.T) {
	a := Partition(blocksOf(paperSizes), 4)
	total := a.TotalBytes()
	limit := total / 3
	for r := 0; r < 4; r++ {
		if b := a.RankBytes(r); b > limit {
			t.Fatalf("rank %d holds %d bytes > 1/3 of total %d", r, b, total)
		}
	}
	if ratio := a.ImbalanceRatio(); ratio <= 0 || ratio > 2 {
		t.Fatalf("paper split imbalance ratio %v out of expected range", ratio)
	}
}

// TestPartitionMoreRanksThanRows covers the degenerate edge: more ranks
// than partition units leaves some ranks empty (ratio reported as 0, not
// +Inf) while the coverage and bound invariants still hold.
func TestPartitionMoreRanksThanRows(t *testing.T) {
	a := Partition(blocksOf([]int{2}), 5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.ImbalanceRatio(); got != 0 {
		t.Fatalf("imbalance ratio with empty ranks = %v, want 0", got)
	}
}

func TestReassignBytes(t *testing.T) {
	blocks := blocksOf([]int{4, 6})
	from := Partition(blocks, 2)
	if got := ReassignBytes(from, from); got != 0 {
		t.Fatalf("identical assignments move %d bytes, want 0", got)
	}
	to := Partition(blocks, 3)
	moved := ReassignBytes(from, to)
	if moved <= 0 || moved > from.TotalBytes() {
		t.Fatalf("reassign 2->3 ranks moved %d bytes (total %d)", moved, from.TotalBytes())
	}
	// A structural change moves everything.
	other := Partition(blocksOf([]int{4, 7}), 2)
	if got := ReassignBytes(from, other); got != from.TotalBytes() {
		t.Fatalf("structural change moved %d, want total %d", got, from.TotalBytes())
	}
}

// FuzzBlockPartition drives checkPartition's invariants — exact single
// coverage, determinism, sortedness, and the byte-load bound — over
// arbitrary block structures and rank counts.
func FuzzBlockPartition(f *testing.F) {
	f.Add([]byte{10, 20, 30}, 3)
	f.Add([]byte{1}, 1)
	f.Add([]byte{255, 1, 128, 64}, 5)
	f.Fuzz(func(t *testing.T, raw []byte, ranks int) {
		if len(raw) == 0 || len(raw) > 8 {
			t.Skip()
		}
		if ranks < 1 || ranks > 9 {
			t.Skip()
		}
		var sizes []int
		for _, b := range raw {
			sizes = append(sizes, int(b)+1) // 1..256 params per block
		}
		checkPartition(t, sizes, ranks)
	})
}
