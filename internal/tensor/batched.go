package tensor

import "fmt"

// Batched (block-diagonal) GEMM kernels.  A "batched" matrix stacks B
// equally-sized blocks vertically: a (B·m)×k Dense holds B blocks of m×k.
// These kernels mirror the cuBLAS batched GEMMs real DeePMD
// implementations use for the per-atom symmetry-preserving descriptor.

// BatchedMatMul computes per-block a_i·b_i for a (B·m)×k and b (B·k)×n,
// returning (B·m)×n.
func BatchedMatMul(a, b *Dense, batch int) *Dense {
	if batch <= 0 || a.Rows%batch != 0 || b.Rows%batch != 0 {
		panic(fmt.Sprintf("tensor: BatchedMatMul batch %d with %d and %d rows", batch, a.Rows, b.Rows))
	}
	m := a.Rows / batch
	k := a.Cols
	if b.Rows/batch != k {
		panic(fmt.Sprintf("tensor: BatchedMatMul inner dim %d vs %d", k, b.Rows/batch))
	}
	n := b.Cols
	out := New(a.Rows, n)
	for bi := 0; bi < batch; bi++ {
		ab := a.Data[bi*m*k : (bi+1)*m*k]
		bb := b.Data[bi*k*n : (bi+1)*k*n]
		ob := out.Data[bi*m*n : (bi+1)*m*n]
		for i := 0; i < m; i++ {
			arow := ab[i*k : (i+1)*k]
			orow := ob[i*n : (i+1)*n]
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				brow := bb[kk*n : (kk+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	return out
}

// BatchedMatMulTA computes per-block a_iᵀ·b_i for a (B·k)×m and b (B·k)×n,
// returning (B·m)×n.
func BatchedMatMulTA(a, b *Dense, batch int) *Dense {
	if batch <= 0 || a.Rows%batch != 0 || b.Rows%batch != 0 {
		panic(fmt.Sprintf("tensor: BatchedMatMulTA batch %d with %d and %d rows", batch, a.Rows, b.Rows))
	}
	k := a.Rows / batch
	if b.Rows/batch != k {
		panic(fmt.Sprintf("tensor: BatchedMatMulTA inner dim %d vs %d", k, b.Rows/batch))
	}
	m := a.Cols
	n := b.Cols
	out := New(batch*m, n)
	for bi := 0; bi < batch; bi++ {
		ab := a.Data[bi*k*m : (bi+1)*k*m]
		bb := b.Data[bi*k*n : (bi+1)*k*n]
		ob := out.Data[bi*m*n : (bi+1)*m*n]
		for kk := 0; kk < k; kk++ {
			arow := ab[kk*m : (kk+1)*m]
			brow := bb[kk*n : (kk+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := ob[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	return out
}

// BatchedMatMulTB computes per-block a_i·b_iᵀ for a (B·m)×k and b (B·n)×k,
// returning (B·m)×n.
func BatchedMatMulTB(a, b *Dense, batch int) *Dense {
	if batch <= 0 || a.Rows%batch != 0 || b.Rows%batch != 0 {
		panic(fmt.Sprintf("tensor: BatchedMatMulTB batch %d with %d and %d rows", batch, a.Rows, b.Rows))
	}
	m := a.Rows / batch
	n := b.Rows / batch
	k := a.Cols
	if b.Cols != k {
		panic(fmt.Sprintf("tensor: BatchedMatMulTB inner dim %d vs %d", k, b.Cols))
	}
	out := New(batch*m, n)
	for bi := 0; bi < batch; bi++ {
		ab := a.Data[bi*m*k : (bi+1)*m*k]
		bb := b.Data[bi*n*k : (bi+1)*n*k]
		ob := out.Data[bi*m*n : (bi+1)*m*n]
		for i := 0; i < m; i++ {
			arow := ab[i*k : (i+1)*k]
			orow := ob[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bb[j*k : (j+1)*k]
				s := 0.0
				for kk, av := range arow {
					s += av * brow[kk]
				}
				orow[j] = s
			}
		}
	}
	return out
}
