// Package tensor provides dense row-major float64 matrices and the math
// kernels the DeePMD reproduction is built on: blocked matrix multiply,
// element-wise maps, reductions, and the fused kernels that back the
// paper's kernel-fusion optimizations (Opt2/Opt3 in Section 3.4).
//
// A Dense value is a matrix; vectors are represented as n×1 matrices.  All
// kernels are plain Go so the simulated-device layer above can account
// launches, flops and bytes deterministically.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense row-major matrix of float64.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (not copied) as an r×c matrix.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", r, c, r*c, len(data)))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// Vector returns data wrapped as an n×1 column vector (not copied).
func Vector(data []float64) *Dense { return FromSlice(len(data), 1, data) }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Len returns the number of elements.
func (m *Dense) Len() int { return m.Rows * m.Cols }

// SameShape reports whether m and o have identical dimensions.
func (m *Dense) SameShape(o *Dense) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// Reshape returns a view of m's data with new dimensions r×c.  The element
// count must be preserved; the returned matrix shares m's backing slice.
func (m *Dense) Reshape(r, c int) *Dense {
	if r*c != m.Len() {
		panic(fmt.Sprintf("tensor: reshape %dx%d -> %dx%d changes size", m.Rows, m.Cols, r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: m.Data}
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies o's contents into m; shapes must match.
func (m *Dense) CopyFrom(o *Dense) {
	if !m.SameShape(o) {
		panic(shapeErr("CopyFrom", m, o))
	}
	copy(m.Data, o.Data)
}

func shapeErr(op string, a, b *Dense) string {
	return fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols)
}

// Add returns a+b.
func Add(a, b *Dense) *Dense {
	if !a.SameShape(b) {
		panic(shapeErr("Add", a, b))
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a-b.
func Sub(a, b *Dense) *Dense {
	if !a.SameShape(b) {
		panic(shapeErr("Sub", a, b))
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// MulElem returns the element-wise (Hadamard) product a⊙b.
func MulElem(a, b *Dense) *Dense {
	if !a.SameShape(b) {
		panic(shapeErr("MulElem", a, b))
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(s float64, a *Dense) *Dense {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// AddScaled performs dst += s·src in place (AXPY).
func AddScaled(dst *Dense, s float64, src *Dense) {
	if !dst.SameShape(src) {
		panic(shapeErr("AddScaled", dst, src))
	}
	for i, v := range src.Data {
		dst.Data[i] += s * v
	}
}

// Tanh returns element-wise tanh(a).
func Tanh(a *Dense) *Dense {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// TanhPrimeFromOutput returns 1-y² element-wise, the derivative of tanh
// expressed in terms of its output y.
func TanhPrimeFromOutput(y *Dense) *Dense {
	out := New(y.Rows, y.Cols)
	for i, v := range y.Data {
		out.Data[i] = 1 - v*v
	}
	return out
}

// Transpose returns aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func Sum(a *Dense) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func Mean(a *Dense) float64 {
	if a.Len() == 0 {
		return 0
	}
	return Sum(a) / float64(a.Len())
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Dense) float64 {
	if a.Len() != b.Len() {
		panic(shapeErr("Dot", a, b))
	}
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a viewed as a flat vector.
func Norm2(a *Dense) float64 { return math.Sqrt(Dot(a, a)) }

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func MaxAbs(a *Dense) float64 {
	m := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// AddRowVec returns a with the 1×c row vector b added to every row.
func AddRowVec(a, b *Dense) *Dense {
	if b.Rows != 1 || b.Cols != a.Cols {
		panic(shapeErr("AddRowVec", a, b))
	}
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			orow[j] = v + b.Data[j]
		}
	}
	return out
}

// ColSum returns the 1×c row vector of column sums of a (the adjoint of a
// row broadcast).
func ColSum(a *Dense) *Dense {
	out := New(1, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// SliceCols returns a copy of columns [lo,hi) of a.
func SliceCols(a *Dense, lo, hi int) *Dense {
	if lo < 0 || hi > a.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", lo, hi, a.Cols))
	}
	out := New(a.Rows, hi-lo)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], a.Data[i*a.Cols+lo:i*a.Cols+hi])
	}
	return out
}

// AccumulateCols adds src into columns [lo,lo+src.Cols) of dst in place;
// it is the adjoint of SliceCols.
func AccumulateCols(dst *Dense, lo int, src *Dense) {
	if src.Rows != dst.Rows || lo < 0 || lo+src.Cols > dst.Cols {
		panic(fmt.Sprintf("tensor: AccumulateCols src %dx%d at col %d of %dx%d",
			src.Rows, src.Cols, lo, dst.Rows, dst.Cols))
	}
	for i := 0; i < dst.Rows; i++ {
		d := dst.Data[i*dst.Cols+lo : i*dst.Cols+lo+src.Cols]
		s := src.Data[i*src.Cols : (i+1)*src.Cols]
		for j, v := range s {
			d[j] += v
		}
	}
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	if m.Len() > 64 {
		return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
