package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The fuzz targets below pin the worker pool's bitwise determinism
// contract on the three kernels the pipelined Kalman update leans on:
// whatever shapes and values the fuzzer invents, running the kernel on one
// worker and on several must produce identical bits.  They run in `make
// ci` with a short -fuzztime, and any corpus the fuzzer saves becomes a
// permanent regression seed.

// clampDim maps an arbitrary fuzzed int into [1, limit].
func clampDim(d, limit int) int {
	d %= limit
	if d < 0 {
		d += limit
	}
	return d + 1
}

// bitsEqual compares two slices at full precision (NaN-safe, unlike ==).
func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

func FuzzGEMMParallelMatchesSerial(f *testing.F) {
	f.Add(int64(1), 3, 4, 5)
	f.Add(int64(7), 65, 1, 64)  // spans the cache-block edge
	f.Add(int64(42), 1, 80, 1)  // degenerate vector shapes
	f.Add(int64(9), 17, 33, 29) // odd everything
	f.Fuzz(func(t *testing.T, seed int64, rows, inner, cols int) {
		rows, inner, cols = clampDim(rows, 80), clampDim(inner, 80), clampDim(cols, 80)
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rows, inner, 1, rng)
		b := RandNormal(inner, cols, 1, rng)

		prev := SetWorkers(1)
		serial := New(rows, cols)
		gemmInto(serial, a, b)
		SetWorkers(5)
		parallel := New(rows, cols)
		gemmInto(parallel, a, b)
		SetWorkers(prev)

		if i, ok := bitsEqual(serial.Data, parallel.Data); !ok {
			t.Fatalf("gemmInto %dx%dx%d: elem %d = %x (parallel) vs %x (serial)",
				rows, inner, cols, i,
				math.Float64bits(parallel.Data[i]), math.Float64bits(serial.Data[i]))
		}
	})
}

func FuzzPUpdateFusedParallelMatchesSerial(f *testing.F) {
	f.Add(int64(1), 8, 0.5, 0.98)
	f.Add(int64(3), 96, 2.0, 0.9)  // the striped kernel's larger shapes
	f.Add(int64(5), 1, 0.001, 0.5) // single-element P
	f.Add(int64(11), 65, 10.0, 0.99)
	f.Fuzz(func(t *testing.T, seed int64, n int, a, lambda float64) {
		n = clampDim(n, 96)
		// keep the scalars in the regime the filter produces: a > 0 from the
		// gain denominator, λ ∈ (0, 1] from the memory schedule.
		if math.IsNaN(a) || math.IsInf(a, 0) || a <= 0 {
			a = 0.75
		}
		if math.IsNaN(lambda) || lambda <= 0 || lambda > 1 {
			lambda = 0.98
		}
		rng := rand.New(rand.NewSource(seed))
		p := RandNormal(n, n, 1, rng)
		SymmetrizeInPlace(p)
		k := RandNormal(n, 1, 1, rng)

		pSerial := p.Clone()
		pParallel := p.Clone()
		prev := SetWorkers(1)
		PUpdateFused(pSerial, k, a, lambda)
		SetWorkers(6)
		PUpdateFused(pParallel, k, a, lambda)
		SetWorkers(prev)

		if i, ok := bitsEqual(pSerial.Data, pParallel.Data); !ok {
			t.Fatalf("PUpdateFused n=%d a=%v λ=%v: elem %d diverged", n, a, lambda, i)
		}
		if !IsSymmetric(pParallel, 0) {
			t.Fatalf("PUpdateFused n=%d: result not bitwise symmetric", n)
		}
	})
}

func FuzzSymMatVecParallelMatchesSerial(f *testing.F) {
	f.Add(int64(1), 8)
	f.Add(int64(2), 96)
	f.Add(int64(13), 1)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		n = clampDim(n, 96)
		rng := rand.New(rand.NewSource(seed))
		p := RandNormal(n, n, 1, rng)
		SymmetrizeInPlace(p)
		x := RandNormal(n, 1, 1, rng)

		ySerial := New(n, 1)
		yParallel := New(n, 1)
		prev := SetWorkers(1)
		SymMatVecInto(ySerial, p, x)
		SetWorkers(5)
		SymMatVecInto(yParallel, p, x)
		SetWorkers(prev)

		if i, ok := bitsEqual(ySerial.Data, yParallel.Data); !ok {
			t.Fatalf("SymMatVecInto n=%d: elem %d diverged", n, i)
		}
	})
}
