package tensor

import (
	"fmt"
	"math"
)

// This file holds the fused kernels the paper's system optimizations are
// built from.  The unfused counterparts are compositions of the primitives
// in tensor.go/gemm.go; the fused versions compute the same values in a
// single pass so the simulated device charges one kernel launch and no
// intermediate allocations, mirroring Opt2 (kernel fusion) and Opt3 (the
// handwritten P-update kernel and Pg reuse) of Section 3.4.

// AffineTanh returns tanh(x·w + 1⊗b) in one fused pass, where b is a 1×c
// bias row broadcast over rows.  It is the embedding/fitting layer kernel.
func AffineTanh(x, w, b *Dense) *Dense {
	if x.Cols != w.Rows || b.Rows != 1 || b.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: AffineTanh x %dx%d w %dx%d b %dx%d",
			x.Rows, x.Cols, w.Rows, w.Cols, b.Rows, b.Cols))
	}
	out := New(x.Rows, w.Cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Data[i*w.Cols:(i+1)*w.Cols], b.Data)
	}
	gemmInto(out, x, w)
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// ResidualAffineTanh returns x + tanh(x·w + 1⊗b) in one fused pass; w must
// be square so the residual shapes match (the E1/E2 and F1/F2 layers of the
// DeePMD embedding and fitting nets).
func ResidualAffineTanh(x, w, b *Dense) *Dense {
	if w.Rows != w.Cols {
		panic(fmt.Sprintf("tensor: ResidualAffineTanh needs square w, got %dx%d", w.Rows, w.Cols))
	}
	out := AffineTanh(x, w, b)
	for i, v := range x.Data {
		out.Data[i] += v
	}
	return out
}

// PUpdateNaive performs the framework-style (unfused) covariance update of
// Algorithm 1 lines 10-11:
//
//	P ← (1/λ)·(P − (1/a)·K·Kᵀ)
//	P ← (P + Pᵀ)/2
//
// materializing the K·Kᵀ outer product and the transpose, exactly like the
// torch.matmul implementation the paper replaces.  It returns the two
// temporaries' sizes in elements so callers can account device memory.
func PUpdateNaive(p, k *Dense, a, lambda float64) (tmpElems int64) {
	n := p.Rows
	if p.Cols != n || k.Rows != n || k.Cols != 1 {
		panic(fmt.Sprintf("tensor: PUpdateNaive P %dx%d k %dx%d", p.Rows, p.Cols, k.Rows, k.Cols))
	}
	kkt := Outer(k, k) // N×N temporary (the memory overhead the paper measures)
	invA := 1 / a
	invL := 1 / lambda
	for i, v := range p.Data {
		p.Data[i] = invL * (v - invA*kkt.Data[i])
	}
	pt := Transpose(p) // second N×N temporary for the symmetrization
	for i, v := range p.Data {
		p.Data[i] = 0.5 * (v + pt.Data[i])
	}
	return int64(2 * n * n)
}

// PUpdateFused is the handwritten single-pass kernel of Opt3.  It computes
// the same update as PUpdateNaive — (1/λ)(P − (1/a)KKᵀ) followed by
// symmetrization — but walks the upper triangle once, writes both mirror
// elements, and allocates nothing.
//
// Rows are striped round-robin across the worker pool: iteration i reads
// and writes exactly the element pairs {(i,j),(j,i) : j ≥ i}, i.e. the
// pairs whose smaller index is i, so stripes touch disjoint memory and
// the result is bitwise identical at every worker count.  Striping (rather
// than contiguous ranges) balances the triangular row costs.
func PUpdateFused(p, k *Dense, a, lambda float64) {
	n := p.Rows
	if p.Cols != n || k.Rows != n || k.Cols != 1 {
		panic(fmt.Sprintf("tensor: PUpdateFused P %dx%d k %dx%d", p.Rows, p.Cols, k.Rows, k.Cols))
	}
	invA := 1 / a
	invL := 1 / lambda
	flops := 3 * int64(n) * int64(n)
	parallelStriped(n, flops, func(start, stride int) {
		for i := start; i < n; i += stride {
			ki := k.Data[i]
			rowI := p.Data[i*n:]
			p.Data[i*n+i] = invL * (p.Data[i*n+i] - invA*ki*ki)
			for j := i + 1; j < n; j++ {
				// symmetrize and update in one expression; KKᵀ is symmetric
				// already, so only P needs averaging.
				v := invL * (0.5*(rowI[j]+p.Data[j*n+i]) - invA*ki*k.Data[j])
				rowI[j] = v
				p.Data[j*n+i] = v
			}
		}
	})
}

// SymmetrizeInPlace replaces p with (p + pᵀ)/2 without temporaries.
func SymmetrizeInPlace(p *Dense) {
	n := p.Rows
	if p.Cols != n {
		panic(fmt.Sprintf("tensor: SymmetrizeInPlace needs square, got %dx%d", p.Rows, p.Cols))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (p.Data[i*n+j] + p.Data[j*n+i])
			p.Data[i*n+j] = v
			p.Data[j*n+i] = v
		}
	}
}

// IsSymmetric reports whether p equals pᵀ within tol.
func IsSymmetric(p *Dense, tol float64) bool {
	if p.Rows != p.Cols {
		return false
	}
	n := p.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(p.Data[i*n+j]-p.Data[j*n+i]) > tol {
				return false
			}
		}
	}
	return true
}

// CholeskyPD reports whether the symmetric matrix p is positive definite
// by attempting an in-place-free Cholesky factorization p = L·Lᵀ; it
// succeeds iff every pivot stays strictly positive.  The EKF property
// tests use it: the covariance update P ← (1/λ)(P − (1/a)KKᵀ) must keep
// every P block positive definite, since a is chosen so the subtracted
// rank-1 term never overshoots.
func CholeskyPD(p *Dense) bool {
	n := p.Rows
	if p.Cols != n || n == 0 {
		return false
	}
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := p.Data[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return false
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return true
}

// OuterViaGEMM computes K·Kᵀ the way a framework GEMM does (the paper's
// Supplementary I): K is padded to a tile-width matrix of kTile columns
// and multiplied as a general matrix product, executing kTile× the
// multiply-adds of the rank-1 outer product.  It exists as the measured
// counterpart of the handwritten kernel in the optimizer ablations.
func OuterViaGEMM(k *Dense, kTile int) *Dense {
	if k.Cols != 1 {
		panic(fmt.Sprintf("tensor: OuterViaGEMM wants a column vector, got %dx%d", k.Rows, k.Cols))
	}
	if kTile < 1 {
		kTile = 1
	}
	padded := New(k.Rows, kTile)
	for i := 0; i < k.Rows; i++ {
		padded.Data[i*kTile] = k.Data[i]
	}
	return MatMulTB(padded, padded)
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	out := New(n, n)
	for i := 0; i < n; i++ {
		out.Data[i*n+i] = 1
	}
	return out
}
