package tensor

import (
	"bytes"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// withWorkers runs fn with the pool set to w workers, restoring the
// previous setting afterwards.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	prev := SetWorkers(w)
	defer SetWorkers(prev)
	fn()
}

// workerCounts exercises serial, fewer-workers-than-rows, more-workers-
// than-rows, and the benchmark sizes.
var workerCounts = []int{1, 2, 3, 4, 8}

// oddShapes stresses the sharding boundaries: single rows/cols, fewer
// rows than workers, and sizes that are not multiples of the GEMM tile.
var oddShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 5, 3},
	{3, 1, 7},
	{2, 3, 2},
	{5, 7, 3},
	{7, 64, 7},
	{63, 65, 31},
	{65, 63, 66},
	{128, 64, 96},
}

func randDense(r, c int, rng *rand.Rand) *Dense {
	out := New(r, c)
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64()
	}
	return out
}

// bitwiseEqual asserts exact (not tolerance-based) equality: the pool's
// determinism contract is that parallel kernels reproduce the serial
// result bit for bit.
func bitwiseEqual(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if v != want.Data[i] {
			t.Fatalf("%s: elem %d = %v want %v (not bitwise identical)", name, i, v, want.Data[i])
		}
	}
}

func TestParallelGEMMBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range oddShapes {
		a := randDense(sh.m, sh.k, rng)
		b := randDense(sh.k, sh.n, rng)
		bt := Transpose(b)
		at := Transpose(a)
		var serial struct{ mm, ta, tb *Dense }
		withWorkers(t, 1, func() {
			serial.mm = MatMul(a, b)
			serial.ta = MatMulTA(at, b)
			serial.tb = MatMulTB(a, bt)
		})
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				bitwiseEqual(t, "MatMul", MatMul(a, b), serial.mm)
				bitwiseEqual(t, "MatMulTA", MatMulTA(at, b), serial.ta)
				bitwiseEqual(t, "MatMulTB", MatMulTB(a, bt), serial.tb)
			})
		}
	}
}

func TestParallelMatVecBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 2, 3, 5, 63, 129, 300} {
		p := randDense(n, n, rng)
		SymmetrizeInPlace(p)
		x := randDense(n, 1, rng)
		a := randDense(n, n, rng)
		var wantSym, wantMV *Dense
		withWorkers(t, 1, func() {
			wantSym = New(n, 1)
			SymMatVecInto(wantSym, p, x)
			wantMV = MatVec(a, x)
		})
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				y := New(n, 1)
				SymMatVecInto(y, p, x)
				bitwiseEqual(t, "SymMatVecInto", y, wantSym)
				bitwiseEqual(t, "MatVec", MatVec(a, x), wantMV)
			})
		}
	}
}

func TestParallelPUpdateFusedBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{1, 2, 3, 5, 8, 64, 129, 257} {
		p0 := randDense(n, n, rng)
		SymmetrizeInPlace(p0)
		k := randDense(n, 1, rng)
		var want *Dense
		withWorkers(t, 1, func() {
			want = p0.Clone()
			PUpdateFused(want, k, 1.3, 0.98)
		})
		for _, w := range workerCounts {
			withWorkers(t, w, func() {
				got := p0.Clone()
				PUpdateFused(got, k, 1.3, 0.98)
				bitwiseEqual(t, "PUpdateFused", got, want)
			})
		}
	}
}

// TestParallelPUpdateFusedMatchesNaive guards the numerics across the
// parallel path: the striped fused kernel must still agree with the
// framework-style reference update.
func TestParallelPUpdateFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n = 65
	p0 := randDense(n, n, rng)
	SymmetrizeInPlace(p0)
	k := randDense(n, 1, rng)
	ref := p0.Clone()
	PUpdateNaive(ref, k, 1.1, 0.95)
	withWorkers(t, 4, func() {
		got := p0.Clone()
		PUpdateFused(got, k, 1.1, 0.95)
		if !Equal(got, ref, 1e-12) {
			t.Fatal("parallel fused P update diverges from naive reference")
		}
	})
}

// TestNestedParallelFor exercises the saturation path: ParallelFor called
// from inside pool workers must fall back to inline execution instead of
// deadlocking, and still cover every index exactly once.
func TestNestedParallelFor(t *testing.T) {
	withWorkers(t, 4, func() {
		const outer, inner = 8, 100
		sums := make([][]int, outer)
		ParallelFor(outer, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				marks := make([]int, inner)
				ParallelFor(inner, func(l, h int) {
					for j := l; j < h; j++ {
						marks[j]++
					}
				})
				sums[i] = marks
			}
		})
		for i, marks := range sums {
			for j, c := range marks {
				if c != 1 {
					t.Fatalf("outer %d inner %d visited %d times", i, j, c)
				}
			}
		}
	})
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d want 3", got)
	}
	if got := SetWorkers(0); got != 3 {
		t.Fatalf("SetWorkers returned %d want previous 3", got)
	}
	if Workers() < 1 {
		t.Fatal("SetWorkers(0) must reset to a positive default")
	}
}

func TestParallelForEmptyAndSingle(t *testing.T) {
	withWorkers(t, 4, func() {
		ParallelFor(0, func(lo, hi int) { t.Fatal("fn called for n=0") })
		calls := 0
		ParallelFor(1, func(lo, hi int) {
			calls++
			if lo != 0 || hi != 1 {
				t.Fatalf("range [%d,%d) want [0,1)", lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("fn called %d times want 1", calls)
		}
	})
}

// An invalid FEKF_WORKERS value must not be silently ignored: the resolver
// falls back to GOMAXPROCS and says so on its warning sink, naming the bad
// value and the fallback.
func TestDefaultWorkersWarnsOnInvalidEnv(t *testing.T) {
	check := func(env string, want int, wantWarn bool) {
		t.Helper()
		t.Setenv("FEKF_WORKERS", env)
		var buf bytes.Buffer
		if got := defaultWorkersTo(&buf); got != want {
			t.Fatalf("FEKF_WORKERS=%q resolved to %d workers, want %d", env, got, want)
		}
		if wantWarn {
			msg := buf.String()
			if !strings.Contains(msg, "FEKF_WORKERS") || !strings.Contains(msg, env) ||
				!strings.Contains(msg, "GOMAXPROCS") {
				t.Fatalf("FEKF_WORKERS=%q warning does not name the bad value and fallback: %q", env, msg)
			}
		} else if buf.Len() != 0 {
			t.Fatalf("FEKF_WORKERS=%q warned unexpectedly: %q", env, buf.String())
		}
	}
	gmp := runtime.GOMAXPROCS(0)
	check("banana", gmp, true) // not a number
	check("-2", gmp, true)     // not positive
	check("0", gmp, true)      // not positive
	check("3.5", gmp, true)    // not an integer
	check("3", 3, false)       // valid: used silently
	check("", gmp, false)      // unset-equivalent: silent fallback
}
