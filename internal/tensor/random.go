package tensor

import (
	"math"
	"math/rand"
)

// RandNormal returns an r×c matrix with i.i.d. N(0, std²) entries drawn
// from rng.
func RandNormal(r, c int, std float64, rng *rand.Rand) *Dense {
	out := New(r, c)
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64() * std
	}
	return out
}

// RandUniform returns an r×c matrix with i.i.d. U(lo,hi) entries.
func RandUniform(r, c int, lo, hi float64, rng *rand.Rand) *Dense {
	out := New(r, c)
	for i := range out.Data {
		out.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// XavierInit returns an r×c weight matrix initialized with the Glorot
// normal scheme std = sqrt(2/(fanIn+fanOut)), the initialization used by
// the DeePMD reference implementation for its tanh networks.
func XavierInit(r, c int, rng *rand.Rand) *Dense {
	std := math.Sqrt(2 / float64(r+c))
	return RandNormal(r, c, std, rng)
}
