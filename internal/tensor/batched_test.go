package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// blockRef computes the batched products block-by-block with the plain
// kernels, as the correctness reference.
func blockRef(kind string, a, b *Dense, batch int) *Dense {
	var parts []*Dense
	switch kind {
	case "ab":
		m, k, n := a.Rows/batch, a.Cols, b.Cols
		for i := 0; i < batch; i++ {
			ai := FromSlice(m, k, a.Data[i*m*k:(i+1)*m*k])
			bi := FromSlice(k, n, b.Data[i*k*n:(i+1)*k*n])
			parts = append(parts, MatMul(ai, bi))
		}
	case "ta":
		k, m, n := a.Rows/batch, a.Cols, b.Cols
		for i := 0; i < batch; i++ {
			ai := FromSlice(k, m, a.Data[i*k*m:(i+1)*k*m])
			bi := FromSlice(k, n, b.Data[i*k*n:(i+1)*k*n])
			parts = append(parts, MatMulTA(ai, bi))
		}
	case "tb":
		m, k, n := a.Rows/batch, a.Cols, b.Rows/batch
		for i := 0; i < batch; i++ {
			ai := FromSlice(m, k, a.Data[i*m*k:(i+1)*m*k])
			bi := FromSlice(n, k, b.Data[i*n*k:(i+1)*n*k])
			parts = append(parts, MatMulTB(ai, bi))
		}
	}
	rows := 0
	for _, p := range parts {
		rows += p.Rows
	}
	out := New(rows, parts[0].Cols)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += p.Len()
	}
	return out
}

func TestPropBatchedMatMulFamily(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		batch := 1 + r.Intn(4)
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := RandNormal(batch*m, k, 1, r)
		b := RandNormal(batch*k, n, 1, r)
		if !Equal(BatchedMatMul(a, b, batch), blockRef("ab", a, b, batch), 1e-10) {
			return false
		}
		at := RandNormal(batch*k, m, 1, r)
		if !Equal(BatchedMatMulTA(at, b, batch), blockRef("ta", at, b, batch), 1e-10) {
			return false
		}
		bt := RandNormal(batch*n, k, 1, r)
		if !Equal(BatchedMatMulTB(a, bt, batch), blockRef("tb", a, bt, batch), 1e-10) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on indivisible batch")
		}
	}()
	BatchedMatMul(New(5, 2), New(4, 2), 2)
}
