package tensor

import "fmt"

// blockSize is the cache-blocking tile edge for the GEMM kernels.  64
// float64 columns is 512 bytes per row strip, which keeps three tiles
// resident in a typical 32 KiB L1 cache.
const blockSize = 64

// The GEMM-family kernels below are row-sharded across the package worker
// pool: each shard owns a disjoint range of *output* rows and runs the
// serial kernel's exact per-element accumulation order inside it, so the
// results are bitwise identical at every worker count (the determinism
// contract tested in pool_test.go).

// MatMul returns a·b.
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	gemmInto(out, a, b)
	return out
}

// gemmInto computes out += a·b with an ikj loop order, which streams b and
// out rows sequentially; out must be pre-sized (a.Rows × b.Cols).  Output
// rows are sharded across the worker pool.
func gemmInto(out, a, b *Dense) {
	flops := 2 * int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	parallelRows(a.Rows, flops, func(lo, hi int) {
		gemmRows(out, a, b, lo, hi)
	})
}

// gemmRows computes rows [lo,hi) of out += a·b, cache-blocked over the
// row range and the shared dimension.
func gemmRows(out, a, b *Dense, lo, hi int) {
	n := b.Cols
	for i0 := lo; i0 < hi; i0 += blockSize {
		i1 := min(i0+blockSize, hi)
		for k0 := 0; k0 < a.Cols; k0 += blockSize {
			k1 := min(k0+blockSize, a.Cols)
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				orow := out.Data[i*n : (i+1)*n]
				for k := k0; k < k1; k++ {
					aik := arow[k]
					if aik == 0 {
						continue
					}
					brow := b.Data[k*n : (k+1)*n]
					for j, bv := range brow {
						orow[j] += aik * bv
					}
				}
			}
		}
	}
}

// MatMulTA returns aᵀ·b without materializing the transpose.  Each shard
// owns output rows [lo,hi) — columns [lo,hi) of a — and streams a and b
// rows in the same k order as the serial kernel.
func MatMulTA(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTA %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	n := b.Cols
	flops := 2 * int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	parallelRows(a.Cols, flops, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Data[k*a.Cols : (k+1)*a.Cols]
			brow := b.Data[k*n : (k+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulTB returns a·bᵀ without materializing the transpose; output rows
// are sharded across the worker pool.
func MatMulTB(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTB %dx%d ·ᵀ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	flops := 2 * int64(a.Rows) * int64(a.Cols) * int64(b.Rows)
	parallelRows(a.Rows, flops, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*b.Rows : (i+1)*b.Rows]
			for j := 0; j < b.Rows; j++ {
				brow := b.Data[j*b.Cols : (j+1)*b.Cols]
				s := 0.0
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// MatVec returns the matrix-vector product a·x where x is n×1.
func MatVec(a, x *Dense) *Dense {
	if x.Cols != 1 || a.Cols != x.Rows {
		panic(fmt.Sprintf("tensor: MatVec %dx%d · %dx%d", a.Rows, a.Cols, x.Rows, x.Cols))
	}
	out := New(a.Rows, 1)
	flops := 2 * int64(a.Rows) * int64(a.Cols)
	parallelRows(a.Rows, flops, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*a.Cols : (i+1)*a.Cols]
			s := 0.0
			for k, v := range row {
				s += v * x.Data[k]
			}
			out.Data[i] = s
		}
	})
	return out
}

// SymMatVecInto computes y = P·x for symmetric P, writing into y (n×1).
// It exists so that the optimizer's hot path allocates nothing; rows are
// sharded across the worker pool.
func SymMatVecInto(y, p, x *Dense) {
	n := p.Rows
	if p.Cols != n || x.Rows != n || x.Cols != 1 || y.Rows != n || y.Cols != 1 {
		panic(fmt.Sprintf("tensor: SymMatVecInto P %dx%d x %dx%d y %dx%d",
			p.Rows, p.Cols, x.Rows, x.Cols, y.Rows, y.Cols))
	}
	flops := 2 * int64(n) * int64(n)
	parallelRows(n, flops, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := p.Data[i*n : (i+1)*n]
			s := 0.0
			for k, v := range row {
				s += v * x.Data[k]
			}
			y.Data[i] = s
		}
	})
}

// Outer returns the outer product x·yᵀ of column vectors x (m×1) and y (n×1).
func Outer(x, y *Dense) *Dense {
	if x.Cols != 1 || y.Cols != 1 {
		panic(fmt.Sprintf("tensor: Outer wants column vectors, got %dx%d and %dx%d", x.Rows, x.Cols, y.Rows, y.Cols))
	}
	out := New(x.Rows, y.Rows)
	flops := int64(x.Rows) * int64(y.Rows)
	parallelRows(x.Rows, flops, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x.Data[i]
			row := out.Data[i*y.Rows : (i+1)*y.Rows]
			for j := 0; j < y.Rows; j++ {
				row[j] = xi * y.Data[j]
			}
		}
	})
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
