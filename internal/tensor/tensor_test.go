package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Dense {
	return RandNormal(r, c, 1, rng)
}

// naiveMatMul is the obviously-correct triple loop used as the reference
// for the blocked kernels.
func naiveMatMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {7, 7, 7}, {65, 70, 66}, {128, 3, 129}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !Equal(got, want, 1e-10) {
			t.Fatalf("MatMul %v mismatch", dims)
		}
	}
}

func TestMatMulTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 17, 9)
	b := randMat(rng, 17, 13)
	if !Equal(MatMulTA(a, b), MatMul(Transpose(a), b), 1e-10) {
		t.Fatal("MatMulTA != Aᵀ·B")
	}
	c := randMat(rng, 11, 9)
	if !Equal(MatMulTB(a, c), MatMul(a, Transpose(c)), 1e-10) {
		t.Fatal("MatMulTB != A·Bᵀ")
	}
}

func TestMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 8, 5)
	x := randMat(rng, 5, 1)
	if !Equal(MatVec(a, x), MatMul(a, x), 1e-12) {
		t.Fatal("MatVec != MatMul")
	}
}

func TestSymMatVecInto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, 6, 6)
	p := Add(m, Transpose(m)) // symmetric
	x := randMat(rng, 6, 1)
	y := New(6, 1)
	SymMatVecInto(y, p, x)
	if !Equal(y, MatMul(p, x), 1e-12) {
		t.Fatal("SymMatVecInto mismatch")
	}
}

func TestOuter(t *testing.T) {
	x := Vector([]float64{1, 2})
	y := Vector([]float64{3, 4, 5})
	got := Outer(x, y)
	want := FromSlice(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !Equal(got, want, 0) {
		t.Fatalf("Outer = %v", got)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestPropTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		return Equal(Transpose(MatMul(a, b)), MatMul(Transpose(b), Transpose(a)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestPropDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		c := randMat(r, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(x, A·y) == Dot(Aᵀ·x, y) (adjoint identity used throughout
// the autodiff engine).
func TestPropAdjointIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		a := randMat(r, m, n)
		x := randMat(r, m, 1)
		y := randMat(r, n, 1)
		return math.Abs(Dot(x, MatMul(a, y))-Dot(MatMul(Transpose(a), x), y)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if !Equal(Add(a, b), FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatal("Add")
	}
	if !Equal(Sub(b, a), FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatal("Sub")
	}
	if !Equal(MulElem(a, b), FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatal("MulElem")
	}
	if !Equal(Scale(2, a), FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatal("Scale")
	}
	c := a.Clone()
	AddScaled(c, -1, a)
	if Norm2(c) != 0 {
		t.Fatal("AddScaled")
	}
}

func TestReductionsAndNorms(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, -2, 3, -4})
	if Sum(a) != -2 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != -0.5 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if MaxAbs(a) != 4 {
		t.Fatalf("MaxAbs = %v", MaxAbs(a))
	}
	if math.Abs(Norm2(a)-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	if Mean(New(0, 3)) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestAddRowVecColSumAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 5, 3)
	b := randMat(rng, 1, 3)
	got := AddRowVec(a, b)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != a.At(i, j)+b.At(0, j) {
				t.Fatal("AddRowVec wrong")
			}
		}
	}
	cs := ColSum(a)
	for j := 0; j < 3; j++ {
		s := 0.0
		for i := 0; i < 5; i++ {
			s += a.At(i, j)
		}
		if math.Abs(cs.At(0, j)-s) > 1e-12 {
			t.Fatal("ColSum wrong")
		}
	}
}

func TestSliceColsAndAccumulate(t *testing.T) {
	a := FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	s := SliceCols(a, 1, 3)
	if !Equal(s, FromSlice(2, 2, []float64{2, 3, 6, 7}), 0) {
		t.Fatalf("SliceCols = %v", s)
	}
	dst := New(2, 4)
	AccumulateCols(dst, 1, s)
	AccumulateCols(dst, 1, s)
	if dst.At(0, 1) != 4 || dst.At(1, 2) != 14 || dst.At(0, 0) != 0 {
		t.Fatalf("AccumulateCols = %v", dst)
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := a.Reshape(3, 2)
	b.Set(0, 0, 99)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestAffineTanhMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 6, 4)
	w := randMat(rng, 4, 5)
	b := randMat(rng, 1, 5)
	got := AffineTanh(x, w, b)
	want := Tanh(AddRowVec(MatMul(x, w), b))
	if !Equal(got, want, 1e-12) {
		t.Fatal("AffineTanh != tanh(XW+b)")
	}
}

func TestResidualAffineTanhMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randMat(rng, 6, 5)
	w := randMat(rng, 5, 5)
	b := randMat(rng, 1, 5)
	got := ResidualAffineTanh(x, w, b)
	want := Add(x, Tanh(AddRowVec(MatMul(x, w), b)))
	if !Equal(got, want, 1e-12) {
		t.Fatal("ResidualAffineTanh != X+tanh(XW+b)")
	}
}

// Property: the fused P update equals the naive framework-style update for
// random symmetric P and random K (the correctness claim behind Opt3).
func TestPropPUpdateFusedEqualsNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		m := randMat(r, n, n)
		p1 := MatMulTA(m, m) // symmetric PSD
		p2 := p1.Clone()
		k := randMat(r, n, 1)
		a := 0.1 + r.Float64()
		lambda := 0.5 + 0.5*r.Float64()
		PUpdateNaive(p1, k, a, lambda)
		PUpdateFused(p2, k, a, lambda)
		return Equal(p1, p2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPUpdateFusedKeepsSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 16
	p := randMat(rng, n, n) // deliberately asymmetric input
	k := randMat(rng, n, 1)
	PUpdateFused(p, k, 1.3, 0.98)
	if !IsSymmetric(p, 1e-12) {
		t.Fatal("PUpdateFused output not symmetric")
	}
}

func TestSymmetrizeAndEye(t *testing.T) {
	p := FromSlice(2, 2, []float64{1, 2, 4, 3})
	SymmetrizeInPlace(p)
	if !Equal(p, FromSlice(2, 2, []float64{1, 3, 3, 3}), 0) {
		t.Fatalf("Symmetrize = %v", p)
	}
	if !IsSymmetric(Eye(4), 0) {
		t.Fatal("Eye not symmetric")
	}
	if Sum(Eye(4)) != 4 {
		t.Fatal("Eye trace wrong")
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Add(New(2, 2), New(3, 3))
}

func TestRandomInit(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := XavierInit(100, 100, rng)
	std := math.Sqrt(2.0 / 200.0)
	// sample std should be within 20% of the target for 10k draws
	var s2 float64
	for _, v := range m.Data {
		s2 += v * v
	}
	got := math.Sqrt(s2 / float64(m.Len()))
	if got < 0.8*std || got > 1.2*std {
		t.Fatalf("Xavier std = %v want ~%v", got, std)
	}
	u := RandUniform(10, 10, -1, 2, rng)
	for _, v := range u.Data {
		if v < -1 || v > 2 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randMat(rng, 128, 128)
	y := randMat(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkPUpdateNaive512(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	p := MatMulTA(randMat(rng, 512, 512), randMat(rng, 512, 512))
	k := randMat(rng, 512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PUpdateNaive(p, k, 1.1, 0.98)
	}
}

func BenchmarkPUpdateFused512(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	p := MatMulTA(randMat(rng, 512, 512), randMat(rng, 512, 512))
	k := randMat(rng, 512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PUpdateFused(p, k, 1.1, 0.98)
	}
}

func TestOuterViaGEMMMatchesOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	k := randMat(rng, 17, 1)
	direct := Outer(k, k)
	for _, tile := range []int{1, 8} {
		if !Equal(OuterViaGEMM(k, tile), direct, 1e-12) {
			t.Fatalf("OuterViaGEMM(tile=%d) differs from Outer", tile)
		}
	}
}

func BenchmarkSupplementaryKKTOuter(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	k := randMat(rng, 512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Outer(k, k)
	}
}

func BenchmarkSupplementaryKKTViaGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	k := randMat(rng, 512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OuterViaGEMM(k, 8)
	}
}
