package tensor

// Host-side worker pool shared by every parallel kernel in this package
// (and, through ParallelFor, by the optimizer's per-block Kalman loop).
//
// Design constraints, in order:
//
//  1. Determinism.  Every parallel kernel partitions its *output* into
//     disjoint ranges and runs the exact per-element accumulation order of
//     the serial kernel inside each range, so results are bitwise
//     identical at every worker count.  Which goroutine executes a shard
//     never affects the values written.
//  2. No deadlock under nesting.  The Kalman optimizer parallelizes over
//     covariance blocks while each block's kernels are themselves
//     parallel.  Shards are handed to pool workers with a non-blocking
//     send on an unbuffered channel: if no worker is idle the submitting
//     goroutine simply runs the shard inline, so a worker can never block
//     waiting on work that only itself could execute.
//  3. Shared capacity.  One process-wide pool sized from GOMAXPROCS (or
//     the FEKF_WORKERS environment variable) serves all callers, so the
//     cluster simulation's rank goroutines compete for the same host
//     cores they would on a real node.
//
// The simulated-device accounting is unaffected: kernels report one
// Launch per logical kernel regardless of how many host shards executed
// it, so modeled device time and kernel counts are identical to the
// serial execution (see DESIGN.md, "Host worker pool").

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
)

// maxPoolWorkers caps the number of persistent pool goroutines; worker
// counts above the cap still shard work but reuse the capped goroutines.
const maxPoolWorkers = 64

// minParallelFlops is the work floor below which row-sharded kernels run
// serially: a shard handoff costs on the order of a microsecond, so tiny
// kernels are cheaper on the calling goroutine.
const minParallelFlops = 1 << 14

var (
	poolMu      sync.Mutex
	poolWorkers int
	poolSpawned int
	poolTasks   = make(chan func()) // unbuffered: send succeeds only to an idle worker
)

func init() {
	poolWorkers = defaultWorkers()
}

// defaultWorkers resolves the initial pool size: FEKF_WORKERS if set and
// positive, else GOMAXPROCS.  An invalid FEKF_WORKERS value is not
// silently ignored: a warning naming the bad value and the fallback goes
// to stderr.
func defaultWorkers() int { return defaultWorkersTo(os.Stderr) }

// defaultWorkersTo is defaultWorkers with an injectable warning sink (the
// unit tests capture it).
func defaultWorkersTo(warn io.Writer) int {
	fallback := runtime.GOMAXPROCS(0)
	if s := os.Getenv("FEKF_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
		fmt.Fprintf(warn, "fekf: invalid FEKF_WORKERS=%q (want a positive integer); falling back to GOMAXPROCS=%d\n",
			s, fallback)
	}
	return fallback
}

// Workers returns the current worker count used to shard parallel kernels.
func Workers() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolWorkers
}

// SetWorkers sets the pool's worker count and returns the previous value.
// n <= 0 resets to the default (FEKF_WORKERS or GOMAXPROCS).  A count of 1
// makes every kernel run serially on the calling goroutine; results are
// bitwise identical at every setting.
func SetWorkers(n int) int {
	if n <= 0 {
		n = defaultWorkers()
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	prev := poolWorkers
	poolWorkers = n
	return prev
}

// ensureWorkers spawns persistent pool goroutines up to min(n, cap).
func ensureWorkers(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	poolMu.Lock()
	for poolSpawned < n {
		poolSpawned++
		go func() {
			for task := range poolTasks {
				task()
			}
		}()
	}
	poolMu.Unlock()
}

// ParallelFor partitions [0,n) into at most Workers() contiguous ranges
// and runs fn on each, returning when all complete.  fn must only write
// state derivable from its own [lo,hi) range; under that contract results
// are independent of the worker count and of shard scheduling.  Shards
// that find no idle pool worker run on the calling goroutine, so nested
// ParallelFor calls degrade to inline execution instead of deadlocking.
func ParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	ensureWorkers(w - 1)
	var wg sync.WaitGroup
	for s := 1; s < w; s++ {
		lo := s * n / w
		hi := (s + 1) * n / w
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case poolTasks <- task:
		default:
			task() // pool saturated (e.g. nested call): run inline
		}
	}
	fn(0, 1*n/w)
	wg.Wait()
}

// parallelRows shards rows of an output across the pool when the kernel's
// total flop count clears the floor; otherwise it runs serially.  The
// flops argument gates only the *scheduling* decision, never the values.
func parallelRows(rows int, flops int64, fn func(lo, hi int)) {
	if flops < minParallelFlops || Workers() <= 1 {
		fn(0, rows)
		return
	}
	ParallelFor(rows, fn)
}

// parallelStriped runs fn(start, stride) on each of up to Workers()
// goroutines with stride = shard count, interleaving rows round-robin.
// Striping balances triangular workloads (row i of the P update touches
// n-i elements) that contiguous ranges would skew toward the first shard.
func parallelStriped(n int, flops int64, fn func(start, stride int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 || flops < minParallelFlops {
		fn(0, 1)
		return
	}
	ensureWorkers(w - 1)
	var wg sync.WaitGroup
	for s := 1; s < w; s++ {
		start := s
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(start, w)
		}
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	fn(0, w)
	wg.Wait()
}
