package nn

import (
	"math"
	"math/rand"
	"testing"

	"fekf/internal/autodiff"
	"fekf/internal/tensor"
)

func buildSet(rng *rand.Rand) *ParamSet {
	ps := &ParamSet{}
	NewDense(ps, "embed0", 1, 4, rng)
	NewDense(ps, "embed1", 4, 4, rng)
	NewDense(ps, "fit0", 8, 3, rng)
	NewDense(ps, "fit1", 3, 1, rng)
	return ps
}

func TestRegisterAndCounts(t *testing.T) {
	ps := buildSet(rand.New(rand.NewSource(1)))
	// embed0: 1*4+4=8, embed1: 4*4+4=20, fit0: 8*3+3=27, fit1: 3*1+1=4
	if ps.NumParams() != 8+20+27+4 {
		t.Fatalf("NumParams = %d", ps.NumParams())
	}
	if ps.NumTensors() != 8 {
		t.Fatalf("NumTensors = %d", ps.NumTensors())
	}
	sizes := ps.Sizes()
	if len(sizes) != 8 || sizes[0] != 4 || sizes[1] != 4 {
		t.Fatalf("Sizes = %v", sizes)
	}
}

func TestLayerSizesGroupsWeightAndBias(t *testing.T) {
	ps := buildSet(rand.New(rand.NewSource(2)))
	got := ps.LayerSizes()
	want := []int{8, 20, 27, 4}
	if len(got) != len(want) {
		t.Fatalf("LayerSizes = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LayerSizes = %v want %v", got, want)
		}
	}
}

func TestFlattenSetAddRoundTrip(t *testing.T) {
	ps := buildSet(rand.New(rand.NewSource(3)))
	v := ps.FlattenValues()
	if len(v) != ps.NumParams() {
		t.Fatalf("flat len %d", len(v))
	}
	delta := make([]float64, len(v))
	for i := range delta {
		delta[i] = 0.5
	}
	ps.AddFlat(delta)
	v2 := ps.FlattenValues()
	for i := range v {
		if math.Abs(v2[i]-v[i]-0.5) > 1e-15 {
			t.Fatal("AddFlat wrong")
		}
	}
	ps.SetFlat(v)
	v3 := ps.FlattenValues()
	for i := range v {
		if v3[i] != v[i] {
			t.Fatal("SetFlat wrong")
		}
	}
}

func TestFlattenAlignedMatchesGradOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := &ParamSet{}
	l := NewDense(ps, "layer", 2, 2, rng)
	g := autodiff.NewGraph(nil)
	vars := ps.BindGraph(g)
	if len(vars) != 2 {
		t.Fatalf("bound %d vars", len(vars))
	}
	x := g.Const(tensor.RandNormal(3, 2, 1, rng))
	out := g.Sum(g.AffineTanh(x, vars[0], vars[1]))
	grads := autodiff.GradScalar(out, vars)
	gt := make([]*tensor.Dense, len(grads))
	for i, gv := range grads {
		gt[i] = gv.Value
	}
	flat := ps.FlattenAligned(gt)
	if len(flat) != ps.NumParams() {
		t.Fatalf("flat grad len %d", len(flat))
	}
	// the first W elements of flat must be the W-grad in row-major order
	if flat[0] != grads[0].Value.Data[0] || flat[l.W.Len()] != grads[1].Value.Data[0] {
		t.Fatal("FlattenAligned ordering mismatch")
	}
	if NormOfFlat(flat) == 0 {
		t.Fatal("gradient identically zero")
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	ps := buildSet(rand.New(rand.NewSource(5)))
	c := ps.Clone()
	c.Tensors()[0].Data[0] = 123
	if ps.Tensors()[0].Data[0] == 123 {
		t.Fatal("clone shares storage")
	}
	ps.CopyFrom(c)
	if ps.Tensors()[0].Data[0] != 123 {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestBindGraphParamsRequireGrad(t *testing.T) {
	ps := buildSet(rand.New(rand.NewSource(6)))
	g := autodiff.NewGraph(nil)
	for _, v := range ps.BindGraph(g) {
		if !v.RequiresGrad() {
			t.Fatal("bound param does not require grad")
		}
	}
}

func TestSetFlatWrongLengthPanics(t *testing.T) {
	ps := buildSet(rand.New(rand.NewSource(7)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ps.SetFlat(make([]float64, 3))
}
