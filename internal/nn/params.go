// Package nn provides the parameter plumbing shared by the DeePMD model
// and its optimizers: an ordered registry of weight tensors with flat
// (vectorized) views.  The flat ordering is the one the EKF optimizers'
// block-splitting strategy operates on, so it is part of the public
// contract: parameters appear in registration order, each flattened
// row-major.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fekf/internal/autodiff"
	"fekf/internal/tensor"
)

// ParamSet is an ordered collection of trainable tensors.
type ParamSet struct {
	names   []string
	tensors []*tensor.Dense
	total   int
}

// Register appends a tensor to the set under the given name and returns it
// for convenience.
func (ps *ParamSet) Register(name string, t *tensor.Dense) *tensor.Dense {
	ps.names = append(ps.names, name)
	ps.tensors = append(ps.tensors, t)
	ps.total += t.Len()
	return t
}

// NumParams returns the total number of scalar parameters.
func (ps *ParamSet) NumParams() int { return ps.total }

// NumTensors returns the number of registered tensors.
func (ps *ParamSet) NumTensors() int { return len(ps.tensors) }

// Names returns the registered tensor names in order.
func (ps *ParamSet) Names() []string { return ps.names }

// Tensors returns the registered tensors in order (aliased).
func (ps *ParamSet) Tensors() []*tensor.Dense { return ps.tensors }

// Sizes returns the per-tensor element counts in registration order; this
// is the layer-size sequence the EKF gather-and-split strategy consumes.
func (ps *ParamSet) Sizes() []int {
	out := make([]int, len(ps.tensors))
	for i, t := range ps.tensors {
		out[i] = t.Len()
	}
	return out
}

// LayerSizes returns element counts grouped per layer, where consecutive
// (weight, bias) registrations belonging to the same layer share a name
// prefix up to the last '/': e.g. "fit0/W" and "fit0/b" form one layer.
// The EKF splitting of the paper works on these per-layer sizes.
func (ps *ParamSet) LayerSizes() []int {
	var out []int
	prev := ""
	for i, name := range ps.names {
		layer := name
		if k := lastSlash(name); k >= 0 {
			layer = name[:k]
		}
		if layer == prev && len(out) > 0 {
			out[len(out)-1] += ps.tensors[i].Len()
		} else {
			out = append(out, ps.tensors[i].Len())
			prev = layer
		}
	}
	return out
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// FlattenValues copies the current parameter values into a new flat vector.
func (ps *ParamSet) FlattenValues() []float64 {
	out := make([]float64, 0, ps.total)
	for _, t := range ps.tensors {
		out = append(out, t.Data...)
	}
	return out
}

// SetFlat overwrites the parameters from a flat vector (length must equal
// NumParams).
func (ps *ParamSet) SetFlat(v []float64) {
	if len(v) != ps.total {
		panic(fmt.Sprintf("nn: SetFlat with %d values for %d params", len(v), ps.total))
	}
	off := 0
	for _, t := range ps.tensors {
		copy(t.Data, v[off:off+t.Len()])
		off += t.Len()
	}
}

// AddFlat adds a flat increment to the parameters in place: w += delta.
func (ps *ParamSet) AddFlat(delta []float64) {
	if len(delta) != ps.total {
		panic(fmt.Sprintf("nn: AddFlat with %d values for %d params", len(delta), ps.total))
	}
	off := 0
	for _, t := range ps.tensors {
		for i := range t.Data {
			t.Data[i] += delta[off+i]
		}
		off += t.Len()
	}
}

// FlattenAligned copies a list of tensors shaped like the parameter set
// (e.g. gradients returned by autodiff.Grad over BindGraph's vars) into a
// flat vector aligned with FlattenValues.
func (ps *ParamSet) FlattenAligned(ts []*tensor.Dense) []float64 {
	if len(ts) != len(ps.tensors) {
		panic(fmt.Sprintf("nn: FlattenAligned got %d tensors, want %d", len(ts), len(ps.tensors)))
	}
	out := make([]float64, 0, ps.total)
	for i, t := range ts {
		if !t.SameShape(ps.tensors[i]) {
			panic(fmt.Sprintf("nn: FlattenAligned tensor %d is %dx%d, want %dx%d",
				i, t.Rows, t.Cols, ps.tensors[i].Rows, ps.tensors[i].Cols))
		}
		out = append(out, t.Data...)
	}
	return out
}

// BindGraph registers every parameter as a Param leaf on g and returns the
// vars in registration order.
func (ps *ParamSet) BindGraph(g *autodiff.Graph) []*autodiff.Var {
	out := make([]*autodiff.Var, len(ps.tensors))
	for i, t := range ps.tensors {
		out[i] = g.Param(t)
	}
	return out
}

// Clone returns a deep copy (for checkpointing / best-model tracking).
func (ps *ParamSet) Clone() *ParamSet {
	c := &ParamSet{}
	for i, t := range ps.tensors {
		c.Register(ps.names[i], t.Clone())
	}
	return c
}

// CopyFrom overwrites this set's values from another set with identical
// structure.
func (ps *ParamSet) CopyFrom(o *ParamSet) {
	if len(o.tensors) != len(ps.tensors) {
		panic("nn: CopyFrom structure mismatch")
	}
	for i, t := range ps.tensors {
		t.CopyFrom(o.tensors[i])
	}
}

// Dense is a fully-connected layer's parameters: output = act(x·W + b).
type Dense struct {
	W *tensor.Dense // in×out
	B *tensor.Dense // 1×out
}

// NewDense registers a Xavier-initialized in×out dense layer under the
// given layer name.
func NewDense(ps *ParamSet, name string, in, out int, rng *rand.Rand) Dense {
	w := ps.Register(name+"/W", tensor.XavierInit(in, out, rng))
	b := ps.Register(name+"/b", tensor.RandNormal(1, out, 0.01, rng))
	return Dense{W: w, B: b}
}

// NormOfFlat returns the Euclidean norm of a flat vector; a convenience for
// gradient diagnostics.
func NormOfFlat(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
