package experiments

import (
	"fmt"
	"io"

	"fekf/internal/stats"
)

// SeededResults holds the per-seed suites of one system, supporting the
// paper's ±-error reporting (Tables 1 and 4 quote mean ±std over repeated
// runs).
type SeededResults struct {
	System string
	Runs   []SystemResult
}

// RunSuiteSeeds repeats the system suite for each seed.  It is expensive
// (one full suite per seed); the recorded EXPERIMENTS.md uses single-seed
// runs and this entry point exists for users who want error bars.
func RunSuiteSeeds(system string, opts Options, seeds []int64) (SeededResults, error) {
	out := SeededResults{System: system}
	for _, seed := range seeds {
		o := opts
		o.Seed = seed
		sr, err := RunSystemSuite(system, o)
		if err != nil {
			return out, fmt.Errorf("experiments: %s seed %d: %w", system, seed, err)
		}
		out.Runs = append(out.Runs, sr)
	}
	return out, nil
}

// Summitem extracts one metric across the seeds.
func (s SeededResults) summary(get func(SystemResult) float64) stats.Summary {
	vals := make([]float64, 0, len(s.Runs))
	for _, r := range s.Runs {
		vals = append(vals, get(r))
	}
	return stats.Summarize(vals)
}

// Report prints the mean ±std of the headline metrics in the paper's
// Table 4 style.
func (s SeededResults) Report(w io.Writer) {
	if len(s.Runs) == 0 {
		fmt.Fprintf(w, "%s: no runs\n", s.System)
		return
	}
	adamTrain := s.summary(func(r SystemResult) float64 { return r.AdamBS1.TrainE })
	adamTest := s.summary(func(r SystemResult) float64 { return r.AdamBS1.TestE })
	fekfTrain := s.summary(func(r SystemResult) float64 { return r.FEKF.TrainE })
	fekfTest := s.summary(func(r SystemResult) float64 { return r.FEKF.TestE })
	fmt.Fprintf(w, "%s over %d seeds (per-atom energy RMSE, mean ±std):\n", s.System, len(s.Runs))
	fmt.Fprintf(w, "  Adam bs=1   train %s  test %s\n", adamTrain.PlusMinus(5), adamTest.PlusMinus(5))
	fmt.Fprintf(w, "  FEKF bs=32  train %s  test %s\n", fekfTrain.PlusMinus(5), fekfTest.PlusMinus(5))
	epochs := s.summary(func(r SystemResult) float64 { return float64(r.AdamBS1.Epochs) })
	fmt.Fprintf(w, "  Adam epochs to target: %s\n", epochs.PlusMinus(1))
}
