package experiments

import (
	"fmt"
	"io"

	"fekf/internal/deepmd"
	"fekf/internal/optimize"
	"fekf/internal/train"
)

// LambdaNu reproduces the Section 3.2 hyper-parameter guideline: at large
// batch sizes a lower initial λ and faster ν schedule are recommended
// (0.90/0.996 instead of 0.98/0.9987).  The experiment trains Cu at the
// largest single-node batch with both settings and prints the energy
// convergence series, the only hand-tuned knob of the whole method.
func LambdaNu(w io.Writer, opts Options) error {
	full, err := GenerateData("Cu", opts)
	if err != nil {
		return err
	}
	trainSet, _ := full.Split(opts.TestFrac, opts.Seed)
	bs := trainSet.Len() // "large batch": the full dataset per iteration
	if bs > 64 {
		bs = 64
	}

	fmt.Fprintf(w, "Section 3.2: memory-factor schedule at large batch (Cu, bs=%d)\n", bs)
	type series struct {
		name string
		vals []float64
	}
	var all []series
	for _, cfg := range []struct {
		name       string
		lambda, nu float64
	}{
		{"default λ=0.98 ν=0.9987", 0.98, 0.9987},
		{"large-batch λ=0.90 ν=0.996", 0.90, 0.996},
	} {
		m, err := newModel(trainSet, deepmd.OptAll, opts.Seed)
		if err != nil {
			return err
		}
		opt := optimize.NewFEKF()
		opt.KCfg.Lambda0 = cfg.lambda
		opt.KCfg.Nu = cfg.nu
		opt.KCfg = opt.KCfg.WithOpt3()
		res, err := train.Run(m, train.OptStepper{M: m, Opt: opt}, trainSet, train.Config{
			BatchSize: bs, MaxEpochs: opts.FEKFMaxEpochs, EvalSubset: 16, Seed: opts.Seed,
		})
		if err != nil {
			return err
		}
		s := series{name: cfg.name}
		for _, h := range res.History {
			s.vals = append(s.vals, h.Metrics.EnergyPerAtomRMSE)
		}
		all = append(all, s)
	}
	fmt.Fprintf(w, "%6s", "epoch")
	for _, s := range all {
		fmt.Fprintf(w, " %28s", s.name)
	}
	fmt.Fprintln(w)
	step := len(all[0].vals) / 10
	if step < 1 {
		step = 1
	}
	for e := 0; e < len(all[0].vals); e += step {
		fmt.Fprintf(w, "%6d", e+1)
		for _, s := range all {
			if e < len(s.vals) {
				fmt.Fprintf(w, " %28.5f", s.vals[e])
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
