package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/md"
	"fekf/internal/optimize"
	"fekf/internal/train"
)

// Figure4 reproduces the quasi-learning-rate ablation (paper Figure 4):
// energy convergence of FEKF bs=32 on Cu with the weight-increment factor
// set to 1, √bs and bs.  It prints per-epoch per-atom energy RMSE series.
func Figure4(w io.Writer, opts Options) error {
	full, err := GenerateData("Cu", opts)
	if err != nil {
		return err
	}
	trainSet, _ := full.Split(opts.TestFrac, opts.Seed)
	fmt.Fprintln(w, "Figure 4: effect of the quasi-learning-rate factor on energy convergence")
	fmt.Fprintln(w, "(Cu, FEKF batch size 32; per-atom energy RMSE per epoch)")

	type series struct {
		name string
		vals []float64
	}
	var all []series
	for _, f := range []optimize.QuasiLRFactor{optimize.FactorOne, optimize.FactorSqrtBS, optimize.FactorLinearBS} {
		m, err := newModel(trainSet, deepmd.OptAll, opts.Seed)
		if err != nil {
			return err
		}
		opt := optimize.NewFEKF()
		opt.Factor = f
		opt.KCfg = opt.KCfg.WithOpt3()
		s := series{name: f.String()}
		res, err := train.Run(m, train.OptStepper{M: m, Opt: opt}, trainSet, train.Config{
			BatchSize: 32, MaxEpochs: opts.FEKFMaxEpochs, EvalSubset: 16, Seed: opts.Seed,
		})
		if err != nil {
			return err
		}
		for _, h := range res.History {
			s.vals = append(s.vals, h.Metrics.EnergyPerAtomRMSE)
		}
		all = append(all, s)
	}
	fmt.Fprintf(w, "%6s", "epoch")
	for _, s := range all {
		fmt.Fprintf(w, " %12s", "factor="+s.name)
	}
	fmt.Fprintln(w)
	for e := 0; e < len(all[0].vals); e++ {
		fmt.Fprintf(w, "%6d", e+1)
		for _, s := range all {
			if e < len(s.vals) {
				fmt.Fprintf(w, " %12.5f", s.vals[e])
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure7a formats the end-to-end training-time comparison (paper Figure
// 7(a)): Adam bs=1, RLEKF bs=1, FEKF bs=32 unoptimized, FEKF bs=32
// optimized, per system, to the shared accuracy target.  Wall seconds are
// host-measured; speedups relative to RLEKF, the paper's reference.
func Figure7a(w io.Writer, results []SystemResult) {
	fmt.Fprintln(w, "Figure 7(a): end-to-end training time to target (seconds; speedup vs RLEKF)")
	fmt.Fprintf(w, "%-6s %12s %12s %16s %16s %12s %12s\n",
		"System", "Adam bs1", "RLEKF bs1", "FEKF32", "FEKF32+opt", "alg.speedup", "opt.speedup")
	for _, r := range results {
		alg := "-"
		if r.FEKFBase.Converged && r.RLEKF.Converged && r.FEKFBase.WallSec > 0 {
			alg = fmt.Sprintf("%.2fx", r.RLEKF.WallSec/r.FEKFBase.WallSec)
		}
		opt := "-"
		if r.FEKF.Converged && r.FEKFBase.Converged && r.FEKF.WallSec > 0 {
			opt = fmt.Sprintf("%.2fx", r.FEKFBase.WallSec/r.FEKF.WallSec)
		}
		fmt.Fprintf(w, "%-6s %12.1f %12.1f %16s %16s %12s %12s\n",
			r.System, r.AdamBS1.WallSec, r.RLEKF.WallSec,
			fmtRun(r.FEKFBase), fmtRun(r.FEKF), alg, opt)
	}
}

func fmtRun(rs RunStats) string {
	mark := ""
	if !rs.Converged {
		mark = "*"
	}
	return fmt.Sprintf("%.1f%s", rs.WallSec, mark)
}

// KernelCounts is one bar group of Figure 7(b)/(c).
type KernelCounts struct {
	Level          deepmd.OptLevel
	EnergyKernels  int64
	ForceKernels   int64
	TotalPerIter   int64 // 1 energy + 4 force updates
	ForwardNs      float64
	GradientNs     float64
	OptimizerNs    float64
	TotalModeledNs float64
}

// Figure7bc runs one FEKF iteration at each optimization level on the Cu
// system at the paper's network size (batch 64, as in Section 5.3) and
// reports kernel-launch counts (Figure 7(b)) and the modeled iteration
// time split into forward / gradient / optimizer phases (Figure 7(c)).
func Figure7bc(w io.Writer, opts Options, paperScale bool) ([]KernelCounts, error) {
	full, err := GenerateData("Cu", opts)
	if err != nil {
		return nil, err
	}
	bs := 8
	if bs > full.Len() {
		bs = full.Len()
	}
	idx := make([]int, bs)
	for i := range idx {
		idx[i] = i
	}

	var out []KernelCounts
	for _, level := range []deepmd.OptLevel{deepmd.OptBaseline, deepmd.OptManualForce, deepmd.OptFused, deepmd.OptAll} {
		sys := deepmd.SnapshotSystem(full, &full.Snapshots[0])
		var cfg deepmd.Config
		if paperScale {
			spec, err := md.GetSystem("Cu")
			if err != nil {
				return nil, err
			}
			cfg = deepmd.PaperConfig(spec, sys)
		} else {
			cfg = deepmd.TinyConfig(sys)
		}
		m, err := deepmd.NewModel(cfg)
		if err != nil {
			return nil, err
		}
		m.Level = level
		m.Dev = device.New("fig7", device.A100())
		if err := m.InitFromDataset(full); err != nil {
			return nil, err
		}
		opt := optimize.NewFEKF()
		if level >= deepmd.OptAll {
			opt.KCfg = opt.KCfg.WithOpt3()
		}

		// warm-up step so one-time costs do not pollute the counts
		if _, err := opt.Step(m, full, idx); err != nil {
			return nil, err
		}

		// measured step: separate the energy update from the force updates
		// to reproduce the paper's two bar families.
		before := m.Dev.Counters()
		optE := *opt
		optE.ForceGroups = 0
		if _, err := optE.Step(m, full, idx); err != nil {
			return nil, err
		}
		afterEnergy := m.Dev.Counters()

		if _, err := opt.Step(m, full, idx); err != nil {
			return nil, err
		}
		afterFull := m.Dev.Counters()

		eDelta := afterEnergy.Sub(before)
		fullDelta := afterFull.Sub(afterEnergy)
		// energy-only step launches the force forward too (ForceGroups=0
		// still builds it); the difference isolates the 4 force updates.
		kc := KernelCounts{
			Level:          level,
			EnergyKernels:  eDelta.Kernels,
			ForceKernels:   (fullDelta.Kernels - eDelta.Kernels) / 4,
			TotalPerIter:   fullDelta.Kernels,
			ForwardNs:      fullDelta.PhaseNs[device.PhaseForward],
			GradientNs:     fullDelta.PhaseNs[device.PhaseGradient],
			OptimizerNs:    fullDelta.PhaseNs[device.PhaseOptimizer],
			TotalModeledNs: fullDelta.ModeledNs,
		}
		out = append(out, kc)
	}

	fmt.Fprintln(w, "Figure 7(b): simulated kernel launches per FEKF iteration (Cu)")
	fmt.Fprintf(w, "%-10s %14s %16s %14s\n", "config", "energy update", "per force update", "full iter")
	for _, kc := range out {
		fmt.Fprintf(w, "%-10s %14d %16d %14d\n", kc.Level, kc.EnergyKernels, kc.ForceKernels, kc.TotalPerIter)
	}
	base := out[0].TotalPerIter
	last := out[len(out)-1].TotalPerIter
	if base > 0 {
		fmt.Fprintf(w, "kernel reduction baseline -> opt3: %.0f%%\n", 100*float64(base-last)/float64(base))
	}

	fmt.Fprintln(w, "\nFigure 7(c): modeled iteration time split (ms)")
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s\n", "config", "forward", "gradient", "KF update", "total")
	for _, kc := range out {
		fmt.Fprintf(w, "%-10s %10.3f %10.3f %10.3f %10.3f\n", kc.Level,
			kc.ForwardNs/1e6, kc.GradientNs/1e6, kc.OptimizerNs/1e6, kc.TotalModeledNs/1e6)
	}
	if t0, t3 := out[0].TotalModeledNs, out[len(out)-1].TotalModeledNs; t3 > 0 {
		fmt.Fprintf(w, "iteration speedup baseline -> opt3: %.2fx\n", t0/t3)
	}
	return out, nil
}

// shuffledIdx is a small helper retained for ablation harnesses.
func shuffledIdx(n int, seed int64) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}
