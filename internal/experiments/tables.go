package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"fekf/internal/cluster"
	"fekf/internal/deepmd"
	"fekf/internal/md"
	"fekf/internal/optimize"
	"fekf/internal/train"
)

// Table1 formats the Adam batch-size convergence study (paper Table 1):
// epochs to reach the baseline energy RMSE at batch sizes 1/32/64 and the
// epoch-growth factors.
func Table1(w io.Writer, results []SystemResult) {
	fmt.Fprintln(w, "Table 1: Adam-based DeePMD convergence under different training batch sizes")
	fmt.Fprintln(w, "(epochs to reach the bs=1 baseline per-atom energy RMSE; '-' = never reached)")
	fmt.Fprintf(w, "%-6s %-22s %6s %6s %6s %10s %10s\n",
		"System", "Energy RMSE(eV/atom)", "bs=1", "bs=32", "bs=64", "grow 32/1", "grow 64/32")
	for _, r := range results {
		fmt.Fprintf(w, "%-6s %-22s %6s %6s %6s %10s %10s\n",
			r.System,
			fmt.Sprintf("%.5f", r.Target),
			markEpochs(r.AdamBS1), markEpochs(r.AdamBS32), markEpochs(r.AdamBS64),
			ratio(r.AdamBS32, r.AdamBS1), ratio(r.AdamBS64, r.AdamBS32))
	}
}

// Table3 prints the dataset description: the paper's Table 3 values next
// to what this reproduction generates.
func Table3(w io.Writer, opts Options) {
	fmt.Fprintln(w, "Table 3: dataset description (paper values | this reproduction)")
	fmt.Fprintf(w, "%-6s %-22s %9s %18s %18s\n",
		"System", "Temperatures(K)", "Step(fs)", "Snapshots(p|r)", "Atoms(p|tiny)")
	for _, name := range md.SystemNames() {
		spec, err := md.GetSystem(name)
		if err != nil {
			fmt.Fprintf(w, "%-6s error: %v\n", name, err)
			continue
		}
		tiny, _ := spec.TinyBuild()
		temps := ""
		for i, t := range spec.Temperatures {
			if i > 0 {
				temps += ","
			}
			temps += fmt.Sprintf("%.0f", t)
		}
		fmt.Fprintf(w, "%-6s %-22s %9.0f %18s %18s\n",
			name, temps, spec.TimeStep,
			fmt.Sprintf("%d | %d", spec.PaperSnapshots, opts.Snapshots),
			fmt.Sprintf("%d | %d", spec.PaperAtoms, tiny.NumAtoms()))
	}
}

// Table4 formats the FEKF-vs-Adam accuracy and convergence-ratio study
// (paper Table 4): the epoch ratio of FEKF bs=32 to Adam bs=1 and the
// train/test per-atom RMSE of both (generalization gap).
func Table4(w io.Writer, results []SystemResult) {
	fmt.Fprintln(w, "Table 4: convergence ratio and RMSE of 32-sample FEKF vs single-sample Adam")
	fmt.Fprintf(w, "%-6s %10s %10s   %-23s %-23s\n",
		"System", "Adam ep.", "FEKF/Adam", "Adam E-RMSE train/test", "FEKF E-RMSE train/test")
	for _, r := range results {
		conv := "-"
		if r.FEKF.Converged && r.AdamBS1.Epochs > 0 {
			conv = fmt.Sprintf("%.3f", float64(r.FEKF.Epochs)/float64(r.AdamBS1.Epochs))
		}
		fmt.Fprintf(w, "%-6s %10d %10s   %-23s %-23s\n",
			r.System, r.AdamBS1.Epochs, conv,
			fmt.Sprintf("%.5f / %.5f", r.AdamBS1.TrainE, r.AdamBS1.TestE),
			fmt.Sprintf("%.5f / %.5f", r.FEKF.TrainE, r.FEKF.TestE))
	}
	fmt.Fprintln(w, "\nGeneralization gap (|test-train| per-atom energy RMSE, FEKF bs=32):")
	for _, r := range results {
		gap := r.FEKF.TestE - r.FEKF.TrainE
		if gap < 0 {
			gap = -gap
		}
		fmt.Fprintf(w, "  %-6s %.5f\n", r.System, gap)
	}
}

// Table5Row is one configuration of the distributed Cu study.
type Table5Row struct {
	Label      string
	BatchSize  int
	GPUs       int
	Epochs     int
	Converged  bool
	WallSec    float64
	ModeledSec float64
	WireMB     float64
	TestE      float64
}

// Table5 reproduces the distributed-training study (paper Table 5): the
// Cu system trained by RLEKF bs=1 on 1 GPU versus FEKF with batch size
// scaling across 1, 4 and 16 simulated GPUs.  The paper scales the batch
// from 32 to 4096; at this reproduction's dataset size the same ×4-per-
// stage progression is 32 → 128 → 512.  Speedups are quoted on modeled
// device time (the host has one core; see DESIGN.md).
func Table5(w io.Writer, opts Options) ([]Table5Row, error) {
	full, err := GenerateData("Cu", opts)
	if err != nil {
		return nil, err
	}
	trainSet, testSet := full.Split(opts.TestFrac, opts.Seed)

	// accuracy reference: the paper converges Table 5 runs at a relaxed
	// (1.5x) accuracy; reuse the Adam bs1 plateau protocol.
	mA, err := newModel(trainSet, deepmd.OptFused, opts.Seed)
	if err != nil {
		return nil, err
	}
	target, _, err := train.PlateauTarget(mA, train.OptStepper{M: mA, Opt: optimize.NewAdam()},
		trainSet, train.Config{BatchSize: 1, MaxEpochs: opts.AdamBS1MaxEpochs, EvalSubset: 16, Seed: opts.Seed},
		1.5)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Table 5: Cu distributed training (target per-atom E RMSE %.5f)\n", target)

	var rows []Table5Row

	// RLEKF bs=1 on one GPU
	mR, err := newModel(trainSet, deepmd.OptFused, opts.Seed)
	if err != nil {
		return nil, err
	}
	rsR, err := runOne(mR, train.OptStepper{M: mR, Opt: optimize.NewRLEKF()},
		trainSet, testSet, 1, opts.RLEKFMaxEpochs, target, opts.Seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table5Row{
		Label: "RLEKF", BatchSize: 1, GPUs: 1, Epochs: rsR.Epochs, Converged: rsR.Converged,
		WallSec: rsR.WallSec, ModeledSec: rsR.ModeledSec, TestE: rsR.TestE,
	})

	// FEKF at growing batch and GPU count
	for _, cfg := range []struct{ bs, gpus int }{{32, 1}, {128, 4}, {512, 16}} {
		opts.logf("[Table5] FEKF bs=%d gpus=%d...\n", cfg.bs, cfg.gpus)
		m, err := newModel(trainSet, deepmd.OptAll, opts.Seed)
		if err != nil {
			return nil, err
		}
		dp := cluster.NewDataParallelFEKF(cfg.gpus, m)
		dp.KCfg = dp.KCfg.WithOpt3()
		if cfg.bs >= 512 {
			// the paper's large-batch λ/ν recommendation (Section 3.2)
			lb := optimize.LargeBatchKalmanConfig().WithOpt3()
			dp.KCfg = lb
		}
		start := time.Now()
		row := Table5Row{Label: "FEKF", BatchSize: cfg.bs, GPUs: cfg.gpus}
		rng := newRand(opts.Seed)
		itersPerEpoch := trainSet.Len() / cfg.bs
		if itersPerEpoch < 1 {
			itersPerEpoch = 1
		}
		for epoch := 1; epoch <= opts.FEKFMaxEpochs; epoch++ {
			for it := 0; it < itersPerEpoch; it++ {
				// uniform with-replacement sampling keeps the schedule
				// well-defined even when bs exceeds the dataset (the
				// paper's 512-4096 batches at this scale)
				idx := trainSet.SampleBatch(cfg.bs, rng)
				if _, err := dp.Step(trainSet, idx); err != nil {
					return nil, err
				}
			}
			row.Epochs = epoch
			met, err := dp.Model().Evaluate(trainSet.Subset(16), 8)
			if err != nil {
				return nil, err
			}
			if met.EnergyPerAtomRMSE <= target {
				row.Converged = true
				break
			}
		}
		met, err := dp.Model().Evaluate(testSet.Subset(32), 8)
		if err != nil {
			return nil, err
		}
		row.WallSec = time.Since(start).Seconds()
		row.ModeledSec = dp.ModeledIterationNs() / 1e9
		row.WireMB = float64(dp.Ring().WireBytes()) / (1 << 20)
		row.TestE = met.EnergyPerAtomRMSE
		rows = append(rows, row)
	}

	base := rows[0].ModeledSec
	fmt.Fprintf(w, "%-8s %10s %6s %8s %10s %12s %12s %10s\n",
		"Method", "batch(GPU)", "epochs", "conv", "wall(s)", "modeled(s)", "speedup", "wire(MB)")
	for _, r := range rows {
		sp := "-"
		if r.ModeledSec > 0 && base > 0 {
			sp = fmt.Sprintf("%.1fx", base/r.ModeledSec)
		}
		fmt.Fprintf(w, "%-8s %10s %6d %8v %10.1f %12.3f %12s %10.2f\n",
			r.Label, fmt.Sprintf("%d(%d)", r.BatchSize, r.GPUs), r.Epochs, r.Converged,
			r.WallSec, r.ModeledSec, sp, r.WireMB)
	}
	return rows, nil
}

// newRand builds a deterministic RNG for batch sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
