package experiments

import (
	"fmt"
	"io"

	"fekf/internal/deepmd"
	"fekf/internal/optimize"
	"fekf/internal/train"
)

// LargeBatch is an extension ablation motivated by the paper's related
// work: LARS and LAMB made large-batch first-order training work for
// ResNet/BERT, and the paper argues such methods do not transfer to NNMD
// without per-system tuning.  Here all four optimizers train Cu at batch
// size 32 for the same epoch budget; the Kalman method should reach a
// lower energy error without any tuning.
func LargeBatch(w io.Writer, opts Options) error {
	full, err := GenerateData("Cu", opts)
	if err != nil {
		return err
	}
	trainSet, testSet := full.Split(opts.TestFrac, opts.Seed)
	epochs := opts.FEKFMaxEpochs

	fmt.Fprintf(w, "Extension: large-minibatch optimizers on Cu (bs=32, %d epochs, no per-run tuning)\n", epochs)
	fmt.Fprintf(w, "%-10s %16s %16s %12s\n", "optimizer", "train E/atom", "test E/atom", "test F RMSE")

	runs := []struct {
		name string
		mk   func() optimize.Optimizer
	}{
		{"Adam", func() optimize.Optimizer { return optimize.NewAdam() }},
		{"LARS", func() optimize.Optimizer { return optimize.NewLARS() }},
		{"LAMB", func() optimize.Optimizer { return optimize.NewLAMB() }},
		{"FEKF", func() optimize.Optimizer {
			f := optimize.NewFEKF()
			f.KCfg = f.KCfg.WithOpt3()
			return f
		}},
	}
	for _, r := range runs {
		opts.logf("[largebatch] %s...\n", r.name)
		m, err := newModel(trainSet, deepmd.OptAll, opts.Seed)
		if err != nil {
			return err
		}
		if _, err := train.Run(m, train.OptStepper{M: m, Opt: r.mk()}, trainSet, train.Config{
			BatchSize: 32, MaxEpochs: epochs, EvalSubset: 16, Seed: opts.Seed,
		}); err != nil {
			return err
		}
		tr, err := m.Evaluate(trainSet.Subset(32), 8)
		if err != nil {
			return err
		}
		te, err := m.Evaluate(testSet.Subset(32), 8)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %16.5f %16.5f %12.4f\n",
			r.name, tr.EnergyPerAtomRMSE, te.EnergyPerAtomRMSE, te.ForceRMSE)
	}
	return nil
}
