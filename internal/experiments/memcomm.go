package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"fekf/internal/cluster"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/md"
	"fekf/internal/optimize"
)

// MemoryRow summarizes one P-update variant of the Section 5.3 memory
// experiment.
type MemoryRow struct {
	Variant   string
	PBytes    int64
	PeakBytes int64
}

// Memory reproduces the Section 5.3 memory study at the paper's network
// size: the block-diagonal P of the 26.5k-parameter Cu model
// (blocksize 10240 → blocks {1350², 10240², 9810², 5151²}) is updated once
// with the framework-style kernels (which materialize KKᵀ and the
// transpose) and once with the handwritten fused kernel; the device
// allocator's peak tells the story.
func Memory(w io.Writer, opts Options) ([]MemoryRow, error) {
	spec, err := md.GetSystem("Cu")
	if err != nil {
		return nil, err
	}
	sys, _ := spec.Build(1)
	cfg := deepmd.PaperConfig(spec, sys)
	m, err := deepmd.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	layers := m.Params.LayerSizes()

	fmt.Fprintln(w, "Section 5.3 memory experiment: P-update peak device memory (Cu, 26.5k params)")
	blocks := optimize.SplitBlocks(layers, 10240)
	fmt.Fprintf(w, "P blocks: %v\n", optimize.BlockSizes(blocks))

	rng := rand.New(rand.NewSource(opts.Seed))
	g := make([]float64, m.Params.NumParams())
	for i := range g {
		g[i] = rng.NormFloat64()
	}

	var rows []MemoryRow
	for _, variant := range []struct {
		name string
		cfg  optimize.KalmanConfig
	}{
		{"framework (torch-style)", optimize.DefaultKalmanConfig()},
		{"custom fused kernel", optimize.DefaultKalmanConfig().WithOpt3()},
	} {
		dev := device.New("mem", device.A100())
		ks := optimize.NewKalmanState(variant.cfg, layers, dev)
		dev.ResetPeak()
		ks.Update(g, 0.1, 1)
		c := dev.Counters()
		rows = append(rows, MemoryRow{Variant: variant.name, PBytes: ks.PBytes(), PeakBytes: c.PeakBytes})
		ks.Free()
	}
	fmt.Fprintf(w, "%-26s %14s %14s\n", "variant", "P memory (MB)", "peak (MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %14.0f %14.0f\n", r.Variant,
			float64(r.PBytes)/(1<<20), float64(r.PeakBytes)/(1<<20))
	}
	if len(rows) == 2 {
		fmt.Fprintf(w, "peak reduction: %.0f MB -> %.0f MB (theory: 2x max block = %.0f MB extra)\n",
			float64(rows[0].PeakBytes)/(1<<20), float64(rows[1].PeakBytes)/(1<<20),
			2*float64(10240*10240*8)/(1<<20))
	}
	return rows, nil
}

// Comm reproduces the Section 5.3/3.3 communication analysis: the
// measured per-iteration wire volume of distributed FEKF (gradients + ABE
// scalars only) against the volume the fusiform Naive-EKF would need to
// ship its P blocks, for growing GPU counts.
func Comm(w io.Writer, opts Options) error {
	full, err := GenerateData("Cu", opts)
	if err != nil {
		return err
	}
	trainSet, _ := full.Split(opts.TestFrac, opts.Seed)
	m, err := newModel(trainSet, deepmd.OptAll, opts.Seed)
	if err != nil {
		return err
	}
	n := int64(m.Params.NumParams())
	blocks := optimize.SplitBlocks(m.Params.LayerSizes(), optimize.DefaultKalmanConfig().BlockSize)
	var pBytes int64
	for _, b := range blocks {
		pBytes += int64(b.Size()) * int64(b.Size()) * 8
	}

	fmt.Fprintln(w, "Section 3.3/5.3 communication analysis (Cu, per training iteration)")
	fmt.Fprintf(w, "parameters N = %d, gradient memory = %.3f MB, P memory = %.1f MB\n",
		n, float64(n*8)/(1<<20), float64(pBytes)/(1<<20))
	fmt.Fprintf(w, "%-6s %18s %22s %14s\n", "#GPUs", "FEKF wire (MB)", "Naive-EKF P wire (MB)", "modeled comm")
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, gpus := range []int{2, 4, 8} {
		dp := cluster.NewDataParallelFEKF(gpus, m)
		dp.KCfg = dp.KCfg.WithOpt3()
		if _, err := dp.Step(trainSet, idx); err != nil {
			return err
		}
		measured := float64(dp.Ring().WireBytes()) / (1 << 20)
		// Naive-EKF would additionally ring-allreduce every P block:
		// each rank ships 2(r-1)/r of the P bytes.
		naive := float64(gpus) * 2 * float64(gpus-1) / float64(gpus) * float64(pBytes) / (1 << 20)
		fmt.Fprintf(w, "%-6d %18.3f %22.1f %11.2fms\n",
			gpus, measured, measured+naive, dp.Ring().ModeledNs()/1e6)
	}
	fmt.Fprintln(w, "(FEKF ships only reduced gradients + 2 scalars per update; P stays replica-consistent)")
	return nil
}
