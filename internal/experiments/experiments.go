// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the per-experiment index).  Each
// experiment prints rows shaped like the paper's; absolute numbers differ
// (simulated device, classical-potential labels, reduced scale) but the
// comparisons — who wins, by roughly what factor, where behaviour breaks —
// are the reproduction targets.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/md"
	"fekf/internal/optimize"
	"fekf/internal/train"
)

// Options scales the experiment suite.  The defaults fit a single CPU
// core; Quick() shrinks everything further for smoke tests.
type Options struct {
	Systems          []string
	Snapshots        int
	TestFrac         float64
	Seed             int64
	AdamBS1MaxEpochs int
	AdamBigMaxEpochs int
	FEKFMaxEpochs    int
	RLEKFMaxEpochs   int
	TargetRelax      float64 // target = best Adam bs1 per-atom RMSE × relax
	Log              io.Writer
}

// Defaults returns the settings used for the recorded EXPERIMENTS.md runs.
func Defaults() Options {
	return Options{
		Systems:          md.SystemNames(),
		Snapshots:        96,
		TestFrac:         0.25,
		Seed:             1,
		AdamBS1MaxEpochs: 30,
		AdamBigMaxEpochs: 150,
		FEKFMaxEpochs:    60,
		RLEKFMaxEpochs:   8,
		TargetRelax:      1.10,
		Log:              io.Discard,
	}
}

// Quick returns a drastically reduced configuration for unit tests.
func Quick() Options {
	o := Defaults()
	o.Systems = []string{"Cu"}
	o.Snapshots = 24
	o.AdamBS1MaxEpochs = 3
	o.AdamBigMaxEpochs = 5
	o.FEKFMaxEpochs = 4
	o.RLEKFMaxEpochs = 2
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format, args...)
	}
}

// RunStats captures one training run against the shared target.
type RunStats struct {
	Optimizer  string
	BatchSize  int
	Epochs     int
	Iterations int
	Converged  bool
	WallSec    float64
	ModeledSec float64
	TrainE     float64 // per-atom energy RMSE on the training set
	TrainF     float64
	TestE      float64
	TestF      float64
}

// SystemResult is the shared per-system run suite Table 1, Table 4 and
// Figure 7(a) are formatted from.
type SystemResult struct {
	System   string
	Atoms    int
	Params   int
	Target   float64 // per-atom energy RMSE convergence target
	AdamBS1  RunStats
	AdamBS32 RunStats
	AdamBS64 RunStats
	RLEKF    RunStats
	FEKF     RunStats // optimized (Opt3 model + optimizer kernels)
	FEKFBase RunStats // unoptimized (baseline model, framework P update)
}

// newModel builds a tiny-config model for the dataset on a fresh device.
func newModel(ds *dataset.Dataset, level deepmd.OptLevel, seed int64) (*deepmd.Model, error) {
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	cfg := deepmd.TinyConfig(sys)
	cfg.Seed = seed
	m, err := deepmd.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	m.Level = level
	m.Dev = device.New("gpu", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		return nil, err
	}
	return m, nil
}

// evalStats fills the train/test metrics of a run.
func evalStats(m *deepmd.Model, trainSet, testSet *dataset.Dataset, rs *RunStats) error {
	tr, err := m.Evaluate(trainSet.Subset(32), 8)
	if err != nil {
		return err
	}
	te, err := m.Evaluate(testSet.Subset(32), 8)
	if err != nil {
		return err
	}
	rs.TrainE, rs.TrainF = tr.EnergyPerAtomRMSE, tr.ForceRMSE
	rs.TestE, rs.TestF = te.EnergyPerAtomRMSE, te.ForceRMSE
	return nil
}

// runOne executes a training run and collects stats.
func runOne(m *deepmd.Model, st train.Stepper, trainSet, testSet *dataset.Dataset,
	bs, maxEpochs int, target float64, seed int64) (RunStats, error) {

	before := m.Dev.Counters()
	start := time.Now()
	res, err := train.Run(m, st, trainSet, train.Config{
		BatchSize:        bs,
		MaxEpochs:        maxEpochs,
		TargetEnergyRMSE: target,
		EvalSubset:       16,
		Seed:             seed,
	})
	if err != nil {
		return RunStats{}, err
	}
	rs := RunStats{
		Optimizer:  st.Name(),
		BatchSize:  bs,
		Epochs:     res.Epochs,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		WallSec:    time.Since(start).Seconds(),
		ModeledSec: m.Dev.Counters().Sub(before).ModeledNs / 1e9,
	}
	if err := evalStats(m, trainSet, testSet, &rs); err != nil {
		return RunStats{}, err
	}
	return rs, nil
}

// GenerateData produces (or loads from cache, if dir is non-empty) the
// labelled dataset of one system.
func GenerateData(system string, opts Options) (*dataset.Dataset, error) {
	return dataset.Generate(system, dataset.GenOptions{
		Snapshots:   opts.Snapshots,
		SampleEvery: 5,
		EquilSteps:  40,
		Tiny:        true,
		Seed:        opts.Seed,
	})
}

// RunSystemSuite runs the shared optimizer comparison for one system.
func RunSystemSuite(system string, opts Options) (SystemResult, error) {
	full, err := GenerateData(system, opts)
	if err != nil {
		return SystemResult{}, err
	}
	trainSet, testSet := full.Split(opts.TestFrac, opts.Seed)
	sr := SystemResult{System: system, Atoms: full.Snapshots[0].NumAtoms()}

	// --- Adam bs1 plateau establishes the accuracy baseline and target.
	opts.logf("[%s] Adam bs=1 baseline...\n", system)
	mA, err := newModel(trainSet, deepmd.OptFused, opts.Seed)
	if err != nil {
		return sr, err
	}
	sr.Params = mA.NumParams()
	adam := optimize.NewAdam()
	target, baseRes, err := train.PlateauTarget(mA, train.OptStepper{M: mA, Opt: adam},
		trainSet, train.Config{BatchSize: 1, MaxEpochs: opts.AdamBS1MaxEpochs, EvalSubset: 16, Seed: opts.Seed},
		opts.TargetRelax)
	if err != nil {
		return sr, err
	}
	sr.Target = target
	// epochs-to-target for bs1 = first epoch whose eval reached the target
	bs1Epochs := baseRes.Epochs
	for _, h := range baseRes.History {
		if h.Metrics.EnergyPerAtomRMSE <= target {
			bs1Epochs = h.Epoch
			break
		}
	}
	sr.AdamBS1 = RunStats{
		Optimizer: "Adam", BatchSize: 1, Epochs: bs1Epochs,
		Iterations: baseRes.Iterations, Converged: true,
		WallSec: baseRes.Wall.Seconds(),
	}
	if err := evalStats(mA, trainSet, testSet, &sr.AdamBS1); err != nil {
		return sr, err
	}

	// --- Adam at bs 32 and 64 with sqrt LR scaling (Table 1).
	for _, bs := range []int{32, 64} {
		opts.logf("[%s] Adam bs=%d...\n", system, bs)
		m, err := newModel(trainSet, deepmd.OptFused, opts.Seed)
		if err != nil {
			return sr, err
		}
		rs, err := runOne(m, train.OptStepper{M: m, Opt: optimize.NewAdam()},
			trainSet, testSet, bs, opts.AdamBigMaxEpochs, target, opts.Seed)
		if err != nil {
			return sr, err
		}
		if bs == 32 {
			sr.AdamBS32 = rs
		} else {
			sr.AdamBS64 = rs
		}
	}

	// --- RLEKF bs1 (Figure 7(a) baseline).
	opts.logf("[%s] RLEKF bs=1...\n", system)
	mR, err := newModel(trainSet, deepmd.OptFused, opts.Seed)
	if err != nil {
		return sr, err
	}
	sr.RLEKF, err = runOne(mR, train.OptStepper{M: mR, Opt: optimize.NewRLEKF()},
		trainSet, testSet, 1, opts.RLEKFMaxEpochs, target, opts.Seed)
	if err != nil {
		return sr, err
	}

	// --- FEKF bs32, unoptimized: baseline model graph (autograd forces,
	// unfused kernels) + framework-style optimizer kernels.
	opts.logf("[%s] FEKF bs=32 (unoptimized)...\n", system)
	mFB, err := newModel(trainSet, deepmd.OptBaseline, opts.Seed)
	if err != nil {
		return sr, err
	}
	fekfBase := optimize.NewFEKF()
	sr.FEKFBase, err = runOne(mFB, train.OptStepper{M: mFB, Opt: fekfBase},
		trainSet, testSet, 32, opts.FEKFMaxEpochs, target, opts.Seed)
	if err != nil {
		return sr, err
	}

	// --- FEKF bs32, fully optimized (Opt3).
	opts.logf("[%s] FEKF bs=32 (optimized)...\n", system)
	mF, err := newModel(trainSet, deepmd.OptAll, opts.Seed)
	if err != nil {
		return sr, err
	}
	fekf := optimize.NewFEKF()
	fekf.KCfg = fekf.KCfg.WithOpt3()
	sr.FEKF, err = runOne(mF, train.OptStepper{M: mF, Opt: fekf},
		trainSet, testSet, 32, opts.FEKFMaxEpochs, target, opts.Seed)
	if err != nil {
		return sr, err
	}
	return sr, nil
}

// RunSuite runs the shared suite for every selected system.
func RunSuite(opts Options) ([]SystemResult, error) {
	var out []SystemResult
	for _, name := range opts.Systems {
		sr, err := RunSystemSuite(name, opts)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out = append(out, sr)
	}
	return out, nil
}

// SaveResults / LoadResults cache the suite on disk so the table
// formatters can be re-run without re-training.
func SaveResults(path string, results []SystemResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// LoadResults reads a cache written by SaveResults.
func LoadResults(path string) ([]SystemResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []SystemResult
	if err := json.NewDecoder(f).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// markEpochs renders an epoch count, marking runs that never reached the
// target with the paper's "-" convention.
func markEpochs(rs RunStats) string {
	if !rs.Converged {
		return "-"
	}
	return fmt.Sprintf("%d", rs.Epochs)
}

// ratio formats a/b guarding divide-by-zero and non-convergence.
func ratio(a, b RunStats) string {
	if !a.Converged || !b.Converged || b.Epochs == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a.Epochs)/float64(b.Epochs))
}
