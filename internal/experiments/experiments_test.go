package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"fekf/internal/deepmd"
)

func TestQuickSuiteAndTableFormatting(t *testing.T) {
	opts := Quick()
	results, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].System != "Cu" {
		t.Fatalf("results = %+v", results)
	}
	r := results[0]
	if r.Target <= 0 {
		t.Fatalf("target = %v", r.Target)
	}
	if r.Params <= 0 || r.Atoms != 32 {
		t.Fatalf("params=%d atoms=%d", r.Params, r.Atoms)
	}
	for _, rs := range []RunStats{r.AdamBS1, r.AdamBS32, r.AdamBS64, r.RLEKF, r.FEKF, r.FEKFBase} {
		if rs.Epochs < 1 || rs.Iterations < 1 {
			t.Fatalf("run %q did not execute: %+v", rs.Optimizer, rs)
		}
		if rs.TrainE <= 0 || rs.TestE <= 0 {
			t.Fatalf("run %q metrics missing: %+v", rs.Optimizer, rs)
		}
	}

	var buf bytes.Buffer
	Table1(&buf, results)
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "Cu") {
		t.Fatalf("Table1 output:\n%s", buf.String())
	}
	buf.Reset()
	Table4(&buf, results)
	if !strings.Contains(buf.String(), "Generalization gap") {
		t.Fatalf("Table4 output:\n%s", buf.String())
	}
	buf.Reset()
	Figure7a(&buf, results)
	if !strings.Contains(buf.String(), "RLEKF") {
		t.Fatalf("Figure7a output:\n%s", buf.String())
	}

	// round-trip the cache
	path := filepath.Join(t.TempDir(), "res.json")
	if err := SaveResults(path, results); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Target != results[0].Target {
		t.Fatal("cache round trip lost data")
	}
}

func TestTable3PrintsAllSystems(t *testing.T) {
	var buf bytes.Buffer
	Table3(&buf, Defaults())
	for _, name := range []string{"Cu", "Al", "Si", "NaCl", "Mg", "H2O", "CuO", "HfO2"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("Table3 missing %s:\n%s", name, buf.String())
		}
	}
	if !strings.Contains(buf.String(), "72102") {
		t.Fatal("Table3 missing paper snapshot counts")
	}
}

func TestFigure7bcKernelTrend(t *testing.T) {
	opts := Quick()
	var buf bytes.Buffer
	counts, err := Figure7bc(&buf, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 4 {
		t.Fatalf("got %d levels", len(counts))
	}
	// Figure 7(b) trend: kernels decrease monotonically across opt levels
	for i := 1; i < len(counts); i++ {
		if counts[i].TotalPerIter > counts[i-1].TotalPerIter {
			t.Fatalf("kernels increased at %v: %d -> %d",
				counts[i].Level, counts[i-1].TotalPerIter, counts[i].TotalPerIter)
		}
	}
	if counts[3].TotalPerIter >= counts[0].TotalPerIter {
		t.Fatal("opt3 did not reduce kernels vs baseline")
	}
	// Figure 7(c) trend: modeled iteration time improves baseline -> opt3
	if counts[3].TotalModeledNs >= counts[0].TotalModeledNs {
		t.Fatalf("opt3 modeled time %.0f !< baseline %.0f",
			counts[3].TotalModeledNs, counts[0].TotalModeledNs)
	}
	if !strings.Contains(buf.String(), "Figure 7(b)") {
		t.Fatal("missing figure text")
	}
}

func TestFigure4Runs(t *testing.T) {
	opts := Quick()
	var buf bytes.Buffer
	if err := Figure4(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"factor=1", "factor=sqrt(bs)", "factor=bs"} {
		if !strings.Contains(out, col) {
			t.Fatalf("Figure4 missing column %q:\n%s", col, out)
		}
	}
}

func TestMemoryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale P allocation is ~3.5 GB")
	}
	var buf bytes.Buffer
	rows, err := Memory(&buf, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].PeakBytes >= rows[0].PeakBytes {
		t.Fatalf("fused peak %d !< framework peak %d", rows[1].PeakBytes, rows[0].PeakBytes)
	}
	// both share the same resident P
	if rows[0].PBytes != rows[1].PBytes {
		t.Fatal("P bytes differ between variants")
	}
}

func TestCommExperiment(t *testing.T) {
	opts := Quick()
	var buf bytes.Buffer
	if err := Comm(&buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gradient memory") {
		t.Fatalf("Comm output:\n%s", buf.String())
	}
}

func TestTable5Quick(t *testing.T) {
	opts := Quick()
	opts.FEKFMaxEpochs = 1
	opts.RLEKFMaxEpochs = 1
	opts.AdamBS1MaxEpochs = 2
	var buf bytes.Buffer
	rows, err := Table5(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "RLEKF" || rows[3].GPUs != 16 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows[1:] {
		if r.ModeledSec <= 0 {
			t.Fatalf("modeled time missing: %+v", r)
		}
	}
	// more GPUs at larger batch must communicate more bytes in total
	if !(rows[3].WireMB > rows[2].WireMB && rows[2].WireMB > rows[1].WireMB) {
		t.Fatalf("wire volumes not increasing: %+v", rows)
	}
}

func TestMarkersAndHelpers(t *testing.T) {
	if markEpochs(RunStats{Converged: false, Epochs: 7}) != "-" {
		t.Fatal("unconverged run must print '-'")
	}
	if markEpochs(RunStats{Converged: true, Epochs: 7}) != "7" {
		t.Fatal("epochs formatting")
	}
	if ratio(RunStats{Converged: true, Epochs: 10}, RunStats{Converged: true, Epochs: 5}) != "2.0x" {
		t.Fatal("ratio formatting")
	}
	if ratio(RunStats{Converged: false}, RunStats{Converged: true, Epochs: 5}) != "-" {
		t.Fatal("ratio with non-convergence")
	}
	if got := shuffledIdx(5, 1); len(got) != 5 {
		t.Fatal("shuffledIdx")
	}
	_ = deepmd.OptAll
}

func TestLargeBatchAblation(t *testing.T) {
	opts := Quick()
	opts.FEKFMaxEpochs = 2
	var buf bytes.Buffer
	if err := LargeBatch(&buf, opts); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Adam", "LARS", "LAMB", "FEKF"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("largebatch missing %s:\n%s", name, buf.String())
		}
	}
}

func TestRunSuiteSeedsReport(t *testing.T) {
	opts := Quick()
	opts.AdamBigMaxEpochs = 2
	opts.FEKFMaxEpochs = 2
	opts.RLEKFMaxEpochs = 1
	res, err := RunSuiteSeeds("Cu", opts, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	var buf bytes.Buffer
	res.Report(&buf)
	if !strings.Contains(buf.String(), "±") || !strings.Contains(buf.String(), "2 seeds") {
		t.Fatalf("seed report:\n%s", buf.String())
	}
	empty := SeededResults{System: "X"}
	buf.Reset()
	empty.Report(&buf)
	if !strings.Contains(buf.String(), "no runs") {
		t.Fatal("empty report")
	}
}

func TestLambdaNuRuns(t *testing.T) {
	opts := Quick()
	opts.FEKFMaxEpochs = 2
	var buf bytes.Buffer
	if err := LambdaNu(&buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.996") || !strings.Contains(buf.String(), "0.9987") {
		t.Fatalf("lambdanu output:\n%s", buf.String())
	}
}
