package serve

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"fekf/internal/fleet"
	"fekf/internal/guard"
	"fekf/internal/obs"
	"fekf/internal/online"
)

// maxRankGauges caps how many per-rank gauge children the collector
// materializes — a fleet never has anywhere near this many replicas.
const maxRankGauges = 1024

// httpMetrics is the server's push-side instrument set: per-route request
// counts/latency and the predict micro-batch size distribution.
type httpMetrics struct {
	requests    *obs.CounterVec   // fekf_http_requests_total{route,code}
	latency     *obs.HistogramVec // fekf_http_request_seconds{route}
	batchFrames *obs.Histogram    // fekf_predict_batch_frames
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	return &httpMetrics{
		requests: reg.Counter("fekf_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.Histogram("fekf_http_request_seconds",
			"HTTP request latency, by route.", obs.DefSecondsBuckets, "route"),
		batchFrames: reg.Histogram("fekf_predict_batch_frames",
			"Frames per executed prediction micro-batch.", obs.SizeBuckets).With(),
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-route latency histogram and the
// request counter.  The histogram child is resolved once here, so the per
// request cost is the status capture plus two metric updates.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.om == nil {
		return h
	}
	hist := s.om.latency.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r)
		hist.Observe(time.Since(t0).Seconds())
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.om.requests.With(route, strconv.Itoa(code)).Inc()
	}
}

// backendCollector bridges the backend's existing stats surfaces into the
// registry as scrape-time func metrics.  Its collector hook takes ONE
// consistent Stats() (and FleetStats()) snapshot per scrape, cached for
// every func metric of that scrape — the /metrics view is as internally
// consistent as /v1/stats, with zero extra bookkeeping on training paths.
type backendCollector struct {
	be Backend
	fs FleetStatser

	// Per-rank gauge families (fleet backends only): resident covariance
	// bytes and owned shard count, written in collect() so the labelled
	// children always reflect the same snapshot the func metrics read.
	pBytes  *obs.GaugeVec
	pShards *obs.GaugeVec

	mu  sync.Mutex
	st  online.Stats
	fst fleet.Stats
}

func (c *backendCollector) collect() {
	st := c.be.Stats()
	var fst fleet.Stats
	if c.fs != nil {
		fst = c.fs.FleetStats()
	}
	if c.pBytes != nil {
		// The pshard arrays are indexed by rank; join them onto replicas
		// through the rank→replica map so a shrunken live set attributes
		// shard counts to the right replica id.
		shardsByID := map[int]int{}
		if fst.PShard != nil {
			for rank, id := range fst.PShard.RankReplicaIDs {
				if rank < len(fst.PShard.ShardsPerRank) {
					shardsByID[id] = fst.PShard.ShardsPerRank[rank]
				}
			}
		}
		for _, rs := range fst.Replica {
			if rs.ID >= maxRankGauges {
				break
			}
			label := strconv.Itoa(rs.ID)
			c.pBytes.With(label).Set(float64(rs.PResidentBytes))
			c.pShards.With(label).Set(float64(shardsByID[rs.ID]))
		}
	}
	c.mu.Lock()
	c.st = st
	c.fst = fst
	c.mu.Unlock()
}

// stat reads one trainer-stats field from the cached snapshot.
func (c *backendCollector) stat(f func(online.Stats) float64) func() float64 {
	return func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return f(c.st)
	}
}

// gstat reads one guard-status field from the cached snapshot; a backend
// with no guard configured (Stats().Guard == nil) reads as zero.
func (c *backendCollector) gstat(f func(*guard.Status) float64) func() float64 {
	return func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.st.Guard == nil {
			return 0
		}
		return f(c.st.Guard)
	}
}

// fstat reads one fleet-stats field from the cached snapshot.
func (c *backendCollector) fstat(f func(fleet.Stats) float64) func() float64 {
	return func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return f(c.fst)
	}
}

// registerBackendMetrics exposes the trainer-stats (and, for a fleet
// backend, the fleet/autoscale/transport) view as func metrics on reg.
func registerBackendMetrics(reg *obs.Registry, be Backend) {
	c := &backendCollector{be: be}
	if fs, ok := be.(FleetStatser); ok {
		c.fs = fs
	}
	reg.AddCollector(c.collect)

	reg.CounterFunc("fekf_train_steps_total",
		"Optimizer steps completed.",
		c.stat(func(s online.Stats) float64 { return float64(s.Steps) }))
	reg.CounterFunc("fekf_kalman_updates_total",
		"Kalman measurement updates applied (energy + force groups per step).",
		c.stat(func(s online.Stats) float64 { return float64(s.KalmanUpdates) }))
	reg.GaugeFunc("fekf_lambda",
		"Current Kalman forgetting factor.",
		c.stat(func(s online.Stats) float64 { return s.Lambda }))
	reg.GaugeFunc("fekf_ingest_queue_depth",
		"Frames buffered in the ingest queue(s).",
		c.stat(func(s online.Stats) float64 { return float64(s.QueueDepth) }))
	reg.GaugeFunc("fekf_ingest_queue_occupancy",
		"Filled fraction of the ingest queue capacity.",
		c.stat(func(s online.Stats) float64 { return s.QueueOccupancy }))
	reg.CounterFunc("fekf_frames_queued_total",
		"Frames accepted into the ingest queue(s).",
		c.stat(func(s online.Stats) float64 { return float64(s.FramesQueued) }))
	reg.CounterFunc("fekf_frames_dropped_total",
		"Frames dropped by full-queue policy.",
		c.stat(func(s online.Stats) float64 { return float64(s.FramesDropped) }))
	reg.CounterFunc("fekf_frames_accepted_total",
		"Frames admitted by the uncertainty gate into replay.",
		c.stat(func(s online.Stats) float64 { return float64(s.FramesAccepted) }))
	reg.CounterFunc("fekf_frames_gated_out_total",
		"Frames rejected by the uncertainty gate.",
		c.stat(func(s online.Stats) float64 { return float64(s.FramesGatedOut) }))
	reg.GaugeFunc("fekf_gate_accept_ratio",
		"Fraction of gate-scored frames admitted.",
		c.stat(func(s online.Stats) float64 { return s.GateAcceptRate }))
	reg.GaugeFunc("fekf_gate_ema",
		"Gate uncertainty score EMA.",
		c.stat(func(s online.Stats) float64 { return s.GateEMA }))
	reg.GaugeFunc("fekf_replay_frames",
		"Frames held in the replay buffer(s).",
		c.stat(func(s online.Stats) float64 { return float64(s.ReplaySize) }))
	reg.GaugeFunc("fekf_replay_occupancy",
		"Filled fraction of the replay capacity.",
		c.stat(func(s online.Stats) float64 { return s.ReplayOccupancy }))
	reg.GaugeFunc("fekf_snapshot_age_seconds",
		"Age of the freshest published model snapshot.",
		c.stat(func(s online.Stats) float64 { return float64(s.SnapshotAgeMs) / 1000 }))
	reg.CounterFunc("fekf_checkpoints_total",
		"Checkpoints written.",
		c.stat(func(s online.Stats) float64 { return float64(s.Checkpoints) }))

	// Self-healing guard ledger (all zero when no guard is configured).
	reg.CounterFunc("fekf_guard_divergence_total",
		"Numerical divergences caught by the health sentinel.",
		c.gstat(func(g *guard.Status) float64 { return float64(g.Divergences) }))
	reg.CounterFunc("fekf_guard_rollback_total",
		"Automatic rollbacks to a checkpoint ring generation.",
		c.gstat(func(g *guard.Status) float64 { return float64(g.Rollbacks) }))
	reg.CounterFunc("fekf_guard_watchdog_total",
		"Step-watchdog fires (a stuck rank aborted and reconciled).",
		c.gstat(func(g *guard.Status) float64 { return float64(g.WatchdogFires) }))
	reg.CounterFunc("fekf_guard_quarantined_checkpoints_total",
		"Corrupt or torn checkpoint generations quarantined at load.",
		c.gstat(func(g *guard.Status) float64 { return float64(g.Quarantined) }))
	reg.GaugeFunc("fekf_guard_degraded",
		"1 while a recent divergence/watchdog event has not been cleared by enough healthy steps.",
		c.gstat(func(g *guard.Status) float64 {
			if g.Degraded {
				return 1
			}
			return 0
		}))
	reg.GaugeFunc("fekf_checkpoint_ring_generation",
		"Newest checkpoint ring generation written or validated.",
		c.gstat(func(g *guard.Status) float64 { return float64(g.RingGeneration) }))
	reg.GaugeFunc("fekf_checkpoint_last_good_age_seconds",
		"Age of the newest known-good checkpoint generation (-1 before any exists).",
		c.gstat(func(g *guard.Status) float64 {
			if g.RingAgeMs < 0 {
				return -1
			}
			return float64(g.RingAgeMs) / 1000
		}))

	if c.fs == nil {
		// Single-trainer backend: one resident-P value, same name as the
		// fleet's per-rank gauge so the footprint is comparable across
		// modes (replicated, sharded, single host).
		reg.GaugeFunc("fekf_p_resident_bytes",
			"Resident Kalman covariance (P) bytes.",
			c.stat(func(s online.Stats) float64 { return float64(s.PResidentBytes) }))
		return
	}
	c.pBytes = reg.Gauge("fekf_p_resident_bytes",
		"Resident Kalman covariance (P) bytes per replica: the full P under replication, only the owned row slabs under -pshard.", "rank")
	c.pShards = reg.Gauge("fekf_pshard_shards",
		"Covariance row slabs owned by each replica (0 for replicated fleets).", "rank")
	reg.GaugeFunc("fekf_pshard_imbalance_ratio",
		"Largest/mean rank share of the sharded covariance (0 for replicated fleets).",
		c.fstat(func(s fleet.Stats) float64 {
			if s.PShard == nil {
				return 0
			}
			return s.PShard.ImbalanceRatio
		}))
	reg.GaugeFunc("fekf_pshard_exchange_bytes",
		"Modeled P·g exchange payload per sharded step (0 for replicated fleets).",
		c.fstat(func(s fleet.Stats) float64 {
			if s.PShard == nil {
				return 0
			}
			return float64(s.PShard.ExchangeBytesPerStep)
		}))
	reg.GaugeFunc("fekf_fleet_replicas",
		"Allocated replica slots.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Replicas) }))
	reg.GaugeFunc("fekf_fleet_live_replicas",
		"Replicas currently live.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Live) }))
	reg.GaugeFunc("fekf_fleet_weight_drift",
		"Max absolute weight difference between live replicas (0 under the fleet invariant).",
		c.fstat(func(s fleet.Stats) float64 { return s.WeightDrift }))
	reg.GaugeFunc("fekf_fleet_p_drift",
		"Max absolute covariance difference between live replicas (0 under the fleet invariant).",
		c.fstat(func(s fleet.Stats) float64 { return s.PDrift }))
	reg.CounterFunc("fekf_ring_wire_bytes_total",
		"Modeled RoCE payload bytes over live and retired rings.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.RingWireBytes) }))
	reg.CounterFunc("fekf_ring_ops_total",
		"Collective operations over live and retired rings.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.RingOps) }))
	reg.CounterFunc("fekf_transport_sent_bytes_total",
		"Measured transport bytes sent (payload + framing), all rings.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Transport.BytesSent) }))
	reg.CounterFunc("fekf_transport_recv_bytes_total",
		"Measured transport bytes received, all rings.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Transport.BytesRecv) }))
	reg.CounterFunc("fekf_transport_messages_total",
		"Transport messages delivered, all rings.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Transport.Msgs) }))
	reg.CounterFunc("fekf_transport_retries_total",
		"Transport send retries.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Transport.Retries) }))
	reg.CounterFunc("fekf_transport_reconnects_total",
		"Transport reconnect attempts.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Transport.Reconnects) }))
	reg.CounterFunc("fekf_transport_heartbeats_total",
		"Transport heartbeats exchanged.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Transport.Heartbeats) }))
	reg.CounterFunc("fekf_transport_peer_failures_total",
		"Peer failures detected by the transport.",
		c.fstat(func(s fleet.Stats) float64 { return float64(s.Transport.PeerFailures) }))

	reg.GaugeFunc("fekf_autoscale_pressure",
		"Smoothed queue-pressure signal the autoscaler acts on (0 when disabled).",
		c.fstat(func(s fleet.Stats) float64 {
			if s.Autoscale == nil {
				return 0
			}
			return s.Autoscale.Pressure
		}))
	reg.GaugeFunc("fekf_autoscale_target_replicas",
		"Autoscaler's current target live count (0 when disabled).",
		c.fstat(func(s fleet.Stats) float64 {
			if s.Autoscale == nil {
				return 0
			}
			return float64(s.Autoscale.Target)
		}))
}
