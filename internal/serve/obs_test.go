package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fekf/internal/obs"
	"fekf/internal/online"
)

// TestServerObservability wires a registry and tracer through trainer and
// server, drives traffic, and checks /metrics serves valid exposition
// covering the HTTP and trainer families while /v1/trace returns step
// traces with spans.
func TestServerObservability(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(32)
	ds, tr, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true, Seed: 5,
			Gate:    online.GateConfig{Enabled: false},
			Metrics: online.NewMetrics(reg), Trace: tracer},
		Config{Metrics: reg, Trace: tracer})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 6; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for tr.Stats().Steps < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("trainer stuck at %d steps (last error %q)", tr.Stats().Steps, tr.Stats().LastError)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE fekf_train_steps_total counter",
		"# TYPE fekf_train_step_seconds histogram",
		"# TYPE fekf_ingest_queue_depth gauge",
		"fekf_train_step_seconds_bucket{le=\"+Inf\"}",
		"fekf_http_requests_total{route=\"/v1/frames\",code=\"200\"} 1",
		"fekf_http_request_seconds_count{route=\"/v1/frames\"} 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The scrape-time trainer counter must reflect the steps taken.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fekf_train_steps_total ") {
			if line == "fekf_train_steps_total 0" {
				t.Error("fekf_train_steps_total stuck at 0 after training")
			}
		}
	}

	resp, err = http.Get(base + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	var tresp obs.TraceResponse
	err = json.NewDecoder(resp.Body).Decode(&tresp)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %v", resp.StatusCode, err)
	}
	if tresp.Capacity != 32 || len(tresp.Steps) == 0 {
		t.Fatalf("trace capacity %d, %d steps — want 32 and >0", tresp.Capacity, len(tresp.Steps))
	}
	var sawStep bool
	for _, st := range tresp.Steps {
		for _, sp := range st.Spans {
			if sp.Name == "step" && sp.DurNs > 0 {
				sawStep = true
			}
		}
	}
	if !sawStep {
		t.Error("no non-zero step span in any trace")
	}
}

// TestServerNoMetricsConfigured pins the opt-out path: without a registry
// or tracer the endpoints 404 and handlers run uninstrumented.
func TestServerNoMetricsConfigured(t *testing.T) {
	_, _, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, Seed: 5,
			Gate: online.GateConfig{Enabled: false}},
		Config{})
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/v1/trace"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d without obs config, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
}
