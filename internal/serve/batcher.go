package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fekf/internal/deepmd"
	"fekf/internal/md"
	"fekf/internal/online"
)

// ErrStopped is returned for predictions submitted after Batcher.Stop.
var ErrStopped = errors.New("serve: batcher stopped")

// Result is one prediction produced by the batcher.
type Result struct {
	Energy float64
	Forces []float64
	Step   int64 // training step of the answering snapshot
	Batch  int   // micro-batch size this request was served in
}

type predictJob struct {
	sys  *md.System
	done chan jobResult
}

type jobResult struct {
	res Result
	err error
}

// Batcher merges concurrent prediction requests into shared forward
// passes: the first request opens a collection window (BatchWindow) and up
// to MaxBatch-1 more join it; jobs are grouped by atom count and each
// group runs as ONE batched forward on the latest published model
// snapshot.  Under concurrent load this amortizes graph construction and
// kernel dispatch across requests — the serving-side analogue of the
// paper's aggregation-before-computing — while a lone request pays only
// the window latency.
type Batcher struct {
	snap     func() *online.ModelSnapshot
	maxBatch int
	window   time.Duration

	jobs     chan *predictJob
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	served  atomic.Int64
	batches atomic.Int64
}

// NewBatcher builds a batcher reading snapshots from snap, with workers
// parallel batch executors (default 1).
func NewBatcher(snap func() *online.ModelSnapshot, maxBatch int, window time.Duration, workers int) *Batcher {
	if maxBatch < 1 {
		maxBatch = 16
	}
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	if workers < 1 {
		workers = 1
	}
	b := &Batcher{
		snap:     snap,
		maxBatch: maxBatch,
		window:   window,
		jobs:     make(chan *predictJob),
		stop:     make(chan struct{}),
	}
	b.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

// Predict submits one system and waits for its result (or ctx expiry).
func (b *Batcher) Predict(ctx context.Context, sys *md.System) (Result, error) {
	j := &predictJob{sys: sys, done: make(chan jobResult, 1)}
	select {
	case b.jobs <- j:
	case <-b.stop:
		return Result{}, ErrStopped
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	select {
	case r := <-j.done:
		return r.res, r.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Stop shuts the workers down after their in-flight batches finish;
// queued-but-unclaimed jobs receive ErrStopped via Predict's stop case.
// Stop is idempotent.
func (b *Batcher) Stop() {
	b.stopOnce.Do(func() { close(b.stop) })
	b.wg.Wait()
}

// Served returns the number of predictions answered.
func (b *Batcher) Served() int64 { return b.served.Load() }

// Batches returns the number of forward passes executed.
func (b *Batcher) Batches() int64 { return b.batches.Load() }

// worker collects micro-batches and executes them.
func (b *Batcher) worker() {
	defer b.wg.Done()
	for {
		var first *predictJob
		select {
		case first = <-b.jobs:
		case <-b.stop:
			return
		}
		batch := []*predictJob{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case j := <-b.jobs:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			case <-b.stop:
				break collect
			}
		}
		timer.Stop()
		b.run(batch)
	}
}

// run groups the batch by atom count and answers every job.  Snapshots are
// immutable clones, so concurrent forwards are read-only on the weights.
func (b *Batcher) run(batch []*predictJob) {
	groups := make(map[int][]*predictJob)
	for _, j := range batch {
		groups[j.sys.NumAtoms()] = append(groups[j.sys.NumAtoms()], j)
	}
	for _, group := range groups {
		b.runGroup(group)
	}
}

func (b *Batcher) runGroup(group []*predictJob) {
	snap := b.snap()
	if snap == nil {
		for _, j := range group {
			j.done <- jobResult{err: errors.New("serve: no model snapshot published yet")}
		}
		return
	}
	systems := make([]*md.System, len(group))
	for i, j := range group {
		systems[i] = j.sys
	}
	env, err := deepmd.BuildEnv(snap.Model.Cfg, systems)
	if err != nil {
		for _, j := range group {
			j.done <- jobResult{err: err}
		}
		return
	}
	out := snap.Model.Forward(env, true)
	na := env.NaPer
	for i, j := range group {
		forces := make([]float64, 3*na)
		copy(forces, out.Forces.Value.Data[3*na*i:3*na*(i+1)])
		j.done <- jobResult{res: Result{
			Energy: out.Energies.Value.Data[i],
			Forces: forces,
			Step:   snap.Step,
			Batch:  len(group),
		}}
	}
	out.Graph.Release()
	b.served.Add(int64(len(group)))
	b.batches.Add(1)
}
