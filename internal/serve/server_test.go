package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/fleet"
	"fekf/internal/guard"
	"fekf/internal/obs"
	"fekf/internal/online"
	"fekf/internal/optimize"
)

// serveSetup builds a started trainer + server pair bound to a random port
// and returns the dataset feeding it.  The server is shut down at cleanup.
func serveSetup(t *testing.T, tcfg online.TrainerConfig, scfg Config) (*dataset.Dataset, *online.Trainer, *Server) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 16, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptAll
	m.Dev = device.New("serve-test", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	opt := optimize.NewFEKF()
	opt.KCfg = opt.KCfg.WithOpt3()
	tr, err := online.NewTrainer(m, opt, ds, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Start()
	srv := New(tr, scfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ds, tr, srv
}

func postJSON(t *testing.T, url string, body, out any) (int, error) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

func framePayload(ds *dataset.Dataset, i int) FramePayload {
	s := ds.Snapshots[i]
	return FramePayload{
		Pos: s.Pos, Box: s.Box, Types: s.Types,
		Energy: s.Energy, Forces: s.Forces, Temperature: s.Temperature,
	}
}

func TestServerEndpoints(t *testing.T) {
	ds, _, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true, Seed: 5,
			Gate: online.GateConfig{Enabled: false}},
		Config{})
	base := "http://" + srv.Addr()

	// healthz
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.System != "Cu" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	// frames ingest
	req := FramesRequest{}
	for i := 0; i < 6; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	code, err := postJSON(t, base+"/v1/frames", req, &fresp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}
	if fresp.Accepted != 6 {
		t.Fatalf("frames accepted %d, want 6", fresp.Accepted)
	}

	// predict once training produced a snapshot (initial snapshot exists
	// immediately, so this cannot hang)
	s := ds.Snapshots[0]
	var presp PredictResponse
	code, err = postJSON(t, base+"/v1/predict",
		PredictRequest{Pos: s.Pos, Box: s.Box, Types: s.Types}, &presp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("predict: %d %v", code, err)
	}
	if len(presp.Forces) != len(s.Forces) {
		t.Fatalf("predict returned %d force components, want %d", len(presp.Forces), len(s.Forces))
	}
	if presp.Energy != presp.Energy {
		t.Fatal("predict returned NaN energy")
	}

	// malformed requests are rejected, not served
	var eresp ErrorResponse
	code, err = postJSON(t, base+"/v1/predict",
		PredictRequest{Pos: s.Pos[:3], Box: s.Box, Types: s.Types}, &eresp)
	if err != nil || code != http.StatusBadRequest {
		t.Fatalf("short predict accepted: %d %v", code, err)
	}
	code, err = postJSON(t, base+"/v1/frames", FramesRequest{}, &eresp)
	if err != nil || code != http.StatusBadRequest {
		t.Fatalf("empty frames accepted: %d %v", code, err)
	}
	badTypes := append([]int(nil), s.Types...)
	badTypes[0] = 99
	code, err = postJSON(t, base+"/v1/predict",
		PredictRequest{Pos: s.Pos, Box: s.Box, Types: badTypes}, &eresp)
	if err != nil || code != http.StatusBadRequest {
		t.Fatalf("out-of-range species accepted: %d %v", code, err)
	}

	// stats reflect the traffic
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.FrameRequests < 1 || stats.PredictRequests < 1 || stats.FramesQueued < 6 {
		t.Fatalf("stats do not reflect traffic: %+v", stats)
	}
}

// Concurrent predictions against a training server: every response must be
// complete and consistent, and micro-batching should group at least some of
// them.  Run under -race via make ci.
func TestServerConcurrentPredict(t *testing.T) {
	ds, _, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true, Seed: 5,
			Gate: online.GateConfig{Enabled: false}},
		Config{MaxBatch: 8, BatchWindow: 5 * time.Millisecond, BatchWorkers: 2})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 4; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}

	const clients, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	maxBatch := int64(0)
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s := ds.Snapshots[(c+r)%ds.Len()]
				var presp PredictResponse
				code, err := postJSON(t, base+"/v1/predict",
					PredictRequest{Pos: s.Pos, Box: s.Box, Types: s.Types}, &presp)
				if err != nil || code != http.StatusOK {
					errs <- fmt.Errorf("client %d round %d: %d %v", c, r, code, err)
					return
				}
				if len(presp.Forces) != 3*len(s.Types) || presp.Energy != presp.Energy {
					errs <- fmt.Errorf("client %d round %d: incomplete response", c, r)
					return
				}
				mu.Lock()
				if int64(presp.Batch) > maxBatch {
					maxBatch = int64(presp.Batch)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if maxBatch < 2 {
		t.Logf("note: no request shared a micro-batch (max batch %d)", maxBatch)
	}
}

// Graceful shutdown must stop serving, drain the trainer, and leave the
// final checkpoint behind.
func TestServerGracefulShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "final.ckpt")
	ds, tr, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, CheckpointPath: path, Seed: 5,
			Gate: online.GateConfig{Enabled: false}},
		Config{})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 4; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := online.LoadCheckpoint(path); err != nil {
		t.Fatalf("final checkpoint missing after shutdown: %v", err)
	}
	if tr.Stats().Steps != tr.Snapshot().Step {
		t.Fatal("final snapshot does not reflect the last training step")
	}
	// the listener is closed: new requests fail
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

// The /v1/stats payload must expose the replay-buffer occupancy and gate
// acceptance-rate fields, and they must reconcile with the traffic.
func TestStatsReplayAndGateFields(t *testing.T) {
	ds, _, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, WindowSize: 8, ReservoirSize: 8, Seed: 5,
			Gate: online.GateConfig{Enabled: false}},
		Config{})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 6; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}

	// wait for the trainer loop to drain the queue through the gate
	deadline := time.Now().Add(30 * time.Second)
	var stats StatsResponse
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.FramesAccepted >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames never drained: %+v", stats.Stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats.ReplayCapacity != 16 {
		t.Fatalf("replay capacity %d, want 16 (window 8 + reservoir 8)", stats.ReplayCapacity)
	}
	if stats.ReplaySize == 0 || stats.ReplayWindowLen == 0 {
		t.Fatalf("replay occupancy fields empty: %+v", stats.Stats)
	}
	want := float64(stats.ReplaySize) / float64(stats.ReplayCapacity)
	if stats.ReplayOccupancy != want {
		t.Fatalf("replay occupancy %v, want %v", stats.ReplayOccupancy, want)
	}
	if stats.GateAcceptRate != 1 {
		t.Fatalf("gate accept rate %v with the gate disabled, want 1", stats.GateAcceptRate)
	}
	// raw JSON carries the new field names
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"replay_occupancy", "replay_capacity", "replay_window_len", "replay_reservoir_len", "gate_accept_rate", "p_resident_bytes"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("/v1/stats JSON missing %q", key)
		}
	}
	if _, ok := raw["fleet"]; ok {
		t.Fatal("single-trainer stats carry a fleet section")
	}
}

// The same server must front a fleet backend: ingest shards across the
// replicas, predictions ride the snapshot router, and /v1/stats grows the
// per-replica fleet section.
func TestServerFleetBackend(t *testing.T) {
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 16, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptAll
	m.Dev = device.New("serve-fleet-test", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	opt := optimize.NewFEKF()
	opt.KCfg = opt.KCfg.WithOpt3()
	fl, err := fleet.New(m, opt, ds, fleet.Config{
		Replicas: 3, BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true, Seed: 5,
		Gate: online.GateConfig{Enabled: false}, Transport: "tcp",
		// Autoscaling enabled but held at the band floor (the trickle of 9
		// frames into 256-slot queues never nears the scale-up edge), so
		// the stats row is exercised without membership churn.
		Autoscale: fleet.AutoscaleConfig{Enabled: true, Min: 3, Max: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	fl.Start()
	srv := New(fl, Config{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 9; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}
	if fresp.Accepted != 9 {
		t.Fatalf("fleet accepted %d frames, want 9", fresp.Accepted)
	}

	s := ds.Snapshots[0]
	var presp PredictResponse
	if code, err := postJSON(t, base+"/v1/predict",
		PredictRequest{Pos: s.Pos, Box: s.Box, Types: s.Types}, &presp); err != nil || code != http.StatusOK {
		t.Fatalf("predict: %d %v", code, err)
	}
	if presp.Energy != presp.Energy || len(presp.Forces) != len(s.Forces) {
		t.Fatal("fleet predict returned an incomplete response")
	}

	deadline := time.Now().Add(60 * time.Second)
	var stats StatsResponse
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.Steps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet made no progress: %+v", stats.Stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats.Fleet == nil {
		t.Fatal("/v1/stats has no fleet section for a fleet backend")
	}
	// 4 slots are pre-allocated (Autoscale.Max), 3 of them live.
	if stats.Fleet.Replicas != 4 || stats.Fleet.Live != 3 || len(stats.Fleet.Replica) != 4 {
		t.Fatalf("fleet stats: %+v", stats.Fleet)
	}
	if stats.Fleet.ShardPolicy != "round-robin" {
		t.Fatalf("fleet shard policy %q", stats.Fleet.ShardPolicy)
	}
	if stats.Fleet.WeightDrift != 0 || stats.Fleet.PDrift != 0 {
		t.Fatalf("fleet drift over HTTP: %g / %g", stats.Fleet.WeightDrift, stats.Fleet.PDrift)
	}
	var queued int64
	for _, rs := range stats.Fleet.Replica {
		queued += rs.FramesQueued
	}
	if queued != 9 {
		t.Fatalf("per-replica rows account %d queued frames, want 9", queued)
	}
	// The fleet ran its ring over TCP loopback: /v1/stats must report the
	// measured transport counters alongside the modeled ring accounting.
	tr := stats.Fleet.Transport
	if tr.Kind != "tcp" {
		t.Fatalf("transport kind %q over HTTP, want tcp", tr.Kind)
	}
	if tr.BytesSent == 0 || tr.BytesRecv == 0 || tr.Msgs == 0 {
		t.Fatalf("transport rows report no traffic: %+v", tr)
	}
	if stats.Fleet.RingWireBytes == 0 {
		t.Fatal("modeled ring accounting lost when running over TCP")
	}
	// The autoscaler row travels with the fleet section: enabled, parked
	// at the band floor, with decision provenance once it has evaluated.
	as := stats.Fleet.Autoscale
	if as == nil {
		t.Fatal("/v1/stats has no autoscale row with autoscaling enabled")
	}
	if !as.Enabled || as.Min != 3 || as.Max != 4 {
		t.Fatalf("autoscale row misconfigured over HTTP: %+v", as)
	}
	if as.Live != 3 || as.Target != 3 {
		t.Fatalf("autoscale moved the fleet during a trickle: %+v", as)
	}
	if as.ScaleUps != 0 || as.ScaleDowns != 0 {
		t.Fatalf("autoscale scaled on a trickle: %+v", as)
	}
	if as.Evals > 0 && (as.LastDecision != "hold" || as.LastReason == "") {
		t.Fatalf("autoscale row lacks decision provenance: %+v", as)
	}
}

// A sharded-covariance fleet behind the server: /v1/stats grows the pshard
// row (partition geometry, per-rank resident P bytes, exchange traffic) and
// /metrics exports the per-rank gauges.
func TestServerPShardBackend(t *testing.T) {
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 16, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptAll
	m.Dev = device.New("serve-pshard-test", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	opt := optimize.NewFEKF()
	opt.KCfg = opt.KCfg.WithOpt3()
	reg := obs.NewRegistry()
	fl, err := fleet.New(m, opt, ds, fleet.Config{
		Replicas: 3, BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true, Seed: 5,
		PShard: true, Gate: online.GateConfig{Enabled: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	fl.Start()
	srv := New(fl, Config{Metrics: reg})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 9; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	var stats StatsResponse
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.Steps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sharded fleet made no progress: %+v", stats.Stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats.Fleet == nil || stats.Fleet.PShard == nil {
		t.Fatalf("/v1/stats has no pshard row for a sharded fleet: %+v", stats.Fleet)
	}
	ps := stats.Fleet.PShard
	if ps.Ranks != 3 || len(ps.ResidentBytesPerRank) != 3 || len(ps.ShardsPerRank) != 3 {
		t.Fatalf("pshard row geometry: %+v", ps)
	}
	var sum int64
	for _, b := range ps.ResidentBytesPerRank {
		if b <= 0 || b >= ps.TotalBytes {
			t.Fatalf("per-rank resident bytes %d not a strict share of %d", b, ps.TotalBytes)
		}
		sum += b
	}
	if sum != ps.TotalBytes {
		t.Fatalf("resident bytes sum %d != total %d", sum, ps.TotalBytes)
	}
	if ps.ExchangeBytesPerStep <= 0 || ps.ImbalanceRatio < 1 {
		t.Fatalf("pshard row footprint: %+v", ps)
	}
	for _, rs := range stats.Fleet.Replica {
		if rs.Alive && rs.PResidentBytes <= 0 {
			t.Fatalf("live replica %d reports no resident P", rs.ID)
		}
	}
	// Drift invariants hold over HTTP in sharded mode too.
	if stats.Fleet.WeightDrift != 0 || stats.Fleet.PDrift != 0 {
		t.Fatalf("sharded drift over HTTP: %g / %g", stats.Fleet.WeightDrift, stats.Fleet.PDrift)
	}
	// Raw JSON carries the documented pshard field names.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fl_, ok := raw["fleet"].(map[string]any)
	if !ok {
		t.Fatal("raw stats JSON has no fleet section")
	}
	prow, ok := fl_["pshard"].(map[string]any)
	if !ok {
		t.Fatal("raw fleet JSON has no pshard row")
	}
	for _, key := range []string{"ranks", "blocks", "rank_replica_ids", "shards_per_rank",
		"resident_bytes_per_rank", "total_bytes", "imbalance_ratio", "exchange_bytes_per_step"} {
		if _, ok := prow[key]; !ok {
			t.Fatalf("pshard row JSON missing %q", key)
		}
	}

	// /metrics exports the per-rank gauges with non-zero values.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %v", resp.StatusCode, err)
	}
	out := string(body)
	for _, want := range []string{
		`fekf_p_resident_bytes{rank="0"}`,
		`fekf_p_resident_bytes{rank="2"}`,
		`fekf_pshard_shards{rank="0"}`,
		"# TYPE fekf_pshard_imbalance_ratio gauge",
		"fekf_pshard_exchange_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `fekf_p_resident_bytes{rank="0"} `) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("rank 0 resident-bytes gauge stuck at 0: %q", line)
			}
		}
	}
}

// metricValue extracts the value of an unlabelled metric line from a
// Prometheus text exposition, failing the test when the family is absent.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s has unparseable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("exposition has no %s sample", name)
	return 0
}

// The degraded health surface: with the sentinel on but no checkpoint ring,
// a poisoned step leaves the trainer permanently degraded — /healthz must
// report it (503 with Degraded503, 200 otherwise), the guard ledger rides
// the body and /metrics, and predictions keep answering from the last
// healthy snapshot.
func TestServerGuardDegradedHealthz(t *testing.T) {
	reg := obs.NewRegistry()
	ds, tr, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true, Seed: 5,
			Guard: guard.SentinelConfig{Enabled: true, SampleStride: 1},
			Chaos: guard.ChaosConfig{PoisonStep: 2, PoisonInf: true},
			Gate:  online.GateConfig{Enabled: false}},
		Config{Metrics: reg, Degraded503: true})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 4; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	var health HealthResponse
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never went 503: %+v", health)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if health.Status != "degraded" || health.Guard == nil {
		t.Fatalf("degraded healthz body: %+v", health)
	}
	if health.Guard.Divergences < 1 || health.Guard.Rollbacks != 0 {
		t.Fatalf("guard ledger over HTTP: %+v", health.Guard)
	}

	// Without the 503 knob the same backend state answers 200 "degraded".
	plain := New(tr, Config{})
	t.Cleanup(plain.bat.Stop)
	rr := httptest.NewRecorder()
	plain.handleHealth(rr, httptest.NewRequest("GET", "/healthz", nil))
	var ph HealthResponse
	if err := json.NewDecoder(rr.Body).Decode(&ph); err != nil {
		t.Fatal(err)
	}
	if rr.Code != http.StatusOK || ph.Status != "degraded" || ph.Guard == nil {
		t.Fatalf("default-policy degraded healthz: %d %+v", rr.Code, ph)
	}

	// The guard ledger is on /metrics as scrape-time func metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %v", resp.StatusCode, err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE fekf_guard_divergence_total counter",
		"# TYPE fekf_guard_rollback_total counter",
		"# TYPE fekf_guard_watchdog_total counter",
		"# TYPE fekf_guard_degraded gauge",
		"# TYPE fekf_checkpoint_ring_generation gauge",
		"# TYPE fekf_checkpoint_last_good_age_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if v := metricValue(t, out, "fekf_guard_divergence_total"); v < 1 {
		t.Errorf("fekf_guard_divergence_total = %g, want >= 1", v)
	}
	if v := metricValue(t, out, "fekf_guard_degraded"); v != 1 {
		t.Errorf("fekf_guard_degraded = %g, want 1", v)
	}
	if v := metricValue(t, out, "fekf_checkpoint_last_good_age_seconds"); v != -1 {
		t.Errorf("ring age without a ring = %g, want -1", v)
	}

	// Availability: the published snapshot predates the poison, so the
	// predict tier still answers with finite physics.
	s := ds.Snapshots[0]
	var presp PredictResponse
	if code, err := postJSON(t, base+"/v1/predict",
		PredictRequest{Pos: s.Pos, Box: s.Box, Types: s.Types}, &presp); err != nil || code != http.StatusOK {
		t.Fatalf("predict while degraded: %d %v", code, err)
	}
	if math.IsNaN(presp.Energy) || math.IsInf(presp.Energy, 0) {
		t.Fatalf("degraded predict returned non-finite energy %g", presp.Energy)
	}
}

// The recovered path over HTTP: with a checkpoint ring behind the trainer,
// the poisoned step rolls back automatically and the rollback/ring gauges
// land on /metrics.
func TestServerGuardRollbackMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	ds, _, srv := serveSetup(t,
		online.TrainerConfig{BatchSize: 2, MinFrames: 2, SnapshotEvery: 1, TrainIdle: true, Seed: 7,
			CheckpointPath: path, CheckpointEvery: 2, CheckpointKeep: 3,
			Guard: guard.SentinelConfig{Enabled: true, SampleStride: 1},
			Chaos: guard.ChaosConfig{PoisonStep: 5},
			Gate:  online.GateConfig{Enabled: false}},
		Config{Metrics: reg})
	base := "http://" + srv.Addr()

	req := FramesRequest{}
	for i := 0; i < 6; i++ {
		req.Frames = append(req.Frames, framePayload(ds, i))
	}
	var fresp FramesResponse
	if code, err := postJSON(t, base+"/v1/frames", req, &fresp); err != nil || code != http.StatusOK {
		t.Fatalf("frames: %d %v", code, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	var stats StatsResponse
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Guard != nil && stats.Guard.Rollbacks >= 1 && stats.Steps >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trainer never rolled back and recovered: %+v", stats.Guard)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats.Guard.Divergences != 1 || stats.Guard.RollbackGeneration == 0 {
		t.Fatalf("guard ledger after recovery: %+v", stats.Guard)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %v", resp.StatusCode, err)
	}
	out := string(body)
	if v := metricValue(t, out, "fekf_guard_rollback_total"); v != 1 {
		t.Errorf("fekf_guard_rollback_total = %g, want 1", v)
	}
	if v := metricValue(t, out, "fekf_guard_divergence_total"); v != 1 {
		t.Errorf("fekf_guard_divergence_total = %g, want 1", v)
	}
	if v := metricValue(t, out, "fekf_checkpoint_ring_generation"); v < 2 {
		t.Errorf("fekf_checkpoint_ring_generation = %g, want >= 2", v)
	}
	if v := metricValue(t, out, "fekf_checkpoint_last_good_age_seconds"); v < 0 {
		t.Errorf("fekf_checkpoint_last_good_age_seconds = %g, want >= 0", v)
	}
}
