package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/md"
	"fekf/internal/online"
)

// batcherSetup returns a batcher over a fixed model snapshot plus systems
// to predict on.
func batcherSetup(t *testing.T, maxBatch int, window time.Duration, workers int) (*Batcher, *dataset.Dataset, *deepmd.Model) {
	t.Helper()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 4, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		t.Fatal(err)
	}
	m.Level = deepmd.OptAll
	m.Dev = device.New("batcher-test", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		t.Fatal(err)
	}
	snap := &online.ModelSnapshot{Model: m, Step: 7, Published: time.Now()}
	b := NewBatcher(func() *online.ModelSnapshot { return snap }, maxBatch, window, workers)
	t.Cleanup(b.Stop)
	return b, ds, m
}

func snapSystem(ds *dataset.Dataset, i int) *md.System {
	s := ds.Snapshots[i]
	return &md.System{Box: s.Box, Pos: s.Pos, Types: s.Types, Species: ds.Species}
}

// A batched prediction must be bitwise identical to a direct single-system
// forward on the same snapshot — batching is an optimization, not a model.
func TestBatcherMatchesDirectForward(t *testing.T) {
	b, ds, m := batcherSetup(t, 8, time.Millisecond, 1)
	res, err := b.Predict(context.Background(), snapSystem(ds, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Step != 7 {
		t.Fatalf("result carries snapshot step %d, want 7", res.Step)
	}
	env, err := deepmd.BuildBatchEnv(m.Cfg, ds, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Forward(env, true)
	if res.Energy != out.Energies.Value.Data[0] {
		t.Fatalf("batched energy %v, direct %v", res.Energy, out.Energies.Value.Data[0])
	}
	for i, f := range res.Forces {
		if f != out.Forces.Value.Data[i] {
			t.Fatalf("batched force %d is %v, direct %v", i, f, out.Forces.Value.Data[i])
		}
	}
	out.Graph.Release()
}

// Concurrent predictions submitted within one window must share forward
// passes: with one worker and a generous window, requests coalesce.
func TestBatcherCoalesces(t *testing.T) {
	b, ds, _ := batcherSetup(t, 16, 50*time.Millisecond, 1)
	const n = 6
	var wg sync.WaitGroup
	batches := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Predict(context.Background(), snapSystem(ds, i%ds.Len()))
			if err != nil {
				t.Error(err)
				return
			}
			batches[i] = res.Batch
		}(i)
	}
	wg.Wait()
	if b.Served() != n {
		t.Fatalf("served %d, want %d", b.Served(), n)
	}
	if b.Batches() >= n {
		t.Fatalf("%d forward passes for %d concurrent requests — no coalescing", b.Batches(), n)
	}
	shared := false
	for _, bs := range batches {
		if bs > 1 {
			shared = true
		}
	}
	if !shared {
		t.Fatal("no request reported riding a shared micro-batch")
	}
}

func TestBatcherStopAndContext(t *testing.T) {
	_, ds, m := batcherSetup(t, 4, time.Millisecond, 1)
	snap := &online.ModelSnapshot{Model: m, Published: time.Now()}
	b := NewBatcher(func() *online.ModelSnapshot { return snap }, 4, time.Millisecond, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Predict(ctx, snapSystem(ds, 0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled predict returned %v", err)
	}
	b.Stop()
	if _, err := b.Predict(context.Background(), snapSystem(ds, 0)); !errors.Is(err, ErrStopped) {
		t.Fatalf("predict after Stop returned %v", err)
	}
}

// Predictions against a batcher whose snapshot source has nothing yet must
// fail cleanly, not crash.
func TestBatcherNoSnapshot(t *testing.T) {
	b := NewBatcher(func() *online.ModelSnapshot { return nil }, 4, time.Millisecond, 1)
	defer b.Stop()
	ds, err := dataset.Generate("Cu", dataset.GenOptions{
		Snapshots: 1, SampleEvery: 4, EquilSteps: 25, Tiny: true, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Predict(context.Background(), snapSystem(ds, 0)); err == nil {
		t.Fatal("predict without a snapshot must error")
	}
}
