package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"fekf/internal/dataset"
	"fekf/internal/fleet"
	"fekf/internal/md"
	"fekf/internal/obs"
	"fekf/internal/online"
)

// Backend is the training engine behind the HTTP API — satisfied by both
// the single *online.Trainer and the replicated *fleet.Fleet, so the same
// server fronts either.
type Backend interface {
	// Ingest validates and enqueues one labelled frame (false without
	// error means dropped by queue policy).
	Ingest(s dataset.Snapshot) (bool, error)
	// Snapshot returns the latest published model snapshot (never nil
	// after the backend has started).
	Snapshot() *online.ModelSnapshot
	// Species returns the species table requests must use.
	Species() []md.Species
	// Stats returns the aggregated trainer-stats view.
	Stats() online.Stats
	// Stop shuts the backend down gracefully.
	Stop(ctx context.Context) error
}

// FleetStatser is the optional per-replica stats surface a fleet backend
// adds to /v1/stats (replica health, queue depths, drift, snapshot ages).
type FleetStatser interface {
	FleetStats() fleet.Stats
}

// Config controls the HTTP server.
type Config struct {
	// Addr is the listen address; ":0" or "127.0.0.1:0" picks a random
	// free port (see Server.Addr).
	Addr string
	// MaxBatch caps the prediction micro-batch (default 16).
	MaxBatch int
	// BatchWindow is how long the first request of a micro-batch waits
	// for company (default 2ms).
	BatchWindow time.Duration
	// BatchWorkers is the number of parallel batch executors (default 2).
	BatchWorkers int
	// RequestTimeout bounds each request end to end (default 10s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB).
	MaxBodyBytes int64
	// Metrics, when non-nil, is served at GET /metrics in Prometheus text
	// format and populated with the serving tier's request metrics plus
	// scrape-time func metrics over the backend's stats (one consistent
	// snapshot per scrape).
	Metrics *obs.Registry
	// Trace, when non-nil, is served at GET /v1/trace as JSON.
	Trace *obs.Tracer
	// Degraded503 makes GET /healthz answer 503 while the backend's guard
	// reports a degraded state, so orchestrator probes can shed the node.
	// Off by default: a degraded backend still serves predictions from the
	// last healthy snapshot, so degradation is reported in the body with a
	// 200 unless the operator opts into probe-visible failure.
	Degraded503 bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/, outside the
	// request-timeout wrapper (profiles run for tens of seconds; they are
	// still subject to the server's write timeout — use the standalone
	// metrics listener for long captures).
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchWorkers < 1 {
		c.BatchWorkers = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// Server wires a training backend (single trainer or fleet) and the
// prediction batcher into an HTTP API:
//
//	POST /v1/predict  energy/forces from the latest snapshot (micro-batched)
//	POST /v1/frames   labelled-frame ingest into the trainer queue
//	GET  /healthz     liveness + snapshot provenance
//	GET  /v1/stats    queue depth, snapshot age, λ, counters (+ per-replica
//	                  fleet rows when the backend is a fleet)
type Server struct {
	cfg Config
	be  Backend
	bat *Batcher

	http  *http.Server
	ln    net.Listener
	start time.Time
	om    *httpMetrics // nil when cfg.Metrics is nil

	predictN atomic.Int64
	frameN   atomic.Int64
}

// New builds a server around a backend (which the caller has Started or
// will Start; Shutdown stops it).  A *fleet.Fleet backend routes every
// prediction through its snapshot router.
func New(be Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		be:    be,
		bat:   NewBatcher(be.Snapshot, cfg.MaxBatch, cfg.BatchWindow, cfg.BatchWorkers),
		start: time.Now(),
	}
	if cfg.Metrics != nil {
		s.om = newHTTPMetrics(cfg.Metrics)
		registerBackendMetrics(cfg.Metrics, be)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("POST /v1/frames", s.instrument("/v1/frames", s.handleFrames))
	mux.HandleFunc("POST /v1/predict", s.instrument("/v1/predict", s.handlePredict))
	if cfg.Metrics != nil {
		mux.Handle("GET /metrics", cfg.Metrics.Handler())
	}
	if cfg.Trace != nil {
		mux.Handle("GET /v1/trace", cfg.Trace.Handler())
	}
	handler := http.Handler(http.TimeoutHandler(mux, cfg.RequestTimeout, `{"error":"request timed out"}`))
	if cfg.EnablePprof {
		// pprof streams for the caller-chosen capture window, so it lives
		// outside the per-request timeout wrapper.
		outer := http.NewServeMux()
		obs.MountPprof(outer)
		outer.Handle("/", handler)
		handler = outer
	}
	s.http = &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.RequestTimeout,
		WriteTimeout:      cfg.RequestTimeout + 5*time.Second,
		IdleTimeout:       60 * time.Second,
	}
	return s
}

// Start binds the listener and begins serving in the background.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve returns after Shutdown; anything else is fatal for
			// the listener, surfaced through trainer stats' last_error
			// being absent and the process logs of cmd/serve.
			fmt.Println("serve:", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: stop accepting requests and wait for
// handlers, stop the prediction batcher, then stop the backend — which
// drains its queues and writes the final checkpoint.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.http.Shutdown(ctx)
	s.bat.Stop()
	beErr := s.be.Stop(ctx)
	return errors.Join(httpErr, beErr)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.be.Stats()
	status, code := "ok", http.StatusOK
	if st.Guard != nil && st.Guard.Degraded {
		status = "degraded"
		if s.cfg.Degraded503 {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, HealthResponse{
		Status:       status,
		System:       st.System,
		Steps:        st.Steps,
		SnapshotStep: st.SnapshotStep,
		Guard:        st.Guard,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One Stats() snapshot per request: the backend assembles it from a
	// dozen atomics, so calling it twice in one handler would both pay
	// double and mix two moments in time into one response.
	st := s.be.Stats()
	resp := StatsResponse{
		Stats:           st,
		PredictRequests: s.predictN.Load(),
		PredictBatches:  s.bat.Batches(),
		FrameRequests:   s.frameN.Load(),
		UptimeMs:        time.Since(s.start).Milliseconds(),
	}
	if fs, ok := s.be.(FleetStatser); ok {
		fst := fs.FleetStats()
		resp.Fleet = &fst
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	s.frameN.Add(1)
	var req FramesRequest
	if !decodeJSON(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if len(req.Frames) == 0 {
		writeErr(w, http.StatusBadRequest, "no frames in request")
		return
	}
	resp := FramesResponse{}
	for i := range req.Frames {
		ok, err := s.be.Ingest(req.Frames[i].Snapshot())
		switch {
		case errors.Is(err, online.ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, "trainer is shutting down")
			return
		case errors.Is(err, fleet.ErrNoReplica):
			writeErr(w, http.StatusServiceUnavailable, "no live replica to ingest into")
			return
		case err != nil:
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("frame %d: %v", i, err))
			return
		case ok:
			resp.Accepted++
		default:
			resp.Dropped++
		}
	}
	st := s.be.Stats()
	resp.QueueDepth = st.QueueDepth
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.predictN.Add(1)
	var req PredictRequest
	if !decodeJSON(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	species := s.be.Species()
	for i, ty := range req.Types {
		if ty < 0 || ty >= len(species) {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("atom %d has species %d, table holds %d", i, ty, len(species)))
			return
		}
	}
	sys := &md.System{Box: req.Box, Pos: req.Pos, Types: req.Types, Species: species}
	res, err := s.bat.Predict(r.Context(), sys)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err.Error())
		return
	}
	if s.om != nil {
		s.om.batchFrames.Observe(float64(res.Batch))
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Energy:       res.Energy,
		Forces:       res.Forces,
		SnapshotStep: res.Step,
		Batch:        res.Batch,
	})
}

// decodeJSON reads a bounded JSON body into v, answering 400 on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
