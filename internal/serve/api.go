// Package serve exposes the online trainer over a net/http JSON API:
// labelled-frame ingest, micro-batched energy/force prediction from the
// latest published model snapshot, health and stats.  See DESIGN.md,
// "Online-learning subsystem".
package serve

import (
	"fmt"

	"fekf/internal/dataset"
	"fekf/internal/fleet"
	"fekf/internal/guard"
	"fekf/internal/online"
)

// FramePayload is one labelled configuration posted to /v1/frames.
type FramePayload struct {
	Pos         []float64  `json:"pos"`   // 3N coordinates, Å
	Box         [3]float64 `json:"box"`   // orthorhombic box, Å
	Types       []int      `json:"types"` // species index per atom
	Energy      float64    `json:"energy"`
	Forces      []float64  `json:"forces"`
	Temperature float64    `json:"temperature,omitempty"`
}

// Snapshot converts the payload to a dataset frame.
func (p *FramePayload) Snapshot() dataset.Snapshot {
	return dataset.Snapshot{
		Pos:         p.Pos,
		Box:         p.Box,
		Types:       p.Types,
		Energy:      p.Energy,
		Forces:      p.Forces,
		Temperature: p.Temperature,
	}
}

// FramesRequest is the /v1/frames body: one or more labelled frames.
type FramesRequest struct {
	Frames []FramePayload `json:"frames"`
}

// FramesResponse reports the ingest outcome.
type FramesResponse struct {
	Accepted   int `json:"accepted"`
	Dropped    int `json:"dropped"` // rejected by queue policy (not errors)
	QueueDepth int `json:"queue_depth"`
}

// PredictRequest is the /v1/predict body: one unlabelled configuration.
type PredictRequest struct {
	Pos   []float64  `json:"pos"`
	Box   [3]float64 `json:"box"`
	Types []int      `json:"types"`
}

// Validate checks structural consistency of a prediction request.
func (r *PredictRequest) Validate() error {
	if len(r.Types) == 0 {
		return fmt.Errorf("no atoms")
	}
	if len(r.Pos) != 3*len(r.Types) {
		return fmt.Errorf("%d coordinates for %d atoms", len(r.Pos), len(r.Types))
	}
	for d, b := range r.Box {
		if !(b > 0) {
			return fmt.Errorf("box dimension %d is %g", d, b)
		}
	}
	return nil
}

// PredictResponse carries the model prediction and its provenance.
type PredictResponse struct {
	Energy float64   `json:"energy"` // total energy, eV
	Forces []float64 `json:"forces"` // 3N components, eV/Å
	// SnapshotStep is the training step of the snapshot that answered.
	SnapshotStep int64 `json:"snapshot_step"`
	// Batch is the size of the micro-batch this request rode in.
	Batch int `json:"batch"`
}

// HealthResponse is the /healthz body.  Status is "ok", or "degraded"
// while the backend's self-healing guard reports a recent divergence,
// rollback or watchdog fire that enough healthy steps have not yet
// cleared (see Config.Degraded503 for the status-code policy).
type HealthResponse struct {
	Status       string        `json:"status"`
	System       string        `json:"system"`
	Steps        int64         `json:"steps"`
	SnapshotStep int64         `json:"snapshot_step"`
	Guard        *guard.Status `json:"guard,omitempty"`
}

// StatsResponse is the /v1/stats body: aggregated trainer stats plus
// server-side serving counters, and — when the backend is a fleet — the
// per-replica fleet view (health, queue depth, drift, snapshot age).
type StatsResponse struct {
	online.Stats
	PredictRequests int64        `json:"predict_requests"`
	PredictBatches  int64        `json:"predict_batches"`
	FrameRequests   int64        `json:"frame_requests"`
	UptimeMs        int64        `json:"uptime_ms"`
	Fleet           *fleet.Stats `json:"fleet,omitempty"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}
