// Package fekf is a pure-Go reproduction of "Training one DeePMD Model in
// Minutes: a Step towards Online Learning" (PPoPP 2024): the Fast Extended
// Kalman Filter (FEKF) optimizer for Deep Potential molecular-dynamics
// models, together with every substrate the paper's evaluation depends on
// — the DeePMD network with its symmetry-preserving descriptor, a
// reverse-mode autodiff engine with double-backprop support, classical-MD
// label generation for the eight benchmark systems, Adam/RLEKF/Naive-EKF
// baselines, a simulated multi-GPU cluster with ring-allreduce, and the
// kernel-fusion system optimizations of the paper's Section 3.4.
//
// The implementation lives under internal/; the executables under cmd/
// (datagen, train, paper) and the runnable walkthroughs under examples/
// are the public surface.  bench_test.go holds one benchmark per paper
// table and figure.  See README.md, DESIGN.md and EXPERIMENTS.md.
package fekf
