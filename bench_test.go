package fekf

// One benchmark per table and figure of the paper's evaluation, plus
// ablation micro-benchmarks for the design choices called out in
// DESIGN.md.  The full experiment harness (absolute numbers, convergence
// runs) lives in cmd/paper; these benches measure the steady-state cost of
// each measured operation so regressions in any reproduced pipeline are
// visible in `go test -bench`.

import (
	"math/rand"
	"sync"
	"testing"

	"fekf/internal/cluster"
	"fekf/internal/dataset"
	"fekf/internal/deepmd"
	"fekf/internal/device"
	"fekf/internal/optimize"
	"fekf/internal/tensor"
)

var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
)

func benchData(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := dataset.Generate("Cu", dataset.GenOptions{
			Snapshots: 48, SampleEvery: 4, EquilSteps: 30, Tiny: true, Seed: 17,
		})
		if err != nil {
			panic(err)
		}
		benchDS = ds
	})
	return benchDS
}

func benchModel(b *testing.B, level deepmd.OptLevel) *deepmd.Model {
	b.Helper()
	ds := benchData(b)
	sys := deepmd.SnapshotSystem(ds, &ds.Snapshots[0])
	m, err := deepmd.NewModel(deepmd.TinyConfig(sys))
	if err != nil {
		b.Fatal(err)
	}
	m.Level = level
	m.Dev = device.New("bench", device.A100())
	if err := m.InitFromDataset(ds); err != nil {
		b.Fatal(err)
	}
	return m
}

func batchIdx(n, bs int) []int {
	idx := make([]int, bs)
	for i := range idx {
		idx[i] = i % n
	}
	return idx
}

// BenchmarkTable1Adam measures the Adam step at the three batch sizes of
// Table 1; epochs-to-target come from `cmd/paper -exp table1`.
func BenchmarkTable1Adam(b *testing.B) {
	for _, bs := range []int{1, 32, 64} {
		b.Run(byBS(bs), func(b *testing.B) {
			ds := benchData(b)
			m := benchModel(b, deepmd.OptFused)
			opt := optimize.NewAdam()
			idx := batchIdx(ds.Len(), bs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Step(m, ds, idx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4FEKF measures the FEKF iteration of the Table 4
// configuration (batch 32, 1 energy + 4 force Kalman updates).
func BenchmarkTable4FEKF(b *testing.B) {
	ds := benchData(b)
	m := benchModel(b, deepmd.OptAll)
	opt := optimize.NewFEKF()
	opt.KCfg = opt.KCfg.WithOpt3()
	idx := batchIdx(ds.Len(), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Step(m, ds, idx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7aRLEKF measures the per-sample RLEKF iteration that
// Figure 7(a)'s wall-clock baseline is built from.
func BenchmarkFigure7aRLEKF(b *testing.B) {
	ds := benchData(b)
	m := benchModel(b, deepmd.OptFused)
	opt := optimize.NewRLEKF()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Step(m, ds, []int{i % ds.Len()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7aNaiveEKF measures the fusiform baseline's step (per-
// sample Kalman updates then averaging), the costly dataflow FEKF avoids.
func BenchmarkFigure7aNaiveEKF(b *testing.B) {
	ds := benchData(b)
	m := benchModel(b, deepmd.OptFused)
	opt := optimize.NewNaiveEKF()
	idx := batchIdx(ds.Len(), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Step(m, ds, idx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7bForward measures the forward+force pass per
// optimization level and reports the simulated kernel launches — the
// quantity on Figure 7(b)'s y-axis.
func BenchmarkFigure7bForward(b *testing.B) {
	for _, level := range []deepmd.OptLevel{deepmd.OptBaseline, deepmd.OptManualForce, deepmd.OptFused} {
		b.Run(level.String(), func(b *testing.B) {
			ds := benchData(b)
			m := benchModel(b, level)
			env, err := deepmd.BuildBatchEnv(m.Cfg, ds, batchIdx(ds.Len(), 8))
			if err != nil {
				b.Fatal(err)
			}
			m.Dev.Reset()
			out := m.Forward(env, true)
			_ = m.EnergyGrad(out, nil)
			kernels := m.Dev.Counters().Kernels
			out.Graph.Release()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := m.Forward(env, true)
				_ = m.EnergyGrad(o, nil)
				o.Graph.Release()
			}
			b.ReportMetric(float64(kernels), "kernels/pass")
		})
	}
}

// BenchmarkFigure7cIteration measures the full FEKF iteration per
// optimization level and reports the modeled device milliseconds that
// Figure 7(c) decomposes.
func BenchmarkFigure7cIteration(b *testing.B) {
	for _, level := range []deepmd.OptLevel{deepmd.OptBaseline, deepmd.OptAll} {
		b.Run(level.String(), func(b *testing.B) {
			ds := benchData(b)
			m := benchModel(b, level)
			opt := optimize.NewFEKF()
			if level >= deepmd.OptAll {
				opt.KCfg = opt.KCfg.WithOpt3()
			}
			idx := batchIdx(ds.Len(), 8)
			if _, err := opt.Step(m, ds, idx); err != nil {
				b.Fatal(err)
			}
			before := m.Dev.Counters()
			if _, err := opt.Step(m, ds, idx); err != nil {
				b.Fatal(err)
			}
			modeledMs := m.Dev.Counters().Sub(before).ModeledNs / 1e6
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Step(m, ds, idx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(modeledMs, "modeled-ms/iter")
		})
	}
}

// BenchmarkTable5Distributed measures the distributed FEKF step across
// simulated GPU counts (the Table 5 configurations) and reports the wire
// volume per iteration.
func BenchmarkTable5Distributed(b *testing.B) {
	for _, gpus := range []int{1, 4} {
		b.Run(byGPU(gpus), func(b *testing.B) {
			ds := benchData(b)
			m := benchModel(b, deepmd.OptAll)
			dp := cluster.NewDataParallelFEKF(gpus, m)
			dp.KCfg = dp.KCfg.WithOpt3()
			idx := batchIdx(ds.Len(), 8*gpus)
			if _, err := dp.Step(ds, idx); err != nil {
				b.Fatal(err)
			}
			wire0 := dp.Ring().WireBytes()
			if _, err := dp.Step(ds, idx); err != nil {
				b.Fatal(err)
			}
			perIter := float64(dp.Ring().WireBytes()-wire0) / 1024
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dp.Step(ds, idx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(perIter, "wire-KiB/iter")
		})
	}
}

// BenchmarkFigure4Factors measures the FEKF step under the three
// quasi-learning-rate factors (identical cost; the bench guards that the
// ablation harness stays cheap).
func BenchmarkFigure4Factors(b *testing.B) {
	for _, f := range []optimize.QuasiLRFactor{optimize.FactorOne, optimize.FactorSqrtBS, optimize.FactorLinearBS} {
		b.Run(f.String(), func(b *testing.B) {
			ds := benchData(b)
			m := benchModel(b, deepmd.OptAll)
			opt := optimize.NewFEKF()
			opt.Factor = f
			idx := batchIdx(ds.Len(), 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Step(m, ds, idx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoryPUpdate is the Section 5.3 ablation at bench scale: the
// framework-style P update (KKᵀ materialized) against the handwritten
// fused kernel.
func BenchmarkMemoryPUpdate(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(23))
	k := tensor.RandNormal(n, 1, 1, rng)
	for _, fused := range []bool{false, true} {
		name := "framework"
		if fused {
			name = "fused"
		}
		b.Run(name, func(b *testing.B) {
			p := tensor.Eye(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if fused {
					tensor.PUpdateFused(p, k, 1.2, 0.98)
				} else {
					tensor.PUpdateNaive(p, k, 1.2, 0.98)
				}
			}
		})
	}
}

// BenchmarkCommAllreduce measures the in-process ring allreduce at the
// gradient size of the tiny model.
func BenchmarkCommAllreduce(b *testing.B) {
	for _, ranks := range []int{2, 4, 8} {
		b.Run(byGPU(ranks), func(b *testing.B) {
			const n = 1251
			data := make([][]float64, ranks)
			for w := range data {
				data[w] = make([]float64, n)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring := NewBenchRing(ranks)
				var wg sync.WaitGroup
				for w := 0; w < ranks; w++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						ring.Allreduce(rank, data[rank])
					}(w)
				}
				wg.Wait()
			}
		})
	}
}

// NewBenchRing builds a communicator with the paper's interconnect model.
func NewBenchRing(ranks int) *cluster.Ring { return cluster.NewRing(ranks, cluster.RoCE25()) }

// BenchmarkAblationForcePath compares the generic-autograd and
// hand-derived (Eq. 4) force paths — the Opt1 design choice.
func BenchmarkAblationForcePath(b *testing.B) {
	for _, level := range []deepmd.OptLevel{deepmd.OptBaseline, deepmd.OptManualForce} {
		b.Run(level.String(), func(b *testing.B) {
			ds := benchData(b)
			m := benchModel(b, level)
			env, err := deepmd.BuildBatchEnv(m.Cfg, ds, batchIdx(ds.Len(), 8))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := m.Forward(env, true)
				o.Graph.Release()
			}
		})
	}
}

// BenchmarkAblationPgCache compares the Kalman update with and without
// the Opt3 Pg-cache (the second P·g GEMM the paper removes).
func BenchmarkAblationPgCache(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(29))
	g := make([]float64, n)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	for _, cached := range []bool{false, true} {
		name := "recompute"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			cfg := optimize.DefaultKalmanConfig()
			cfg.FusedPUpdate = true
			cfg.CachePg = cached
			ks := optimize.NewKalmanState(cfg, []int{n}, device.New("b", device.A100()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ks.Update(g, 0.1, 1)
			}
		})
	}
}

// setBenchWorkers pins the tensor pool's worker count for one
// sub-benchmark and restores the previous setting on cleanup.
func setBenchWorkers(b *testing.B, w int) {
	b.Helper()
	prev := tensor.SetWorkers(w)
	b.Cleanup(func() { tensor.SetWorkers(prev) })
}

// benchWorkerCounts are the host-parallelism points of the speedup curve;
// workers1 is the serial baseline the parallel results must match bitwise.
var benchWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkKalmanBlockUpdate measures the full blocked Kalman measurement
// update (P·g, gain, fused P update, weight increment over four
// 1024-parameter blocks) across pool worker counts.  The blocks are
// independent, so the per-block loop and the row/stripe-sharded kernels
// scale with host cores while staying bitwise identical to workers1.
func BenchmarkKalmanBlockUpdate(b *testing.B) {
	const nParams = 4096
	rng := rand.New(rand.NewSource(31))
	g := make([]float64, nParams)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	for _, w := range benchWorkerCounts {
		b.Run(byWorkers(w), func(b *testing.B) {
			setBenchWorkers(b, w)
			cfg := optimize.DefaultKalmanConfig().WithOpt3()
			cfg.BlockSize = 1024
			ks := optimize.NewKalmanState(cfg, []int{nParams}, device.New("b", device.A100()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ks.Update(g, 0.1, 1)
			}
		})
	}
}

// BenchmarkFEKFPipeline measures the full FEKF iteration with the
// two-stage force-group pipeline off and on, across pool worker counts.
// The pipelined schedule overlaps each measurement's covariance drain with
// the next group's backward, so its win is the drain time it hides; the
// results are bitwise identical either way (pipeline_test.go).
func BenchmarkFEKFPipeline(b *testing.B) {
	for _, pipelined := range []bool{false, true} {
		name := "serial"
		if pipelined {
			name = "pipelined"
		}
		for _, w := range benchWorkerCounts {
			b.Run(name+"/"+byWorkers(w), func(b *testing.B) {
				setBenchWorkers(b, w)
				ds := benchData(b)
				m := benchModel(b, deepmd.OptAll)
				opt := optimize.NewFEKF()
				opt.KCfg = opt.KCfg.WithOpt3()
				opt.Pipeline = pipelined
				idx := batchIdx(ds.Len(), 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := opt.Step(m, ds, idx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKalmanPUpdateFused measures the striped single-pass P-update
// kernel alone at the paper-scale block edge.
func BenchmarkKalmanPUpdateFused(b *testing.B) {
	const n = 2048
	rng := rand.New(rand.NewSource(37))
	k := tensor.RandNormal(n, 1, 1, rng)
	for _, w := range benchWorkerCounts {
		b.Run(byWorkers(w), func(b *testing.B) {
			setBenchWorkers(b, w)
			p := tensor.Eye(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.PUpdateFused(p, k, 1.2, 0.98)
			}
		})
	}
}

// BenchmarkGEMMWorkers measures the row-sharded square GEMM across pool
// worker counts.
func BenchmarkGEMMWorkers(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(41))
	x := tensor.RandNormal(n, n, 1, rng)
	y := tensor.RandNormal(n, n, 1, rng)
	for _, w := range benchWorkerCounts {
		b.Run(byWorkers(w), func(b *testing.B) {
			setBenchWorkers(b, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tensor.MatMul(x, y)
			}
		})
	}
}

// BenchmarkGEMMSymMatVec measures the sharded symmetric mat-vec — the
// P·g product that dominates each Kalman block — at the block edge of the
// speedup criterion.
func BenchmarkGEMMSymMatVec(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(43))
	p := tensor.RandNormal(n, n, 1, rng)
	x := tensor.RandNormal(n, 1, 1, rng)
	y := tensor.New(n, 1)
	for _, w := range benchWorkerCounts {
		b.Run(byWorkers(w), func(b *testing.B) {
			setBenchWorkers(b, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.SymMatVecInto(y, p, x)
			}
		})
	}
}

func byBS(bs int) string     { return "bs" + itoa(bs) }
func byGPU(g int) string     { return "gpus" + itoa(g) }
func byWorkers(w int) string { return "workers" + itoa(w) }
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
