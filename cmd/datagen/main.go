// Command datagen samples labelled training data for the benchmark
// systems of the paper's Table 3: classical-potential Langevin MD emits
// configurations with energy and force labels at the paper's temperature
// mix (the reproduction's substitute for ab initio trajectories).
//
// Usage:
//
//	datagen -system Cu -n 512 -out cu.gob
//	datagen -system all -n 256 -tiny -outdir data/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fekf/internal/dataset"
	"fekf/internal/md"
)

func main() {
	log.SetFlags(0)
	var (
		system  = flag.String("system", "Cu", "system name (Cu, Al, Si, NaCl, Mg, H2O, CuO, HfO2) or 'all'")
		n       = flag.Int("n", 256, "number of labelled snapshots")
		every   = flag.Int("every", 5, "MD steps between samples")
		equil   = flag.Int("equil", 40, "thermalization steps per temperature")
		scale   = flag.Int("scale", 1, "supercell scale factor (paper cell = 1)")
		tiny    = flag.Bool("tiny", false, "use the reduced 8-32 atom cells")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (single system)")
		outdir  = flag.String("outdir", ".", "output directory (system=all)")
		verbose = flag.Bool("v", false, "print dataset statistics")
	)
	flag.Parse()

	names := []string{*system}
	if *system == "all" {
		names = md.SystemNames()
	}
	for _, name := range names {
		ds, err := dataset.Generate(name, dataset.GenOptions{
			Snapshots:   *n,
			SampleEvery: *every,
			EquilSteps:  *equil,
			Scale:       *scale,
			Tiny:        *tiny,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		path := *out
		if path == "" || *system == "all" {
			path = filepath.Join(*outdir, fmt.Sprintf("%s.gob", name))
		}
		if err := ds.Save(path); err != nil {
			log.Fatalf("datagen: %v", err)
		}
		mean, std := ds.EnergyStats()
		fmt.Printf("%s: %d snapshots, %d atoms -> %s\n",
			name, ds.Len(), ds.Snapshots[0].NumAtoms(), path)
		if *verbose {
			fmt.Printf("  per-atom energy: mean %.4f eV, std %.4f eV\n", mean, std)
			temps := map[float64]int{}
			for _, s := range ds.Snapshots {
				temps[s.Temperature]++
			}
			fmt.Printf("  temperature mix: %v\n", temps)
		}
	}
	_ = os.Stdout
}
